// Package mvdb implements probabilistic databases with MarkoViews (Jha &
// Suciu, "Probabilistic Databases with MarkoViews", PVLDB 5(11), 2012).
//
// An MVDB is a probabilistic database — relations whose tuples carry weights
// (odds w = p/(1-p)) — together with MarkoViews: weighted UCQ views that
// declare correlations between the probabilistic tuples. Query evaluation
// translates the MVDB into a tuple-independent database with possibly
// negative tuple probabilities (Theorem 1):
//
//	P(Q) = (P0(Q ∨ W) - P0(W)) / (1 - P0(W))
//
// and computes the right-hand side with exact methods: brute-force
// enumeration, lifted inference (safe plans), OBDD compilation, or the
// MV-index — an augmented OBDD of ¬W precompiled offline so that online
// queries run in time proportional to the slice of the index they touch.
//
// # Quickstart
//
//	db := mvdb.NewDatabase()
//	db.MustCreateRelation("R", false, "x")
//	db.MustCreateRelation("S", false, "x")
//	db.MustInsert("R", 2.0, mvdb.Int(1)) // weight 2 = probability 2/3
//	db.MustInsert("S", 3.0, mvdb.Int(1))
//
//	m := mvdb.New(db)
//	v, _ := mvdb.ParseView("V(x) :- R(x), S(x)", mvdb.ConstWeight(0.5))
//	m.AddView(v) // negative correlation between R(1) and S(1)
//
//	tr, _ := m.Translate(mvdb.TranslateOptions{})
//	ix, _ := mvdb.BuildIndex(tr)
//	q, _ := mvdb.ParseQuery("Q() :- R(x), S(x)")
//	p, _ := ix.ProbBoolean(q.UCQ, mvdb.IntersectOptions{})
//
// The subpackages under internal implement the substrates: the relational
// engine, the UCQ language and analyses, OBDDs with the ConOBDD compiler,
// lifted inference, Markov Logic Networks (exact, Gibbs, MC-SAT), the
// MV-index, and the synthetic DBLP generator driving the paper's
// experiments.
package mvdb

import (
	"io"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/engine"
	"mvdb/internal/lift"
	"mvdb/internal/lineage"
	"mvdb/internal/mln"
	"mvdb/internal/mvindex"
	"mvdb/internal/plan"
	"mvdb/internal/ucq"
)

// Core data-model types.
type (
	// Value is a database value (int64 or string).
	Value = engine.Value
	// Database is an in-memory collection of deterministic and
	// probabilistic relations.
	Database = engine.Database
	// Relation is a named table.
	Relation = engine.Relation
	// MVDB is a probabilistic database with MarkoViews.
	MVDB = core.MVDB
	// MarkoView is a weighted UCQ view declaring correlations.
	MarkoView = core.MarkoView
	// WeightFn assigns a weight to each view output tuple.
	WeightFn = core.WeightFn
	// ViewTuple is a materialized view output tuple.
	ViewTuple = core.ViewTuple
	// Translation is the tuple-independent database of Definition 5 plus
	// the Boolean constraint query W.
	Translation = core.Translation
	// TranslateOptions tunes the MVDB -> INDB translation.
	TranslateOptions = core.TranslateOptions
	// Answer is one query answer with its marginal probability.
	Answer = core.Answer
	// Method selects the P0 evaluation strategy.
	Method = core.Method
	// Query is a named UCQ with head variables.
	Query = ucq.Query
	// UCQ is a union of conjunctive queries.
	UCQ = ucq.UCQ
	// Index is the precompiled MV-index.
	Index = mvindex.Index
	// IntersectOptions selects the online intersection algorithm.
	IntersectOptions = mvindex.IntersectOptions
	// Mutation is one base-table insert, delete or reweight.
	Mutation = core.Mutation
	// WeightTable is a serializable per-head view weight assignment.
	WeightTable = core.WeightTable
	// MaintStats reports how Index.ApplyMutations handled one batch.
	MaintStats = mvindex.MaintStats
)

// Mutation operations for Index.ApplyMutations.
const (
	MutInsert   = core.MutInsert
	MutDelete   = core.MutDelete
	MutReweight = core.MutReweight
)

// Evaluation methods for Translation.ProbBoolean and Translation.Query.
const (
	MethodBruteForce = core.MethodBruteForce
	MethodOBDD       = core.MethodOBDD
	MethodLifted     = core.MethodLifted
	MethodDPLL       = core.MethodDPLL
	MethodPlan       = core.MethodPlan
)

// Deterministic is the weight of a deterministic tuple (+Inf odds).
var Deterministic = engine.Deterministic

// ErrUnsafe is returned by MethodLifted when the query has no safe plan.
var ErrUnsafe = lift.ErrUnsafe

// ErrNoPlan is returned by MethodPlan and ExtractPlan when no safe plan
// exists.
var ErrNoPlan = plan.ErrNoPlan

// Int returns an integer Value.
func Int(i int64) Value { return engine.Int(i) }

// Str returns a string Value.
func Str(s string) Value { return engine.Str(s) }

// NewDatabase returns an empty database.
func NewDatabase() *Database { return engine.NewDatabase() }

// New wraps a database as an MVDB without views.
func New(db *Database) *MVDB { return core.New(db) }

// ParseQuery parses a datalog-style query, e.g.
// "Q(x) :- R(x,y), S(y), y > 5". Multiple lines with the same head name form
// a union.
func ParseQuery(src string) (*Query, error) { return ucq.Parse(src) }

// ParseView parses a MarkoView definition "V(x) :- body" with the given
// per-tuple weight function.
func ParseView(src string, w WeightFn) (*MarkoView, error) { return core.ParseView(src, w) }

// ConstWeight returns a WeightFn assigning the same weight to every tuple.
func ConstWeight(w float64) WeightFn { return core.ConstWeight(w) }

// BuildIndex compiles the MV-index for a translation.
func BuildIndex(tr *Translation) (*Index, error) { return mvindex.Build(tr) }

// IsSafe reports whether a UCQ admits a safe (PTIME lifted) plan.
func IsSafe(u UCQ) bool { return lift.IsSafe(u) }

// SafePlan is an extracted extensional plan: an operator tree of
// independent unions, joins, projects, inclusion-exclusion and ground
// lookups that evaluates a safe UCQ in polynomial time and pretty-prints
// with String.
type SafePlan = plan.Plan

// ExtractPlan extracts a safe plan for a Boolean UCQ over a
// tuple-independent database, or returns ErrNoPlan.
func ExtractPlan(db *Database, u UCQ) (*SafePlan, error) { return plan.Extract(db, u) }

// Synthetic DBLP dataset (the paper's experimental substrate).
type (
	// DBLPConfig parameterizes the synthetic DBLP generator.
	DBLPConfig = dblp.Config
	// DBLPDataset is a generated dataset with the Figure 1 MarkoViews.
	DBLPDataset = dblp.Dataset
)

// GenerateDBLP builds a synthetic DBLP-like dataset (Figure 1 of the
// paper): deterministic Author/Wrote/Pub/HomePage tables, derived
// FirstPub/DBLPAffiliation views, probabilistic Student/Advisor/Affiliation
// tables, and the MarkoViews V1, V2, V3.
func GenerateDBLP(cfg DBLPConfig) (*DBLPDataset, error) { return dblp.Generate(cfg) }

// MAPWorld is the result of MAP inference on an MVDB.
type MAPWorld = core.MAPWorld

// MAPOptions configures the approximate MAP search.
type MAPOptions = mln.MAPOptions

// MCSatOptions configures the MC-SAT sampler baseline.
type MCSatOptions = mln.MCSatOptions

// TopK returns the k highest-probability answers.
func TopK(answers []Answer, k int) []Answer { return core.TopK(answers, k) }

// Conjoin returns the conjunction of two UCQs (for conditional queries).
func Conjoin(a, b UCQ) UCQ { return ucq.Conjoin(a, b) }

// MLN is a ground Markov Logic Network (the Definition 4 semantics of an
// MVDB, as returned by MVDB.GroundMLN). It supports exact enumeration,
// Gibbs and MC-SAT marginal inference, MAP inference, world sampling and
// generative weight learning.
type MLN = mln.Network

// MLNFeature is a weighted ground formula of an MLN.
type MLNFeature = mln.Feature

// LearnOptions configures MLN.LearnWeights.
type LearnOptions = mln.LearnOptions

// LoadIndex reads a saved MV-index from a file (see Index.SaveFile).
func LoadIndex(path string) (*Index, error) { return mvindex.LoadFile(path) }

// ReadIndex reads a saved MV-index from a stream (see Index.Save).
func ReadIndex(r io.Reader) (*Index, error) { return mvindex.Read(r) }

// MLNFormula is a ground Boolean formula over tuple variables (the feature
// language of MLN).
type MLNFormula = lineage.Formula

// VarFormula returns the formula that is true when tuple variable v is in
// the world — the common single-variable marginal query for MLN inference.
func VarFormula(v int) MLNFormula { return lineage.Var(v) }

// DefineProbTable materializes a probabilistic table from a query over
// deterministic tables with a per-tuple weight function — the middle layer
// of Figure 1 (e.g. Studentp defined from FirstPub with weight
// exp(1-0.15(year-year'))). Offset predicates like "year <= yp + 5" are
// supported by the query language.
func DefineProbTable(db *Database, q *Query, w WeightFn) (int, error) {
	return core.DefineProbTable(db, q, w)
}

// Evidence fixes the truth value of probabilistic tuples (by Boolean
// variable id) for conditional queries via Translation.ProbGivenTuples.
type Evidence = core.Evidence

// PlanTemplate is a parameterized safe plan: extracted once, executed for
// any concrete parameter values.
type PlanTemplate = plan.Template

// QueryPlan is a per-answer safe plan for a query with head variables.
type QueryPlan = plan.QueryPlan

// ExtractQueryPlan extracts a single plan for a non-Boolean query, treating
// head variables as runtime parameters; many "unsafe" Boolean queries (like
// H0) become safe per answer.
func ExtractQueryPlan(db *Database, q *Query) (*QueryPlan, error) { return plan.ExtractQuery(db, q) }
