#!/bin/sh
# CI gate: vet + full test suite under the race detector + an end-to-end
# mvdbd smoke test.
#
# The -race run is load-bearing: the concurrency layer (parallel block
# compilation, concurrent MV-index reads, RWMutex HTTP serving) and the
# cancellation/budget layer (mid-compile aborts, shared budget counters)
# are guarded by hammer tests that only bite with the detector on.
set -eux

go build ./...
go vet ./...
go test -timeout 5m ./...
go test -race -timeout 10m ./...

# Singleflight hammer, explicitly under the race detector: concurrent
# identical queries with mid-flight cancellation through the cross-query
# cache (DESIGN.md §9's abort protocol only bites with the detector on).
go test -race -run 'TestSingleflightHammer|TestConcurrentHammer|TestMidFlightInvalidation' \
    -count=2 -timeout 5m ./internal/mvindex/ ./internal/qcache/

# Live-update hammer, explicitly under the race detector: readers racing
# update batches must only ever observe committed states (DESIGN.md §10's
# epoch protocol), and crash recovery must replay every acknowledged batch
# even with fsync fault injection.
go test -race -run 'TestUpdateQueryInterleave|TestCrashRecovery|TestApplyMutationsEpoch' \
    -count=2 -timeout 5m ./internal/server/ ./internal/mvindex/

# Replication hammer, explicitly under the race detector: the log-shipping
# stream survives dropped/duplicated/truncated/stalled frames (DESIGN.md §11),
# failover fences the old primary, and a stale follower refuses to serve.
go test -race -run 'TestReplicationFaultHammer|TestPromoteFailover|TestFencingDemotesStalePrimary|TestFollowerStaleness503' \
    -count=2 -timeout 5m ./internal/server/
go test -race -run 'TestReplayCorruptMidSegment|FuzzReplayCorrupt|TestFollowerGapForcesReconnect|TestFollowerStallWatchdog' \
    -count=2 -timeout 5m ./internal/wal/ ./internal/replica/

# Benchmark smoke: one iteration of the parallel-compile benchmark catches
# kernel or scheduler regressions that only manifest under the bench harness
# (it asserts sequential/parallel result identity on every run).
go test -run=NONE -bench=BenchmarkParallelCompile -benchtime=1x -timeout 5m .

# Bench regression gate: re-measure the sequential compile and query legs at
# the committed baseline's largest domain and fail on a >25% slowdown vs
# BENCH_parallel.json (with a small absolute floor so micro-scale scheduler
# jitter does not flap the gate). Skipped under plain `go test`; the env var
# opts in here.
MVDB_BENCH_GATE=1 go test -v -run TestBenchRegressionGate -timeout 5m ./internal/bench/

# All four binaries must build.
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
for cmd in dblpgen mvbench mvdb mvdbd; do
    go build -o "$bindir/$cmd" ./cmd/$cmd
done

# Smoke test: boot mvdbd on a small dataset, hit /readyz, then verify that
# SIGTERM drains and exits 0 (the graceful-shutdown contract of DESIGN.md §7).
addr=127.0.0.1:18321
"$bindir/mvdbd" -addr "$addr" -authors 120 -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd never became ready"; exit 1; }
curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' >/dev/null

# Cache-correctness smoke: the same query twice — the second must be served
# from the cross-query cache (hits > 0 in /stats) with identical answers.
first=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}')
second=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}')
a1=$(printf '%s' "$first"  | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
a2=$(printf '%s' "$second" | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$a1" = "$a2" ] || { echo "cache smoke: answers diverged: $a1 vs $a2"; kill "$mvdbd_pid"; exit 1; }
[ -n "$a1" ] || { echo "cache smoke: empty answers"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | grep -q '"cache":{"enabled":true' \
    || { echo "cache smoke: cache not enabled in /stats"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | sed 's/.*"answers"://' | grep -q '"hits":[1-9]' \
    || { echo "cache smoke: no cache hit recorded"; kill "$mvdbd_pid"; exit 1; }

kill -TERM "$mvdbd_pid"
wait "$mvdbd_pid"   # set -e fails the gate if the drain exits non-zero

# Crash-recovery smoke: boot mvdbd with a WAL, apply an acknowledged update,
# kill -9 (no drain, no snapshot), restart on the same WAL dir, and require
# the recovered answers to be byte-identical to the pre-crash ones (recovery
# here is a from-scratch deterministic rebuild plus WAL replay, so equality
# proves the log preserved the acknowledged mutation).
waldir=$(mktemp -d)
trap 'rm -rf "$bindir" "$waldir"' EXIT
addr=127.0.0.1:18322
"$bindir/mvdbd" -addr "$addr" -authors 120 -wal-dir "$waldir" -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd (wal) never became ready"; exit 1; }
before=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
curl -fsS -X POST "http://$addr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 9999], "weight": 2}]}' >/dev/null
mutated=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$before" != "$mutated" ] || { echo "crash smoke: update did not change the answer"; kill -9 "$mvdbd_pid"; exit 1; }
kill -9 "$mvdbd_pid"
wait "$mvdbd_pid" 2>/dev/null || true   # SIGKILL: non-zero by design
"$bindir/mvdbd" -addr "$addr" -authors 120 -wal-dir "$waldir" -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd never recovered from the WAL"; exit 1; }
recovered=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$mutated" = "$recovered" ] || { echo "crash smoke: recovery diverged: $mutated vs $recovered"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | grep -q '"frames":1' \
    || { echo "crash smoke: recovered WAL does not hold the replayed frame"; kill "$mvdbd_pid"; exit 1; }
kill -TERM "$mvdbd_pid"
wait "$mvdbd_pid"

# Replication chaos smoke: boot a primary and a WAL-shipped follower, apply an
# acknowledged mutation batch, kill -9 the primary mid-stream, promote the
# follower, keep writing on the new primary, and require its answers to be
# byte-identical to a from-scratch rebuild that applied the same mutations in
# the same order (the determinism contract of DESIGN.md §11).
pwal=$(mktemp -d)
fwal=$(mktemp -d)
rwal=$(mktemp -d)
trap 'rm -rf "$bindir" "$waldir" "$pwal" "$fwal" "$rwal"' EXIT
paddr=127.0.0.1:18323
faddr=127.0.0.1:18324
raddr=127.0.0.1:18325
"$bindir/mvdbd" -addr "$paddr" -authors 120 -wal-dir "$pwal" -query-timeout 10s &
primary_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$paddr/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$primary_pid" 2>/dev/null; echo "chaos smoke: primary never became ready"; exit 1; }
"$bindir/mvdbd" -addr "$faddr" -replica-of "http://$paddr" -wal-dir "$fwal" \
    -max-staleness 30s -query-timeout 10s &
follower_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$faddr/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$follower_pid" "$primary_pid" 2>/dev/null; echo "chaos smoke: follower never bootstrapped"; exit 1; }

# Acknowledged batch on the primary; the stream must carry it to the follower.
curl -fsS -X POST "http://$paddr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 9999], "weight": 2}, {"op": "reweight", "rel": "Advisor", "vals": [104, 9999], "weight": 3}]}' >/dev/null
pans=$(curl -fsS -X POST "http://$paddr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
converged=0
for _ in $(seq 1 150); do
    fans=$(curl -fsS -X POST "http://$faddr/query" -H 'Content-Type: application/json' \
        -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//') || fans=""
    if [ -n "$fans" ] && [ "$fans" = "$pans" ]; then converged=1; break; fi
    sleep 0.1
done
[ "$converged" = 1 ] || { kill -9 "$follower_pid" "$primary_pid" 2>/dev/null; echo "chaos smoke: follower never converged: $fans vs $pans"; exit 1; }

# A follower must refuse writes while the primary is alive.
wcode=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$faddr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 8888], "weight": 1}]}')
[ "$wcode" = 503 ] || { kill -9 "$follower_pid" "$primary_pid" 2>/dev/null; echo "chaos smoke: follower accepted a write (HTTP $wcode)"; exit 1; }

# Kill the primary mid-stream (no drain), then promote the follower.
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
curl -fsS -X POST "http://$faddr/replication/promote" | tr -d ' \n\t' | grep -q '"role":"primary"' \
    || { kill -9 "$follower_pid" 2>/dev/null; echo "chaos smoke: promote did not yield a primary"; exit 1; }
curl -fsS "http://$faddr/stats" | tr -d ' \n\t' | grep -q '"role":"primary"' \
    || { kill -9 "$follower_pid" 2>/dev/null; echo "chaos smoke: promoted node not reporting primary role"; exit 1; }

# The promoted node must accept writes and continue the mutation line.
curl -fsS -X POST "http://$faddr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 7777], "weight": 1.5}]}' >/dev/null
fans=$(curl -fsS -X POST "http://$faddr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')

# From-scratch rebuild: a fresh instance applying the same mutations in the
# same order must produce byte-identical answers.
"$bindir/mvdbd" -addr "$raddr" -authors 120 -wal-dir "$rwal" -query-timeout 10s &
rebuild_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$raddr/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$rebuild_pid" "$follower_pid" 2>/dev/null; echo "chaos smoke: rebuild instance never became ready"; exit 1; }
curl -fsS -X POST "http://$raddr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 9999], "weight": 2}, {"op": "reweight", "rel": "Advisor", "vals": [104, 9999], "weight": 3}]}' >/dev/null
curl -fsS -X POST "http://$raddr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 7777], "weight": 1.5}]}' >/dev/null
rans=$(curl -fsS -X POST "http://$raddr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ -n "$fans" ] && [ "$fans" = "$rans" ] \
    || { kill -9 "$rebuild_pid" "$follower_pid" 2>/dev/null; echo "chaos smoke: failover diverged from rebuild: $fans vs $rans"; exit 1; }

kill -TERM "$rebuild_pid"
wait "$rebuild_pid"
kill -TERM "$follower_pid"
wait "$follower_pid"   # promoted node must still drain cleanly

echo "ci.sh: all gates passed"
