#!/bin/sh
# CI gate: vet + full test suite under the race detector + an end-to-end
# mvdbd smoke test.
#
# The -race run is load-bearing: the concurrency layer (parallel block
# compilation, concurrent MV-index reads, RWMutex HTTP serving) and the
# cancellation/budget layer (mid-compile aborts, shared budget counters)
# are guarded by hammer tests that only bite with the detector on.
set -eux

go build ./...
go vet ./...
go test -timeout 5m ./...
go test -race -timeout 10m ./...

# Singleflight hammer, explicitly under the race detector: concurrent
# identical queries with mid-flight cancellation through the cross-query
# cache (DESIGN.md §9's abort protocol only bites with the detector on).
go test -race -run 'TestSingleflightHammer|TestConcurrentHammer|TestMidFlightInvalidation' \
    -count=2 -timeout 5m ./internal/mvindex/ ./internal/qcache/

# Live-update hammer, explicitly under the race detector: readers racing
# update batches must only ever observe committed states (DESIGN.md §10's
# epoch protocol), and crash recovery must replay every acknowledged batch
# even with fsync fault injection.
go test -race -run 'TestUpdateQueryInterleave|TestCrashRecovery|TestApplyMutationsEpoch' \
    -count=2 -timeout 5m ./internal/server/ ./internal/mvindex/

# Benchmark smoke: one iteration of the parallel-compile benchmark catches
# kernel or scheduler regressions that only manifest under the bench harness
# (it asserts sequential/parallel result identity on every run).
go test -run=NONE -bench=BenchmarkParallelCompile -benchtime=1x -timeout 5m .

# All four binaries must build.
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
for cmd in dblpgen mvbench mvdb mvdbd; do
    go build -o "$bindir/$cmd" ./cmd/$cmd
done

# Smoke test: boot mvdbd on a small dataset, hit /readyz, then verify that
# SIGTERM drains and exits 0 (the graceful-shutdown contract of DESIGN.md §7).
addr=127.0.0.1:18321
"$bindir/mvdbd" -addr "$addr" -authors 120 -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd never became ready"; exit 1; }
curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' >/dev/null

# Cache-correctness smoke: the same query twice — the second must be served
# from the cross-query cache (hits > 0 in /stats) with identical answers.
first=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}')
second=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}')
a1=$(printf '%s' "$first"  | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
a2=$(printf '%s' "$second" | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$a1" = "$a2" ] || { echo "cache smoke: answers diverged: $a1 vs $a2"; kill "$mvdbd_pid"; exit 1; }
[ -n "$a1" ] || { echo "cache smoke: empty answers"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | grep -q '"cache":{"enabled":true' \
    || { echo "cache smoke: cache not enabled in /stats"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | sed 's/.*"answers"://' | grep -q '"hits":[1-9]' \
    || { echo "cache smoke: no cache hit recorded"; kill "$mvdbd_pid"; exit 1; }

kill -TERM "$mvdbd_pid"
wait "$mvdbd_pid"   # set -e fails the gate if the drain exits non-zero

# Crash-recovery smoke: boot mvdbd with a WAL, apply an acknowledged update,
# kill -9 (no drain, no snapshot), restart on the same WAL dir, and require
# the recovered answers to be byte-identical to the pre-crash ones (recovery
# here is a from-scratch deterministic rebuild plus WAL replay, so equality
# proves the log preserved the acknowledged mutation).
waldir=$(mktemp -d)
trap 'rm -rf "$bindir" "$waldir"' EXIT
addr=127.0.0.1:18322
"$bindir/mvdbd" -addr "$addr" -authors 120 -wal-dir "$waldir" -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd (wal) never became ready"; exit 1; }
before=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
curl -fsS -X POST "http://$addr/update" -H 'Content-Type: application/json' \
    -d '{"mutations": [{"op": "insert", "rel": "Advisor", "vals": [104, 9999], "weight": 2}]}' >/dev/null
mutated=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$before" != "$mutated" ] || { echo "crash smoke: update did not change the answer"; kill -9 "$mvdbd_pid"; exit 1; }
kill -9 "$mvdbd_pid"
wait "$mvdbd_pid" 2>/dev/null || true   # SIGKILL: non-zero by design
"$bindir/mvdbd" -addr "$addr" -authors 120 -wal-dir "$waldir" -query-timeout 10s &
mvdbd_pid=$!
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { kill "$mvdbd_pid" 2>/dev/null; echo "mvdbd never recovered from the WAL"; exit 1; }
recovered=$(curl -fsS -X POST "http://$addr/query" -H 'Content-Type: application/json' \
    -d '{"query": "Q(a) :- Advisor(104,a)"}' | tr -d ' \n\t' | sed 's/.*"answers"://;s/,"millis.*//')
[ "$mutated" = "$recovered" ] || { echo "crash smoke: recovery diverged: $mutated vs $recovered"; kill "$mvdbd_pid"; exit 1; }
curl -fsS "http://$addr/stats" | tr -d ' \n\t' | grep -q '"frames":1' \
    || { echo "crash smoke: recovered WAL does not hold the replayed frame"; kill "$mvdbd_pid"; exit 1; }
kill -TERM "$mvdbd_pid"
wait "$mvdbd_pid"

echo "ci.sh: all gates passed"
