package mvdb_test

// End-to-end integration: the full DBLP pipeline exercised through the
// public facade only, cross-checking every evaluation route on the same
// queries — generation → views → translation → MV-index → persistence →
// conditioning — at a scale where the exact MLN semantics is still
// enumerable for spot checks.

import (
	"bytes"
	"math"
	"testing"

	"mvdb"
)

func TestIntegrationDBLPPipeline(t *testing.T) {
	data, err := mvdb.GenerateDBLP(mvdb.DBLPConfig{NumAuthors: 240, Seed: 2026})
	if err != nil {
		t.Fatal(err)
	}
	m, err := data.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvdb.BuildIndex(tr)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Index answers equal the cached-OBDD answers on every advisor query.
	queries := []string{
		"Q(a) :- Advisor(9,a)",
		"Q(aid) :- Student(aid,year), Advisor(aid,a), Author(a,n), n like '%Madden%'",
		"Q(inst) :- Affiliation(aid,inst)",
	}
	for _, src := range queries {
		q, err := mvdb.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		viaIndex, err := ix.Query(q, mvdb.IntersectOptions{CacheConscious: true})
		if err != nil {
			t.Fatal(err)
		}
		viaOBDD, err := tr.Query(q, mvdb.MethodOBDD)
		if err != nil {
			t.Fatal(err)
		}
		viaDPLL, err := tr.Query(q, mvdb.MethodDPLL)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaIndex) != len(viaOBDD) || len(viaIndex) != len(viaDPLL) {
			t.Fatalf("%q: row counts differ: %d / %d / %d", src, len(viaIndex), len(viaOBDD), len(viaDPLL))
		}
		for i := range viaIndex {
			if math.Abs(viaIndex[i].Prob-viaOBDD[i].Prob) > 1e-9 ||
				math.Abs(viaIndex[i].Prob-viaDPLL[i].Prob) > 1e-9 {
				t.Errorf("%q row %v: index %v obdd %v dpll %v", src,
					viaIndex[i].Head, viaIndex[i].Prob, viaOBDD[i].Prob, viaDPLL[i].Prob)
			}
			if viaIndex[i].Prob < -1e-9 || viaIndex[i].Prob > 1+1e-9 {
				t.Errorf("%q row %v: probability %v outside [0,1]", src, viaIndex[i].Head, viaIndex[i].Prob)
			}
		}
	}

	// 2. Persistence round trip preserves every answer.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mvdb.ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := mvdb.ParseQuery(queries[0])
	a1, err := ix.Query(q, mvdb.IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Query(q, mvdb.IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if math.Abs(a1[i].Prob-a2[i].Prob) > 1e-12 {
			t.Errorf("persistence changed answer %v: %v vs %v", a1[i].Head, a1[i].Prob, a2[i].Prob)
		}
	}

	// 3. Marginals: the one-pass sweep matches per-tuple queries and the
	// views measurably shift at least some advisor edges.
	marg, err := ix.AllTupleMarginals()
	if err != nil {
		t.Fatal(err)
	}
	adv := tr.DB.Relation("Advisor")
	shifted := 0
	for i, tup := range adv.Tuples {
		if i >= 20 {
			break
		}
		single, err := ix.TupleMarginal(tup.Var, mvdb.IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single-marg[tup.Var]) > 1e-9 {
			t.Errorf("var %d: sweep %v single %v", tup.Var, marg[tup.Var], single)
		}
		if math.Abs(single-tup.Prob()) > 1e-6 {
			shifted++
		}
	}
	if shifted == 0 {
		t.Error("no advisor marginal shifted by the views")
	}

	// 4. Conditioning: evidence on one advisor edge of a two-candidate
	// student kills the rival (denial view V2).
	counts := map[int64][]int{}
	for _, tup := range adv.Tuples {
		counts[tup.Vals[0].Int] = append(counts[tup.Vals[0].Int], tup.Var)
	}
	for s, vars := range counts {
		if len(vars) < 2 {
			continue
		}
		qq, _ := mvdb.ParseQuery("Q(a) :- Advisor(" + mvdb.Int(s).String() + ",a)")
		rel, tup, err := tr.DB.VarTuple(vars[1])
		if err != nil || rel != "Advisor" {
			t.Fatal(err, rel)
		}
		bound, _ := qq.Bind([]mvdb.Value{tup.Vals[1]})
		p, err := tr.ProbGivenTuples(bound, mvdb.Evidence{vars[0]: true}, mvdb.MethodDPLL)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1e-9 {
			t.Errorf("student %v: rival advisor has probability %v despite evidence + denial view", s, p)
		}
		break
	}

	// 5. Compact keeps everything intact.
	ix.Compact()
	a3, err := ix.Query(q, mvdb.IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if math.Abs(a1[i].Prob-a3[i].Prob) > 1e-12 {
			t.Errorf("compact changed answer %v", a3[i].Head)
		}
	}
}

func TestIntegrationExactAtMicroScale(t *testing.T) {
	// The public-facade pipeline against exhaustive enumeration.
	data, err := mvdb.GenerateDBLP(mvdb.DBLPConfig{NumAuthors: 4, AdvisorEvery: 2, Seed: 7, SecondAdvisorPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	if data.DB.NumVars() > 20 {
		t.Skipf("%d vars: enumeration infeasible", data.DB.NumVars())
	}
	m, err := data.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvdb.BuildIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range data.Students {
		q, _ := mvdb.ParseQuery("Q(a) :- Advisor(" + mvdb.Int(s).String() + ",a)")
		rows, err := ix.Query(q, mvdb.IntersectOptions{CacheConscious: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			b, _ := q.Bind(r.Head)
			want, err := m.ProbExact(b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Prob-want) > 1e-8 {
				t.Errorf("student %d advisor %v: %v want %v", s, r.Head, r.Prob, want)
			}
		}
	}
}
