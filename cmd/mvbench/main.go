// Command mvbench regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic DBLP dataset and prints them as
// text tables. See EXPERIMENTS.md for a recorded run and the paper-vs-
// measured comparison.
//
// Usage:
//
//	mvbench                         # run everything with default sweeps
//	mvbench -exp fig8               # one experiment
//	mvbench -domains 1000,2000      # custom aid-domain sweep
//	mvbench -full 50000             # full-dataset size for fig10/fig11
//	mvbench -quick                  # small sweeps (seconds, not minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mvdb/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id: fig1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,parallel,cache,update,reorder,madden,ablate-entry,methods,marginals,exactness or all")
		domains     = flag.String("domains", "", "comma-separated aid-domain sweep (default 1000..10000)")
		full        = flag.Int("full", 0, "full-dataset author count for fig10/fig11/madden")
		seed        = flag.Int64("seed", 1, "generator seed")
		samples     = flag.Int("mcsat-samples", 0, "MC-SAT samples for fig5/fig6")
		quick       = flag.Bool("quick", false, "small sweeps for a fast smoke run")
		format      = flag.String("format", "text", "output format: text or csv")
		parallelism = flag.Int("parallelism", 0, "workers for parallel compile/query experiments (0 = GOMAXPROCS, 1 = sequential)")
		parJSON     = flag.String("parallel-json", "BENCH_parallel.json", "file for the parallel experiment's JSON report (empty to skip)")
		useCache    = flag.Bool("cache", true, "run the cached leg of the cache experiment (false = baseline-only ablation)")
		cacheJSON   = flag.String("cache-json", "BENCH_cache.json", "file for the cache experiment's JSON report (empty to skip)")
		updateJSON  = flag.String("update-json", "BENCH_update.json", "file for the update experiment's JSON report (empty to skip)")
		reorderJSON = flag.String("reorder-json", "BENCH_reorder.json", "file for the reorder experiment's JSON report (empty to skip)")
		maxGrowth   = flag.Float64("reorder-max-growth", 0, "sifting growth bound for the reorder experiment (0 = obdd default)")
		maxRounds   = flag.Int("reorder-rounds", 0, "max sifting rounds for the reorder experiment (0 = obdd default)")
		timeout     = flag.Duration("timeout", 0, "watchdog per experiment (0 = none); a stuck experiment aborts the run with exit 1")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mvbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		// LIFO: StopCPUProfile must flush before the file closes.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: writing heap profile: %v\n", err)
			}
		}()
	}

	opts := bench.Defaults()
	if *quick {
		opts = bench.Small()
	}
	opts.Seed = *seed
	opts.Parallelism = *parallelism
	opts.Cache = *useCache
	opts.ReorderMaxGrowth = *maxGrowth
	opts.ReorderRounds = *maxRounds
	if *domains != "" {
		opts.Domains = nil
		for _, s := range strings.Split(*domains, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: bad domain %q: %v\n", s, err)
				os.Exit(2)
			}
			opts.Domains = append(opts.Domains, n)
		}
	}
	if *full > 0 {
		opts.FullAuthors = *full
	}
	if *samples > 0 {
		opts.MCSatSamples = *samples
	}

	run := func(id string) {
		runner, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "mvbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		if *timeout > 0 {
			// Watchdog: a wedged experiment must not hang an unattended
			// sweep forever. The experiments have no cancellation hooks, so
			// the deadline is enforced by aborting the process.
			wd := time.AfterFunc(*timeout, func() {
				fmt.Fprintf(os.Stderr, "mvbench: %s exceeded the %v watchdog; aborting\n", id, *timeout)
				os.Exit(1)
			})
			defer wd.Stop()
		}
		tab, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "csv" {
			if err := tab.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
		} else {
			tab.Fprint(os.Stdout)
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		if id == "parallel" && *parJSON != "" {
			f, err := os.Create(*parJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := bench.WriteParallelJSON(f, tab, *parallelism); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mvbench: wrote %s\n", *parJSON)
		}
		if id == "cache" && *cacheJSON != "" && *useCache {
			f, err := os.Create(*cacheJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := bench.WriteCacheJSON(f, tab, opts); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mvbench: wrote %s\n", *cacheJSON)
		}
		if id == "update" && *updateJSON != "" {
			f, err := os.Create(*updateJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := bench.WriteUpdateJSON(f, tab); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mvbench: wrote %s\n", *updateJSON)
		}
		if id == "reorder" && *reorderJSON != "" {
			f, err := os.Create(*reorderJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := bench.WriteReorderJSON(f, tab); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mvbench: wrote %s\n", *reorderJSON)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "parallel", "cache", "update", "reorder", "madden", "ablate-entry", "methods", "marginals", "exactness"} {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
