package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildMvdbd compiles the binary once per test run into a temp dir.
func buildMvdbd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mvdbd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitReady polls /readyz until the server answers 200 or the deadline hits.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/readyz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestGracefulSIGTERM boots the real binary on a small dataset, verifies it
// serves, sends SIGTERM, and asserts a clean (exit 0) drain.
func TestGracefulSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real binary")
	}
	bin := buildMvdbd(t)
	addr := freePort(t)
	cmd := exec.Command(bin, "-addr", addr, "-authors", "120", "-query-timeout", "5s", "-max-inflight", "8")
	var logs strings.Builder
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait(); close(done) }()
	defer func() {
		select {
		case <-done:
		default:
			cmd.Process.Kill()
			<-done
		}
	}()

	base := "http://" + addr
	waitReady(t, base)

	// The service answers a real query before shutdown.
	res, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query": "Q(a) :- Advisor(104,a)"}`))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("query: code = %d body %s", res.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("SIGTERM exit: %v (want exit 0)\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit after SIGTERM\nlogs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "clean exit") {
		t.Errorf("missing clean-exit log line:\n%s", logs.String())
	}
}

// TestFlagPropagation verifies the degradation flags reach the handler: a
// one-nanosecond query timeout turns every query into a structured 408.
func TestFlagPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real binary")
	}
	bin := buildMvdbd(t)
	addr := freePort(t)
	cmd := exec.Command(bin, "-addr", addr, "-authors", "120", "-query-timeout", "1ns")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait(); close(done) }()
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	base := "http://" + addr
	waitReady(t, base)
	res, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query": "Q(a) :- Advisor(104,a)"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusRequestTimeout {
		t.Errorf("1ns timeout: code = %d body %s", res.StatusCode, body)
	}
	if !strings.Contains(string(body), `"reason"`) || !strings.Contains(string(body), "timeout") {
		t.Errorf("missing structured reason: %s", body)
	}
	_ = fmt.Sprint() // keep fmt for future debugging output
}
