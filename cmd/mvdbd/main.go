// Command mvdbd serves a compiled MV-index over HTTP (see internal/server
// for the JSON API). It either generates the synthetic DBLP dataset or
// loads a previously saved index.
//
//	mvdbd -authors 2000 -addr :8080
//	mvdbd -load-index dblp.mvx -addr :8080
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -H 'Content-Type: application/json' \
//	     -d '{"query": "Q(a) :- Advisor(104,a)"}'
//
// The service degrades gracefully under pressure: -query-timeout bounds each
// evaluation (408 on expiry), -max-nodes/-max-pairs bound its resources (503
// on exhaustion), -max-inflight sheds excess load (503 + Retry-After), and
// SIGINT/SIGTERM drain in-flight requests before exiting 0. /healthz reports
// liveness, /readyz readiness (503 while draining).
//
// With -wal-dir the server becomes mutable: POST /update and POST /reweight
// apply WAL-logged mutation batches to the index incrementally, a background
// snapshotter (-snapshot-interval) persists the index and truncates the log,
// and on restart the server recovers from the latest snapshot plus the WAL
// tail — so acknowledged mutations survive crashes. The drain on
// SIGINT/SIGTERM flushes the WAL and takes a final snapshot.
//
//	mvdbd -authors 2000 -wal-dir /var/lib/mvdb/wal -addr :8080
//
// A WAL-enabled node is also a replication primary: it serves GET
// /replication/snapshot and GET /replication/stream to followers. Start a
// read replica with -replica-of; it bootstraps from the primary's snapshot,
// tails its WAL, and serves reads within -max-staleness (503 + Retry-After
// beyond it). POST /replication/promote fails the replica over to primary
// under a bumped fencing term.
//
//	mvdbd -replica-of http://primary:8080 -wal-dir /var/lib/mvdb/replica -addr :8081
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/qcache"
	"mvdb/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		authors   = flag.Int("authors", 2000, "aid domain of the synthetic DBLP dataset")
		seed      = flag.Int64("seed", 1, "generator seed")
		loadIndex = flag.String("load-index", "", "serve a previously saved MV-index instead of generating data")
		par       = flag.Int("parallelism", 0, "workers for OBDD compilation (0 = GOMAXPROCS, 1 = sequential)")

		reorder          = flag.String("reorder", "off", "dynamic variable reordering after compile: off | once | converge")
		reorderMaxGrowth = flag.Float64("reorder-max-growth", obdd.DefaultMaxGrowth, "sifting growth bound (times the pre-sift node count)")
		reorderRounds    = flag.Int("reorder-rounds", obdd.DefaultMaxRounds, "max sifting rounds in converge mode")

		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-request evaluation timeout (0 = none); expiry returns 408")
		maxInflight  = flag.Int("max-inflight", 64, "concurrently evaluating requests before shedding with 503 (0 = unlimited)")
		maxNodes     = flag.Int("max-nodes", 0, "OBDD nodes a single evaluation may allocate (0 = unlimited); exhaustion returns 503")
		maxPairs     = flag.Int("max-pairs", 0, "intersection pairs a single evaluation may visit (0 = unlimited); exhaustion returns 503")
		maxBody      = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size cap in bytes; larger bodies return 413")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		cache        = flag.Bool("cache", true, "cross-query answer/lineage cache on the serving path")
		cacheEntries = flag.Int("cache-entries", 0, "answer-cache entry cap (0 = default, negative = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "answer-cache byte cap (0 = default, negative = unlimited)")

		walDir       = flag.String("wal-dir", "", "enable the live-update write path: directory for the write-ahead log")
		snapPath     = flag.String("snapshot", "", "index snapshot path for recovery and WAL truncation (default <wal-dir>/index.snap)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "background snapshot period (0 = snapshot only on shutdown)")
		groupCommit  = flag.Duration("group-commit", 2*time.Millisecond, "WAL group-commit window; concurrent updates share one fsync (0 = fsync per batch)")

		replicaOf    = flag.String("replica-of", "", "run as a read replica of this primary URL (requires -wal-dir for local replica state)")
		maxStaleness = flag.Duration("max-staleness", 10*time.Second, "replica staleness bound: reads answer 503 + Retry-After when further behind the primary (0 = serve arbitrarily stale)")
	)
	flag.Parse()

	reorderMode, merr := obdd.ParseReorderMode(*reorder)
	if merr != nil {
		fmt.Fprintln(os.Stderr, "mvdbd:", merr)
		os.Exit(1)
	}
	reorderOpts := obdd.ReorderOptions{Mode: reorderMode, MaxGrowth: *reorderMaxGrowth, MaxRounds: *reorderRounds}

	// build produces the index when no usable snapshot exists. With a WAL it
	// doubles as the recovery base, so it must be deterministic in the flags:
	// either the saved index file or the seeded DBLP generator.
	build := func() (*mvindex.Index, error) {
		if *loadIndex != "" {
			fmt.Fprintf(os.Stderr, "loading MV-index from %s...\n", *loadIndex)
			ix, err := mvindex.LoadFile(*loadIndex)
			if err != nil {
				return nil, err
			}
			// A snapshot of a sifted index already carries its learned order;
			// only sift indexes saved under the static Π.
			if reorderMode != obdd.ReorderOff && !ix.Reordered() {
				if st, err := ix.Sift(reorderOpts); err != nil {
					return nil, err
				} else if st.NodesBefore > 0 {
					fmt.Fprintf(os.Stderr, "reordered: %d -> %d nodes in %v\n",
						st.NodesBefore, st.NodesAfter, st.Duration.Round(time.Millisecond))
				}
			}
			return ix, nil
		}
		fmt.Fprintf(os.Stderr, "generating synthetic DBLP (%d authors)...\n", *authors)
		data, err := dblp.Generate(dblp.Config{NumAuthors: *authors, Seed: *seed})
		if err != nil {
			return nil, err
		}
		m, err := data.MVDB()
		if err != nil {
			return nil, err
		}
		tr, err := m.Translate(core.TranslateOptions{})
		if err != nil {
			return nil, err
		}
		tr.Parallelism = *par
		tr.Reorder = reorderOpts
		return mvindex.Build(tr)
	}

	var (
		ix       *mvindex.Index
		live     *server.Live
		follower *server.FollowerState
		err      error
	)
	t0 := time.Now()
	switch {
	case *replicaOf != "":
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "mvdbd: -replica-of requires -wal-dir for the replica's local WAL and snapshot")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "starting as a replica of %s...\n", *replicaOf)
		ix, follower, err = server.OpenFollower(server.FollowerConfig{
			Dir:              *walDir,
			PrimaryURL:       *replicaOf,
			SnapshotPath:     *snapPath,
			MaxStaleness:     *maxStaleness,
			SnapshotInterval: *snapInterval,
			GroupCommit:      *groupCommit,
		})
	case *walDir != "":
		sp := *snapPath
		if sp == "" {
			sp = filepath.Join(*walDir, "index.snap")
		}
		ix, live, err = server.OpenLive(server.LiveConfig{
			WALDir:           *walDir,
			SnapshotPath:     sp,
			SnapshotInterval: *snapInterval,
			GroupCommit:      *groupCommit,
		}, build)
	default:
		ix, err = build()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}

	h := server.NewWith(ix, server.Config{
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
		MaxBodyBytes: *maxBody,
		Budget:       budget.Budget{MaxNodes: *maxNodes, MaxPairs: *maxPairs},
		Cache:        qcache.Options{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, Disable: !*cache},
	})
	switch {
	case follower != nil:
		h.EnableFollower(follower)
	case live != nil:
		h.EnableLive(live)
		// Any node with a WAL can ship it; this also persists the fencing
		// term so the node survives failovers happening around it.
		if err := h.EnableReplicationPrimary(live, server.ReplicationConfig{}); err != nil {
			fmt.Fprintln(os.Stderr, "mvdbd:", err)
			os.Exit(1)
		}
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// Header-read and idle timeouts plus a header cap keep slowloris
		// clients from pinning connections (the admission semaphore only
		// guards evaluation, not accept). No WriteTimeout: the replication
		// stream is a deliberate long poll.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}

	fmt.Fprintf(os.Stderr, "ready in %v: %d index nodes, %d blocks; listening on %s\n",
		time.Since(t0).Round(time.Millisecond), ix.Size(), ix.Blocks(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintln(os.Stderr, "mvdbd: shutting down, draining in-flight requests...")
	h.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd: shutdown:", err)
		os.Exit(1)
	}
	if live != nil {
		// Flush the WAL and take the final snapshot after HTTP shutdown, so
		// no update races the close.
		if err := live.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mvdbd: closing live state:", err)
			os.Exit(1)
		}
	}
	if follower != nil {
		// Stop tailing, snapshot locally, close the local WAL. If the node
		// was promoted mid-run this closes the write path instead.
		if err := follower.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mvdbd: closing replica state:", err)
			os.Exit(1)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mvdbd: clean exit")
}
