// Command mvdbd serves a compiled MV-index over HTTP (see internal/server
// for the JSON API). It either generates the synthetic DBLP dataset or
// loads a previously saved index.
//
//	mvdbd -authors 2000 -addr :8080
//	mvdbd -load-index dblp.mvx -addr :8080
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -d '{"query": "Q(a) :- Advisor(104,a)"}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		authors   = flag.Int("authors", 2000, "aid domain of the synthetic DBLP dataset")
		seed      = flag.Int64("seed", 1, "generator seed")
		loadIndex = flag.String("load-index", "", "serve a previously saved MV-index instead of generating data")
		par       = flag.Int("parallelism", 0, "workers for OBDD compilation (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	var (
		ix  *mvindex.Index
		err error
	)
	t0 := time.Now()
	if *loadIndex != "" {
		fmt.Fprintf(os.Stderr, "loading MV-index from %s...\n", *loadIndex)
		ix, err = mvindex.LoadFile(*loadIndex)
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic DBLP (%d authors)...\n", *authors)
		var data *dblp.Dataset
		data, err = dblp.Generate(dblp.Config{NumAuthors: *authors, Seed: *seed})
		if err == nil {
			var m *core.MVDB
			m, err = data.MVDB()
			if err == nil {
				var tr *core.Translation
				tr, err = m.Translate(core.TranslateOptions{})
				if err == nil {
					tr.Parallelism = *par
					ix, err = mvindex.Build(tr)
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ready in %v: %d index nodes, %d blocks; listening on %s\n",
		time.Since(t0).Round(time.Millisecond), ix.Size(), ix.Blocks(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(ix),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}
}
