// Command mvdbd serves a compiled MV-index over HTTP (see internal/server
// for the JSON API). It either generates the synthetic DBLP dataset or
// loads a previously saved index.
//
//	mvdbd -authors 2000 -addr :8080
//	mvdbd -load-index dblp.mvx -addr :8080
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -H 'Content-Type: application/json' \
//	     -d '{"query": "Q(a) :- Advisor(104,a)"}'
//
// The service degrades gracefully under pressure: -query-timeout bounds each
// evaluation (408 on expiry), -max-nodes/-max-pairs bound its resources (503
// on exhaustion), -max-inflight sheds excess load (503 + Retry-After), and
// SIGINT/SIGTERM drain in-flight requests before exiting 0. /healthz reports
// liveness, /readyz readiness (503 while draining).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/qcache"
	"mvdb/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		authors   = flag.Int("authors", 2000, "aid domain of the synthetic DBLP dataset")
		seed      = flag.Int64("seed", 1, "generator seed")
		loadIndex = flag.String("load-index", "", "serve a previously saved MV-index instead of generating data")
		par       = flag.Int("parallelism", 0, "workers for OBDD compilation (0 = GOMAXPROCS, 1 = sequential)")

		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-request evaluation timeout (0 = none); expiry returns 408")
		maxInflight  = flag.Int("max-inflight", 64, "concurrently evaluating requests before shedding with 503 (0 = unlimited)")
		maxNodes     = flag.Int("max-nodes", 0, "OBDD nodes a single evaluation may allocate (0 = unlimited); exhaustion returns 503")
		maxPairs     = flag.Int("max-pairs", 0, "intersection pairs a single evaluation may visit (0 = unlimited); exhaustion returns 503")
		maxBody      = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size cap in bytes; larger bodies return 413")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		cache        = flag.Bool("cache", true, "cross-query answer/lineage cache on the serving path")
		cacheEntries = flag.Int("cache-entries", 0, "answer-cache entry cap (0 = default, negative = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "answer-cache byte cap (0 = default, negative = unlimited)")
	)
	flag.Parse()

	var (
		ix  *mvindex.Index
		err error
	)
	t0 := time.Now()
	if *loadIndex != "" {
		fmt.Fprintf(os.Stderr, "loading MV-index from %s...\n", *loadIndex)
		ix, err = mvindex.LoadFile(*loadIndex)
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic DBLP (%d authors)...\n", *authors)
		var data *dblp.Dataset
		data, err = dblp.Generate(dblp.Config{NumAuthors: *authors, Seed: *seed})
		if err == nil {
			var m *core.MVDB
			m, err = data.MVDB()
			if err == nil {
				var tr *core.Translation
				tr, err = m.Translate(core.TranslateOptions{})
				if err == nil {
					tr.Parallelism = *par
					ix, err = mvindex.Build(tr)
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}

	h := server.NewWith(ix, server.Config{
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
		MaxBodyBytes: *maxBody,
		Budget:       budget.Budget{MaxNodes: *maxNodes, MaxPairs: *maxPairs},
		Cache:        qcache.Options{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, Disable: !*cache},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	fmt.Fprintf(os.Stderr, "ready in %v: %d index nodes, %d blocks; listening on %s\n",
		time.Since(t0).Round(time.Millisecond), ix.Size(), ix.Blocks(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintln(os.Stderr, "mvdbd: shutting down, draining in-flight requests...")
	h.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mvdbd: shutdown:", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mvdbd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mvdbd: clean exit")
}
