// Command dblpgen generates the synthetic DBLP dataset (Figure 1 of the
// paper) and writes each table as a CSV file, so the data can be inspected
// or loaded into other systems. Probabilistic tables carry a trailing
// weight column (odds).
//
//	dblpgen -authors 2000 -out /tmp/dblp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mvdb/internal/dblp"
)

func main() {
	var (
		authors = flag.Int("authors", 2000, "aid domain size")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory for the CSV files")
	)
	flag.Parse()

	d, err := dblp.Generate(dblp.Config{NumAuthors: *authors, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, st := range d.DB.Stats() {
		path := filepath.Join(*out, st.Relation+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := d.DB.ExportCSV(st.Relation, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		kind := "probabilistic"
		if st.Deterministic {
			kind = "deterministic"
		}
		fmt.Printf("%-20s %-14s %8d tuples -> %s\n", st.Relation, kind, st.Tuples, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dblpgen:", err)
	os.Exit(1)
}
