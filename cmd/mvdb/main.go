// Command mvdb loads the synthetic DBLP MVDB (Figure 1 of the paper),
// compiles the MV-index, and evaluates datalog-style queries against it.
//
// One-shot:
//
//	mvdb -authors 2000 "Q(aid) :- Student(aid,y), Advisor(aid,a), Author(a,n), n like '%Madden%'"
//
// Interactive (reads one query per line from stdin):
//
//	mvdb -authors 2000 -i
//	> Q(a) :- Advisor(104,a)
//	> \tables
//	> \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/plan"
	"mvdb/internal/ucq"
)

type session struct {
	data *dblp.Dataset
	tr   *core.Translation
	ix   *mvindex.Index
	meth string
	par  int
}

func main() {
	var (
		authors     = flag.Int("authors", 2000, "aid domain of the synthetic DBLP dataset")
		seed        = flag.Int64("seed", 1, "generator seed")
		views       = flag.String("views", "123", "MarkoViews to enable: any subset of 123")
		method      = flag.String("method", "index", "evaluation method: index, index-cc, obdd, lifted, dpll")
		interactive = flag.Bool("i", false, "interactive mode (read queries from stdin)")
		saveIndex   = flag.String("save-index", "", "write the compiled MV-index to this file and continue")
		loadIndex   = flag.String("load-index", "", "load a previously saved MV-index instead of generating data")
		parallelism = flag.Int("parallelism", 0, "workers for OBDD compilation and per-answer query loops (0 = GOMAXPROCS, 1 = sequential)")

		reorder          = flag.String("reorder", "off", "dynamic variable reordering after compile: off | once | converge")
		reorderMaxGrowth = flag.Float64("reorder-max-growth", obdd.DefaultMaxGrowth, "sifting growth bound (times the pre-sift node count)")
		reorderRounds    = flag.Int("reorder-rounds", obdd.DefaultMaxRounds, "max sifting rounds in converge mode")
	)
	flag.Parse()

	reorderMode, merr := obdd.ParseReorderMode(*reorder)
	if merr != nil {
		fatal(merr)
	}
	reorderOpts := obdd.ReorderOptions{Mode: reorderMode, MaxGrowth: *reorderMaxGrowth, MaxRounds: *reorderRounds}

	t0 := time.Now()
	var (
		data *dblp.Dataset
		sel  []*core.MarkoView
		tr   *core.Translation
		ix   *mvindex.Index
		err  error
	)
	if *loadIndex != "" {
		fmt.Fprintf(os.Stderr, "loading MV-index from %s...\n", *loadIndex)
		ix, err = mvindex.LoadFile(*loadIndex)
		if err != nil {
			fatal(err)
		}
		tr = ix.Translation()
		tr.Parallelism = *parallelism
		if reorderMode != obdd.ReorderOff && !ix.Reordered() {
			if st, serr := ix.Sift(reorderOpts); serr != nil {
				fatal(serr)
			} else if st.NodesBefore > 0 {
				fmt.Fprintf(os.Stderr, "reordered: %d -> %d nodes in %v\n",
					st.NodesBefore, st.NodesAfter, st.Duration.Round(time.Millisecond))
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic DBLP (%d authors, views %s)...\n", *authors, *views)
		data, err = dblp.Generate(dblp.Config{NumAuthors: *authors, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for _, c := range *views {
			switch c {
			case '1':
				sel = append(sel, data.V1)
			case '2':
				sel = append(sel, data.V2)
			case '3':
				sel = append(sel, data.V3)
			default:
				fatal(fmt.Errorf("unknown view %q", string(c)))
			}
		}
		m, err := data.MVDB(sel...)
		if err != nil {
			fatal(err)
		}
		tr, err = m.Translate(core.TranslateOptions{})
		if err != nil {
			fatal(err)
		}
		tr.Parallelism = *parallelism
		tr.Reorder = reorderOpts
		ix, err = mvindex.Build(tr)
		if err != nil {
			fatal(err)
		}
	}
	if *saveIndex != "" {
		if err := ix.SaveFile(*saveIndex); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "MV-index saved to %s\n", *saveIndex)
	}
	fmt.Fprintf(os.Stderr, "ready in %v: %d tuple variables, MV-index %d nodes in %d blocks\n",
		time.Since(t0).Round(time.Millisecond), tr.DB.NumVars(), ix.Size(), ix.Blocks())

	s := &session{data: data, tr: tr, ix: ix, meth: *method, par: *parallelism}
	if args := flag.Args(); len(args) > 0 {
		for _, src := range args {
			if err := s.runQuery(src); err != nil {
				fatal(err)
			}
		}
		return
	}
	if !*interactive {
		fmt.Fprintln(os.Stderr, "no query given; pass a query argument or -i for interactive mode")
		os.Exit(2)
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			s.printTables()
		case line == `\views`:
			for _, v := range sel {
				fmt.Printf("%s: %s\n", v.Name, v.Def.String())
			}
		case line == `\stats`:
			st, _ := s.tr.CompileStats()
			fmt.Printf("index: %d nodes, %d blocks, P0(W)=%.6f; compile: %d concat, %d synth, %d lineage falls\n",
				s.ix.Size(), s.ix.Blocks(), 1-s.ix.ProbNotW(), st.ConcatSteps, st.SynthSteps, st.LineageFalls)
			if ri := s.ix.ReorderInfo(); ri != nil {
				fmt.Printf("reorder: %s (%s), %d -> %d nodes, %d rounds, %d swaps, %.1fms, %d delta reuses\n",
					ri.Mode, ri.Provenance, ri.NodesBefore, ri.NodesAfter, ri.Rounds, ri.Swaps, ri.SiftMillis, ri.DeltaReuses)
			}
		case strings.HasPrefix(line, `\explain `):
			if err := s.explain(strings.TrimPrefix(line, `\explain `)); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case strings.HasPrefix(line, `\plan `):
			if err := s.plan(strings.TrimPrefix(line, `\plan `)); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case strings.HasPrefix(line, `\marginal `):
			if err := s.marginal(strings.TrimPrefix(line, `\marginal `)); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case line == `\compact`:
			freed := s.ix.Compact()
			fmt.Printf("compacted: %d manager nodes freed\n", freed)
		case strings.HasPrefix(line, `\dot`):
			if err := s.dot(strings.TrimSpace(strings.TrimPrefix(line, `\dot`))); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case line == `\help`:
			fmt.Println(`enter a query like "Q(a) :- Advisor(104,a)", or:
  \tables            relation inventory
  \views             active MarkoViews
  \stats             index and compile statistics
  \explain <query>   traversal statistics for one Boolean query
  \plan <query>      extensional safe plan of the query alone (if one exists)
  \marginal Rel(v,..) corrected marginal of one probabilistic tuple
  \compact           drop dead OBDD nodes accumulated by queries
  \dot [file]        write the ¬W OBDD as Graphviz DOT (default stdout)
  \quit`)
		default:
			if err := s.runQuery(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		fmt.Print("> ")
	}
}

func (s *session) runQuery(src string) error {
	q, err := ucq.Parse(src)
	if err != nil {
		return err
	}
	t0 := time.Now()
	var rows []core.Answer
	switch s.meth {
	case "index":
		rows, err = s.ix.Query(q, mvindex.IntersectOptions{Parallelism: s.par})
	case "index-cc":
		rows, err = s.ix.Query(q, mvindex.IntersectOptions{CacheConscious: true, Parallelism: s.par})
	case "obdd":
		rows, err = s.tr.Query(q, core.MethodOBDD)
	case "lifted":
		rows, err = s.tr.Query(q, core.MethodLifted)
	case "dpll":
		rows, err = s.tr.Query(q, core.MethodDPLL)
	default:
		return fmt.Errorf("unknown method %q", s.meth)
	}
	if err != nil {
		return err
	}
	el := time.Since(t0)
	for _, r := range rows {
		parts := make([]string, len(r.Head))
		for i, v := range r.Head {
			parts[i] = v.String()
		}
		fmt.Printf("%-40s %.6f\n", strings.Join(parts, ", "), r.Prob)
	}
	fmt.Printf("-- %d answers in %v (%s)\n", len(rows), el.Round(time.Microsecond), s.meth)
	return nil
}

// explain prints intersection statistics for a Boolean query.
func (s *session) explain(src string) error {
	q, err := ucq.Parse(src)
	if err != nil {
		return err
	}
	b := ucq.UCQ{Disjuncts: q.Disjuncts}
	ex, err := s.ix.ExplainBoolean(b, mvindex.IntersectOptions{})
	if err != nil {
		return err
	}
	fmt.Println(ex)
	return nil
}

// plan prints the extensional safe plan of the query itself (not Q ∨ W).
func (s *session) plan(src string) error {
	q, err := ucq.Parse(src)
	if err != nil {
		return err
	}
	qp, err := plan.ExtractQuery(s.tr.DB, q)
	if err != nil {
		return err
	}
	fmt.Println(qp)
	return nil
}

// marginal prints the corrected marginal of one tuple, given as an atom
// with constant arguments, e.g. "Advisor(9,40)".
func (s *session) marginal(src string) error {
	q, err := ucq.Parse("M() :- " + strings.TrimSpace(src))
	if err != nil {
		return err
	}
	if len(q.Disjuncts) != 1 || len(q.Disjuncts[0].Atoms) != 1 {
		return fmt.Errorf("expected a single atom like Advisor(9,40)")
	}
	a := q.Disjuncts[0].Atoms[0]
	rel := s.tr.DB.Relation(a.Rel)
	if rel == nil {
		return fmt.Errorf("unknown relation %s", a.Rel)
	}
	vals := make([]engine.Value, len(a.Args))
	for i, t := range a.Args {
		if !t.IsConst {
			return fmt.Errorf("argument %d must be a constant", i+1)
		}
		vals[i] = t.Const
	}
	ti := rel.Lookup(vals)
	if ti < 0 {
		return fmt.Errorf("tuple not found")
	}
	tup := rel.Tuples[ti]
	if tup.Var == 0 {
		fmt.Println("deterministic tuple: probability 1")
		return nil
	}
	p, err := s.ix.TupleMarginal(tup.Var, mvindex.IntersectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("prior %.6f -> corrected marginal %.6f\n", tup.Prob(), p)
	return nil
}

// dot writes the index's ¬W OBDD in Graphviz format.
func (s *session) dot(path string) error {
	m, fW, err := s.tr.OBDD()
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return m.WriteDot(out, m.Not(fW), "notW", nil)
}

func (s *session) printTables() {
	for _, st := range s.tr.DB.Stats() {
		kind := "prob"
		if st.Deterministic {
			kind = "det "
		}
		fmt.Printf("%-20s %s %8d tuples\n", st.Relation, kind, st.Tuples)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mvdb:", err)
	os.Exit(1)
}
