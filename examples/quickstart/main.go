// Quickstart: Example 1 of the paper, end to end.
//
// Two possible tuples R(a), S(a) with weights w1, w2 and one MarkoView
// V(x)[w] :- R(x), S(x) correlating them. The program prints P(R(a) ∧ S(a))
// for several view weights, showing how w < 1 suppresses co-occurrence,
// w = 1 means independence, and w > 1 rewards it — and that the translated
// tuple-independent database agrees with the Markov Logic Network
// semantics even when the translation produces negative probabilities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mvdb"
)

func main() {
	const w1, w2 = 2.0, 3.0
	fmt.Printf("Tup = {R(a) [w=%g], S(a) [w=%g]}, MarkoView V(x)[w] :- R(x), S(x)\n\n", w1, w2)
	fmt.Printf("%-8s %-14s %-14s %-14s\n", "w", "P(R∧S)", "P(R∨S)", "NV weight w0")

	for _, w := range []float64{0, 0.25, 1, 2, 8} {
		db := mvdb.NewDatabase()
		db.MustCreateRelation("R", false, "x")
		db.MustCreateRelation("S", false, "x")
		db.MustInsert("R", w1, mvdb.Int(1))
		db.MustInsert("S", w2, mvdb.Int(1))

		m := mvdb.New(db)
		view, err := mvdb.ParseView("V(x) :- R(x), S(x)", mvdb.ConstWeight(w))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddView(view); err != nil {
			log.Fatal(err)
		}

		tr, err := m.Translate(mvdb.TranslateOptions{KeepIndependent: true})
		if err != nil {
			log.Fatal(err)
		}
		and, err1 := prob(tr, "Q() :- R(x), S(x)")
		or, err2 := prob(tr, "Q() :- R(x)\nQ() :- S(x)")
		if err1 != nil || err2 != nil {
			log.Fatal(err1, err2)
		}
		// The translated NV tuple weight (1-w)/w is negative for w > 1.
		w0 := "—"
		if w > 0 {
			w0 = fmt.Sprintf("%.3f", (1-w)/w)
		}
		fmt.Printf("%-8g %-14.6f %-14.6f %-14s\n", w, and, or, w0)
	}

	fmt.Println("\nw=0 makes R(a), S(a) exclusive; w=1 independent (P = 2/3 * 3/4 = 1/2);")
	fmt.Println("w>1 positively correlated — computed through a tuple-independent")
	fmt.Println("database whose NV tuple has a NEGATIVE probability (Section 3.3).")
}

func prob(tr *mvdb.Translation, src string) (float64, error) {
	q, err := mvdb.ParseQuery(src)
	if err != nil {
		return 0, err
	}
	return tr.ProbBoolean(q.UCQ, mvdb.MethodOBDD)
}
