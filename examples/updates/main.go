// Updates: live mutations with incremental MV-index maintenance.
//
// The program builds the advisor MVDB of the running example, then mutates
// it online — insert an Advisor tuple, query, delete it again, query — and
// shows the marginal probabilities shifting as the MarkoView correlations
// take the new tuple into account. After every batch the incrementally
// maintained index is checked against an index rebuilt from scratch over the
// same mutated source: the probabilities must agree to 1e-12.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mvdb"
)

func main() {
	// Three students; student 1 has two advisor candidates, the others one.
	db := mvdb.NewDatabase()
	db.MustCreateRelation("Advisor", false, "s", "a")
	db.MustInsert("Advisor", 2, mvdb.Int(1), mvdb.Int(10))
	db.MustInsert("Advisor", 2, mvdb.Int(1), mvdb.Int(11))
	db.MustInsert("Advisor", 1.5, mvdb.Int(2), mvdb.Int(10))
	db.MustInsert("Advisor", 1.5, mvdb.Int(3), mvdb.Int(12))

	m := mvdb.New(db)
	// At most one advisor per student: a denial view (weight 0) over pairs.
	v, err := mvdb.ParseView("OneAdvisor(s,a,b) :- Advisor(s,a), Advisor(s,b), a <> b", nil)
	if err != nil {
		log.Fatal(err)
	}
	v.Weights = &mvdb.WeightTable{Default: 0}
	if err := m.AddView(v); err != nil {
		log.Fatal(err)
	}

	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := mvdb.BuildIndex(tr)
	if err != nil {
		log.Fatal(err)
	}

	q, err := mvdb.ParseQuery("Q(s,a) :- Advisor(s,a)")
	if err != nil {
		log.Fatal(err)
	}
	show := func(when string) {
		rows, err := ix.Query(q, mvdb.IntersectOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", when)
		for _, r := range rows {
			fmt.Printf("  P(Advisor(%v,%v)) = %.6f\n", r.Head[0], r.Head[1], r.Prob)
		}
		fmt.Println()
	}
	// verify rebuilds an index from scratch over the mutated source and
	// compares every marginal — the incremental path must not drift.
	verify := func() {
		src := ix.Source()
		work := &mvdb.MVDB{DB: src.DB.Clone(), Views: src.Views}
		trF, err := work.Translate(mvdb.TranslateOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ref, err := mvdb.BuildIndex(trF)
		if err != nil {
			log.Fatal(err)
		}
		got, err := ix.Query(q, mvdb.IntersectOptions{})
		if err != nil {
			log.Fatal(err)
		}
		want, err := ref.Query(q, mvdb.IntersectOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if len(got) != len(want) {
			log.Fatalf("incremental index has %d answers, from-scratch rebuild %d", len(got), len(want))
		}
		probs := map[string]float64{}
		for _, r := range want {
			probs[fmt.Sprint(r.Head)] = r.Prob
		}
		for _, r := range got {
			if w, ok := probs[fmt.Sprint(r.Head)]; !ok || math.Abs(r.Prob-w) > 1e-12 {
				log.Fatalf("drift on %v: incremental %.15f vs rebuild %.15f", r.Head, r.Prob, w)
			}
		}
		fmt.Println("  ✓ matches a from-scratch rebuild to 1e-12")
	}

	show("initial state (student 1 has candidates 10 and 11)")

	// A third candidate for student 1: the denial view spreads the mass over
	// three mutually exclusive options, pushing every candidate down.
	t0 := time.Now()
	st, err := ix.ApplyMutations([]mvdb.Mutation{
		{Op: mvdb.MutInsert, Rel: "Advisor", Vals: []mvdb.Value{mvdb.Int(1), mvdb.Int(12)}, Weight: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert Advisor(1,12) w=2: %d/%d blocks reused, %v\n",
		st.Reused, st.Blocks, time.Since(t0).Round(time.Microsecond))
	show("after insert")
	verify()

	// Delete it again: the remaining candidates recover their original mass.
	t0 = time.Now()
	st, err = ix.ApplyMutations([]mvdb.Mutation{
		{Op: mvdb.MutDelete, Rel: "Advisor", Vals: []mvdb.Value{mvdb.Int(1), mvdb.Int(12)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelete Advisor(1,12): %d/%d blocks reused, %v\n",
		st.Reused, st.Blocks, time.Since(t0).Round(time.Microsecond))
	show("after delete (back to the initial marginals)")
	verify()

	// Reweights ride the fast path: no recompilation at all.
	t0 = time.Now()
	st, err = ix.ApplyMutations([]mvdb.Mutation{
		{Op: mvdb.MutReweight, Rel: "Advisor", Vals: []mvdb.Value{mvdb.Int(3), mvdb.Int(12)}, Weight: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreweight Advisor(3,12) w=4: weight-only=%v, %v\n",
		st.WeightOnly, time.Since(t0).Round(time.Microsecond))
	show("after reweight (student 3's advisor more likely)")
	verify()
}
