// Affiliations: positive correlations through MarkoView V3.
//
// Affiliationp holds inferred affiliations (authors who recently co-publish
// with people from an institute probably belong to it). V3 states that two
// people who publish a lot together very likely share an affiliation —
// a positive correlation (weight count/5 > 1), which translates into NV
// tuples with negative probabilities. The program compares each author's
// affiliation probability with and without V3 and verifies all final
// answers stay in [0, 1].
//
//	go run ./examples/affiliations
package main

import (
	"fmt"
	"log"

	"mvdb"
)

func main() {
	data, err := mvdb.GenerateDBLP(mvdb.DBLPConfig{NumAuthors: 1200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	with, err := buildIndex(data, true)
	if err != nil {
		log.Fatal(err)
	}
	without, err := buildIndex(data, false)
	if err != nil {
		log.Fatal(err)
	}

	// Authors that appear in some V3 tuple are the interesting ones.
	m, err := data.MVDB(data.V3)
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := m.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V3 has %d tuples (pairs with heavy recent co-publication)\n\n", len(tuples))
	fmt.Printf("%-10s %-14s %-16s %-16s\n", "author", "institute", "P(independent)", "P(with V3)")

	seen := map[int64]bool{}
	shown := 0
	for _, vt := range tuples {
		for _, col := range []int{0, 1} {
			aid := vt.Head[col].Int
			if seen[aid] || shown >= 8 {
				continue
			}
			seen[aid] = true
			shown++
			q, err := mvdb.ParseQuery(fmt.Sprintf("Q(inst) :- Affiliation(%d,inst)", aid))
			if err != nil {
				log.Fatal(err)
			}
			a, err := with.Query(q, mvdb.IntersectOptions{CacheConscious: true})
			if err != nil {
				log.Fatal(err)
			}
			b, err := without.Query(q, mvdb.IntersectOptions{CacheConscious: true})
			if err != nil {
				log.Fatal(err)
			}
			for i := range a {
				if a[i].Prob < 0 || a[i].Prob > 1 {
					log.Fatalf("probability %v outside [0,1]", a[i].Prob)
				}
				fmt.Printf("%-10d %-14s %-16.4f %-16.4f\n",
					aid, a[i].Head[0].Str, b[i].Prob, a[i].Prob)
			}
		}
	}
	fmt.Println("\nV3's positive correlation raises the probability of shared")
	fmt.Println("affiliations — computed exactly through NV tuples whose translated")
	fmt.Println("probabilities are negative (weight (1-w)/w < 0 for w > 1).")
}

func buildIndex(data *mvdb.DBLPDataset, withV3 bool) (*mvdb.Index, error) {
	views := []*mvdb.MarkoView{data.V1, data.V2}
	if withV3 {
		views = append(views, data.V3)
	}
	m, err := data.MVDB(views...)
	if err != nil {
		return nil, err
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		return nil, err
	}
	return mvdb.BuildIndex(tr)
}
