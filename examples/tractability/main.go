// Tractability: safe vs unsafe queries on the translated INDB.
//
// Theorem 1 moves MVDB evaluation into tuple-independent databases, where
// the tractable UCQs are fully characterized (Dalvi-Suciu dichotomy): if
// both W and Q ∨ W are safe, P(Q) is computable in PTIME by lifted
// inference. The program classifies a handful of query shapes with IsSafe,
// evaluates the safe ones with both lifted inference and OBDD compilation
// (they must agree), and shows the unsafe H0 query falling back to OBDDs.
//
//	go run ./examples/tractability
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"mvdb"
)

func main() {
	// A small random-ish INDB with R, S, T.
	db := mvdb.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustCreateRelation("T", false, "b")
	for i := int64(1); i <= 12; i++ {
		db.MustInsert("R", 0.3+float64(i%5)*0.4, mvdb.Int(i))
		db.MustInsert("T", 0.2+float64(i%3)*0.5, mvdb.Int(100+i))
		for j := int64(0); j < 2; j++ {
			db.MustInsert("S", 0.5+float64((i+j)%4)*0.3, mvdb.Int(i), mvdb.Int(100+(i+j)%12+1))
		}
	}
	m := mvdb.New(db)
	// A mild correlation so W is non-trivial.
	v, err := mvdb.ParseView("V(x) :- R(x), S(x,y)", mvdb.ConstWeight(1.8))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		log.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"Q() :- R(x)",
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x)\nQ() :- T(y)",
		"Q() :- S(x,y), T(y)",
		"Q() :- R(x), S(x,y), T(y)", // H0: #P-hard
	}
	fmt.Printf("%-36s %-8s %-12s %-12s\n", "query", "Q safe?", "lifted", "obdd")
	for _, src := range queries {
		q, err := mvdb.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		safe := mvdb.IsSafe(q.UCQ)
		pOBDD, err := tr.ProbBoolean(q.UCQ, mvdb.MethodOBDD)
		if err != nil {
			log.Fatal(err)
		}
		lifted := "—"
		pLift, err := tr.ProbBoolean(q.UCQ, mvdb.MethodLifted)
		switch {
		case err == nil:
			lifted = fmt.Sprintf("%.8f", pLift)
			if math.Abs(pLift-pOBDD) > 1e-9 {
				log.Fatalf("lifted %v and OBDD %v disagree on %q", pLift, pOBDD, src)
			}
		case errors.Is(err, mvdb.ErrUnsafe):
			lifted = "unsafe"
		default:
			log.Fatal(err)
		}
		fmt.Printf("%-36s %-8v %-12s %-12.8f\n",
			oneLine(src), safe, lifted, pOBDD)
	}
	// Show the extracted extensional plan for one safe query.
	qp, _ := mvdb.ParseQuery("Q() :- R(x), S(x,y)")
	if p, err := mvdb.ExtractPlan(tr.DB, qp.UCQ); err == nil {
		fmt.Println("\nextensional safe plan for R(x),S(x,y):")
		fmt.Println(p)
	}

	fmt.Println("\nH0 = R(x),S(x,y),T(y) has no safe plan (#P-hard in general); the")
	fmt.Println("OBDD method still answers it exactly — at lineage-compilation cost.")
	fmt.Println("note: lifted evaluation needs Q ∨ W safe, not just Q — a safe Q can")
	fmt.Println("still report \"unsafe\" when its union with the views has no plan.")
}

func oneLine(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' {
			out = append(out, ' ', '∨', ' ')
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
