// Learning: recover MarkoView weights from data.
//
// The paper points out that a MarkoView "can be seen as a set of MLN
// features, and thus, its weights can be learned as in MLNs" (Section 1),
// and defers learning to MLN machinery. This example closes that loop on a
// small instance: it builds an MVDB whose view correlates two tables,
// samples training worlds from the exact Definition 4 distribution, learns
// all feature weights back by exact-gradient generative learning starting
// from indifference (w = 1), and compares the learned model's marginals to
// the source model's.
//
//	go run ./examples/learning
package main

import (
	"fmt"
	"log"

	"mvdb"
)

func main() {
	// Ground truth: three papers, each with an "is-seminal" tuple in R and
	// a "highly-cited" tuple in S; the view says the two go together.
	const trueViewWeight = 5.0
	build := func() *mvdb.MVDB {
		db := mvdb.NewDatabase()
		db.MustCreateRelation("Seminal", false, "pid")
		db.MustCreateRelation("Cited", false, "pid")
		for pid := int64(1); pid <= 3; pid++ {
			db.MustInsert("Seminal", 0.8, mvdb.Int(pid))
			db.MustInsert("Cited", 1.5, mvdb.Int(pid))
		}
		m := mvdb.New(db)
		v, err := mvdb.ParseView("V(p) :- Seminal(p), Cited(p)", mvdb.ConstWeight(trueViewWeight))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddView(v); err != nil {
			log.Fatal(err)
		}
		return m
	}

	src := build()
	net, err := src.GroundMLN()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source MLN: %d variables, %d features (6 tuples + 3 view tuples)\n",
		net.NumVars, len(net.Features))

	// Training data: worlds drawn from the exact MVDB distribution.
	data, err := net.SampleWorlds(15000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d training worlds\n\n", len(data))

	learned, err := net.LearnWeights(data, mvdb.LearnOptions{Iterations: 300, LearningRate: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	// The view-tuple features are the last three; weights are identifiable
	// only up to reparameterization, so compare marginals instead.
	q, err := mvdb.ParseQuery("Q() :- Seminal(1), Cited(1)")
	if err != nil {
		log.Fatal(err)
	}
	want, err := src.ProbExact(q.UCQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %-10s %-10s\n", "quantity", "source", "learned")
	for i := 1; i <= net.NumVars; i++ {
		ws, _ := net.MarginalExact(varFormula(i))
		wl, _ := learned.MarginalExact(varFormula(i))
		fmt.Printf("P(x%d)%29s %-10.4f %-10.4f\n", i, "", ws, wl)
	}
	fmt.Printf("\nP(Seminal(1) ∧ Cited(1)) source = %.4f\n", want)
	fmt.Printf("view weight used by the source model: %.1f (positive correlation)\n", trueViewWeight)
	fmt.Println("\nthe learned model reproduces the source marginals from data alone,")
	fmt.Println("starting from independence — the MLN learning loop the paper refers to.")
}

// varFormula adapts a variable id to the formula interface via the facade's
// MLN alias (lineage.Var is internal; MLN queries accept any Formula, and
// single-variable marginals are the common case, so the facade could grow a
// helper — here we go through a one-variable ground query instead).
func varFormula(v int) mvdb.MLNFormula { return mvdb.VarFormula(v) }
