// Evidence: conditional queries over an MVDB.
//
// Knowing that one uncertain fact is true (or false) changes the
// probability of the others — through the tuple-independent translation
// this is just evaluating Theorem 1's ratio under a conditioned probability
// vector (the "conditioning probabilistic databases" idea the paper cites
// as related work [17], specialised to tuple evidence). The program builds
// a small advisor network with the V2 denial constraint and a V1-style
// positive correlation, then shows how observing one advisor edge
// redistributes belief over the others.
//
//	go run ./examples/evidence
package main

import (
	"fmt"
	"log"

	"mvdb"
)

func main() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("Adv", false, "student", "advisor")
	// Student 1 has two candidates; student 2 shares candidate 10.
	v110 := db.MustInsert("Adv", 1.5, mvdb.Int(1), mvdb.Int(10))
	db.MustInsert("Adv", 1.0, mvdb.Int(1), mvdb.Int(11))
	db.MustInsert("Adv", 1.2, mvdb.Int(2), mvdb.Int(10))

	m := mvdb.New(db)
	denial, err := mvdb.ParseView("V2(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", mvdb.ConstWeight(0))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.AddView(denial); err != nil {
		log.Fatal(err)
	}
	// Positive correlation: students of the same advisor reinforce each
	// other (a V1-flavoured view).
	boost, err := mvdb.ParseView("V1(a) :- Adv(s,a), Adv(t,a), s <> t", mvdb.ConstWeight(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.AddView(boost); err != nil {
		log.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	queries := map[string]string{
		"Adv(1,11)": "Q() :- Adv(1,11)",
		"Adv(2,10)": "Q() :- Adv(2,10)",
	}
	fmt.Printf("%-12s %-14s %-22s %-22s\n", "fact", "P(fact)", "P(fact | Adv(1,10))", "P(fact | ¬Adv(1,10))")
	for label, src := range queries {
		q, err := mvdb.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		base, err := tr.ProbBoolean(q.UCQ, mvdb.MethodDPLL)
		if err != nil {
			log.Fatal(err)
		}
		yes, err := tr.ProbGivenTuples(q.UCQ, mvdb.Evidence{v110: true}, mvdb.MethodDPLL)
		if err != nil {
			log.Fatal(err)
		}
		no, err := tr.ProbGivenTuples(q.UCQ, mvdb.Evidence{v110: false}, mvdb.MethodDPLL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-14.4f %-22.4f %-22.4f\n", label, base, yes, no)
	}
	fmt.Println("\nobserving Adv(1,10) kills the rival edge Adv(1,11) (denial view V2)")
	fmt.Println("and raises Adv(2,10) (positive correlation through V1).")
}
