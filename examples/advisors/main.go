// Advisors: the running example of Figure 2 on the synthetic DBLP dataset.
//
// The MarkoViews V1 (the more papers a student and an advisor co-author
// during the student years, the more likely the advisor relationship) and
// V2 (a person has at most one advisor — a denial constraint) correlate the
// Advisor tuples. The program compiles the MV-index offline, then runs the
// query "find all students advised by someone named %Madden%" and, for one
// student with two advisor candidates, shows how the denial view pushes the
// two candidates' probabilities apart compared to the independent baseline.
//
//	go run ./examples/advisors
package main

import (
	"fmt"
	"log"
	"time"

	"mvdb"
)

func main() {
	data, err := mvdb.GenerateDBLP(mvdb.DBLPConfig{NumAuthors: 2000, Seed: 7, MaddenEvery: 12})
	if err != nil {
		log.Fatal(err)
	}
	m, err := data.MVDB(data.V1, data.V2)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	ix, err := mvdb.BuildIndex(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MV-index: %d nodes, %d blocks, compiled in %v\n\n",
		ix.Size(), ix.Blocks(), time.Since(t0).Round(time.Millisecond))

	// The Figure 2 query.
	q, err := mvdb.ParseQuery(
		"Q(aid) :- Student(aid,year), Advisor(aid,a), Author(a,n), n like '%Madden%'")
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	rows, err := ix.Query(q, mvdb.IntersectOptions{CacheConscious: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("students advised by %%Madden%% (%d answers in %v):\n",
		len(rows), time.Since(t0).Round(time.Microsecond))
	for i, r := range rows {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(rows)-10)
			break
		}
		fmt.Printf("  student %-8v P = %.4f\n", r.Head[0].Int, r.Prob)
	}

	// Find a student with two advisor candidates and show the V2 effect.
	adv := data.DB.Relation("Advisor")
	counts := map[int64]int{}
	for _, t := range adv.Tuples {
		counts[t.Vals[0].Int]++
	}
	var multi int64
	for s, c := range counts {
		if c >= 2 {
			multi = s
			break
		}
	}
	if multi == 0 {
		fmt.Println("\n(no student with two advisor candidates in this sample)")
		return
	}
	q2, err := mvdb.ParseQuery(fmt.Sprintf("Q(a) :- Advisor(%d,a)", multi))
	if err != nil {
		log.Fatal(err)
	}
	withViews, err := ix.Query(q2, mvdb.IntersectOptions{CacheConscious: true})
	if err != nil {
		log.Fatal(err)
	}
	// Independent baseline: the same database without any MarkoViews.
	base := mvdb.New(data.DB)
	trBase, err := base.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	noViews, err := trBase.Query(q2, mvdb.MethodOBDD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstudent %d has %d advisor candidates (V2: at most one advisor):\n", multi, counts[multi])
	fmt.Printf("  %-10s %-12s %-12s\n", "advisor", "independent", "with views")
	for i := range withViews {
		fmt.Printf("  %-10v %-12.4f %-12.4f\n",
			noViews[i].Head[0].Int, noViews[i].Prob, withViews[i].Prob)
	}
	fmt.Println("\nthe denial view makes the candidates mutually exclusive, so their")
	fmt.Println("joint mass is redistributed; V1 favours the candidate with more co-papers.")
}
