package mvdb_test

import (
	"fmt"
	"log"

	"mvdb"
)

// Example reproduces Example 1 of the paper: two tuples correlated by one
// MarkoView, evaluated through the tuple-independent translation.
func Example() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 2.0, mvdb.Int(1))
	db.MustInsert("S", 3.0, mvdb.Int(1))

	m := mvdb.New(db)
	v, err := mvdb.ParseView("V(x) :- R(x), S(x)", mvdb.ConstWeight(0.5))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		log.Fatal(err)
	}
	tr, err := m.Translate(mvdb.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	q, err := mvdb.ParseQuery("Q() :- R(x), S(x)")
	if err != nil {
		log.Fatal(err)
	}
	p, err := tr.ProbBoolean(q.UCQ, mvdb.MethodOBDD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(R ∧ S) = %.4f\n", p)
	// Output: P(R ∧ S) = 0.3333
}

// ExampleBuildIndex compiles a MarkoView set into an MV-index offline and
// answers a non-Boolean query with per-answer probabilities.
func ExampleBuildIndex() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("Adv", false, "student", "advisor")
	db.MustInsert("Adv", 2.0, mvdb.Int(1), mvdb.Int(10))
	db.MustInsert("Adv", 2.0, mvdb.Int(1), mvdb.Int(11))

	m := mvdb.New(db)
	// Denial constraint: at most one advisor per student.
	v, _ := mvdb.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", mvdb.ConstWeight(0))
	if err := m.AddView(v); err != nil {
		log.Fatal(err)
	}
	tr, _ := m.Translate(mvdb.TranslateOptions{})
	ix, err := mvdb.BuildIndex(tr)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := mvdb.ParseQuery("Q(a) :- Adv(1,a)")
	rows, err := ix.Query(q, mvdb.IntersectOptions{CacheConscious: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("advisor %v: %.4f\n", r.Head[0].Int, r.Prob)
	}
	// Without the view each advisor has probability 2/3 ≈ 0.6667; the
	// denial view makes them exclusive.
	// Output:
	// advisor 10: 0.2857
	// advisor 11: 0.2857
}

// ExampleTranslation_ProbBoolean shows the negative probabilities produced
// by a positively-weighted view (Section 3.3): intermediate P0 values leave
// [0,1] but the final answer is a true probability.
func ExampleTranslation_ProbBoolean() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 1.0, mvdb.Int(1))
	db.MustInsert("S", 1.0, mvdb.Int(1))
	m := mvdb.New(db)
	v, _ := mvdb.ParseView("V(x) :- R(x), S(x)", mvdb.ConstWeight(4)) // w>1: NV weight (1-4)/4 < 0
	if err := m.AddView(v); err != nil {
		log.Fatal(err)
	}
	tr, _ := m.Translate(mvdb.TranslateOptions{})
	pW, _ := tr.ProbW(mvdb.MethodOBDD)
	q, _ := mvdb.ParseQuery("Q() :- R(x), S(x)")
	p, _ := tr.ProbBoolean(q.UCQ, mvdb.MethodOBDD)
	fmt.Printf("P0(W) = %.4f (negative!)\n", pW)
	fmt.Printf("P(Q) = %.4f\n", p)
	// Output:
	// P0(W) = -0.7500 (negative!)
	// P(Q) = 0.5714
}

// ExampleIsSafe classifies queries by the existence of a safe plan.
func ExampleIsSafe() {
	safe, _ := mvdb.ParseQuery("Q() :- R(x), S(x,y)")
	hard, _ := mvdb.ParseQuery("Q() :- R(x), S(x,y), T(y)")
	fmt.Println(mvdb.IsSafe(safe.UCQ), mvdb.IsSafe(hard.UCQ))
	// Output: true false
}

// ExampleDefineProbTable materializes a probabilistic table from a query
// over deterministic tables — the middle layer of Figure 1.
func ExampleDefineProbTable() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("FirstPub", true, "aid", "year")
	db.MustCreateRelation("Calendar", true, "year")
	db.MustInsertDet("FirstPub", mvdb.Int(7), mvdb.Int(2000))
	for y := int64(1995); y <= 2010; y++ {
		db.MustInsertDet("Calendar", mvdb.Int(y))
	}
	q, _ := mvdb.ParseQuery("Student(aid,year) :- FirstPub(aid,yp), Calendar(year), year >= yp - 1, year <= yp + 5")
	n, err := mvdb.DefineProbTable(db, q, func(head []mvdb.Value) float64 {
		return 1 // weight 1: probability 1/2 per candidate year
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d possible Student tuples\n", n)
	// Output: 7 possible Student tuples
}

// ExampleExtractPlan extracts and prints an extensional safe plan.
func ExampleExtractPlan() {
	db := mvdb.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustInsert("R", 1, mvdb.Int(1))
	db.MustInsert("S", 1, mvdb.Int(1), mvdb.Int(2))
	q, _ := mvdb.ParseQuery("Q() :- R(x), S(x,y)")
	p, err := mvdb.ExtractPlan(db, q.UCQ)
	if err != nil {
		log.Fatal(err)
	}
	prob, _ := p.Prob()
	fmt.Printf("P = %.2f\n%s\n", prob, p)
	// Output:
	// P = 0.25
	// independent-project z0 over R[0]
	//   independent-join
	//     ground R("$z0")
	//     independent-project z1 over S[1]
	//       ground S("$z0","$z1")
}

// ExampleTopK ranks query answers.
func ExampleTopK() {
	answers := []mvdb.Answer{
		{Head: []mvdb.Value{mvdb.Int(1)}, Prob: 0.2},
		{Head: []mvdb.Value{mvdb.Int(2)}, Prob: 0.9},
		{Head: []mvdb.Value{mvdb.Int(3)}, Prob: 0.5},
	}
	for _, a := range mvdb.TopK(answers, 2) {
		fmt.Println(a.Head[0].Int, a.Prob)
	}
	// Output:
	// 2 0.9
	// 3 0.5
}
