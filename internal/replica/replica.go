// Package replica implements WAL-shipped replication: a primary-side
// log-shipping server and a follower-side applier, connected by two HTTP
// endpoints the hosting server mounts:
//
//	GET /replication/snapshot          gob index snapshot + checksum + WAL position
//	GET /replication/stream?after=N    CRC32C-framed WAL records > N, long-poll tail
//
// The package is payload-agnostic, like internal/wal underneath it: records
// are opaque bytes tagged with the primary's WAL sequence numbers, and the
// hosting server supplies callbacks that encode snapshots and apply records.
// Determinism does the heavy lifting — the MV-index translation is a pure
// function of the WAL-ordered mutation stream, so a follower that applies the
// same records converges to byte-identical answers.
//
// # Protocol
//
// A follower bootstraps from the snapshot endpoint (verifying the CRC32C
// checksum header), then tails the stream from the snapshot's covered
// sequence number. Stream frames are
//
//	[length u32][crc32c u32][payload]   payload = [seq u64][record bytes]
//
// little-endian, CRC32C (Castagnoli) over the payload. A frame with an empty
// record is a heartbeat: its sequence number advertises the primary's durable
// (synced) position, which drives the follower's staleness accounting. Only
// synced frames are shipped — an unsynced frame is unacknowledged and may
// legitimately vanish in a primary crash.
//
// # Robustness
//
// The follower's fetch loop survives every stream fault by construction: a
// torn or corrupt frame, a stalled stream (no frame within HeartbeatTimeout)
// or a dropped connection aborts the tail and reconnects with exponential
// backoff plus jitter, resuming from the last applied sequence number.
// Duplicate frames (seq ≤ cursor) are skipped idempotently; a sequence gap is
// a protocol violation that forces a reconnect (the primary's log is dense
// above its horizon, so a gap means frames were lost in flight); a cursor
// below the primary's horizon (the log prefix truncated by snapshots) answers
// 410 and forces a fresh snapshot bootstrap. The net effect: the follower
// either converges to the primary's exact state or refuses to serve — it
// never silently skips records.
//
// # Fencing
//
// A monotone term (persisted beside the WAL, see LoadTerm/SaveTerm) fences
// failovers. Every stream request carries the follower's term; a primary that
// sees a higher term than its own has been superseded — it demotes (stops
// acking writes) and rejects the stream with 409. Symmetrically a follower
// rejects responses whose term header is below the highest term it has seen,
// so a resurrected stale primary can never feed it old frames.
package replica

import "time"

// Hooks inject stream faults for chaos testing.
type Hooks struct {
	// ShipFrame intercepts every encoded frame (data and heartbeat) about to
	// be written to a replication stream, and returns the byte slices written
	// instead: nil drops the frame, the frame twice duplicates it, a strict
	// prefix truncates (tears) it mid-stream, and sleeping inside the hook
	// stalls the stream. Nil ships frames unmodified.
	ShipFrame func(seq uint64, frame []byte) [][]byte
}

// Wire protocol headers.
const (
	HeaderTerm     = "X-Mvdb-Term"     // fencing term, decimal
	HeaderSeq      = "X-Mvdb-Seq"      // snapshot's covered WAL sequence number
	HeaderChecksum = "X-Mvdb-Checksum" // CRC32C of the snapshot body, hex
)

const (
	// DefaultHeartbeatInterval paces primary heartbeats on an idle stream.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultHeartbeatTimeout is how long the follower waits for any frame
	// before declaring the stream stalled and reconnecting.
	DefaultHeartbeatTimeout = 5 * time.Second
)
