package replica

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mvdb/internal/wal"
)

// Stream framing: [length u32][crc32c u32][seq u64][record]; all little-
// endian, CRC32C (Castagnoli) over seq+record. Distinct from the WAL's
// on-disk framing (CRC32 IEEE) on purpose — a frame lifted verbatim from a
// segment file cannot be confused with a shipped one.

const (
	frameHeader = 8 // length u32 + crc32c u32
	seqBytes    = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame builds one stream frame. An empty record is a heartbeat whose
// seq advertises the primary's synced position.
func encodeFrame(seq uint64, record []byte) []byte {
	n := seqBytes + len(record)
	b := make([]byte, frameHeader+n)
	binary.LittleEndian.PutUint32(b[0:4], uint32(n))
	binary.LittleEndian.PutUint64(b[frameHeader:], seq)
	copy(b[frameHeader+seqBytes:], record)
	crc := crc32.Checksum(b[frameHeader:], castagnoli)
	binary.LittleEndian.PutUint32(b[4:8], crc)
	return b
}

// frameReader decodes stream frames. Any framing or checksum violation is an
// error — the caller drops the connection and resumes from its cursor, so a
// corrupt frame can never be applied.
type frameReader struct {
	r       *bufio.Reader
	payload []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// next returns the next frame. io.EOF means the primary closed the stream
// cleanly; any other error (including a torn frame) means the stream is no
// longer trustworthy.
func (fr *frameReader) next() (seq uint64, record []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("replica: torn frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n < seqBytes || n > wal.MaxRecordBytes+seqBytes {
		return 0, nil, fmt.Errorf("replica: bad frame length %d", n)
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return 0, nil, fmt.Errorf("replica: torn frame payload: %w", err)
	}
	if crc32.Checksum(fr.payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("replica: frame crc mismatch")
	}
	return binary.LittleEndian.Uint64(fr.payload[:seqBytes]), fr.payload[seqBytes:], nil
}
