package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The fencing term is persisted beside the WAL as a 12-byte file: the term
// (u64 LE) followed by its CRC32C. Writes go through a temp file, fsync and
// rename, then a directory fsync, so a crash can never leave a torn term —
// and a corrupt term file is a hard error, because guessing a fencing term
// after corruption could let two primaries ack writes concurrently.

const termFile = "term"

// LoadTerm reads the persisted fencing term in dir. A missing file is term 0
// (never promoted, never fenced); a corrupt file is an error.
func LoadTerm(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, termFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if len(b) != 12 {
		return 0, fmt.Errorf("replica: term file is %d bytes, want 12", len(b))
	}
	term := binary.LittleEndian.Uint64(b[:8])
	if crc32.Checksum(b[:8], castagnoli) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, fmt.Errorf("replica: term file checksum mismatch")
	}
	return term, nil
}

// SaveTerm durably persists the fencing term in dir.
func SaveTerm(dir string, term uint64) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:8], term)
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[:8], castagnoli))
	path := filepath.Join(dir, termFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b[:]); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: persisting term: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
