package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"time"

	"mvdb/internal/wal"
)

// Primary is the log-shipping side: it serves snapshots of the hosting
// server's index and streams synced WAL frames to followers. All callback
// fields are required unless noted; the hosting server supplies them so this
// package stays payload-agnostic.
type Primary struct {
	// Dir is the WAL directory frames are replayed from.
	Dir string
	// Log is the open WAL; only frames at or below its synced position ship.
	Log *wal.Log
	// Term returns the primary's current fencing term.
	Term func() uint64
	// Horizon returns the lowest sequence number still guaranteed present in
	// the WAL (the latest snapshot's covered position — everything below it
	// may have been truncated). Followers whose cursor is below the horizon
	// get 410 and must re-bootstrap from a snapshot.
	Horizon func() uint64
	// Active reports whether this node still acks writes. A demoted primary
	// stops serving snapshots and ends its streams, so followers move on.
	Active func() bool
	// Snapshot encodes the current index and returns the WAL sequence number
	// it covers. The implementation must cut at a durable boundary: the
	// returned state may not include frames that could still vanish in a
	// crash, or a bootstrapped follower would diverge from a recovered
	// primary.
	Snapshot func() (seq uint64, data []byte, err error)
	// OnStaleTerm is called when a request presents a term higher than our
	// own: this node has been superseded and must stop acking writes.
	// Optional.
	OnStaleTerm func(seen uint64)
	// HeartbeatInterval paces heartbeats on idle streams; 0 means
	// DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// Hooks inject stream faults for chaos testing.
	Hooks Hooks
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (p *Primary) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Primary) heartbeatEvery() time.Duration {
	if p.HeartbeatInterval > 0 {
		return p.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

func writeError(w http.ResponseWriter, code int, reason, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...), "reason": reason})
}

// checkTerm enforces fencing on an incoming request: a follower presenting a
// higher term than ours means we have been superseded. It writes the 409 and
// returns false in that case.
func (p *Primary) checkTerm(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(HeaderTerm)
	if h == "" {
		return true
	}
	followerTerm, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "bad %s header %q", HeaderTerm, h)
		return false
	}
	if term := p.Term(); followerTerm > term {
		p.logf("replica: request carries term %d > own term %d; demoting", followerTerm, term)
		if p.OnStaleTerm != nil {
			p.OnStaleTerm(followerTerm)
		}
		w.Header().Set(HeaderTerm, strconv.FormatUint(term, 10))
		writeError(w, http.StatusConflict, "stale-term",
			"superseded by term %d (own term %d); this node no longer acks writes", followerTerm, term)
		return false
	}
	return true
}

// ServeSnapshot handles GET /replication/snapshot: the full index as one gob
// blob, with the covered WAL sequence number, the primary's term and a CRC32C
// checksum in headers.
func (p *Primary) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if !p.checkTerm(w, r) {
		return
	}
	if !p.Active() {
		writeError(w, http.StatusServiceUnavailable, "not-primary", "this node is not the primary")
		return
	}
	seq, data, err := p.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "", "encoding snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set(HeaderTerm, strconv.FormatUint(p.Term(), 10))
	w.Header().Set(HeaderSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(HeaderChecksum, checksumHex(data))
	if _, err := w.Write(data); err != nil {
		p.logf("replica: writing snapshot: %v", err)
	}
}

// ServeStream handles GET /replication/stream?after=N: it replays every
// synced WAL frame with sequence number above N, then long-polls the log's
// durable position, interleaving heartbeats so the follower can distinguish
// an idle primary from a dead one.
func (p *Primary) ServeStream(w http.ResponseWriter, r *http.Request) {
	if !p.checkTerm(w, r) {
		return
	}
	if !p.Active() {
		writeError(w, http.StatusServiceUnavailable, "not-primary", "this node is not the primary")
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "bad after parameter: %v", err)
		return
	}
	if h := p.Horizon(); after < h {
		// The log prefix the follower needs was truncated by a snapshot.
		writeError(w, http.StatusGone, "snapshot-required",
			"cursor %d is below the log horizon %d; bootstrap from /replication/snapshot", after, h)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "", "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderTerm, strconv.FormatUint(p.Term(), 10))
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	cursor := after
	for {
		if !p.Active() || ctx.Err() != nil {
			return // demoted mid-stream or client gone: end cleanly
		}
		synced := p.Log.SyncedSeq()
		if synced > cursor {
			err := wal.Replay(p.Dir, cursor, func(seq uint64, rec []byte) error {
				if seq > synced {
					return wal.ErrStopReplay // never ship past the durable prefix
				}
				cursor = seq
				return p.ship(w, seq, rec)
			})
			if err != nil {
				p.logf("replica: streaming frames after %d: %v", cursor, err)
				return
			}
			fl.Flush()
			continue // drain before sleeping: more may have landed meanwhile
		}
		waitCtx, cancel := context.WithTimeout(ctx, p.heartbeatEvery())
		_, werr := p.Log.WaitSynced(waitCtx, cursor)
		cancel()
		if werr == nil {
			continue
		}
		if errors.Is(werr, context.DeadlineExceeded) && ctx.Err() == nil {
			// Idle: heartbeat with the durable position re-read now — the value
			// captured before WaitSynced can be a whole interval stale, which
			// would inflate follower staleness accounting on a quiet primary.
			hb := p.Log.SyncedSeq()
			if hb > cursor {
				continue // frames landed during the wait: ship them instead
			}
			if err := p.ship(w, hb, nil); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		return // client gone or log closed
	}
}

// ship frames and writes one record, routing through the fault-injection
// hook when set.
func (p *Primary) ship(w http.ResponseWriter, seq uint64, record []byte) error {
	frame := encodeFrame(seq, record)
	outs := [][]byte{frame}
	if h := p.Hooks.ShipFrame; h != nil {
		outs = h(seq, frame)
	}
	for _, b := range outs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func checksumHex(data []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(data, castagnoli))
}
