package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// errNeedSnapshot: the follower's cursor is below the primary's log horizon;
// only a fresh snapshot bootstrap can resynchronize.
var errNeedSnapshot = errors.New("replica: snapshot bootstrap required")

// errStalePrimary: the stream came from a primary whose term is below the
// highest term this follower has seen — a resurrected pre-failover primary.
var errStalePrimary = errors.New("replica: stale primary term")

// FollowerConfig wires a follower's fetch loop to the hosting server.
type FollowerConfig struct {
	// Primary is the primary's base URL, e.g. http://10.0.0.1:8080.
	Primary string
	// Client issues the HTTP requests; nil means http.DefaultClient.
	Client *http.Client
	// Term returns the local fencing term (promotion bumps it elsewhere).
	Term func() uint64
	// After is the initial resume cursor: the last locally applied sequence
	// number.
	After uint64
	// Apply applies one shipped record. It is called sequentially, with
	// strictly increasing sequence numbers; an error aborts the tail, and
	// the record is refetched after backoff (apply must therefore be atomic:
	// either the record takes effect or it does not).
	Apply func(seq uint64, record []byte) error
	// Bootstrap re-bootstraps from the primary's snapshot when the stream
	// answers 410 (cursor below horizon). It returns the new cursor. The
	// context is the fetch loop's run context: implementations must derive
	// their deadlines from it so Stop cancels an in-flight bootstrap. Nil
	// leaves the follower retrying (and therefore stale) — the hosting
	// server decides whether live re-bootstrap is safe.
	Bootstrap func(ctx context.Context) (uint64, error)
	// HeartbeatTimeout bounds the silence on an open stream before it is
	// declared stalled; 0 means DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// MinBackoff and MaxBackoff bound the reconnect backoff (exponential,
	// with ±25% jitter). Zero means 50ms and 5s.
	MinBackoff, MaxBackoff time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time summary of the fetch loop.
type FollowerStats struct {
	Applied       uint64 // last applied sequence number
	PrimarySynced uint64 // primary's advertised durable position
	PrimaryTerm   uint64 // highest term seen from the primary
	Connected     bool   // a stream is currently open
	FramesApplied uint64
	Duplicates    uint64 // frames skipped as already applied
	Gaps          uint64 // sequence gaps that forced a reconnect
	Retries       uint64 // reconnects (any cause)
	Bootstraps    uint64 // snapshot re-bootstraps
}

// Follower tails a primary's replication stream and applies its records.
// Start with StartFollower; Stop before discarding.
type Follower struct {
	cfg    FollowerConfig
	cancel context.CancelFunc
	done   chan struct{}

	applied       atomic.Uint64
	primarySynced atomic.Uint64
	primaryTerm   atomic.Uint64
	caughtUp      atomic.Int64 // unix nanos of the last caught-up observation
	connected     atomic.Bool

	framesApplied, dups, gaps atomic.Uint64
	retries, bootstraps       atomic.Uint64
}

// StartFollower starts the fetch loop. The caller must already hold a
// consistent local state at cfg.After (a bootstrapped snapshot plus any
// locally replayed WAL tail); the loop begins caught-up as of now.
func StartFollower(cfg FollowerConfig) *Follower {
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, cancel: cancel, done: make(chan struct{})}
	f.applied.Store(cfg.After)
	f.primarySynced.Store(cfg.After)
	f.caughtUp.Store(time.Now().UnixNano())
	go f.run(ctx)
	return f
}

// Stop ends the fetch loop and waits for it to exit. Idempotent.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
}

// Applied returns the last applied sequence number.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// PrimaryTerm returns the highest fencing term seen from the primary.
func (f *Follower) PrimaryTerm() uint64 { return f.primaryTerm.Load() }

// Staleness returns how long ago the follower last observed itself caught up
// with the primary's durable position. The hosting server compares it with
// the configured bound to decide whether reads are still honest.
func (f *Follower) Staleness() time.Duration {
	return time.Since(time.Unix(0, f.caughtUp.Load()))
}

// Stats returns a point-in-time summary.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Applied:       f.applied.Load(),
		PrimarySynced: f.primarySynced.Load(),
		PrimaryTerm:   f.primaryTerm.Load(),
		Connected:     f.connected.Load(),
		FramesApplied: f.framesApplied.Load(),
		Duplicates:    f.dups.Load(),
		Gaps:          f.gaps.Load(),
		Retries:       f.retries.Load(),
		Bootstraps:    f.bootstraps.Load(),
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) client() *http.Client {
	if f.cfg.Client != nil {
		return f.cfg.Client
	}
	return http.DefaultClient
}

func (f *Follower) heartbeatTimeout() time.Duration {
	if f.cfg.HeartbeatTimeout > 0 {
		return f.cfg.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (f *Follower) backoffBounds() (time.Duration, time.Duration) {
	lo, hi := f.cfg.MinBackoff, f.cfg.MaxBackoff
	if lo <= 0 {
		lo = 50 * time.Millisecond
	}
	if hi <= 0 {
		hi = 5 * time.Second
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// noteCaughtUp refreshes the staleness clock whenever the applied position
// has reached the primary's advertised durable position.
func (f *Follower) noteCaughtUp() {
	if f.applied.Load() >= f.primarySynced.Load() {
		f.caughtUp.Store(time.Now().UnixNano())
	}
}

// advancePrimarySynced records a (monotone) advertised durable position.
func (f *Follower) advancePrimarySynced(seq uint64) {
	for {
		cur := f.primarySynced.Load()
		if seq <= cur || f.primarySynced.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// run is the retry loop: tail until the stream fails, then back off
// (exponential + jitter) and reconnect from the last applied cursor.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	lo, hi := f.backoffBounds()
	backoff := lo
	for ctx.Err() == nil {
		before := f.applied.Load()
		err := f.tail(ctx)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		if f.applied.Load() > before {
			// The stream made progress before failing; a lossy-but-alive
			// primary should be re-dialed eagerly, not at the max backoff.
			backoff = lo
		}
		if errors.Is(err, errNeedSnapshot) && f.cfg.Bootstrap != nil {
			f.bootstraps.Add(1)
			cursor, berr := f.cfg.Bootstrap(ctx)
			if berr == nil {
				f.applied.Store(cursor)
				f.advancePrimarySynced(cursor)
				f.noteCaughtUp()
				backoff = lo
				continue
			}
			err = fmt.Errorf("bootstrap: %w", berr)
		}
		f.retries.Add(1)
		f.logf("replica: tail from %d failed: %v; retrying in %v", f.applied.Load(), err, backoff)
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitter(backoff)):
		}
		if backoff *= 2; backoff > hi {
			backoff = hi
		}
	}
}

// jitter spreads a backoff to ±25% so a fleet of followers does not
// reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}

// tail opens one stream and applies frames until it errors or stalls.
func (f *Follower) tail(ctx context.Context) error {
	cursor := f.applied.Load()
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	url := fmt.Sprintf("%s/replication/stream?after=%d", f.cfg.Primary, cursor)
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderTerm, strconv.FormatUint(f.cfg.Term(), 10))
	resp, err := f.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errNeedSnapshot
	default:
		return fmt.Errorf("replica: stream status %s", resp.Status)
	}
	pterm, err := strconv.ParseUint(resp.Header.Get(HeaderTerm), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: bad %s header: %w", HeaderTerm, err)
	}
	// Fencing: reject a primary running an older term than any we have seen
	// (or than our own) — its log may have diverged from the promoted line.
	if pterm < f.primaryTerm.Load() || pterm < f.cfg.Term() {
		return fmt.Errorf("%w: stream term %d below known term %d",
			errStalePrimary, pterm, max(f.primaryTerm.Load(), f.cfg.Term()))
	}
	f.primaryTerm.Store(pterm)
	f.connected.Store(true)

	// Stall detector: if no frame (not even a heartbeat) lands within the
	// timeout, cancel the request so the blocked read aborts.
	watchdog := time.AfterFunc(f.heartbeatTimeout(), cancel)
	defer watchdog.Stop()

	fr := newFrameReader(resp.Body)
	for {
		seq, rec, err := fr.next()
		if err != nil {
			if streamCtx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("replica: stream stalled for %v", f.heartbeatTimeout())
			}
			if err == io.EOF {
				return fmt.Errorf("replica: primary closed the stream")
			}
			return err
		}
		watchdog.Reset(f.heartbeatTimeout())
		if len(rec) == 0 {
			// Heartbeat: the primary's durable position.
			f.advancePrimarySynced(seq)
			f.noteCaughtUp()
			continue
		}
		switch {
		case seq <= cursor:
			f.dups.Add(1) // duplicate delivery: already applied, skip
			continue
		case seq > cursor+1:
			f.gaps.Add(1)
			return fmt.Errorf("replica: stream gap: frame %d after cursor %d", seq, cursor)
		}
		if err := f.cfg.Apply(seq, rec); err != nil {
			return fmt.Errorf("replica: applying frame %d: %w", seq, err)
		}
		cursor = seq
		f.applied.Store(seq)
		f.framesApplied.Add(1)
		f.advancePrimarySynced(seq)
		f.noteCaughtUp()
	}
}

// Snapshot is a fetched, checksum-verified primary snapshot.
type Snapshot struct {
	Seq  uint64 // WAL sequence number the snapshot covers
	Term uint64 // primary's fencing term
	Data []byte // opaque snapshot bytes (the hosting server decodes them)
}

// FetchSnapshot downloads and verifies a snapshot from the primary.
func FetchSnapshot(ctx context.Context, client *http.Client, primary string, term uint64) (*Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/replication/snapshot", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderTerm, strconv.FormatUint(term, 10))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: snapshot status %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderSeq), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("replica: bad %s header: %w", HeaderSeq, err)
	}
	pterm, err := strconv.ParseUint(resp.Header.Get(HeaderTerm), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("replica: bad %s header: %w", HeaderTerm, err)
	}
	if pterm < term {
		return nil, fmt.Errorf("%w: snapshot term %d below own term %d", errStalePrimary, pterm, term)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: reading snapshot body: %w", err)
	}
	if got, want := checksumHex(data), resp.Header.Get(HeaderChecksum); got != want {
		return nil, fmt.Errorf("replica: snapshot checksum mismatch: body %s, header %s", got, want)
	}
	return &Snapshot{Seq: seq, Term: pterm, Data: data}, nil
}

// NotifyStaleTerm tells a (possibly dead) old primary that a higher term now
// exists, so a surviving stale primary stops acking writes immediately
// rather than on its next follower contact. Best effort: an unreachable
// primary is simply ignored by callers.
func NotifyStaleTerm(ctx context.Context, client *http.Client, primary string, term uint64) error {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		primary+"/replication/stream?after=0", nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderTerm, strconv.FormatUint(term, 10))
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
