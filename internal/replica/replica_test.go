package replica

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestFrameCodecRoundtrip(t *testing.T) {
	cases := []struct {
		seq uint64
		rec []byte
	}{
		{1, []byte("hello")},
		{42, nil}, // heartbeat
		{1 << 40, bytes.Repeat([]byte{0xab}, 10_000)},
	}
	var stream bytes.Buffer
	for _, c := range cases {
		stream.Write(encodeFrame(c.seq, c.rec))
	}
	fr := newFrameReader(&stream)
	for i, c := range cases {
		seq, rec, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != c.seq || !bytes.Equal(rec, c.rec) {
			t.Fatalf("frame %d: got (%d, %d bytes) want (%d, %d bytes)", i, seq, len(rec), c.seq, len(c.rec))
		}
	}
	if _, _, err := fr.next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameReaderRejectsCorruption(t *testing.T) {
	frame := encodeFrame(7, []byte("payload-bytes"))
	for flip := 0; flip < len(frame); flip++ {
		b := append([]byte(nil), frame...)
		b[flip] ^= 0x01
		fr := newFrameReader(bytes.NewReader(b))
		seq, rec, err := fr.next()
		if err == nil && (seq != 7 || !bytes.Equal(rec, []byte("payload-bytes"))) {
			t.Fatalf("flip %d: corrupt frame decoded as (%d, %q)", flip, seq, rec)
		}
		if err == nil {
			t.Fatalf("flip %d: corruption not detected", flip)
		}
	}
	// Truncation anywhere is a tear, not EOF (EOF only between frames).
	for cut := 1; cut < len(frame); cut++ {
		fr := newFrameReader(bytes.NewReader(frame[:cut]))
		if _, _, err := fr.next(); err == nil || err == io.EOF {
			t.Fatalf("cut %d: truncated frame returned %v", cut, err)
		}
	}
}

func TestTermStore(t *testing.T) {
	dir := t.TempDir()
	if term, err := LoadTerm(dir); err != nil || term != 0 {
		t.Fatalf("missing term file: got %d, %v; want 0, nil", term, err)
	}
	for _, term := range []uint64{1, 7, 1 << 50} {
		if err := SaveTerm(dir, term); err != nil {
			t.Fatal(err)
		}
		got, err := LoadTerm(dir)
		if err != nil || got != term {
			t.Fatalf("roundtrip %d: got %d, %v", term, got, err)
		}
	}
	// Corruption is a hard error, never a guessed term.
	path := filepath.Join(dir, termFile)
	b, _ := os.ReadFile(path)
	b[3] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, err := LoadTerm(dir); err == nil {
		t.Fatal("corrupt term file must error")
	}
	os.WriteFile(path, []byte("short"), 0o644)
	if _, err := LoadTerm(dir); err == nil {
		t.Fatal("wrong-size term file must error")
	}
}

// fakePrimary scripts one handler per stream connection. Each script gets the
// writer after the 200 header (with the given term) is out; returning ends
// the stream.
type fakePrimary struct {
	t    *testing.T
	term uint64

	mu      sync.Mutex
	scripts []func(w io.Writer, r *http.Request)
	conns   int
	afters  []uint64
	srv     *httptest.Server
}

func newFakePrimary(t *testing.T, term uint64, scripts ...func(w io.Writer, r *http.Request)) *fakePrimary {
	p := &fakePrimary{t: t, term: term, scripts: scripts}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		i := p.conns
		p.conns++
		after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
		p.afters = append(p.afters, after)
		var script func(io.Writer, *http.Request)
		if i < len(p.scripts) {
			script = p.scripts[i]
		}
		p.mu.Unlock()
		if script == nil {
			// Out of script: park until the follower goes away.
			w.Header().Set(HeaderTerm, strconv.FormatUint(p.term, 10))
			w.WriteHeader(http.StatusOK)
			w.(http.Flusher).Flush()
			<-r.Context().Done()
			return
		}
		w.Header().Set(HeaderTerm, strconv.FormatUint(p.term, 10))
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		script(flushWriter{w}, r)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(b []byte) (int, error) {
	n, err := f.w.Write(b)
	f.w.(http.Flusher).Flush()
	return n, err
}

func (p *fakePrimary) connAfters() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.afters...)
}

// recorder collects applied frames.
type recorder struct {
	mu   sync.Mutex
	seqs []uint64
}

func (rec *recorder) apply(seq uint64, _ []byte) error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.seqs = append(rec.seqs, seq)
	return nil
}

func (rec *recorder) applied() []uint64 {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]uint64(nil), rec.seqs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fastBackoff(cfg FollowerConfig) FollowerConfig {
	cfg.MinBackoff = 5 * time.Millisecond
	cfg.MaxBackoff = 20 * time.Millisecond
	return cfg
}

func TestFollowerAppliesAndResumes(t *testing.T) {
	p := newFakePrimary(t, 1,
		func(w io.Writer, _ *http.Request) {
			for seq := uint64(1); seq <= 3; seq++ {
				w.Write(encodeFrame(seq, []byte{byte(seq)}))
			}
			// Connection drops here; the follower must resume from 3.
		},
		func(w io.Writer, r *http.Request) {
			for seq := uint64(4); seq <= 5; seq++ {
				w.Write(encodeFrame(seq, []byte{byte(seq)}))
			}
			<-r.Context().Done()
		},
	)
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: p.srv.URL,
		Term:    func() uint64 { return 0 },
		Apply:   rec.apply,
	}))
	defer f.Stop()
	waitFor(t, "five frames", func() bool { return f.Applied() == 5 })
	got := rec.applied()
	for i, want := range []uint64{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("applied %v", got)
		}
	}
	afters := p.connAfters()
	if len(afters) < 2 || afters[0] != 0 || afters[1] != 3 {
		t.Fatalf("resume cursors %v, want [0 3 ...]", afters)
	}
	if st := f.Stats(); st.Retries == 0 || st.PrimaryTerm != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFollowerSkipsDuplicates(t *testing.T) {
	p := newFakePrimary(t, 1, func(w io.Writer, r *http.Request) {
		w.Write(encodeFrame(1, []byte("a")))
		w.Write(encodeFrame(1, []byte("a"))) // duplicated delivery
		w.Write(encodeFrame(2, []byte("b")))
		<-r.Context().Done()
	})
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: p.srv.URL,
		Term:    func() uint64 { return 0 },
		Apply:   rec.apply,
	}))
	defer f.Stop()
	waitFor(t, "two applies", func() bool { return f.Applied() == 2 })
	if got := rec.applied(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("applied %v, want [1 2]", got)
	}
	if st := f.Stats(); st.Duplicates != 1 {
		t.Fatalf("stats %+v, want 1 duplicate", st)
	}
}

func TestFollowerGapForcesReconnect(t *testing.T) {
	p := newFakePrimary(t, 1,
		func(w io.Writer, _ *http.Request) {
			w.Write(encodeFrame(1, []byte("a")))
			w.Write(encodeFrame(3, []byte("c"))) // frame 2 lost in flight
		},
		func(w io.Writer, r *http.Request) {
			w.Write(encodeFrame(2, []byte("b")))
			w.Write(encodeFrame(3, []byte("c")))
			<-r.Context().Done()
		},
	)
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: p.srv.URL,
		Term:    func() uint64 { return 0 },
		Apply:   rec.apply,
	}))
	defer f.Stop()
	waitFor(t, "three applies", func() bool { return f.Applied() == 3 })
	if got := rec.applied(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("applied %v, want [1 2 3] — a gap must never be applied around", got)
	}
	if st := f.Stats(); st.Gaps != 1 {
		t.Fatalf("stats %+v, want 1 gap", st)
	}
	if afters := p.connAfters(); afters[1] != 1 {
		t.Fatalf("reconnect cursor %v, want after=1 (frame 3 discarded)", afters)
	}
}

func TestFollowerRejectsStalePrimaryTerm(t *testing.T) {
	p := newFakePrimary(t, 2) // primary stuck at term 2
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: p.srv.URL,
		Term:    func() uint64 { return 5 }, // we were promoted past it
		Apply:   rec.apply,
	}))
	defer f.Stop()
	waitFor(t, "a few rejections", func() bool { return f.Stats().Retries >= 2 })
	if got := rec.applied(); len(got) != 0 {
		t.Fatalf("applied %v from a stale primary", got)
	}
	if f.Stats().Connected {
		t.Fatal("still marked connected to a stale primary")
	}
}

func TestFollowerHeartbeatAdvancesStaleness(t *testing.T) {
	p := newFakePrimary(t, 1, func(w io.Writer, r *http.Request) {
		w.Write(encodeFrame(7, []byte("x"))) // wait: cursor 6 set below
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-t.C:
				w.Write(encodeFrame(7, nil)) // heartbeat at synced=7
			}
		}
	})
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: p.srv.URL,
		Term:    func() uint64 { return 0 },
		After:   6,
		Apply:   rec.apply,
	}))
	defer f.Stop()
	waitFor(t, "frame 7", func() bool { return f.Applied() == 7 })
	time.Sleep(100 * time.Millisecond) // several heartbeats
	if s := f.Staleness(); s > time.Second {
		t.Fatalf("staleness %v despite heartbeats", s)
	}
	if st := f.Stats(); st.PrimarySynced != 7 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFollowerStallWatchdog(t *testing.T) {
	// A primary that opens the stream and then says nothing: the watchdog
	// must cancel the read and the follower must retry.
	p := newFakePrimary(t, 1)
	rec := &recorder{}
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary:          p.srv.URL,
		Term:             func() uint64 { return 0 },
		Apply:            rec.apply,
		HeartbeatTimeout: 50 * time.Millisecond,
	}))
	defer f.Stop()
	waitFor(t, "stall retries", func() bool { return f.Stats().Retries >= 2 })
}

func TestFollowerBootstrapsOn410(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		i := conns
		conns++
		mu.Unlock()
		if i == 0 {
			w.Header().Set(HeaderTerm, "1")
			w.WriteHeader(http.StatusGone)
			return
		}
		w.Header().Set(HeaderTerm, "1")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		flushWriter{w}.Write(encodeFrame(101, []byte("after-snapshot")))
		<-r.Context().Done()
	}))
	defer srv.Close()
	rec := &recorder{}
	bootstrapped := make(chan struct{})
	var once sync.Once
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: srv.URL,
		Term:    func() uint64 { return 0 },
		Apply:   rec.apply,
		Bootstrap: func(context.Context) (uint64, error) {
			once.Do(func() { close(bootstrapped) })
			return 100, nil // snapshot covered seq 100
		},
	}))
	defer f.Stop()
	<-bootstrapped
	waitFor(t, "post-bootstrap frame", func() bool { return f.Applied() == 101 })
	if st := f.Stats(); st.Bootstraps != 1 {
		t.Fatalf("stats %+v, want 1 bootstrap", st)
	}
}

// TestStopCancelsInflightBootstrap: Stop must cancel a bootstrap in
// progress, not wait out its timeout — promotion calls Stop under the
// server's role lock, so a blocking bootstrap would stall every replication
// endpoint for the full bootstrap timeout.
func TestStopCancelsInflightBootstrap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(HeaderTerm, "1")
		w.WriteHeader(http.StatusGone) // every stream demands a snapshot
	}))
	defer srv.Close()
	entered := make(chan struct{})
	var once sync.Once
	f := StartFollower(fastBackoff(FollowerConfig{
		Primary: srv.URL,
		Term:    func() uint64 { return 0 },
		Apply:   func(uint64, []byte) error { return nil },
		Bootstrap: func(ctx context.Context) (uint64, error) {
			once.Do(func() { close(entered) })
			<-ctx.Done() // a slow snapshot fetch, bounded only by its context
			return 0, ctx.Err()
		},
	}))
	<-entered
	done := make(chan struct{})
	go func() {
		f.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop blocked on an in-flight bootstrap")
	}
}

func TestFetchSnapshotVerifiesChecksum(t *testing.T) {
	data := []byte("snapshot-bytes")
	corrupt := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		body := data
		if corrupt {
			body = append([]byte(nil), data...)
			body[0] ^= 0xff
		}
		w.Header().Set(HeaderSeq, "12")
		w.Header().Set(HeaderTerm, "3")
		w.Header().Set(HeaderChecksum, checksumHex(data))
		w.Write(body)
	}))
	defer srv.Close()
	snap, err := FetchSnapshot(context.Background(), nil, srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 12 || snap.Term != 3 || !bytes.Equal(snap.Data, data) {
		t.Fatalf("snapshot %+v", snap)
	}
	corrupt = true
	if _, err := FetchSnapshot(context.Background(), nil, srv.URL, 1); err == nil {
		t.Fatal("corrupted snapshot body must fail the checksum")
	}
	// A snapshot from a primary below our own term is refused.
	if _, err := FetchSnapshot(context.Background(), nil, srv.URL, 9); err == nil {
		t.Fatal("stale-term snapshot must be refused")
	}
}

func TestHooksShipFrame(t *testing.T) {
	// The fault hooks transform the outbound byte stream only; a nil return
	// drops the frame entirely.
	frame := encodeFrame(1, []byte("x"))
	var h Hooks
	if h.ShipFrame != nil {
		t.Fatal("zero Hooks must be pass-through (nil func)")
	}
	h.ShipFrame = func(seq uint64, f []byte) [][]byte { return [][]byte{f, f} }
	outs := h.ShipFrame(1, frame)
	if len(outs) != 2 || !bytes.Equal(outs[0], frame) {
		t.Fatalf("duplicate hook returned %d frames", len(outs))
	}
}
