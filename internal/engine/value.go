// Package engine implements the relational substrate of the MVDB system: a
// small in-memory database holding deterministic and probabilistic relations.
//
// Probabilistic tuples carry weights, which are odds: a weight w corresponds
// to the marginal probability p = w/(1+w) (Definition 2 of the paper). A
// weight of +Inf marks a deterministic tuple. Weights may be negative: the
// MarkoView translation of Section 3 produces tuples with weight (1-w)/w,
// which is negative whenever the view weight w exceeds 1, and the engine
// propagates the resulting negative probabilities untouched.
//
// Databases are not safe for concurrent use: even read paths build hash and
// sorted indexes lazily. Serialize access (internal/server does so with a
// mutex) or give each goroutine its own Clone.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a database value: either an int64 or a string. The zero Value is
// the integer 0.
type Value struct {
	Int   int64
	Str   string
	IsStr bool
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{Int: i} }

// Str returns a string Value.
func Str(s string) Value { return Value{Str: s, IsStr: true} }

// Compare orders Values: all integers sort before all strings, integers by
// numeric order, strings lexicographically. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	switch {
	case !v.IsStr && o.IsStr:
		return -1
	case v.IsStr && !o.IsStr:
		return 1
	case v.IsStr:
		return strings.Compare(v.Str, o.Str)
	case v.Int < o.Int:
		return -1
	case v.Int > o.Int:
		return 1
	}
	return 0
}

// Equal reports whether two Values are identical.
func (v Value) Equal(o Value) bool {
	return v.IsStr == o.IsStr && v.Int == o.Int && v.Str == o.Str
}

// String renders the value; strings are quoted.
func (v Value) String() string {
	if v.IsStr {
		return strconv.Quote(v.Str)
	}
	return strconv.FormatInt(v.Int, 10)
}

// Key returns a collision-free map key for the value.
func (v Value) Key() string {
	if v.IsStr {
		return "s" + v.Str
	}
	return "i" + strconv.FormatInt(v.Int, 10)
}

// TupleKey returns a collision-free map key for a sequence of values.
func TupleKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		k := v.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// AppendValueKey appends a collision-free encoding of v to b. Unlike Key it
// builds no intermediate strings, so hot paths can key maps with
// string(buf) lookups that the compiler keeps allocation-free.
func AppendValueKey(b []byte, v Value) []byte {
	if v.IsStr {
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.Str)), 10)
		b = append(b, ':')
		return append(b, v.Str...)
	}
	b = append(b, 'i')
	b = strconv.AppendInt(b, v.Int, 10)
	return append(b, ';')
}

// AppendTupleKey appends a collision-free encoding of the tuple to b; the
// per-value delimiters make concatenation unambiguous.
func AppendTupleKey(b []byte, vals []Value) []byte {
	for _, v := range vals {
		b = AppendValueKey(b, v)
	}
	return b
}

// FormatTuple renders a tuple as "(v1, v2, ...)".
func FormatTuple(vals []Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Like implements SQL LIKE matching with % (any run, possibly empty) and _
// (exactly one byte). Matching is case-sensitive, as in Postgres.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer algorithm with backtracking on the last %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// ParseValue parses a literal: a quoted string ('...' or "...") or an
// integer.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return Str(s[1 : len(s)-1]), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("engine: cannot parse value %q", s)
	}
	return Int(i), nil
}
