package engine

import (
	"fmt"
	"sort"
)

// AggKind selects the aggregate computed by Aggregate.
type AggKind int

// Supported aggregates. Count ignores the aggregate column; the others
// require it to hold integers.
const (
	Count AggKind = iota
	Min
	Max
	Sum
)

// Group is one output row of Aggregate.
type Group struct {
	Key   []Value
	Value int64
}

// Aggregate groups the tuples of a deterministic relation by the key columns
// and computes one aggregate per group. It mirrors the paper's footnote 3:
// aggregates are evaluated over deterministic tables only and the result is
// then used as an ordinary deterministic table.
func Aggregate(r *Relation, keyCols []int, kind AggKind, aggCol int) ([]Group, error) {
	if !r.Deterministic {
		return nil, fmt.Errorf("engine: aggregate over probabilistic relation %s", r.Name)
	}
	for _, c := range keyCols {
		if c < 0 || c >= r.Arity() {
			return nil, fmt.Errorf("engine: aggregate key column %d out of range for %s", c, r.Name)
		}
	}
	if kind != Count && (aggCol < 0 || aggCol >= r.Arity()) {
		return nil, fmt.Errorf("engine: aggregate column %d out of range for %s", aggCol, r.Name)
	}
	groups := map[string]*Group{}
	for _, t := range r.Tuples {
		key := make([]Value, len(keyCols))
		for i, c := range keyCols {
			key[i] = t.Vals[c]
		}
		k := TupleKey(key)
		g, ok := groups[k]
		if !ok {
			g = &Group{Key: key}
			switch kind {
			case Count:
				g.Value = 1
			default:
				g.Value = t.Vals[aggCol].Int
			}
			groups[k] = g
			continue
		}
		switch kind {
		case Count:
			g.Value++
		case Sum:
			g.Value += t.Vals[aggCol].Int
		case Min:
			if v := t.Vals[aggCol].Int; v < g.Value {
				g.Value = v
			}
		case Max:
			if v := t.Vals[aggCol].Int; v > g.Value {
				g.Value = v
			}
		}
	}
	out := make([]Group, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return compareTuples(out[i].Key, out[j].Key) < 0 })
	return out, nil
}

func compareTuples(a, b []Value) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}
