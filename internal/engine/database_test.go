package engine

import (
	"math"
	"testing"
)

func TestCreateRelationErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateRelation("R", false, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("R", false, "a"); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := db.CreateRelation("S", false); err == nil {
		t.Error("zero-column relation accepted")
	}
	if _, err := db.CreateRelation("T", false, "a", "a"); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestInsertAndVars(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a", "b")

	v1 := db.MustInsert("R", 1.0, Int(1))
	v2 := db.MustInsert("R", 3.0, Int(2))
	if v1 != 1 || v2 != 2 {
		t.Fatalf("vars = %d,%d want 1,2", v1, v2)
	}
	if db.NumVars() != 2 {
		t.Fatalf("NumVars = %d", db.NumVars())
	}
	rel, tup, err := db.VarTuple(v2)
	if err != nil || rel != "R" || !tup.Vals[0].Equal(Int(2)) {
		t.Fatalf("VarTuple(%d) = %s %v %v", v2, rel, tup, err)
	}
	if p := db.Prob(v1); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("Prob(v1)=%v want 0.5", p)
	}
	if p := db.Prob(v2); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("Prob(v2)=%v want 0.75", p)
	}

	if err := db.InsertDet("D", Int(1), Str("x")); err != nil {
		t.Fatal(err)
	}
	if db.NumVars() != 2 {
		t.Error("deterministic insert consumed a variable")
	}
	// Deterministic relation rejects weighted insert.
	if _, err := db.Insert("D", 0.5, Int(2), Str("y")); err == nil {
		t.Error("weighted insert into deterministic relation accepted")
	}
	// But accepts weight=Deterministic through Insert.
	if _, err := db.Insert("D", Deterministic, Int(2), Str("y")); err != nil {
		t.Error(err)
	}
}

func TestInsertErrors(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	if _, err := db.Insert("Nope", 1, Int(1), Int(2)); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	if _, err := db.Insert("R", 1, Int(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	db.MustInsert("R", 1, Int(1), Int(2))
	if _, err := db.Insert("R", 2, Int(1), Int(2)); err == nil {
		t.Error("duplicate tuple accepted")
	}
}

func TestProbsVector(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustInsert("R", 1.0, Int(1))  // p = 0.5
	db.MustInsert("R", -0.5, Int(2)) // p = -1 (negative probability)
	ps := db.Probs()
	if len(ps) != 3 {
		t.Fatalf("len(Probs)=%d", len(ps))
	}
	if math.Abs(ps[1]-0.5) > 1e-12 || math.Abs(ps[2]+1) > 1e-12 {
		t.Errorf("Probs = %v", ps)
	}
}

func TestSetWeight(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	v := db.MustInsert("R", 1.0, Int(1))
	db.SetWeight(v, 4.0)
	if w := db.Weight(v); w != 4.0 {
		t.Errorf("Weight=%v after SetWeight", w)
	}
	if p := db.Prob(v); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("Prob=%v want 0.8", p)
	}
}

func TestActiveDomain(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustCreateRelation("S", true, "a")
	db.MustInsert("R", 1, Int(3), Str("z"))
	db.MustInsert("R", 1, Int(1), Str("z"))
	db.MustInsertDet("S", Int(2))
	dom := db.ActiveDomain()
	want := []Value{Int(1), Int(2), Int(3), Str("z")}
	if len(dom) != len(want) {
		t.Fatalf("domain = %v", dom)
	}
	for i := range want {
		if !dom[i].Equal(want[i]) {
			t.Fatalf("domain = %v want %v", dom, want)
		}
	}
}

func TestMatchingIndexes(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustInsert("R", 1, Int(1), Int(10))
	db.MustInsert("R", 1, Int(2), Int(20))
	db.MustInsert("R", 1, Int(1), Int(30))
	r := db.Relation("R")
	got := r.MatchingIndexes(0, Int(1))
	if len(got) != 2 {
		t.Fatalf("MatchingIndexes = %v", got)
	}
	// Index stays consistent after further inserts.
	db.MustInsert("R", 1, Int(1), Int(40))
	got = r.MatchingIndexes(0, Int(1))
	if len(got) != 3 {
		t.Fatalf("MatchingIndexes after insert = %v", got)
	}
	if got = r.MatchingIndexes(1, Int(20)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("MatchingIndexes col1 = %v", got)
	}
	if got = r.MatchingIndexes(0, Int(99)); len(got) != 0 {
		t.Fatalf("MatchingIndexes missing value = %v", got)
	}
}

func TestStats(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a")
	db.MustInsert("R", 1, Int(1))
	db.MustInsertDet("D", Int(1))
	db.MustInsertDet("D", Int(2))
	st := db.Stats()
	if len(st) != 2 || st[0].Relation != "R" || st[0].Tuples != 1 || st[1].Tuples != 2 || !st[1].Deterministic {
		t.Errorf("Stats = %+v", st)
	}
}

func TestVarRefRange(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustInsert("R", 1, Int(1))
	if _, err := db.VarRef(0); err == nil {
		t.Error("VarRef(0) accepted")
	}
	if _, err := db.VarRef(2); err == nil {
		t.Error("VarRef(2) accepted")
	}
	if _, err := db.VarRef(1); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("Pub", true, "aid", "year")
	rows := [][2]int64{{1, 2000}, {1, 1998}, {1, 2005}, {2, 2010}, {2, 2011}}
	for _, r := range rows {
		db.MustInsertDet("Pub", Int(r[0]), Int(r[1]))
	}
	r := db.Relation("Pub")

	min, err := Aggregate(r, []int{0}, Min, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 || min[0].Value != 1998 || min[1].Value != 2010 {
		t.Errorf("Min groups = %+v", min)
	}
	cnt, err := Aggregate(r, []int{0}, Count, -1)
	if err != nil {
		t.Fatal(err)
	}
	if cnt[0].Value != 3 || cnt[1].Value != 2 {
		t.Errorf("Count groups = %+v", cnt)
	}
	max, _ := Aggregate(r, []int{0}, Max, 1)
	if max[0].Value != 2005 || max[1].Value != 2011 {
		t.Errorf("Max groups = %+v", max)
	}
	sum, _ := Aggregate(r, []int{0}, Sum, 1)
	if sum[0].Value != 2000+1998+2005 {
		t.Errorf("Sum groups = %+v", sum)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("P", false, "a")
	db.MustInsert("P", 1, Int(1))
	if _, err := Aggregate(db.Relation("P"), []int{0}, Count, -1); err == nil {
		t.Error("aggregate over probabilistic relation accepted")
	}
	db.MustCreateRelation("D", true, "a")
	if _, err := Aggregate(db.Relation("D"), []int{5}, Count, -1); err == nil {
		t.Error("bad key column accepted")
	}
	if _, err := Aggregate(db.Relation("D"), []int{0}, Min, 7); err == nil {
		t.Error("bad aggregate column accepted")
	}
}

func TestClone(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	v := db.MustInsert("R", 1, Int(1))
	c := db.Clone()
	// Mutating the clone must not affect the original.
	c.MustCreateRelation("S", false, "b")
	c.MustInsert("S", 2, Int(9))
	c.SetWeight(v, 9)
	if db.Relation("S") != nil {
		t.Error("clone leaked relation into original")
	}
	if db.Weight(v) != 1 {
		t.Error("clone leaked weight change")
	}
	if c.NumVars() != 2 || db.NumVars() != 1 {
		t.Errorf("vars: clone=%d orig=%d", c.NumVars(), db.NumVars())
	}
	if c.Relation("R").Lookup([]Value{Int(1)}) != 0 {
		t.Error("clone lost lookup index")
	}
}

func TestSortedIndexAndRangeScan(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("P", true, "y")
	for _, y := range []int64{2008, 2001, 2015, 2001, -3} {
		// duplicate 2001 would collide; vary via second column
		_ = y
	}
	db2 := NewDatabase()
	db2.MustCreateRelation("P", true, "pid", "y")
	years := []int64{2008, 2001, 2015, 2003, 1999}
	for i, y := range years {
		db2.MustInsertDet("P", Int(int64(i)), Int(y))
	}
	r := db2.Relation("P")
	ix := r.SortedIndex(1)
	prev := int64(-1 << 62)
	for _, ti := range ix {
		y := r.Tuples[ti].Vals[1].Int
		if y < prev {
			t.Fatalf("not sorted: %v", ix)
		}
		prev = y
	}
	lo := Int(2001)
	got := r.RangeScan(1, &lo, false, nil, false) // y > 2001
	if len(got) != 3 {
		t.Errorf("y > 2001: %d tuples", len(got))
	}
	got = r.RangeScan(1, &lo, true, nil, false) // y >= 2001
	if len(got) != 4 {
		t.Errorf("y >= 2001: %d tuples", len(got))
	}
	hi := Int(2008)
	got = r.RangeScan(1, &lo, true, &hi, false) // 2001 <= y < 2008
	if len(got) != 2 {
		t.Errorf("range: %d tuples", len(got))
	}
	if got = r.RangeScan(1, &hi, false, &lo, false); got != nil {
		t.Errorf("empty range returned %v", got)
	}
	// Staleness: insert then re-scan.
	db2.MustInsertDet("P", Int(99), Int(2002))
	got = r.RangeScan(1, &lo, true, &hi, false)
	if len(got) != 3 {
		t.Errorf("after insert: %d tuples", len(got))
	}
}
