package engine

import (
	"fmt"
	"sort"
)

// VarRef locates the tuple behind a Boolean variable.
type VarRef struct {
	Rel string
	Pos int // index into the relation's Tuples
}

// Database is a collection of relations plus the registry of Boolean
// variables attached to probabilistic tuples. Variable ids start at 1; id 0
// is reserved for "no variable" (deterministic tuples).
type Database struct {
	rels  map[string]*Relation
	order []string

	vars []VarRef // vars[i-1] describes variable i
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// CreateRelation adds a new relation. Deterministic relations only accept
// tuples inserted with InsertDet.
func (db *Database) CreateRelation(name string, deterministic bool, cols ...string) (*Relation, error) {
	if _, exists := db.rels[name]; exists {
		return nil, fmt.Errorf("engine: relation %s already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: relation %s must have at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return nil, fmt.Errorf("engine: relation %s has duplicate column %s", name, c)
		}
		seen[c] = true
	}
	r := &Relation{
		Name:          name,
		Cols:          append([]string(nil), cols...),
		Deterministic: deterministic,
		byKey:         make(map[string]int),
		indexes:       make(map[int]colIndex),
	}
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// MustCreateRelation is CreateRelation but panics on error; intended for
// static schema setup in tests and generators.
func (db *Database) MustCreateRelation(name string, deterministic bool, cols ...string) *Relation {
	r, err := db.CreateRelation(name, deterministic, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// Relations returns the relation names in creation order.
func (db *Database) Relations() []string { return append([]string(nil), db.order...) }

// InsertDet inserts a deterministic tuple.
func (db *Database) InsertDet(rel string, vals ...Value) error {
	r := db.rels[rel]
	if r == nil {
		return fmt.Errorf("engine: unknown relation %s", rel)
	}
	_, err := r.insert(Tuple{Vals: vals, Weight: Deterministic})
	return err
}

// Insert inserts a probabilistic tuple with the given weight (odds) and
// returns the fresh Boolean variable attached to it. Inserting into a
// deterministic relation is an error unless the weight is Deterministic.
func (db *Database) Insert(rel string, weight float64, vals ...Value) (int, error) {
	r := db.rels[rel]
	if r == nil {
		return 0, fmt.Errorf("engine: unknown relation %s", rel)
	}
	if r.Deterministic {
		if weight != Deterministic {
			return 0, fmt.Errorf("engine: relation %s is deterministic", rel)
		}
		_, err := r.insert(Tuple{Vals: vals, Weight: Deterministic})
		return 0, err
	}
	v := len(db.vars) + 1
	pos, err := r.insert(Tuple{Vals: vals, Var: v, Weight: weight})
	if err != nil {
		return 0, err
	}
	db.vars = append(db.vars, VarRef{Rel: rel, Pos: pos})
	return v, nil
}

// MustInsert is Insert but panics on error.
func (db *Database) MustInsert(rel string, weight float64, vals ...Value) int {
	v, err := db.Insert(rel, weight, vals...)
	if err != nil {
		panic(err)
	}
	return v
}

// MustInsertDet is InsertDet but panics on error.
func (db *Database) MustInsertDet(rel string, vals ...Value) {
	if err := db.InsertDet(rel, vals...); err != nil {
		panic(err)
	}
}

// NumVars returns the number of Boolean variables (probabilistic tuples).
func (db *Database) NumVars() int { return len(db.vars) }

// VarRef returns the location of variable v. Variables tombstoned by
// DeleteTuple are reported as errors: their tuples no longer exist.
func (db *Database) VarRef(v int) (VarRef, error) {
	if v < 1 || v > len(db.vars) {
		return VarRef{}, fmt.Errorf("engine: variable %d out of range", v)
	}
	if db.vars[v-1].Dead() {
		return VarRef{}, fmt.Errorf("engine: variable %d refers to a deleted tuple", v)
	}
	return db.vars[v-1], nil
}

// VarTuple returns the tuple behind variable v.
func (db *Database) VarTuple(v int) (rel string, t Tuple, err error) {
	ref, err := db.VarRef(v)
	if err != nil {
		return "", Tuple{}, err
	}
	return ref.Rel, db.rels[ref.Rel].Tuples[ref.Pos], nil
}

// Weight returns the weight (odds) of variable v. A tombstoned variable has
// weight 0: odds 0 pins the tuple false in every world, which is exactly
// "deleted".
func (db *Database) Weight(v int) float64 {
	ref := db.vars[v-1]
	if ref.Dead() {
		return 0
	}
	return db.rels[ref.Rel].Tuples[ref.Pos].Weight
}

// SetWeight overrides the weight of variable v; a no-op for tombstoned
// variables.
func (db *Database) SetWeight(v int, w float64) {
	ref := db.vars[v-1]
	if ref.Dead() {
		return
	}
	db.rels[ref.Rel].Tuples[ref.Pos].Weight = w
}

// Prob returns the marginal probability of variable v: w/(1+w).
func (db *Database) Prob(v int) float64 { return WeightToProb(db.Weight(v)) }

// Probs returns a slice indexed by variable id (entry 0 unused) with the
// marginal probability of every variable. This is the vector exact inference
// methods consume; entries may be negative.
func (db *Database) Probs() []float64 {
	ps := make([]float64, len(db.vars)+1)
	for i := range db.vars {
		ps[i+1] = db.Prob(i + 1)
	}
	return ps
}

// ActiveDomain returns the sorted set of all values appearing anywhere in the
// database.
func (db *Database) ActiveDomain() []Value {
	seen := map[string]Value{}
	for _, name := range db.order {
		for _, t := range db.rels[name].Tuples {
			for _, v := range t.Vals {
				seen[v.Key()] = v
			}
		}
	}
	out := make([]Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Stats summarizes the database: per-relation tuple counts.
type Stats struct {
	Relation      string
	Deterministic bool
	Tuples        int
}

// Stats returns per-relation statistics in creation order.
func (db *Database) Stats() []Stats {
	out := make([]Stats, 0, len(db.order))
	for _, name := range db.order {
		r := db.rels[name]
		out = append(out, Stats{Relation: name, Deterministic: r.Deterministic, Tuples: len(r.Tuples)})
	}
	return out
}

// Clone deep-copies the database: relations, tuples and the variable
// registry. Indexes are rebuilt lazily on the copy. The clone shares no
// mutable state with the original, so the MarkoView translation can extend
// it with NV relations without touching the source MVDB.
func (db *Database) Clone() *Database {
	out := &Database{
		rels:  make(map[string]*Relation, len(db.rels)),
		order: append([]string(nil), db.order...),
		vars:  append([]VarRef(nil), db.vars...),
	}
	for name, r := range db.rels {
		nr := &Relation{
			Name:          r.Name,
			Cols:          append([]string(nil), r.Cols...),
			Deterministic: r.Deterministic,
			Tuples:        make([]Tuple, len(r.Tuples)),
			byKey:         make(map[string]int, len(r.byKey)),
			indexes:       make(map[int]colIndex),
		}
		for i, t := range r.Tuples {
			nr.Tuples[i] = Tuple{Vals: append([]Value(nil), t.Vals...), Var: t.Var, Weight: t.Weight}
		}
		for k, v := range r.byKey {
			nr.byKey[k] = v
		}
		out.rels[name] = nr
	}
	return out
}
