package engine

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// assertSameDatabase checks structural equality of two databases: relation
// order, schemas, tuples (values, variables, bitwise-equal weights) and the
// variable registry, tombstones included.
func assertSameDatabase(t *testing.T, a, b *Database) {
	t.Helper()
	ra, rb := a.Relations(), b.Relations()
	if len(ra) != len(rb) {
		t.Fatalf("relation count %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("relation order diverged: %v vs %v", ra, rb)
		}
		x, y := a.Relation(ra[i]), b.Relation(rb[i])
		if x.Deterministic != y.Deterministic || len(x.Cols) != len(y.Cols) {
			t.Fatalf("%s: schema mismatch", ra[i])
		}
		if len(x.Tuples) != len(y.Tuples) {
			t.Fatalf("%s: %d vs %d tuples", ra[i], len(x.Tuples), len(y.Tuples))
		}
		for j := range x.Tuples {
			tx, ty := x.Tuples[j], y.Tuples[j]
			if tx.Var != ty.Var || len(tx.Vals) != len(ty.Vals) {
				t.Fatalf("%s[%d]: %+v vs %+v", ra[i], j, tx, ty)
			}
			if math.Float64bits(tx.Weight) != math.Float64bits(ty.Weight) {
				t.Fatalf("%s[%d]: weight %v vs %v (must be bitwise equal)", ra[i], j, tx.Weight, ty.Weight)
			}
			for k := range tx.Vals {
				if !tx.Vals[k].Equal(ty.Vals[k]) {
					t.Fatalf("%s[%d][%d]: %v vs %v", ra[i], j, k, tx.Vals[k], ty.Vals[k])
				}
			}
		}
	}
	if a.NumVars() != b.NumVars() {
		t.Fatalf("NumVars %d vs %d", a.NumVars(), b.NumVars())
	}
	for v := 1; v <= a.NumVars(); v++ {
		refA, errA := a.VarRef(v)
		refB, errB := b.VarRef(v)
		if (errA == nil) != (errB == nil) || refA != refB {
			t.Fatalf("var %d: %v/%v vs %v/%v", v, refA, errA, refB, errB)
		}
		if math.Float64bits(a.Weight(v)) != math.Float64bits(b.Weight(v)) {
			t.Fatalf("var %d: weight %v vs %v", v, a.Weight(v), b.Weight(v))
		}
	}
	pa, pb := a.Probs(), b.Probs()
	for i := range pa {
		if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
			t.Fatalf("prob[%d]: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func roundTrip(t *testing.T, db *Database) *Database {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestSnapshotRoundTripProperty: gob snapshot round-trips preserve tuples,
// variables and weights exactly — including negative-weight NV tuples from
// the MarkoView translation and tombstones left by deletes.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 10
	}
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		db := randMutatedDB(rng)
		back := roundTrip(t, db)
		assertSameDatabase(t, db, back)
		// Round-tripping the restored copy must be a fixed point.
		assertSameDatabase(t, back, roundTrip(t, back))
	}
}

// FuzzSnapshotRoundTrip drives the same property from fuzzed seeds, so the
// fuzzer explores mutation interleavings beyond the fixed property sweep.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		db := randMutatedDB(rand.New(rand.NewSource(seed)))
		assertSameDatabase(t, db, roundTrip(t, db))
	})
}
