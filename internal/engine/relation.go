package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Deterministic is the weight of a deterministic tuple: infinite odds,
// probability 1.
var Deterministic = math.Inf(1)

// Tuple is a row of a relation. Var is the Boolean variable attached to a
// probabilistic tuple (0 for deterministic tuples), Weight its odds.
type Tuple struct {
	Vals   []Value
	Var    int
	Weight float64
}

// Prob converts the tuple's weight (odds) to a marginal probability
// p = w/(1+w). Deterministic tuples have probability 1. Negative weights
// yield the (valid in this framework) negative probability 1 - 1/(1+w); for
// w = -1 the translation is degenerate and Prob returns -Inf.
func (t Tuple) Prob() float64 {
	return WeightToProb(t.Weight)
}

// WeightToProb converts odds to probability: p = w/(1+w).
func WeightToProb(w float64) float64 {
	if math.IsInf(w, 1) {
		return 1
	}
	return w / (1 + w)
}

// ProbToWeight converts probability to odds: w = p/(1-p).
func ProbToWeight(p float64) float64 {
	if p == 1 {
		return math.Inf(1)
	}
	return p / (1 - p)
}

// Relation is a named table. Probabilistic relations hold weighted tuples;
// deterministic relations hold tuples with Weight = Deterministic and Var 0.
//
// Reads are safe for concurrent use: the hash and sorted indexes are built
// lazily under mu, so parallel compilation workers and concurrent query
// evaluators may share a relation as long as no tuples are being inserted
// at the same time.
type Relation struct {
	Name          string
	Cols          []string
	Deterministic bool
	Tuples        []Tuple

	mu      sync.RWMutex     // guards the lazy index maps below
	byKey   map[string]int   // full tuple key -> index in Tuples
	indexes map[int]colIndex // column -> value key -> tuple indexes
	sorted  map[int][]int    // column -> tuple indexes ordered by value
}

// colIndex keys directly on Value — a comparable struct — instead of a
// materialized string key: MatchingIndexes sits on the compiler's and
// evaluator's innermost loops, and the string key was one allocation per
// probe.
type colIndex map[Value][]int

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Cols) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Lookup returns the index of the tuple with exactly the given values, or -1.
// The key is built in a stack buffer, so a miss or hit costs no allocation
// for tuples of ordinary size (the compiler probes once per ground atom per
// chain block).
func (r *Relation) Lookup(vals []Value) int {
	var buf [96]byte
	if i, ok := r.byKey[string(AppendTupleKey(buf[:0], vals))]; ok {
		return i
	}
	return -1
}

// insert appends a tuple, rejecting duplicates (every relation has a key; we
// take the full tuple as key, as the paper does when no natural key exists).
func (r *Relation) insert(t Tuple) (int, error) {
	if len(t.Vals) != len(r.Cols) {
		return 0, fmt.Errorf("engine: relation %s has arity %d, got %d values", r.Name, len(r.Cols), len(t.Vals))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := string(AppendTupleKey(nil, t.Vals))
	if _, dup := r.byKey[key]; dup {
		return 0, fmt.Errorf("engine: duplicate tuple %s%s", r.Name, FormatTuple(t.Vals))
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
	r.byKey[key] = idx
	for col, ix := range r.indexes {
		k := t.Vals[col]
		ix[k] = append(ix[k], idx)
	}
	// Sorted indexes are rebuilt lazily; SortedIndex detects staleness by
	// length, so just leave them.
	return idx, nil
}

// EnsureIndex builds (once) a hash index on the given column and returns it.
// Safe for concurrent readers: the first caller builds the index under the
// write lock, later callers get the cached map.
func (r *Relation) EnsureIndex(col int) colIndex {
	r.mu.RLock()
	ix, ok := r.indexes[col]
	r.mu.RUnlock()
	if ok {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix, ok := r.indexes[col]; ok {
		return ix
	}
	ix = make(colIndex)
	for i, t := range r.Tuples {
		k := t.Vals[col]
		ix[k] = append(ix[k], i)
	}
	r.indexes[col] = ix
	return ix
}

// MatchingIndexes returns the indexes of tuples whose value in column col
// equals v, using (and building if needed) the hash index.
func (r *Relation) MatchingIndexes(col int, v Value) []int {
	return r.EnsureIndex(col)[v]
}

// ColIndex returns the position of the named column, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// SortedIndex returns (building and caching on first use) the tuple indexes
// of the relation ordered by the value in the given column. Safe for
// concurrent readers, like EnsureIndex.
func (r *Relation) SortedIndex(col int) []int {
	r.mu.RLock()
	ix, ok := r.sorted[col]
	r.mu.RUnlock()
	if ok && len(ix) == len(r.Tuples) {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted == nil {
		r.sorted = map[int][]int{}
	}
	if ix, ok := r.sorted[col]; ok && len(ix) == len(r.Tuples) {
		return ix
	}
	ix = make([]int, len(r.Tuples))
	for i := range ix {
		ix[i] = i
	}
	sort.Slice(ix, func(a, b int) bool {
		return r.Tuples[ix[a]].Vals[col].Compare(r.Tuples[ix[b]].Vals[col]) < 0
	})
	r.sorted[col] = ix
	return ix
}

// RangeScan returns the indexes of tuples whose value in col lies in the
// interval formed by the optional bounds. A nil bound is unbounded; the
// booleans make each bound inclusive.
func (r *Relation) RangeScan(col int, lo *Value, loIncl bool, hi *Value, hiIncl bool) []int {
	ix := r.SortedIndex(col)
	start := 0
	if lo != nil {
		start = sort.Search(len(ix), func(i int) bool {
			c := r.Tuples[ix[i]].Vals[col].Compare(*lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix)
	if hi != nil {
		end = sort.Search(len(ix), func(i int) bool {
			c := r.Tuples[ix[i]].Vals[col].Compare(*hi)
			if hiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	return ix[start:end]
}
