package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatabaseRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustCreateRelation("D", true, "n")
	v1 := db.MustInsert("R", 2.5, Int(1), Str("x"))
	db.MustInsert("R", -0.5, Int(2), Str("y")) // negative weight survives
	db.MustInsertDet("D", Str("name"))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars() != 2 {
		t.Fatalf("vars = %d", back.NumVars())
	}
	if w := back.Weight(v1); w != 2.5 {
		t.Errorf("weight = %v", w)
	}
	if back.Weight(2) != -0.5 {
		t.Errorf("negative weight lost: %v", back.Weight(2))
	}
	r := back.Relation("R")
	if r.Lookup([]Value{Int(1), Str("x")}) != 0 {
		t.Error("lookup index broken after load")
	}
	if got := r.MatchingIndexes(0, Int(2)); len(got) != 1 {
		t.Error("column index broken after load")
	}
	if !back.Relation("D").Deterministic {
		t.Error("determinism lost")
	}
	// Further inserts keep working.
	if _, err := back.Insert("R", 1, Int(3), Str("z")); err != nil {
		t.Fatal(err)
	}
	if back.NumVars() != 3 {
		t.Error("var counter broken after load")
	}
}

func TestReadDatabaseCorrupt(t *testing.T) {
	if _, err := ReadDatabase(strings.NewReader("not gob")); err == nil {
		t.Error("corrupt stream accepted")
	}
}

func TestImportExportCSV(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("Author", true, "aid", "name")
	db.MustCreateRelation("Adv", false, "s", "a")

	n, err := db.ImportCSV("Author", strings.NewReader("aid,name\n1,Alice\n2,Bob\n"),
		[]CSVColumn{CSVInt, CSVString}, true)
	if err != nil || n != 2 {
		t.Fatalf("import det: %d, %v", n, err)
	}
	n, err = db.ImportCSV("Adv", strings.NewReader("1,2,1.5\n2,1,0.25\n"),
		[]CSVColumn{CSVInt, CSVInt}, false)
	if err != nil || n != 2 {
		t.Fatalf("import prob: %d, %v", n, err)
	}
	if db.Weight(1) != 1.5 || db.Weight(2) != 0.25 {
		t.Errorf("weights = %v %v", db.Weight(1), db.Weight(2))
	}

	var buf bytes.Buffer
	if err := db.ExportCSV("Adv", &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1,2,1.5\n2,1,0.25\n" {
		t.Errorf("export = %q", got)
	}
	buf.Reset()
	if err := db.ExportCSV("Author", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,Alice") {
		t.Errorf("export = %q", buf.String())
	}
}

func TestImportCSVErrors(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	cases := []struct {
		rel, data string
		cols      []CSVColumn
	}{
		{"Nope", "1,1\n", []CSVColumn{CSVInt}},
		{"R", "1\n", []CSVColumn{CSVInt}},            // missing weight field
		{"R", "x,1\n", []CSVColumn{CSVInt}},          // bad int
		{"R", "1,notaweight\n", []CSVColumn{CSVInt}}, // bad weight
		{"R", "1,1\n", []CSVColumn{CSVInt, CSVInt}},  // wrong kinds arity
	}
	for _, c := range cases {
		if _, err := db.ImportCSV(c.rel, strings.NewReader(c.data), c.cols, false); err == nil {
			t.Errorf("ImportCSV(%q, %q) accepted", c.rel, c.data)
		}
	}
	if err := db.ExportCSV("Nope", &bytes.Buffer{}); err == nil {
		t.Error("ExportCSV unknown relation accepted")
	}
}
