package engine

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeleteTupleTombstone(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	v1 := db.MustInsert("R", 0.5, Int(1), Int(10))
	v2 := db.MustInsert("R", 1.5, Int(2), Int(20))
	v3 := db.MustInsert("R", 2.5, Int(3), Int(30))

	freed, err := db.DeleteTuple("R", []Value{Int(1), Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if freed != v1 {
		t.Fatalf("freed var %d, want %d", freed, v1)
	}
	if db.Relation("R").Len() != 2 {
		t.Fatalf("len = %d, want 2", db.Relation("R").Len())
	}
	if _, err := db.VarRef(v1); err == nil {
		t.Fatal("VarRef of deleted var must error")
	}
	if w := db.Weight(v1); w != 0 {
		t.Fatalf("weight of deleted var = %v, want 0", w)
	}
	// The swap moved v3's tuple into slot 0; the registry must follow.
	ref, err := db.VarRef(v3)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Relation("R").Tuples[ref.Pos]; got.Var != v3 || !got.Vals[0].Equal(Int(3)) {
		t.Fatalf("moved tuple mismatch: %+v", got)
	}
	if db.Weight(v2) != 1.5 || db.Weight(v3) != 2.5 {
		t.Fatal("surviving weights changed")
	}
	// Hash index must have been invalidated: lookups see the new layout.
	if got := db.Relation("R").MatchingIndexes(0, Int(1)); len(got) != 0 {
		t.Fatalf("stale index: %v", got)
	}
	if got := db.Relation("R").MatchingIndexes(0, Int(3)); len(got) != 1 {
		t.Fatalf("index after delete: %v", got)
	}
	// Deleting again fails; the key is gone.
	if _, err := db.DeleteTuple("R", []Value{Int(1), Int(10)}); err == nil {
		t.Fatal("double delete must error")
	}
	// Probs stays well-formed with the dead entry zeroed.
	ps := db.Probs()
	if ps[v1] != 0 {
		t.Fatalf("dead prob = %v", ps[v1])
	}
	// Re-inserting the same values allocates a fresh variable.
	v4 := db.MustInsert("R", 0.25, Int(1), Int(10))
	if v4 == v1 {
		t.Fatal("variable id reused after delete")
	}
}

func TestUpdateWeight(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a")
	v := db.MustInsert("R", 0.5, Int(1))
	db.MustInsertDet("D", Int(1))
	if _, err := db.UpdateWeight("R", []Value{Int(1)}, -3); err != nil {
		t.Fatal(err)
	}
	if db.Weight(v) != -3 {
		t.Fatalf("weight = %v", db.Weight(v))
	}
	if _, err := db.UpdateWeight("R", []Value{Int(2)}, 1); err == nil {
		t.Fatal("missing tuple must error")
	}
	if _, err := db.UpdateWeight("D", []Value{Int(1)}, 1); err == nil {
		t.Fatal("deterministic relation must error")
	}
	if _, err := db.UpdateWeight("R", []Value{Int(1)}, math.NaN()); err == nil {
		t.Fatal("NaN weight must error")
	}
}

// randMutatedDB builds a random database — deterministic and probabilistic
// relations, int and string values, negative NV-style and +Inf weights — and
// applies a random interleaving of inserts, deletes and reweights so the
// variable registry contains tombstones and swapped positions.
func randMutatedDB(rng *rand.Rand) *Database {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustCreateRelation("S", false, "a")
	db.MustCreateRelation("NV_V1", false, "a", "b")
	db.MustCreateRelation("Det", true, "a")
	randWeight := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return -1 - rng.Float64()*4 // negative NV weight (view weight > 1)
		case 1:
			return rng.Float64() * 3
		case 2:
			return math.Inf(1)
		default:
			return rng.Float64() * 10
		}
	}
	randVal := func() Value {
		if rng.Intn(3) == 0 {
			return Str(string(rune('a' + rng.Intn(26))))
		}
		return Int(rng.Int63n(40))
	}
	type key struct {
		rel  string
		vals [2]Value
		n    int
	}
	var live []key
	for step := 0; step < 200; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // insert
			rel := []string{"R", "S", "NV_V1", "Det"}[rng.Intn(4)]
			n := 2
			if rel == "S" || rel == "Det" {
				n = 1
			}
			k := key{rel: rel, n: n}
			for i := 0; i < n; i++ {
				k.vals[i] = randVal()
			}
			vals := append([]Value(nil), k.vals[:n]...)
			if rel == "Det" {
				if !db.HasTuple(rel, vals) {
					db.MustInsertDet(rel, vals...)
					live = append(live, k)
				}
			} else if !db.HasTuple(rel, vals) {
				db.MustInsert(rel, randWeight(), vals...)
				live = append(live, k)
			}
		case op < 8: // delete
			i := rng.Intn(len(live))
			k := live[i]
			if _, err := db.DeleteTuple(k.rel, k.vals[:k.n]); err != nil {
				panic(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // reweight
			i := rng.Intn(len(live))
			k := live[i]
			if k.rel == "Det" {
				continue
			}
			if _, err := db.UpdateWeight(k.rel, k.vals[:k.n], randWeight()); err != nil {
				panic(err)
			}
		}
	}
	return db
}
