package engine

import (
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// DatabaseSnapshot is the gob-serializable form of a Database, exported so
// callers can embed it in larger snapshot messages (the MV-index does).
type DatabaseSnapshot struct {
	Relations []RelationSnapshot
	Vars      []VarRef
}

// RelationSnapshot is one serialized relation.
type RelationSnapshot struct {
	Name          string
	Cols          []string
	Deterministic bool
	Tuples        []Tuple
}

// Snapshot captures the database's state. Indexes are not stored; they are
// rebuilt lazily after restoring.
func (db *Database) Snapshot() DatabaseSnapshot {
	s := DatabaseSnapshot{Vars: db.vars}
	for _, name := range db.order {
		r := db.rels[name]
		s.Relations = append(s.Relations, RelationSnapshot{
			Name: r.Name, Cols: r.Cols, Deterministic: r.Deterministic, Tuples: r.Tuples,
		})
	}
	return s
}

// FromSnapshot rebuilds a database from a snapshot, validating the variable
// registry against the relations.
func FromSnapshot(s DatabaseSnapshot) (*Database, error) {
	db := NewDatabase()
	for _, rs := range s.Relations {
		rel, err := db.CreateRelation(rs.Name, rs.Deterministic, rs.Cols...)
		if err != nil {
			return nil, err
		}
		rel.Tuples = rs.Tuples
		for i, t := range rs.Tuples {
			rel.byKey[string(AppendTupleKey(nil, t.Vals))] = i
		}
	}
	db.vars = s.Vars
	for i, ref := range db.vars {
		if ref.Dead() {
			continue // tombstone of a deleted tuple
		}
		rel := db.rels[ref.Rel]
		if rel == nil || ref.Pos < 0 || ref.Pos >= len(rel.Tuples) {
			return nil, fmt.Errorf("engine: variable %d references missing tuple %s[%d]", i+1, ref.Rel, ref.Pos)
		}
		if rel.Tuples[ref.Pos].Var != i+1 {
			return nil, fmt.Errorf("engine: variable registry inconsistent at %d", i+1)
		}
	}
	return db, nil
}

// Save serializes the database with encoding/gob.
func (db *Database) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(db.Snapshot())
}

// ReadDatabase deserializes a database written by Save.
func ReadDatabase(r io.Reader) (*Database, error) {
	var s DatabaseSnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("engine: decoding database: %w", err)
	}
	return FromSnapshot(s)
}

// CSVColumn describes one column when importing CSV data.
type CSVColumn int

// Column kinds for ImportCSV.
const (
	CSVInt CSVColumn = iota
	CSVString
)

// ImportCSV loads rows into an existing relation. For probabilistic
// relations the last CSV field is the tuple weight (odds); deterministic
// relations consume exactly one field per column. Header is the caller's
// business (skip it before calling, or pass hasHeader).
func (db *Database) ImportCSV(rel string, r io.Reader, cols []CSVColumn, hasHeader bool) (int, error) {
	rl := db.Relation(rel)
	if rl == nil {
		return 0, fmt.Errorf("engine: unknown relation %s", rel)
	}
	if len(cols) != rl.Arity() {
		return 0, fmt.Errorf("engine: relation %s has %d columns, got %d kinds", rel, rl.Arity(), len(cols))
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	n := 0
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("engine: csv: %w", err)
		}
		if first && hasHeader {
			first = false
			continue
		}
		first = false
		wantFields := len(cols)
		if !rl.Deterministic {
			wantFields++
		}
		if len(rec) != wantFields {
			return n, fmt.Errorf("engine: csv row has %d fields, want %d", len(rec), wantFields)
		}
		vals := make([]Value, len(cols))
		for i, kind := range cols {
			switch kind {
			case CSVInt:
				x, err := strconv.ParseInt(rec[i], 10, 64)
				if err != nil {
					return n, fmt.Errorf("engine: csv column %d: %w", i, err)
				}
				vals[i] = Int(x)
			default:
				vals[i] = Str(rec[i])
			}
		}
		if rl.Deterministic {
			if err := db.InsertDet(rel, vals...); err != nil {
				return n, err
			}
		} else {
			w, err := strconv.ParseFloat(rec[len(rec)-1], 64)
			if err != nil {
				return n, fmt.Errorf("engine: csv weight: %w", err)
			}
			if _, err := db.Insert(rel, w, vals...); err != nil {
				return n, err
			}
		}
		n++
	}
	return n, nil
}

// ExportCSV writes a relation as CSV; probabilistic relations get a
// trailing weight field.
func (db *Database) ExportCSV(rel string, w io.Writer) error {
	rl := db.Relation(rel)
	if rl == nil {
		return fmt.Errorf("engine: unknown relation %s", rel)
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, t := range rl.Tuples {
		rec := make([]string, 0, len(t.Vals)+1)
		for _, v := range t.Vals {
			if v.IsStr {
				rec = append(rec, v.Str)
			} else {
				rec = append(rec, strconv.FormatInt(v.Int, 10))
			}
		}
		if !rl.Deterministic {
			rec = append(rec, strconv.FormatFloat(t.Weight, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
