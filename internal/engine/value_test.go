package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Int(-3), Int(0), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("x"), Str("x"), 0},
		{Int(999), Str(""), -1}, // ints sort before strings
		{Str(""), Int(999), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("Int(3) != Int(3)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) == Str(3)")
	}
	if !Str("ab").Equal(Str("ab")) {
		t.Error("Str(ab) != Str(ab)")
	}
	// Int field is ignored for strings only if construction goes through Str;
	// Equal compares all fields, so hand-built mixed values differ.
	if (Value{Int: 1, Str: "a", IsStr: true}).Equal(Str("a")) {
		t.Error("values with differing Int fields compare equal")
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{Int(1), Int(-1), Int(12), Str("1"), Str("-1"), Str(""), Str("i1"), Str("s")}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision: %v and %v both map to %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestTupleKeyInjective(t *testing.T) {
	a := TupleKey([]Value{Str("ab"), Str("c")})
	b := TupleKey([]Value{Str("a"), Str("bc")})
	if a == b {
		t.Errorf("TupleKey not injective: %q", a)
	}
	c := TupleKey([]Value{Str("a"), Str("b"), Str("c")})
	if a == c {
		t.Errorf("TupleKey not injective across arities: %q", a)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Sam Madden", "%Madden%", true},
		{"Sam Madden", "Sam%", true},
		{"Sam Madden", "%Sam", false},
		{"Sam Madden", "%M_dden", true},
		{"Sam Madden", "Sam Madden", true},
		{"Sam Madden", "sam madden", false}, // case-sensitive
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"aXbXc", "%X%X%", true},
		{"madden", "%Madden%", false},
		{"xMaddeny", "%Madden%", true},
		{"%", "%%", true},
		{"abc", "%%%", true},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q,%q)=%v want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeNoWildcardsEqualsEquality(t *testing.T) {
	f := func(s string) bool {
		// A pattern without wildcards matches iff strings are equal.
		return Like(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42")
	if err != nil || !v.Equal(Int(42)) {
		t.Errorf("ParseValue(42) = %v, %v", v, err)
	}
	v, err = ParseValue("'hi'")
	if err != nil || !v.Equal(Str("hi")) {
		t.Errorf("ParseValue('hi') = %v, %v", v, err)
	}
	v, err = ParseValue(`"quoted"`)
	if err != nil || !v.Equal(Str("quoted")) {
		t.Errorf("ParseValue(quoted) = %v, %v", v, err)
	}
	if _, err = ParseValue("not a number"); err == nil {
		t.Error("ParseValue accepted garbage")
	}
	if _, err = ParseValue("3.14"); err == nil {
		t.Error("ParseValue accepted a float")
	}
}

func TestWeightProbConversions(t *testing.T) {
	cases := []struct{ w, p float64 }{
		{0, 0},
		{1, 0.5},
		{3, 0.75},
		{math.Inf(1), 1},
		{-0.5, -1}, // negative weight from view translation: p = -0.5/0.5
	}
	for _, c := range cases {
		if got := WeightToProb(c.w); math.Abs(got-c.p) > 1e-12 {
			t.Errorf("WeightToProb(%v)=%v want %v", c.w, got, c.p)
		}
	}
	// Round trip on ordinary values.
	for _, p := range []float64{0, 0.1, 0.5, 0.9} {
		if got := WeightToProb(ProbToWeight(p)); math.Abs(got-p) > 1e-12 {
			t.Errorf("round trip p=%v got %v", p, got)
		}
	}
	if ProbToWeight(1) != math.Inf(1) {
		t.Error("ProbToWeight(1) should be +Inf")
	}
}
