package engine

import (
	"fmt"
	"math"
)

// Mutations. The engine supports in-place deletion and reweighting of
// tuples in addition to insertion. Variable ids are never reused: deleting a
// probabilistic tuple tombstones its variable (VarRef{Rel: "", Pos: -1}) so
// every id handed out earlier keeps meaning the same tuple forever. A dead
// variable has weight 0 — in the odds semantics of Definition 2 that is a
// tuple that is false in every positive-probability world, i.e. absent —
// so probability vectors built after a delete stay well-formed.
//
// Like inserts, mutations are not safe to run concurrently with readers;
// callers serialize (internal/server holds its write lock across a batch).

// Dead reports whether the reference is a tombstone left by DeleteTuple.
func (ref VarRef) Dead() bool { return ref.Rel == "" }

// HasTuple reports whether the relation holds a tuple with exactly these
// values.
func (db *Database) HasTuple(rel string, vals []Value) bool {
	r := db.rels[rel]
	return r != nil && r.Lookup(vals) >= 0
}

// DeleteTuple removes the tuple with exactly the given values. The vacated
// slot is filled by swapping in the relation's last tuple (the variable
// registry is re-pointed at the new position), the hash indexes are patched
// in place, the sorted indexes are invalidated, and a probabilistic tuple's
// variable is tombstoned. It returns the freed variable id (0 for
// deterministic tuples).
func (db *Database) DeleteTuple(rel string, vals []Value) (int, error) {
	r := db.rels[rel]
	if r == nil {
		return 0, fmt.Errorf("engine: unknown relation %s", rel)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := string(AppendTupleKey(nil, vals))
	idx, ok := r.byKey[key]
	if !ok {
		return 0, fmt.Errorf("engine: no tuple %s%s", rel, FormatTuple(vals))
	}
	t := r.Tuples[idx]
	last := len(r.Tuples) - 1
	moved := r.Tuples[last]
	if idx != last {
		r.Tuples[idx] = moved
		r.byKey[string(AppendTupleKey(nil, moved.Vals))] = idx
		if moved.Var != 0 {
			db.vars[moved.Var-1].Pos = idx
		}
	}
	r.Tuples[last] = Tuple{}
	r.Tuples = r.Tuples[:last]
	delete(r.byKey, key)
	// Patch the hash indexes in place — drop the deleted tuple's entry, then
	// re-point the swapped-in tuple's entry from last to idx. Rebuilding them
	// wholesale would make every delete O(relation), which the live-update
	// path cannot afford.
	for col, ix := range r.indexes {
		dropIndexEntry(ix, t.Vals[col], idx)
		if idx != last {
			b := ix[moved.Vals[col]]
			for i, p := range b {
				if p == last {
					b[i] = idx
					break
				}
			}
		}
	}
	// Sorted indexes hold positions ordered by value; a swap-remove cannot be
	// patched cheaply, so let the next range scan rebuild.
	r.sorted = nil
	if t.Var != 0 {
		db.vars[t.Var-1] = VarRef{Rel: "", Pos: -1}
	}
	return t.Var, nil
}

// dropIndexEntry removes position pos from the bucket for value v,
// preserving the order of the remaining entries.
func dropIndexEntry(ix colIndex, v Value, pos int) {
	b := ix[v]
	for i, p := range b {
		if p == pos {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(ix, v)
	} else {
		ix[v] = b
	}
}

// UpdateWeight sets the weight (odds) of the probabilistic tuple with
// exactly the given values and returns its variable id.
func (db *Database) UpdateWeight(rel string, vals []Value, w float64) (int, error) {
	r := db.rels[rel]
	if r == nil {
		return 0, fmt.Errorf("engine: unknown relation %s", rel)
	}
	if r.Deterministic {
		return 0, fmt.Errorf("engine: relation %s is deterministic", rel)
	}
	if math.IsNaN(w) {
		return 0, fmt.Errorf("engine: weight for %s%s is NaN", rel, FormatTuple(vals))
	}
	idx := r.Lookup(vals)
	if idx < 0 {
		return 0, fmt.Errorf("engine: no tuple %s%s", rel, FormatTuple(vals))
	}
	r.Tuples[idx].Weight = w
	return r.Tuples[idx].Var, nil
}
