package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randValue generates integer and string Values, biased toward collisions.
type randValue struct{ V Value }

// Generate implements quick.Generator.
func (randValue) Generate(rng *rand.Rand, size int) reflect.Value {
	var v Value
	if rng.Intn(2) == 0 {
		v = Int(rng.Int63n(20) - 10)
	} else {
		alphabet := []string{"", "a", "b", "ab", "i5", "s", "-3", "5"}
		v = Str(alphabet[rng.Intn(len(alphabet))])
	}
	return reflect.ValueOf(randValue{v})
}

// TestQuickCompareTotalOrder: Compare is antisymmetric and consistent with
// Equal.
func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b randValue) bool {
		ca, cb := a.V.Compare(b.V), b.V.Compare(a.V)
		if ca != -cb {
			return false
		}
		return (ca == 0) == a.V.Equal(b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareTransitive on random triples.
func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c randValue) bool {
		if a.V.Compare(b.V) <= 0 && b.V.Compare(c.V) <= 0 {
			return a.V.Compare(c.V) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickValueKeyInjective: Key collides only on equal values.
func TestQuickValueKeyInjective(t *testing.T) {
	f := func(a, b randValue) bool {
		return (a.V.Key() == b.V.Key()) == a.V.Equal(b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickTupleKeyInjective: TupleKey collides only on equal tuples.
func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(a, b []randValue) bool {
		ta := make([]Value, len(a))
		for i, v := range a {
			ta[i] = v.V
		}
		tb := make([]Value, len(b))
		for i, v := range b {
			tb[i] = v.V
		}
		equal := len(ta) == len(tb)
		if equal {
			for i := range ta {
				if !ta[i].Equal(tb[i]) {
					equal = false
					break
				}
			}
		}
		return (TupleKey(ta) == TupleKey(tb)) == equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickWeightProbRoundTrip on probabilities in (-1, 1).
func TestQuickWeightProbRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1.99) - 0.995 // in (-1, 1)
		if math.IsNaN(p) || math.Abs(1-p) < 1e-9 {
			return true
		}
		got := WeightToProb(ProbToWeight(p))
		return math.Abs(got-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickLikePrefixSuffix: "%s" and "s%" behave like HasSuffix/HasPrefix
// for wildcard-free s.
func TestQuickLikePrefixSuffix(t *testing.T) {
	clean := func(s string) string {
		out := []byte{}
		for i := 0; i < len(s); i++ {
			if s[i] != '%' && s[i] != '_' {
				out = append(out, s[i])
			}
		}
		return string(out)
	}
	f := func(prefix, suffix string) bool {
		p, s := clean(prefix), clean(suffix)
		full := p + "xyz" + s
		return Like(full, p+"%") && Like(full, "%"+s) && Like(full, p+"%"+s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
