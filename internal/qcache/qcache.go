// Package qcache implements the cross-query memoization layer: a
// power-of-two-sharded LRU cache with O(1) epoch invalidation and
// singleflight collapsing of concurrent identical misses.
//
// The cache is generic over its value type so both the answer cache
// (fingerprint → []Answer) and the lineage cache (lineage hash → probability)
// share one implementation without import cycles: qcache knows nothing about
// queries, indexes, or answers.
//
// # Keying and invalidation
//
// Keys are 128-bit canonical hashes (ucq.Fingerprint, lineage hashes).
// Every entry is stamped with the cache epoch current when its computation
// started; Invalidate bumps the epoch, which logically empties the cache in
// O(1) — stale entries are dropped lazily when touched or when LRU pressure
// reaches them. Stamping with the start-of-computation epoch (not the
// insert-time epoch) closes the race where a mutation lands mid-computation:
// the result computed against the old state is inserted already stale.
//
// # Singleflight
//
// Do collapses concurrent misses on one key into a single computation.
// Waiters respect their own context: a canceled waiter returns immediately
// with its context error while the leader keeps computing for the others. A
// leader that fails (evaluation error, budget exhaustion, cancellation)
// caches nothing and wakes the waiters to retry — an aborted computation
// never poisons the cache, and one canceled request never fails another.
package qcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Key is a 128-bit cache key (a canonical query fingerprint or lineage
// hash).
type Key struct {
	Hi, Lo uint64
}

// Options bounds one cache. The zero value enables the cache with the
// defaults below.
type Options struct {
	// MaxEntries caps the number of cached entries across all shards
	// (rounded up to a multiple of the shard count). 0 means
	// DefaultMaxEntries; negative means unlimited.
	MaxEntries int
	// MaxBytes caps the approximate retained value bytes across all shards.
	// 0 means DefaultMaxBytes; negative means unlimited.
	MaxBytes int64
	// Disable turns the cache off entirely (Get always misses, Put and Do
	// store nothing, Do still collapses concurrent identical calls).
	Disable bool
}

// Default capacity bounds (per cache, summed over shards).
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 256 << 20 // 256 MiB
	numShards         = 16        // power of two
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Coalesced counts calls served by waiting on another caller's
	// in-flight computation instead of evaluating (singleflight).
	Coalesced uint64 `json:"coalesced"`
	Epoch     uint64 `json:"epoch"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

type entry[V any] struct {
	key   Key
	val   V
	bytes int64
	epoch uint64
}

// flight is one in-progress computation; done is closed when the leader
// finishes, after val/err/ok are set.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	ok   bool
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[Key]*list.Element // of *entry[V]
	lru     *list.List            // front = most recent
	flights map[Key]*flight[V]
	bytes   int64
}

// Cache is a sharded LRU keyed by Key. The zero value is not usable; create
// with New. A nil *Cache is valid and behaves as permanently disabled.
type Cache[V any] struct {
	shards     [numShards]shard[V]
	epoch      atomic.Uint64
	maxEntries int   // per shard; <0 unlimited
	maxBytes   int64 // per shard; <0 unlimited
	sizeOf     func(V) int64
	disabled   bool

	hits, misses, evictions, coalesced atomic.Uint64
}

// New creates a cache. sizeOf estimates the retained bytes of one value for
// the MaxBytes accounting; nil counts every value as 1 byte.
func New[V any](opts Options, sizeOf func(V) int64) *Cache[V] {
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 1 }
	}
	c := &Cache[V]{sizeOf: sizeOf, disabled: opts.Disable}
	switch {
	case opts.MaxEntries < 0:
		c.maxEntries = -1
	case opts.MaxEntries == 0:
		c.maxEntries = (DefaultMaxEntries + numShards - 1) / numShards
	default:
		c.maxEntries = (opts.MaxEntries + numShards - 1) / numShards
	}
	switch {
	case opts.MaxBytes < 0:
		c.maxBytes = -1
	case opts.MaxBytes == 0:
		c.maxBytes = DefaultMaxBytes / numShards
	default:
		c.maxBytes = (opts.MaxBytes + numShards - 1) / numShards
	}
	for i := range c.shards {
		c.shards[i].entries = map[Key]*list.Element{}
		c.shards[i].lru = list.New()
		c.shards[i].flights = map[Key]*flight[V]{}
	}
	return c
}

func (c *Cache[V]) shardFor(k Key) *shard[V] {
	// The keys are already high-quality hashes; fold both words so either
	// half alone cannot bias the shard choice.
	return &c.shards[(k.Hi^k.Lo)&(numShards-1)]
}

// Get returns the cached value for k in the current epoch.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil || c.disabled {
		return zero, false
	}
	epoch := c.epoch.Load()
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		c.misses.Add(1)
		return zero, false
	}
	e := el.Value.(*entry[V])
	if e.epoch != epoch {
		s.removeLocked(el, e)
		c.misses.Add(1)
		return zero, false
	}
	s.lru.MoveToFront(el)
	c.hits.Add(1)
	return e.val, true
}

// Put inserts a value under the current epoch, evicting LRU entries past the
// capacity bounds.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil || c.disabled {
		return
	}
	c.putEpoch(k, v, c.epoch.Load())
}

func (c *Cache[V]) putEpoch(k Key, v V, epoch uint64) {
	if epoch != c.epoch.Load() {
		return // computed against a state that has since been invalidated
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*entry[V])
		s.bytes -= e.bytes
		e.val, e.bytes, e.epoch = v, c.sizeOf(v), epoch
		s.bytes += e.bytes
		s.lru.MoveToFront(el)
	} else {
		e := &entry[V]{key: k, val: v, bytes: c.sizeOf(v), epoch: epoch}
		s.entries[k] = s.lru.PushFront(e)
		s.bytes += e.bytes
	}
	for (c.maxEntries >= 0 && s.lru.Len() > c.maxEntries) ||
		(c.maxBytes >= 0 && s.bytes > c.maxBytes && s.lru.Len() > 1) {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back, back.Value.(*entry[V]))
		c.evictions.Add(1)
	}
}

func (s *shard[V]) removeLocked(el *list.Element, e *entry[V]) {
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
}

// Do returns the cached value for k or computes it with fn, collapsing
// concurrent identical misses into one evaluation. The returned bool reports
// whether the value came from the cache or another caller's computation
// (true) rather than this caller running fn (false).
//
// ctx bounds only the wait of a coalesced caller; it is fn's job to observe
// its own cancellation. On fn error nothing is cached and any waiters retry
// (each at most re-running fn once per failed leader).
func (c *Cache[V]) Do(ctx context.Context, k Key, fn func() (V, error)) (V, bool, error) {
	var zero V
	if c == nil {
		v, err := fn()
		return v, false, err
	}
	for {
		epoch := c.epoch.Load()
		s := c.shardFor(k)
		s.mu.Lock()
		if !c.disabled {
			if el, ok := s.entries[k]; ok {
				e := el.Value.(*entry[V])
				if e.epoch == epoch {
					s.lru.MoveToFront(el)
					s.mu.Unlock()
					c.hits.Add(1)
					return e.val, true, nil
				}
				s.removeLocked(el, e)
			}
		}
		if f, ok := s.flights[k]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.ok {
					c.coalesced.Add(1)
					return f.val, true, nil
				}
				// The leader failed; its abort (cancellation, budget, or a
				// genuine evaluation error) must not decide our fate — loop
				// and compute under our own constraints.
				continue
			case <-ctx.Done():
				return zero, false, ctx.Err()
			}
		}
		f := &flight[V]{done: make(chan struct{})}
		s.flights[k] = f
		s.mu.Unlock()

		c.misses.Add(1)
		v, err := fn()

		s.mu.Lock()
		delete(s.flights, k)
		s.mu.Unlock()
		if err == nil && !c.disabled {
			c.putEpoch(k, v, epoch)
		}
		f.val, f.err, f.ok = v, err, err == nil
		close(f.done)
		return v, false, err
	}
}

// Invalidate logically empties the cache in O(1) by bumping the epoch; every
// existing entry becomes stale and is dropped lazily. In-flight computations
// started before the bump will not be cached.
func (c *Cache[V]) Invalidate() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
}

// Epoch returns the current epoch.
func (c *Cache[V]) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Stats returns a counter snapshot. A nil cache reports zeros.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(),
		Epoch:     c.epoch.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
