package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(i int) Key { return Key{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)} }

func TestGetPut(t *testing.T) {
	c := New[int](Options{}, nil)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), 42)
	v, ok := c.Get(key(1))
	if !ok || v != 42 {
		t.Fatalf("got %v/%v, want 42/true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// numShards entries per shard max → keys landing in one shard evict in
	// LRU order past the cap.
	c := New[int](Options{MaxEntries: numShards * 2, MaxBytes: -1}, nil)
	// Collect keys that all land in shard 0.
	var ks []Key
	for i := 0; len(ks) < 4; i++ {
		k := key(i)
		if (k.Hi^k.Lo)&(numShards-1) == 0 {
			ks = append(ks, k)
		}
	}
	c.Put(ks[0], 0)
	c.Put(ks[1], 1)
	c.Get(ks[0]) // make ks[1] the least recently used
	c.Put(ks[2], 2)
	c.Put(ks[3], 3) // shard cap is 2: ks[1] then ks[0] evicted
	if _, ok := c.Get(ks[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(ks[3]); !ok {
		t.Fatal("most recent entry evicted")
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestByteCapEviction(t *testing.T) {
	c := New[string](Options{MaxEntries: -1, MaxBytes: numShards * 10}, func(s string) int64 { return int64(len(s)) })
	var ks []Key
	for i := 0; len(ks) < 3; i++ {
		k := key(i)
		if (k.Hi^k.Lo)&(numShards-1) == 0 {
			ks = append(ks, k)
		}
	}
	c.Put(ks[0], "aaaaaaaa") // 8 bytes
	c.Put(ks[1], "bbbbbbbb") // 16 > 10: ks[0] evicted
	if _, ok := c.Get(ks[0]); ok {
		t.Fatal("byte cap did not evict")
	}
	if _, ok := c.Get(ks[1]); !ok {
		t.Fatal("newest entry evicted instead")
	}
	// A single oversized entry stays (the cache never evicts its last entry
	// on bytes alone, so a one-off huge value still caches).
	c.Put(ks[2], "cccccccccccccccccccccccc")
	if _, ok := c.Get(ks[2]); !ok {
		t.Fatal("oversized entry not kept")
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New[int](Options{}, nil)
	c.Put(key(1), 1)
	c.Invalidate()
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	c.Put(key(1), 2)
	if v, ok := c.Get(key(1)); !ok || v != 2 {
		t.Fatalf("fresh entry after invalidation: %v/%v", v, ok)
	}
}

// TestMidFlightInvalidation: a computation that started before Invalidate
// must not be cached — its result reflects the pre-mutation state.
func TestMidFlightInvalidation(t *testing.T) {
	c := New[int](Options{}, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), key(1), func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	c.Invalidate() // the "Reweight" lands mid-computation
	close(release)
	<-done
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("stale-on-arrival result was cached")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](Options{}, nil)
	var calls atomic.Int32
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), key(7), func() (int, error) {
				calls.Add(1)
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let the goroutines pile up on the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if co := c.Stats().Coalesced; co != n-1 {
		t.Fatalf("coalesced = %d, want %d", co, n-1)
	}
}

// TestDoLeaderErrorWakesWaiters: a failing leader caches nothing and the
// waiters retry with their own fn — the abort does not propagate.
func TestDoLeaderErrorWakesWaiters(t *testing.T) {
	c := New[int](Options{}, nil)
	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		c.Do(context.Background(), key(3), func() (int, error) {
			close(leaderIn)
			<-leaderOut
			return 0, boom
		})
	}()
	<-leaderIn
	waiter := make(chan int, 1)
	go func() {
		v, _, err := c.Do(context.Background(), key(3), func() (int, error) { return 7, nil })
		if err != nil {
			t.Errorf("waiter failed with the leader's error: %v", err)
		}
		waiter <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	close(leaderOut)
	if v := <-waiter; v != 7 {
		t.Fatalf("waiter got %d, want its own computation's 7", v)
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("waiter's successful retry was not cached")
	}
}

// TestDoWaiterCancel: a canceled waiter returns its context error immediately
// while the leader keeps going and still caches.
func TestDoWaiterCancel(t *testing.T) {
	c := New[int](Options{}, nil)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), key(5), func() (int, error) {
			close(leaderIn)
			<-leaderOut
			return 5, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key(5), func() (int, error) { return 0, nil })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter did not return")
	}
	close(leaderOut)
	<-leaderDone
	if v, ok := c.Get(key(5)); !ok || v != 5 {
		t.Fatal("leader's result lost after a waiter canceled")
	}
}

func TestDisabled(t *testing.T) {
	c := New[int](Options{Disable: true}, nil)
	c.Put(key(1), 1)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("disabled cache stored a value")
	}
	v, shared, err := c.Do(context.Background(), key(1), func() (int, error) { return 9, nil })
	if err != nil || shared || v != 9 {
		t.Fatalf("disabled Do: %v %v %v", v, shared, err)
	}
	var nilC *Cache[int]
	if _, ok := nilC.Get(key(1)); ok {
		t.Fatal("nil cache hit")
	}
	nilC.Put(key(1), 1)
	nilC.Invalidate()
	if st := nilC.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if v, _, err := nilC.Do(context.Background(), key(1), func() (int, error) { return 3, nil }); err != nil || v != 3 {
		t.Fatalf("nil Do: %v %v", v, err)
	}
}

// TestConcurrentHammer drives every operation from many goroutines at once —
// meaningful under -race.
func TestConcurrentHammer(t *testing.T) {
	c := New[int](Options{MaxEntries: 64, MaxBytes: -1}, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i % 97)
				switch i % 5 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.Do(ctx, k, func() (int, error) { return i, nil })
				case 3:
					if i%50 == 0 {
						c.Invalidate()
					}
					c.Get(k)
				case 4:
					c.Do(ctx, k, func() (int, error) { return 0, fmt.Errorf("e%d", i) })
				}
			}
		}(g)
	}
	wg.Wait()
	c.Stats()
}
