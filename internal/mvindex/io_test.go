package mvindex

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	m := chainMVDB(25, 9)
	tr, ix := buildIndex(t, m)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ix.Size() || back.Blocks() != ix.Blocks() {
		t.Errorf("size/blocks: %d/%d vs %d/%d", back.Size(), back.Blocks(), ix.Size(), ix.Blocks())
	}
	if math.Abs(back.ProbNotW()-ix.ProbNotW()) > 1e-12 {
		t.Errorf("P(¬W): %v vs %v", back.ProbNotW(), ix.ProbNotW())
	}
	// Query answers are identical through the loaded index.
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	want, err := tr.Query(q, core.MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range []bool{false, true} {
		got, err := back.Query(q, IntersectOptions{CacheConscious: cc})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("rows: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
				t.Errorf("cc=%v row %v: %v vs %v", cc, got[i].Head, got[i].Prob, want[i].Prob)
			}
		}
	}
}

func TestIndexLoadCorrupt(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage")); err == nil {
		t.Error("corrupt index accepted")
	}
	// Truncated stream.
	m := chainMVDB(5, 1)
	_, ix := buildIndex(t, m)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated index accepted")
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	m := chainMVDB(8, 2)
	_, ix := buildIndex(t, m)
	path := t.TempDir() + "/test.mvx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ix.Size() {
		t.Errorf("size %d vs %d", back.Size(), ix.Size())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReweight(t *testing.T) {
	m := chainMVDB(6, 4)
	tr, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(1,a)")
	before, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Double every Advisor tuple weight in the translated database.
	adv := tr.DB.Relation("Adv")
	for _, tup := range adv.Tuples {
		tr.DB.SetWeight(tup.Var, tup.Weight*2)
	}
	ix.Reweight()
	after, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-before) < 1e-9 {
		t.Error("reweight had no effect")
	}
	// The reweighted index must agree with a freshly built one.
	fresh, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-want) > 1e-9 {
		t.Errorf("reweighted = %v fresh = %v", after, want)
	}
}

func TestRestoreTranslationValidation(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	snap := core.TranslationSnapshot{NVRelations: []string{"NV_missing"}}
	if _, err := core.RestoreTranslation(db, snap); err == nil {
		t.Error("missing NV relation accepted")
	}
	q := ucq.MustParse("Q() :- Missing(x)")
	snap = core.TranslationSnapshot{W: q.UCQ}
	if _, err := core.RestoreTranslation(db, snap); err == nil {
		t.Error("missing W relation accepted")
	}
}

// tableMVDB is chainMVDB with a WeightTable-backed view, so the source MVDB
// survives snapshots.
func tableMVDB(n int64, seed int64) *core.MVDB {
	m := chainMVDB(n, seed)
	m.Views[0].Weights = &core.WeightTable{Default: 2.5}
	m.Views[0].Weight = nil
	return m
}

// TestIndexSaveLoadV2Mutable: a v2 snapshot carries the source MVDB and the
// WAL sequence number; the restored index accepts mutations and answers like
// an index built from scratch over the mutated source.
func TestIndexSaveLoadV2Mutable(t *testing.T) {
	m := tableMVDB(10, 21)
	_, ix := buildIndex(t, m)

	var buf bytes.Buffer
	if err := ix.SaveSeq(&buf, 42); err != nil {
		t.Fatal(err)
	}
	back, seq, err := ReadSeq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("LastSeq: got %d want 42", seq)
	}
	if back.Source() == nil {
		t.Fatal("restored index lost its source MVDB")
	}
	batch := []core.Mutation{
		{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(3), engine.Int(777)}, Weight: 0.8},
		{Op: core.MutDelete, Rel: "Adv", Vals: back.Source().DB.Relation("Adv").Tuples[0].Vals},
	}
	if _, err := back.ApplyMutations(batch); err != nil {
		t.Fatal(err)
	}
	_, ref := buildIndex(t, back.Source())
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	got, err := back.Query(q, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(q, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("row %v: %v vs %v", got[i].Head, got[i].Prob, want[i].Prob)
		}
	}
}

// TestIndexSnapshotClosureDegrades: closure-weighted sources cannot be
// serialized; the snapshot degrades to query-only and mutation attempts on
// the restored index fail with a clear error.
func TestIndexSnapshotClosureDegrades(t *testing.T) {
	m := chainMVDB(6, 23) // closure weights
	_, ix := buildIndex(t, m)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Source() != nil {
		t.Fatal("closure-weighted source should not survive the snapshot")
	}
	_, err = back.ApplyMutations([]core.Mutation{
		{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(999)}, Weight: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "no source MVDB") {
		t.Fatalf("expected a no-source error, got %v", err)
	}
}
