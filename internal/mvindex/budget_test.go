package mvindex

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/ucq"
)

// TestIntersectPairBudget: a pair-visit budget far below the traversal's real
// cost aborts with ErrBudgetExceeded, in both the map-memo and the
// cache-conscious layout; a generous budget returns the exact answer.
func TestIntersectPairBudget(t *testing.T) {
	m := chainMVDB(16, 21)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(s,a)")

	want, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range []bool{false, true} {
		_, err := ix.ProbBoolean(q.UCQ, IntersectOptions{
			CacheConscious: cc,
			Budget:         budget.Budget{MaxPairs: 2},
		})
		if !errors.Is(err, budget.ErrBudgetExceeded) {
			t.Errorf("cc=%v MaxPairs=2: err = %v, want ErrBudgetExceeded", cc, err)
		}
		got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{
			CacheConscious: cc,
			Budget:         budget.Budget{MaxPairs: 1 << 20},
		})
		if err != nil {
			t.Errorf("cc=%v generous budget: %v", cc, err)
		} else if math.Abs(got-want) > 1e-12 {
			t.Errorf("cc=%v budgeted P = %v, want %v", cc, got, want)
		}
	}
}

// TestQueryNodeBudget: MaxNodes bounds the per-answer query-OBDD synthesis in
// the scratch manager without touching the shared frozen manager.
func TestQueryNodeBudget(t *testing.T) {
	m := chainMVDB(16, 33)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(s,a)")
	_, err := ix.ProbBoolean(q.UCQ, IntersectOptions{Budget: budget.Budget{MaxNodes: 2}})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("MaxNodes=2: err = %v, want ErrBudgetExceeded", err)
	}
	if ix.Manager().Budgeted() {
		t.Error("shared manager armed by a budgeted query")
	}
}

// TestQueryDeadline: an expired deadline fails fast with ErrCanceled, in the
// sequential and the worker-pool paths.
func TestQueryDeadline(t *testing.T) {
	m := chainMVDB(12, 7)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	past := budget.Budget{Deadline: time.Now().Add(-time.Second)}
	for _, par := range []int{1, 4} {
		_, err := ix.Query(q, IntersectOptions{Parallelism: par, Budget: past})
		if !errors.Is(err, budget.ErrCanceled) {
			t.Errorf("par=%d: err = %v, want ErrCanceled", par, err)
		}
	}
}

// TestQueryCancelContext: canceling the context mid-query aborts with
// ErrCanceled rather than finishing all answers.
func TestQueryCancelContext(t *testing.T) {
	m := chainMVDB(12, 13)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := ix.Query(q, IntersectOptions{Parallelism: par, Ctx: ctx})
		if !errors.Is(err, budget.ErrCanceled) {
			t.Errorf("par=%d: err = %v, want ErrCanceled", par, err)
		}
	}
}

// TestExplainAndMarginalBudget pins the budget plumbing of the two remaining
// read-path entry points.
func TestExplainAndMarginalBudget(t *testing.T) {
	m := chainMVDB(16, 3)
	tr, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(s,a)")
	if _, err := ix.ExplainBoolean(q.UCQ, IntersectOptions{Budget: budget.Budget{MaxPairs: 2}}); !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("ExplainBoolean MaxPairs=2: err = %v, want ErrBudgetExceeded", err)
	}
	ex, err := ix.ExplainBoolean(q.UCQ, IntersectOptions{Budget: budget.Budget{MaxPairs: 1 << 20}})
	if err != nil {
		t.Errorf("ExplainBoolean generous: %v", err)
	} else if ex.PairsVisited == 0 {
		t.Error("ExplainBoolean generous: no pairs visited")
	}

	tup := tr.DB.Relation("Adv").Tuples[0]
	want, err := ix.TupleMarginal(tup.Var, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TupleMarginal(tup.Var, IntersectOptions{Budget: budget.Budget{MaxPairs: 1}}); !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("TupleMarginal MaxPairs=1: err = %v, want ErrBudgetExceeded", err)
	}
	got, err := ix.TupleMarginal(tup.Var, IntersectOptions{Budget: budget.Budget{MaxPairs: 1 << 20}})
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Errorf("TupleMarginal generous: got %v, %v; want %v", got, err, want)
	}
}

// TestBudgetIsolation: a budget-starved query racing unbudgeted queries on
// the same frozen index must not perturb them — guards and scratch managers
// are strictly per call. Run with -race.
func TestBudgetIsolation(t *testing.T) {
	m := chainMVDB(16, 29)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(s,a)")
	want, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if i%2 == 0 {
					_, err := ix.ProbBoolean(q.UCQ, IntersectOptions{
						CacheConscious: j%2 == 0,
						Budget:         budget.Budget{MaxPairs: 2},
					})
					if !errors.Is(err, budget.ErrBudgetExceeded) {
						errs <- errf("starved query: err = %v, want ErrBudgetExceeded", err)
					}
					continue
				}
				got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: j%2 == 0})
				if err != nil {
					errs <- errf("unbudgeted query: %v", err)
				} else if math.Abs(got-want) > 1e-12 {
					errs <- errf("unbudgeted query perturbed: P = %v, want %v", got, want)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
