package mvindex

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// TestParallelBuildMatchesSequential: an index built from a
// parallel-compiled W must be indistinguishable from the sequential
// reference — same size, width, blocks, and bitwise-equal P0(¬W) — and
// answer queries with bitwise-equal probabilities whether the per-answer
// loop runs sequentially or on 8 workers.
func TestParallelBuildMatchesSequential(t *testing.T) {
	build := func(par int) (*core.Translation, *Index) {
		tr, err := chainMVDB(12, 42).Translate(core.TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr.Parallelism = par
		ix, err := Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		return tr, ix
	}
	_, seq := build(1)
	_, par := build(8)
	if a, b := seq.Size(), par.Size(); a != b {
		t.Errorf("size: %d vs %d", a, b)
	}
	if a, b := seq.Width(), par.Width(); a != b {
		t.Errorf("width: %d vs %d", a, b)
	}
	if a, b := seq.Blocks(), par.Blocks(); a != b {
		t.Errorf("blocks: %d vs %d", a, b)
	}
	la, sa := seq.LogProbNotW()
	lb, sb := par.LogProbNotW()
	if la != lb || sa != sb {
		t.Errorf("LogProbNotW: (%v,%d) vs (%v,%d) — must be bitwise equal", la, sa, lb, sb)
	}
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	want, err := seq.Query(q, IntersectOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []IntersectOptions{
		{Parallelism: 1, CacheConscious: true},
		{Parallelism: 8},
		{Parallelism: 8, CacheConscious: true},
	} {
		got, err := par.Query(q, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d vs %d answers", opts, len(got), len(want))
		}
		for i := range got {
			if engine.TupleKey(got[i].Head) != engine.TupleKey(want[i].Head) {
				t.Errorf("%+v: answer %d head mismatch", opts, i)
			}
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
				t.Errorf("%+v: answer %d prob %v vs %v", opts, i, got[i].Prob, want[i].Prob)
			}
		}
	}
}

// TestConcurrentIntersectHammer fires 32 goroutines at one shared index —
// mixing IntersectOBDD, IntersectLineage, ProbBoolean, Query, Explain, and
// marginals — and checks every call returns the same answer its sequential
// twin did. Run under -race this is the shared-read-path safety proof.
func TestConcurrentIntersectHammer(t *testing.T) {
	m := chainMVDB(10, 7)
	tr, ix := buildIndex(t, m)
	qb := ucq.MustParse("Q() :- Adv(3,a)\nQ() :- Adv(7,b)").UCQ
	qn := ucq.MustParse("Q(s) :- Adv(s,a)")

	// Pre-build a query OBDD inside the frozen shared manager, single
	// threaded, so concurrent IntersectOBDD callers only read.
	lin, err := ucq.EvalBoolean(tr.DB, qb)
	if err != nil {
		t.Fatal(err)
	}
	fQ := obdd.BuildDNF(ix.Manager(), lin)

	wantP, err := ix.IntersectOBDD(fQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := ix.Query(qn, IntersectOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := ix.TupleMarginal(1, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*8)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc := g%2 == 0
			for rep := 0; rep < 4; rep++ {
				if p, err := ix.IntersectOBDD(fQ, IntersectOptions{CacheConscious: cc}); err != nil || p != wantP {
					errs <- errf("IntersectOBDD: p=%v err=%v want %v", p, err, wantP)
				}
				if p, err := ix.IntersectLineage(lin, IntersectOptions{CacheConscious: !cc}); err != nil || math.Abs(p-wantP) > 1e-12 {
					errs <- errf("IntersectLineage: p=%v err=%v want %v", p, err, wantP)
				}
				rows, err := ix.Query(qn, IntersectOptions{Parallelism: 4, CacheConscious: cc})
				if err != nil || len(rows) != len(wantRows) {
					errs <- errf("Query: %d rows err=%v want %d", len(rows), err, len(wantRows))
					continue
				}
				for i := range rows {
					if rows[i].Prob != wantRows[i].Prob {
						errs <- errf("Query row %d: %v want %v", i, rows[i].Prob, wantRows[i].Prob)
					}
				}
				if _, err := ix.ExplainLineage(lin, IntersectOptions{}); err != nil {
					errs <- errf("ExplainLineage: %v", err)
				}
				if p, err := ix.TupleMarginal(1, IntersectOptions{}); err != nil || p != wantM {
					errs <- errf("TupleMarginal: p=%v err=%v want %v", p, err, wantM)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
