package mvindex

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// randBatch generates a valid mutation batch against the current source
// database: a random interleaving of inserts, deletes and reweights over
// Adv(s,a), tracking intra-batch effects so ValidateBatch accepts it.
func randBatch(rng *rand.Rand, db *engine.Database, n int64) []core.Mutation {
	exists := map[string]bool{}
	key := func(vals []engine.Value) string { return engine.TupleKey(vals) }
	has := func(vals []engine.Value) bool {
		if v, ok := exists[key(vals)]; ok {
			return v
		}
		return db.HasTuple("Adv", vals)
	}
	var batch []core.Mutation
	for i := 0; i < 1+rng.Intn(6); i++ {
		vals := []engine.Value{
			engine.Int(1 + rng.Int63n(n)),
			engine.Int(100 + rng.Int63n(2*n)),
		}
		switch op := rng.Intn(3); {
		case op == 0 && has(vals): // delete
			batch = append(batch, core.Mutation{Op: core.MutDelete, Rel: "Adv", Vals: vals})
			exists[key(vals)] = false
		case op == 1 && has(vals): // reweight
			batch = append(batch, core.Mutation{Op: core.MutReweight, Rel: "Adv", Vals: vals, Weight: 0.1 + 2*rng.Float64()})
		case !has(vals): // insert
			batch = append(batch, core.Mutation{Op: core.MutInsert, Rel: "Adv", Vals: vals, Weight: 0.1 + 2*rng.Float64()})
			exists[key(vals)] = true
		default:
			batch = append(batch, core.Mutation{Op: core.MutReweight, Rel: "Adv", Vals: vals, Weight: 0.1 + 2*rng.Float64()})
		}
	}
	return batch
}

// maintQueries exercises single blocks, spans and unions.
var maintQueries = []string{
	"Q() :- Adv(1,a)",
	"Q() :- Adv(3,a)",
	"Q() :- Adv(s,a)",
	"Q() :- Adv(1,a)\nQ() :- Adv(4,b)",
}

// TestApplyMutationsProperty: after any random interleaving of
// insert/delete/reweight batches, the incrementally maintained index answers
// exactly like an index built from scratch over the mutated source.
func TestApplyMutationsProperty(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	sawReuse, sawWeightOnly := false, false
	for seed := int64(0); seed < int64(rounds); seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		n := int64(4 + rng.Intn(5))
		m := chainMVDB(n, seed)
		_, ix := buildIndex(t, m)
		for batchNo := 0; batchNo < 6; batchNo++ {
			batch := randBatch(rng, ix.Source().DB, n)
			st, err := ix.ApplyMutations(batch)
			if err != nil {
				t.Fatalf("seed %d batch %d (%v): %v", seed, batchNo, batch, err)
			}
			sawReuse = sawReuse || st.Reused > 0
			sawWeightOnly = sawWeightOnly || st.WeightOnly

			// From-scratch reference over the mutated source.
			_, ref := buildIndex(t, ix.Source())
			for _, src := range maintQueries {
				q := ucq.MustParse(src)
				got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
				if err != nil {
					t.Fatalf("seed %d batch %d %q: %v", seed, batchNo, src, err)
				}
				want, err := ref.ProbBoolean(q.UCQ, IntersectOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("seed %d batch %d %q: incremental %v vs scratch %v (stats %+v)",
						seed, batchNo, src, got, want, st)
				}
			}
			gl, gs := ix.LogProbNotW()
			wl, ws := ref.LogProbNotW()
			if gs != ws || math.Abs(gl-wl) > 1e-9 {
				t.Fatalf("seed %d batch %d: P0(¬W) (%v,%d) vs scratch (%v,%d)", seed, batchNo, gl, gs, wl, ws)
			}
		}
	}
	if !sawReuse {
		t.Fatal("no batch ever reused a block; the incremental path went untested")
	}
	if !sawWeightOnly {
		t.Log("note: no reweight-only batch occurred in this run")
	}
}

// TestApplyMutationsWeightOnly: a pure reweight batch takes the fast path and
// still matches a from-scratch build.
func TestApplyMutationsWeightOnly(t *testing.T) {
	m := chainMVDB(5, 7)
	_, ix := buildIndex(t, m)
	tup := ix.Source().DB.Relation("Adv").Tuples[0]
	st, err := ix.ApplyMutations([]core.Mutation{
		{Op: core.MutReweight, Rel: "Adv", Vals: tup.Vals, Weight: 3.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.WeightOnly {
		t.Fatalf("expected the weight-only fast path, got %+v", st)
	}
	_, ref := buildIndex(t, ix.Source())
	q := ucq.MustParse("Q() :- Adv(s,a)")
	got, _ := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	want, _ := ref.ProbBoolean(q.UCQ, IntersectOptions{})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("after reweight: %v vs scratch %v", got, want)
	}
}

// TestApplyMutationsRejects: an invalid batch is rejected atomically — the
// error surfaces and the index still answers exactly as before.
func TestApplyMutationsRejects(t *testing.T) {
	m := chainMVDB(4, 11)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(s,a)")
	before, _ := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	bad := [][]core.Mutation{
		nil, // empty batch
		{{Op: core.MutInsert, Rel: "Nope", Vals: []engine.Value{engine.Int(1)}, Weight: 1}},
		{{Op: core.MutDelete, Rel: "Adv", Vals: []engine.Value{engine.Int(999), engine.Int(999)}}},
		{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(1)}, Weight: -2}},
		{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(50), engine.Int(51)}, Weight: 1},
			{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(50), engine.Int(51)}, Weight: 1}}, // dup within batch
	}
	for i, batch := range bad {
		if _, err := ix.ApplyMutations(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	after, _ := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if math.Float64bits(before) != math.Float64bits(after) {
		t.Fatalf("rejected batches changed the index: %v vs %v", before, after)
	}
}

// TestApplyMutationsCompact: Compact invalidates the block record; the next
// structural batch recompiles in full, re-records, and subsequent batches are
// incremental again.
func TestApplyMutationsCompact(t *testing.T) {
	m := chainMVDB(6, 13)
	_, ix := buildIndex(t, m)
	ins := func(s, a int64) []core.Mutation {
		return []core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(s), engine.Int(a)}, Weight: 0.7}}
	}
	if st, err := ix.ApplyMutations(ins(1, 501)); err != nil || !st.Full {
		t.Fatalf("first structural batch should be a full recorded compile: %+v, %v", st, err)
	}
	ix.Compact()
	if st, err := ix.ApplyMutations(ins(2, 502)); err != nil || !st.Full {
		t.Fatalf("post-Compact batch should fall back to full: %+v, %v", st, err)
	}
	st, err := ix.ApplyMutations(ins(3, 503))
	if err != nil {
		t.Fatal(err)
	}
	if st.Full || st.Reused == 0 {
		t.Fatalf("expected an incremental batch with reuse, got %+v", st)
	}
	_, ref := buildIndex(t, ix.Source())
	q := ucq.MustParse("Q() :- Adv(s,a)")
	got, _ := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	want, _ := ref.ProbBoolean(q.UCQ, IntersectOptions{})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("after compact+deltas: %v vs scratch %v", got, want)
	}
}

// TestApplyMutationsEpoch: with the cross-query cache enabled, readers
// running concurrently with writers (under an RWMutex, as the server holds
// it) never observe an answer computed against a previous database state —
// the epoch bump on every batch makes stale entries unreachable. Run under
// -race this also exercises the locking discipline of the maintenance path.
func TestApplyMutationsEpoch(t *testing.T) {
	m := chainMVDB(5, 17)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q := ucq.MustParse("Q(s) :- Adv(s,a)")

	var mu sync.RWMutex
	expect := map[string]float64{}
	snap := func() { // caller holds mu (write)
		expect = map[string]float64{}
		rows, err := ix.Query(q, IntersectOptions{DisableCache: true})
		if err != nil {
			t.Error(err)
			return
		}
		for _, a := range rows {
			expect[engine.TupleKey(a.Head)] = a.Prob
		}
	}
	mu.Lock()
	snap()
	mu.Unlock()

	const readers = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.RLock()
				rows, err := ix.Query(q, IntersectOptions{})
				if err == nil {
					for _, a := range rows {
						want, ok := expect[engine.TupleKey(a.Head)]
						if !ok || math.Abs(a.Prob-want) > 1e-9 {
							t.Errorf("reader %d: stale or wrong answer %v for %v (want %v, known %v)",
								r, a.Prob, a.Head, want, ok)
						}
					}
				} else {
					t.Errorf("reader %d: %v", r, err)
				}
				mu.RUnlock()
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 15; i++ {
		batch := randBatch(rng, ix.Source().DB, 5)
		mu.Lock()
		if _, err := ix.ApplyMutations(batch); err != nil {
			t.Fatalf("batch %d (%v): %v", i, batch, err)
		}
		snap()
		mu.Unlock()
	}
	close(done)
	wg.Wait()
}
