package mvindex

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// multiAdvMVDB builds an MVDB whose blocks have internal slack for sifting:
// each of n students has 3-4 advisor candidates, and two views (a weighted
// one and a count-weighted one) interleave NV tuples with Adv tuples inside
// every separator block.
func multiAdvMVDB(n int64, seed int64) *core.MVDB {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	for s := int64(1); s <= n; s++ {
		for k := int64(0); k < 3+rng.Int63n(2); k++ {
			db.MustInsert("Adv", 0.3+rng.Float64(), engine.Int(s), engine.Int(100*(k+1)+s))
		}
	}
	m := core.New(db)
	for _, def := range []struct {
		src string
		w   core.WeightFn
	}{
		{"V(s) :- Adv(s,a)", core.ConstWeight(2.5)},
		{"U(s,a) :- Adv(s,a)", core.ConstWeight(0.4)},
	} {
		v, err := core.ParseView(def.src, def.w)
		if err != nil {
			panic(err)
		}
		if err := m.AddView(v); err != nil {
			panic(err)
		}
	}
	return m
}

func siftQueries(n int64) []ucq.Query {
	qs := []string{
		"Q() :- Adv(1,a)",
		"Q() :- Adv(s,a)",
		"Q(s) :- Adv(s,a)",
	}
	out := make([]ucq.Query, 0, len(qs))
	for _, src := range qs {
		out = append(out, *ucq.MustParse(src))
	}
	return out
}

// answersOf evaluates every test query and flattens the answers.
func answersOf(t *testing.T, ix *Index) []float64 {
	t.Helper()
	var out []float64
	for _, q := range siftQueries(0) {
		q := q
		if len(q.Head) == 0 {
			p, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
			continue
		}
		ans, err := ix.Query(&q, IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range ans {
			out = append(out, a.Prob)
		}
	}
	return out
}

// TestIndexSiftPreservesAnswers: sifting the index must leave every query
// answer unchanged to 1e-12 and must not grow the OBDD.
func TestIndexSiftPreservesAnswers(t *testing.T) {
	m := multiAdvMVDB(30, 3)
	_, ix := buildIndex(t, m)
	want := answersOf(t, ix)
	blocks := ix.Blocks()
	before := ix.Size()

	st, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderConverge})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reordered() {
		t.Fatal("index not marked reordered after Sift")
	}
	if st.NodesAfter > st.NodesBefore {
		t.Fatalf("sift grew the index: %d -> %d", st.NodesBefore, st.NodesAfter)
	}
	if ix.Size() > before {
		t.Fatalf("index size grew: %d -> %d", before, ix.Size())
	}
	if ix.Blocks() != blocks {
		t.Fatalf("sift changed the chain block count: %d -> %d", blocks, ix.Blocks())
	}
	got := answersOf(t, ix)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("answer %d diverged after sift: %v vs %v", i, got[i], want[i])
		}
	}
	ri := ix.ReorderInfo()
	if ri == nil || ri.Provenance != "sifted" || ri.NodesBefore != st.NodesBefore {
		t.Fatalf("bad reorder info: %+v", ri)
	}
}

// TestBuildWithReorderOption: setting Translation.Reorder makes Build sift
// automatically.
func TestBuildWithReorderOption(t *testing.T) {
	m := multiAdvMVDB(20, 9)
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Reorder = obdd.ReorderOptions{Mode: obdd.ReorderConverge}
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reordered() {
		t.Fatal("Build ignored Translation.Reorder")
	}

	// Same MVDB without the option: answers must agree.
	m2 := multiAdvMVDB(20, 9)
	_, ix2 := buildIndex(t, m2)
	want, got := answersOf(t, ix2), answersOf(t, ix)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("answer %d diverged: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestSiftSnapshotRoundTrip: a sifted index snapshot restores with the
// learned order, provenance "snapshot", and identical answers — without
// re-running the search.
func TestSiftSnapshotRoundTrip(t *testing.T) {
	m := multiAdvMVDB(25, 7)
	_, ix := buildIndex(t, m)
	if _, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderConverge}); err != nil {
		t.Fatal(err)
	}
	want := answersOf(t, ix)
	order := ix.Manager().Order()
	size := ix.Size()

	var buf bytes.Buffer
	if err := ix.SaveSeq(&buf, 42); err != nil {
		t.Fatal(err)
	}
	ix2, seq, err := ReadSeq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d", seq)
	}
	if !ix2.Reordered() {
		t.Fatal("restored index lost its reordered mark")
	}
	if ri := ix2.ReorderInfo(); ri.Provenance != "snapshot" {
		t.Fatalf("restored provenance = %q, want snapshot", ri.Provenance)
	}
	if ix2.Size() != size {
		t.Fatalf("restored size %d, want %d (learned order lost?)", ix2.Size(), size)
	}
	restored := ix2.Manager().Order()
	for i := range order {
		if restored[i] != order[i] {
			t.Fatalf("restored order diverges at level %d: %d vs %d", i, restored[i], order[i])
		}
	}
	got := answersOf(t, ix2)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("answer %d diverged after restore: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestSiftDeltaNoRegression is the acceptance-criterion regression test:
// structural delta recompiles on a sifted index must inherit the learned
// order rather than regress to the static Π node counts.
func TestSiftDeltaNoRegression(t *testing.T) {
	m := multiAdvMVDB(40, 13)
	_, ix := buildIndex(t, m)
	staticSize := ix.Size()
	if _, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderConverge}); err != nil {
		t.Fatal(err)
	}
	siftedSize := ix.Size()
	if siftedSize >= staticSize {
		t.Skipf("sift found nothing to improve (%d >= %d); regression test is vacuous", siftedSize, staticSize)
	}

	// A parallel unsifted index receives the same batches: its size is the
	// static-Π baseline the sifted index must beat.
	m2 := multiAdvMVDB(40, 13)
	_, base := buildIndex(t, m2)

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 4; round++ {
		batch := randBatch(rng, ix.Translation().DB, 40)
		if len(batch) == 0 {
			continue
		}
		if _, err := ix.ApplyMutations(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := base.ApplyMutations(batch); err != nil {
			t.Fatal(err)
		}
		// Equivalence after every batch.
		want, got := answersOf(t, base), answersOf(t, ix)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("round %d answer %d diverged: %v vs %v", round, i, got[i], want[i])
			}
		}
	}
	if !ix.Reordered() {
		t.Fatal("mutations dropped the reordered mark")
	}
	ri := ix.ReorderInfo()
	if ri.DeltaReuses == 0 {
		t.Fatal("no structural batch inherited the learned order")
	}
	// The learned order must keep paying: stay strictly below the static-Π
	// baseline (with a little slack for blocks recompiled under merged
	// orders, which may be slightly off the sifted optimum).
	limit := base.Size()
	if ix.Size() >= limit {
		t.Fatalf("delta recompile regressed to static order: sifted-index %d nodes, static baseline %d (pre-mutation: sifted %d static %d)",
			ix.Size(), limit, siftedSize, staticSize)
	}
	t.Logf("sizes: static %d -> %d, sifted %d -> %d", staticSize, limit, siftedSize, ix.Size())
}

// TestSiftThenCompact: Compact after Sift must keep the learned order (it
// rebuilds under the manager's own order) and answers.
func TestSiftThenCompact(t *testing.T) {
	m := multiAdvMVDB(20, 21)
	_, ix := buildIndex(t, m)
	if _, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderOnce}); err != nil {
		t.Fatal(err)
	}
	want := answersOf(t, ix)
	order := ix.Manager().Order()
	ix.Compact()
	after := ix.Manager().Order()
	for i := range order {
		if after[i] != order[i] {
			t.Fatalf("Compact changed the learned order at level %d", i)
		}
	}
	got := answersOf(t, ix)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("answer %d diverged after Compact: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestSiftOffNoop: Sift with ReorderOff must not mark the index.
func TestSiftOffNoop(t *testing.T) {
	m := chainMVDB(6, 2)
	_, ix := buildIndex(t, m)
	st, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderOff})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Reordered() || st.Rounds != 0 {
		t.Fatalf("ReorderOff sifted anyway: %+v", st)
	}
}

// TestBlockWindows: the derived windows must cover [0, NumVars) exactly,
// one window per chain block.
func TestBlockWindows(t *testing.T) {
	m := multiAdvMVDB(15, 4)
	_, ix := buildIndex(t, m)
	ws := ix.blockWindows()
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	if ws[0][0] != 0 {
		t.Fatalf("first window starts at %d", ws[0][0])
	}
	nv := ix.Manager().NumVars()
	if ws[len(ws)-1][1] != nv {
		t.Fatalf("last window ends at %d, want %d", ws[len(ws)-1][1], nv)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i][0] != ws[i-1][1] {
			t.Fatalf("windows not contiguous: %v", ws)
		}
	}
	if len(ws) != ix.Blocks() {
		t.Fatalf("%d windows for %d blocks", len(ws), ix.Blocks())
	}
}

// TestSiftWithRootsRecord: sifting an index that carries a block record
// (from a previous structural batch) must keep the record usable — the next
// delta batch must still hit the incremental path.
func TestSiftWithRootsRecord(t *testing.T) {
	m := multiAdvMVDB(20, 31)
	_, ix := buildIndex(t, m)
	ins := func(s, a int64) []core.Mutation {
		return []core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(s), engine.Int(a)}, Weight: 0.7}}
	}
	// First structural batch records blocks.
	if _, err := ix.ApplyMutations(ins(5, 999)); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Sift(obdd.ReorderOptions{Mode: obdd.ReorderConverge}); err != nil {
		t.Fatal(err)
	}
	want := answersOf(t, ix)
	st, err := ix.ApplyMutations(ins(7, 888))
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatalf("post-sift batch fell back to a full recompile: %+v", st)
	}
	if st.Reused == 0 {
		t.Fatalf("post-sift batch reused no blocks: %+v", st)
	}
	got := answersOf(t, ix)
	for i := range want {
		if i < len(got) && math.Abs(got[i]-want[i]) > 1e-9 && want[i] != got[i] {
			// Answers can legitimately change for student 7; only the shape of
			// the check matters here — cross-check against exact instead.
			break
		}
	}
	// Full correctness check against a fresh static build of the same state.
	fresh, err := Build(mustRetranslate(t, ix))
	if err != nil {
		t.Fatal(err)
	}
	w2, g2 := answersOf(t, fresh), answersOf(t, ix)
	for i := range w2 {
		if math.Abs(g2[i]-w2[i]) > 1e-9 {
			t.Fatalf("answer %d diverged from fresh build: %v vs %v", i, g2[i], w2[i])
		}
	}
}

func mustRetranslate(t *testing.T, ix *Index) *core.Translation {
	t.Helper()
	tr, err := ix.Translation().Retranslate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
