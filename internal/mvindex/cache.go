package mvindex

import (
	"sync/atomic"

	"mvdb/internal/core"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// indexCache is the cross-query memoization state of one Index: the answer
// cache (canonical query fingerprint → answer set), the lineage cache below
// it (canonical lineage hash → probability, shared across queries whose
// per-answer lineages coincide), and the aggregated apply-cache counters of
// the per-query scratch managers.
type indexCache struct {
	answers *qcache.Cache[[]core.Answer]
	lineage *qcache.Cache[float64]

	// applyHits/applyMisses accumulate the OBDD apply-cache counters of the
	// scratch managers that per-query OBDD synthesis runs in (the shared
	// manager is frozen and never applies on the read path).
	applyHits, applyMisses atomic.Uint64
}

// CacheStats is the /stats view of an Index's memoization layer.
type CacheStats struct {
	Enabled bool         `json:"enabled"`
	Answers qcache.Stats `json:"answers"`
	Lineage qcache.Stats `json:"lineage"`
	// QueryApplyHits/Misses aggregate the OBDD apply-cache counters of the
	// scratch managers used by query evaluation since the cache was enabled.
	QueryApplyHits   uint64 `json:"query_apply_hits"`
	QueryApplyMisses uint64 `json:"query_apply_misses"`
	// SharedApplyHits/Misses are the frozen shared manager's counters —
	// effectively the compile-time apply behaviour of W.
	SharedApplyHits   uint64 `json:"shared_apply_hits"`
	SharedApplyMisses uint64 `json:"shared_apply_misses"`
}

// EnableCache installs the cross-query cache with the given bounds (or
// removes it with opts.Disable). Like Reweight and Compact this is a
// mutating operation: it requires exclusive access to the index. Once
// enabled, the cache is consulted and filled by the concurrent read path
// (Query, ProbBoolean, IntersectLineage) unless a call opts out with
// IntersectOptions.DisableCache.
func (ix *Index) EnableCache(opts qcache.Options) {
	if opts.Disable {
		ix.cache = nil
		return
	}
	ix.cache = &indexCache{
		answers: qcache.New(opts, answerBytes),
		// The lineage cache stores one float64 per entry; entries are tiny
		// and fixed-size, so the entry bound dominates. Give it 4x the
		// answer cache's entry budget (several lineages per answer set) and
		// keep it out of the byte budget.
		lineage: qcache.New(qcache.Options{
			MaxEntries: 4 * entriesOrDefault(opts.MaxEntries),
			MaxBytes:   -1,
		}, func(float64) int64 { return lineageEntryBytes }),
	}
}

// CacheEnabled reports whether the cross-query cache is installed.
func (ix *Index) CacheEnabled() bool { return ix.cache != nil }

// CacheStats returns a snapshot of the memoization counters. The shared
// apply counters are read from the frozen manager, which is safe under the
// index's read contract.
func (ix *Index) CacheStats() CacheStats {
	st := CacheStats{}
	st.SharedApplyHits, st.SharedApplyMisses = ix.m.ApplyCacheStats()
	if ix.cache == nil {
		return st
	}
	st.Enabled = true
	st.Answers = ix.cache.answers.Stats()
	st.Lineage = ix.cache.lineage.Stats()
	st.QueryApplyHits = ix.cache.applyHits.Load()
	st.QueryApplyMisses = ix.cache.applyMisses.Load()
	return st
}

func entriesOrDefault(n int) int {
	if n == 0 {
		return qcache.DefaultMaxEntries
	}
	if n < 0 {
		return qcache.DefaultMaxEntries // unlimited answers; keep lineage bounded
	}
	return n
}

// lineageEntryBytes is the approximate retained size of one lineage-cache
// entry (map bucket + LRU element + entry struct).
const lineageEntryBytes = 96

// answerBytes estimates the retained bytes of a cached answer set: slice
// headers, head values, and per-entry bookkeeping.
func answerBytes(as []core.Answer) int64 {
	n := int64(64) // entry + LRU element overhead
	for _, a := range as {
		n += 32 // Answer struct + slice header
		for _, v := range a.Head {
			n += 24 + int64(len(v.Str))
		}
	}
	return n
}

// cacheKeyForQuery derives the answer-cache key of a named query under the
// given options. The intersection algorithm bits are folded in so ablation
// runs comparing algorithm variants never read each other's entries (the
// variants agree semantically but may differ in final-ulp rounding).
func cacheKeyForQuery(q *ucq.Query, opts IntersectOptions) qcache.Key {
	fp := ucq.FingerprintQuery(q)
	return qcache.Key{Hi: fp.Hi, Lo: fp.Lo ^ algBits(opts)}
}

// cacheKeyForLineage derives the lineage-cache key of one answer lineage.
func cacheKeyForLineage(hi, lo uint64, opts IntersectOptions) qcache.Key {
	return qcache.Key{Hi: hi, Lo: lo ^ algBits(opts)}
}

func algBits(opts IntersectOptions) uint64 {
	var b uint64
	if opts.CacheConscious {
		b |= 1
	}
	if opts.NoEntryShortcut {
		b |= 2
	}
	return b
}

// copyAnswers returns a shallow copy of a cached answer slice so a caller
// that sorts or appends cannot disturb the cached copy (the Head slices stay
// shared and must be treated as immutable — every in-tree consumer only
// reads them).
func copyAnswers(as []core.Answer) []core.Answer {
	out := make([]core.Answer, len(as))
	copy(out, as)
	return out
}
