package mvindex

import (
	"sync"

	"mvdb/internal/obdd"
)

// ccLayout is the cache-conscious representation of Section 4.3: the ¬W
// OBDD nodes stored in a flat struct-of-arrays vector sorted by DFS
// traversal order, so the online intersection walks memory mostly
// sequentially instead of chasing node pointers. probUnder is block-local
// (see the package comment) and block records each node's chain block.
type ccLayout struct {
	level     []int32   // per cc node
	lo, hi    []int32   // cc index, or ccFalse / ccTrue
	prob      []float64 // tuple probability at the node's level
	probUnder []float64 // block-local
	block     []int32   // chain block of the node

	// idOf maps a manager node id to its cc index, dense over the node
	// store; -1 marks nodes not reachable from the index root (and the two
	// terminals, which flatten to ccFalse/ccTrue instead).
	idOf []int32
}

// Terminal encodings in the flattened arrays; ccNone marks "no stop node".
const (
	ccFalse int32 = -1
	ccTrue  int32 = -2
	ccNone  int32 = -3
)

// buildCC flattens the ¬W OBDD in DFS preorder.
func (ix *Index) buildCC() {
	cc := &ccLayout{idOf: make([]int32, ix.m.NumNodes())}
	for i := range cc.idOf {
		cc.idOf[i] = -1
	}
	var dfs func(u obdd.NodeID) int32
	dfs = func(u obdd.NodeID) int32 {
		switch u {
		case obdd.False:
			return ccFalse
		case obdd.True:
			return ccTrue
		}
		if id := cc.idOf[u]; id >= 0 {
			return id
		}
		id := int32(len(cc.level))
		cc.idOf[u] = id
		lvl := ix.m.NodeLevel(u)
		cc.level = append(cc.level, lvl)
		cc.lo = append(cc.lo, 0)
		cc.hi = append(cc.hi, 0)
		cc.prob = append(cc.prob, ix.probs[ix.m.VarAtLevel(int(lvl))])
		cc.probUnder = append(cc.probUnder, ix.probUnder[u])
		cc.block = append(cc.block, int32(ix.blockForLevel(lvl)))
		lo := dfs(ix.m.Lo(u))
		hi := dfs(ix.m.Hi(u))
		cc.lo[id] = lo
		cc.hi[id] = hi
		return id
	}
	if !ix.m.IsTerminal(ix.root) {
		dfs(ix.root)
	}
	ix.cc = cc
}

// intersect is CC-MVIntersect: the same recursion as MVIntersect, but the
// ¬W side walks the flattened vector and memoization uses an open-addressed
// table keyed by (query node, cc index) packed into one int64 — no pointer
// chasing, no map-bucket overhead. qm is the manager holding the query OBDD
// (the shared manager or a per-call scratch over the same order).
func (cc *ccLayout) intersect(ix *Index, qm *obdd.Manager, fQ obdd.NodeID, s span, memo, qprob *pairMemo, g *guard) float64 {
	entry := cc.idOf[ix.chainRoots[s.first]]
	stop := ccNone
	if s.stop != obdd.False {
		if id := cc.idOf[s.stop]; id >= 0 {
			stop = id
		}
	}
	return cc.rec(ix, qm, fQ, entry, stop, memo, qprob, g)
}

// rec mirrors Index.intersect in conditioned units (see that method): each
// w-side edge leaving a block divides by the block's probability.
func (cc *ccLayout) rec(ix *Index, qm *obdd.Manager, q obdd.NodeID, w, stop int32, memo, qprob *pairMemo, g *guard) float64 {
	if q == obdd.False || w == ccFalse {
		return 0
	}
	if w == ccTrue || w == stop {
		return ix.qProb(qm, q, qprob)
	}
	if q == obdd.True {
		return cc.probUnder[w] / ix.blockProb[cc.block[w]]
	}
	// Non-terminal q >= 2 and w >= 0, so the packed key is never zero (the
	// empty-slot sentinel).
	key := int64(q)<<32 | int64(uint32(w))
	if r, ok := memo.get(key); ok {
		return r
	}
	g.visit()
	lq, lw := qm.NodeLevel(q), cc.level[w]
	var r float64
	switch {
	case lq < lw:
		p := ix.probs[qm.VarAtLevel(int(lq))]
		r = (1-p)*cc.rec(ix, qm, qm.Lo(q), w, stop, memo, qprob, g) + p*cc.rec(ix, qm, qm.Hi(q), w, stop, memo, qprob, g)
	case lw < lq:
		p := cc.prob[w]
		r = (1-p)*cc.wchild(ix, qm, q, cc.lo[w], w, stop, memo, qprob, g) + p*cc.wchild(ix, qm, q, cc.hi[w], w, stop, memo, qprob, g)
	default:
		p := cc.prob[w]
		r = (1-p)*cc.wchild(ix, qm, qm.Lo(q), cc.lo[w], w, stop, memo, qprob, g) + p*cc.wchild(ix, qm, qm.Hi(q), cc.hi[w], w, stop, memo, qprob, g)
	}
	memo.put(key, r)
	return r
}

// wchild evaluates a w-side child edge, dividing by the parent block's
// probability when the edge leaves the block.
func (cc *ccLayout) wchild(ix *Index, qm *obdd.Manager, q obdd.NodeID, c, parent, stop int32, memo, qprob *pairMemo, g *guard) float64 {
	if q == obdd.False || c == ccFalse {
		return 0
	}
	b := ix.blockProb[cc.block[parent]]
	if c == ccTrue || c == stop {
		return ix.qProb(qm, q, qprob) / b
	}
	val := cc.rec(ix, qm, q, c, stop, memo, qprob, g)
	if cc.block[c] > cc.block[parent] {
		val /= b
	}
	return val
}

// pairMemo is a linear-probing hash table from packed (q,w) keys to
// probabilities. Key 0 marks an empty slot.
type pairMemo struct {
	keys []int64
	vals []float64
	mask uint64
	n    int
}

func newPairMemo(capacity int) *pairMemo {
	if capacity < 16 {
		capacity = 16
	}
	// round up to a power of two
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &pairMemo{keys: make([]int64, c), vals: make([]float64, c), mask: uint64(c - 1)}
}

func (m *pairMemo) slot(key int64) uint64 {
	return (uint64(key) * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

func (m *pairMemo) get(key int64) (float64, bool) {
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			return m.vals[i], true
		case 0:
			return 0, false
		}
	}
}

func (m *pairMemo) put(key int64, v float64) {
	if m.n*4 >= len(m.keys)*3 { // 75% load factor
		m.grow()
	}
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			m.vals[i] = v
			return
		case 0:
			m.keys[i] = key
			m.vals[i] = v
			m.n++
			return
		}
	}
}

func (m *pairMemo) grow() {
	old := *m
	m.keys = make([]int64, len(old.keys)*2)
	m.vals = make([]float64, len(old.vals)*2)
	m.mask = uint64(len(m.keys) - 1)
	m.n = 0
	for i, k := range old.keys {
		if k != 0 {
			m.put(k, old.vals[i])
		}
	}
}

// reset empties the memo for reuse. A memo that ballooned on one huge query
// is shrunk back rather than pinned in the pool forever.
func (m *pairMemo) reset() {
	if len(m.keys) > 1<<16 {
		m.keys = make([]int64, 1<<10)
		m.vals = make([]float64, 1<<10)
		m.mask = uint64(len(m.keys) - 1)
	} else {
		clear(m.keys)
	}
	m.n = 0
}

// Per-query scratch memos are pooled: a steady stream of MVIntersect calls
// reuses the same two tables instead of allocating maps per query.
var pairMemoPool = sync.Pool{New: func() any { return newPairMemo(1 << 10) }}

func getPairMemo() *pairMemo {
	m := pairMemoPool.Get().(*pairMemo)
	m.reset()
	return m
}

func putPairMemo(m *pairMemo) { pairMemoPool.Put(m) }
