package mvindex

import (
	"errors"
	"fmt"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/obdd"
)

// Incremental maintenance. A mutation batch against the source MVDB is
// turned into a new index without recompiling untouched parts:
//
//   - A batch of pure reweights leaves the set of possible tuples — and
//     therefore every OBDD — untouched; only the weight-dependent
//     augmentation is recomputed (linear in the index size).
//   - A structural batch (inserts/deletes) repairs the Definition 5
//     translation in place (core.ApplyDelta: only view heads reachable from
//     the changed tuples are re-evaluated) and recompiles W incrementally:
//     the block record of the previous compilation localizes the change to
//     the separator-value blocks the changed tuples can affect, and every
//     clean block is imported (renamed) from the old manager instead of
//     recompiled. Batches that could change W's shape fall back to a full
//     re-translation of a mutated clone.
//
// ApplyMutations mutates the index and requires exclusive access, like
// Reweight and Compact: no concurrent readers.

// MaintStats reports how one mutation batch was applied.
type MaintStats struct {
	Applied    int  // mutations in the batch
	WeightOnly bool // reweight-only fast path (no recompilation at all)
	Full       bool // structural path fell back to a full recompile
	Blocks     int  // non-empty separator blocks in the new chain
	Reused     int  // blocks imported unchanged from the old manager
	Recompiled int  // blocks compiled from scratch
	Duration   time.Duration
}

// Source returns the live MVDB the index maintains. It is replaced on every
// structural batch, so callers must re-fetch it rather than cache it. Nil for
// indexes restored from snapshots without source data.
func (ix *Index) Source() *core.MVDB { return ix.tr.Source }

// ApplyMutations validates and applies one batch of base-table mutations to
// the source MVDB and brings the index up to date incrementally. Invalid
// batches are rejected up front with nothing changed. After validation the
// fast path mutates the source and translated databases in place (its
// preflight falls back cleanly to a clone-and-retranslate route when the
// batch could change W's shape), so an internal failure beyond that point —
// which validation makes unreachable for well-formed batches — surfaces as
// an error after which the index must be rebuilt. Requires exclusive access
// (no concurrent readers).
func (ix *Index) ApplyMutations(batch []core.Mutation) (MaintStats, error) {
	t0 := time.Now()
	st := MaintStats{Applied: len(batch)}
	src := ix.tr.Source
	if src == nil {
		return st, fmt.Errorf("mvindex: index has no source MVDB (restored from a v1 snapshot?); mutations need the view definitions")
	}
	if err := src.ValidateBatch(batch); err != nil {
		return st, err
	}

	if core.WeightOnly(batch) {
		// Reweights change no tuple's existence: the view materializations,
		// the NV relations and the OBDD of W are all untouched. Apply the
		// weights to the source and to the translated clone, then recompute
		// the augmentation.
		if err := src.Apply(batch); err != nil {
			return st, err
		}
		for _, mu := range batch {
			if _, err := ix.tr.DB.UpdateWeight(mu.Rel, mu.Vals, mu.Weight); err != nil {
				return st, fmt.Errorf("mvindex: reweighting translated clone: %w", err)
			}
		}
		ix.Reweight()
		st.WeightOnly = true
		st.Duration = time.Since(t0)
		return st, nil
	}

	// Structural path. With a block record available, the delta translator
	// patches the source and translated databases in place — work
	// proportional to the batch's blast radius — and the identity variable
	// map plus its changed-tuple list drive the incremental recompile. Its
	// read-only preflight falls back (ErrDeltaFallback, nothing mutated) to
	// the conventional route when the batch could change W's shape: mutate a
	// clone, run the full Definition 5 translation, diff the two translated
	// databases, and swap atomically.
	copts := obdd.CompileOptions{Parallelism: ix.tr.Parallelism}
	if ix.rec != nil {
		changed, derr := ix.tr.ApplyDelta(batch)
		if derr == nil {
			newTr := ix.tr
			// A sifted index feeds its learned order back into the recompile:
			// surviving variables keep the learned relative order and new ones
			// slot in next to their Π-neighbors, so clean-block imports still
			// order-check and dirty blocks inherit the good order instead of
			// regressing to static Π.
			if ix.reorder != nil {
				copts.Order = obdd.MergeOrder(ix.m.Order(), nil, obdd.TupleOrder(newTr.DB, newTr.WPerm()))
			}
			var ds obdd.DeltaStats
			m, fW, rec, ds, _, err := obdd.CompileDelta(newTr.DB, newTr.W, newTr.WPerm(), copts,
				ix.m, ix.rec, identityVarMap(newTr.DB), changed)
			st.Full, st.Blocks, st.Reused, st.Recompiled = ds.Full, ds.Blocks, ds.Reused, ds.Recompiled
			if err != nil {
				return st, err
			}
			ix.commit(newTr, m, fW, rec)
			ix.noteInheritedOrder(st)
			st.Duration = time.Since(t0)
			return st, nil
		}
		if !errors.Is(derr, core.ErrDeltaFallback) {
			// Post-preflight failures leave the databases partially mutated;
			// surface them — the index needs a rebuild from clean data.
			return st, derr
		}
	}

	work := &core.MVDB{DB: src.DB.Clone(), Views: src.Views}
	if err := work.Apply(batch); err != nil {
		return st, err
	}
	newTr, err := work.Translate(ix.tr.Opts())
	if err != nil {
		return st, err
	}
	newTr.Parallelism = ix.tr.Parallelism

	oldDB := ix.tr.DB
	pi := newTr.WPerm()
	// Same learned-order inheritance as the in-place path; variable ids are
	// renumbered by re-translation, so the learned order maps through tuple
	// identity first.
	if ix.reorder != nil {
		copts.Order = obdd.MergeOrder(ix.m.Order(), varMapByKey(oldDB, newTr.DB), obdd.TupleOrder(newTr.DB, pi))
	}
	var (
		m   *obdd.Manager
		fW  obdd.NodeID
		rec *obdd.BlockRecord
	)
	if ix.rec == nil {
		// First structural batch (or the record was invalidated by Compact):
		// compile in full but record the block structure so the next batch
		// is incremental.
		m, fW, rec, _, err = obdd.CompileRecorded(newTr.DB, newTr.W, pi, copts)
		st.Full = true
	} else {
		var ds obdd.DeltaStats
		m, fW, rec, ds, _, err = obdd.CompileDelta(newTr.DB, newTr.W, pi, copts,
			ix.m, ix.rec, varMapByKey(oldDB, newTr.DB), changedTuples(oldDB, newTr.DB))
		st.Full, st.Blocks, st.Reused, st.Recompiled = ds.Full, ds.Blocks, ds.Reused, ds.Recompiled
	}
	if err != nil {
		return st, err
	}

	ix.commit(newTr, m, fW, rec)
	ix.noteInheritedOrder(st)
	st.Duration = time.Since(t0)
	return st, nil
}

// noteInheritedOrder updates the reordering provenance after a structural
// batch recompiled under the learned order.
func (ix *Index) noteInheritedOrder(st MaintStats) {
	if ix.reorder == nil {
		return
	}
	ix.reorder.DeltaReuses++
	ix.reorder.BlockProvenance = map[string]int{
		"inherited-reused":     st.Reused,
		"inherited-recompiled": st.Recompiled,
	}
}

// commit installs a maintained translation and its recompiled OBDD:
// everything here is in-memory pointer swaps and the linear augmentation
// rebuild; the cache epoch bump makes every answer computed against the old
// state stale.
func (ix *Index) commit(newTr *core.Translation, m *obdd.Manager, fW obdd.NodeID, rec *obdd.BlockRecord) {
	newTr.AttachOBDD(m, fW)
	ix.tr = newTr
	ix.m = m
	ix.root = m.Not(fW)
	ix.probs = newTr.DB.Probs()
	ix.rec = rec
	ix.rebuild()
	if ix.cache != nil {
		ix.cache.answers.Invalidate()
		ix.cache.lineage.Invalidate()
	}
}

// identityVarMap maps every variable still alive in the delta-translated
// database to itself. Valid only when the new database is a mutated clone of
// the old one, which never renumbers variables.
func identityVarMap(newDB *engine.Database) func(int) (int, bool) {
	return func(v int) (int, bool) {
		if _, err := newDB.VarRef(v); err != nil {
			return 0, false
		}
		return v, true
	}
}

// varMapByKey maps old translated-database variable ids to new ones by tuple
// identity (relation + full values). Surviving tuples keep their relative
// order across re-translation (both databases sort identically), so the map
// is order-preserving wherever it is defined.
func varMapByKey(oldDB, newDB *engine.Database) func(int) (int, bool) {
	return func(v int) (int, bool) {
		ref, err := oldDB.VarRef(v)
		if err != nil {
			return 0, false
		}
		t := oldDB.Relation(ref.Rel).Tuples[ref.Pos]
		nr := newDB.Relation(ref.Rel)
		if nr == nil {
			return 0, false
		}
		i := nr.Lookup(t.Vals)
		if i < 0 || nr.Tuples[i].Var == 0 {
			return 0, false
		}
		return nr.Tuples[i].Var, true
	}
}

// changedTuples lists the tuples present in exactly one of the two translated
// databases — the presence diff that drives block dirtying. NV relations
// participate like base relations: a view tuple that appears or disappears
// changes W's lineage exactly where its NV tuple does.
func changedTuples(oldDB, newDB *engine.Database) []obdd.ChangedTuple {
	var out []obdd.ChangedTuple
	for _, name := range oldDB.Relations() {
		ra, rb := oldDB.Relation(name), newDB.Relation(name)
		for _, t := range ra.Tuples {
			if rb == nil || rb.Lookup(t.Vals) < 0 {
				out = append(out, obdd.ChangedTuple{Rel: name, Vals: t.Vals})
			}
		}
	}
	for _, name := range newDB.Relations() {
		ra, rb := oldDB.Relation(name), newDB.Relation(name)
		for _, t := range rb.Tuples {
			if ra == nil || ra.Lookup(t.Vals) < 0 {
				out = append(out, obdd.ChangedTuple{Rel: name, Vals: t.Vals})
			}
		}
	}
	return out
}
