package mvindex

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mvdb/internal/budget"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// TestCachedMatchesUncached: for random queries, answers served through the
// cache (cold fill and warm hit) must match the uncached evaluation to 1e-12.
func TestCachedMatchesUncached(t *testing.T) {
	m := chainMVDB(30, 21)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	rng := rand.New(rand.NewSource(9))
	qAdv := ucq.MustParse("Q(a) :- Adv(s,a)")
	for trial := 0; trial < 40; trial++ {
		var q *ucq.Query
		switch trial % 3 {
		case 0:
			q = qAdv
		case 1:
			s := rng.Int63n(30) + 1
			q = &ucq.Query{Name: "Q", Head: []string{"a"}, UCQ: ucq.UCQ{Disjuncts: []ucq.CQ{{
				Atoms: []ucq.Atom{{Rel: "Adv", Args: []ucq.Term{ucq.CInt(s), ucq.V("a")}}},
			}}}}
		default:
			s1, s2 := rng.Int63n(30)+1, rng.Int63n(30)+1
			q = &ucq.Query{Name: "Q", Head: []string{"a"}, UCQ: ucq.UCQ{Disjuncts: []ucq.CQ{
				{Atoms: []ucq.Atom{{Rel: "Adv", Args: []ucq.Term{ucq.CInt(s1), ucq.V("a")}}}},
				{Atoms: []ucq.Atom{{Rel: "Adv", Args: []ucq.Term{ucq.CInt(s2), ucq.V("a")}}}},
			}}}
		}
		want, err := ix.Query(q, IntersectOptions{CacheConscious: true, DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // pass 0 fills (or hits), pass 1 must hit
			got, err := ix.Query(q, IntersectOptions{CacheConscious: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d pass %d: %d answers, want %d", trial, pass, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
					t.Fatalf("trial %d pass %d answer %d: cached %v uncached %v",
						trial, pass, i, got[i].Prob, want[i].Prob)
				}
				for j, v := range got[i].Head {
					if !v.Equal(want[i].Head[j]) {
						t.Fatalf("trial %d: head mismatch %v vs %v", trial, got[i].Head, want[i].Head)
					}
				}
			}
		}
	}
	st := ix.CacheStats()
	if st.Answers.Hits == 0 {
		t.Fatalf("no answer-cache hits after repeated queries: %+v", st.Answers)
	}
	if st.Answers.Misses == 0 {
		t.Fatalf("no misses recorded: %+v", st.Answers)
	}
}

// TestRenamedQueryHitsCache: an alpha-renamed, reordered spelling of a cached
// query must be served from the cache (shared fingerprint).
func TestRenamedQueryHitsCache(t *testing.T) {
	m := chainMVDB(10, 3)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q1 := ucq.MustParse("Q(a) :- Adv(s,a)")
	q2 := ucq.MustParse("Answers(who) :- Adv(student,who)")
	r1, err := ix.Query(q1, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	h0 := ix.CacheStats().Answers.Hits
	r2, err := ix.Query(q2, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.CacheStats().Answers.Hits != h0+1 {
		t.Fatalf("renamed query missed the cache: %+v", ix.CacheStats().Answers)
	}
	for i := range r1 {
		if r1[i].Prob != r2[i].Prob {
			t.Fatalf("renamed query answers differ: %v vs %v", r1[i], r2[i])
		}
	}
}

// TestReweightInvalidatesCache: after Reweight, queries must never return
// pre-mutation probabilities.
func TestReweightInvalidatesCache(t *testing.T) {
	m := chainMVDB(8, 4)
	tr, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q := ucq.MustParse("Q(a) :- Adv(1,a)")
	before, err := ix.Query(q, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then mutate.
	if _, err := ix.Query(q, IntersectOptions{CacheConscious: true}); err != nil {
		t.Fatal(err)
	}
	adv := tr.DB.Relation("Adv")
	for _, tup := range adv.Tuples {
		tr.DB.SetWeight(tup.Var, tup.Weight*3)
	}
	ix.Reweight()
	after, err := ix.Query(q, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Query(q, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if math.Abs(after[i].Prob-want[i].Prob) > 1e-9 {
			t.Fatalf("post-reweight answer %d = %v, fresh index says %v", i, after[i].Prob, want[i].Prob)
		}
		if after[i].Prob == before[i].Prob {
			t.Fatalf("answer %d still shows the pre-mutation probability %v", i, before[i].Prob)
		}
	}
}

// TestSingleflightHammer fires many concurrent identical queries, some with
// contexts canceled mid-flight — no error other than cancellation may
// surface, canceled callers must not fail others, and every successful result
// must be correct. Run with -race in CI.
func TestSingleflightHammer(t *testing.T) {
	m := chainMVDB(20, 8)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q := ucq.MustParse("Q(a) :- Adv(s,a)")
	want, err := ix.Query(q, IntersectOptions{CacheConscious: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 24
	const rounds = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithCancel(context.Background())
				if g%3 == 0 && r%2 == 0 {
					cancel() // canceled before (or while) waiting
				}
				rows, err := ix.Query(q, IntersectOptions{CacheConscious: true, Ctx: ctx})
				cancel()
				if err != nil {
					if errors.Is(err, budget.ErrCanceled) || errors.Is(err, context.Canceled) {
						continue // our own cancellation — fine
					}
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if len(rows) != len(want) {
					t.Errorf("goroutine %d: %d answers, want %d", g, len(rows), len(want))
					return
				}
				for i := range rows {
					if math.Abs(rows[i].Prob-want[i].Prob) > 1e-12 {
						t.Errorf("goroutine %d: answer %d = %v, want %v", g, i, rows[i].Prob, want[i].Prob)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLineageCacheSharesAcrossQueries: two distinct named queries whose
// answers produce the same lineages must hit the lineage cache on the second
// query even though the answer cache misses.
func TestLineageCacheSharesAcrossQueries(t *testing.T) {
	m := chainMVDB(12, 5)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	// Two different spellings with different fingerprints but identical
	// per-answer lineage: Q(a) :- Adv(1,a) vs the union with itself plus a
	// distinct second disjunct evaluated first.
	q1 := ucq.MustParse("Q(a) :- Adv(1,a)")
	if _, err := ix.Query(q1, IntersectOptions{CacheConscious: true}); err != nil {
		t.Fatal(err)
	}
	st1 := ix.CacheStats()
	// A structurally different query (extra join variable constraint) whose
	// bound answers re-derive the same lineages.
	q2 := ucq.MustParse("R(x) :- Adv(1,x)\nR(x) :- Adv(2,x)")
	if _, err := ix.Query(q2, IntersectOptions{CacheConscious: true}); err != nil {
		t.Fatal(err)
	}
	st2 := ix.CacheStats()
	if st2.Answers.Hits != st1.Answers.Hits {
		t.Fatalf("distinct query hit the answer cache: %+v", st2.Answers)
	}
	if st2.Lineage.Hits <= st1.Lineage.Hits {
		t.Fatalf("second query did not reuse cached lineage probabilities: %+v then %+v",
			st1.Lineage, st2.Lineage)
	}
}

// TestCacheStatsApplyCounters: the scratch-manager apply counters accumulate
// on uncached evaluation.
func TestCacheStatsApplyCounters(t *testing.T) {
	m := chainMVDB(15, 6)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q := ucq.MustParse("Q() :- Adv(s,a)")
	if _, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: true}); err != nil {
		t.Fatal(err)
	}
	st := ix.CacheStats()
	if !st.Enabled {
		t.Fatal("stats say cache disabled")
	}
	if st.QueryApplyHits+st.QueryApplyMisses == 0 {
		t.Fatalf("no apply-cache activity recorded: %+v", st)
	}
}

// TestDisableCacheOption: DisableCache opts out per call without touching the
// installed cache.
func TestDisableCacheOption(t *testing.T) {
	m := chainMVDB(6, 2)
	_, ix := buildIndex(t, m)
	ix.EnableCache(qcache.Options{})
	q := ucq.MustParse("Q(a) :- Adv(1,a)")
	if _, err := ix.Query(q, IntersectOptions{DisableCache: true}); err != nil {
		t.Fatal(err)
	}
	st := ix.CacheStats()
	if st.Answers.Hits+st.Answers.Misses != 0 {
		t.Fatalf("DisableCache still touched the answer cache: %+v", st.Answers)
	}
	if _, err := ix.Query(q, IntersectOptions{}); err != nil {
		t.Fatal(err)
	}
	if ix.CacheStats().Answers.Misses == 0 {
		t.Fatal("cached call did not register")
	}
	ix.EnableCache(qcache.Options{Disable: true})
	if ix.CacheEnabled() {
		t.Fatal("Disable did not remove the cache")
	}
}
