package mvindex

import (
	"fmt"

	"mvdb/internal/budget"
	"mvdb/internal/lineage"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// Explain describes how one intersection ran — the observable counterpart
// of Proposition 3 (runtime O(span · width)).
type Explain struct {
	QuerySize    int // nodes of the query OBDD
	QueryVars    int // variables in the query lineage
	EntryBlock   int // chain block the traversal entered at
	LastBlock    int // chain block of the query's last variable
	Blocks       int // total chain blocks in the index
	SpanLevels   int // levels between the query's first and last variable
	IndexLevels  int // total levels in the index
	PairsVisited int // memoized (query node, index node) pairs touched
	Prob         float64
}

func (e Explain) String() string {
	return fmt.Sprintf("query: %d nodes / %d vars; blocks %d-%d of %d; span %d of %d levels; %d pairs visited; P = %.6g",
		e.QuerySize, e.QueryVars, e.EntryBlock, e.LastBlock, e.Blocks, e.SpanLevels, e.IndexLevels, e.PairsVisited, e.Prob)
}

// ExplainBoolean evaluates P(Q) like ProbBoolean and reports traversal
// statistics (always with the entry shortcut, MVIntersect layout). Only the
// cancellation and budget fields of opts apply; the layout knobs are fixed.
func (ix *Index) ExplainBoolean(q ucq.UCQ, opts IntersectOptions) (Explain, error) {
	linQ, err := ucq.EvalBoolean(ix.tr.DB, q)
	if err != nil {
		return Explain{}, err
	}
	return ix.ExplainLineage(linQ, opts)
}

// ExplainLineage is ExplainBoolean for a precomputed lineage.
func (ix *Index) ExplainLineage(linQ lineage.DNF, opts IntersectOptions) (Explain, error) {
	if err := budget.Check(opts.Ctx, opts.Budget.Deadline); err != nil {
		return Explain{}, err
	}
	if ix.pNotWSign == 0 {
		return Explain{}, fmt.Errorf("mvindex: P0(¬W) = 0 — inconsistent MarkoViews")
	}
	ex := Explain{
		Blocks:      ix.Blocks(),
		IndexLevels: ix.m.NumVars(),
		QueryVars:   len(linQ.Vars()),
	}
	if linQ.IsFalse() {
		return ex, nil
	}
	qm := ix.m.NewScratch()
	var fQ obdd.NodeID
	if opts.bounded() {
		qm.SetBudget(opts.Ctx, opts.Budget)
		if err := budget.Catch(func() { fQ = obdd.BuildDNF(qm, linQ) }); err != nil {
			return Explain{}, err
		}
	} else {
		fQ = obdd.BuildDNF(qm, linQ)
	}
	ex.QuerySize = qm.Size(fQ)
	if fQ == obdd.True {
		ex.Prob = 1
		return ex, nil
	}
	if span := int(qm.MaxLevel(fQ)) - int(qm.NodeLevel(fQ)) + 1; span > 0 {
		ex.SpanLevels = span
	}
	qprob := getPairMemo()
	defer putPairMemo(qprob)
	if ix.m.IsTerminal(ix.root) {
		ex.Prob = ix.qProb(qm, fQ, qprob)
		return ex, nil
	}
	s := ix.spanFor(qm, fQ, IntersectOptions{})
	ex.EntryBlock, ex.LastBlock = s.first, s.last
	memo := getPairMemo()
	defer putPairMemo(memo)
	g := newGuard(opts)
	if err := budget.Catch(func() {
		ex.Prob = ix.intersect(qm, fQ, ix.chainRoots[s.first], s, memo, qprob, g)
	}); err != nil {
		return Explain{}, err
	}
	ex.PairsVisited = memo.n
	return ex, nil
}

// TupleMarginal computes the marginal probability of one probabilistic
// tuple under the MVDB semantics: P(X_t) = P0(X_t ∧ ¬W) / P0(¬W). This is
// the paper's motivating use case — reading off the corrected likelihood of
// an inferred fact (an advisor edge, an affiliation) after the MarkoViews
// reweight it.
// Only the cancellation and budget fields of opts apply; the traversal is
// always cache-conscious.
func (ix *Index) TupleMarginal(v int, opts IntersectOptions) (float64, error) {
	if ix.m.Level(v) < 0 {
		return 0, fmt.Errorf("mvindex: variable %d not in the index order", v)
	}
	opts.CacheConscious = true
	qm := ix.m.NewScratch()
	return ix.intersectOn(qm, qm.Var(v), opts)
}

// AllTupleMarginals computes the corrected marginal probability of every
// probabilistic tuple in one pass over the augmented OBDD. For a variable v
// whose nodes u₁..u_c all sit in chain block k (IntraBddIndex), with
// block-local reach/probUnder and block probability b_k:
//
//	P(X_v) = [Σᵢ reach(uᵢ)·p_v·probUnder(hi(uᵢ)) + p_v·(b_k − Σᵢ reach(uᵢ)·probUnder(uᵢ))] / b_k
//
// — the first sum covers accepting paths through v's nodes, the second term
// the accepting block mass on paths that skip v's level (where v is free);
// all other blocks cancel in the ratio. Variables not in the index are
// independent of the views and keep their prior. The result is indexed by
// variable id; entry 0 is unused.
func (ix *Index) AllTupleMarginals() ([]float64, error) {
	if ix.pNotWSign == 0 {
		return nil, fmt.Errorf("mvindex: P0(¬W) = 0 — inconsistent MarkoViews")
	}
	out := make([]float64, len(ix.probs))
	for v := 1; v < len(ix.probs); v++ {
		p := ix.probs[v]
		nodes := ix.varNodes[v]
		if len(nodes) == 0 {
			out[v] = p // not constrained by any view
			continue
		}
		k := ix.varBlock[v]
		bk := ix.blockProb[k]
		if bk == 0 {
			return nil, fmt.Errorf("mvindex: block %d has probability 0 — inconsistent MarkoViews", k)
		}
		through := 0.0 // accepting block mass through v's nodes with v = 1
		touched := 0.0 // total block mass through v's nodes
		for _, u := range nodes {
			through += ix.reach[u] * p * ix.childLocal(ix.m.Hi(u), k)
			touched += ix.reach[u] * ix.probUnder[u]
		}
		out[v] = (through + p*(bk-touched)) / bk
	}
	return out, nil
}
