// Package mvindex implements the MV-index of Section 4: the OBDD of ¬W
// augmented with per-node precomputations — probUnder (the probability of
// the sub-OBDD) and reachability (the probability mass of root-to-node
// paths) — plus the indices that let online query evaluation start at the
// first block the query touches:
//
//   - InterBddIndex: tuple variable → chain block containing it;
//   - IntraBddIndex: tuple variable → OBDD nodes labeled with it.
//
// Two intersection algorithms compute P(Q) = P0(ΦQ ∧ ¬W)/P0(¬W):
// MVIntersect, a top-down memoized pairwise traversal, and CC-MVIntersect,
// the cache-conscious variant that lays the OBDD out as a flat vector in
// DFS order (Sect. 4.3).
//
// # Numerical stability at scale
//
// ¬W is a conjunction of thousands of per-separator-value blocks, so the
// global P0(¬W) (and every global probUnder/reachability value) is a
// product of thousands of factors: it underflows or overflows float64 long
// before the paper's data sizes, and the negative probabilities of the
// translation rule out log-space tricks. The index therefore stores all
// augmented quantities *block-locally*: probUnder treats the next chain
// root as the True terminal, reachability restarts at 1 at every chain
// root, and each block k records its own probability b_k = P0(C_k). In
// Theorem 1's ratio the prefix and suffix block products cancel
// analytically, so online evaluation only ever multiplies the b_k of the
// few blocks the query touches.
package mvindex

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/core"
	"mvdb/internal/lineage"
	"mvdb/internal/obdd"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// Index is a compiled MV-index over a Translation.
//
// After Build returns, every field of the Index — including the shared OBDD
// manager — is frozen: the read path (IntersectOBDD, IntersectLineage,
// Query, ProbBoolean, ExplainLineage, TupleMarginal, ...) never mutates the
// index or its manager and is safe for any number of concurrent callers.
// Per-query OBDDs are built in scratch managers sharing the frozen manager's
// variable order, and every traversal memo is per-call. The only mutating
// operations are Reweight and Compact, which require exclusive access (no
// concurrent readers).
type Index struct {
	tr    *core.Translation
	m     *obdd.Manager
	root  obdd.NodeID // OBDD of ¬W
	probs []float64

	// Block-local augmentation (see the package comment), indexed densely by
	// NodeID (probUnder[False]=0, probUnder[True]=1; entries of unreachable
	// nodes are unused).
	probUnder []float64 // local: next chain root counts as True
	reach     []float64 // local: restarts at 1 at each chain root
	size      int       // internal nodes reachable from root

	// Chain blocks: convergence points every accepting path passes, in
	// level order. chainRoots[0] is the root.
	chainRoots  []obdd.NodeID
	chainLevels []int32
	blockProb   []float64 // b_k = local probUnder at chainRoots[k]

	// P0(¬W) = Π_k b_k in log-sign form (the float64 product may not be
	// representable).
	pNotWLog  float64 // Σ log|b_k|; -Inf when some b_k = 0
	pNotWSign int

	varNodes map[int][]obdd.NodeID // IntraBddIndex
	varBlock map[int]int           // InterBddIndex: variable -> chain block

	cc *ccLayout

	// cache, when non-nil, is the cross-query memoization layer (see
	// EnableCache): answer cache, lineage cache, and singleflight. The read
	// path consults it concurrently; installing or removing it is a mutating
	// operation like Reweight.
	cache *indexCache

	// rec, when non-nil, is the block record of the last (recorded) compile
	// of W, keyed to the current manager m; it lets ApplyMutations reuse
	// clean blocks. Nil until the first structural mutation batch and after
	// Compact (which moves NodeIDs).
	rec *obdd.BlockRecord

	// reorder, when non-nil, records that the index runs under a learned
	// (sifted) variable order rather than the static Π — either found by
	// Sift or restored from a snapshot. ApplyMutations then threads the
	// learned order into delta recompiles via CompileOptions.Order.
	reorder *ReorderInfo
}

// ReorderInfo is the reordering provenance of an index: how its learned
// variable order was obtained and what the sift achieved. Surfaced by the
// server's /stats and persisted through snapshots so recovery and replica
// bootstrap skip the search.
type ReorderInfo struct {
	Mode        string  `json:"mode"`
	Provenance  string  `json:"provenance"` // "sifted" | "snapshot"
	NodesBefore int     `json:"nodes_before"`
	NodesAfter  int     `json:"nodes_after"`
	Rounds      int     `json:"rounds"`
	SiftedVars  int     `json:"sifted_vars"`
	Swaps       int     `json:"swaps"`
	SiftMillis  float64 `json:"sift_ms"`
	// DeltaReuses counts delta recompiles that inherited the learned order
	// through maintain.go instead of regressing to static Π.
	DeltaReuses int `json:"delta_reuses"`
	// BlockProvenance counts chain blocks by how their current order was
	// obtained: "sifted"/"snapshot" right after a sift or restore,
	// "inherited-reused"/"inherited-recompiled" after a delta recompile
	// under the learned order.
	BlockProvenance map[string]int `json:"block_provenance"`
}

// Build compiles the MV-index for a translation: it reuses the translation's
// compiled OBDD of W (separator-first order), negates it, and computes the
// block-local augmentation.
func Build(tr *core.Translation) (*Index, error) {
	m, fW, err := tr.OBDD()
	if err != nil {
		return nil, err
	}
	ix := &Index{
		tr:    tr,
		m:     m,
		root:  m.Not(fW),
		probs: tr.DB.Probs(),
	}
	ix.rebuild()
	if tr.Reorder.Mode != obdd.ReorderOff {
		if _, err := ix.Sift(tr.Reorder); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Sift runs a Rudell sifting pass (obdd.Reorder) over the index OBDD with
// one window per chain block, so variables never cross block boundaries and
// the chain factorization — with its block-local numerics — survives. On
// success the index (and its translation) runs on a fresh manager under the
// learned order; the block record, if any, is remapped so incremental
// updates keep working. Requires exclusive access, like Reweight and
// Compact. A no-op when opts.Mode is ReorderOff or ¬W is terminal.
func (ix *Index) Sift(opts obdd.ReorderOptions) (obdd.ReorderStats, error) {
	var st obdd.ReorderStats
	if opts.Mode == obdd.ReorderOff || ix.m.IsTerminal(ix.root) {
		return st, nil
	}
	opts.Windows = ix.blockWindows()
	roots := []obdd.NodeID{ix.root}
	var nRec int
	if ix.rec != nil {
		nRec = len(ix.rec.Roots)
		roots = append(roots, ix.rec.Roots...)
	}
	nm, nroots, st, err := obdd.Reorder(ix.m, roots, opts)
	if err != nil {
		return st, err
	}
	ix.m = nm
	ix.root = nroots[0]
	if ix.rec != nil {
		ix.rec.Roots = append([]obdd.NodeID(nil), nroots[1:1+nRec]...)
	}
	ix.tr.AttachOBDD(nm, nm.Not(ix.root))
	ix.rebuild()
	ix.noteReorder(opts.Mode, st, "sifted")
	// Cached answers and lineage probabilities stay valid: the represented
	// functions and weights are unchanged, and the caches never store
	// NodeIDs — same reasoning as Compact.
	return st, nil
}

// blockWindows derives one sifting window per chain block from the current
// chain levels: [level(root_k), level(root_{k+1})), with the first window
// extended down to level 0 and the last up to NumVars so every level is
// covered. Keeping each variable inside its window preserves the
// convergence points findChain relies on.
func (ix *Index) blockWindows() [][2]int {
	if len(ix.chainLevels) == 0 {
		return nil
	}
	n := ix.m.NumVars()
	wins := make([][2]int, 0, len(ix.chainLevels))
	for k := range ix.chainLevels {
		lo := int(ix.chainLevels[k])
		if k == 0 {
			lo = 0
		}
		hi := n
		if k+1 < len(ix.chainLevels) {
			hi = int(ix.chainLevels[k+1])
		}
		if hi > lo {
			wins = append(wins, [2]int{lo, hi})
		}
	}
	return wins
}

// BlockWindows returns the per-block sifting windows (half-open level
// ranges) Sift uses: one window per chain block, covering [0, NumVars)
// contiguously. Callers may use them to construct alternative block-local
// variable orders — any order that permutes levels only inside these windows
// preserves the chain factorization and is safe as CompileOptions.Order.
func (ix *Index) BlockWindows() [][2]int {
	wins := ix.blockWindows()
	out := make([][2]int, len(wins))
	copy(out, wins)
	return out
}

// noteReorder records reordering provenance after a sift or restore.
func (ix *Index) noteReorder(mode obdd.ReorderMode, st obdd.ReorderStats, prov string) {
	ix.reorder = &ReorderInfo{
		Mode:            mode.String(),
		Provenance:      prov,
		NodesBefore:     st.NodesBefore,
		NodesAfter:      st.NodesAfter,
		Rounds:          st.Rounds,
		SiftedVars:      st.Sifted,
		Swaps:           st.Swaps,
		SiftMillis:      float64(st.Duration) / float64(time.Millisecond),
		BlockProvenance: map[string]int{prov: ix.Blocks()},
	}
}

// Reordered reports whether the index runs under a learned (sifted) order.
func (ix *Index) Reordered() bool { return ix.reorder != nil }

// ReorderInfo returns a copy of the reordering provenance, or nil while the
// index still uses the static Π order.
func (ix *Index) ReorderInfo() *ReorderInfo {
	if ix.reorder == nil {
		return nil
	}
	cp := *ix.reorder
	cp.BlockProvenance = make(map[string]int, len(ix.reorder.BlockProvenance))
	for k, v := range ix.reorder.BlockProvenance {
		cp.BlockProvenance[k] = v
	}
	return &cp
}

// rebuild computes every derived structure from (m, root, probs).
func (ix *Index) rebuild() {
	ix.probUnder = make([]float64, ix.m.NumNodes())
	ix.probUnder[obdd.True] = 1
	ix.reach = make([]float64, ix.m.NumNodes())
	ix.size = 0
	ix.varNodes = map[int][]obdd.NodeID{}
	ix.varBlock = map[int]int{}
	ix.chainRoots, ix.chainLevels, ix.blockProb = nil, nil, nil
	ix.findChain()
	ix.augment()
	ix.pNotWLog, ix.pNotWSign = 0, 1
	for _, b := range ix.blockProb {
		if b == 0 {
			ix.pNotWLog = math.Inf(-1)
			ix.pNotWSign = 0
			break
		}
		ix.pNotWLog += math.Log(math.Abs(b))
		if b < 0 {
			ix.pNotWSign = -ix.pNotWSign
		}
	}
	if ix.m.IsTerminal(ix.root) {
		if ix.root == obdd.False {
			ix.pNotWLog, ix.pNotWSign = math.Inf(-1), 0
		} else {
			ix.pNotWLog, ix.pNotWSign = 0, 1
		}
	}
	ix.buildCC()
}

// nextRoot returns the chain root following block k, or False when k is the
// last block (no boundary node).
func (ix *Index) nextRoot(k int) obdd.NodeID {
	if k+1 < len(ix.chainRoots) {
		return ix.chainRoots[k+1]
	}
	return obdd.False // sentinel: never matches an internal node below
}

// augment computes the block-local probUnder and reachability and fills the
// IntraBddIndex.
func (ix *Index) augment() {
	if ix.m.IsTerminal(ix.root) {
		return
	}
	nodes := ix.m.Reachable(ix.root)
	ix.size = len(nodes)
	// Level order: parents before children (edges strictly increase levels).
	sort.Slice(nodes, func(i, j int) bool {
		return ix.m.NodeLevel(nodes[i]) < ix.m.NodeLevel(nodes[j])
	})
	// Local probUnder, bottom-up: the child value of the next chain root is
	// taken as 1 (the suffix blocks factor out).
	for i := len(nodes) - 1; i >= 0; i-- {
		u := nodes[i]
		k := ix.blockForLevel(ix.m.NodeLevel(u))
		p := ix.probs[ix.m.VarAtLevel(int(ix.m.NodeLevel(u)))]
		ix.probUnder[u] = (1-p)*ix.childLocal(ix.m.Lo(u), k) + p*ix.childLocal(ix.m.Hi(u), k)
	}
	ix.blockProb = make([]float64, len(ix.chainRoots))
	for k, r := range ix.chainRoots {
		ix.blockProb[k] = ix.probUnder[r]
	}
	// Local reachability, top-down: restarts at 1 on every chain root
	// (reach is freshly zeroed by rebuild); edges that cross into the next
	// chain root are dropped.
	for _, r := range ix.chainRoots {
		ix.reach[r] = 1
	}
	for _, u := range nodes {
		r := ix.reach[u]
		k := ix.blockForLevel(ix.m.NodeLevel(u))
		next := ix.nextRoot(k)
		p := ix.probs[ix.m.VarAtLevel(int(ix.m.NodeLevel(u)))]
		if lo := ix.m.Lo(u); !ix.m.IsTerminal(lo) && lo != next {
			ix.reach[lo] += r * (1 - p)
		}
		if hi := ix.m.Hi(u); !ix.m.IsTerminal(hi) && hi != next {
			ix.reach[hi] += r * p
		}
	}
	for _, u := range nodes {
		v := ix.m.VarAtLevel(int(ix.m.NodeLevel(u)))
		ix.varNodes[v] = append(ix.varNodes[v], u)
	}
	for v := range ix.varNodes {
		ix.varBlock[v] = ix.blockForLevel(int32(ix.m.Level(v)))
	}
}

// childLocal evaluates a child reference during block-local probUnder
// computation for a node in block k: the next chain root counts as True.
func (ix *Index) childLocal(c obdd.NodeID, k int) float64 {
	switch c {
	case obdd.False:
		return 0
	case obdd.True:
		return 1
	}
	if c == ix.nextRoot(k) {
		return 1
	}
	return ix.probUnder[c]
}

// findChain locates the convergence points of the OBDD with a level-ordered
// sweep: whenever the frontier of discovered-but-unprocessed nodes has
// exactly one element, every accepting path passes through it. These are
// the block boundaries of the concatenated per-separator-value OBDDs.
func (ix *Index) findChain() {
	if ix.m.IsTerminal(ix.root) {
		return
	}
	type qnode struct {
		id    obdd.NodeID
		level int32
	}
	inPending := make([]bool, ix.m.NumNodes())
	inPending[ix.root] = true
	pending := []qnode{{ix.root, ix.m.NodeLevel(ix.root)}}
	pop := func() obdd.NodeID {
		best := 0
		for i := 1; i < len(pending); i++ {
			if pending[i].level < pending[best].level {
				best = i
			}
		}
		u := pending[best].id
		pending[best] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		inPending[u] = false
		return u
	}
	// A singleton frontier proves convergence only while no processed node
	// had an edge to the True terminal: such an edge is an accepting path
	// that bypasses everything below, breaking the D ∧ C decomposition that
	// the block factorization relies on.
	seenTrueEdge := false
	for len(pending) > 0 {
		if len(pending) == 1 && !seenTrueEdge {
			u := pending[0].id
			ix.chainRoots = append(ix.chainRoots, u)
			ix.chainLevels = append(ix.chainLevels, ix.m.NodeLevel(u))
		}
		u := pop()
		for _, c := range []obdd.NodeID{ix.m.Lo(u), ix.m.Hi(u)} {
			if c == obdd.True {
				seenTrueEdge = true
			}
			if !ix.m.IsTerminal(c) && !inPending[c] {
				inPending[c] = true
				pending = append(pending, qnode{c, ix.m.NodeLevel(c)})
			}
		}
	}
}

// blockForLevel returns the index of the last chain root whose level is <=
// the given level (the block containing that level).
func (ix *Index) blockForLevel(level int32) int {
	lo, hi := 0, len(ix.chainRoots)-1
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if ix.chainLevels[mid] <= level {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// ProbNotW returns P0(¬W) = 1 - P0(W) as a float64. At large scale this is
// a product of thousands of block probabilities and may underflow to 0 (or
// overflow) even though the index answers queries exactly; use LogProbNotW
// for the representable form.
func (ix *Index) ProbNotW() float64 {
	return float64(ix.pNotWSign) * math.Exp(ix.pNotWLog)
}

// LogProbNotW returns P0(¬W) as (log|·|, sign); sign 0 means exactly zero
// (the MarkoViews are inconsistent).
func (ix *Index) LogProbNotW() (logAbs float64, sign int) {
	return ix.pNotWLog, ix.pNotWSign
}

// Size returns the number of internal nodes of the ¬W OBDD.
func (ix *Index) Size() int { return ix.size }

// Width returns the OBDD width.
func (ix *Index) Width() int { return ix.m.Width(ix.root) }

// Blocks returns the number of chain blocks.
func (ix *Index) Blocks() int { return len(ix.chainRoots) }

// NodesOf returns the IntraBddIndex entry of a variable: the nodes of the
// ¬W OBDD labeled with it.
func (ix *Index) NodesOf(v int) []obdd.NodeID { return ix.varNodes[v] }

// BlockOf returns the InterBddIndex entry of a variable: the chain block
// containing it (-1 if the variable does not occur in the index).
func (ix *Index) BlockOf(v int) int {
	if b, ok := ix.varBlock[v]; ok {
		return b
	}
	return -1
}

// Manager exposes the underlying OBDD manager (shared with the query side).
func (ix *Index) Manager() *obdd.Manager { return ix.m }

// Translation exposes the index's underlying translation (useful after
// loading a saved index).
func (ix *Index) Translation() *core.Translation { return ix.tr }

// IntersectOptions selects the online intersection algorithm and its
// shortcuts.
type IntersectOptions struct {
	// CacheConscious selects CC-MVIntersect (flattened DFS-order layout).
	CacheConscious bool
	// NoEntryShortcut disables the InterBddIndex entry into the first block
	// the query touches — an ablation that forces the traversal to start at
	// the root block.
	NoEntryShortcut bool
	// Parallelism bounds the worker pool of Index.Query's per-answer loop:
	// 0 uses runtime.GOMAXPROCS(0), 1 evaluates answers sequentially, N > 1
	// uses N workers. Answer order is preserved for every setting.
	Parallelism int
	// Ctx, when non-nil, is polled during evaluation — between answers in
	// Query and periodically inside the intersection recursions — aborting
	// with an error wrapping budget.ErrCanceled once done.
	Ctx context.Context
	// Budget bounds the per-call resources: MaxNodes caps the scratch
	// query-OBDD allocation, MaxPairs caps the memoized (query node, index
	// node) pairs one intersection may visit, and Deadline is a wall-clock
	// cutoff. Violations abort with errors wrapping budget.ErrBudgetExceeded
	// or budget.ErrCanceled. In Query, MaxNodes/MaxPairs apply per answer
	// (each answer runs its own intersection); Deadline bounds the whole
	// call.
	Budget budget.Budget
	// DisableCache bypasses the index's cross-query cache (EnableCache) for
	// this call: nothing is read from or written to the answer and lineage
	// caches, and the call does not join singleflight groups. Benchmarks use
	// it to measure the cold path on a cache-enabled index.
	DisableCache bool
}

// bounded reports whether the options impose any cancellation or budget.
func (o IntersectOptions) bounded() bool {
	return o.Ctx != nil || !o.Budget.IsZero()
}

// guard enforces the pair-visit budget and the periodic cancellation polls
// of one intersection. A nil guard (unbudgeted call) checks nothing — the
// hot path stays branch-cheap.
type guard struct {
	ctx      context.Context
	deadline time.Time
	maxPairs int
	pairs    int
}

func newGuard(opts IntersectOptions) *guard {
	if !opts.bounded() {
		return nil
	}
	return &guard{ctx: opts.Ctx, deadline: opts.Budget.Deadline, maxPairs: opts.Budget.MaxPairs}
}

// visit records one memoized pair and aborts the traversal via budget.Panic
// (caught at intersectOn) when the pair budget is exhausted; cancellation
// and the deadline are polled every 1024 pairs.
func (g *guard) visit() {
	if g == nil {
		return
	}
	g.pairs++
	if g.maxPairs > 0 && g.pairs > g.maxPairs {
		budget.Panic(budget.Exceeded("mvindex pair", g.maxPairs))
	}
	if g.pairs&1023 != 0 {
		return
	}
	if err := budget.Check(g.ctx, g.deadline); err != nil {
		budget.Panic(err)
	}
}

// workers resolves the Parallelism knob to an actual worker count.
func (o IntersectOptions) workers() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// span describes the blocks one query touches.
type span struct {
	first, last int // block range [first, last]
	stop        obdd.NodeID
}

// spanFor computes the block span of a query OBDD (qm is the manager the
// query OBDD lives in; levels coincide with the index manager's).
func (ix *Index) spanFor(qm *obdd.Manager, fQ obdd.NodeID, opts IntersectOptions) span {
	s := span{first: 0, last: len(ix.chainRoots) - 1}
	if !opts.NoEntryShortcut {
		s.first = ix.blockForLevel(qm.NodeLevel(fQ))
	}
	s.last = ix.blockForLevel(qm.MaxLevel(fQ))
	if s.last < s.first {
		s.last = s.first
	}
	s.stop = ix.nextRoot(s.last)
	return s
}

// IntersectLineage computes P(Q) = P0(ΦQ ∧ ¬W) / P0(¬W) for a query
// lineage. The prefix and suffix blocks outside the query's span cancel in
// the ratio, so only the touched blocks' probabilities enter the
// computation. The query OBDD is built in a private scratch manager, so the
// shared manager stays frozen and concurrent callers never contend.
func (ix *Index) IntersectLineage(linQ lineage.DNF, opts IntersectOptions) (float64, error) {
	if linQ.IsFalse() {
		return 0, nil
	}
	cache := ix.cache
	useCache := cache != nil && !opts.DisableCache
	var lkey qcache.Key
	if useCache {
		hi, lo := linQ.Hash()
		lkey = cacheKeyForLineage(hi, lo, opts)
		if p, ok := cache.lineage.Get(lkey); ok {
			return p, nil
		}
	}
	qm := ix.m.NewScratch()
	var fQ obdd.NodeID
	if opts.bounded() {
		// Arm the private scratch manager so query-OBDD synthesis respects
		// MaxNodes and cancellation; the shared manager stays untouched.
		qm.SetBudget(opts.Ctx, opts.Budget)
		if err := budget.Catch(func() { fQ = obdd.BuildDNF(qm, linQ) }); err != nil {
			return 0, err
		}
	} else {
		fQ = obdd.BuildDNF(qm, linQ)
	}
	p, err := ix.intersectOn(qm, fQ, opts)
	if cache != nil {
		h, ms := qm.ApplyCacheStats()
		cache.applyHits.Add(h)
		cache.applyMisses.Add(ms)
	}
	if useCache && err == nil {
		cache.lineage.Put(lkey, p)
	}
	return p, err
}

// IntersectOBDD computes P(Q) = P0(ΦQ ∧ ¬W) / P0(¬W) for a query OBDD built
// on the shared manager (or a scratch manager over the same order — pass it
// through IntersectLineage in that case). Read-only: safe for concurrent
// callers on a frozen index.
func (ix *Index) IntersectOBDD(fQ obdd.NodeID, opts IntersectOptions) (float64, error) {
	return ix.intersectOn(ix.m, fQ, opts)
}

// intersectOn runs the intersection with the query OBDD living in qm.
func (ix *Index) intersectOn(qm *obdd.Manager, fQ obdd.NodeID, opts IntersectOptions) (float64, error) {
	if err := budget.Check(opts.Ctx, opts.Budget.Deadline); err != nil {
		return 0, err
	}
	if ix.pNotWSign == 0 {
		return 0, fmt.Errorf("mvindex: P0(¬W) = 0 — inconsistent MarkoViews")
	}
	if fQ == obdd.False {
		return 0, nil
	}
	if fQ == obdd.True {
		return 1, nil
	}
	qprob := getPairMemo()
	defer putPairMemo(qprob)
	if ix.m.IsTerminal(ix.root) {
		// No constraints: P(Q) = P0(ΦQ).
		return ix.qProb(qm, fQ, qprob), nil
	}
	g := newGuard(opts)
	s := ix.spanFor(qm, fQ, opts)
	memo := getPairMemo()
	defer putPairMemo(memo)
	var p float64
	err := budget.Catch(func() {
		if opts.CacheConscious {
			p = ix.cc.intersect(ix, qm, fQ, s, memo, qprob, g)
			return
		}
		p = ix.intersect(qm, fQ, ix.chainRoots[s.first], s, memo, qprob, g)
	})
	return p, err
}

// intersect is MVIntersect in conditioned units: it returns
// P0(ΦQ ∧ C_{block(w)..last} | paths reaching w) / Π_{j=block(w)..last} b_j,
// so the final call at the entry chain root directly yields Theorem 1's
// ratio — every block division happens as its boundary is crossed, and no
// unrepresentable global product is ever formed.
func (ix *Index) intersect(qm *obdd.Manager, q, w obdd.NodeID, s span, memo, qprob *pairMemo, g *guard) float64 {
	if q == obdd.False || w == obdd.False {
		return 0
	}
	if w == s.stop || w == obdd.True {
		// Constraints beyond the span factor out of the ratio.
		return ix.qProb(qm, q, qprob)
	}
	wBlock := ix.blockForLevel(ix.m.NodeLevel(w))
	if q == obdd.True {
		// Remaining constraint mass of this block (conditioned), the
		// suffix blocks cancel.
		return ix.probUnder[w] / ix.blockProb[wBlock]
	}
	// Both q and w are internal (≥ 2), so the packed key is never zero.
	key := int64(q)<<32 | int64(uint32(w))
	if r, ok := memo.get(key); ok {
		return r
	}
	g.visit()
	lq, lw := qm.NodeLevel(q), ix.m.NodeLevel(w)
	var r float64
	switch {
	case lq < lw:
		p := ix.probs[qm.VarAtLevel(int(lq))]
		r = (1-p)*ix.intersect(qm, qm.Lo(q), w, s, memo, qprob, g) + p*ix.intersect(qm, qm.Hi(q), w, s, memo, qprob, g)
	case lw < lq:
		p := ix.probs[ix.m.VarAtLevel(int(lw))]
		r = (1-p)*ix.wchild(qm, q, ix.m.Lo(w), wBlock, s, memo, qprob, g) + p*ix.wchild(qm, q, ix.m.Hi(w), wBlock, s, memo, qprob, g)
	default:
		p := ix.probs[qm.VarAtLevel(int(lq))]
		r = (1-p)*ix.wchild(qm, qm.Lo(q), ix.m.Lo(w), wBlock, s, memo, qprob, g) + p*ix.wchild(qm, qm.Hi(q), ix.m.Hi(w), wBlock, s, memo, qprob, g)
	}
	memo.put(key, r)
	return r
}

// wchild evaluates a w-side child edge in conditioned units: leaving block
// wBlock (into the next chain root or the True terminal) divides by that
// block's probability; reaching the span's stop root contributes the bare
// query probability.
func (ix *Index) wchild(qm *obdd.Manager, q, c obdd.NodeID, wBlock int, s span, memo, qprob *pairMemo, g *guard) float64 {
	if q == obdd.False || c == obdd.False {
		return 0
	}
	b := ix.blockProb[wBlock]
	if c == s.stop {
		return ix.qProb(qm, q, qprob) / b
	}
	if c == obdd.True {
		return ix.qProb(qm, q, qprob) / b
	}
	val := ix.intersect(qm, q, c, s, memo, qprob, g)
	if ix.blockForLevel(ix.m.NodeLevel(c)) > wBlock {
		val /= b
	}
	return val
}

// qProb computes P0 of a query sub-OBDD; the memo is a pairMemo keyed by the
// bare node id (internal ids are ≥ 2, so keys never collide with the empty
// sentinel 0).
func (ix *Index) qProb(qm *obdd.Manager, q obdd.NodeID, memo *pairMemo) float64 {
	switch q {
	case obdd.False:
		return 0
	case obdd.True:
		return 1
	}
	if p, ok := memo.get(int64(q)); ok {
		return p
	}
	pv := ix.probs[qm.VarAtLevel(int(qm.NodeLevel(q)))]
	r := (1-pv)*ix.qProb(qm, qm.Lo(q), memo) + pv*ix.qProb(qm, qm.Hi(q), memo)
	memo.put(int64(q), r)
	return r
}

// ProbBoolean evaluates P(Q) through the index.
func (ix *Index) ProbBoolean(q ucq.UCQ, opts IntersectOptions) (float64, error) {
	linQ, err := ucq.EvalBoolean(ix.tr.DB, q)
	if err != nil {
		return 0, err
	}
	return ix.IntersectLineage(linQ, opts)
}

// Query evaluates a named query, one probability per answer tuple. The
// per-answer intersections are independent (each builds its query OBDD in a
// scratch manager), so they fan out across a bounded worker pool sized by
// opts.Parallelism; answer order is preserved regardless of the setting.
// With opts.Ctx or a deadline set, cancellation is also checked between
// answers, so a canceled query stops after the current answer.
//
// With the cross-query cache enabled (EnableCache), the answer set is served
// from the cache when a canonically identical query (same up to variable
// renaming, atom/disjunct order, and query name) was evaluated under the
// current epoch; concurrent identical misses collapse into one evaluation
// (singleflight). A canceled or budget-aborted evaluation is never cached,
// and a caller whose own context expires while waiting on another caller's
// evaluation returns its context error without disturbing the leader. The
// returned slice is the caller's to sort or trim, but the Head tuples are
// shared with the cache and must be treated as immutable.
func (ix *Index) Query(q *ucq.Query, opts IntersectOptions) ([]core.Answer, error) {
	if err := budget.Check(opts.Ctx, opts.Budget.Deadline); err != nil {
		return nil, err
	}
	cache := ix.cache
	if cache == nil || opts.DisableCache {
		return ix.queryEval(q, opts)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, _, err := cache.answers.Do(ctx, cacheKeyForQuery(q, opts), func() ([]core.Answer, error) {
		return ix.queryEval(q, opts)
	})
	if err != nil {
		return nil, err
	}
	// The same slice may live in the cache (leader and waiter alike); hand
	// every caller a private outer slice.
	return copyAnswers(res), nil
}

// queryEval is the uncached evaluation behind Query.
func (ix *Index) queryEval(q *ucq.Query, opts IntersectOptions) ([]core.Answer, error) {
	rows, err := ucq.Eval(ix.tr.DB, q)
	if err != nil {
		return nil, err
	}
	bounded := opts.bounded()
	out := make([]core.Answer, len(rows))
	workers := opts.workers()
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers <= 1 {
		for i, r := range rows {
			if bounded {
				if err := budget.Check(opts.Ctx, opts.Budget.Deadline); err != nil {
					return nil, err
				}
			}
			p, err := ix.IntersectLineage(r.Lineage, opts)
			if err != nil {
				return nil, err
			}
			out[i] = core.Answer{Head: r.Head, Prob: p}
		}
		return out, nil
	}
	var next int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(rows) {
					return
				}
				if bounded {
					if err := budget.Check(opts.Ctx, opts.Budget.Deadline); err != nil {
						errs[w] = err
						return
					}
				}
				p, err := ix.IntersectLineage(rows[i].Lineage, opts)
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = core.Answer{Head: rows[i].Head, Prob: p}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// Reweight refreshes the index after tuple weights changed in the
// translated database (e.g. a learning loop updated the MVDB weights in
// place). The OBDD structure of ¬W only depends on which tuples exist, not
// on their weights, so only the augmentation is recomputed, in time linear
// in the index size. Note that changing a MarkoView's weight requires
// updating the corresponding NV tuple weight to (1-w)/w; core.Translation
// owns that mapping.
func (ix *Index) Reweight() {
	ix.probs = ix.tr.DB.Probs()
	ix.rebuild()
	// O(1) invalidation: bump the cache epochs so every answer and lineage
	// probability computed against the old weights becomes stale; entries
	// are dropped lazily. Reweight already requires exclusive access, so no
	// reader can observe the half-updated state.
	if ix.cache != nil {
		ix.cache.answers.Invalidate()
		ix.cache.lineage.Invalidate()
	}
}

// Compact rebuilds the index on a fresh OBDD manager containing only the
// nodes of ¬W, dropping dead intermediates left behind by compilation and
// by per-query OBDD synthesis. Returns the number of manager nodes freed.
func (ix *Index) Compact() int {
	before := ix.m.NumNodes()
	nm, roots := ix.m.Compact(ix.root)
	ix.m = nm
	ix.root = roots[0]
	ix.tr.AttachOBDD(nm, nm.Not(ix.root))
	// The block record's roots are NodeIDs of the old manager; drop it (the
	// next structural mutation batch recompiles in full and re-records).
	ix.rec = nil
	ix.rebuild()
	// Cached answers and lineage probabilities stay valid across Compact —
	// the weights (and hence every probability) are unchanged; only NodeIDs
	// moved, and the caches never store NodeIDs.
	return before - nm.NumNodes()
}
