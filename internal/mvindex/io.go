package mvindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/obdd"
)

// indexSnapshot is the serialized MV-index: the translated database, the
// translation metadata, the OBDD manager, and the ¬W root. The augmentation
// (probUnder, reachability, chain blocks, indices, CC layout) is recomputed
// on load — it is linear in the index size and depends on the tuple
// weights, which keeps saved indexes valid under Reweight-style workflows.
//
// Version 2 adds the live-update state: the source MVDB (base database plus
// WeightTable-backed view definitions) and the translate options, so a
// restored index supports ApplyMutations, and LastSeq, the WAL sequence
// number the snapshot covers, so recovery replays only the log tail. The
// block record of the incremental compiler is NOT serialized — the first
// structural batch after a restore recompiles in full and re-records.
// Version 1 snapshots still load (query-only: no source, LastSeq 0).
//
// Version 3 adds the reordering provenance of a sifted index. The learned
// variable order itself travels inside the manager snapshot (obdd.Snapshot
// stores the order), so even v2 readers restore the right OBDD; the v3
// fields let recovery and replica bootstrap know the order is learned —
// they skip the sifting search and delta recompiles keep inheriting the
// order. Version 1 and 2 snapshots still load.
type indexSnapshot struct {
	Magic       string
	DB          engine.DatabaseSnapshot
	Translation core.TranslationSnapshot
	Manager     obdd.Snapshot
	Root        int32

	// v2 fields; zero on v1 snapshots.
	HasSource bool
	Source    core.MVDBSnapshot
	Opts      core.TranslateOptions
	LastSeq   uint64

	// v3 fields; zero on earlier snapshots.
	Reordered bool
	Reorder   ReorderInfo
}

const (
	snapshotMagicV1 = "mvindex-v1"
	snapshotMagicV2 = "mvindex-v2"
	snapshotMagic   = "mvindex-v3"
)

// Save serializes the index (including the translated database) as one gob
// message, equivalent to SaveSeq with sequence number 0.
func (ix *Index) Save(w io.Writer) error { return ix.SaveSeq(w, 0) }

// SaveSeq serializes the index together with the WAL sequence number the
// snapshot covers. When the index carries a snapshotable source MVDB
// (WeightTable-backed views), it is included so the restored index supports
// mutations; closure-weighted sources degrade to a query-only snapshot.
func (ix *Index) SaveSeq(w io.Writer, lastSeq uint64) error {
	bw := bufio.NewWriter(w)
	s := indexSnapshot{
		Magic:       snapshotMagic,
		DB:          ix.tr.DB.Snapshot(),
		Translation: ix.tr.Snapshot(),
		Manager:     ix.m.Snapshot(),
		Root:        int32(ix.root),
		Opts:        ix.tr.Opts(),
		LastSeq:     lastSeq,
	}
	if src := ix.tr.Source; src != nil {
		if ms, err := src.Snapshot(); err == nil {
			s.HasSource = true
			s.Source = ms
		}
	}
	if ix.reorder != nil {
		s.Reordered = true
		s.Reorder = *ix.ReorderInfo()
	}
	if err := gob.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("mvindex: encoding index: %w", err)
	}
	return bw.Flush()
}

// Read deserializes an index written by Save, discarding the sequence number.
func Read(r io.Reader) (*Index, error) {
	ix, _, err := ReadSeq(r)
	return ix, err
}

// ReadSeq deserializes an index written by Save/SaveSeq and returns the WAL
// sequence number the snapshot covers. The returned index is fully
// functional: the inner translation is restored and its OBDD of W is
// attached, so no recompilation happens; with a v2 source the index also
// accepts ApplyMutations.
func ReadSeq(r io.Reader) (*Index, uint64, error) {
	var s indexSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&s); err != nil {
		return nil, 0, fmt.Errorf("mvindex: decoding index: %w", err)
	}
	if s.Magic != snapshotMagic && s.Magic != snapshotMagicV2 && s.Magic != snapshotMagicV1 {
		return nil, 0, fmt.Errorf("mvindex: bad snapshot magic %q", s.Magic)
	}
	db, err := engine.FromSnapshot(s.DB)
	if err != nil {
		return nil, 0, err
	}
	tr, err := core.RestoreTranslation(db, s.Translation)
	if err != nil {
		return nil, 0, err
	}
	if s.HasSource {
		src, err := core.RestoreMVDB(s.Source)
		if err != nil {
			return nil, 0, fmt.Errorf("mvindex: restoring source MVDB: %w", err)
		}
		tr.SetSource(src, s.Opts)
	}
	m, err := obdd.Restore(s.Manager)
	if err != nil {
		return nil, 0, err
	}
	root := obdd.NodeID(s.Root)
	if root < 0 || int(root) >= m.NumNodes() {
		return nil, 0, fmt.Errorf("mvindex: snapshot root %d out of range", root)
	}
	// ¬W's root is stored; W = ¬¬W.
	tr.AttachOBDD(m, m.Not(root))
	ix, err := Build(tr)
	if err != nil {
		return nil, 0, err
	}
	if s.Reordered {
		// The learned order was restored with the manager; mark the index so
		// no sifting search re-runs and delta recompiles keep inheriting it.
		ri := s.Reorder
		ri.Provenance = "snapshot"
		if ri.BlockProvenance == nil {
			ri.BlockProvenance = map[string]int{}
		}
		ix.reorder = &ri
	}
	return ix, s.LastSeq, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error { return ix.SaveFileSeq(path, 0) }

// SaveFileSeq writes the index and the covered WAL sequence number to a file,
// atomically: the snapshot lands under a temporary name, is fsynced, and is
// renamed into place, so a crash mid-write never corrupts the previous
// snapshot.
func (ix *Index) SaveFileSeq(path string, lastSeq uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ix.SaveSeq(f, lastSeq); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	ix, _, err := LoadFileSeq(path)
	return ix, err
}

// LoadFileSeq reads an index and its covered WAL sequence number from a file.
func LoadFileSeq(path string) (*Index, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadSeq(f)
}
