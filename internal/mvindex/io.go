package mvindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/obdd"
)

// indexSnapshot is the serialized MV-index: the translated database, the
// translation metadata, the OBDD manager, and the ¬W root. The augmentation
// (probUnder, reachability, chain blocks, indices, CC layout) is recomputed
// on load — it is linear in the index size and depends on the tuple
// weights, which keeps saved indexes valid under Reweight-style workflows.
type indexSnapshot struct {
	Magic       string
	DB          engine.DatabaseSnapshot
	Translation core.TranslationSnapshot
	Manager     obdd.Snapshot
	Root        int32
}

const snapshotMagic = "mvindex-v1"

// Save serializes the index (including the translated database) as one
// gob message.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := indexSnapshot{
		Magic:       snapshotMagic,
		DB:          ix.tr.DB.Snapshot(),
		Translation: ix.tr.Snapshot(),
		Manager:     ix.m.Snapshot(),
		Root:        int32(ix.root),
	}
	if err := gob.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("mvindex: encoding index: %w", err)
	}
	return bw.Flush()
}

// Read deserializes an index written by Save. The returned index is
// fully functional: the inner translation is restored and its OBDD of W is
// attached, so no recompilation happens.
func Read(r io.Reader) (*Index, error) {
	var s indexSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&s); err != nil {
		return nil, fmt.Errorf("mvindex: decoding index: %w", err)
	}
	if s.Magic != snapshotMagic {
		return nil, fmt.Errorf("mvindex: bad snapshot magic %q", s.Magic)
	}
	db, err := engine.FromSnapshot(s.DB)
	if err != nil {
		return nil, err
	}
	tr, err := core.RestoreTranslation(db, s.Translation)
	if err != nil {
		return nil, err
	}
	m, err := obdd.Restore(s.Manager)
	if err != nil {
		return nil, err
	}
	root := obdd.NodeID(s.Root)
	if root < 0 || int(root) >= m.NumNodes() {
		return nil, fmt.Errorf("mvindex: snapshot root %d out of range", root)
	}
	// ¬W's root is stored; W = ¬¬W.
	tr.AttachOBDD(m, m.Not(root))
	return Build(tr)
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
