package mvindex

import (
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// chainMVDB builds an MVDB whose W has a separator, so the index is a chain
// of per-value blocks: n students, each with 1-2 advisor candidates,
// weighted view V(s) :- Adv(s,a).
func chainMVDB(n int64, seed int64) *core.MVDB {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	for s := int64(1); s <= n; s++ {
		db.MustInsert("Adv", 0.5+rng.Float64(), engine.Int(s), engine.Int(100+s))
		if rng.Intn(2) == 0 {
			db.MustInsert("Adv", 0.5+rng.Float64(), engine.Int(s), engine.Int(200+s))
		}
	}
	m := core.New(db)
	v, err := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2.5))
	if err != nil {
		panic(err)
	}
	if err := m.AddView(v); err != nil {
		panic(err)
	}
	return m
}

func buildIndex(t *testing.T, m *core.MVDB) (*core.Translation, *Index) {
	t.Helper()
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, ix
}

func TestIndexAgreesWithExact(t *testing.T) {
	m := chainMVDB(4, 5)
	_, ix := buildIndex(t, m)
	queries := []string{
		"Q() :- Adv(1,a)",
		"Q() :- Adv(2,a)",
		"Q() :- Adv(s,a)",
		"Q() :- Adv(1,a)\nQ() :- Adv(3,b)",
	}
	for _, src := range queries {
		q := ucq.MustParse(src)
		want, err := m.ProbExact(q.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []IntersectOptions{
			{},
			{CacheConscious: true},
			{NoEntryShortcut: true},
			{CacheConscious: true, NoEntryShortcut: true},
		} {
			got, err := ix.ProbBoolean(q.UCQ, opts)
			if err != nil {
				t.Fatalf("%q %+v: %v", src, opts, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%q %+v: P = %v want %v", src, opts, got, want)
			}
		}
	}
}

func TestIndexAgainstCoreOBDD(t *testing.T) {
	// Larger instance: cross-check against the Translation's own OBDD path
	// (no MLN enumeration).
	m := chainMVDB(60, 11)
	tr, ix := buildIndex(t, m)
	for _, s := range []int64{1, 17, 33, 60} {
		q := ucq.MustParse("Q(s) :- Adv(s,a)")
		b, _ := q.Bind([]engine.Value{engine.Int(s)})
		want, err := tr.ProbBoolean(b, core.MethodOBDD)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.ProbBoolean(b, IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("s=%d: index = %v obdd = %v", s, got, want)
		}
		gotCC, err := ix.ProbBoolean(b, IntersectOptions{CacheConscious: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotCC-want) > 1e-12+1e-9 {
			t.Errorf("s=%d: cc index = %v obdd = %v", s, gotCC, want)
		}
	}
}

func TestChainStructure(t *testing.T) {
	m := chainMVDB(30, 3)
	_, ix := buildIndex(t, m)
	if ix.Blocks() < 10 {
		t.Errorf("expected a long chain, got %d blocks (size %d)", ix.Blocks(), ix.Size())
	}
	// Chain roots must be strictly increasing in level.
	for i := 1; i < len(ix.chainLevels); i++ {
		if ix.chainLevels[i] <= ix.chainLevels[i-1] {
			t.Fatalf("chain levels not increasing: %v", ix.chainLevels)
		}
	}
	// Every indexed variable maps to a block whose level is <= its own.
	for v, b := range ix.varBlock {
		if ix.chainLevels[b] > int32(ix.m.Level(v)) {
			t.Errorf("var %d (level %d) mapped to later block (level %d)", v, ix.m.Level(v), ix.chainLevels[b])
		}
	}
}

func TestInterIntraIndexes(t *testing.T) {
	m := chainMVDB(10, 7)
	tr, ix := buildIndex(t, m)
	// Every NV variable occurs in the index and has nodes.
	nv := tr.DB.Relation(tr.NVRelations[0])
	for _, tup := range nv.Tuples {
		if len(ix.NodesOf(tup.Var)) == 0 {
			t.Errorf("NV var %d has no IntraBddIndex nodes", tup.Var)
		}
		if ix.BlockOf(tup.Var) < 0 {
			t.Errorf("NV var %d has no InterBddIndex block", tup.Var)
		}
	}
	if ix.BlockOf(999999) != -1 {
		t.Error("unknown var should map to block -1")
	}
}

func TestQueryAnswers(t *testing.T) {
	m := chainMVDB(5, 13)
	tr, ix := buildIndex(t, m)
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	got, err := ix.Query(q, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Query(q, core.MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
			t.Errorf("row %v: %v vs %v", got[i].Head, got[i].Prob, want[i].Prob)
		}
		if got[i].Prob < -1e-9 || got[i].Prob > 1+1e-9 {
			t.Errorf("row %v: probability %v outside [0,1]", got[i].Head, got[i].Prob)
		}
	}
}

func TestIndexWithDenialViews(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 2, engine.Int(2), engine.Int(12))
	m := core.New(db)
	v, _ := core.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", core.ConstWeight(0))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(1,a)")
	want, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P = %v want %v", got, want)
	}
}

func TestIndexNoViews(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustInsert("R", 1, engine.Int(1))
	m := core.New(db)
	_, ix := buildIndex(t, m)
	if ix.ProbNotW() != 1 {
		t.Errorf("P(¬W) = %v want 1", ix.ProbNotW())
	}
	q := ucq.MustParse("Q() :- R(1)")
	got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P = %v want 0.5", got)
	}
}

func TestIndexRandomizedAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		n := 2 + rng.Int63n(2)
		for i := int64(1); i <= n; i++ {
			if rng.Intn(3) > 0 {
				db.MustInsert("R", rng.Float64()*2, engine.Int(i))
			}
			if rng.Intn(3) > 0 {
				db.MustInsert("S", rng.Float64()*2, engine.Int(i), engine.Int(10+i))
			}
		}
		if db.NumVars() < 2 {
			continue
		}
		m := core.New(db)
		w := rng.Float64() * 3
		v, _ := core.ParseView("V(x) :- R(x), S(x,y)", core.ConstWeight(w))
		if err := m.AddView(v); err != nil {
			t.Fatal(err)
		}
		tr, err := m.Translate(core.TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		queries := []string{"Q() :- R(x)", "Q() :- S(x,y)", "Q() :- R(1), S(1,y)"}
		for _, src := range queries {
			q := ucq.MustParse(src)
			want, err := m.ProbExact(q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			for _, cc := range []bool{false, true} {
				got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: cc})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d %q cc=%v: %v want %v", trial, src, cc, got, want)
				}
			}
		}
	}
}

func TestPairMemo(t *testing.T) {
	m := newPairMemo(4)
	keys := make([]int64, 0, 2000)
	for i := 1; i <= 2000; i++ {
		k := int64(i)<<32 | int64(i*7+1)
		keys = append(keys, k)
		m.put(k, float64(i)*0.5)
	}
	for i, k := range keys {
		v, ok := m.get(k)
		if !ok || v != float64(i+1)*0.5 {
			t.Fatalf("get(%d) = %v,%v", k, v, ok)
		}
	}
	if _, ok := m.get(int64(5) << 40); ok {
		t.Error("phantom key found")
	}
	// Overwrite.
	m.put(keys[0], 99)
	if v, _ := m.get(keys[0]); v != 99 {
		t.Error("overwrite failed")
	}
}

func TestPairMemoCollisions(t *testing.T) {
	// Keys engineered to collide in a tiny table exercise linear probing.
	m := newPairMemo(16)
	for i := int64(1); i <= 64; i++ {
		m.put(i<<32|1, float64(i))
	}
	for i := int64(1); i <= 64; i++ {
		if v, ok := m.get(i<<32 | 1); !ok || v != float64(i) {
			t.Fatalf("key %d: %v %v", i, v, ok)
		}
	}
}

func TestExplain(t *testing.T) {
	m := chainMVDB(40, 17)
	_, ix := buildIndex(t, m)
	// A query touching a single block must visit far fewer pairs than the
	// index has nodes and must enter past block 0.
	q := ucq.MustParse("Q() :- Adv(30,a)")
	ex, err := ix.ExplainBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.EntryBlock == 0 {
		t.Errorf("entry block = 0 for a late-block query: %+v", ex)
	}
	if ex.PairsVisited >= ix.Size() {
		t.Errorf("visited %d pairs, index has %d nodes", ex.PairsVisited, ix.Size())
	}
	if ex.Prob <= 0 || ex.Prob > 1 {
		t.Errorf("prob = %v", ex.Prob)
	}
	// Cross-check the probability against the regular path.
	want, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Prob-want) > 1e-12 {
		t.Errorf("explain prob %v vs %v", ex.Prob, want)
	}
	if ex.String() == "" {
		t.Error("empty explain string")
	}
	// False query.
	q = ucq.MustParse("Q() :- Adv(99999,a)")
	ex, err = ix.ExplainBoolean(q.UCQ, IntersectOptions{})
	if err != nil || ex.Prob != 0 {
		t.Errorf("false query explain = %+v, %v", ex, err)
	}
}

func TestTupleMarginal(t *testing.T) {
	m := chainMVDB(5, 21)
	tr, ix := buildIndex(t, m)
	adv := tr.DB.Relation("Adv")
	for _, tup := range adv.Tuples {
		got, err := ix.TupleMarginal(tup.Var, IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check against exact MLN enumeration.
		q := ucq.MustParse(
			"Q() :- Adv(" + tup.Vals[0].String() + "," + tup.Vals[1].String() + ")")
		want, err := m.ProbExact(q.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("var %d: marginal %v exact %v", tup.Var, got, want)
		}
		// The view's positive weight (2.5) must raise the marginal above the
		// independent prior.
		prior := engine.WeightToProb(tup.Weight)
		if got <= prior {
			t.Errorf("var %d: marginal %v not above prior %v despite w=2.5", tup.Var, got, prior)
		}
	}
	if _, err := ix.TupleMarginal(999999, IntersectOptions{}); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestCompact(t *testing.T) {
	m := chainMVDB(30, 33)
	_, ix := buildIndex(t, m)
	q := ucq.MustParse("Q() :- Adv(7,a)")
	want, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Run a few queries to grow the manager with query OBDDs.
	for s := int64(1); s <= 20; s++ {
		qq := ucq.MustParse("Q() :- Adv(" + engine.Int(s).String() + ",a)")
		if _, err := ix.ProbBoolean(qq.UCQ, IntersectOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	grown := ix.Manager().NumNodes()
	freed := ix.Compact()
	if freed <= 0 {
		t.Errorf("Compact freed %d nodes (manager had %d)", freed, grown)
	}
	got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("probability changed after Compact: %v vs %v", got, want)
	}
	if ix.Size() == 0 || ix.Blocks() == 0 {
		t.Errorf("index degenerated after Compact: size=%d blocks=%d", ix.Size(), ix.Blocks())
	}
}

func TestAllTupleMarginals(t *testing.T) {
	m := chainMVDB(5, 27)
	tr, ix := buildIndex(t, m)
	all, err := ix.AllTupleMarginals()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != tr.DB.NumVars()+1 {
		t.Fatalf("len = %d", len(all))
	}
	for v := 1; v <= tr.DB.NumVars(); v++ {
		want, err := ix.TupleMarginal(v, IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(all[v]-want) > 1e-9 {
			t.Errorf("var %d: all-pass %v single %v", v, all[v], want)
		}
	}
}

func TestAllTupleMarginalsUnconstrainedVar(t *testing.T) {
	// A tuple not participating in any view keeps its prior.
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustCreateRelation("Free", false, "x")
	db.MustInsert("Adv", 2, engine.Int(1), engine.Int(10))
	vFree := db.MustInsert("Free", 3, engine.Int(7)) // p = 0.75
	m := core.New(db)
	v, _ := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	_, ix := buildIndex(t, m)
	all, err := ix.AllTupleMarginals()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all[vFree]-0.75) > 1e-12 {
		t.Errorf("free var marginal %v want 0.75", all[vFree])
	}
	// The Adv tuple is boosted by the positive view.
	if all[1] <= engine.WeightToProb(2) {
		t.Errorf("constrained var %v not boosted above prior", all[1])
	}
	// Exact cross-check.
	q := ucq.MustParse("Q() :- Adv(1,10)")
	want, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all[1]-want) > 1e-9 {
		t.Errorf("marginal %v exact %v", all[1], want)
	}
}

// TestDeepChainNumericalStability: at thousands of blocks the global
// P0(¬W) underflows float64, but block-local evaluation must stay exact.
func TestDeepChainNumericalStability(t *testing.T) {
	const n = 4000
	m := chainMVDB(n, 41)
	_, ix := buildIndex(t, m)
	if ix.ProbNotW() != 0 {
		t.Logf("P0(¬W) still representable: %v (test remains valid)", ix.ProbNotW())
	}
	logAbs, sign := ix.LogProbNotW()
	if sign == 0 || math.IsInf(logAbs, -1) {
		t.Fatalf("log P0(¬W) degenerate: %v, %d", logAbs, sign)
	}
	// Every per-student query must agree with an equivalent tiny MVDB
	// (blocks are independent, so student s's marginal only depends on its
	// own block — compare against a 1-student database with the same seed
	// structure is impractical; instead verify against exact enumeration of
	// the restricted sub-MVDB built from student s's tuples).
	for _, s := range []int64{1, 2000, 4000} {
		q := ucq.MustParse("Q() :- Adv(" + engine.Int(s).String() + ",a)")
		got, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("student %d: P = %v", s, got)
		}
		gotCC, err := ix.ProbBoolean(q.UCQ, IntersectOptions{CacheConscious: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-gotCC) > 1e-12 {
			t.Errorf("student %d: layouts disagree %v vs %v", s, got, gotCC)
		}
	}
	// All marginals finite and in range for real tuples.
	marg, err := ix.AllTupleMarginals()
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range marg[1:] {
		if ix.tr.IsNVVar(v + 1) {
			continue
		}
		if math.IsNaN(p) || p < -1e-9 || p > 1+1e-9 {
			t.Fatalf("var %d: marginal %v", v+1, p)
		}
	}
}

// TestDeepChainMatchesShallow: the marginal of one student in a deep chain
// equals the marginal of the same structure in a tiny database (blocks are
// independent).
func TestDeepChainMatchesShallow(t *testing.T) {
	// chainMVDB is seeded per student deterministically only through the
	// shared rng stream, so build a custom pair instead: one student with
	// fixed weights inside a deep chain vs alone.
	build := func(extra int64) (*core.MVDB, int64) {
		db := engine.NewDatabase()
		db.MustCreateRelation("Adv", false, "s", "a")
		// The student under test, with two candidates and fixed weights.
		db.MustInsert("Adv", 1.5, engine.Int(1), engine.Int(100))
		db.MustInsert("Adv", 0.8, engine.Int(1), engine.Int(200))
		for s := int64(2); s <= extra; s++ {
			db.MustInsert("Adv", 1.1, engine.Int(s), engine.Int(100+s))
		}
		m := core.New(db)
		v, _ := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2.5))
		if err := m.AddView(v); err != nil {
			panic(err)
		}
		return m, 1
	}
	deep, s := build(3000)
	shallow, _ := build(1)
	want, err := shallow.ProbExact(ucq.MustParse("Q() :- Adv(1,100)").UCQ)
	if err != nil {
		t.Fatal(err)
	}
	trDeep, err := deep.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ixDeep, err := Build(trDeep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ixDeep.ProbBoolean(ucq.MustParse("Q() :- Adv(1,100)").UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("deep-chain marginal %v vs shallow exact %v", got, want)
	}
}

func TestInconsistentViewsErrorThroughIndex(t *testing.T) {
	// A denial view over a deterministic fact forbids every world.
	db := engine.NewDatabase()
	db.MustCreateRelation("D", true, "x")
	db.MustCreateRelation("R", false, "x")
	db.MustInsertDet("D", engine.Int(1))
	db.MustInsert("R", 1, engine.Int(1))
	m := core.New(db)
	v, _ := core.ParseView("V(x) :- D(x)", core.ConstWeight(0))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, sign := ix.LogProbNotW(); sign != 0 {
		t.Errorf("inconsistent views should give sign 0, got %d", sign)
	}
	q := ucq.MustParse("Q() :- R(1)")
	if _, err := ix.ProbBoolean(q.UCQ, IntersectOptions{}); err == nil {
		t.Error("inconsistent views: expected error")
	}
	if _, err := ix.AllTupleMarginals(); err == nil {
		t.Error("marginals on inconsistent views: expected error")
	}
	if _, err := ix.ExplainBoolean(q.UCQ, IntersectOptions{}); err == nil {
		t.Error("explain on inconsistent views: expected error")
	}
}
