package obdd

import (
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// testVarMap maps old variable ids to new ones by tuple identity (relation +
// full values), the same mapping the MV-index maintenance uses.
func testVarMap(oldDB, newDB *engine.Database) func(int) (int, bool) {
	return func(v int) (int, bool) {
		ref, err := oldDB.VarRef(v)
		if err != nil {
			return 0, false
		}
		t := oldDB.Relation(ref.Rel).Tuples[ref.Pos]
		nr := newDB.Relation(ref.Rel)
		if nr == nil {
			return 0, false
		}
		i := nr.Lookup(t.Vals)
		if i < 0 || nr.Tuples[i].Var == 0 {
			return 0, false
		}
		return nr.Tuples[i].Var, true
	}
}

// diffByKey lists tuples present in exactly one of the two databases.
func diffByKey(a, b *engine.Database) []ChangedTuple {
	var out []ChangedTuple
	for _, name := range a.Relations() {
		ra, rb := a.Relation(name), b.Relation(name)
		for _, t := range ra.Tuples {
			if rb == nil || rb.Lookup(t.Vals) < 0 {
				out = append(out, ChangedTuple{Rel: name, Vals: t.Vals})
			}
		}
	}
	for _, name := range b.Relations() {
		ra, rb := a.Relation(name), b.Relation(name)
		for _, t := range rb.Tuples {
			if ra == nil || ra.Lookup(t.Vals) < 0 {
				out = append(out, ChangedTuple{Rel: name, Vals: t.Vals})
			}
		}
	}
	return out
}

// TestCompileRecordedEquivalent: the recorded compile (top-level separator
// expansion) must produce an OBDD structurally identical to the plain
// compiler, with the per-value roots actually covering the chain.
func TestCompileRecordedEquivalent(t *testing.T) {
	q := ucq.MustParse("Q() :- R(x), S(x,y)\nQ() :- S(x,z), S(x,w), z <> w").UCQ
	sep, ok := q.FindSeparatorSkip(ucq.SkipGround)
	if !ok {
		t.Fatal("no separator")
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randSepDB(rng, 4+rng.Int63n(10))
		pi := SeparatorFirstPerm(db, sep)
		for _, par := range []int{1, 4} {
			m, f, s, err := Compile(db, q, pi, CompileOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			mr, fr, rec, _, err := CompileRecorded(db, q, pi, CompileOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !StructEqual(m, f, mr, fr) {
				t.Fatalf("seed %d par %d: recorded compile differs structurally", seed, par)
			}
			if !rec.HasSep || len(rec.Values) != len(rec.Roots) {
				t.Fatalf("seed %d: bad record %+v", seed, rec)
			}
			probs := db.Probs()
			a, b := m.Prob(f, probs), mr.Prob(fr, probs)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("seed %d: prob %v vs %v", seed, a, b)
			}
			_ = s
		}
	}
}

// mutateSepDB applies a random interleaving of inserts, deletes and
// reweights to a clone of db and returns the mutated copy.
func mutateSepDB(rng *rand.Rand, db *engine.Database, n int64) *engine.Database {
	out := db.Clone()
	for step := 0; step < 1+rng.Intn(6); step++ {
		rel := []string{"R", "S"}[rng.Intn(2)]
		r := out.Relation(rel)
		switch {
		case rng.Intn(3) == 0 && r.Len() > 0: // delete
			t := r.Tuples[rng.Intn(r.Len())]
			if _, err := out.DeleteTuple(rel, t.Vals); err != nil {
				panic(err)
			}
		case rng.Intn(2) == 0 && r.Len() > 0: // reweight
			t := r.Tuples[rng.Intn(r.Len())]
			if _, err := out.UpdateWeight(rel, t.Vals, rng.Float64()*3); err != nil {
				panic(err)
			}
		default: // insert
			var vals []engine.Value
			if rel == "R" {
				vals = []engine.Value{engine.Int(1 + rng.Int63n(n+3))}
			} else {
				vals = []engine.Value{engine.Int(1 + rng.Int63n(n+3)), engine.Int(rng.Int63n(2000))}
			}
			if !out.HasTuple(rel, vals) {
				out.MustInsert(rel, rng.Float64()*3, vals...)
			}
		}
	}
	return out
}

// TestCompileDeltaProperty: over random databases and random mutation
// batches — chained, so records flow from delta to delta — the incremental
// compile must be structurally identical to a from-scratch compile of the
// mutated database.
func TestCompileDeltaProperty(t *testing.T) {
	q := ucq.MustParse("Q() :- R(x), S(x,y)\nQ() :- S(x,z), S(x,w), z <> w").UCQ
	sep, ok := q.FindSeparatorSkip(ucq.SkipGround)
	if !ok {
		t.Fatal("no separator")
	}
	rounds := 10
	if testing.Short() {
		rounds = 3
	}
	sawReuse := false
	for seed := int64(0); seed < int64(rounds); seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 4 + rng.Int63n(10)
		db := randSepDB(rng, n)
		pi := SeparatorFirstPerm(db, sep)
		oldM, _, rec, _, err := CompileRecorded(db, q, pi, CompileOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 5; batch++ {
			newDB := mutateSepDB(rng, db, n)
			changed := diffByKey(db, newDB)
			par := 1 + 3*rng.Intn(2) // 1 or 4 workers
			newPi := SeparatorFirstPerm(newDB, sep)
			dm, df, newRec, ds, _, err := CompileDelta(newDB, q, newPi, CompileOptions{Parallelism: par},
				oldM, rec, testVarMap(db, newDB), changed)
			if err != nil {
				t.Fatal(err)
			}
			fm, ff, _, err := Compile(newDB, q, newPi, CompileOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !StructEqual(dm, df, fm, ff) {
				t.Fatalf("seed %d batch %d: delta OBDD differs from scratch (%+v, changed %v)",
					seed, batch, ds, changed)
			}
			probs := newDB.Probs()
			a, b := dm.Prob(df, probs), fm.Prob(ff, probs)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("seed %d batch %d: prob %v vs %v", seed, batch, a, b)
			}
			if ds.Reused > 0 {
				sawReuse = true
			}
			db, oldM, rec = newDB, dm, newRec
		}
	}
	if !sawReuse {
		t.Fatal("no delta compile ever reused a block; incremental path untested")
	}
}

// TestCompileDeltaFallbacks: missing record, changed query and weight-only
// changes all behave correctly.
func TestCompileDeltaFallbacks(t *testing.T) {
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	rng := rand.New(rand.NewSource(9))
	db := randSepDB(rng, 8)
	pi := SeparatorFirstPerm(db, sep)

	// No record: full recompile, still correct.
	m, f, rec, ds, _, err := CompileDelta(db, q, pi, CompileOptions{Parallelism: 1}, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Full || !rec.HasSep {
		t.Fatalf("expected full fallback with a fresh record, got %+v", ds)
	}
	fm, ff, _, _ := Compile(db, q, pi, CompileOptions{Parallelism: 1})
	if !StructEqual(m, f, fm, ff) {
		t.Fatal("full fallback differs from scratch")
	}

	// Changed query: full recompile.
	q2 := ucq.MustParse("Q() :- R(x), S(x,y), y > 100").UCQ
	_, _, _, ds2, _, err := CompileDelta(db, q2, pi, CompileOptions{Parallelism: 1}, m, rec, testVarMap(db, db), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Full {
		t.Fatal("query change must force a full recompile")
	}

	// No structural change at all: every block reused.
	m3, f3, _, ds3, _, err := CompileDelta(db, q, pi, CompileOptions{Parallelism: 1}, m, rec, testVarMap(db, db), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Recompiled != 0 || ds3.Reused != ds3.Blocks {
		t.Fatalf("no-op delta recompiled blocks: %+v", ds3)
	}
	if !StructEqual(m3, f3, fm, ff) {
		t.Fatal("no-op delta differs from scratch")
	}
}

// TestImportMapped: renaming import across managers with different orders.
func TestImportMapped(t *testing.T) {
	src := NewManager([]int{1, 2, 3})
	// f = (x1 AND x3) OR x2
	x1 := src.MkNode(0, False, True)
	x3 := src.MkNode(2, False, True)
	and13 := src.And(x1, x3)
	x2 := src.MkNode(1, False, True)
	f := src.Or(and13, x2)

	// Same order, shifted ids.
	dst := NewManager([]int{10, 20, 30})
	shift := func(v int) (int, bool) { return v * 10, true }
	g, err := dst.ImportMapped(src, f, shift)
	if err != nil {
		t.Fatal(err)
	}
	// Check semantics by evaluating all 8 assignments.
	for bits := 0; bits < 8; bits++ {
		assign := func(v int) bool { return bits&(1<<(v-1)) != 0 }
		want := (assign(1) && assign(3)) || assign(2)
		if got := dst.Eval(g, func(v int) bool { return assign(v / 10) }); got != want {
			t.Fatalf("bits %b: got %v want %v", bits, got, want)
		}
	}

	// Unmapped variable errors.
	if _, err := dst.ImportMapped(src, f, func(v int) (int, bool) {
		if v == 2 {
			return 0, false
		}
		return v * 10, true
	}); err == nil {
		t.Fatal("unmapped variable must error")
	}

	// Order-violating map errors (reverses 1 and 3).
	if _, err := dst.ImportMapped(src, f, func(v int) (int, bool) {
		return map[int]int{1: 30, 2: 20, 3: 10}[v], true
	}); err == nil {
		t.Fatal("non-monotone mapping must error")
	}
}
