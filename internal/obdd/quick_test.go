package obdd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mvdb/internal/lineage"
)

// dnfCase is a random monotone DNF with per-variable probabilities,
// generated for property-based testing.
type dnfCase struct {
	NumVars int
	DNF     lineage.DNF
	Probs   []float64
}

// Generate implements quick.Generator.
func (dnfCase) Generate(rng *rand.Rand, size int) reflect.Value {
	nv := 2 + rng.Intn(6)
	d := make(lineage.DNF, 1+rng.Intn(5))
	for i := range d {
		term := make([]int, 1+rng.Intn(4))
		for j := range term {
			term[j] = 1 + rng.Intn(nv)
		}
		d[i] = lineage.Term(term...)
	}
	probs := make([]float64, nv+1)
	for i := 1; i <= nv; i++ {
		probs[i] = rng.Float64()*2 - 0.5 // includes negative probabilities
	}
	return reflect.ValueOf(dnfCase{NumVars: nv, DNF: d, Probs: probs})
}

// TestQuickOBDDProbMatchesBruteForce: for any monotone DNF and any
// probability vector (negative entries included), the OBDD probability
// equals the brute-force sum over assignments.
func TestQuickOBDDProbMatchesBruteForce(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		want := bfProb(c.DNF, c.Probs)
		got := m.Prob(g, c.Probs)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickOBDDCanonical: two structurally different constructions of the
// same function yield the same NodeID (hash-consing canonicity).
func TestQuickOBDDCanonical(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		// Forward fold and reverse fold build the same function.
		a := buildFromDNF(m, c.DNF)
		rev := make(lineage.DNF, len(c.DNF))
		for i, term := range c.DNF {
			rev[len(c.DNF)-1-i] = term
		}
		b := buildFromDNF(m, rev)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan: ¬(f ∨ g) == ¬f ∧ ¬g on the hash-consed manager.
func TestQuickDeMorgan(t *testing.T) {
	f := func(c1, c2 dnfCase) bool {
		nv := c1.NumVars
		if c2.NumVars > nv {
			nv = c2.NumVars
		}
		m := NewManager(seqOrder(nv))
		a := buildFromDNF(m, c1.DNF)
		b := buildFromDNF(m, c2.DNF)
		return m.Not(m.Or(a, b)) == m.And(m.Not(a), m.Not(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickReduced: every node in a constructed OBDD is reduced (lo != hi)
// and ordered (children at strictly greater levels).
func TestQuickReduced(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		for _, id := range m.Reachable(g) {
			n := m.nodes[id]
			if n.lo == n.hi {
				return false
			}
			if !m.IsTerminal(n.lo) && m.nodes[n.lo].level <= n.level {
				return false
			}
			if !m.IsTerminal(n.hi) && m.nodes[n.hi].level <= n.level {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// refProb is a map-memoized reference for Manager.Prob, independent of the
// kernel's pooled dense memos.
func refProb(m *Manager, x NodeID, probs []float64, memo map[NodeID]float64) float64 {
	switch x {
	case False:
		return 0
	case True:
		return 1
	}
	if p, ok := memo[x]; ok {
		return p
	}
	p := probs[m.VarAtLevel(int(m.NodeLevel(x)))]
	r := (1-p)*refProb(m, m.Lo(x), probs, memo) + p*refProb(m, m.Hi(x), probs, memo)
	memo[x] = r
	return r
}

// refNot is a map-memoized reference for Manager.Not.
func refNot(m *Manager, x NodeID, memo map[NodeID]NodeID) NodeID {
	switch x {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := memo[x]; ok {
		return r
	}
	r := m.MkNode(m.NodeLevel(x), refNot(m, m.Lo(x), memo), refNot(m, m.Hi(x), memo))
	memo[x] = r
	return r
}

// refImport is a map-memoized reference for Manager.Import.
func refImport(dst, src *Manager, x NodeID, memo map[NodeID]NodeID) NodeID {
	if x <= True {
		return x
	}
	if r, ok := memo[x]; ok {
		return r
	}
	r := dst.MkNode(src.NodeLevel(x), refImport(dst, src, src.Lo(x), memo), refImport(dst, src, src.Hi(x), memo))
	memo[x] = r
	return r
}

// TestQuickProbMatchesMapReference: the pooled dense-memo Prob equals a
// plain map-memoized recursion, across many managers reusing pooled memos.
func TestQuickProbMatchesMapReference(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		want := refProb(m, g, c.Probs, map[NodeID]float64{})
		return math.Abs(m.Prob(g, c.Probs)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNotMatchesMapReference: dense-memo Not returns the identical
// NodeID as the map-memoized reference (canonicity pins both to one id).
func TestQuickNotMatchesMapReference(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		return m.Not(g) == refNot(m, g, map[NodeID]NodeID{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickImportMatchesMapReference: dense-memo Import lands on the same
// NodeID as the map-memoized reference, and preserves probabilities.
func TestQuickImportMatchesMapReference(t *testing.T) {
	f := func(c dnfCase) bool {
		src := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(src, c.DNF)
		dst := NewManager(seqOrder(c.NumVars))
		got := dst.Import(src, g)
		want := refImport(dst, src, g, map[NodeID]NodeID{})
		if got != want {
			return false
		}
		return math.Abs(dst.Prob(got, c.Probs)-src.Prob(g, c.Probs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickShannon: P(f) = (1-p)·P(f|x=0) + p·P(f|x=1) at the root.
func TestQuickShannon(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		if m.IsTerminal(g) {
			return true
		}
		p := c.Probs[m.VarAtLevel(int(m.NodeLevel(g)))]
		want := (1-p)*m.Prob(m.Lo(g), c.Probs) + p*m.Prob(m.Hi(g), c.Probs)
		return math.Abs(m.Prob(g, c.Probs)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
