package obdd

import (
	"fmt"
	"io"
	"sort"
)

// WriteDot renders the OBDD rooted at f in Graphviz DOT format: variable
// nodes labeled by their external variable id (via the labeler, when
// given), dashed edges for the 0-branch, solid for the 1-branch, box
// terminals. Useful for inspecting small indexes and for documentation.
func (m *Manager) WriteDot(w io.Writer, f NodeID, name string, label func(v int) string) error {
	if label == nil {
		label = func(v int) string { return fmt.Sprintf("x%d", v) }
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n", name); err != nil {
		return err
	}
	fmt.Fprintln(w, `  f [shape=box,label="0"]; t [shape=box,label="1"];`)

	nodes := m.Reachable(f)
	sort.Slice(nodes, func(i, j int) bool { return m.NodeLevel(nodes[i]) < m.NodeLevel(nodes[j]) })
	// Group nodes by level (same rank) for a readable layout.
	byLevel := map[int32][]NodeID{}
	for _, id := range nodes {
		l := m.NodeLevel(id)
		byLevel[l] = append(byLevel[l], id)
	}
	var levels []int32
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })

	ref := func(id NodeID) string {
		switch id {
		case False:
			return "f"
		case True:
			return "t"
		}
		return fmt.Sprintf("n%d", id)
	}
	for _, l := range levels {
		fmt.Fprintf(w, "  { rank=same;")
		for _, id := range byLevel[l] {
			fmt.Fprintf(w, " n%d;", id)
		}
		fmt.Fprintln(w, " }")
		for _, id := range byLevel[l] {
			fmt.Fprintf(w, "  n%d [label=%q];\n", id, label(m.VarAtLevel(int(l))))
			fmt.Fprintf(w, "  n%d -> %s [style=dashed];\n", id, ref(m.Lo(id)))
			fmt.Fprintf(w, "  n%d -> %s;\n", id, ref(m.Hi(id)))
		}
	}
	if m.IsTerminal(f) {
		fmt.Fprintf(w, "  root [shape=plaintext,label=\"root\"]; root -> %s;\n", ref(f))
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
