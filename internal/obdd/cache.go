package obdd

import "sync"

// applyCache is the CUDD-style computed table for Apply: a fixed-size
// direct-mapped cache of (op, f, g) → result. Entries are overwritten on
// collision (lossy) — hash-consing makes every recomputation return the
// identical NodeID, so losing an entry costs time, never correctness or
// canonicity. Keys pack op|f|g into one uint64 (both operands are int32 ids
// after terminal short-circuiting, so 31+31+1 bits fit); key 0 marks an
// empty slot, unreachable because g ≥ 2 in every cached call.
//
// The cache starts tiny (scratch managers must stay cheap to create) and
// doubles whenever the node store outgrows it, re-inserting the old entries,
// up to the manager's configured maximum (SetApplyCacheMax /
// CompileOptions.ApplyCacheSize).
type applyCache struct {
	keys []uint64
	vals []NodeID
	max  int // maximum number of entries (power of two)

	// hits/misses count get outcomes. Plain counters: the cache is only
	// consulted during node-creating operations, which the manager's
	// concurrency contract already restricts to a single goroutine; reading
	// them follows the same contract as other manager reads (frozen manager,
	// or the owning goroutine).
	hits, misses uint64
}

const (
	applyCacheInitial = 128
	// DefaultApplyCacheSize is the default cap on apply/computed-table
	// entries (1M entries ≈ 12 MiB). See SetApplyCacheMax.
	DefaultApplyCacheSize = 1 << 20
)

func applyKeyPack(op opKind, f, g NodeID) uint64 {
	return uint64(op)<<62 | uint64(uint32(f))<<31 | uint64(uint32(g))
}

func (c *applyCache) init(max int) {
	c.max = ceilPow2(max)
	n := applyCacheInitial
	if n > c.max {
		n = c.max
	}
	c.keys = make([]uint64, n)
	c.vals = make([]NodeID, n)
}

func (c *applyCache) slot(key uint64) uint64 {
	return (key * mixA) >> 32 & uint64(len(c.keys)-1)
}

func (c *applyCache) get(key uint64) (NodeID, bool) {
	i := c.slot(key)
	if c.keys[i] == key {
		return c.vals[i], true
	}
	return 0, false
}

func (c *applyCache) put(key uint64, r NodeID) {
	i := c.slot(key)
	c.keys[i] = key
	c.vals[i] = r
}

// maybeGrow doubles the cache (re-inserting surviving entries) while the
// node store is larger than the cache and the cap allows. Called on node
// allocation, so the cache tracks roughly one entry per live node until it
// hits max.
func (c *applyCache) maybeGrow(numNodes int) {
	for numNodes > len(c.keys) && len(c.keys) < c.max {
		old := c.keys
		oldVals := c.vals
		c.keys = make([]uint64, len(old)*2)
		c.vals = make([]NodeID, len(old)*2)
		for i, k := range old {
			if k != 0 {
				c.put(k, oldVals[i])
			}
		}
	}
}

// reset drops every entry in place — a memclr, no reallocation.
func (c *applyCache) reset() {
	clear(c.keys)
}

func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// --- dense per-call memos ---
//
// The traversals that used to allocate a map[NodeID]X per call (Not, Prob,
// OrDisjoint/AndDisjoint, Import, Cofactor, Compact, Reachable) instead
// borrow a dense, NodeID-indexed scratch memo from a sync.Pool. Reset is
// O(1): each entry is valid only when its stamp equals the memo's current
// epoch, so reuse just bumps the epoch. The arrays grow to the largest
// manager they have served and are reused across calls and queries.
//
// For a huge manager a dense memo costs O(NumNodes) to allocate once; when a
// caller cannot promise the traversal touches a significant fraction of the
// store (dense=false) and no sufficiently large pooled array exists, the
// memo falls back to a small map — the small-query fallback that keeps a
// cold pool from allocating megabytes for a ten-node cone.

const sparseMemoCutoff = 1 << 20

// nodeMemo is a NodeID → NodeID memo.
type nodeMemo struct {
	val    []NodeID
	stamp  []uint32
	epoch  uint32
	sparse map[NodeID]NodeID
}

func (mm *nodeMemo) reset(n int, dense bool) {
	if !dense && n > sparseMemoCutoff && cap(mm.val) < n {
		mm.sparse = make(map[NodeID]NodeID, 64)
		return
	}
	mm.sparse = nil
	if cap(mm.val) < n {
		mm.val = make([]NodeID, n)
		mm.stamp = make([]uint32, n)
		mm.epoch = 1
		return
	}
	mm.val = mm.val[:cap(mm.val)]
	mm.stamp = mm.stamp[:cap(mm.val)]
	mm.epoch++
	if mm.epoch == 0 { // stamp wrap: one real clear every 2^32 resets
		clear(mm.stamp)
		mm.epoch = 1
	}
}

func (mm *nodeMemo) get(x NodeID) (NodeID, bool) {
	if mm.sparse != nil {
		r, ok := mm.sparse[x]
		return r, ok
	}
	if mm.stamp[x] == mm.epoch {
		return mm.val[x], true
	}
	return 0, false
}

func (mm *nodeMemo) put(x, r NodeID) {
	if mm.sparse != nil {
		mm.sparse[x] = r
		return
	}
	mm.stamp[x] = mm.epoch
	mm.val[x] = r
}

// floatMemo is a NodeID → float64 memo with the same contract.
type floatMemo struct {
	val    []float64
	stamp  []uint32
	epoch  uint32
	sparse map[NodeID]float64
}

func (mm *floatMemo) reset(n int, dense bool) {
	if !dense && n > sparseMemoCutoff && cap(mm.val) < n {
		mm.sparse = make(map[NodeID]float64, 64)
		return
	}
	mm.sparse = nil
	if cap(mm.val) < n {
		mm.val = make([]float64, n)
		mm.stamp = make([]uint32, n)
		mm.epoch = 1
		return
	}
	mm.val = mm.val[:cap(mm.val)]
	mm.stamp = mm.stamp[:cap(mm.val)]
	mm.epoch++
	if mm.epoch == 0 {
		clear(mm.stamp)
		mm.epoch = 1
	}
}

func (mm *floatMemo) get(x NodeID) (float64, bool) {
	if mm.sparse != nil {
		r, ok := mm.sparse[x]
		return r, ok
	}
	if mm.stamp[x] == mm.epoch {
		return mm.val[x], true
	}
	return 0, false
}

func (mm *floatMemo) put(x NodeID, r float64) {
	if mm.sparse != nil {
		mm.sparse[x] = r
		return
	}
	mm.stamp[x] = mm.epoch
	mm.val[x] = r
}

var nodeMemoPool = sync.Pool{New: func() any { return new(nodeMemo) }}
var floatMemoPool = sync.Pool{New: func() any { return new(floatMemo) }}

// getNodeMemo borrows a reset memo able to key nodes [0, n); dense promises
// the traversal is proportional to n (full-cone walks), permitting the
// up-front dense allocation on huge managers.
func getNodeMemo(n int, dense bool) *nodeMemo {
	mm := nodeMemoPool.Get().(*nodeMemo)
	mm.reset(n, dense)
	return mm
}

func putNodeMemo(mm *nodeMemo) { nodeMemoPool.Put(mm) }

func getFloatMemo(n int, dense bool) *floatMemo {
	mm := floatMemoPool.Get().(*floatMemo)
	mm.reset(n, dense)
	return mm
}

func putFloatMemo(mm *floatMemo) { floatMemoPool.Put(mm) }
