package obdd

import (
	"math/rand"
	"testing"
)

// TestUniqueTableGrowth drives the open-addressing unique table through many
// growth cycles and checks that every node stays findable and no duplicate
// ids appear.
func TestUniqueTableGrowth(t *testing.T) {
	order := make([]int, 64)
	for i := range order {
		order[i] = i + 1
	}
	m := NewManager(order)
	rng := rand.New(rand.NewSource(42))
	made := map[[3]int32]NodeID{}
	for i := 0; i < 20000; i++ {
		level := int32(rng.Intn(64))
		// Children must sit at deeper levels or be terminals; terminals are
		// enough to exercise the table.
		lo, hi := NodeID(rng.Intn(2)), NodeID(rng.Intn(2))
		if lo == hi {
			hi = 1 - lo
		}
		id := m.MkNode(level, lo, hi)
		key := [3]int32{level, int32(lo), int32(hi)}
		if prev, ok := made[key]; ok && prev != id {
			t.Fatalf("triple %v consed to %d then %d", key, prev, id)
		}
		made[key] = id
	}
	if got, want := len(made)+2, m.NumNodes(); got != want {
		t.Fatalf("unique triples %d + terminals != node count %d", got, want)
	}
	// Every recorded triple must still hash-cons to its original id.
	for key, id := range made {
		if got := m.MkNode(key[0], NodeID(key[1]), NodeID(key[2])); got != id {
			t.Fatalf("triple %v re-consed to %d, want %d", key, got, id)
		}
	}
}

// TestApplyCacheDirectMapped checks the lossy cache contract: hits return
// what was stored, colliding keys overwrite, and reset drops everything.
func TestApplyCacheDirectMapped(t *testing.T) {
	var c applyCache
	c.init(1 << 10)
	k1 := applyKeyPack(opOr, 5, 9)
	k2 := applyKeyPack(opAnd, 5, 9)
	c.put(k1, 77)
	if r, ok := c.get(k1); !ok || r != 77 {
		t.Fatalf("get(k1) = %d, %v", r, ok)
	}
	if _, ok := c.get(k2); ok {
		t.Fatal("different op hit the same entry as a match")
	}
	// Force a collision: two keys landing on the same slot overwrite.
	mask := uint64(len(c.keys) - 1)
	var k3 uint64
	for f := NodeID(2); ; f++ {
		k3 = applyKeyPack(opOr, f, 9)
		if k3 != k1 && (k3*mixA)>>32&mask == (k1*mixA)>>32&mask {
			break
		}
	}
	c.put(k3, 88)
	if _, ok := c.get(k1); ok {
		t.Fatal("overwritten entry still hits")
	}
	if r, ok := c.get(k3); !ok || r != 88 {
		t.Fatalf("get(k3) = %d, %v", r, ok)
	}
	c.reset()
	if _, ok := c.get(k3); ok {
		t.Fatal("entry survived reset")
	}
}

// TestApplyCacheGrowth: the cache doubles with the node store up to its cap,
// keeping surviving entries, and never exceeds max.
func TestApplyCacheGrowth(t *testing.T) {
	var c applyCache
	c.init(512)
	if len(c.keys) != applyCacheInitial {
		t.Fatalf("initial size %d, want %d", len(c.keys), applyCacheInitial)
	}
	c.maybeGrow(1 << 20)
	if len(c.keys) != 512 {
		t.Fatalf("grown size %d, want cap 512", len(c.keys))
	}
	c.init(1 << 10)
	k := applyKeyPack(opOr, 3, 7)
	c.put(k, 42)
	c.maybeGrow(1 << 9)
	if len(c.keys) != 1<<9 {
		t.Fatalf("grown size %d, want %d", len(c.keys), 1<<9)
	}
	if r, ok := c.get(k); !ok || r != 42 {
		t.Fatalf("entry lost across growth: %d, %v", r, ok)
	}
}

// TestNodeMemoEpochReset: reusing a pooled memo must not leak entries from
// the previous epoch, across many reset cycles.
func TestNodeMemoEpochReset(t *testing.T) {
	mm := getNodeMemo(100, true)
	mm.put(7, 42)
	if r, ok := mm.get(7); !ok || r != 42 {
		t.Fatalf("get(7) = %d, %v", r, ok)
	}
	putNodeMemo(mm)
	for i := 0; i < 10; i++ {
		mm = getNodeMemo(100, true)
		if _, ok := mm.get(7); ok {
			t.Fatalf("cycle %d: stale entry visible after reset", i)
		}
		mm.put(7, NodeID(i))
		putNodeMemo(mm)
	}
}

// TestNodeMemoSparseFallback: a small-query memo over a huge id space uses
// the map fallback instead of allocating a dense array.
func TestNodeMemoSparseFallback(t *testing.T) {
	mm := new(nodeMemo)
	mm.reset(sparseMemoCutoff+1, false)
	if mm.sparse == nil {
		t.Fatal("expected sparse fallback for a huge, non-dense reset")
	}
	mm.put(NodeID(sparseMemoCutoff), 9)
	if r, ok := mm.get(NodeID(sparseMemoCutoff)); !ok || r != 9 {
		t.Fatalf("sparse get = %d, %v", r, ok)
	}
	if _, ok := mm.get(3); ok {
		t.Fatal("sparse memo invented an entry")
	}
	// A dense reset promises full-cone traversal and always goes dense.
	mm.reset(64, true)
	if mm.sparse != nil {
		t.Fatal("dense reset kept the sparse map")
	}
	// Epoch wrap forces a real clear instead of serving stale stamps.
	mm.put(5, 11)
	mm.epoch = ^uint32(0)
	mm.stamp[5] = mm.epoch
	mm.reset(64, true)
	if _, ok := mm.get(5); ok {
		t.Fatal("entry survived an epoch wrap")
	}
}

// TestFloatMemoSparseFallback mirrors the nodeMemo fallback for floatMemo.
func TestFloatMemoSparseFallback(t *testing.T) {
	mm := new(floatMemo)
	mm.reset(sparseMemoCutoff+1, false)
	if mm.sparse == nil {
		t.Fatal("expected sparse fallback for a huge, non-dense reset")
	}
	mm.put(NodeID(12345), 0.5)
	if r, ok := mm.get(NodeID(12345)); !ok || r != 0.5 {
		t.Fatalf("sparse get = %g, %v", r, ok)
	}
	mm.reset(64, true)
	if mm.sparse != nil {
		t.Fatal("dense reset kept the sparse map")
	}
}
