package obdd

import (
	"fmt"
	"reflect"

	"mvdb/internal/budget"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// Incremental recompilation. A ConOBDD compiled through a top-level
// separator is a chain of per-separator-value blocks; a BlockRecord keeps
// the per-value roots so a later compile of the same W over a mutated
// database can reuse every block whose Boolean function is untouched.
// Correctness rests on two facts:
//
//   - Reduced OBDDs over a fixed order are canonical, so importing a clean
//     block's sub-OBDD (with variables renamed into the new order) yields
//     exactly the OBDD a from-scratch compile would build for it, and the
//     final OR of blocks is the canonical OBDD of W regardless of which
//     blocks were reused.
//   - A mutation to a tuple carrying separator value v can only change the
//     function of block v: every grounding using the tuple binds the
//     separator to v. Tuples the separator cannot localize (deterministic,
//     negated or ground atoms) conservatively dirty every block.
//
// A disjunct pruned from a block because its probe relation has no tuple at
// that value is identically false there, so probe-set differences at clean
// values never change block functions — reuse needs no probe bookkeeping.

// BlockRecord describes the top-level separator expansion of one compiled
// UCQ: the query, the separator, the sorted value domain and the per-value
// block roots in the compiled manager (False for empty blocks). HasSep is
// false when the query had no whole-union separator; incremental
// maintenance then falls back to full recompilation.
type BlockRecord struct {
	U      ucq.UCQ
	HasSep bool
	Sep    ucq.Separator
	Values []engine.Value
	Roots  []NodeID
}

// ChangedTuple identifies a tuple whose presence changed (inserted or
// deleted) between the recorded compilation and the current database.
type ChangedTuple struct {
	Rel  string
	Vals []engine.Value
}

// DeltaStats reports how an incremental compile proceeded.
type DeltaStats struct {
	Blocks     int  // non-empty separator blocks in the new chain
	Reused     int  // blocks imported unchanged from the old manager
	Recompiled int  // dirty or new blocks compiled from scratch
	Full       bool // fell back to a full recompile
}

// CompileRecorded compiles like Compile but also returns a BlockRecord for
// later incremental recompilation. When the whole union has a (determinism-
// aware) separator it is expanded at the top level — above the R1
// union-group split the plain compiler prefers — which yields the same
// canonical OBDD (possibly via a different construction order) while making
// every block individually addressable.
func CompileRecorded(db *engine.Database, u ucq.UCQ, pi Perm, opts CompileOptions) (*Manager, NodeID, *BlockRecord, CompileStats, error) {
	if err := pi.Validate(db); err != nil {
		return nil, False, nil, CompileStats{}, err
	}
	order, oerr := compileOrder(db, pi, opts)
	if oerr != nil {
		return nil, False, nil, CompileStats{}, oerr
	}
	m := NewManager(order)
	c, disarm := newArmedCompiler(m, db, opts)
	defer disarm()
	var f NodeID
	var rec *BlockRecord
	var ferr error
	err := budget.Catch(func() { f, rec, ferr = c.ucqRecorded(u) })
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, False, nil, c.stats, err
	}
	return m, f, rec, c.stats, nil
}

// CompileDelta recompiles u over the mutated database, reusing every block
// of the previous compilation (old manager + record) whose function is
// untouched by the changed tuples. varMap translates the old manager's
// external variable ids into the new database's (identity for surviving
// base tuples; NV tuples are re-matched by head values); it must be
// injective and order-preserving on the variables it maps — ImportMapped
// verifies the latter edge by edge and the block is recompiled on any
// failure. Falls back to a full (recorded) compile when the record is
// missing, the query changed, or the separator moved.
func CompileDelta(db *engine.Database, u ucq.UCQ, pi Perm, opts CompileOptions,
	old *Manager, oldRec *BlockRecord, varMap func(int) (int, bool),
	changed []ChangedTuple) (*Manager, NodeID, *BlockRecord, DeltaStats, CompileStats, error) {
	if err := pi.Validate(db); err != nil {
		return nil, False, nil, DeltaStats{}, CompileStats{}, err
	}
	order, oerr := compileOrder(db, pi, opts)
	if oerr != nil {
		return nil, False, nil, DeltaStats{}, CompileStats{}, oerr
	}
	m := NewManager(order)
	c, disarm := newArmedCompiler(m, db, opts)
	defer disarm()
	var f NodeID
	var rec *BlockRecord
	var ds DeltaStats
	var ferr error
	err := budget.Catch(func() { f, rec, ds, ferr = c.deltaOrFull(u, old, oldRec, varMap, changed) })
	if err == nil {
		err = ferr
	}
	if err != nil {
		return nil, False, nil, ds, c.stats, err
	}
	return m, f, rec, ds, c.stats, nil
}

// newArmedCompiler builds a compiler over m and arms the manager's budget
// when the options ask for one; the returned disarm must be deferred.
func newArmedCompiler(m *Manager, db *engine.Database, opts CompileOptions) (*compiler, func()) {
	if opts.ApplyCacheSize > 0 {
		m.SetApplyCacheMax(opts.ApplyCacheSize)
	}
	c := &compiler{m: m, db: db, opts: opts}
	if opts.bounded() {
		m.SetBudget(opts.Ctx, opts.Budget)
		return c, func() { m.SetBudget(nil, budget.Budget{}) }
	}
	return c, func() {}
}

// ucqRecorded mirrors ucq()'s top level (simplify, R4 ground split) but
// tries the separator expansion on the whole open union first, capturing
// the per-value block roots.
func (c *compiler) ucqRecorded(u ucq.UCQ) (NodeID, *BlockRecord, error) {
	rec := &BlockRecord{U: u}
	ground, open := c.splitLive(u)
	if ground == nil && open == nil {
		return False, rec, nil
	}
	results := make([]NodeID, 0, len(ground)+1)
	for _, d := range ground {
		f, err := c.groundCQ(d)
		if err != nil {
			return False, nil, err
		}
		results = append(results, f)
	}
	if len(open) > 0 {
		openU := ucq.UCQ{Disjuncts: open}
		if sep, ok := openU.FindSeparatorSkip(c.detSkip()); ok {
			domain, subs, est := c.sepExpand(openU, sep)
			roots := make([]NodeID, len(subs))
			chain, err := c.blockChain(subs, est, roots)
			if err != nil {
				return False, nil, err
			}
			rec.HasSep, rec.Sep, rec.Values, rec.Roots = true, sep, domain, roots
			results = append(results, chain)
		} else {
			f, err := c.openUCQ(openU)
			if err != nil {
				return False, nil, err
			}
			results = append(results, f)
		}
	}
	return c.combine(results, false), rec, nil
}

// splitLive simplifies the disjuncts and splits them into ground and open,
// as ucq() does. Both slices nil means the union is identically false.
func (c *compiler) splitLive(u ucq.UCQ) (ground, open []ucq.CQ) {
	for _, d := range u.Disjuncts {
		sd, ok := simplifyCQ(d)
		if !ok {
			continue
		}
		if !sd.HasVars() {
			ground = append(ground, sd)
		} else {
			open = append(open, sd)
		}
	}
	return ground, open
}

// deltaOrFull is the body of CompileDelta: reuse clean blocks, recompile
// dirty ones, or fall back to ucqRecorded when reuse is impossible.
func (c *compiler) deltaOrFull(u ucq.UCQ, old *Manager, oldRec *BlockRecord,
	varMap func(int) (int, bool), changed []ChangedTuple) (NodeID, *BlockRecord, DeltaStats, error) {
	full := func() (NodeID, *BlockRecord, DeltaStats, error) {
		f, rec, err := c.ucqRecorded(u)
		return f, rec, DeltaStats{Full: true}, err
	}
	if old == nil || oldRec == nil || !oldRec.HasSep || !reflect.DeepEqual(oldRec.U, u) {
		return full()
	}
	ground, open := c.splitLive(u)
	if len(open) == 0 {
		return full() // nothing block-structured to reuse
	}
	openU := ucq.UCQ{Disjuncts: open}
	sep, ok := openU.FindSeparatorSkip(c.detSkip())
	if !ok || !reflect.DeepEqual(sep, oldRec.Sep) {
		return full()
	}

	var ds DeltaStats
	domain, subs, est := c.sepExpand(openU, sep)
	dirty, dirtyAll := dirtyValues(openU, sep, c.detSkip(), changed)
	oldRoots := make(map[engine.Value]NodeID, len(oldRec.Values))
	for i, v := range oldRec.Values {
		oldRoots[v] = oldRec.Roots[i]
	}

	// First pass: import every clean block. A value is reusable when no
	// changed tuple dirties it and the old record has it; empty-to-nonempty
	// flips are impossible for clean values (they would require a presence
	// change at the value, which dirties it).
	roots := make([]NodeID, len(subs))
	reused := make([]bool, len(subs))
	for i, v := range domain {
		if len(subs[i].Disjuncts) == 0 {
			reused[i] = true // stays False on both sides
			continue
		}
		ds.Blocks++
		if dirtyAll || dirty[v] {
			continue
		}
		or, ok := oldRoots[v]
		if !ok {
			continue
		}
		img, err := c.m.ImportMapped(old, or, varMap)
		if err != nil {
			continue // unmapped or order-violating: recompile this block
		}
		roots[i], reused[i] = img, true
		ds.Reused++
	}

	// Second pass: compile the dirty blocks — through the parallel worker
	// pool when it pays — and chain everything in the usual descending
	// order.
	var toCompile []int
	for i := range subs {
		if !reused[i] {
			toCompile = append(toCompile, i)
		}
	}
	ds.Recompiled = len(toCompile)
	if workers := c.opts.workers(); workers > 1 && len(toCompile) > 1 {
		masked := make([]ucq.UCQ, len(subs))
		for _, i := range toCompile {
			masked[i] = subs[i]
		}
		// The chain parallelBlocks builds over the dirty subset is
		// discarded; only the captured per-block roots are kept.
		if _, err := c.parallelBlocks(masked, est, workers, roots); err != nil {
			return False, nil, ds, err
		}
	} else {
		for _, i := range toCompile {
			if err := c.blockCheck(i); err != nil {
				return False, nil, ds, err
			}
			f, err := c.ucq(subs[i])
			if err != nil {
				return False, nil, ds, err
			}
			roots[i] = f
		}
	}
	acc := False
	for i := len(subs) - 1; i >= 0; i-- {
		if roots[i] == False {
			continue
		}
		acc = c.or2(roots[i], acc)
	}

	results := make([]NodeID, 0, len(ground)+1)
	for _, d := range ground {
		f, err := c.groundCQ(d)
		if err != nil {
			return False, nil, ds, err
		}
		results = append(results, f)
	}
	results = append(results, acc)
	rec := &BlockRecord{U: u, HasSep: true, Sep: sep, Values: domain, Roots: roots}
	return c.combine(results, false), rec, ds, nil
}

// dirtyValues maps the changed tuples to the separator values whose blocks
// they can affect. A tuple grounding a separator-carrying atom binds the
// separator to the tuple's value at the relation's separator position, so
// only that block sees it; a tuple only reachable through skipped atoms
// (deterministic, negated, ground) cannot be localized and dirties all
// blocks (second return true).
func dirtyValues(openU ucq.UCQ, sep ucq.Separator, skip ucq.AtomSkip, changed []ChangedTuple) (map[engine.Value]bool, bool) {
	dirty := map[engine.Value]bool{}
	for _, ct := range changed {
		for di, d := range openU.Disjuncts {
			for _, a := range d.Atoms {
				if a.Rel != ct.Rel || !atomMayMatch(a, ct.Vals) {
					continue
				}
				pos, ok := sep.RelPos[a.Rel]
				if !skip(a) && ok && atomHasVarAt(a, sep.PerDisjunct[di], pos) {
					dirty[ct.Vals[pos]] = true
				} else {
					return nil, true
				}
			}
		}
	}
	return dirty, false
}

// atomMayMatch reports whether the tuple could ground the atom: matching
// arity and no contradicting constant argument.
func atomMayMatch(a ucq.Atom, vals []engine.Value) bool {
	if len(a.Args) != len(vals) {
		return false
	}
	for i, t := range a.Args {
		if t.IsConst && !t.Const.Equal(vals[i]) {
			return false
		}
	}
	return true
}

// ImportMapped copies the sub-OBDD rooted at f in src into m, renaming
// external variables through varMap (src id → destination id). Unlike
// Import the managers may have different orders; the mapping must be
// injective and preserve the relative order of the mapped variables. Order
// preservation is verified edge by edge and violations (or unmapped
// variables) return an error, so callers can fall back to recompiling.
// Canonicity makes the copy exact: the image is the reduced OBDD of the
// renamed function in m's order.
func (m *Manager) ImportMapped(src *Manager, f NodeID, varMap func(int) (int, bool)) (NodeID, error) {
	if f <= True {
		return f, nil
	}
	memo := getNodeMemo(len(src.nodes), true)
	defer putNodeMemo(memo)
	var rec func(NodeID) (NodeID, error)
	rec = func(x NodeID) (NodeID, error) {
		if x <= True {
			return x, nil
		}
		if r, ok := memo.get(x); ok {
			return r, nil
		}
		n := src.nodes[x]
		v := src.levelVar[n.level]
		nv, ok := varMap(v)
		if !ok {
			return False, fmt.Errorf("obdd: no mapping for variable %d", v)
		}
		nl, ok := m.varLevel[nv]
		if !ok {
			return False, fmt.Errorf("obdd: mapped variable %d not in destination order", nv)
		}
		lo, err := rec(n.lo)
		if err != nil {
			return False, err
		}
		hi, err := rec(n.hi)
		if err != nil {
			return False, err
		}
		if (!m.IsTerminal(lo) && m.nodes[lo].level <= nl) ||
			(!m.IsTerminal(hi) && m.nodes[hi].level <= nl) {
			return False, fmt.Errorf("obdd: variable mapping is not order-preserving at variable %d", v)
		}
		r := m.MkNode(nl, lo, hi)
		memo.put(x, r)
		return r, nil
	}
	return rec(f)
}
