package obdd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// randomDNFManager builds a manager over nv variables with a random DNF
// function, returning the manager and root. Deterministic per seed.
func randomDNFManager(t *testing.T, nv, terms, width int, seed int64) (*Manager, NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, nv)
	for i := range order {
		order[i] = i + 1 // external variable ids need not be levels
	}
	m := NewManager(order)
	f := False
	for i := 0; i < terms; i++ {
		term := True
		for j := 0; j < 1+rng.Intn(width); j++ {
			v := m.Var(order[rng.Intn(nv)])
			if rng.Intn(2) == 0 {
				v = m.Not(v)
			}
			term = m.And(term, v)
		}
		f = m.Or(f, term)
	}
	return m, f
}

func randomProbs(nv int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	probs := make([]float64, nv+2)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	// A few out-of-range weights: the translation produces negative
	// probabilities, and sifting must preserve Prob for them too.
	probs[1] = -0.5
	if nv > 3 {
		probs[3] = 1.75
	}
	return probs
}

// TestReorderPreservesProb is the 1e-12 equivalence property test: the
// sifted OBDD must compute the same probability as the Π-order OBDD for
// arbitrary (even negative) tuple probabilities.
func TestReorderPreservesProb(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		m, f := randomDNFManager(t, 14, 12, 4, seed)
		probs := randomProbs(14, seed*31)
		want := m.Prob(f, probs)

		nm, roots, st, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderConverge})
		if err != nil {
			t.Fatalf("seed %d: Reorder: %v", seed, err)
		}
		got := nm.Prob(roots[0], probs)
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("seed %d: Prob diverged: static %.17g sifted %.17g", seed, want, got)
		}
		if st.NodesAfter > st.NodesBefore {
			t.Fatalf("seed %d: sifting grew the OBDD: %d -> %d", seed, st.NodesBefore, st.NodesAfter)
		}
		if got := nm.Size(roots[0]); got != st.NodesAfter {
			t.Fatalf("seed %d: NodesAfter %d but rebuilt size %d", seed, st.NodesAfter, got)
		}
		// Semantic equivalence under every assignment (the orders differ, so
		// compare by evaluation, not structure).
		rng := rand.New(rand.NewSource(seed * 97))
		for k := 0; k < 200; k++ {
			assign := map[int]bool{}
			for v := 1; v <= 14; v++ {
				assign[v] = rng.Intn(2) == 0
			}
			a := m.Eval(f, func(v int) bool { return assign[v] })
			b := nm.Eval(roots[0], func(v int) bool { return assign[v] })
			if a != b {
				t.Fatalf("seed %d: Eval diverged under %v", seed, assign)
			}
		}
	}
}

// TestReorderCanonical: the rebuilt manager must stay reduced and
// hash-consed — re-importing the sifted OBDD into a fresh manager with the
// same (learned) order must reproduce it node for node.
func TestReorderCanonical(t *testing.T) {
	m, f := randomDNFManager(t, 12, 10, 4, 7)
	nm, roots, _, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderOnce})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewManager(nm.Order())
	g := fresh.Import(nm, roots[0])
	if !StructEqual(nm, roots[0], fresh, g) {
		t.Fatal("sifted OBDD is not canonical: re-import changed structure")
	}
	if fresh.NumNodes() != nm.Size(roots[0])+2 {
		t.Fatalf("sifted manager carries dead nodes into Import: fresh %d, size %d",
			fresh.NumNodes(), nm.Size(roots[0]))
	}
}

// TestReorderDeterministic: the same input must produce the same order and
// the same NodeIDs — the guarantee that keeps seq-vs-par NodeID equivalence
// intact after a post-compile sift.
func TestReorderDeterministic(t *testing.T) {
	opts := ReorderOptions{Mode: ReorderConverge, MaxGrowth: 1.5}
	m1, f1 := randomDNFManager(t, 13, 11, 4, 3)
	m2, f2 := randomDNFManager(t, 13, 11, 4, 3)
	nm1, r1, st1, err := Reorder(m1, []NodeID{f1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	nm2, r2, st2, err := Reorder(m2, []NodeID{f2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] != r2[0] || nm1.NumNodes() != nm2.NumNodes() {
		t.Fatalf("nondeterministic rebuild: roots %d vs %d, nodes %d vs %d",
			r1[0], r2[0], nm1.NumNodes(), nm2.NumNodes())
	}
	o1, o2 := nm1.Order(), nm2.Order()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("nondeterministic order at level %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	if st1.Swaps != st2.Swaps || st1.Rounds != st2.Rounds {
		t.Fatalf("nondeterministic stats: %+v vs %+v", st1, st2)
	}
}

// TestReorderMultiRoots: extra roots (e.g. block-record roots) must be
// remapped consistently with the primary root.
func TestReorderMultiRoots(t *testing.T) {
	m, f := randomDNFManager(t, 10, 8, 3, 5)
	sub := m.Cofactor(f, 2, true)
	probs := randomProbs(10, 55)
	wantF, wantSub := m.Prob(f, probs), m.Prob(sub, probs)
	nm, roots, _, err := Reorder(m, []NodeID{f, sub, False, True}, ReorderOptions{Mode: ReorderOnce})
	if err != nil {
		t.Fatal(err)
	}
	if roots[2] != False || roots[3] != True {
		t.Fatalf("terminal roots moved: %v", roots)
	}
	if got := nm.Prob(roots[0], probs); math.Abs(got-wantF) > 1e-12 {
		t.Fatalf("root 0 diverged: %g vs %g", got, wantF)
	}
	if got := nm.Prob(roots[1], probs); math.Abs(got-wantSub) > 1e-12 {
		t.Fatalf("root 1 diverged: %g vs %g", got, wantSub)
	}
}

// TestReorderWindows: a variable must never leave its window, and sifting
// within windows must still preserve the function.
func TestReorderWindows(t *testing.T) {
	m, f := randomDNFManager(t, 12, 10, 4, 11)
	windows := [][2]int{{0, 4}, {4, 9}, {9, 12}}
	inWin := func(order []int, w [2]int) map[int]bool {
		s := map[int]bool{}
		for _, v := range order[w[0]:w[1]] {
			s[v] = true
		}
		return s
	}
	before := make([]map[int]bool, len(windows))
	for i, w := range windows {
		before[i] = inWin(m.Order(), w)
	}
	nm, roots, _, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderConverge, Windows: windows})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range windows {
		after := inWin(nm.Order(), w)
		for v := range after {
			if !before[i][v] {
				t.Fatalf("variable %d crossed into window %v", v, w)
			}
		}
	}
	probs := randomProbs(12, 99)
	if got, want := nm.Prob(roots[0], probs), m.Prob(f, probs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("windowed sift diverged: %g vs %g", got, want)
	}
}

// TestReorderWindowValidation: malformed windows must be rejected, not
// silently mangled.
func TestReorderWindowValidation(t *testing.T) {
	m, f := randomDNFManager(t, 8, 5, 3, 1)
	for _, ws := range [][][2]int{
		{{-1, 4}},
		{{0, 9}},
		{{4, 4}},
		{{0, 5}, {4, 8}},
	} {
		if _, _, _, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderOnce, Windows: ws}); err == nil {
			t.Fatalf("windows %v: expected error", ws)
		}
	}
}

// TestReorderBudget: cancellation and the node budget must abort the search
// with typed errors and leave the input manager untouched.
func TestReorderBudget(t *testing.T) {
	m, f := randomDNFManager(t, 14, 14, 4, 17)
	sizeBefore := m.Size(f)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderConverge, Ctx: ctx})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("canceled ctx: got %v", err)
	}

	_, _, _, err = Reorder(m, []NodeID{f}, ReorderOptions{
		Mode:   ReorderConverge,
		Budget: budget.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("expired deadline: got %v", err)
	}

	_, _, _, err = Reorder(m, []NodeID{f}, ReorderOptions{
		Mode:   ReorderConverge,
		Budget: budget.Budget{MaxNodes: 1},
	})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("MaxNodes 1: got %v", err)
	}

	if got := m.Size(f); got != sizeBefore {
		t.Fatalf("aborted Reorder mutated the input manager: size %d -> %d", sizeBefore, got)
	}
}

// TestReorderFindsInterleaving: ∨ᵢ (xᵢ ∧ yᵢ) under the worst order (all x
// before all y) is exponentially wide; sifting must recover (most of) the
// interleaved linear order. This is the classic separation that shows the
// swap machinery actually moves variables across long distances.
func TestReorderFindsInterleaving(t *testing.T) {
	const k = 8
	order := make([]int, 0, 2*k)
	for i := 1; i <= k; i++ {
		order = append(order, i) // x_i
	}
	for i := 1; i <= k; i++ {
		order = append(order, k+i) // y_i
	}
	m := NewManager(order)
	f := False
	for i := 1; i <= k; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(k+i)))
	}
	before := m.Size(f)
	nm, roots, st, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderConverge, MaxRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	after := nm.Size(roots[0])
	// The interleaved order needs 3k-ish nodes; the separated order ~2^k.
	if after > 4*k {
		t.Fatalf("sifting failed to untangle ∨(x_i∧y_i): %d -> %d nodes (stats %+v)", before, after, st)
	}
	probs := randomProbs(2*k, 5)
	if got, want := nm.Prob(roots[0], probs), m.Prob(f, probs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Prob diverged: %g vs %g", got, want)
	}
}

// TestReorderOff: ReorderOff must be an exact no-op returning the same
// manager.
func TestReorderOff(t *testing.T) {
	m, f := randomDNFManager(t, 6, 4, 3, 2)
	nm, roots, st, err := Reorder(m, []NodeID{f}, ReorderOptions{Mode: ReorderOff})
	if err != nil {
		t.Fatal(err)
	}
	if nm != m || roots[0] != f || st.Rounds != 0 {
		t.Fatalf("ReorderOff was not a no-op: %p vs %p, root %d vs %d", nm, m, roots[0], f)
	}
}

// TestParseReorderMode covers the flag surface.
func TestParseReorderMode(t *testing.T) {
	for s, want := range map[string]ReorderMode{"": ReorderOff, "off": ReorderOff, "once": ReorderOnce, "converge": ReorderConverge} {
		got, err := ParseReorderMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseReorderMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseReorderMode("bogus"); err == nil {
		t.Fatal("ParseReorderMode(bogus): expected error")
	}
	if ReorderConverge.String() != "converge" || ReorderOnce.String() != "once" || ReorderOff.String() != "off" {
		t.Fatal("ReorderMode.String mismatch")
	}
}

// TestCompileWithReorder: the CompileOptions knob must produce an equivalent
// OBDD on a real compiled query, and CompileOptions.Order must round-trip a
// learned order through a fresh compile.
func TestCompileWithReorder(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustCreateRelation("S", false, "b", "c")
	for i := 0; i < 6; i++ {
		db.MustInsert("R", 0.5, engine.Int(int64(i%3)), engine.Int(int64(i)))
		db.MustInsert("S", 0.5, engine.Int(int64(i)), engine.Int(int64(i%2)))
	}
	q := ucq.MustParse("Q() :- R(a,b), S(b,c)").UCQ
	pi := IdentityPerm(db)

	m0, f0, _, err := Compile(db, q, pi, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m1, f1, _, err := Compile(db, q, pi, CompileOptions{Reorder: ReorderConverge})
	if err != nil {
		t.Fatal(err)
	}
	probs := db.Probs()
	if got, want := m1.Prob(f1, probs), m0.Prob(f0, probs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("reorder-compiled Prob diverged: %g vs %g", got, want)
	}

	// Learned-order round trip: compiling under m1's order must reproduce
	// the sifted structure exactly.
	m2, f2, _, err := Compile(db, q, pi, CompileOptions{Order: m1.Order()})
	if err != nil {
		t.Fatal(err)
	}
	if !StructEqual(m1, f1, m2, f2) {
		t.Fatal("compile under learned order did not reproduce the sifted OBDD")
	}

	// Invalid learned orders must be rejected.
	if _, _, _, err := Compile(db, q, pi, CompileOptions{Order: []int{1, 2, 3}}); err == nil {
		t.Fatal("short Order: expected error")
	}
	bad := m1.Order()
	bad[0] = 1 << 30
	if _, _, _, err := Compile(db, q, pi, CompileOptions{Order: bad}); err == nil {
		t.Fatal("alien variable in Order: expected error")
	}
}

// TestMergeOrder covers survivor ordering, insertion next to Π-neighbors,
// and variable mapping.
func TestMergeOrder(t *testing.T) {
	learned := []int{30, 10, 20}
	pi := []int{10, 20, 30}
	got := MergeOrder(learned, nil, pi)
	if len(got) != 3 || got[0] != 30 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("survivors must keep learned order: %v", got)
	}

	// 15 is new and follows 10 in Π; 5 is new and precedes every survivor.
	pi = []int{5, 10, 15, 20, 30}
	got = MergeOrder(learned, nil, pi)
	want := []int{5, 30, 10, 15, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeOrder = %v, want %v", got, want)
		}
	}

	// Mapping: learned ids are old-space; 30 died, 10 maps to 11, 20 to 21.
	mapVar := func(v int) (int, bool) {
		switch v {
		case 10:
			return 11, true
		case 20:
			return 21, true
		}
		return 0, false
	}
	pi = []int{11, 21, 99}
	got = MergeOrder(learned, mapVar, pi)
	want = []int{11, 21, 99} // wait: learned order maps to [11, 21]; 99 attaches after 21
	_ = want
	if len(got) != 3 || got[0] != 11 || got[1] != 21 || got[2] != 99 {
		t.Fatalf("mapped MergeOrder = %v", got)
	}

	// Result must always be a permutation of pi.
	perm := map[int]bool{}
	for _, v := range got {
		if perm[v] {
			t.Fatalf("duplicate in merged order: %v", got)
		}
		perm[v] = true
	}
	for _, v := range pi {
		if !perm[v] {
			t.Fatalf("missing %d in merged order %v", v, got)
		}
	}
}

// TestLevelTableDelete exercises the backward-shift deletion of the sifter's
// per-level table directly, including collision chains.
func TestLevelTableDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	lo := make([]int32, n+2)
	hi := make([]int32, n+2)
	tab := newLevelTable(8)
	live := map[[2]int32]int32{}
	for id := int32(2); id < n+2; id++ {
		for {
			a, b := int32(rng.Intn(40)), int32(rng.Intn(40))
			if a == b {
				continue
			}
			if _, dup := live[[2]int32{a, b}]; dup {
				continue
			}
			lo[id], hi[id] = a, b
			live[[2]int32{a, b}] = id
			break
		}
		_, slot := tab.lookup(lo, hi, lo[id], hi[id])
		tab.insert(lo, hi, id, slot)
	}
	// Delete half at random, verifying every remaining key stays findable.
	ids := make([]int32, 0, n)
	for _, id := range live {
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for k, id := range ids {
		if k%2 == 0 {
			tab.del(lo, hi, lo[id], hi[id])
			delete(live, [2]int32{lo[id], hi[id]})
		}
		if k%17 == 0 {
			for key, want := range live {
				got, _ := tab.lookup(lo, hi, key[0], key[1])
				if got != want {
					t.Fatalf("after %d deletions: lookup(%v) = %d, want %d", k/2+1, key, got, want)
				}
			}
		}
	}
	if tab.n != len(live) {
		t.Fatalf("occupancy drifted: table %d, live %d", tab.n, len(live))
	}
}
