package obdd

import (
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

func benchDB(n int64) *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(1))
	for i := int64(1); i <= n; i++ {
		db.MustInsert("R", rng.Float64()*2, engine.Int(i))
		for j := int64(0); j < 2; j++ {
			db.MustInsert("S", rng.Float64()*2, engine.Int(i), engine.Int(100*i+j))
		}
	}
	return db
}

// BenchmarkConOBDD measures the structural (concatenation) compilation of
// an inversion-free query.
func BenchmarkConOBDD(b *testing.B) {
	db := benchDB(500)
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	pi := IdentityPerm(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Compile(db, q.UCQ, pi, CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisFromLineage measures the CUDD-style baseline on the
// same query.
func BenchmarkSynthesisFromLineage(b *testing.B) {
	db := benchDB(500)
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	pi := IdentityPerm(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Compile(db, q.UCQ, pi, CompileOptions{FromLineage: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApply measures raw synthesis of two mid-size OBDDs.
func BenchmarkApply(b *testing.B) {
	db := benchDB(300)
	q1 := ucq.MustParse("Q() :- R(x), S(x,y)")
	q2 := ucq.MustParse("Q() :- S(x,y)")
	m, f1, _, err := Compile(db, q1.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	f2, _, err := CompileWith(m, db, q2.UCQ, CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Or(f1, f2)
	}
}

// BenchmarkProbability measures the bottom-up Shannon pass.
func BenchmarkProbability(b *testing.B) {
	db := benchDB(1000)
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	probs := db.Probs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prob(f, probs)
	}
}
