package obdd

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mvdb/internal/budget"
	"mvdb/internal/engine"
	"mvdb/internal/lineage"
	"mvdb/internal/ucq"
)

// CompileOptions tunes the ConOBDD construction.
type CompileOptions struct {
	// DisableConcat forces every combination step through Apply synthesis
	// while keeping the structural recursion — an ablation of the
	// concatenation optimization alone.
	DisableConcat bool
	// FromLineage skips the structural recursion entirely: the query's
	// lineage DNF is computed and synthesized term by term with Apply. This
	// is the CUDD baseline of Figure 8 ("CUDD starts with some order Π and
	// synthesizes the OBDD traversing Φ recursively"); the resulting OBDD
	// is identical, construction is superlinear.
	FromLineage bool
	// Parallelism bounds the worker count of parallel block compilation in
	// the separator branch: 0 uses runtime.GOMAXPROCS(0), 1 forces the
	// strictly sequential path (the exact-equality reference), N > 1 uses N
	// workers. The per-separator-value blocks of Section 4.2 are independent
	// sub-OBDDs, so workers compile them in private managers and the owner
	// merges them with Manager.Import in the same descending order the
	// sequential path uses — the resulting OBDD is structurally identical
	// for every setting.
	Parallelism int
	// ApplyCacheSize caps the manager's direct-mapped apply/computed cache
	// at this many entries (rounded up to a power of two); 0 keeps
	// DefaultApplyCacheSize. A larger cache makes Apply-heavy compilations
	// (FromLineage, DisableConcat) recompute less at ~12 bytes per entry;
	// it never changes the resulting OBDD. See DESIGN.md §8.
	ApplyCacheSize int
	// Ctx, when non-nil, is polled periodically during compilation (at every
	// separator block boundary and every ~1k node allocations); a done
	// context aborts the compile with an error wrapping budget.ErrCanceled.
	Ctx context.Context
	// Budget bounds the compilation's resources: MaxNodes caps total node
	// allocation (across the target manager and every parallel worker's
	// scratch manager) and Deadline is a wall-clock cutoff. Violations abort
	// with an error wrapping budget.ErrBudgetExceeded (nodes) or
	// budget.ErrCanceled (deadline). MaxPairs does not apply to compilation.
	Budget budget.Budget

	// Reorder runs a Rudell sifting pass (sift.go) over the compiled OBDD
	// when set to ReorderOnce or ReorderConverge: Compile then returns a
	// fresh manager under the improved order instead of the static Π one.
	// This is a global (windowless) sift — the MV-index instead sifts per
	// separator block through mvindex so the chain factorization survives.
	// MaxGrowth and MaxRounds tune the pass as in ReorderOptions.
	Reorder   ReorderMode
	MaxGrowth float64
	MaxRounds int
	// Order, when non-nil, overrides the static Π order with a learned
	// variable order (e.g. one persisted from an earlier sifting pass). It
	// must be a permutation of exactly the database's tuple variables;
	// Compile and CompileDelta fail otherwise. This is how delta recompiles
	// inherit a sifted order instead of re-deriving Π.
	Order []int

	// blockHook, when set, runs before each per-separator-value block is
	// compiled (sequentially or on a worker), receiving the block index; a
	// non-nil return aborts the compile with that error. Test-only fault
	// injection: deterministically failing or stalling at the Nth block
	// exercises cancellation and error paths mid-compile.
	blockHook func(block int) error
}

// bounded reports whether compilation must arm the manager.
func (o CompileOptions) bounded() bool {
	return o.Ctx != nil || !o.Budget.IsZero()
}

// workers resolves the Parallelism knob to an actual worker count.
func (o CompileOptions) workers() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// CompileStats reports how the construction proceeded.
type CompileStats struct {
	ConcatSteps  int // independent combinations done by concatenation
	SynthSteps   int // combinations done by Apply synthesis
	LineageFalls int // sub-queries compiled from raw lineage (inversions)
}

// Add accumulates another stats value.
func (s *CompileStats) Add(o CompileStats) {
	s.ConcatSteps += o.ConcatSteps
	s.SynthSteps += o.SynthSteps
	s.LineageFalls += o.LineageFalls
}

// Compile builds the OBDD of the Boolean UCQ u over db with the variable
// order Π induced by pi, creating a fresh Manager. It implements ConOBDD
// (Section 4.2): concatenate wherever sub-OBDDs are independent and ordered,
// synthesize otherwise, and fall back to compiling the raw lineage for
// sub-queries with inversions.
func Compile(db *engine.Database, u ucq.UCQ, pi Perm, opts CompileOptions) (*Manager, NodeID, CompileStats, error) {
	if err := pi.Validate(db); err != nil {
		return nil, False, CompileStats{}, err
	}
	order, err := compileOrder(db, pi, opts)
	if err != nil {
		return nil, False, CompileStats{}, err
	}
	m := NewManager(order)
	f, stats, err := CompileWith(m, db, u, opts)
	if err != nil {
		return nil, False, stats, err
	}
	if opts.Reorder != ReorderOff {
		nm, roots, _, rerr := Reorder(m, []NodeID{f}, ReorderOptions{
			Mode: opts.Reorder, MaxGrowth: opts.MaxGrowth, MaxRounds: opts.MaxRounds,
			Ctx: opts.Ctx, Budget: opts.Budget,
		})
		if rerr != nil {
			return nil, False, stats, rerr
		}
		m, f = nm, roots[0]
	}
	return m, f, stats, nil
}

// compileOrder resolves the variable order for a fresh compile: the static Π
// order, unless opts.Order overrides it with a learned order over exactly
// the same variable set.
func compileOrder(db *engine.Database, pi Perm, opts CompileOptions) ([]int, error) {
	static := TupleOrder(db, pi)
	if opts.Order == nil {
		return static, nil
	}
	if len(opts.Order) != len(static) {
		return nil, fmt.Errorf("obdd: CompileOptions.Order has %d variables, want %d", len(opts.Order), len(static))
	}
	set := make(map[int]struct{}, len(static))
	for _, v := range static {
		set[v] = struct{}{}
	}
	for _, v := range opts.Order {
		if _, ok := set[v]; !ok {
			return nil, fmt.Errorf("obdd: CompileOptions.Order names variable %d, which is not a tuple variable of the database", v)
		}
		delete(set, v)
	}
	return append([]int(nil), opts.Order...), nil
}

// CompileWith compiles into an existing manager, so a query OBDD can share
// the order (and node store) of a previously compiled view OBDD. With a
// context or budget set, the manager is armed for the duration of the call
// and disarmed before returning, so a successful compile leaves the manager
// free for the frozen read path.
func CompileWith(m *Manager, db *engine.Database, u ucq.UCQ, opts CompileOptions) (NodeID, CompileStats, error) {
	if opts.ApplyCacheSize > 0 {
		m.SetApplyCacheMax(opts.ApplyCacheSize)
	}
	c := &compiler{m: m, db: db, opts: opts}
	if opts.bounded() {
		m.SetBudget(opts.Ctx, opts.Budget)
		defer m.SetBudget(nil, budget.Budget{})
	}
	var f NodeID
	var ferr error
	err := budget.Catch(func() {
		if opts.FromLineage {
			lin, lerr := ucq.EvalBoolean(db, u)
			if lerr != nil {
				ferr = lerr
				return
			}
			c.stats.LineageFalls++
			f = c.BuildDNF(lin)
			return
		}
		f, ferr = c.ucq(u)
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return False, c.stats, err
	}
	return f, c.stats, nil
}

type compiler struct {
	m     *Manager
	db    *engine.Database
	opts  CompileOptions
	stats CompileStats

	colCache map[string][]engine.Value // "rel\x00pos" -> distinct column values

	// groundCQ scratch; each parallel worker owns a private compiler, so the
	// buffers are never shared across goroutines.
	valsBuf   []engine.Value
	levelsBuf []int32
}

// columnValues returns the distinct values of one relation column, cached
// across the whole compilation (separator recursion revisits the same
// columns at every level).
func (c *compiler) columnValues(rel *engine.Relation, pos int) []engine.Value {
	key := rel.Name + "\x00" + string(rune(pos))
	if c.colCache == nil {
		c.colCache = map[string][]engine.Value{}
	}
	if vs, ok := c.colCache[key]; ok {
		return vs
	}
	seen := make(map[engine.Value]bool, len(rel.Tuples))
	for _, t := range rel.Tuples {
		seen[t.Vals[pos]] = true
	}
	out := make([]engine.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	c.colCache[key] = out
	return out
}

// ucq compiles a Boolean UCQ.
func (c *compiler) ucq(u ucq.UCQ) (NodeID, error) {
	// Simplify disjuncts: evaluate fully-constant predicates now.
	var live []ucq.CQ
	for _, d := range u.Disjuncts {
		if sd, ok := simplifyCQ(d); ok {
			live = append(live, sd)
		}
	}
	if len(live) == 0 {
		return False, nil
	}
	u = ucq.UCQ{Disjuncts: live}

	// Split off ground disjuncts (R4 at the union level).
	var ground, open []ucq.CQ
	for _, d := range u.Disjuncts {
		if !d.HasVars() {
			ground = append(ground, d)
		} else {
			open = append(open, d)
		}
	}
	results := make([]NodeID, 0, len(ground)+4)
	for _, d := range ground {
		f, err := c.groundCQ(d)
		if err != nil {
			return False, err
		}
		results = append(results, f)
	}
	if len(open) > 0 {
		f, err := c.openUCQ(ucq.UCQ{Disjuncts: open})
		if err != nil {
			return False, err
		}
		results = append(results, f)
	}
	return c.combine(results, false), nil
}

// openUCQ compiles a UCQ whose every disjunct has variables.
func (c *compiler) openUCQ(u ucq.UCQ) (NodeID, error) {
	// R1: independent unions (no shared relation symbols) concatenate.
	if groups := u.UnionGroups(); len(groups) > 1 {
		results := make([]NodeID, 0, len(groups))
		for _, g := range groups {
			f, err := c.ucq(g)
			if err != nil {
				return False, err
			}
			results = append(results, f)
		}
		return c.combine(results, false), nil
	}

	// R2: a single CQ splits into variable-independent components.
	if len(u.Disjuncts) == 1 {
		comps := u.Disjuncts[0].Components()
		if len(comps) > 1 {
			results := make([]NodeID, 0, len(comps))
			for _, comp := range comps {
				f, err := c.ucq(ucq.UCQ{Disjuncts: []ucq.CQ{comp}})
				if err != nil {
					return False, err
				}
				results = append(results, f)
			}
			return c.combine(results, true), nil
		}
	}

	// R3: eliminate a separator variable by expanding over its active
	// domain; per-value blocks concatenate when the order Π groups them.
	// Deterministic atoms carry no Boolean variables, so the separator only
	// needs to cover the probabilistic atoms (DBLP's W has exactly this
	// shape: aid1 occurs in NV/Advisor/Student but not in Wrote or Pub).
	if sep, ok := u.FindSeparatorSkip(c.detSkip()); ok {
		_, subs, est := c.sepExpand(u, sep)
		return c.blockChain(subs, est, nil)
	}

	// Fallback: the sub-query has an inversion; compile its lineage by
	// synthesis (what a generic OBDD package would do for the whole query).
	c.stats.LineageFalls++
	lin, err := ucq.EvalBoolean(c.db, u)
	if err != nil {
		return False, err
	}
	return c.BuildDNF(lin), nil
}

// sepExpand prepares the R3 expansion of a separator: the sorted active
// domain, the per-value sub-queries (one independent block each, Prop. 1)
// and per-block work estimates for the parallel scheduler.
func (c *compiler) sepExpand(u ucq.UCQ, sep ucq.Separator) (domain []engine.Value, subs []ucq.UCQ, est []int) {
	{
		// For each disjunct, find one probabilistic atom carrying the
		// separator (the "probe"). The separator domain of the disjunct is
		// the set of values at the probe's separator column — narrowed by
		// the probe's other constant-bound columns through the hash index
		// when possible (crucial in nested projections: the inner domain is
		// then the current block's tuples, not the whole column). Values
		// with no matching tuple in some disjunct prune that disjunct.
		skip := c.detSkip()
		type probe struct {
			rel *engine.Relation
			pos int
			a   ucq.Atom
		}
		probes := make([]probe, len(u.Disjuncts))
		domainSet := map[engine.Value]bool{}
		for di, d := range u.Disjuncts {
			for _, a := range d.Atoms {
				if skip(a) {
					continue
				}
				if !atomHasVarAt(a, sep.PerDisjunct[di], sep.RelPos[a.Rel]) {
					continue
				}
				probes[di] = probe{rel: c.db.Relation(a.Rel), pos: sep.RelPos[a.Rel], a: a}
				break
			}
			p := probes[di]
			if p.rel == nil {
				// No probe (cannot happen for true separators); fall back to
				// the full column scans of every kept atom.
				for _, v := range c.separatorDomain(ucq.UCQ{Disjuncts: []ucq.CQ{d}}, sep) {
					domainSet[v] = true
				}
				continue
			}
			// Candidate tuples: narrowed by the first constant-bound column
			// other than the separator's, else the (cached) full column.
			narrowed := false
			for i, t := range p.a.Args {
				if i == p.pos || !t.IsConst {
					continue
				}
				for _, ti := range p.rel.MatchingIndexes(i, t.Const) {
					domainSet[p.rel.Tuples[ti].Vals[p.pos]] = true
				}
				narrowed = true
				break
			}
			if !narrowed {
				for _, v := range c.columnValues(p.rel, p.pos) {
					domainSet[v] = true
				}
			}
		}
		domain = make([]engine.Value, 0, len(domainSet))
		for v := range domainSet {
			domain = append(domain, v)
		}
		sort.Slice(domain, func(i, j int) bool { return domain[i].Compare(domain[j]) < 0 })

		// Instantiate the per-separator-value sub-queries up front; each is
		// an independent block of the chain (Prop. 1).
		// est[i] estimates block i's compilation work as the number of
		// tuples carrying separator value i (per disjunct, through the
		// probe's hash index) — the block's sub-OBDD and recursion are both
		// roughly linear in it. The parallel scheduler uses the estimates to
		// hand workers balanced batches.
		subs = make([]ucq.UCQ, len(domain))
		est = make([]int, len(domain))
		for i, v := range domain {
			for di, d := range u.Disjuncts {
				if p := probes[di]; p.rel != nil {
					n := len(p.rel.MatchingIndexes(p.pos, v))
					if n == 0 {
						continue // this disjunct is false at this value
					}
					est[i] += n
				} else {
					est[i] += len(d.Atoms)
				}
				subs[i].Disjuncts = append(subs[i].Disjuncts,
					d.Subst1(sep.PerDisjunct[di], v))
			}
		}
	}
	return domain, subs, est
}

// blockChain compiles the per-separator-value blocks and ORs them into the
// descending chain, sequentially or with the parallel worker pool. When
// capture is non-nil it receives each non-empty block's root in the main
// manager (capture[i] stays False for empty blocks) — the per-value handle
// incremental maintenance records.
func (c *compiler) blockChain(subs []ucq.UCQ, est []int, capture []NodeID) (NodeID, error) {
	if workers := c.opts.workers(); workers > 1 && len(subs) > 1 {
		return c.parallelBlocks(subs, est, workers, capture)
	}
	// Iterate in descending order so each new block is prepended to the
	// accumulated chain: OrDisjoint(block, acc) costs O(|block|).
	acc := False
	for i := len(subs) - 1; i >= 0; i-- {
		if len(subs[i].Disjuncts) == 0 {
			continue
		}
		if err := c.blockCheck(i); err != nil {
			return False, err
		}
		block, err := c.ucq(subs[i])
		if err != nil {
			return False, err
		}
		if capture != nil {
			capture[i] = block
		}
		acc = c.or2(block, acc)
	}
	return acc, nil
}

// blockChunks partitions block indexes into batches for the parallel
// workers, using the per-block work estimates: blocks are ordered by
// decreasing estimated work (longest-processing-time-first — an oversized
// block is started immediately instead of landing on an already-busy worker
// at the tail of the schedule) and greedily grouped into chunks of roughly
// total/(4·workers) estimated work each, so many tiny blocks cost one
// scheduling round-trip instead of one per block. Empty blocks are dropped.
func blockChunks(subs []ucq.UCQ, est []int, workers int) [][]int {
	order := make([]int, 0, len(subs))
	total := 0
	for i := range subs {
		if len(subs[i].Disjuncts) == 0 {
			continue
		}
		order = append(order, i)
		total += est[i]
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })
	target := total/(4*workers) + 1
	var chunks [][]int
	var cur []int
	acc := 0
	for _, i := range order {
		cur = append(cur, i)
		acc += est[i]
		if acc >= target {
			chunks = append(chunks, cur)
			cur, acc = nil, 0
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// parallelBlocks compiles the per-separator-value blocks concurrently. Each
// worker owns a scratch Manager (hash-consing tables are not shared across
// goroutines) and a private compiler, and pulls work-balanced chunks of
// blocks (see blockChunks) from a shared atomic counter. The owner then
// imports every finished block into the main manager and concatenates the
// chain in the same descending order as the sequential path, so the
// resulting OBDD — and the compile statistics — are identical to
// Parallelism: 1.
func (c *compiler) parallelBlocks(subs []ucq.UCQ, est []int, workers int, capture []NodeID) (NodeID, error) {
	type blockResult struct {
		m    *Manager
		root NodeID
		err  error
	}
	chunks := blockChunks(subs, est, workers)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers < 1 {
		return False, nil // every block was empty
	}
	results := make([]blockResult, len(subs))
	workerStats := make([]CompileStats, workers)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wopts := c.opts
			wopts.Parallelism = 1 // no nested fan-out inside a worker
			// The scratch manager inherits the owner's budget arming (shared
			// allocation counter), so MaxNodes bounds the whole compile.
			wc := &compiler{m: c.m.NewScratch(), db: c.db, opts: wopts}
		pull:
			for {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= len(chunks) {
					break
				}
				for _, i := range chunks[ci] {
					// Budget violations panic out of the recursion; convert
					// them to errors here — a panic may not escape the
					// goroutine.
					var root NodeID
					var cerr error
					err := budget.Catch(func() {
						if cerr = wc.blockCheck(i); cerr != nil {
							return
						}
						root, cerr = wc.ucq(subs[i])
					})
					if err == nil {
						err = cerr
					}
					results[i] = blockResult{m: wc.m, root: root, err: err}
					if err != nil {
						break pull
					}
				}
			}
			workerStats[w] = wc.stats
		}(w)
	}
	wg.Wait()
	for _, s := range workerStats {
		c.stats.Add(s)
	}
	for i := range results {
		if results[i].err != nil {
			return False, results[i].err
		}
	}
	// Merge: import each block into the main manager and prepend it to the
	// chain, deepest block first (identical to the sequential loop).
	acc := False
	for i := len(subs) - 1; i >= 0; i-- {
		if results[i].m == nil {
			continue // empty sub-query, skipped by the worker
		}
		block := c.m.Import(results[i].m, results[i].root)
		if capture != nil {
			capture[i] = block
		}
		acc = c.or2(block, acc)
	}
	return acc, nil
}

// blockCheck runs the per-block cancellation point (and the fault-injection
// hook) before a separator block is compiled. The nested recursion inside a
// block only hits the coarser allocation-stride polls, so this is the
// deterministic cancellation point of the compile loops.
func (c *compiler) blockCheck(block int) error {
	if c.opts.blockHook != nil {
		if err := c.opts.blockHook(block); err != nil {
			return err
		}
	}
	if !c.opts.bounded() {
		return nil
	}
	return budget.Check(c.opts.Ctx, c.opts.Budget.Deadline)
}

// groundCQ compiles a conjunct with no variables: a conjunction of tuple
// lookups (R4).
func (c *compiler) groundCQ(d ucq.CQ) (NodeID, error) {
	for _, p := range d.Preds {
		if !p.L.IsConst || !p.R.IsConst {
			return False, fmt.Errorf("obdd: predicate %s in ground conjunct has variables", p)
		}
		if !p.EvalBound(p.L.Const, p.R.Const) {
			return False, nil
		}
	}
	levels := c.levelsBuf[:0]
	for _, a := range d.Atoms {
		rel := c.db.Relation(a.Rel)
		if rel == nil {
			return False, fmt.Errorf("obdd: unknown relation %s", a.Rel)
		}
		if len(a.Args) != rel.Arity() {
			return False, fmt.Errorf("obdd: relation %s has arity %d, atom has %d arguments", a.Rel, rel.Arity(), len(a.Args))
		}
		if cap(c.valsBuf) < len(a.Args) {
			c.valsBuf = make([]engine.Value, len(a.Args))
		}
		vals := c.valsBuf[:len(a.Args)]
		for i, t := range a.Args {
			vals[i] = t.Const
		}
		ti := rel.Lookup(vals)
		if a.Negated {
			if !rel.Deterministic {
				return False, fmt.Errorf("obdd: negation on probabilistic relation %s", a.Rel)
			}
			if ti >= 0 {
				return False, nil
			}
			continue
		}
		if ti < 0 {
			return False, nil
		}
		t := rel.Tuples[ti]
		if t.Var == 0 {
			continue // deterministic tuple: always true
		}
		l := c.m.varLevel[t.Var]
		levels = append(levels, l)
	}
	c.levelsBuf = levels // keep any growth for the next ground conjunct
	if len(levels) == 0 {
		return True, nil
	}
	// Build the AND chain bottom-up; this is a pure concatenation.
	sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })
	acc := True
	var prev int32 = -1
	for _, l := range levels {
		if l == prev {
			continue // duplicate variable in the conjunct
		}
		prev = l
		acc = c.m.MkNode(l, False, acc)
	}
	c.stats.ConcatSteps += len(levels) - 1
	return acc, nil
}

// combine folds sub-results with OR (and=false) or AND (and=true), using
// concatenation whenever spans permit. Results are sorted by root level so
// that chains concatenate from the deepest block upward.
func (c *compiler) combine(results []NodeID, and bool) NodeID {
	if len(results) == 0 {
		if and {
			return True
		}
		return False
	}
	sort.Slice(results, func(i, j int) bool {
		return c.m.NodeLevel(results[i]) < c.m.NodeLevel(results[j])
	})
	acc := results[len(results)-1]
	for i := len(results) - 2; i >= 0; i-- {
		if and {
			acc = c.and2(results[i], acc)
		} else {
			acc = c.or2(results[i], acc)
		}
	}
	return acc
}

// detSkip ignores atoms that cannot contribute Boolean variables: negated
// or ground atoms and atoms over deterministic relations.
func (c *compiler) detSkip() ucq.AtomSkip {
	return ucq.SkipDeterministic(func(rel string) bool {
		r := c.db.Relation(rel)
		return r != nil && r.Deterministic
	}, ucq.SkipGround)
}

func (c *compiler) or2(f, g NodeID) NodeID {
	if f == False {
		return g
	}
	if g == False {
		return f
	}
	if !c.opts.DisableConcat && c.m.CanConcat(f, g) {
		c.stats.ConcatSteps++
		return c.m.OrDisjoint(f, g)
	}
	if !c.opts.DisableConcat && c.m.CanConcat(g, f) {
		c.stats.ConcatSteps++
		return c.m.OrDisjoint(g, f)
	}
	c.stats.SynthSteps++
	return c.m.Or(f, g)
}

func (c *compiler) and2(f, g NodeID) NodeID {
	if f == True {
		return g
	}
	if g == True {
		return f
	}
	if !c.opts.DisableConcat && c.m.CanConcat(f, g) {
		c.stats.ConcatSteps++
		return c.m.AndDisjoint(f, g)
	}
	if !c.opts.DisableConcat && c.m.CanConcat(g, f) {
		c.stats.ConcatSteps++
		return c.m.AndDisjoint(g, f)
	}
	c.stats.SynthSteps++
	return c.m.And(f, g)
}

// separatorDomain collects the active domain of the separator: the distinct
// values found at the separator's position in every relation it touches,
// sorted ascending (the order Π groups tuples by these values).
func (c *compiler) separatorDomain(u ucq.UCQ, sep ucq.Separator) []engine.Value {
	seen := map[engine.Value]bool{}
	for rel, pos := range sep.RelPos {
		r := c.db.Relation(rel)
		if r == nil {
			continue
		}
		for _, t := range r.Tuples {
			seen[t.Vals[pos]] = true
		}
	}
	out := make([]engine.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// atomHasVarAt reports whether the atom carries the variable at the given
// argument position.
func atomHasVarAt(a ucq.Atom, v string, pos int) bool {
	return pos >= 0 && pos < len(a.Args) && !a.Args[pos].IsConst && a.Args[pos].Var == v
}

// simplifyCQ drops fully-constant predicates, returning ok=false when one is
// violated (the conjunct is unsatisfiable).
func simplifyCQ(d ucq.CQ) (ucq.CQ, bool) {
	constant := false
	for _, p := range d.Preds {
		if p.L.IsConst && p.R.IsConst {
			if !p.EvalBound(p.L.Const, p.R.Const) {
				return ucq.CQ{}, false
			}
			constant = true
		}
	}
	if !constant {
		return d, true // nothing to drop; share the predicate slice
	}
	out := ucq.CQ{Atoms: d.Atoms, Preds: make([]ucq.Pred, 0, len(d.Preds)-1)}
	for _, p := range d.Preds {
		if p.L.IsConst && p.R.IsConst {
			continue
		}
		out.Preds = append(out.Preds, p)
	}
	return out, true
}

// BuildDNF synthesizes the OBDD of a monotone DNF with Apply, folding terms
// sequentially — the behaviour of a generic OBDD package handed a lineage
// expression.
func (c *compiler) BuildDNF(d lineage.DNF) NodeID {
	acc := False
	for _, term := range d {
		levels := make([]int32, 0, len(term))
		for _, v := range term {
			l, ok := c.m.varLevel[v]
			if !ok {
				panic(fmt.Sprintf("obdd: lineage variable %d not in order", v))
			}
			levels = append(levels, l)
		}
		sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })
		t := True
		var prev int32 = -1
		for _, l := range levels {
			if l == prev {
				continue
			}
			prev = l
			t = c.m.MkNode(l, False, t)
		}
		c.stats.SynthSteps++
		acc = c.m.Or(acc, t)
	}
	return acc
}

// BuildDNF constructs an OBDD for a DNF directly on a manager, for callers
// outside the ConOBDD pipeline (e.g. compiling a query's lineage against a
// precompiled view order).
func BuildDNF(m *Manager, d lineage.DNF) NodeID {
	c := &compiler{m: m}
	return c.BuildDNF(d)
}
