package obdd

// uniqueTable is the CUDD-style unique table: an open-addressing hash set
// over the manager's node store. Slots hold NodeIDs into Manager.nodes; the
// node fields themselves live only in the nodes slice, so the table is a flat
// []int32 that the probe loop walks with no pointer chasing and no
// per-insert allocation. Capacity is a power of two, probing is linear, and
// nodes are never deleted, so there are no tombstones; the table grows by
// doubling when the load factor reaches 3/4.
//
// Slot value 0 marks an empty slot: NodeID 0 is the False terminal, and
// terminals are never hash-consed (MkNode only inserts internal nodes, whose
// ids start at 2).
type uniqueTable struct {
	slots []NodeID
	n     int // occupied slots
}

const uniqueInitialSlots = 64

// Mixing constants (splitmix64 finalizer multipliers).
const (
	mixA = 0x9E3779B97F4A7C15
	mixB = 0xBF58476D1CE4E5B9
	mixC = 0x94D049BB133111EB
)

// hashNode mixes a node's three fields into a table-quality 64-bit hash.
func hashNode(level int32, lo, hi NodeID) uint64 {
	h := uint64(uint32(level))*mixA ^ uint64(uint32(lo))*mixB ^ uint64(uint32(hi))*mixC
	h ^= h >> 32
	h *= mixB
	h ^= h >> 29
	return h
}

func (t *uniqueTable) init() {
	t.slots = make([]NodeID, uniqueInitialSlots)
	t.n = 0
}

// Stats returns the occupancy and capacity of the unique table. The load
// factor n/cap stays below 3/4 by construction; /stats reports it so
// operators can see how much slack the probe loops have.
func (t *uniqueTable) stats() (n, cap int) { return t.n, len(t.slots) }

// lookup probes for (level, lo, hi) and returns its id, or 0 and the slot
// index where it must be inserted.
func (t *uniqueTable) lookup(nodes []node, level int32, lo, hi NodeID) (NodeID, uint64) {
	mask := uint64(len(t.slots) - 1)
	for i := hashNode(level, lo, hi) & mask; ; i = (i + 1) & mask {
		id := t.slots[i]
		if id == 0 {
			return 0, i
		}
		n := &nodes[id]
		if n.level == level && n.lo == lo && n.hi == hi {
			return id, i
		}
	}
}

// insert places id at the slot returned by a failed lookup and grows the
// table past the 3/4 load factor, rehashing every node (ids 2..len-1) into
// the doubled slot array.
func (t *uniqueTable) insert(nodes []node, id NodeID, slot uint64) {
	t.slots[slot] = id
	t.n++
	if t.n*4 < len(t.slots)*3 {
		return
	}
	t.slots = make([]NodeID, len(t.slots)*2)
	mask := uint64(len(t.slots) - 1)
	for nid := NodeID(2); int(nid) < len(nodes); nid++ {
		n := &nodes[nid]
		i := hashNode(n.level, n.lo, n.hi) & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = nid
	}
}

// levelTable is the unique table of one level of the sifter's working graph
// (sift.go): an open-addressing hash set keyed on a node's (lo, hi) pair —
// the level is implicit, one table per level. Unlike uniqueTable it supports
// deletion, because adjacent-level swaps relabel nodes and free the ones
// whose reference count drops to zero. Deletion uses backward shifting, so
// the table never accumulates tombstones and probe chains stay short across
// the millions of swap/undo steps of a sifting pass. Slot value 0 marks an
// empty slot (sifter ids 0 and 1 are the terminals, which are never
// hash-consed).
type levelTable struct {
	slots []int32
	n     int
}

// hashPair mixes a (lo, hi) child pair into a table-quality 64-bit hash.
func hashPair(lo, hi int32) uint64 {
	h := uint64(uint32(lo))*mixB ^ uint64(uint32(hi))*mixC
	h ^= h >> 32
	h *= mixA
	h ^= h >> 29
	return h
}

func newLevelTable(expected int) *levelTable {
	cap := 8
	for cap*3 < expected*4 { // keep the initial load factor under 3/4
		cap *= 2
	}
	return &levelTable{slots: make([]int32, cap)}
}

// lookup probes for the node with children (a, b) and returns its id, or 0
// and the slot index where it must be inserted.
func (t *levelTable) lookup(lo, hi []int32, a, b int32) (int32, uint64) {
	mask := uint64(len(t.slots) - 1)
	for i := hashPair(a, b) & mask; ; i = (i + 1) & mask {
		id := t.slots[i]
		if id == 0 {
			return 0, i
		}
		if lo[id] == a && hi[id] == b {
			return id, i
		}
	}
}

// insert places id at the slot returned by a failed lookup and doubles the
// table past the 3/4 load factor.
func (t *levelTable) insert(lo, hi []int32, id int32, slot uint64) {
	t.slots[slot] = id
	t.n++
	if t.n*4 < len(t.slots)*3 {
		return
	}
	old := t.slots
	t.slots = make([]int32, len(old)*2)
	mask := uint64(len(t.slots) - 1)
	for _, e := range old {
		if e == 0 {
			continue
		}
		i := hashPair(lo[e], hi[e]) & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = e
	}
}

// del removes the node with children (a, b), if present, and backward-shifts
// the probe chain behind it so that linear probing stays correct without
// tombstones.
func (t *levelTable) del(lo, hi []int32, a, b int32) {
	mask := uint64(len(t.slots) - 1)
	i := hashPair(a, b) & mask
	for {
		id := t.slots[i]
		if id == 0 {
			return
		}
		if lo[id] == a && hi[id] == b {
			break
		}
		i = (i + 1) & mask
	}
	t.slots[i] = 0
	t.n--
	// An entry at slot j whose home slot h lies cyclically outside (i, j]
	// was displaced across i by linear probing; move it back into the hole
	// and continue with the new hole at j.
	for j := (i + 1) & mask; t.slots[j] != 0; j = (j + 1) & mask {
		id := t.slots[j]
		h := hashPair(lo[id], hi[id]) & mask
		if (j-h)&mask >= (j-i)&mask {
			t.slots[i] = id
			t.slots[j] = 0
			i = j
		}
	}
}
