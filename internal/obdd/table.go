package obdd

// uniqueTable is the CUDD-style unique table: an open-addressing hash set
// over the manager's node store. Slots hold NodeIDs into Manager.nodes; the
// node fields themselves live only in the nodes slice, so the table is a flat
// []int32 that the probe loop walks with no pointer chasing and no
// per-insert allocation. Capacity is a power of two, probing is linear, and
// nodes are never deleted, so there are no tombstones; the table grows by
// doubling when the load factor reaches 3/4.
//
// Slot value 0 marks an empty slot: NodeID 0 is the False terminal, and
// terminals are never hash-consed (MkNode only inserts internal nodes, whose
// ids start at 2).
type uniqueTable struct {
	slots []NodeID
	n     int // occupied slots
}

const uniqueInitialSlots = 64

// Mixing constants (splitmix64 finalizer multipliers).
const (
	mixA = 0x9E3779B97F4A7C15
	mixB = 0xBF58476D1CE4E5B9
	mixC = 0x94D049BB133111EB
)

// hashNode mixes a node's three fields into a table-quality 64-bit hash.
func hashNode(level int32, lo, hi NodeID) uint64 {
	h := uint64(uint32(level))*mixA ^ uint64(uint32(lo))*mixB ^ uint64(uint32(hi))*mixC
	h ^= h >> 32
	h *= mixB
	h ^= h >> 29
	return h
}

func (t *uniqueTable) init() {
	t.slots = make([]NodeID, uniqueInitialSlots)
	t.n = 0
}

// lookup probes for (level, lo, hi) and returns its id, or 0 and the slot
// index where it must be inserted.
func (t *uniqueTable) lookup(nodes []node, level int32, lo, hi NodeID) (NodeID, uint64) {
	mask := uint64(len(t.slots) - 1)
	for i := hashNode(level, lo, hi) & mask; ; i = (i + 1) & mask {
		id := t.slots[i]
		if id == 0 {
			return 0, i
		}
		n := &nodes[id]
		if n.level == level && n.lo == lo && n.hi == hi {
			return id, i
		}
	}
}

// insert places id at the slot returned by a failed lookup and grows the
// table past the 3/4 load factor, rehashing every node (ids 2..len-1) into
// the doubled slot array.
func (t *uniqueTable) insert(nodes []node, id NodeID, slot uint64) {
	t.slots[slot] = id
	t.n++
	if t.n*4 < len(t.slots)*3 {
		return
	}
	t.slots = make([]NodeID, len(t.slots)*2)
	mask := uint64(len(t.slots) - 1)
	for nid := NodeID(2); int(nid) < len(nodes); nid++ {
		n := &nodes[nid]
		i := hashNode(n.level, n.lo, n.hi) & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = nid
	}
}
