package obdd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mvdb/internal/budget"
)

// This file implements Rudell's sifting algorithm for dynamic variable
// reordering. The manager's node store is append-only and hash-consed with
// no deletion, so sifting cannot run in place: Reorder extracts the subgraph
// reachable from the given roots into a private mutable working graph
// (reference-counted nodes, one levelTable per level), performs adjacent-
// level swaps there, and rebuilds a fresh Manager under the improved order.
// The original manager is never mutated, which preserves the frozen-after-
// Build concurrency contract — callers swap the new manager in atomically
// under whatever write lock they already hold.

// ReorderMode selects when dynamic variable reordering runs.
type ReorderMode int

const (
	// ReorderOff keeps the static order Π.
	ReorderOff ReorderMode = iota
	// ReorderOnce runs a single sifting round over every variable.
	ReorderOnce
	// ReorderConverge repeats sifting rounds until the node count stops
	// improving or MaxRounds is reached.
	ReorderConverge
)

func (mo ReorderMode) String() string {
	switch mo {
	case ReorderOff:
		return "off"
	case ReorderOnce:
		return "once"
	case ReorderConverge:
		return "converge"
	}
	return fmt.Sprintf("ReorderMode(%d)", int(mo))
}

// ParseReorderMode parses the -reorder flag values off | once | converge.
// The empty string means off.
func ParseReorderMode(s string) (ReorderMode, error) {
	switch s {
	case "", "off":
		return ReorderOff, nil
	case "once":
		return ReorderOnce, nil
	case "converge":
		return ReorderConverge, nil
	}
	return ReorderOff, fmt.Errorf("obdd: unknown reorder mode %q (want off, once, or converge)", s)
}

// Defaults for ReorderOptions zero fields.
const (
	DefaultMaxGrowth = 1.2
	DefaultMaxRounds = 4
)

// ReorderOptions configures a sifting pass.
type ReorderOptions struct {
	// Mode selects off/once/converge; Reorder with ReorderOff is a no-op
	// that returns the manager unchanged.
	Mode ReorderMode
	// MaxGrowth bounds how far a variable may be sifted past its best-known
	// position: a directional scan stops once the live node count exceeds
	// MaxGrowth times the count at the start of that variable's sift.
	// Values below 1 (including 0) mean DefaultMaxGrowth.
	MaxGrowth float64
	// MaxRounds caps converge-mode rounds (0 = DefaultMaxRounds). Once mode
	// always runs exactly one round.
	MaxRounds int
	// Windows restricts sifting to half-open level ranges [a, b): a variable
	// never leaves the window containing its starting level, and variables
	// outside every window are not moved. The MV-index uses one window per
	// separator block so sifting cannot destroy the chain factorization.
	// Empty means one window spanning the whole order.
	Windows [][2]int
	// Ctx and Budget bound the search like compilation: cancellation and the
	// deadline are polled between swaps, and Budget.MaxNodes caps the live
	// node count of the working graph. On abort the original manager is
	// untouched.
	Ctx    context.Context
	Budget budget.Budget
}

// ReorderStats reports what one sifting pass did.
type ReorderStats struct {
	// NodesBefore and NodesAfter count internal nodes reachable from the
	// roots before and after sifting.
	NodesBefore int `json:"nodes_before"`
	NodesAfter  int `json:"nodes_after"`
	// Rounds is the number of sifting rounds run, Sifted the number of
	// variable sifts, Swaps the total adjacent-level swaps (including undo
	// and placement moves).
	Rounds int `json:"rounds"`
	Sifted int `json:"sifted_vars"`
	Swaps  int `json:"swaps"`
	// Duration is the wall-clock time of the whole pass, rebuild included.
	Duration time.Duration `json:"duration_ns"`
}

// Order returns a copy of the manager's variable order (level to external
// variable id). A manager produced by Reorder reports the learned order,
// which callers persist and feed back through CompileOptions.Order.
func (m *Manager) Order() []int {
	return append([]int(nil), m.levelVar...)
}

// UniqueTableStats returns the occupancy and capacity of the manager's
// unique table; occupied/slots is the load factor surfaced in /stats.
func (m *Manager) UniqueTableStats() (occupied, slots int) {
	return m.unique.stats()
}

// Reorder runs Rudell sifting over the subgraph reachable from roots and
// returns a fresh manager under the improved variable order together with
// the translated roots. The input manager is not modified; on error (budget
// exhaustion, cancellation, malformed windows) it returns the error and no
// manager. Variables keep their external ids — only their levels change — so
// probability vectors indexed by variable id remain valid, and the result
// represents exactly the same Boolean functions (the property tests assert
// Prob equality to 1e-12).
//
// Sifting is deterministic: the same manager, roots, and options always
// produce the same order and the same NodeIDs, so the parallel-compile
// NodeID-equivalence guarantee survives a post-compile sift.
func Reorder(m *Manager, roots []NodeID, opts ReorderOptions) (*Manager, []NodeID, ReorderStats, error) {
	start := time.Now()
	var st ReorderStats
	if opts.Mode == ReorderOff {
		return m, append([]NodeID(nil), roots...), st, nil
	}
	if opts.MaxGrowth < 1 {
		opts.MaxGrowth = DefaultMaxGrowth
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	if opts.Mode == ReorderOnce {
		maxRounds = 1
	}
	wins, err := normalizeWindows(opts.Windows, len(m.levelVar))
	if err != nil {
		return nil, nil, st, err
	}

	s, rootIDs := newSifter(m, roots, opts)
	st.NodesBefore = s.count

	for round := 1; round <= maxRounds; round++ {
		st.Rounds = round
		roundStart := s.count
		sifted, err := s.round(wins)
		st.Sifted += sifted
		st.Swaps = s.swaps
		if err != nil {
			return nil, nil, st, err
		}
		if opts.Mode != ReorderConverge || s.count >= roundStart {
			break
		}
	}

	st.NodesAfter = s.count
	st.Swaps = s.swaps
	nm, newRoots := s.build(m, rootIDs)
	st.Duration = time.Since(start)
	return nm, newRoots, st, nil
}

// normalizeWindows validates and sorts the window list, defaulting to one
// window over the whole order.
func normalizeWindows(ws [][2]int, numVars int) ([][2]int32, error) {
	if len(ws) == 0 {
		return [][2]int32{{0, int32(numVars)}}, nil
	}
	out := make([][2]int32, 0, len(ws))
	for _, w := range ws {
		if w[0] < 0 || w[1] > numVars || w[0] >= w[1] {
			return nil, fmt.Errorf("obdd: reorder window [%d,%d) out of range (have %d levels)", w[0], w[1], numVars)
		}
		out = append(out, [2]int32{int32(w[0]), int32(w[1])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	for i := 1; i < len(out); i++ {
		if out[i][0] < out[i-1][1] {
			return nil, fmt.Errorf("obdd: reorder windows [%d,%d) and [%d,%d) overlap",
				out[i-1][0], out[i-1][1], out[i][0], out[i][1])
		}
	}
	return out, nil
}

// errGrowth is the internal sentinel for "this directional scan exceeded the
// growth bound"; it never escapes to callers.
var errGrowth = errors.New("obdd: sift growth bound")

// sifter is the mutable working graph of one Reorder call. Nodes live in
// parallel arrays indexed by a private id space (0 and 1 are the terminals);
// freed ids are recycled through a free list. Every level has its own
// levelTable for hash-consing and a list of its nodes; lists may carry stale
// entries (a deref below a swap frees nodes at deeper levels without
// touching those levels' lists), and a freed id may be recycled — possibly
// at the very level whose list still holds the stale entry — so each list
// entry packs the node's generation alongside its id and iteration filters
// on both the generation and the level field. Filtering on level alone is
// wrong: a stale entry whose id was recycled at the same level would be
// visited twice.
type sifter struct {
	lvl    []int32 // per node: current level, -1 when freed, terminalLevel for 0/1
	lo, hi []int32
	ref    []int32 // parent-edge + root reference counts
	gen    []int32 // per id: incremented on every recycle, stamps list entries
	free   []int32
	count  int // live internal nodes

	tabs  []*levelTable
	lists [][]int64     // packed entry(gen, id) per level
	order []int         // level -> external variable id
	pos   map[int]int32 // external variable id -> current level

	maxGrowth float64
	ctx       context.Context
	deadline  time.Time
	maxNodes  int
	tick      int
	swaps     int
}

// entry packs a (generation, id) pair for a level list; unpack with entryID
// and entryGen. An entry is live at level l iff the id's generation still
// matches and its level is still l.
func entry(gen, id int32) int64 { return int64(gen)<<32 | int64(uint32(id)) }
func entryID(e int64) int32     { return int32(uint32(e)) }
func entryGen(e int64) int32    { return int32(e >> 32) }
func (s *sifter) liveAt(e int64, l int32) (int32, bool) {
	id := entryID(e)
	return id, s.gen[id] == entryGen(e) && s.lvl[id] == l
}

// newSifter extracts the subgraph reachable from roots into a fresh working
// graph and returns it with the roots mapped into sifter id space.
func newSifter(m *Manager, roots []NodeID, opts ReorderOptions) (*sifter, []int32) {
	nv := len(m.levelVar)
	s := &sifter{
		lvl:       []int32{terminalLevel, terminalLevel},
		lo:        []int32{0, 0},
		hi:        []int32{0, 0},
		ref:       []int32{0, 0},
		gen:       []int32{0, 0},
		tabs:      make([]*levelTable, nv),
		lists:     make([][]int64, nv),
		order:     append([]int(nil), m.levelVar...),
		pos:       make(map[int]int32, nv),
		maxGrowth: opts.MaxGrowth,
		ctx:       opts.Ctx,
		deadline:  opts.Budget.Deadline,
		maxNodes:  opts.Budget.MaxNodes,
	}
	for l := range s.tabs {
		s.tabs[l] = newLevelTable(8)
	}
	for l, v := range s.order {
		s.pos[v] = int32(l)
	}
	memo := getNodeMemo(len(m.nodes), true)
	defer putNodeMemo(memo)
	var ex func(NodeID) int32
	ex = func(f NodeID) int32 {
		if f <= True {
			return int32(f)
		}
		if r, ok := memo.get(f); ok {
			return int32(r)
		}
		n := m.nodes[f]
		lo := ex(n.lo)
		hi := ex(n.hi)
		id := s.mk(n.level, lo, hi)
		memo.put(f, NodeID(id))
		return id
	}
	rootIDs := make([]int32, len(roots))
	for i, r := range roots {
		id := ex(r)
		if id > 1 {
			s.ref[id]++
		}
		rootIDs[i] = id
	}
	return s, rootIDs
}

// alloc claims a node id (recycling freed ids), references its children, and
// counts it live. Table and list registration is the caller's (mk's) job.
func (s *sifter) alloc(level, lo, hi int32) int32 {
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		s.lvl[id], s.lo[id], s.hi[id], s.ref[id] = level, lo, hi, 0
		s.gen[id]++ // invalidate any stale list entries pointing at this id
	} else {
		id = int32(len(s.lvl))
		s.lvl = append(s.lvl, level)
		s.lo = append(s.lo, lo)
		s.hi = append(s.hi, hi)
		s.ref = append(s.ref, 0)
		s.gen = append(s.gen, 0)
	}
	s.ref[lo]++
	s.ref[hi]++
	s.count++
	return id
}

// mk returns the reduced, hash-consed node (level, lo, hi) in the working
// graph, creating it if needed.
func (s *sifter) mk(level, lo, hi int32) int32 {
	if lo == hi {
		return lo
	}
	t := s.tabs[level]
	id, slot := t.lookup(s.lo, s.hi, lo, hi)
	if id != 0 {
		return id
	}
	id = s.alloc(level, lo, hi)
	t.insert(s.lo, s.hi, id, slot)
	s.lists[level] = append(s.lists[level], entry(s.gen[id], id))
	return id
}

// deref drops one reference from id, freeing it (and recursively its
// children) when the count reaches zero. Freed nodes leave their level table
// immediately; their list entries go stale and are filtered on iteration.
func (s *sifter) deref(id int32) {
	for id > 1 {
		s.ref[id]--
		if s.ref[id] > 0 {
			return
		}
		s.tabs[s.lvl[id]].del(s.lo, s.hi, s.lo[id], s.hi[id])
		s.lvl[id] = -1
		s.count--
		s.free = append(s.free, id)
		lo, hi := s.lo[id], s.hi[id]
		s.deref(lo)
		id = hi
	}
}

// swap exchanges adjacent levels i and i+1 (variables x above y) in place.
// Nodes at other levels are untouched except for derefs freeing dead ones,
// so a swap costs O(size of the two levels). The three phases:
//
//  1. Every y-node provisionally moves up to level i. Survivors (referenced
//     from roots or levels above i) legitimately live there after the swap;
//     the rest die in phase 3 when their last interacting parent lets go.
//  2. x-nodes with no y-child do not depend on y; they keep their label and
//     children and sink to level i+1.
//  3. Interacting x-nodes keep their id — parents above never need updating
//     — but take label y and have their children rebuilt as hash-consed
//     x-nodes over the four (x, y) cofactors: f = y(x(f00,f10), x(f01,f11)).
//
// Phase 3 cannot create a redundant node or collide with a surviving y-node:
// either case forces two equal cofactors that would contradict the
// reducedness or canonicity of the pre-swap graph, which is an invariant.
func (s *sifter) swap(i int32) {
	top := s.lists[i]
	bot := s.lists[i+1]
	newTopTab := newLevelTable(len(bot) + len(top))
	newBotTab := newLevelTable(len(top))
	newTop := make([]int64, 0, len(bot)+len(top))
	newBot := make([]int64, 0, len(top))

	for _, e := range bot {
		id, ok := s.liveAt(e, i+1)
		if !ok {
			continue // stale list entry
		}
		s.lvl[id] = i
		_, slot := newTopTab.lookup(s.lo, s.hi, s.lo[id], s.hi[id])
		newTopTab.insert(s.lo, s.hi, id, slot)
		newTop = append(newTop, e)
	}

	var inter []int32
	for _, e := range top {
		id, ok := s.liveAt(e, i)
		if !ok {
			continue
		}
		if s.lvl[s.lo[id]] == i || s.lvl[s.hi[id]] == i {
			inter = append(inter, id)
			continue
		}
		s.lvl[id] = i + 1
		_, slot := newBotTab.lookup(s.lo, s.hi, s.lo[id], s.hi[id])
		newBotTab.insert(s.lo, s.hi, id, slot)
		newBot = append(newBot, e)
	}

	s.tabs[i], s.tabs[i+1] = newTopTab, newBotTab
	s.lists[i], s.lists[i+1] = newTop, newBot

	for _, f := range inter {
		f0, f1 := s.lo[f], s.hi[f]
		f00, f01 := f0, f0
		if f0 > 1 && s.lvl[f0] == i {
			f00, f01 = s.lo[f0], s.hi[f0]
		}
		f10, f11 := f1, f1
		if f1 > 1 && s.lvl[f1] == i {
			f10, f11 = s.lo[f1], s.hi[f1]
		}
		g0 := s.mk(i+1, f00, f10)
		g1 := s.mk(i+1, f01, f11)
		if g0 == g1 {
			panic("obdd: sift swap produced a redundant node")
		}
		s.ref[g0]++
		s.ref[g1]++
		s.lo[f], s.hi[f] = g0, g1
		id, slot := s.tabs[i].lookup(s.lo, s.hi, g0, g1)
		if id != 0 {
			panic("obdd: sift swap produced a duplicate node")
		}
		s.tabs[i].insert(s.lo, s.hi, f, slot)
		s.lists[i] = append(s.lists[i], entry(s.gen[f], f))
		s.deref(f0)
		s.deref(f1)
	}

	s.order[i], s.order[i+1] = s.order[i+1], s.order[i]
	s.pos[s.order[i]] = i
	s.pos[s.order[i+1]] = i + 1
	s.swaps++
}

// step polls the resource envelope between swaps.
func (s *sifter) step() error {
	if s.maxNodes > 0 && s.count > s.maxNodes {
		return budget.Exceeded("obdd reorder node", s.maxNodes)
	}
	s.tick++
	if s.tick&63 == 0 {
		return budget.Check(s.ctx, s.deadline)
	}
	return nil
}

// round runs one sifting round: variables in order of decreasing level
// population, each sifted to its best position within its window. Returns
// the number of variables sifted.
func (s *sifter) round(wins [][2]int32) (int, error) {
	type cand struct {
		v    int
		size int
	}
	var cands []cand
	for _, w := range wins {
		if w[1]-w[0] < 2 {
			continue
		}
		for l := w[0]; l < w[1]; l++ {
			if n := s.tabs[l].n; n > 0 {
				cands = append(cands, cand{v: s.order[l], size: n})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].size > cands[j].size })

	sifted := 0
	for _, c := range cands {
		l, ok := s.pos[c.v]
		if !ok {
			continue
		}
		w, ok := windowOf(wins, l)
		if !ok || w[1]-w[0] < 2 {
			continue
		}
		if err := s.siftOne(l, w); err != nil {
			return sifted, err
		}
		sifted++
	}
	return sifted, nil
}

// windowOf finds the window containing level l.
func windowOf(wins [][2]int32, l int32) ([2]int32, bool) {
	i := sort.Search(len(wins), func(i int) bool { return wins[i][1] > l })
	if i < len(wins) && wins[i][0] <= l && l < wins[i][1] {
		return wins[i], true
	}
	return [2]int32{}, false
}

// siftOne moves the variable currently at level l through every position of
// its window — nearer end first, then the far end — tracking the best total
// node count, and finally parks it at the best position. A directional scan
// stops early once the count exceeds maxGrowth times the starting count.
func (s *sifter) siftOne(l int32, w [2]int32) error {
	cur := l
	best := s.count
	bestPos := l
	limit := int(s.maxGrowth * float64(s.count))
	if limit < s.count+2 {
		limit = s.count + 2 // let tiny graphs explore at all
	}

	moveTo := func(target int32, track bool) error {
		for cur != target {
			if err := s.step(); err != nil {
				return err
			}
			if cur < target {
				s.swap(cur)
				cur++
			} else {
				s.swap(cur - 1)
				cur--
			}
			if track {
				if s.count < best {
					best, bestPos = s.count, cur
				}
				if s.count > limit {
					return errGrowth
				}
			}
		}
		return nil
	}

	first, second := w[1]-1, w[0]
	if l-w[0] < w[1]-1-l {
		first, second = w[0], w[1]-1
	}
	if err := moveTo(first, true); err != nil && err != errGrowth {
		return err
	}
	if err := moveTo(second, true); err != nil && err != errGrowth {
		return err
	}
	return moveTo(bestPos, false)
}

// build rebuilds a fresh Manager under the sifted order and translates the
// roots. The new manager inherits the source's apply-cache cap but starts
// unarmed; callers re-arm with SetBudget if needed.
func (s *sifter) build(src *Manager, rootIDs []int32) (*Manager, []NodeID) {
	nm := NewManager(s.order)
	nm.SetApplyCacheMax(src.cache.max)
	memo := make([]NodeID, len(s.lvl)) // sifter id -> new NodeID; 0 = unset (internal nodes never map to False)
	var rec func(int32) NodeID
	rec = func(x int32) NodeID {
		if x <= 1 {
			return NodeID(x)
		}
		if r := memo[x]; r != 0 {
			return r
		}
		r := nm.MkNode(s.lvl[x], rec(s.lo[x]), rec(s.hi[x]))
		memo[x] = r
		return r
	}
	roots := make([]NodeID, len(rootIDs))
	for i, r := range rootIDs {
		roots[i] = rec(r)
	}
	return nm, roots
}
