// Package obdd implements Ordered Binary Decision Diagrams with the
// operations the paper needs: hash-consed reduced nodes, generic Apply
// synthesis (the CUDD-style baseline), the concatenation fast path for
// independent sub-OBDDs (Section 4.2), probability computation under
// possibly-negative tuple probabilities (Section 3.3), the tuple order Π
// induced by attribute permutations π, and the ConOBDD compilation algorithm
// (rules R1-R4).
//
// The memory layer follows CUDD's design (see DESIGN.md §8): the unique
// table is a custom open-addressing hash set of NodeIDs (table.go), Apply
// results go through a fixed-size direct-mapped computed cache (cache.go),
// and every per-call traversal memo is a dense NodeID-indexed scratch array
// borrowed from a sync.Pool instead of a freshly allocated Go map.
package obdd

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"mvdb/internal/budget"
)

// NodeID identifies a node in a Manager. The two terminals have fixed ids.
// Ids are dense: node k is the k-th allocation, so slices indexed by NodeID
// serve as O(1) annotation maps.
type NodeID int32

// Terminal nodes.
const (
	False NodeID = 0
	True  NodeID = 1
)

// terminalLevel sorts terminals below every variable level.
const terminalLevel = math.MaxInt32

type node struct {
	level  int32
	lo, hi NodeID
}

type opKind int8

const (
	opAnd opKind = iota
	opOr
)

// Manager owns the node store for a fixed variable order. Nodes are reduced
// (no node with lo == hi) and hash-consed (structurally unique), so two
// equivalent formulas compile to the same NodeID.
//
// # Concurrency contract
//
// A Manager is not synchronized. Node-creating operations (MkNode, Var,
// Apply synthesis, OrDisjoint, Not, Import, BuildDNF, ...) must run on a
// single goroutine. Once no more nodes are being created — e.g. after an
// MV-index is built — the manager is effectively frozen and every read-only
// operation (NodeLevel, Lo, Hi, MaxLevel, Prob, Eval, Reachable, ...) is
// safe for any number of concurrent callers. Concurrent writers that need
// scratch space (per-query OBDDs, parallel compilation workers) should
// create a private manager over the same order with NewScratch and, when the
// result must live in the shared manager, merge it back with Import on the
// owning goroutine.
type Manager struct {
	nodes    []node
	maxLevel []int32 // highest (deepest) variable level in each node's cone
	unique   uniqueTable
	cache    applyCache

	levelVar []int         // level -> external variable id
	varLevel map[int]int32 // external variable id -> level

	lim *limits // nil when the manager is unbudgeted
}

// limits arms a manager with the resource envelope of one evaluation. The
// allocation counter is shared (by pointer) with every scratch manager
// derived while armed, so MaxNodes bounds the total allocation of a
// parallel compilation, not each worker separately; tick is manager-local,
// keeping the periodic cancellation poll race-free across workers.
type limits struct {
	ctx      context.Context
	deadline time.Time
	maxNodes int64
	nodes    *atomic.Int64
	tick     int
}

// note records one node allocation and aborts (via budget.Panic, to be
// caught at the package entry point) when the node budget is exhausted,
// polling cancellation and the deadline every stride allocations.
func (l *limits) note() {
	n := l.nodes.Add(1)
	if l.maxNodes > 0 && n > l.maxNodes {
		budget.Panic(budget.Exceeded("obdd node", int(l.maxNodes)))
	}
	l.tick++
	if l.tick&1023 != 0 {
		return
	}
	if err := budget.Check(l.ctx, l.deadline); err != nil {
		budget.Panic(err)
	}
}

// SetBudget arms (or, with nil context and a zero budget, disarms) the
// manager: node-creating operations count allocations against b.MaxNodes
// and periodically poll ctx and b.Deadline, aborting with budget.Panic. The
// caller must run every node-creating operation on an armed manager under
// budget.Catch. Scratch managers created while armed inherit the arming and
// share the allocation counter. Re-arming an already-armed manager keeps
// the shared counter — outstanding scratch managers continue to count into
// the same budget instead of an orphaned one. Arming is a write operation
// under the manager's concurrency contract — never call it while other
// goroutines use the manager.
func (m *Manager) SetBudget(ctx context.Context, b budget.Budget) {
	if ctx == nil && b.IsZero() {
		m.lim = nil
		return
	}
	var ctr *atomic.Int64
	if m.lim != nil {
		ctr = m.lim.nodes
	} else {
		ctr = new(atomic.Int64)
		ctr.Store(int64(len(m.nodes)))
	}
	m.lim = &limits{ctx: ctx, deadline: b.Deadline, maxNodes: int64(b.MaxNodes), nodes: ctr}
}

// Budgeted reports whether the manager is currently armed with a budget or
// cancellation context.
func (m *Manager) Budgeted() bool { return m.lim != nil }

// NewManager creates a manager whose variable order is the given sequence of
// external variable ids, first to last. The apply cache is capped at
// DefaultApplyCacheSize; tune it with SetApplyCacheMax.
func NewManager(order []int) *Manager {
	m := &Manager{
		nodes:    []node{{level: terminalLevel}, {level: terminalLevel}},
		maxLevel: []int32{-1, -1},
		levelVar: append([]int(nil), order...),
		varLevel: make(map[int]int32, len(order)),
	}
	m.unique.init()
	m.cache.init(DefaultApplyCacheSize)
	for i, v := range order {
		if _, dup := m.varLevel[v]; dup {
			panic(fmt.Sprintf("obdd: variable %d appears twice in order", v))
		}
		m.varLevel[v] = int32(i)
	}
	return m
}

// SetApplyCacheMax caps the direct-mapped apply/computed cache at the given
// number of entries (rounded up to a power of two, 12 bytes each). The cache
// starts small and doubles as the node store grows, so the cap only binds on
// large compilations; it never affects results, only how much Apply
// recomputes. Shrinking below the current size drops existing entries.
func (m *Manager) SetApplyCacheMax(entries int) {
	if entries < applyCacheInitial {
		entries = applyCacheInitial
	}
	max := ceilPow2(entries)
	if max < len(m.cache.keys) {
		m.cache.init(max)
		return
	}
	m.cache.max = max
}

// ApplyCacheSize returns the current number of apply-cache slots (a power of
// two between its initial size and the configured maximum).
func (m *Manager) ApplyCacheSize() int { return len(m.cache.keys) }

// ResetApplyCache drops every computed-table entry in place (a memclr).
// Entries never become stale — the node store is append-only — so this is
// purely a memory/benchmark knob.
func (m *Manager) ResetApplyCache() { m.cache.reset() }

// ApplyCacheStats returns the apply/computed-table hit and miss counts of
// this manager since creation. Reading them follows the manager's
// concurrency contract: safe on a frozen manager or from the goroutine that
// owns node creation (scratch managers accumulate their own counts; callers
// that fan work out across scratch managers aggregate them).
func (m *Manager) ApplyCacheStats() (hits, misses uint64) {
	return m.cache.hits, m.cache.misses
}

// NewScratch creates an empty manager over the same variable order as m,
// sharing m's (immutable) order tables instead of copying them — the cost is
// a few small allocations, independent of the number of variables. The
// scratch manager has its own node store, so building nodes in it never
// mutates m: this is how concurrent queries compile their OBDDs against a
// frozen shared manager, and how parallel compilation workers get private
// node stores. The scratch manager inherits m's apply-cache cap, but its
// cache starts at the initial size and only grows with its own node store.
func (m *Manager) NewScratch() *Manager {
	s := &Manager{
		nodes:    []node{{level: terminalLevel}, {level: terminalLevel}},
		maxLevel: []int32{-1, -1},
		levelVar: m.levelVar,
		varLevel: m.varLevel,
	}
	s.unique.init()
	s.cache.init(m.cache.max)
	if m.lim != nil {
		// Inherit the arming with a private tick but the shared allocation
		// counter: the budget bounds the evaluation, not each manager.
		s.lim = &limits{ctx: m.lim.ctx, deadline: m.lim.deadline, maxNodes: m.lim.maxNodes, nodes: m.lim.nodes}
	}
	return s
}

// SameOrder reports whether two managers use the same variable order.
// Managers related by NewScratch share their order tables and are recognized
// in O(1); unrelated managers are compared element-wise.
func (m *Manager) SameOrder(o *Manager) bool {
	if len(m.levelVar) != len(o.levelVar) {
		return false
	}
	if len(m.levelVar) == 0 || &m.levelVar[0] == &o.levelVar[0] {
		return true
	}
	for i, v := range m.levelVar {
		if o.levelVar[i] != v {
			return false
		}
	}
	return true
}

// Import copies the sub-OBDD rooted at f in src into m, hash-consing the
// nodes into m's store, and returns the corresponding root in m. Both
// managers must use the same variable order (levels then coincide, so no
// re-ordering is needed). The result is structurally identical to f; cost is
// O(|f|). This is the merge step of parallel compilation: workers build
// per-separator-value blocks in scratch managers and the owner imports them.
func (m *Manager) Import(src *Manager, f NodeID) NodeID {
	if src == m {
		return f
	}
	if !m.SameOrder(src) {
		panic("obdd: Import between managers with different variable orders")
	}
	memo := getNodeMemo(len(src.nodes), true)
	defer putNodeMemo(memo)
	var rec func(NodeID) NodeID
	rec = func(x NodeID) NodeID {
		if x <= True {
			return x
		}
		if r, ok := memo.get(x); ok {
			return r
		}
		n := src.nodes[x]
		r := m.MkNode(n.level, rec(n.lo), rec(n.hi))
		memo.put(x, r)
		return r
	}
	return rec(f)
}

// StructEqual reports whether two OBDDs (possibly in different managers) are
// structurally identical: same levels, same external variables at those
// levels, same branching. For reduced ordered BDDs over the same order this
// is exactly semantic equivalence — the equality the parallel-vs-sequential
// compilation tests assert.
func StructEqual(ma *Manager, fa NodeID, mb *Manager, fb NodeID) bool {
	type pair struct{ a, b NodeID }
	memo := map[pair]bool{}
	var rec func(a, b NodeID) bool
	rec = func(a, b NodeID) bool {
		if ma.IsTerminal(a) || mb.IsTerminal(b) {
			return a == b // terminals have fixed ids in every manager
		}
		k := pair{a, b}
		if r, ok := memo[k]; ok {
			return r
		}
		memo[k] = true // assume equal while descending (graphs are acyclic)
		na, nb := ma.nodes[a], mb.nodes[b]
		eq := na.level == nb.level &&
			ma.levelVar[na.level] == mb.levelVar[nb.level] &&
			rec(na.lo, nb.lo) && rec(na.hi, nb.hi)
		memo[k] = eq
		return eq
	}
	return rec(fa, fb)
}

// NumVars returns the number of variables in the order.
func (m *Manager) NumVars() int { return len(m.levelVar) }

// NumNodes returns the total number of nodes allocated (including both
// terminals), a measure of overall memory use.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Level returns the level of a variable id, or -1 if unknown.
func (m *Manager) Level(v int) int {
	if l, ok := m.varLevel[v]; ok {
		return int(l)
	}
	return -1
}

// VarAtLevel returns the external variable id at the given level.
func (m *Manager) VarAtLevel(level int) int { return m.levelVar[level] }

// NodeLevel returns the level of a node (terminalLevel for terminals).
func (m *Manager) NodeLevel(f NodeID) int32 { return m.nodes[f].level }

// Lo and Hi return a node's children.
func (m *Manager) Lo(f NodeID) NodeID { return m.nodes[f].lo }

// Hi returns the 1-child.
func (m *Manager) Hi(f NodeID) NodeID { return m.nodes[f].hi }

// IsTerminal reports whether f is a terminal.
func (m *Manager) IsTerminal(f NodeID) bool { return f == False || f == True }

// MkNode returns the reduced, hash-consed node (level, lo, hi).
func (m *Manager) MkNode(level int32, lo, hi NodeID) NodeID {
	if lo == hi {
		return lo
	}
	id, slot := m.unique.lookup(m.nodes, level, lo, hi)
	if id != 0 {
		return id
	}
	return m.addNode(level, lo, hi, slot)
}

// addNode appends a new node and registers it in the unique table at the
// slot returned by a failed lookup.
func (m *Manager) addNode(level int32, lo, hi NodeID, slot uint64) NodeID {
	id := NodeID(len(m.nodes))
	if m.lim != nil {
		m.lim.note()
	}
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	ml := level
	if l := m.maxLevel[lo]; l > ml {
		ml = l
	}
	if l := m.maxLevel[hi]; l > ml {
		ml = l
	}
	m.maxLevel = append(m.maxLevel, ml)
	m.unique.insert(m.nodes, id, slot)
	m.cache.maybeGrow(len(m.nodes))
	return id
}

// Var returns the node testing the given external variable.
func (m *Manager) Var(v int) NodeID {
	l, ok := m.varLevel[v]
	if !ok {
		panic(fmt.Sprintf("obdd: variable %d not in order", v))
	}
	return m.MkNode(l, False, True)
}

// MaxLevel returns the deepest variable level in f's cone (-1 for
// terminals). Because nodes are ordered, the shallowest level is the root's.
func (m *Manager) MaxLevel(f NodeID) int32 { return m.maxLevel[f] }

// And returns f ∧ g by synthesis (Apply).
func (m *Manager) And(f, g NodeID) NodeID { return m.apply(opAnd, f, g) }

// Or returns f ∨ g by synthesis (Apply).
func (m *Manager) Or(f, g NodeID) NodeID { return m.apply(opOr, f, g) }

func (m *Manager) apply(op opKind, f, g NodeID) NodeID {
	// Terminal cases.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
	}
	if f == g {
		return f
	}
	if f > g { // canonicalize: both ops are commutative
		f, g = g, f
	}
	key := applyKeyPack(op, f, g)
	if r, ok := m.cache.get(key); ok {
		m.cache.hits++
		return r
	}
	m.cache.misses++
	nf, ng := m.nodes[f], m.nodes[g]
	var level int32
	var fl, fh, gl, gh NodeID
	switch {
	case nf.level < ng.level:
		level, fl, fh, gl, gh = nf.level, nf.lo, nf.hi, g, g
	case nf.level > ng.level:
		level, fl, fh, gl, gh = ng.level, f, f, ng.lo, ng.hi
	default:
		level, fl, fh, gl, gh = nf.level, nf.lo, nf.hi, ng.lo, ng.hi
	}
	r := m.MkNode(level, m.apply(op, fl, gl), m.apply(op, fh, gh))
	m.cache.put(key, r)
	return r
}

// Not returns the complement of f by swapping terminals.
func (m *Manager) Not(f NodeID) NodeID {
	memo := getNodeMemo(len(m.nodes), false)
	defer putNodeMemo(memo)
	return m.not(f, memo)
}

func (m *Manager) not(f NodeID, memo *nodeMemo) NodeID {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := memo.get(f); ok {
		return r
	}
	n := m.nodes[f]
	r := m.MkNode(n.level, m.not(n.lo, memo), m.not(n.hi, memo))
	memo.put(f, r)
	return r
}

// CanConcat reports whether f ∨ g (or f ∧ g) can be built by concatenation:
// every variable of f strictly precedes every variable of g in the order.
// Terminals concatenate trivially.
func (m *Manager) CanConcat(f, g NodeID) bool {
	if m.IsTerminal(f) || m.IsTerminal(g) {
		return true
	}
	return m.maxLevel[f] < m.nodes[g].level
}

// OrDisjoint builds f ∨ g by redirecting the False sink of f to g. It
// requires CanConcat(f, g); the cost is O(|f|), independent of |g| — the
// concatenation step of Section 4.2.
func (m *Manager) OrDisjoint(f, g NodeID) NodeID {
	if f == False {
		return g
	}
	if f == True || g == False {
		return f
	}
	if !m.CanConcat(f, g) {
		panic("obdd: OrDisjoint on overlapping spans")
	}
	memo := getNodeMemo(len(m.nodes), false)
	defer putNodeMemo(memo)
	return m.replaceSink(f, False, g, memo)
}

// AndDisjoint builds f ∧ g by redirecting the True sink of f to g, under the
// same precondition as OrDisjoint.
func (m *Manager) AndDisjoint(f, g NodeID) NodeID {
	if f == True {
		return g
	}
	if f == False || g == True {
		return f
	}
	if !m.CanConcat(f, g) {
		panic("obdd: AndDisjoint on overlapping spans")
	}
	memo := getNodeMemo(len(m.nodes), false)
	defer putNodeMemo(memo)
	return m.replaceSink(f, True, g, memo)
}

func (m *Manager) replaceSink(f, sink, g NodeID, memo *nodeMemo) NodeID {
	if f == sink {
		return g
	}
	if m.IsTerminal(f) {
		return f
	}
	if r, ok := memo.get(f); ok {
		return r
	}
	n := m.nodes[f]
	r := m.MkNode(n.level, m.replaceSink(n.lo, sink, g, memo), m.replaceSink(n.hi, sink, g, memo))
	memo.put(f, r)
	return r
}

// Prob computes P(f) where probs is indexed by external variable id. It is
// the bottom-up Shannon expansion of Section 4.1 and is valid verbatim for
// negative probabilities. Safe for concurrent callers on a frozen manager —
// the memo is per-call scratch from a pool.
func (m *Manager) Prob(f NodeID, probs []float64) float64 {
	memo := getFloatMemo(len(m.nodes), false)
	defer putFloatMemo(memo)
	return m.prob(f, probs, memo)
}

func (m *Manager) prob(f NodeID, probs []float64, memo *floatMemo) float64 {
	switch f {
	case False:
		return 0
	case True:
		return 1
	}
	if p, ok := memo.get(f); ok {
		return p
	}
	n := m.nodes[f]
	p := probs[m.levelVar[n.level]]
	r := (1-p)*m.prob(n.lo, probs, memo) + p*m.prob(n.hi, probs, memo)
	memo.put(f, r)
	return r
}

// Eval evaluates f under a variable assignment.
func (m *Manager) Eval(f NodeID, assign func(v int) bool) bool {
	for !m.IsTerminal(f) {
		n := m.nodes[f]
		if assign(m.levelVar[n.level]) {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// Reachable returns all nodes reachable from f, terminals excluded.
func (m *Manager) Reachable(f NodeID) []NodeID {
	seen := getNodeMemo(len(m.nodes), false)
	defer putNodeMemo(seen)
	var out []NodeID
	var walk func(NodeID)
	walk = func(x NodeID) {
		if m.IsTerminal(x) {
			return
		}
		if _, ok := seen.get(x); ok {
			return
		}
		seen.put(x, 0)
		out = append(out, x)
		walk(m.nodes[x].lo)
		walk(m.nodes[x].hi)
	}
	walk(f)
	return out
}

// Size returns the number of internal nodes reachable from f — the paper's
// OBDD size (Figure 7).
func (m *Manager) Size(f NodeID) int { return len(m.Reachable(f)) }

// Width returns the maximum number of reachable nodes labeled with any one
// level (Section 4.1).
func (m *Manager) Width(f NodeID) int {
	perLevel := map[int32]int{}
	w := 0
	for _, id := range m.Reachable(f) {
		l := m.nodes[id].level
		perLevel[l]++
		if perLevel[l] > w {
			w = perLevel[l]
		}
	}
	return w
}

// Support returns the sorted external variable ids appearing in f.
func (m *Manager) Support(f NodeID) []int {
	levels := map[int32]bool{}
	for _, id := range m.Reachable(f) {
		levels[m.nodes[id].level] = true
	}
	out := make([]int, 0, len(levels))
	for l := range levels {
		out = append(out, m.levelVar[l])
	}
	sort.Ints(out)
	return out
}

// Compact builds a fresh manager containing only the nodes reachable from
// the given roots and returns it with the translated roots. Compilation and
// per-query synthesis leave dead intermediate nodes behind; long-running
// sessions compact to bound memory. The variable order is preserved.
func (m *Manager) Compact(roots ...NodeID) (*Manager, []NodeID) {
	nm := NewManager(m.levelVar)
	nm.SetApplyCacheMax(m.cache.max)
	memo := getNodeMemo(len(m.nodes), true)
	defer putNodeMemo(memo)
	var rebuild func(NodeID) NodeID
	rebuild = func(f NodeID) NodeID {
		if f <= True {
			return f
		}
		if r, ok := memo.get(f); ok {
			return r
		}
		n := m.nodes[f]
		r := nm.MkNode(n.level, rebuild(n.lo), rebuild(n.hi))
		memo.put(f, r)
		return r
	}
	out := make([]NodeID, len(roots))
	for i, r := range roots {
		out[i] = rebuild(r)
	}
	return nm, out
}

// Cofactor restricts f by fixing variable v to the given value.
func (m *Manager) Cofactor(f NodeID, v int, value bool) NodeID {
	l, ok := m.varLevel[v]
	if !ok {
		return f
	}
	memo := getNodeMemo(len(m.nodes), false)
	defer putNodeMemo(memo)
	var rec func(NodeID) NodeID
	rec = func(g NodeID) NodeID {
		if m.IsTerminal(g) || m.nodes[g].level > l {
			return g
		}
		if r, hit := memo.get(g); hit {
			return r
		}
		n := m.nodes[g]
		var r NodeID
		if n.level == l {
			if value {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			r = m.MkNode(n.level, rec(n.lo), rec(n.hi))
		}
		memo.put(g, r)
		return r
	}
	return rec(f)
}

// Exists existentially quantifies variable v out of f:
// ∃v.f = f|v=0 ∨ f|v=1.
func (m *Manager) Exists(f NodeID, v int) NodeID {
	return m.Or(m.Cofactor(f, v, false), m.Cofactor(f, v, true))
}

// ForAll universally quantifies variable v out of f:
// ∀v.f = f|v=0 ∧ f|v=1.
func (m *Manager) ForAll(f NodeID, v int) NodeID {
	return m.And(m.Cofactor(f, v, false), m.Cofactor(f, v, true))
}

// CountModels returns the number of satisfying assignments of f over the
// manager's full variable set, computed as P(f) under the uniform
// distribution times 2^NumVars. Exact up to float64 precision (useful for
// up to ~2^52 models).
func (m *Manager) CountModels(f NodeID) float64 {
	probs := make([]float64, 0, len(m.varLevel)+1)
	max := 0
	for v := range m.varLevel {
		if v > max {
			max = v
		}
	}
	probs = make([]float64, max+1)
	for v := range m.varLevel {
		probs[v] = 0.5
	}
	return m.Prob(f, probs) * math.Pow(2, float64(m.NumVars()))
}
