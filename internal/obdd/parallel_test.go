package obdd

import (
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// randSepDB builds a database for Q() :- R(x), S(x,y) with n separator
// values, random tuple probabilities, and some values missing from R or S so
// empty blocks and probe pruning are exercised.
func randSepDB(rng *rand.Rand, n int64) *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	for i := int64(1); i <= n; i++ {
		if rng.Intn(5) > 0 {
			db.MustInsert("R", rng.Float64()*3, engine.Int(i))
		}
		for j := int64(0); j < rng.Int63n(4); j++ {
			db.MustInsert("S", rng.Float64()*3, engine.Int(i), engine.Int(100+10*i+j))
		}
	}
	return db
}

// compileBoth compiles q sequentially and with the given parallelism and
// returns both managers/roots plus their stats.
func compileBoth(t *testing.T, db *engine.Database, q ucq.UCQ, pi Perm, par int) (ms *Manager, fs NodeID, ss CompileStats, mp *Manager, fp NodeID, sp CompileStats) {
	t.Helper()
	var err error
	ms, fs, ss, err = Compile(db, q, pi, CompileOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("sequential compile: %v", err)
	}
	mp, fp, sp, err = Compile(db, q, pi, CompileOptions{Parallelism: par})
	if err != nil {
		t.Fatalf("parallel compile: %v", err)
	}
	return
}

// assertSame checks the parallel result is structurally identical to the
// sequential reference: same node structure, size, width, stats, and
// bitwise-equal probability.
func assertSame(t *testing.T, db *engine.Database, ms *Manager, fs NodeID, ss CompileStats, mp *Manager, fp NodeID, sp CompileStats) {
	t.Helper()
	if !StructEqual(ms, fs, mp, fp) {
		t.Fatalf("parallel OBDD differs structurally from sequential")
	}
	if a, b := ms.Size(fs), mp.Size(fp); a != b {
		t.Errorf("size: sequential %d, parallel %d", a, b)
	}
	if a, b := ms.Width(fs), mp.Width(fp); a != b {
		t.Errorf("width: sequential %d, parallel %d", a, b)
	}
	if ss != sp {
		t.Errorf("stats: sequential %+v, parallel %+v", ss, sp)
	}
	probs := db.Probs()
	if a, b := ms.Prob(fs, probs), mp.Prob(fp, probs); a != b {
		t.Errorf("prob: sequential %v, parallel %v (must be bitwise equal)", a, b)
	}
}

// TestParallelCompileStructEqual: over random separator databases and worker
// counts, the parallel block compilation must produce an OBDD structurally
// identical to the sequential reference — same nodes, stats, and
// bitwise-identical probability (Parallelism: 1 is the spec).
func TestParallelCompileStructEqual(t *testing.T) {
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, ok := q.FindSeparator()
	if !ok {
		t.Fatal("query has no separator")
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randSepDB(rng, 3+rng.Int63n(12))
		pi := SeparatorFirstPerm(db, sep)
		for _, par := range []int{2, 4, 8} {
			ms, fs, ss, mp, fp, sp := compileBoth(t, db, q, pi, par)
			assertSame(t, db, ms, fs, ss, mp, fp, sp)
		}
	}
}

// TestParallelCompileUnion: a union with a shared separator — the shape of
// the DBLP W queries — through the same equivalence check.
func TestParallelCompileUnion(t *testing.T) {
	q := ucq.MustParse("Q() :- R(x), S(x,y)\nQ() :- S(x,z), S(x,w), z <> w").UCQ
	skip := ucq.SkipGround
	sep, ok := q.FindSeparatorSkip(skip)
	if !ok {
		t.Skip("no separator for the union")
	}
	for seed := int64(20); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randSepDB(rng, 4+rng.Int63n(8))
		pi := SeparatorFirstPerm(db, sep)
		ms, fs, ss, mp, fp, sp := compileBoth(t, db, q, pi, 4)
		assertSame(t, db, ms, fs, ss, mp, fp, sp)
	}
}

// TestParallelCompileSelfJoin: the V2 denial-view body falls back to lineage
// inside each block; the fallback must be reproduced identically by the
// parallel workers.
func TestParallelCompileSelfJoin(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	rng := rand.New(rand.NewSource(7))
	for s := int64(1); s <= 6; s++ {
		for j := int64(0); j <= rng.Int63n(3); j++ {
			db.MustInsert("Adv", rng.Float64(), engine.Int(s), engine.Int(100+10*s+j))
		}
	}
	q := ucq.MustParse("Q() :- Adv(x,a), Adv(x,b), a <> b").UCQ
	sep, ok := q.FindSeparator()
	if !ok {
		t.Fatal("self-join has no separator")
	}
	pi := SeparatorFirstPerm(db, sep)
	ms, fs, ss, mp, fp, sp := compileBoth(t, db, q, pi, 8)
	assertSame(t, db, ms, fs, ss, mp, fp, sp)
}

// TestParallelismKnob pins the knob semantics: 0 resolves to GOMAXPROCS,
// negatives clamp to sequential.
func TestParallelismKnob(t *testing.T) {
	for _, c := range []struct{ in, min int }{{1, 1}, {-3, 1}, {6, 6}} {
		if got := (CompileOptions{Parallelism: c.in}).workers(); got != c.min {
			t.Errorf("workers(%d) = %d want %d", c.in, got, c.min)
		}
	}
	if got := (CompileOptions{}).workers(); got < 1 {
		t.Errorf("workers(0) = %d want >= 1 (GOMAXPROCS)", got)
	}
}

// TestImportAcrossManagers: Import must reproduce a function node-for-node
// in another manager over the same order, and refuse mismatched orders.
func TestImportAcrossManagers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randSepDB(rng, 6)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	m, f, _, err := Compile(db, q, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewScratch()
	g := s.Import(m, f)
	if !StructEqual(m, f, s, g) {
		t.Fatal("imported OBDD differs structurally")
	}
	if h := s.Import(s, g); h != g {
		t.Errorf("same-manager Import must be identity, got %v want %v", h, g)
	}
	// Importing from a manager with a different order must panic.
	db2 := engine.NewDatabase()
	db2.MustCreateRelation("R", false, "a")
	db2.MustInsert("R", 1, engine.Int(1))
	m2, f2, _, err := Compile(db2, ucq.MustParse("Q() :- R(x)").UCQ, IdentityPerm(db2), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Import across different orders must panic")
		}
	}()
	m.Import(m2, f2)
}
