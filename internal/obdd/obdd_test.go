package obdd

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mvdb/internal/lineage"
)

func seqOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func TestMkNodeReduced(t *testing.T) {
	m := NewManager(seqOrder(3))
	x := m.Var(1)
	if got := m.MkNode(0, x, x); got != x {
		t.Error("redundant node not reduced")
	}
	y1 := m.MkNode(1, False, True)
	y2 := m.MkNode(1, False, True)
	if y1 != y2 {
		t.Error("hash-consing failed")
	}
}

func TestVarUnknownPanics(t *testing.T) {
	m := NewManager(seqOrder(2))
	defer func() {
		if recover() == nil {
			t.Error("Var(99) did not panic")
		}
	}()
	m.Var(99)
}

func TestDuplicateOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate order did not panic")
		}
	}()
	NewManager([]int{1, 2, 1})
}

func TestApplyTruthTables(t *testing.T) {
	m := NewManager(seqOrder(2))
	x, y := m.Var(1), m.Var(2)
	and := m.And(x, y)
	or := m.Or(x, y)
	cases := []struct {
		a       map[int]bool
		wantAnd bool
		wantOr  bool
	}{
		{map[int]bool{}, false, false},
		{map[int]bool{1: true}, false, true},
		{map[int]bool{2: true}, false, true},
		{map[int]bool{1: true, 2: true}, true, true},
	}
	for _, c := range cases {
		assign := func(v int) bool { return c.a[v] }
		if got := m.Eval(and, assign); got != c.wantAnd {
			t.Errorf("and(%v) = %v", c.a, got)
		}
		if got := m.Eval(or, assign); got != c.wantOr {
			t.Errorf("or(%v) = %v", c.a, got)
		}
	}
	// Terminal identities.
	if m.And(x, True) != x || m.And(x, False) != False || m.Or(x, False) != x || m.Or(x, True) != True {
		t.Error("terminal identities broken")
	}
	if m.And(x, x) != x || m.Or(x, x) != x {
		t.Error("idempotence broken")
	}
}

func TestNot(t *testing.T) {
	m := NewManager(seqOrder(2))
	x, y := m.Var(1), m.Var(2)
	f := m.Or(x, y)
	nf := m.Not(f)
	for mask := 0; mask < 4; mask++ {
		assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
		if m.Eval(f, assign) == m.Eval(nf, assign) {
			t.Errorf("Not failed at mask %b", mask)
		}
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("Not on terminals")
	}
	if m.Not(nf) != f {
		t.Error("double negation is not identity (hash-consing should make it so)")
	}
}

// randomDNF builds a random monotone DNF over variables 1..nv.
func randomDNF(rng *rand.Rand, nv int) lineage.DNF {
	d := make(lineage.DNF, 1+rng.Intn(5))
	for i := range d {
		term := make([]int, 1+rng.Intn(4))
		for j := range term {
			term[j] = 1 + rng.Intn(nv)
		}
		d[i] = lineage.Term(term...)
	}
	return d
}

func buildFromDNF(m *Manager, d lineage.DNF) NodeID {
	acc := False
	for _, term := range d {
		t := True
		for _, v := range term {
			t = m.And(t, m.Var(v))
		}
		acc = m.Or(acc, t)
	}
	return acc
}

func TestApplyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(6)
		d := randomDNF(rng, nv)
		m := NewManager(seqOrder(nv))
		f := buildFromDNF(m, d)
		for mask := 0; mask < 1<<uint(nv); mask++ {
			assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
			if m.Eval(f, assign) != d.Eval(assign) {
				t.Fatalf("trial %d: OBDD disagrees with DNF %v at mask %b", trial, d, mask)
			}
		}
	}
}

func TestProbAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(6)
		d := randomDNF(rng, nv)
		m := NewManager(seqOrder(nv))
		f := buildFromDNF(m, d)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()
		}
		want := bfProb(d, probs)
		got := m.Prob(f, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Prob = %v want %v (DNF %v)", trial, got, want, d)
		}
	}
}

func TestProbNegativeProbabilities(t *testing.T) {
	// Section 3.3: Shannon expansion is valid verbatim for negative
	// probabilities.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(5)
		d := randomDNF(rng, nv)
		m := NewManager(seqOrder(nv))
		f := buildFromDNF(m, d)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()*3 - 1.5 // in [-1.5, 1.5]
		}
		want := bfProb(d, probs)
		got := m.Prob(f, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Prob = %v want %v", trial, got, want)
		}
	}
}

func TestOrDisjointMatchesOr(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		m := NewManager(seqOrder(8))
		// f over vars 1..4, g over vars 5..8: disjoint and ordered.
		df := randomDNF(rng, 4)
		dg := make(lineage.DNF, 0, 4)
		for _, term := range randomDNF(rng, 4) {
			nt := make([]int, len(term))
			for i, v := range term {
				nt[i] = v + 4
			}
			dg = append(dg, nt)
		}
		f := buildFromDNF(m, df)
		g := buildFromDNF(m, dg)
		if !m.CanConcat(f, g) {
			t.Fatal("CanConcat should hold for disjoint ordered spans")
		}
		if m.OrDisjoint(f, g) != m.Or(f, g) {
			t.Fatalf("trial %d: OrDisjoint != Or", trial)
		}
		if m.AndDisjoint(f, g) != m.And(f, g) {
			t.Fatalf("trial %d: AndDisjoint != And", trial)
		}
	}
}

func TestOrDisjointPanicsOnOverlap(t *testing.T) {
	m := NewManager(seqOrder(2))
	x, y := m.Var(1), m.Var(2)
	f := m.And(x, y)
	g := m.Or(x, y)
	defer func() {
		if recover() == nil {
			t.Error("OrDisjoint on overlapping spans did not panic")
		}
	}()
	m.OrDisjoint(f, g)
}

func TestCanConcatTerminals(t *testing.T) {
	m := NewManager(seqOrder(2))
	x := m.Var(1)
	if !m.CanConcat(True, x) || !m.CanConcat(x, False) {
		t.Error("terminals should concat")
	}
	if m.OrDisjoint(False, x) != x || m.OrDisjoint(x, False) != x {
		t.Error("OrDisjoint terminal identities")
	}
	if m.AndDisjoint(True, x) != x || m.AndDisjoint(x, True) != x {
		t.Error("AndDisjoint terminal identities")
	}
	if m.OrDisjoint(True, x) != True || m.AndDisjoint(False, x) != False {
		t.Error("absorbing terminals")
	}
}

func TestSizeWidthSupport(t *testing.T) {
	m := NewManager(seqOrder(4))
	x1, y1 := m.Var(1), m.Var(2)
	x2, y2 := m.Var(3), m.Var(4)
	// (x1 ∧ y1) ∨ (x2 ∧ y2) — chain of two blocks.
	f := m.Or(m.And(x1, y1), m.And(x2, y2))
	// f = x1 ? (y1 ? 1 : x2∧y2) : x2∧y2 — exactly the nodes x1, y1, x2, y2.
	if got := m.Size(f); got != 4 {
		t.Errorf("Size = %d want 4", got)
	}
	sup := m.Support(f)
	if len(sup) != 4 {
		t.Errorf("Support = %v", sup)
	}
	if w := m.Width(f); w < 1 || w > 2 {
		t.Errorf("Width = %d", w)
	}
	if m.Size(True) != 0 || m.Width(False) != 0 || len(m.Support(True)) != 0 {
		t.Error("terminal metrics")
	}
}

func TestMaxLevelTracking(t *testing.T) {
	m := NewManager(seqOrder(4))
	f := m.And(m.Var(2), m.Var(4))
	if m.MaxLevel(f) != 3 {
		t.Errorf("MaxLevel = %d want 3", m.MaxLevel(f))
	}
	if m.MaxLevel(True) != -1 {
		t.Error("terminal MaxLevel")
	}
}

func TestManagerSnapshotRoundTrip(t *testing.T) {
	m := NewManager(seqOrder(6))
	f := m.Or(m.And(m.Var(1), m.Var(2)), m.And(m.Var(4), m.Var(6)))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManager(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != m.NumNodes() || back.NumVars() != m.NumVars() {
		t.Fatalf("restored manager differs: %d/%d nodes, %d/%d vars",
			back.NumNodes(), m.NumNodes(), back.NumVars(), m.NumVars())
	}
	// NodeIDs are preserved: the same id evaluates the same function.
	probs := []float64{0, .1, .2, .3, .4, .5, .6}
	if math.Abs(back.Prob(f, probs)-m.Prob(f, probs)) > 1e-12 {
		t.Error("probability differs after round trip")
	}
	// Hash-consing works on the restored manager: rebuilding the same
	// function yields the same id.
	g := back.Or(back.And(back.Var(1), back.Var(2)), back.And(back.Var(4), back.Var(6)))
	if g != f {
		t.Errorf("restored unique table broken: %d vs %d", g, f)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	cases := []Snapshot{
		{}, // no terminals
		{Order: []int{1}, Nodes: []SnapNode{{}, {}, {Level: 0, Lo: 5, Hi: 1}}}, // forward child
		{Order: []int{1}, Nodes: []SnapNode{{}, {}, {Level: 3, Lo: 0, Hi: 1}}}, // bad level
		{Order: []int{1}, Nodes: []SnapNode{{}, {}, {Level: 0, Lo: 1, Hi: 1}}}, // unreduced
	}
	for i, s := range cases {
		if _, err := Restore(s); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
	if _, err := ReadManager(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk stream accepted")
	}
}

func TestRestoreRejectsDuplicateNode(t *testing.T) {
	s := Snapshot{Order: []int{1, 2}, Nodes: []SnapNode{
		{}, {},
		{Level: 1, Lo: 0, Hi: 1},
		{Level: 1, Lo: 0, Hi: 1},
	}}
	if _, err := Restore(s); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestCompactPreservesFunctions(t *testing.T) {
	m := NewManager(seqOrder(6))
	f := m.Or(m.And(m.Var(1), m.Var(3)), m.Var(5))
	g := m.And(m.Var(2), m.Var(6))
	// Dead intermediates.
	for i := 1; i <= 6; i++ {
		m.Or(m.Var(i), f)
	}
	before := m.NumNodes()
	nm, roots := m.Compact(f, g)
	if nm.NumNodes() >= before {
		t.Errorf("no nodes freed: %d -> %d", before, nm.NumNodes())
	}
	probs := []float64{0, .1, .2, .3, .4, .5, .6}
	if math.Abs(nm.Prob(roots[0], probs)-m.Prob(f, probs)) > 1e-12 {
		t.Error("f changed")
	}
	if math.Abs(nm.Prob(roots[1], probs)-m.Prob(g, probs)) > 1e-12 {
		t.Error("g changed")
	}
	// New manager stays usable.
	if nm.And(roots[0], roots[1]) == False && m.And(f, g) != False {
		t.Error("apply broken after compact")
	}
}

func TestCofactorExistsForAll(t *testing.T) {
	m := NewManager(seqOrder(3))
	x, y, z := m.Var(1), m.Var(2), m.Var(3)
	f := m.Or(m.And(x, y), m.And(m.Not(y), z))
	// Cofactor on y.
	f1 := m.Cofactor(f, 2, true)
	if f1 != x {
		t.Errorf("f|y=1 should be x")
	}
	f0 := m.Cofactor(f, 2, false)
	if f0 != z {
		t.Errorf("f|y=0 should be z")
	}
	// Shannon: f == ite(y, f1, f0).
	rebuilt := m.Or(m.And(y, f1), m.And(m.Not(y), f0))
	if rebuilt != f {
		t.Error("Shannon decomposition mismatch")
	}
	// Exists/ForAll semantics by brute force.
	ex := m.Exists(f, 2)
	fa := m.ForAll(f, 2)
	for mask := 0; mask < 8; mask++ {
		assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
		want0 := m.Eval(f0, assign)
		want1 := m.Eval(f1, assign)
		if m.Eval(ex, assign) != (want0 || want1) {
			t.Errorf("Exists wrong at %b", mask)
		}
		if m.Eval(fa, assign) != (want0 && want1) {
			t.Errorf("ForAll wrong at %b", mask)
		}
	}
	// Quantifying an absent variable is the identity.
	if m.Cofactor(f, 99, true) != f || m.Exists(f, 99) != f {
		t.Error("unknown variable should be identity")
	}
	// The quantified variable is gone from the support.
	for _, v := range m.Support(ex) {
		if v == 2 {
			t.Error("Exists left the variable in the support")
		}
	}
}

func TestCountModels(t *testing.T) {
	m := NewManager(seqOrder(3))
	x, y := m.Var(1), m.Var(2)
	// x ∨ y over 3 variables: 3/4 · 8 = 6 models.
	if got := m.CountModels(m.Or(x, y)); math.Abs(got-6) > 1e-9 {
		t.Errorf("CountModels = %v want 6", got)
	}
	if got := m.CountModels(True); math.Abs(got-8) > 1e-9 {
		t.Errorf("CountModels(true) = %v", got)
	}
	if got := m.CountModels(False); got != 0 {
		t.Errorf("CountModels(false) = %v", got)
	}
}

// TestQuickCofactorShannon: f == ite(v, f|v=1, f|v=0) for every variable.
func TestQuickCofactorShannon(t *testing.T) {
	f := func(c dnfCase) bool {
		m := NewManager(seqOrder(c.NumVars))
		g := buildFromDNF(m, c.DNF)
		for v := 1; v <= c.NumVars; v++ {
			hi := m.Cofactor(g, v, true)
			lo := m.Cofactor(g, v, false)
			x := m.Var(v)
			if m.Or(m.And(x, hi), m.And(m.Not(x), lo)) != g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bfProb wraps the error-returning brute-force evaluator for test fixtures
// known to stay within the 30-variable limit.
func bfProb(d lineage.DNF, probs []float64) float64 {
	p, err := lineage.BruteForceProb(d, probs)
	if err != nil {
		panic(err)
	}
	return p
}
