package obdd

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot is the serializable form of a Manager. Node ids are preserved,
// so NodeID values held by callers remain valid after a round trip.
type Snapshot struct {
	Order []int      // variable order (level -> external id)
	Nodes []SnapNode // all nodes, including both terminals at 0 and 1
}

// SnapNode is one serialized node.
type SnapNode struct {
	Level  int32
	Lo, Hi int32
}

// Snapshot captures the manager's state.
func (m *Manager) Snapshot() Snapshot {
	s := Snapshot{Order: append([]int(nil), m.levelVar...), Nodes: make([]SnapNode, len(m.nodes))}
	for i, n := range m.nodes {
		s.Nodes[i] = SnapNode{Level: n.level, Lo: int32(n.lo), Hi: int32(n.hi)}
	}
	return s
}

// Restore rebuilds a Manager from a snapshot, recomputing the unique table
// and per-node span metadata. Node ids are identical to the snapshot's.
func Restore(s Snapshot) (*Manager, error) {
	if len(s.Nodes) < 2 {
		return nil, fmt.Errorf("obdd: snapshot missing terminals")
	}
	m := NewManager(s.Order)
	for i := 2; i < len(s.Nodes); i++ {
		n := s.Nodes[i]
		if n.Lo < 0 || int(n.Lo) >= i || n.Hi < 0 || int(n.Hi) >= i {
			return nil, fmt.Errorf("obdd: snapshot node %d has forward or invalid children (%d, %d)", i, n.Lo, n.Hi)
		}
		if n.Level < 0 || int(n.Level) >= len(s.Order) {
			return nil, fmt.Errorf("obdd: snapshot node %d has level %d outside the order", i, n.Level)
		}
		if n.Lo == n.Hi {
			return nil, fmt.Errorf("obdd: snapshot node %d is not reduced", i)
		}
		lo, hi := NodeID(n.Lo), NodeID(n.Hi)
		if id, slot := m.unique.lookup(m.nodes, n.Level, lo, hi); id != 0 {
			return nil, fmt.Errorf("obdd: snapshot node %d duplicates an earlier node", i)
		} else if got := m.addNode(n.Level, lo, hi, slot); got != NodeID(i) {
			return nil, fmt.Errorf("obdd: snapshot node %d restored as %d", i, got)
		}
	}
	return m, nil
}

// Save gob-encodes the snapshot.
func (m *Manager) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m.Snapshot())
}

// ReadManager decodes a manager written by Save.
func ReadManager(r io.Reader) (*Manager, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("obdd: decoding manager: %w", err)
	}
	return Restore(s)
}
