package obdd

import (
	"fmt"
	"sort"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// Perm assigns to each relation a permutation of its attribute positions —
// the π of Section 4.2. Relations absent from the map use the identity
// permutation.
type Perm map[string][]int

// IdentityPerm returns the identity permutation for every relation of the
// database.
func IdentityPerm(db *engine.Database) Perm {
	p := Perm{}
	for _, name := range db.Relations() {
		r := db.Relation(name)
		idx := make([]int, r.Arity())
		for i := range idx {
			idx[i] = i
		}
		p[name] = idx
	}
	return p
}

// SeparatorFirstPerm returns a permutation that places the separator's
// attribute position first in every relation it mentions and keeps the
// remaining attributes in schema order — the heuristic of Section 4.2
// ("every attribute holding a separator variable occurs first").
func SeparatorFirstPerm(db *engine.Database, sep ucq.Separator) Perm {
	p := IdentityPerm(db)
	for rel, pos := range sep.RelPos {
		r := db.Relation(rel)
		if r == nil {
			continue
		}
		perm := make([]int, 0, r.Arity())
		perm = append(perm, pos)
		for i := 0; i < r.Arity(); i++ {
			if i != pos {
				perm = append(perm, i)
			}
		}
		p[rel] = perm
	}
	return p
}

// Validate checks that the permutation is a bijection on each relation's
// attribute positions.
func (p Perm) Validate(db *engine.Database) error {
	for rel, perm := range p {
		r := db.Relation(rel)
		if r == nil {
			return fmt.Errorf("obdd: permutation for unknown relation %s", rel)
		}
		if len(perm) != r.Arity() {
			return fmt.Errorf("obdd: permutation for %s has length %d, arity is %d", rel, len(perm), r.Arity())
		}
		seen := make([]bool, r.Arity())
		for _, i := range perm {
			if i < 0 || i >= r.Arity() || seen[i] {
				return fmt.Errorf("obdd: permutation for %s is not a bijection: %v", rel, perm)
			}
			seen[i] = true
		}
	}
	return nil
}

// TupleOrder computes the variable order Π of Section 4.2: probabilistic
// tuples are ordered by the lexicographic comparison of their permuted value
// sequences (prefix-first, so a tuple whose permuted key is a prefix of
// another's comes earlier, mirroring the recursive grouping of the paper);
// ties across relations break by arity ("order the relation names from
// smaller to larger arities"), then by relation name.
func TupleOrder(db *engine.Database, pi Perm) []int {
	type entry struct {
		v   int
		off int // start of the permuted key in the shared backing array
		n   int // key length
		ar  int
		rel string
		pos int
	}
	// All keys live in one backing array instead of one small slice per
	// probabilistic tuple — TupleOrder runs once per compilation over every
	// tuple, and the per-tuple allocations dominated its profile.
	var keys []engine.Value
	var entries []entry
	for _, name := range db.Relations() {
		r := db.Relation(name)
		if r.Deterministic {
			continue
		}
		perm, ok := pi[name]
		if !ok {
			perm = make([]int, r.Arity())
			for i := range perm {
				perm[i] = i
			}
		}
		for ti, t := range r.Tuples {
			if t.Var == 0 {
				continue
			}
			off := len(keys)
			for _, c := range perm {
				keys = append(keys, t.Vals[c])
			}
			entries = append(entries, entry{v: t.Var, off: off, n: len(perm), ar: r.Arity(), rel: name, pos: ti})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		ka, kb := keys[a.off:a.off+a.n], keys[b.off:b.off+b.n]
		for k := 0; k < len(ka) && k < len(kb); k++ {
			if c := ka[k].Compare(kb[k]); c != 0 {
				return c < 0
			}
		}
		if len(ka) != len(kb) {
			return len(ka) < len(kb)
		}
		if a.ar != b.ar {
			return a.ar < b.ar
		}
		if a.rel != b.rel {
			return a.rel < b.rel
		}
		return a.pos < b.pos
	})
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.v
	}
	return out
}

// MergeOrder grafts a learned (sifted) variable order onto a mutated
// database's variable set. mapVar translates old variable ids into the new
// id space (nil means identity); piOrder is the new database's static Π
// order. Surviving variables keep their learned relative order; variables
// new in piOrder are inserted immediately after the nearest survivor that
// precedes them in piOrder (those before every survivor go first, in piOrder
// order). Because Π is separator-first, a new tuple's Π-neighbors share its
// separator value, so insertion lands it inside its own block and clean
// blocks keep an order ImportMapped accepts. The result is always a
// permutation of exactly piOrder's variables, so it is safe to pass as
// CompileOptions.Order.
func MergeOrder(learned []int, mapVar func(int) (int, bool), piOrder []int) []int {
	newSet := make(map[int]int, len(piOrder)) // var -> position in piOrder
	for i, v := range piOrder {
		newSet[v] = i
	}
	survivors := make([]int, 0, len(learned))
	isSurvivor := make(map[int]bool, len(learned))
	for _, v := range learned {
		nv, ok := v, true
		if mapVar != nil {
			nv, ok = mapVar(v)
		}
		if !ok {
			continue
		}
		if _, in := newSet[nv]; !in || isSurvivor[nv] {
			continue
		}
		survivors = append(survivors, nv)
		isSurvivor[nv] = true
	}
	// Attach each new variable to the survivor preceding it in piOrder.
	var front []int
	after := make(map[int][]int)
	last := -1
	haveLast := false
	for _, v := range piOrder {
		if isSurvivor[v] {
			last, haveLast = v, true
			continue
		}
		if haveLast {
			after[last] = append(after[last], v)
		} else {
			front = append(front, v)
		}
	}
	out := make([]int, 0, len(piOrder))
	out = append(out, front...)
	for _, v := range survivors {
		out = append(out, v)
		out = append(out, after[v]...)
	}
	return out
}
