package obdd

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
	"mvdb/internal/ucq"
)

// fig3DB reproduces the Figure 3 database.
func fig3DB() *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustInsert("R", 1, engine.Int(1))                 // X1 = 1
	db.MustInsert("R", 1, engine.Int(2))                 // X2 = 2
	db.MustInsert("S", 1, engine.Int(1), engine.Int(11)) // Y1 = 3
	db.MustInsert("S", 1, engine.Int(1), engine.Int(12)) // Y2 = 4
	db.MustInsert("S", 1, engine.Int(2), engine.Int(13)) // Y3 = 5
	db.MustInsert("S", 1, engine.Int(2), engine.Int(14)) // Y4 = 6
	return db
}

func TestTupleOrderFig3(t *testing.T) {
	db := fig3DB()
	order := TupleOrder(db, IdentityPerm(db))
	// Π = X1, Y1, Y2, X2, Y3, Y4 (Section 4.2).
	want := []int{1, 3, 4, 2, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}

func TestCompileFig3(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	m, f, stats, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 3 OBDD has 6 internal nodes.
	if got := m.Size(f); got != 6 {
		t.Errorf("Size = %d want 6", got)
	}
	if stats.LineageFalls != 0 {
		t.Errorf("inversion-free query fell back to lineage %d times", stats.LineageFalls)
	}
	if stats.SynthSteps != 0 {
		t.Errorf("inversion-free query used %d synthesis steps", stats.SynthSteps)
	}
	// Cross-check against the lineage brute force.
	lin, err := ucq.EvalBoolean(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	probs := db.Probs()
	want := bfProb(lin, probs)
	if got := m.Prob(f, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileEqualsSynthesis(t *testing.T) {
	// With and without the concat fast path the OBDD must be the same node
	// (hash-consing makes equivalence a pointer comparison).
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f2, stats2, err := CompileWith(m, db, q.UCQ, CompileOptions{DisableConcat: true})
	if err != nil {
		t.Fatal(err)
	}
	if f != f2 {
		t.Error("concat and synthesis built different OBDDs")
	}
	if stats2.ConcatSteps != 0 {
		t.Error("DisableConcat still concatenated")
	}
}

func TestCompileUnionWithSharedRelation(t *testing.T) {
	// R(z),S(z,y1) ∨ T(z),S(z,y2): separator across a union.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("T", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	for i := int64(1); i <= 3; i++ {
		db.MustInsert("R", 1, engine.Int(i))
		db.MustInsert("T", 1, engine.Int(i))
		db.MustInsert("S", 1, engine.Int(i), engine.Int(10+i))
		db.MustInsert("S", 1, engine.Int(i), engine.Int(20+i))
	}
	q := ucq.MustParse("Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := ucq.EvalBoolean(db, q.UCQ)
	probs := db.Probs()
	if got, want := m.Prob(f, probs), bfProb(lin, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileInversionFallsBack(t *testing.T) {
	// H0 = R(x),S(x,y),T(y) has an inversion: must fall back to lineage but
	// still be correct.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustCreateRelation("T", false, "b")
	rng := rand.New(rand.NewSource(21))
	for i := int64(1); i <= 3; i++ {
		db.MustInsert("R", rng.Float64(), engine.Int(i))
		db.MustInsert("T", rng.Float64(), engine.Int(10+i))
		for j := int64(1); j <= 3; j++ {
			db.MustInsert("S", rng.Float64(), engine.Int(i), engine.Int(10+j))
		}
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y), T(y)")
	m, f, stats, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LineageFalls == 0 {
		t.Error("H0 compiled without lineage fallback?")
	}
	lin, _ := ucq.EvalBoolean(db, q.UCQ)
	probs := db.Probs()
	if got, want := m.Prob(f, probs), bfProb(lin, probs); math.Abs(got-want) > 1e-9 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileSelfJoinV2Shape(t *testing.T) {
	// The V2 denial view body: Adv(x,a), Adv(x,b), a <> b.
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	rng := rand.New(rand.NewSource(31))
	for s := int64(1); s <= 4; s++ {
		db.MustInsert("Adv", rng.Float64(), engine.Int(s), engine.Int(100+s))
		db.MustInsert("Adv", rng.Float64(), engine.Int(s), engine.Int(200+s))
	}
	q := ucq.MustParse("Q() :- Adv(x,a), Adv(x,b), a <> b")
	m, f, stats, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LineageFalls == 0 {
		// Self-join blocks fall back per separator value; either way the
		// result must be exact.
		t.Log("self-join compiled structurally")
	}
	lin, _ := ucq.EvalBoolean(db, q.UCQ)
	probs := db.Probs()
	if got, want := m.Prob(f, probs), bfProb(lin, probs); math.Abs(got-want) > 1e-9 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileConstWidthLinearSize(t *testing.T) {
	// Proposition 2(b): an inversion-free query compiles to an OBDD of
	// constant width, hence linear size. Double the domain, the width must
	// not grow.
	build := func(n int64) (int, int) {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		for i := int64(1); i <= n; i++ {
			db.MustInsert("R", 1, engine.Int(i))
			db.MustInsert("S", 1, engine.Int(i), engine.Int(1000+i))
			db.MustInsert("S", 1, engine.Int(i), engine.Int(2000+i))
		}
		q := ucq.MustParse("Q() :- R(x), S(x,y)")
		m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
		if err != nil {
			panic(err)
		}
		return m.Size(f), m.Width(f)
	}
	s1, w1 := build(10)
	s2, w2 := build(20)
	if w1 != w2 {
		t.Errorf("width grew: %d -> %d", w1, w2)
	}
	if s2 <= s1 || s2 > 2*s1+2 {
		t.Errorf("size not linear: %d -> %d", s1, s2)
	}
}

func TestCompileFalsePredicates(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y), 1 > 2")
	_, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f != False {
		t.Error("unsatisfiable conjunct compiled to non-false")
	}
}

func TestCompileEmptyMatch(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y), y > 9999")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f != False {
		t.Errorf("empty query compiled to %v", m.Size(f))
	}
}

func TestCompileDeterministicAtoms(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a", "n")
	db.MustInsert("R", 1, engine.Int(1))
	db.MustInsert("R", 1, engine.Int(2))
	db.MustInsertDet("D", engine.Int(1), engine.Str("keep"))
	db.MustInsertDet("D", engine.Int(2), engine.Str("drop"))
	q := ucq.MustParse("Q() :- R(x), D(x,n), n like 'keep%'")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := ucq.EvalBoolean(db, q.UCQ)
	probs := db.Probs()
	if got, want := m.Prob(f, probs), bfProb(lin, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileRandomQueriesAgainstBruteForce(t *testing.T) {
	// Randomized end-to-end check: random small databases, a fixed set of
	// query shapes, OBDD probability vs lineage brute force.
	shapes := []string{
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x), S(x,y), T(x)",
		"Q() :- R(x), S(x,y), T(y)",
		"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)",
		"Q() :- R(x)\nQ() :- T(y)",
		"Q() :- S(x,y), S(x,z), y <> z",
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("T", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		for i := int64(1); i <= 2+rng.Int63n(2); i++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("R", rng.Float64()*2, engine.Int(i))
			}
			if rng.Intn(2) == 0 {
				db.MustInsert("T", rng.Float64()*2, engine.Int(i))
			}
			for j := int64(1); j <= rng.Int63n(3); j++ {
				db.MustInsert("S", rng.Float64()*2, engine.Int(i), engine.Int(10*i+j))
			}
		}
		probs := db.Probs()
		for _, src := range shapes {
			q := ucq.MustParse(src)
			// T(y) in shape 4 reuses column a of T; arity matches.
			m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			lin, err := ucq.EvalBoolean(db, q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			want := bfProb(lin, probs)
			if got := m.Prob(f, probs); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %q: Prob = %v want %v", trial, src, got, want)
			}
		}
	}
}

func TestPermValidate(t *testing.T) {
	db := fig3DB()
	if err := (Perm{"R": {0}, "S": {1, 0}}).Validate(db); err != nil {
		t.Error(err)
	}
	bad := []Perm{
		{"Nope": {0}},
		{"S": {0}},    // wrong length
		{"S": {0, 0}}, // not a bijection
		{"S": {0, 5}}, // out of range
	}
	for _, p := range bad {
		if err := p.Validate(db); err == nil {
			t.Errorf("Validate(%v) accepted", p)
		}
	}
}

func TestSeparatorFirstPerm(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	sep, ok := q.FindSeparator()
	if !ok {
		t.Fatal("no separator")
	}
	p := SeparatorFirstPerm(db, sep)
	if p["S"][0] != 0 {
		t.Errorf("perm S = %v", p["S"])
	}
	// With the separator at position 1 instead:
	q2 := ucq.MustParse("Q() :- R(x), S2(y,x)")
	db.MustCreateRelation("S2", false, "b", "a")
	db.MustInsert("S2", 1, engine.Int(11), engine.Int(1))
	sep2, ok := q2.FindSeparator()
	if !ok {
		t.Fatal("no separator for q2")
	}
	p2 := SeparatorFirstPerm(db, sep2)
	if p2["S2"][0] != 1 || p2["S2"][1] != 0 {
		t.Errorf("perm S2 = %v", p2["S2"])
	}
}

func TestBuildDNFStandalone(t *testing.T) {
	m := NewManager(seqOrder(4))
	d := lineage.DNF{{1, 2}, {3, 4}}
	f := BuildDNF(m, d)
	probs := []float64{0, 0.5, 0.5, 0.5, 0.5}
	want := bfProb(d, probs)
	if got := m.Prob(f, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v want %v", got, want)
	}
}

func TestCompileGroundQuery(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(1), S(1,11)")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// P = p(X1) * p(Y1) = 0.25.
	if got := m.Prob(f, db.Probs()); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Prob = %v", got)
	}
	// Missing tuple: false.
	q = ucq.MustParse("Q() :- R(99)")
	_, f, _, err = Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f != False {
		t.Error("missing ground tuple not false")
	}
}

func TestWriteDot(t *testing.T) {
	db := fig3DB()
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	m, f, _, err := Compile(db, q.UCQ, IdentityPerm(db), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteDot(&buf, f, "fig3", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "style=dashed", "rank=same", "x1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Custom labels.
	buf.Reset()
	if err := m.WriteDot(&buf, f, "named", func(v int) string { return "tuple" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tuple") {
		t.Error("custom label ignored")
	}
	// Terminal-only OBDD.
	buf.Reset()
	if err := m.WriteDot(&buf, True, "trivial", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "root") {
		t.Error("terminal OBDD needs a root marker")
	}
}

// TestQuickTupleOrderGroupsBySeparator: with a separator-first permutation
// the order Π groups every relation's tuples by the separator value, so the
// per-value blocks are contiguous — the property OrDisjoint concatenation
// relies on.
func TestQuickTupleOrderGroupsBySeparator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("S", false, "b", "a") // separator at position 1
		n := int64(2 + rng.Intn(5))
		for i := int64(1); i <= n; i++ {
			if rng.Intn(3) > 0 {
				db.MustInsert("R", 1, engine.Int(i))
			}
			for j := int64(0); j < rng.Int63n(3); j++ {
				db.MustInsert("S", 1, engine.Int(100+10*i+j), engine.Int(i))
			}
		}
		q := ucq.MustParse("Q() :- R(x), S(y,x)")
		sep, ok := q.FindSeparator()
		if !ok {
			return true
		}
		pi := SeparatorFirstPerm(db, sep)
		order := TupleOrder(db, pi)
		// The separator value of each tuple, in Π order, must be
		// non-decreasing (contiguous groups).
		prev := int64(-1 << 62)
		for _, v := range order {
			rel, tup, err := db.VarTuple(v)
			if err != nil {
				return false
			}
			var sv int64
			if rel == "R" {
				sv = tup.Vals[0].Int
			} else {
				sv = tup.Vals[1].Int
			}
			if sv < prev {
				return false
			}
			prev = sv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
