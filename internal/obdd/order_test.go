package obdd

import (
	"strings"
	"testing"

	"mvdb/internal/engine"
)

// Edge cases of the Π machinery in order.go that the compile tests never
// reach: empty relations, single-tuple blocks, and duplicate attribute
// values across relations.

func TestTupleOrderEmptyRelation(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Empty", false, "a")
	db.MustCreateRelation("R", false, "a")
	db.MustInsert("R", 0.5, engine.Int(1))

	order := TupleOrder(db, IdentityPerm(db))
	if len(order) != 1 {
		t.Fatalf("order = %v, want exactly the single R tuple", order)
	}

	// A database with only empty probabilistic relations orders nothing.
	db2 := engine.NewDatabase()
	db2.MustCreateRelation("Empty", false, "a")
	if order := TupleOrder(db2, IdentityPerm(db2)); len(order) != 0 {
		t.Fatalf("order over empty relation = %v", order)
	}

	// Fully deterministic databases are skipped entirely.
	db3 := engine.NewDatabase()
	db3.MustCreateRelation("Det", true, "a")
	db3.MustInsertDet("Det", engine.Int(7))
	if order := TupleOrder(db3, IdentityPerm(db3)); len(order) != 0 {
		t.Fatalf("order over deterministic relation = %v", order)
	}
}

func TestTupleOrderSingleTupleBlocks(t *testing.T) {
	// Every separator value appears exactly once: Π degenerates to plain
	// lexicographic order and every block is a single tuple.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "s", "x")
	for s := int64(5); s >= 1; s-- { // inserted in reverse to catch sort bugs
		db.MustInsert("R", 0.5, engine.Int(s), engine.Int(100+s))
	}
	order := TupleOrder(db, IdentityPerm(db))
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	r := db.Relation("R")
	prev := ""
	for _, v := range order {
		ref, err := db.VarRef(v)
		if err != nil {
			t.Fatal(err)
		}
		key := r.Tuples[ref.Pos].Vals[0].String()
		if prev != "" && key <= prev {
			t.Fatalf("single-tuple blocks out of order: %s after %s", key, prev)
		}
		prev = key
	}
}

func TestTupleOrderDuplicateValuesAcrossRelations(t *testing.T) {
	// Two relations share identical permuted keys; ties must break by arity
	// first (smaller arity earlier), then by relation name — deterministic
	// regardless of insertion order.
	db := engine.NewDatabase()
	db.MustCreateRelation("B", false, "a", "b")
	db.MustCreateRelation("A", false, "a", "b")
	db.MustCreateRelation("S", false, "a")
	vB := db.MustInsert("B", 0.5, engine.Int(1), engine.Int(2))
	vA := db.MustInsert("A", 0.5, engine.Int(1), engine.Int(2))
	vS := db.MustInsert("S", 0.5, engine.Int(1))

	order := TupleOrder(db, IdentityPerm(db))
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// S(1) is a strict prefix of A(1,2)/B(1,2) → first; then A before B by
	// relation name (equal arity).
	if order[0] != vS || order[1] != vA || order[2] != vB {
		t.Fatalf("order = %v, want [%d %d %d]", order, vS, vA, vB)
	}
}

func TestTupleOrderDuplicateKeysWithinRelation(t *testing.T) {
	// Identical permuted keys inside one relation (duplicate attribute values
	// under a projection permutation): ties break by tuple position, so the
	// order stays stable and deterministic.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "s", "x")
	v1 := db.MustInsert("R", 0.5, engine.Int(1), engine.Int(10))
	v2 := db.MustInsert("R", 0.5, engine.Int(1), engine.Int(20))
	v3 := db.MustInsert("R", 0.5, engine.Int(1), engine.Int(30))

	// Permutation that keys only on the (duplicated) first attribute value
	// is not expressible — Perm is a bijection — so use the s-first identity
	// where all three share the same first value.
	pi := Perm{"R": []int{0, 1}}
	if err := pi.Validate(db); err != nil {
		t.Fatal(err)
	}
	order := TupleOrder(db, pi)
	if order[0] != v1 || order[1] != v2 || order[2] != v3 {
		t.Fatalf("order = %v, want stable [%d %d %d]", order, v1, v2, v3)
	}
}

func TestPermValidateEdgeCases(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	for _, bad := range []Perm{
		{"Nope": []int{0}},  // unknown relation
		{"R": []int{0}},     // wrong length
		{"R": []int{0, 0}},  // not a bijection
		{"R": []int{0, 2}},  // out of range
		{"R": []int{-1, 0}}, // negative
	} {
		if err := bad.Validate(db); err == nil {
			t.Errorf("Perm %v validated", bad)
		}
	}
	if err := (Perm{"R": []int{1, 0}}).Validate(db); err != nil {
		t.Errorf("valid perm rejected: %v", err)
	}
}

// TestWriteDotGolden pins the DOT export byte for byte on a small OBDD so
// documentation renders stay reproducible.
func TestWriteDotGolden(t *testing.T) {
	m := NewManager([]int{1, 2})
	f := m.Or(m.Var(1), m.Var(2)) // x1 ∨ x2

	var b strings.Builder
	if err := m.WriteDot(&b, f, "or2", nil); err != nil {
		t.Fatal(err)
	}
	want := `digraph "or2" {
  rankdir=TB;
  f [shape=box,label="0"]; t [shape=box,label="1"];
  { rank=same; n4; }
  n4 [label="x1"];
  n4 -> n3 [style=dashed];
  n4 -> t;
  { rank=same; n3; }
  n3 [label="x2"];
  n3 -> f [style=dashed];
  n3 -> t;
}
`
	if got := b.String(); got != want {
		t.Fatalf("DOT drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Custom labeler and terminal root.
	var b2 strings.Builder
	if err := m.WriteDot(&b2, True, "t", func(v int) string { return "var" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "root -> t;") {
		t.Fatalf("terminal root missing root arrow:\n%s", b2.String())
	}
}
