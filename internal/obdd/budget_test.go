package obdd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/ucq"
)

func TestCompileNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randSepDB(rng, 24)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	pi := SeparatorFirstPerm(db, sep)

	// Unlimited compile succeeds and tells us the real node count.
	m, _, _, err := Compile(db, q, pi, CompileOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := m.NumNodes()
	if full < 8 {
		t.Skipf("instance too small (%d nodes)", full)
	}

	for _, par := range []int{1, 4} {
		_, _, _, err := Compile(db, q, pi, CompileOptions{
			Parallelism: par,
			Budget:      budget.Budget{MaxNodes: full / 2},
		})
		if !errors.Is(err, budget.ErrBudgetExceeded) {
			t.Errorf("par=%d: MaxNodes=%d on a %d-node compile: err = %v, want ErrBudgetExceeded",
				par, full/2, full, err)
		}
		// A generous budget must not interfere.
		m2, f2, _, err := Compile(db, q, pi, CompileOptions{
			Parallelism: par,
			Budget:      budget.Budget{MaxNodes: 100 * full},
		})
		if err != nil {
			t.Errorf("par=%d: generous budget failed: %v", par, err)
		} else if m2.lim != nil {
			t.Errorf("par=%d: manager still armed after compile", par)
		} else if m2.IsTerminal(f2) {
			t.Errorf("par=%d: unexpected terminal result", par)
		}
	}
}

func TestCompileDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randSepDB(rng, 16)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	pi := SeparatorFirstPerm(db, sep)
	_, _, _, err := Compile(db, q, pi, CompileOptions{
		Parallelism: 1,
		Budget:      budget.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("expired deadline: err = %v, want ErrCanceled", err)
	}
}

// TestCompileFaultInjection pins the test-only block hook: failing at the
// Nth block aborts the compile with exactly that error, sequentially and in
// parallel.
func TestCompileFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randSepDB(rng, 12)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	pi := SeparatorFirstPerm(db, sep)
	boom := fmt.Errorf("injected fault")
	for _, par := range []int{1, 4} {
		_, _, _, err := Compile(db, q, pi, CompileOptions{
			Parallelism: par,
			blockHook: func(block int) error {
				if block == 2 {
					return boom
				}
				return nil
			},
		})
		if !errors.Is(err, boom) {
			t.Errorf("par=%d: err = %v, want the injected fault", par, err)
		}
	}
}

// TestCompileCancelMidCompile stalls the compiler at a fixed block until the
// caller cancels the context, proving the compile loops observe cancellation
// mid-flight (not only at entry) and return ErrCanceled.
func TestCompileCancelMidCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randSepDB(rng, 12)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	pi := SeparatorFirstPerm(db, sep)
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		reached := make(chan struct{})
		var once sync.Once
		go func() {
			<-reached
			cancel()
		}()
		_, _, _, err := Compile(db, q, pi, CompileOptions{
			Parallelism: par,
			Ctx:         ctx,
			blockHook: func(block int) error {
				if block == 1 {
					once.Do(func() { close(reached) })
					<-ctx.Done() // stall until the caller cancels
				}
				return nil
			},
		})
		cancel()
		if !errors.Is(err, budget.ErrCanceled) {
			t.Errorf("par=%d: err = %v, want ErrCanceled", par, err)
		}
	}
}

// TestParallelCancelNoLeak hammers cancellation of parallel compiles under
// -race: every iteration stalls a worker mid-compile, cancels, and checks the
// compile returns ErrCanceled. Afterwards the goroutine count must return to
// its baseline — no worker may outlive a canceled compile.
func TestParallelCancelNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := randSepDB(rng, 20)
	q := ucq.MustParse("Q() :- R(x), S(x,y)").UCQ
	sep, _ := q.FindSeparator()
	pi := SeparatorFirstPerm(db, sep)

	baseline := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		reached := make(chan struct{})
		var once sync.Once
		go func() {
			<-reached
			cancel()
		}()
		_, _, _, err := Compile(db, q, pi, CompileOptions{
			Parallelism: 4,
			Ctx:         ctx,
			blockHook: func(block int) error {
				if block == 1 {
					once.Do(func() { close(reached) })
					<-ctx.Done()
				}
				return nil
			},
		})
		cancel()
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("iteration %d: err = %v, want ErrCanceled", i, err)
		}
	}
	// Workers exit before Compile returns (the owner waits on the group), so
	// only the canceller goroutines may still be draining; give them a beat.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}

// TestScratchInheritsBudget: a scratch manager created from an armed manager
// shares the allocation counter, so the budget bounds the total.
func TestScratchInheritsBudget(t *testing.T) {
	m := NewManager([]int{1, 2, 3, 4, 5, 6, 7, 8})
	m.SetBudget(nil, budget.Budget{MaxNodes: 6})
	s := m.NewScratch()
	err := budget.Catch(func() {
		for v := 1; v <= 8; v++ {
			m.Var(v)
			s.Var(v)
		}
	})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("shared counter: err = %v, want ErrBudgetExceeded", err)
	}
	// Disarmed managers allocate freely again.
	m.SetBudget(nil, budget.Budget{})
	if err := budget.Catch(func() {
		for v := 1; v <= 8; v++ {
			m.Var(v)
		}
	}); err != nil {
		t.Errorf("disarmed manager still budgeted: %v", err)
	}
}

// TestSetBudgetRearmKeepsSharedCounter: re-arming an armed manager must keep
// the allocation counter shared with scratch managers created under the old
// budget, so their allocations still count toward the new limit.
func TestSetBudgetRearmKeepsSharedCounter(t *testing.T) {
	m := NewManager([]int{1, 2, 3, 4, 5, 6, 7, 8})
	m.SetBudget(nil, budget.Budget{MaxNodes: 1 << 20})
	s := m.NewScratch()
	for v := 1; v <= 5; v++ {
		s.Var(v)
	}
	// Tighten the budget below what the scratch has already consumed plus a
	// few more allocations. A re-arm that resets the counter would let the
	// main manager allocate 4 fresh nodes without tripping.
	m.SetBudget(nil, budget.Budget{MaxNodes: 8})
	err := budget.Catch(func() {
		for v := 1; v <= 4; v++ {
			m.Var(v)
		}
	})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("re-armed budget ignored scratch allocations: err = %v, want ErrBudgetExceeded", err)
	}
	// And the scratch armed under the old budget keeps counting too: its own
	// limit still reflects the budget it inherited, but the counter is live.
	if got := m.lim.nodes.Load(); got <= 7 {
		t.Errorf("shared counter = %d, want > 7 (scratch + main allocations)", got)
	}
}
