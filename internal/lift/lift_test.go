package lift

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
	"mvdb/internal/ucq"
)

func randDB(rng *rand.Rand, negative bool) *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("T", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	n := 2 + rng.Int63n(2)
	w := func() float64 {
		if negative && rng.Intn(3) == 0 {
			return -rng.Float64() * 0.4 // negative odds -> negative probability
		}
		return rng.Float64() * 2
	}
	for i := int64(1); i <= n; i++ {
		if rng.Intn(2) == 0 {
			db.MustInsert("R", w(), engine.Int(i))
		}
		if rng.Intn(2) == 0 {
			db.MustInsert("T", w(), engine.Int(i))
		}
		for j := int64(0); j < rng.Int63n(3); j++ {
			db.MustInsert("S", w(), engine.Int(i), engine.Int(10*i+j))
		}
	}
	return db
}

func bruteForce(t *testing.T, db *engine.Database, u ucq.UCQ) float64 {
	t.Helper()
	lin, err := ucq.EvalBoolean(db, u)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lineage.BruteForceProb(lin, db.Probs())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLiftedSafeQueries(t *testing.T) {
	shapes := []string{
		"Q() :- R(x)",
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x), S(x,y), T(x)",
		"Q() :- R(x), T(y)",
		"Q() :- R(x)\nQ() :- T(y)",
		"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)",
		"Q() :- R(x), S(x,y), y > 15",
		"Q() :- R(1)",
		"Q() :- R(1), S(1,y)",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, false)
		for _, src := range shapes {
			q := ucq.MustParse(src)
			got, err := Prob(db, q.UCQ)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			want := bruteForce(t, db, q.UCQ)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %q: lifted = %v brute = %v", trial, src, got, want)
			}
		}
	}
}

func TestLiftedNegativeProbabilities(t *testing.T) {
	// The MarkoView translation produces negative probabilities; the safe
	// plan algebra must still be exact.
	shapes := []string{
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x)\nQ() :- T(y)",
		"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)",
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, true)
		for _, src := range shapes {
			q := ucq.MustParse(src)
			got, err := Prob(db, q.UCQ)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			want := bruteForce(t, db, q.UCQ)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %q: lifted = %v brute = %v", trial, src, got, want)
			}
		}
	}
}

func TestLiftedInclusionExclusion(t *testing.T) {
	// R(x),S(x,y) ∨ S(x2,y2),T2(x2): shares S but T2 is a fresh relation on
	// the same first column — still requires I/E... build a union that is
	// not separable: R(x),S(x,y) ∨ R(x2),T(x2).
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("T", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= 3; i++ {
		db.MustInsert("R", rng.Float64(), engine.Int(i))
		db.MustInsert("T", rng.Float64(), engine.Int(i))
		db.MustInsert("S", rng.Float64(), engine.Int(i), engine.Int(10+i))
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y)\nQ() :- R(x2), T(x2)")
	got, err := Prob(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(t, db, q.UCQ)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("lifted = %v brute = %v", got, want)
	}
}

func TestLiftedUnsafe(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustCreateRelation("T", false, "b")
	db.MustInsert("R", 1, engine.Int(1))
	db.MustInsert("S", 1, engine.Int(1), engine.Int(2))
	db.MustInsert("T", 1, engine.Int(2))
	q := ucq.MustParse("Q() :- R(x), S(x,y), T(y)") // H0, #P-hard
	_, err := Prob(db, q.UCQ)
	if !errors.Is(err, ErrUnsafe) {
		t.Errorf("H0 err = %v, want ErrUnsafe", err)
	}
}

func TestLiftedSelfJoinUnsafe(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("S", false, "a", "b")
	db.MustInsert("S", 1, engine.Int(1), engine.Int(2))
	db.MustInsert("S", 1, engine.Int(2), engine.Int(1))
	// S(x,y),S(y,x): separator positions conflict.
	q := ucq.MustParse("Q() :- S(x,y), S(y,x)")
	if _, err := Prob(db, q.UCQ); !errors.Is(err, ErrUnsafe) {
		t.Errorf("err = %v, want ErrUnsafe", err)
	}
}

func TestIsSafe(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Q() :- R(x), S(x,y)", true},
		{"Q() :- R(x), S(x,y), T(y)", false},
		{"Q() :- R(x)\nQ() :- T(y)", true},
		{"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)", true},
		{"Q() :- S(x,y), S(y,x)", false},
		{"Q() :- R(x), T(y)", true},
	}
	for _, c := range cases {
		q := ucq.MustParse(c.src)
		if got := IsSafe(q.UCQ); got != c.want {
			t.Errorf("IsSafe(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

func TestGroundDuplicateTuple(t *testing.T) {
	// The same tuple used twice in a conjunct counts once.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustInsert("R", 1, engine.Int(1)) // p = 0.5
	q := ucq.MustParse("Q() :- R(1), R(1)")
	got, err := Prob(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P = %v want 0.5", got)
	}
}

func TestGroundNegatedDeterministic(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a")
	db.MustInsert("R", 1, engine.Int(1))
	db.MustInsertDet("D", engine.Int(1))
	q := ucq.MustParse("Q() :- R(1), not D(1)")
	got, err := Prob(db, q.UCQ)
	if err != nil || got != 0 {
		t.Errorf("P = %v, %v; want 0", got, err)
	}
	q = ucq.MustParse("Q() :- R(1), not D(2)")
	got, err = Prob(db, q.UCQ)
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P = %v, %v; want 0.5", got, err)
	}
}

func TestLiftedAgainstOBDDOnSafeShapes(t *testing.T) {
	// Same shapes, larger databases than brute force allows.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(99))
	for i := int64(1); i <= 40; i++ {
		db.MustInsert("R", rng.Float64()*3, engine.Int(i))
		for j := int64(0); j < 3; j++ {
			db.MustInsert("S", rng.Float64()*3, engine.Int(i), engine.Int(100*i+j))
		}
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	got, err := Prob(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: 1 - Π_i (1 - p(R_i)(1 - Π_j(1-p(S_ij)))).
	want := 1.0
	ri := 0
	_ = ri
	prod := 1.0
	for i := 0; i < 40; i++ {
		r := db.Relation("R").Tuples[i]
		pi := engine.WeightToProb(r.Weight)
		ps := 1.0
		for j := 0; j < 3; j++ {
			s := db.Relation("S").Tuples[i*3+j]
			ps *= 1 - engine.WeightToProb(s.Weight)
		}
		prod *= 1 - pi*(1-ps)
	}
	want = 1 - prod
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("lifted = %v closed form = %v", got, want)
	}
}

func TestLiftedMinimizationEnablesSafePlans(t *testing.T) {
	// The union R(x),S(x,y) ∨ R(u),S(u,v),S(u,w) is logically just
	// R(x),S(x,y); without subsumption removal, inclusion-exclusion merges
	// the disjuncts into a self-join that no rule handles.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 3; i++ {
		db.MustInsert("R", rng.Float64(), engine.Int(i))
		for j := int64(1); j <= 2; j++ {
			db.MustInsert("S", rng.Float64(), engine.Int(i), engine.Int(10*i+j))
		}
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y)\nQ() :- R(u), S(u,v), S(u,w)")
	got, err := Prob(db, q.UCQ)
	if err != nil {
		t.Fatalf("minimized union still unsafe: %v", err)
	}
	want := bruteForce(t, db, q.UCQ)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("lifted = %v brute = %v", got, want)
	}
}
