// Package lift implements lifted inference (safe-plan evaluation) for
// Boolean UCQs over tuple-independent databases: independent union,
// independent join, independent project over a separator variable, and
// inclusion-exclusion. Queries on which no rule applies are reported unsafe
// (ErrUnsafe); for those, callers fall back to lineage-based methods such as
// OBDD compilation.
//
// All rules are polynomial identities over the product measure and therefore
// remain valid for the negative probabilities produced by the MarkoView
// translation (Section 3.3 of the paper).
package lift

import (
	"errors"
	"fmt"
	"sort"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// ErrUnsafe is returned when the query admits no safe plan; evaluation is
// #P-hard in general and the caller should use a lineage-based method.
var ErrUnsafe = errors.New("lift: query is unsafe (no safe plan)")

// maxIEDisjuncts bounds inclusion-exclusion blowup.
const maxIEDisjuncts = 16

// Prob computes P(u) on the tuple-independent database by lifted inference.
func Prob(db *engine.Database, u ucq.UCQ) (float64, error) {
	e := &evaluator{db: db}
	return e.ucq(u)
}

// IsSafe reports whether the query has a safe plan, by running the lifted
// rules structurally (domain values replaced by one representative marker).
func IsSafe(u ucq.UCQ) bool {
	return structSafe(u, 0)
}

type evaluator struct {
	db *engine.Database
}

func (e *evaluator) ucq(u ucq.UCQ) (float64, error) {
	// Simplify constant predicates; drop unsatisfiable disjuncts.
	var live []ucq.CQ
	for _, d := range u.Disjuncts {
		if sd, ok := simplifyCQ(d); ok {
			live = append(live, sd)
		}
	}
	if len(live) == 0 {
		return 0, nil
	}
	u = ucq.UCQ{Disjuncts: live}
	// Logical simplification: drop subsumed disjuncts and minimize each
	// conjunct (Chandra-Merlin cores). Semantics-preserving, and it turns
	// several syntactically-unsafe shapes into safe ones.
	u = u.RemoveRedundantDisjuncts(nil)

	// Independent union: relation-disjoint groups of disjuncts.
	if groups := u.UnionGroups(); len(groups) > 1 {
		prod := 1.0
		for _, g := range groups {
			p, err := e.ucq(g)
			if err != nil {
				return 0, err
			}
			prod *= 1 - p
		}
		return 1 - prod, nil
	}

	if len(u.Disjuncts) == 1 {
		return e.cq(u.Disjuncts[0])
	}

	// Independent project over a strict separator of the whole union: the
	// separator must occur in every atom that can contribute Boolean
	// variables (deterministic atoms are exempt, ground probabilistic atoms
	// are not).
	if sep, ok := u.FindSeparatorSkip(e.liftSkip()); ok {
		return e.project(u, sep)
	}

	// Inclusion-exclusion over the disjuncts.
	if len(u.Disjuncts) > maxIEDisjuncts {
		return 0, fmt.Errorf("lift: inclusion-exclusion over %d disjuncts: %w", len(u.Disjuncts), ErrUnsafe)
	}
	total := 0.0
	n := len(u.Disjuncts)
	for mask := 1; mask < 1<<uint(n); mask++ {
		merged := mergeCQs(u.Disjuncts, mask)
		p, err := e.cq(merged)
		if err != nil {
			return 0, err
		}
		if popcount(mask)%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	return total, nil
}

func (e *evaluator) cq(d ucq.CQ) (float64, error) {
	d, ok := simplifyCQ(d)
	if !ok {
		return 0, nil
	}
	d = d.CollapseEquivalentAtoms(nil).Minimize(nil)
	if len(d.Vars()) == 0 {
		return e.ground(d)
	}
	// A conjunct over deterministic relations only is an existence check:
	// its lineage is constant true or false.
	if e.allDeterministic(d) {
		lin, err := ucq.EvalBoolean(e.db, ucq.UCQ{Disjuncts: []ucq.CQ{d}})
		if err != nil {
			return 0, err
		}
		if lin.IsTrue() {
			return 1, nil
		}
		return 0, nil
	}

	// Independent join: variable-disjoint components that also share no
	// relation symbols (otherwise their lineages may overlap).
	comps := d.Components()
	if len(comps) > 1 && relationDisjoint(comps) {
		prod := 1.0
		for _, c := range comps {
			p, err := e.cq(c)
			if err != nil {
				return 0, err
			}
			prod *= p
		}
		return prod, nil
	}

	// Independent project over a strict separator.
	uu := ucq.UCQ{Disjuncts: []ucq.CQ{d}}
	if sep, ok := uu.FindSeparatorSkip(e.liftSkip()); ok {
		return e.project(uu, sep)
	}
	return 0, fmt.Errorf("lift: no rule applies to %s: %w", d, ErrUnsafe)
}

// project applies the independent-project rule: the separator touches
// disjoint sets of tuples for different domain values, so
// P(∃z φ) = 1 - Π_a (1 - P(φ[a/z])).
func (e *evaluator) project(u ucq.UCQ, sep ucq.Separator) (float64, error) {
	domain := e.separatorDomain(sep)
	prod := 1.0
	for _, a := range domain {
		sub := ucq.UCQ{}
		for di, d := range u.Disjuncts {
			sub.Disjuncts = append(sub.Disjuncts,
				d.Subst(map[string]engine.Value{sep.PerDisjunct[di]: a}))
		}
		p, err := e.ucq(sub)
		if err != nil {
			return 0, err
		}
		prod *= 1 - p
	}
	return 1 - prod, nil
}

// liftSkip exempts deterministic atoms (they carry no Boolean variables)
// but keeps ground probabilistic atoms, whose shared tuple would break
// block independence.
func (e *evaluator) liftSkip() ucq.AtomSkip {
	return ucq.SkipDeterministic(func(rel string) bool {
		r := e.db.Relation(rel)
		return r != nil && r.Deterministic
	}, ucq.SkipNegated)
}

// allDeterministic reports whether every atom is over a deterministic
// relation.
func (e *evaluator) allDeterministic(d ucq.CQ) bool {
	for _, a := range d.Atoms {
		r := e.db.Relation(a.Rel)
		if r == nil || !r.Deterministic {
			return false
		}
	}
	return true
}

func (e *evaluator) separatorDomain(sep ucq.Separator) []engine.Value {
	seen := map[string]engine.Value{}
	for rel, pos := range sep.RelPos {
		r := e.db.Relation(rel)
		if r == nil {
			continue
		}
		for _, t := range r.Tuples {
			v := t.Vals[pos]
			seen[v.Key()] = v
		}
	}
	out := make([]engine.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// ground evaluates a variable-free conjunct: the product of the marginal
// probabilities of its distinct probabilistic tuples (and 0/1 for missing /
// deterministic tuples and negated atoms).
func (e *evaluator) ground(d ucq.CQ) (float64, error) {
	seen := map[int]bool{}
	prod := 1.0
	for _, a := range d.Atoms {
		rel := e.db.Relation(a.Rel)
		if rel == nil {
			return 0, fmt.Errorf("lift: unknown relation %s", a.Rel)
		}
		if len(a.Args) != rel.Arity() {
			return 0, fmt.Errorf("lift: relation %s arity mismatch", a.Rel)
		}
		vals := make([]engine.Value, len(a.Args))
		for i, t := range a.Args {
			if !t.IsConst {
				return 0, fmt.Errorf("lift: ground conjunct has variable %s", t.Var)
			}
			vals[i] = t.Const
		}
		ti := rel.Lookup(vals)
		if a.Negated {
			if !rel.Deterministic {
				return 0, fmt.Errorf("lift: negation on probabilistic relation %s", a.Rel)
			}
			if ti >= 0 {
				return 0, nil
			}
			continue
		}
		if ti < 0 {
			return 0, nil
		}
		t := rel.Tuples[ti]
		if t.Var == 0 || seen[t.Var] {
			continue
		}
		seen[t.Var] = true
		prod *= engine.WeightToProb(t.Weight)
	}
	return prod, nil
}

// mergeCQs builds the conjunction of the selected disjuncts, renaming
// variables apart so the merged conjunct is a plain CQ.
func mergeCQs(ds []ucq.CQ, mask int) ucq.CQ {
	var out ucq.CQ
	for i, d := range ds {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		prefix := fmt.Sprintf("d%d·", i)
		rename := func(t ucq.Term) ucq.Term {
			if t.IsConst {
				return t
			}
			return ucq.V(prefix + t.Var)
		}
		for _, a := range d.Atoms {
			na := ucq.Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]ucq.Term, len(a.Args))}
			for j, t := range a.Args {
				na.Args[j] = rename(t)
			}
			out.Atoms = append(out.Atoms, na)
		}
		for _, p := range d.Preds {
			out.Preds = append(out.Preds, ucq.Pred{Op: p.Op, L: rename(p.L), R: rename(p.R), Offset: p.Offset})
		}
	}
	return out
}

func relationDisjoint(comps []ucq.CQ) bool {
	seen := map[string]int{}
	for i, c := range comps {
		for _, a := range c.Atoms {
			if j, ok := seen[a.Rel]; ok && j != i {
				return false
			}
			seen[a.Rel] = i
		}
	}
	return true
}

func simplifyCQ(d ucq.CQ) (ucq.CQ, bool) {
	out := ucq.CQ{Atoms: d.Atoms}
	for _, p := range d.Preds {
		if p.L.IsConst && p.R.IsConst {
			if !p.EvalBound(p.L.Const, p.R.Const) {
				return ucq.CQ{}, false
			}
			continue
		}
		out.Preds = append(out.Preds, p)
	}
	return out, true
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// structSafe mirrors the evaluator's rule order on the query structure only:
// one marker constant stands in for the whole separator domain.
func structSafe(u ucq.UCQ, depth int) bool {
	if depth > 64 {
		return false
	}
	var live []ucq.CQ
	for _, d := range u.Disjuncts {
		if len(d.Vars()) > 0 {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return true
	}
	u = ucq.UCQ{Disjuncts: live}

	if groups := u.UnionGroups(); len(groups) > 1 {
		for _, g := range groups {
			if !structSafe(g, depth+1) {
				return false
			}
		}
		return true
	}
	if len(u.Disjuncts) == 1 {
		d := u.Disjuncts[0].CollapseEquivalentAtoms(nil)
		u = ucq.UCQ{Disjuncts: []ucq.CQ{d}}
		if len(d.Vars()) == 0 {
			return true
		}
		comps := d.Components()
		if len(comps) > 1 && relationDisjoint(comps) {
			for _, c := range comps {
				if !structSafe(ucq.UCQ{Disjuncts: []ucq.CQ{c}}, depth+1) {
					return false
				}
			}
			return true
		}
	}
	if sep, ok := u.FindSeparatorStrict(); ok {
		marker := engine.Str("\x00safe")
		sub := ucq.UCQ{}
		for di, d := range u.Disjuncts {
			sub.Disjuncts = append(sub.Disjuncts,
				d.Subst(map[string]engine.Value{sep.PerDisjunct[di]: marker}))
		}
		return structSafe(sub, depth+1)
	}
	if len(u.Disjuncts) > 1 && len(u.Disjuncts) <= maxIEDisjuncts {
		for mask := 1; mask < 1<<uint(len(u.Disjuncts)); mask++ {
			merged := mergeCQs(u.Disjuncts, mask)
			if !structSafe(ucq.UCQ{Disjuncts: []ucq.CQ{merged}}, depth+1) {
				return false
			}
		}
		return true
	}
	return false
}
