package core

import (
	"errors"
	"fmt"
	"math"

	"mvdb/internal/engine"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// Delta translation. Re-running the full Definition 5 translation after a
// small mutation batch re-materializes every view — by far the dominant cost
// of incremental index maintenance (the view joins dwarf the OBDD work).
// ApplyDelta instead patches the source and translated databases in place
// and repairs only the NV tuples whose view heads the batch can have
// touched: for each changed base tuple it unifies the tuple with each view
// atom and evaluates the residual query (constants substituted, head
// variables pinned by equality predicates — both exploit the engine's hash
// indexes), which yields the affected heads; each affected head is then
// re-checked for existence with one bound evaluation. Work is proportional
// to the batch's blast radius, not to the database.
//
// Because in-place mutation keeps variable ids stable (deletes tombstone,
// never renumber), the identity map over surviving variables is a valid OBDD
// variable map for obdd.CompileDelta, and the returned changed-tuple list
// names exactly the base and NV tuples whose presence differs — the inputs
// the incremental compiler needs to dirty blocks.

// ErrDeltaFallback reports that the batch may change the translation's
// shape — a changed tuple can reach a negated atom, a view that contributed
// nothing at translate time, or a pure denial view with non-zero weights —
// so the caller must apply the batch conventionally and re-translate. The
// check is a read-only preflight: on fallback nothing has been mutated.
var ErrDeltaFallback = errors.New("core: mutation batch may change the translation structure")

// ApplyDelta applies one validated mutation batch to the translation's
// source and translated databases in place and returns the tuples whose
// presence changed (base and NV). The caller must hold exclusive access and
// have validated the batch; after a non-fallback error the databases may be
// partially mutated and the translation must be rebuilt from its source.
func (t *Translation) ApplyDelta(batch []Mutation) ([]obdd.ChangedTuple, error) {
	if t.Source == nil {
		return nil, fmt.Errorf("core: translation has no source MVDB")
	}
	var structural []Mutation
	for _, mu := range batch {
		if mu.Op != MutReweight {
			structural = append(structural, mu)
		}
	}

	// Read-only preflight: every condition that requires the full
	// translation is decided before the first write, so fallback is clean.
	denial := map[string]bool{}
	for _, name := range t.DenialViews {
		denial[name] = true
	}
	type touchedView struct {
		v    *MarkoView
		old  map[string][]engine.Value // affected heads, old side first
		skip bool                      // denial view that provably stays empty-weighted
	}
	var touched []touchedView
	for _, v := range t.Source.Views {
		hit, negated := viewHit(v, structural)
		if !hit {
			continue
		}
		if negated {
			// A changed tuple matching a negated atom shifts derivations in
			// the opposite direction; the residual-query machinery below
			// only covers positive occurrences.
			return nil, ErrDeltaFallback
		}
		tv := touchedView{v: v}
		switch {
		case denial[v.Name] && provablyZero(v.Weights):
			// A pure denial view with an all-zero weight table stays a pure
			// denial view under any mutation, and denial views contribute no
			// NV tuples — W is unchanged, nothing to repair.
			tv.skip = true
		case denial[v.Name]:
			// A denial view with reachable non-zero weights could stop being
			// one; deciding that needs the weights of heads we have not
			// computed yet.
			return nil, ErrDeltaFallback
		case !t.nvSet[t.opts.NVPrefix+v.Name]:
			// The view contributed nothing at translate time, so its
			// disjuncts are absent from W; any new head changes W's shape.
			return nil, ErrDeltaFallback
		}
		touched = append(touched, tv)
	}

	// Old-side affected heads, before any write.
	for i := range touched {
		if touched[i].skip {
			continue
		}
		heads, err := affectedViewHeads(t.Source.DB, touched[i].v, structural)
		if err != nil {
			return nil, err
		}
		touched[i].old = heads
	}

	// Apply the batch to the source and mirror the base mutations into the
	// translated database (which shares the source's base relations plus the
	// NV relations).
	if err := t.Source.Apply(batch); err != nil {
		return nil, fmt.Errorf("core: delta apply: source: %w", err)
	}
	var changed []obdd.ChangedTuple
	for _, mu := range batch {
		var err error
		switch mu.Op {
		case MutInsert:
			if t.DB.Relation(mu.Rel).Deterministic {
				err = t.DB.InsertDet(mu.Rel, mu.Vals...)
			} else {
				_, err = t.DB.Insert(mu.Rel, mu.Weight, mu.Vals...)
			}
		case MutDelete:
			_, err = t.DB.DeleteTuple(mu.Rel, mu.Vals)
		case MutReweight:
			_, err = t.DB.UpdateWeight(mu.Rel, mu.Vals, mu.Weight)
			if err == nil {
				continue
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: delta apply: translated clone: %w", err)
		}
		changed = append(changed, obdd.ChangedTuple{Rel: mu.Rel, Vals: mu.Vals})
	}

	// New-side affected heads, then repair the NV relation per head.
	for _, tv := range touched {
		if tv.skip {
			continue
		}
		v := tv.v
		heads, err := affectedViewHeads(t.Source.DB, v, structural)
		if err != nil {
			return nil, err
		}
		for k, h := range tv.old {
			if _, ok := heads[k]; !ok {
				heads[k] = h
			}
		}
		nvName := t.opts.NVPrefix + v.Name
		for _, h := range heads {
			w := v.WeightOf(h)
			if math.IsNaN(w) || w < 0 {
				return nil, fmt.Errorf("core: view %s assigns invalid weight %v to %s", v.Name, w, engine.FormatTuple(h))
			}
			if math.IsInf(w, 1) {
				return nil, fmt.Errorf("core: view %s assigns weight +Inf to %s", v.Name, engine.FormatTuple(h))
			}
			exists, err := viewHeadExists(t.Source.DB, v, h)
			if err != nil {
				return nil, err
			}
			// Mirror Translate: weight-1 tuples are pruned (unconstrained)
			// unless KeepIndependent.
			needNV := exists && (w != 1 || t.opts.KeepIndependent)
			was := t.DB.HasTuple(nvName, h)
			switch {
			case needNV && !was:
				w0 := math.Inf(1) // w == 0: hard constraint, probability 1
				if w != 0 {
					w0 = (1 - w) / w
				}
				if _, err := t.DB.Insert(nvName, w0, h...); err != nil {
					return nil, fmt.Errorf("core: delta apply: view %s: %w", v.Name, err)
				}
				changed = append(changed, obdd.ChangedTuple{Rel: nvName, Vals: h})
			case !needNV && was:
				if _, err := t.DB.DeleteTuple(nvName, h); err != nil {
					return nil, fmt.Errorf("core: delta apply: view %s: %w", v.Name, err)
				}
				changed = append(changed, obdd.ChangedTuple{Rel: nvName, Vals: h})
			}
		}
	}
	return changed, nil
}

// provablyZero reports whether a weight table assigns 0 to every possible
// head. Closure-weighted views return false — their outputs cannot be
// inspected without evaluation.
func provablyZero(wt *WeightTable) bool {
	if wt == nil || wt.Default != 0 {
		return false
	}
	for _, w := range wt.ByHead {
		if w != 0 {
			return false
		}
	}
	return true
}

// viewHit reports whether any structural mutation can match an atom of the
// view, and whether any such atom is negated.
func viewHit(v *MarkoView, structural []Mutation) (hit, negated bool) {
	for _, d := range v.Def.Disjuncts {
		for _, a := range d.Atoms {
			for _, mu := range structural {
				if a.Rel != mu.Rel || len(a.Args) != len(mu.Vals) {
					continue
				}
				hit = true
				if a.Negated {
					return true, true
				}
			}
		}
	}
	return hit, false
}

// affectedViewHeads returns every head tuple of the view whose derivations
// can involve one of the changed base tuples in the given database: for each
// (changed tuple, disjunct, matching atom) it unifies the tuple with the
// atom and evaluates the residual query. Non-head bindings are substituted
// as constants; head bindings become equality predicates so the head stays
// projectable. The result (keyed by tuple key) is a superset of the heads
// whose materialization status changed — each still needs an existence
// re-check.
func affectedViewHeads(db *engine.Database, v *MarkoView, structural []Mutation) (map[string][]engine.Value, error) {
	isHead := map[string]bool{}
	for _, h := range v.Head {
		isHead[h] = true
	}
	seen := map[string][]engine.Value{}
	for _, mu := range structural {
		for _, d := range v.Def.Disjuncts {
			for _, a := range d.Atoms {
				if a.Negated || a.Rel != mu.Rel || len(a.Args) != len(mu.Vals) {
					continue
				}
				binding := map[string]engine.Value{}
				unified := true
				for j, term := range a.Args {
					if term.IsConst {
						if !term.Const.Equal(mu.Vals[j]) {
							unified = false
							break
						}
						continue
					}
					if prev, ok := binding[term.Var]; ok {
						if !prev.Equal(mu.Vals[j]) {
							unified = false
							break
						}
						continue
					}
					binding[term.Var] = mu.Vals[j]
				}
				if !unified {
					continue
				}
				rest := map[string]engine.Value{}
				var eqs []ucq.Pred
				for x, val := range binding {
					if isHead[x] {
						eqs = append(eqs, ucq.Pred{Op: ucq.OpEQ, L: ucq.V(x), R: ucq.C(val)})
					} else {
						rest[x] = val
					}
				}
				rd := d.Subst(rest)
				rd.Preds = append(rd.Preds, eqs...)
				q := &ucq.Query{Name: v.Name, Head: v.Head, UCQ: ucq.UCQ{Disjuncts: []ucq.CQ{rd}}}
				rows, err := ucq.Eval(db, q)
				if err != nil {
					return nil, fmt.Errorf("core: delta apply: view %s: %w", v.Name, err)
				}
				for _, r := range rows {
					seen[engine.TupleKey(r.Head)] = r.Head
				}
			}
		}
	}
	return seen, nil
}

// viewHeadExists reports whether the view materializes the given head in the
// database: one evaluation with every head variable pinned by an equality
// predicate.
func viewHeadExists(db *engine.Database, v *MarkoView, head []engine.Value) (bool, error) {
	u := ucq.UCQ{Disjuncts: make([]ucq.CQ, 0, len(v.Def.Disjuncts))}
	for _, d := range v.Def.Disjuncts {
		nd := ucq.CQ{Atoms: d.Atoms, Preds: make([]ucq.Pred, 0, len(d.Preds)+len(v.Head))}
		nd.Preds = append(nd.Preds, d.Preds...)
		for i, h := range v.Head {
			nd.Preds = append(nd.Preds, ucq.Pred{Op: ucq.OpEQ, L: ucq.V(h), R: ucq.C(head[i])})
		}
		u.Disjuncts = append(u.Disjuncts, nd)
	}
	rows, err := ucq.Eval(db, &ucq.Query{Name: v.Name, Head: v.Head, UCQ: u})
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}
