// Package core implements the paper's contribution: MVDBs — probabilistic
// databases with MarkoViews (Section 2.4) — their Markov-Logic-Network
// semantics (Definition 4), the translation to a tuple-independent database
// (Definition 5), and query evaluation through Theorem 1:
//
//	P(Q) = (P0(Q ∨ W) - P0(W)) / (1 - P0(W))
package core

import (
	"fmt"
	"math"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
	"mvdb/internal/mln"
	"mvdb/internal/ucq"
)

// WeightFn computes the weight of one MarkoView output tuple from its head
// values. Weights are multiplicative MLN weights: 0 is a hard (denial)
// constraint, 1 independence, values above 1 positive correlation.
type WeightFn func(head []engine.Value) float64

// ConstWeight returns a WeightFn assigning the same weight to every tuple.
func ConstWeight(w float64) WeightFn {
	return func([]engine.Value) float64 { return w }
}

// MarkoView is a weighted UCQ view over the probabilistic and deterministic
// tables (Definition 3). Weights are given either as a closure (Weight) or
// as a serializable WeightTable (Weights); when both are set the table wins.
// Only table-weighted views survive MVDB snapshots.
type MarkoView struct {
	Name    string
	Head    []string
	Def     ucq.UCQ
	Weight  WeightFn
	Weights *WeightTable
}

// WeightOf resolves the view's weight for one head tuple, preferring the
// serializable table over the closure.
func (v *MarkoView) WeightOf(head []engine.Value) float64 {
	if v.Weights != nil {
		return v.Weights.Weight(head)
	}
	return v.Weight(head)
}

// MVDB is a probabilistic database together with its MarkoViews.
type MVDB struct {
	DB    *engine.Database
	Views []*MarkoView
}

// New wraps a database as an MVDB without views (equivalent to an INDB).
func New(db *engine.Database) *MVDB {
	return &MVDB{DB: db}
}

// AddView registers a MarkoView after validating it.
func (m *MVDB) AddView(v *MarkoView) error {
	if v.Name == "" {
		return fmt.Errorf("core: view needs a name")
	}
	for _, existing := range m.Views {
		if existing.Name == v.Name {
			return fmt.Errorf("core: view %s already defined", v.Name)
		}
	}
	if m.DB.Relation(v.Name) != nil {
		return fmt.Errorf("core: view %s clashes with a relation name", v.Name)
	}
	if v.Weight == nil && v.Weights == nil {
		return fmt.Errorf("core: view %s has no weight function", v.Name)
	}
	q := &ucq.Query{Name: v.Name, Head: v.Head, UCQ: v.Def}
	if err := q.Validate(); err != nil {
		return fmt.Errorf("core: view %s: %w", v.Name, err)
	}
	for _, d := range v.Def.Disjuncts {
		for _, a := range d.Atoms {
			rel := m.DB.Relation(a.Rel)
			if rel == nil {
				return fmt.Errorf("core: view %s uses unknown relation %s", v.Name, a.Rel)
			}
			if len(a.Args) != rel.Arity() {
				return fmt.Errorf("core: view %s: relation %s has arity %d, atom has %d arguments",
					v.Name, a.Rel, rel.Arity(), len(a.Args))
			}
		}
	}
	m.Views = append(m.Views, v)
	return nil
}

// ParseView parses "V(x,y) :- body" rules (one or more lines, same head)
// into a MarkoView with the given weight function.
func ParseView(src string, w WeightFn) (*MarkoView, error) {
	q, err := ucq.Parse(src)
	if err != nil {
		return nil, err
	}
	return &MarkoView{Name: q.Name, Head: q.Head, Def: q.UCQ, Weight: w}, nil
}

// ViewTuple is one materialized output tuple of a MarkoView.
type ViewTuple struct {
	View    string
	Head    []engine.Value
	Weight  float64     // the MarkoView weight w
	Lineage lineage.DNF // lineage of the view body at this head tuple
}

// Materialize evaluates every view over the set of possible tuples I_poss
// (Section 2.4: TupV) and returns the weighted view tuples.
func (m *MVDB) Materialize() ([]ViewTuple, error) {
	var out []ViewTuple
	for _, v := range m.Views {
		q := &ucq.Query{Name: v.Name, Head: v.Head, UCQ: v.Def}
		rows, err := ucq.Eval(m.DB, q)
		if err != nil {
			return nil, fmt.Errorf("core: materializing view %s: %w", v.Name, err)
		}
		for _, r := range rows {
			w := v.WeightOf(r.Head)
			if math.IsNaN(w) || w < 0 {
				return nil, fmt.Errorf("core: view %s assigns invalid weight %v to %s",
					v.Name, w, engine.FormatTuple(r.Head))
			}
			if math.IsInf(w, 1) {
				return nil, fmt.Errorf("core: view %s assigns weight +Inf to %s (degenerate translation; assert the tuples directly instead)",
					v.Name, engine.FormatTuple(r.Head))
			}
			out = append(out, ViewTuple{View: v.Name, Head: r.Head, Weight: w, Lineage: r.Lineage})
		}
	}
	return out, nil
}

// GroundMLN builds the Markov Logic Network of Definition 4: one feature
// (X_t, w(t)) per probabilistic tuple and one feature (Q_i(t̄), w_V(t)) per
// view tuple. Deterministic tuples are present in every world and do not
// appear as variables. Intended as exact ground truth on small instances.
func (m *MVDB) GroundMLN() (*mln.Network, error) {
	var feats []mln.Feature
	for v := 1; v <= m.DB.NumVars(); v++ {
		w := m.DB.Weight(v)
		if w < 0 {
			return nil, fmt.Errorf("core: tuple variable %d has negative weight %v; MVDB weights must be non-negative", v, w)
		}
		feats = append(feats, mln.Feature{F: lineage.Var(v), Weight: w})
	}
	tuples, err := m.Materialize()
	if err != nil {
		return nil, err
	}
	for _, t := range tuples {
		feats = append(feats, mln.Feature{F: lineage.FromDNF(t.Lineage), Weight: t.Weight})
	}
	return mln.New(m.DB.NumVars(), feats)
}

// ProbExact computes P(Q) directly from the Definition 4 semantics by
// enumerating all possible worlds. Only feasible on small instances; used as
// the ground truth that Theorem 1 is tested against.
func (m *MVDB) ProbExact(q ucq.UCQ) (float64, error) {
	net, err := m.GroundMLN()
	if err != nil {
		return 0, err
	}
	lin, err := ucq.EvalBoolean(m.DB, q)
	if err != nil {
		return 0, err
	}
	return net.MarginalExact(lineage.FromDNF(lin))
}

// ProbMCSat estimates P(Q) with the MC-SAT sampler over the Definition 4
// MLN — the Alchemy-style baseline of Section 5.1.
func (m *MVDB) ProbMCSat(q ucq.UCQ, opt mln.MCSatOptions) (float64, error) {
	net, err := m.GroundMLN()
	if err != nil {
		return 0, err
	}
	lin, err := ucq.EvalBoolean(m.DB, q)
	if err != nil {
		return 0, err
	}
	return net.MarginalMCSat(lineage.FromDNF(lin), opt)
}

// MAPWorld is the result of MAP inference: the tuples present in a most
// likely possible world, with the world's (unnormalized) weight Φ.
type MAPWorld struct {
	Tuples map[string][][]engine.Value // relation -> tuples present
	Weight float64
}

// MAPExact computes a most likely world of the MVDB by exhaustive
// enumeration of the Definition 4 semantics (small instances only).
func (m *MVDB) MAPExact() (*MAPWorld, error) {
	net, err := m.GroundMLN()
	if err != nil {
		return nil, err
	}
	state, w, err := net.MAPExact()
	if err != nil {
		return nil, err
	}
	return m.stateToWorld(state, w)
}

// MAPWalk approximates the most likely world with a MaxWalkSAT-style local
// search; usable at scales where exact enumeration is infeasible.
func (m *MVDB) MAPWalk(opt mln.MAPOptions) (*MAPWorld, error) {
	net, err := m.GroundMLN()
	if err != nil {
		return nil, err
	}
	state, w, err := net.MAPWalk(opt)
	if err != nil {
		return nil, err
	}
	return m.stateToWorld(state, w)
}

func (m *MVDB) stateToWorld(state []bool, w float64) (*MAPWorld, error) {
	out := &MAPWorld{Tuples: map[string][][]engine.Value{}, Weight: w}
	for v := 1; v <= m.DB.NumVars(); v++ {
		if !state[v] {
			continue
		}
		rel, t, err := m.DB.VarTuple(v)
		if err != nil {
			return nil, err
		}
		out.Tuples[rel] = append(out.Tuples[rel], t.Vals)
	}
	return out, nil
}

// DefineProbTable materializes a probabilistic table from a query over
// deterministic tables — the middle layer of Figure 1, where each
// probabilistic table "is defined by a query, which also associates a
// weight to every output tuple" (e.g. Studentp(aid,year)[exp(1-.15(year-
// year'))] :- FirstPub(aid,year'), year'-1 <= year <= year'+5). It creates
// the relation named by the query head and inserts one weighted tuple per
// distinct answer; the weight function sees the head values. It returns the
// number of tuples inserted.
func DefineProbTable(db *engine.Database, q *ucq.Query, weight WeightFn) (int, error) {
	if weight == nil {
		return 0, fmt.Errorf("core: prob table %s needs a weight function", q.Name)
	}
	if len(q.Head) == 0 {
		return 0, fmt.Errorf("core: prob table %s needs head variables", q.Name)
	}
	for _, d := range q.Disjuncts {
		for _, a := range d.Atoms {
			rel := db.Relation(a.Rel)
			if rel == nil {
				return 0, fmt.Errorf("core: prob table %s uses unknown relation %s", q.Name, a.Rel)
			}
			if !rel.Deterministic {
				return 0, fmt.Errorf("core: prob table %s must be defined over deterministic tables; %s is probabilistic", q.Name, a.Rel)
			}
		}
	}
	rows, err := ucq.Eval(db, q)
	if err != nil {
		return 0, err
	}
	cols := make([]string, len(q.Head))
	copy(cols, q.Head)
	if _, err := db.CreateRelation(q.Name, false, cols...); err != nil {
		return 0, err
	}
	n := 0
	for _, r := range rows {
		w := weight(r.Head)
		if math.IsNaN(w) || w < 0 {
			return n, fmt.Errorf("core: prob table %s assigns invalid weight %v to %s", q.Name, w, engine.FormatTuple(r.Head))
		}
		if _, err := db.Insert(q.Name, w, r.Head...); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
