package core

import (
	"context"

	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// answerCache memoizes Query answer sets on a Translation, keyed by the
// canonical query fingerprint mixed with the evaluation method. A Translation
// is immutable after construction (tables, W, and the shared OBDD never
// change), so entries are valid for the Translation's lifetime and no epoch
// invalidation is needed; the cache still bounds itself by entries and bytes.
type answerCache struct {
	c *qcache.Cache[[]Answer]
}

// EnableCache installs a cross-query answer cache on the Translation (or
// removes it with opts.Disable). Set it up before concurrent use: the field
// write itself is unsynchronized, like Parallelism. Once installed, Query and
// QueryContext consult it and collapse concurrent identical misses into one
// evaluation (singleflight); per-method results are kept apart, since the
// methods agree only up to final-ulp rounding.
func (t *Translation) EnableCache(opts qcache.Options) {
	if opts.Disable {
		t.qc = nil
		return
	}
	t.qc = &answerCache{c: qcache.New(opts, answerSetBytes)}
}

// CacheEnabled reports whether the answer cache is installed.
func (t *Translation) CacheEnabled() bool { return t.qc != nil }

// CacheStats returns the answer-cache counters (zero value when disabled).
func (t *Translation) CacheStats() qcache.Stats {
	if t.qc == nil {
		return qcache.Stats{}
	}
	return t.qc.c.Stats()
}

// cacheKey mixes the method into the canonical fingerprint so MethodOBDD and
// MethodDPLL answers for the same query occupy distinct entries.
func (t *Translation) cacheKey(q *ucq.Query, method Method) qcache.Key {
	fp := ucq.FingerprintQuery(q)
	return qcache.Key{Hi: fp.Hi, Lo: fp.Lo ^ 0x9e3779b97f4a7c15*uint64(method+1)}
}

// answerSetBytes estimates the retained bytes of a cached answer set.
func answerSetBytes(as []Answer) int64 {
	n := int64(64)
	for _, a := range as {
		n += 32
		for _, v := range a.Head {
			n += 24 + int64(len(v.Str))
		}
	}
	return n
}

// copyAnswerSet returns a shallow copy so callers can sort or append without
// disturbing the cached slice; the Head tuples stay shared and are treated as
// immutable by every consumer.
func copyAnswerSet(as []Answer) []Answer {
	out := make([]Answer, len(as))
	copy(out, as)
	return out
}

// cachedQuery wraps queryBounded in the answer cache: hit → copy, miss →
// evaluate once (concurrent identical misses wait on the leader; a leader
// abort wakes them to retry under their own bounds, so one caller's budget
// violation never fails or poisons another's request).
func (t *Translation) cachedQuery(q *ucq.Query, method Method, bo bounds) ([]Answer, error) {
	ctx := bo.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, _, err := t.qc.c.Do(ctx, t.cacheKey(q, method), func() ([]Answer, error) {
		return t.queryBounded(q, method, bo)
	})
	if err != nil {
		return nil, err
	}
	return copyAnswerSet(res), nil
}
