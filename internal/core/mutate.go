package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// MutationOp names one kind of base-table mutation.
type MutationOp string

// The supported mutations. Reweight changes the odds of an existing
// probabilistic tuple; insert and delete change the set of possible tuples
// (and therefore the view materializations and the translated W lineage).
const (
	MutInsert   MutationOp = "insert"
	MutDelete   MutationOp = "delete"
	MutReweight MutationOp = "reweight"
)

// Mutation is one base-table change. Vals identifies the tuple (the full
// tuple is the key, as everywhere in the engine); Weight is the new odds for
// insert and reweight and ignored for delete.
type Mutation struct {
	Op     MutationOp
	Rel    string
	Vals   []engine.Value
	Weight float64
}

func (mu Mutation) String() string {
	return fmt.Sprintf("%s %s%s", mu.Op, mu.Rel, engine.FormatTuple(mu.Vals))
}

// WeightOnly reports whether every mutation in the batch is a reweight —
// the fast path that leaves the translated database's structure (and its
// OBDD) untouched.
func WeightOnly(batch []Mutation) bool {
	for _, mu := range batch {
		if mu.Op != MutReweight {
			return false
		}
	}
	return len(batch) > 0
}

// ValidateBatch checks a mutation batch against the MVDB without applying
// anything, simulating the batch's sequential semantics (an insert followed
// by a delete of the same tuple is fine). A nil error guarantees Apply will
// succeed on the same state. Mutations may only target the base tables; the
// NV relations of a translation exist only in the translated clone, so they
// are unreachable here by construction.
func (m *MVDB) ValidateBatch(batch []Mutation) error {
	if len(batch) == 0 {
		return fmt.Errorf("core: empty mutation batch")
	}
	// exists[rel+key]: tri-state via two maps — overrides recorded by the
	// simulation shadow the database.
	override := map[string]bool{}
	key := func(mu Mutation) string { return mu.Rel + "\x00" + engine.TupleKey(mu.Vals) }
	exists := func(mu Mutation) bool {
		if v, ok := override[key(mu)]; ok {
			return v
		}
		return m.DB.HasTuple(mu.Rel, mu.Vals)
	}
	for i, mu := range batch {
		r := m.DB.Relation(mu.Rel)
		if r == nil {
			return fmt.Errorf("core: mutation %d: unknown relation %s", i, mu.Rel)
		}
		if len(mu.Vals) != r.Arity() {
			return fmt.Errorf("core: mutation %d: relation %s has arity %d, got %d values", i, mu.Rel, r.Arity(), len(mu.Vals))
		}
		switch mu.Op {
		case MutInsert:
			if exists(mu) {
				return fmt.Errorf("core: mutation %d: duplicate tuple %s%s", i, mu.Rel, engine.FormatTuple(mu.Vals))
			}
			if !r.Deterministic {
				if err := checkBaseWeight(mu.Weight); err != nil {
					return fmt.Errorf("core: mutation %d: %w", i, err)
				}
			}
			override[key(mu)] = true
		case MutDelete:
			if !exists(mu) {
				return fmt.Errorf("core: mutation %d: no tuple %s%s", i, mu.Rel, engine.FormatTuple(mu.Vals))
			}
			override[key(mu)] = false
		case MutReweight:
			if r.Deterministic {
				return fmt.Errorf("core: mutation %d: relation %s is deterministic", i, mu.Rel)
			}
			if !exists(mu) {
				return fmt.Errorf("core: mutation %d: no tuple %s%s", i, mu.Rel, engine.FormatTuple(mu.Vals))
			}
			if err := checkBaseWeight(mu.Weight); err != nil {
				return fmt.Errorf("core: mutation %d: %w", i, err)
			}
		default:
			return fmt.Errorf("core: mutation %d: unknown op %q", i, mu.Op)
		}
	}
	return nil
}

// checkBaseWeight enforces Definition 4's constraint on base-tuple weights:
// finite and non-negative (negative weights exist only on translated NV
// tuples, which are never mutated directly).
func checkBaseWeight(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("base tuple weight %v must be finite and non-negative", w)
	}
	return nil
}

// Apply applies a validated batch to the MVDB's base tables in order.
// Callers must run ValidateBatch first (Apply re-checks nothing beyond what
// the engine enforces) and must hold whatever lock protects the database.
func (m *MVDB) Apply(batch []Mutation) error {
	for i, mu := range batch {
		var err error
		switch mu.Op {
		case MutInsert:
			if m.DB.Relation(mu.Rel).Deterministic {
				err = m.DB.InsertDet(mu.Rel, mu.Vals...)
			} else {
				_, err = m.DB.Insert(mu.Rel, mu.Weight, mu.Vals...)
			}
		case MutDelete:
			_, err = m.DB.DeleteTuple(mu.Rel, mu.Vals)
		case MutReweight:
			_, err = m.DB.UpdateWeight(mu.Rel, mu.Vals, mu.Weight)
		default:
			err = fmt.Errorf("unknown op %q", mu.Op)
		}
		if err != nil {
			return fmt.Errorf("core: applying mutation %d (%s): %w", i, mu, err)
		}
	}
	return nil
}

// EncodeMutations gobs a batch into the opaque record form carried by WAL
// frames and the replication stream — one codec, so a frame a follower
// receives is bit-identical to the one the primary logged.
func EncodeMutations(batch []Mutation) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMutations reverses EncodeMutations.
func DecodeMutations(rec []byte) ([]Mutation, error) {
	var batch []Mutation
	if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&batch); err != nil {
		return nil, err
	}
	return batch, nil
}

// WeightTable is a serializable weight assignment for a view's output
// tuples: a default weight plus per-head-tuple overrides keyed by
// engine.TupleKey of the head values. It replaces Go-closure WeightFns where
// the MVDB must survive snapshot/restore (the live-update write path).
type WeightTable struct {
	Default float64
	ByHead  map[string]float64
}

// Weight looks up the weight of one head tuple.
func (wt *WeightTable) Weight(head []engine.Value) float64 {
	if w, ok := wt.ByHead[engine.TupleKey(head)]; ok {
		return w
	}
	return wt.Default
}

// Set records a per-head override.
func (wt *WeightTable) Set(head []engine.Value, w float64) {
	if wt.ByHead == nil {
		wt.ByHead = map[string]float64{}
	}
	wt.ByHead[engine.TupleKey(head)] = w
}

// clone deep-copies the table.
func (wt *WeightTable) clone() *WeightTable {
	out := &WeightTable{Default: wt.Default}
	if wt.ByHead != nil {
		out.ByHead = make(map[string]float64, len(wt.ByHead))
		for k, v := range wt.ByHead {
			out.ByHead[k] = v
		}
	}
	return out
}

// ViewSnapshot is the serializable form of one MarkoView. Only table-
// weighted views can be snapshotted; closure weights do not survive gob.
type ViewSnapshot struct {
	Name    string
	Head    []string
	Def     ucq.UCQ
	Weights WeightTable
}

// MVDBSnapshot is the gob-serializable form of an MVDB: the base database
// plus every view definition with its weight table. It is what the live
// server persists so mutations can be re-translated after recovery.
type MVDBSnapshot struct {
	DB    engine.DatabaseSnapshot
	Views []ViewSnapshot
}

// Snapshot captures the MVDB. It errors when a view carries only a closure
// WeightFn: such views cannot be restored (convert them to WeightTables).
func (m *MVDB) Snapshot() (MVDBSnapshot, error) {
	s := MVDBSnapshot{DB: m.DB.Snapshot()}
	for _, v := range m.Views {
		if v.Weights == nil {
			return MVDBSnapshot{}, fmt.Errorf("core: view %s has closure weights; only WeightTable-backed views can be snapshotted", v.Name)
		}
		s.Views = append(s.Views, ViewSnapshot{
			Name:    v.Name,
			Head:    append([]string(nil), v.Head...),
			Def:     v.Def,
			Weights: *v.Weights.clone(),
		})
	}
	return s, nil
}

// RestoreMVDB rebuilds an MVDB from a snapshot.
func RestoreMVDB(s MVDBSnapshot) (*MVDB, error) {
	db, err := engine.FromSnapshot(s.DB)
	if err != nil {
		return nil, err
	}
	m := New(db)
	for _, vs := range s.Views {
		wt := vs.Weights.clone()
		v := &MarkoView{Name: vs.Name, Head: vs.Head, Def: vs.Def, Weights: wt}
		if err := m.AddView(v); err != nil {
			return nil, err
		}
	}
	return m, nil
}
