package core

import (
	"fmt"
	"math"

	"mvdb/internal/engine"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// TranslateOptions tunes the MVDB → INDB translation.
type TranslateOptions struct {
	// NVPrefix prefixes the fresh NV relation names (default "NV_").
	NVPrefix string
	// KeepIndependent keeps view tuples with weight exactly 1. They are
	// pruned by default: their translated weight is 0, probability 0, so the
	// NV tuple can never appear and W_i can never fire through it.
	KeepIndependent bool
	// NoDenialOptimization disables the special handling of pure denial
	// views (all weights 0). By default such a view's NV relation is
	// deterministic and dropped from W_i entirely (Section 3.2, last
	// paragraph); with this flag the general per-tuple path is used instead,
	// which must give identical answers (tested).
	NoDenialOptimization bool
}

// Translation is the tuple-independent database D0 of Definition 5 together
// with the Boolean UCQ W of Theorem 1.
type Translation struct {
	Source *MVDB
	DB     *engine.Database // clone of the MVDB's tables plus the NV relations
	W      ucq.UCQ          // W = ∨ᵢ Wᵢ, Wᵢ = NVᵢ(x̄) ∧ Qᵢ(x̄)

	// Parallelism bounds the worker count for OBDD compilation of W and for
	// the per-answer loop in Query: 0 uses GOMAXPROCS, 1 forces the
	// sequential reference path, N > 1 uses N workers. Set it before the
	// first evaluation (it is read when W is compiled and on each Query).
	Parallelism int

	// Reorder configures dynamic OBDD variable reordering of the MV-index:
	// when Mode is not ReorderOff, mvindex.Build runs a per-block Rudell
	// sifting pass after compiling W and the index keeps the learned order.
	// It does not affect the translation's own global OBDD compilation
	// (ensureOBDD), which the index sift replaces wholesale. Carried over by
	// Retranslate.
	Reorder obdd.ReorderOptions

	NVRelations       []string // one per non-empty view, in view order
	PrunedIndependent int      // view tuples with w = 1 skipped
	DenialViews       []string // views handled by the denial optimization

	nvSet map[string]bool
	opts  TranslateOptions // options Translate was called with (for re-translation)
	obdd  *obddState
	qc    *answerCache // optional cross-query answer cache, see EnableCache
}

// Opts returns the options the translation was built with (defaults filled
// in), so a mutated source MVDB can be re-translated identically.
func (t *Translation) Opts() TranslateOptions { return t.opts }

// Retranslate re-runs the Definition 5 translation against the (possibly
// mutated) source MVDB with the original options, carrying the Parallelism
// knob over. It errors on restored translations whose Source is gone.
func (t *Translation) Retranslate() (*Translation, error) {
	if t.Source == nil {
		return nil, fmt.Errorf("core: translation has no source MVDB (restored from a v1 snapshot?)")
	}
	nt, err := t.Source.Translate(t.opts)
	if err != nil {
		return nil, err
	}
	nt.Parallelism = t.Parallelism
	nt.Reorder = t.Reorder
	return nt, nil
}

// SetSource reattaches a source MVDB and the translate options to a restored
// translation, re-enabling Retranslate (and with it live mutation) after a
// snapshot round-trip. The caller asserts that the translation was built from
// this MVDB with these options.
func (t *Translation) SetSource(src *MVDB, opts TranslateOptions) {
	if opts.NVPrefix == "" {
		opts.NVPrefix = "NV_"
	}
	t.Source = src
	t.opts = opts
}

// Translate builds the associated INDB (Definition 5): every table of the
// MVDB carries over unchanged, and each MarkoView Vᵢ contributes a fresh
// relation NVᵢ holding the view's possible tuples with weight (1-w)/w —
// negative whenever w > 1.
func (m *MVDB) Translate(opts TranslateOptions) (*Translation, error) {
	if opts.NVPrefix == "" {
		opts.NVPrefix = "NV_"
	}
	tuples, err := m.Materialize()
	if err != nil {
		return nil, err
	}
	byView := map[string][]ViewTuple{}
	for _, t := range tuples {
		byView[t.View] = append(byView[t.View], t)
	}

	t := &Translation{
		Source: m,
		DB:     m.DB.Clone(),
		nvSet:  map[string]bool{},
		opts:   opts,
	}
	for _, v := range m.Views {
		vts := byView[v.Name]
		if len(vts) == 0 {
			continue // empty view: Wᵢ is identically false
		}
		nvName := opts.NVPrefix + v.Name
		if t.DB.Relation(nvName) != nil {
			return nil, fmt.Errorf("core: NV relation name %s clashes with an existing relation", nvName)
		}

		pureDenial := true
		for _, vt := range vts {
			if vt.Weight != 0 {
				pureDenial = false
				break
			}
		}

		if pureDenial && !opts.NoDenialOptimization {
			// NV would be deterministic (weight (1-0)/0 = ∞) and, since NV
			// contains every possible view tuple, NVᵢ(x̄) is implied by
			// Qᵢ(x̄): drop it from Wᵢ.
			t.DenialViews = append(t.DenialViews, v.Name)
			t.W.Disjuncts = append(t.W.Disjuncts, v.Def.Disjuncts...)
			continue
		}

		cols := make([]string, len(v.Head))
		copy(cols, v.Head)
		if _, err := t.DB.CreateRelation(nvName, false, cols...); err != nil {
			return nil, err
		}
		inserted := 0
		for _, vt := range vts {
			if vt.Weight == 1 && !opts.KeepIndependent {
				t.PrunedIndependent++
				continue
			}
			var w0 float64
			if vt.Weight == 0 {
				w0 = math.Inf(1) // hard constraint tuple: probability 1
			} else {
				w0 = (1 - vt.Weight) / vt.Weight
			}
			if _, err := t.DB.Insert(nvName, w0, vt.Head...); err != nil {
				return nil, fmt.Errorf("core: view %s: %w", v.Name, err)
			}
			inserted++
		}
		if inserted == 0 {
			// All tuples pruned: Wᵢ can never fire.
			continue
		}
		t.NVRelations = append(t.NVRelations, nvName)
		t.nvSet[nvName] = true

		// Wᵢ: add the NV atom over the head variables to every disjunct.
		nvArgs := make([]ucq.Term, len(v.Head))
		for i, h := range v.Head {
			nvArgs[i] = ucq.V(h)
		}
		for _, d := range v.Def.Disjuncts {
			wi := ucq.CQ{
				Atoms: append([]ucq.Atom{{Rel: nvName, Args: nvArgs}}, d.Atoms...),
				Preds: d.Preds,
			}
			t.W.Disjuncts = append(t.W.Disjuncts, wi)
		}
	}
	return t, nil
}

// HasConstraints reports whether W is non-trivial (some view produced
// constraints). When false, the MVDB is an ordinary INDB and P = P0.
func (t *Translation) HasConstraints() bool { return len(t.W.Disjuncts) > 0 }

// checkQuery rejects queries that mention the internal NV relations.
func (t *Translation) checkQuery(q ucq.UCQ) error {
	for _, rel := range q.Relations() {
		if t.nvSet[rel] {
			return fmt.Errorf("core: query mentions internal relation %s", rel)
		}
	}
	return nil
}

// ValidateQuery performs the static input checks on a query over the public
// schema: every mentioned relation must exist with matching arity, and the
// internal NV relations are off limits. An error here means the query itself
// is malformed — as opposed to a failure during evaluation — so callers
// (e.g. the HTTP server) can classify it as bad input.
func (t *Translation) ValidateQuery(q ucq.UCQ) error {
	if err := t.checkQuery(q); err != nil {
		return err
	}
	for _, d := range q.Disjuncts {
		for _, a := range d.Atoms {
			r := t.DB.Relation(a.Rel)
			if r == nil {
				return fmt.Errorf("core: unknown relation %s", a.Rel)
			}
			if len(a.Args) != r.Arity() {
				return fmt.Errorf("core: relation %s has arity %d, got %d arguments", a.Rel, r.Arity(), len(a.Args))
			}
		}
	}
	return nil
}

// TranslationSnapshot is the serializable part of a Translation (the source
// MVDB's views and weight functions are Go closures and are not persisted;
// a restored Translation supports query evaluation but not re-translation).
type TranslationSnapshot struct {
	W                 ucq.UCQ
	NVRelations       []string
	DenialViews       []string
	PrunedIndependent int
}

// Snapshot captures the translation's serializable state (pair it with
// DB.Save for the data).
func (t *Translation) Snapshot() TranslationSnapshot {
	return TranslationSnapshot{
		W:                 t.W,
		NVRelations:       append([]string(nil), t.NVRelations...),
		DenialViews:       append([]string(nil), t.DenialViews...),
		PrunedIndependent: t.PrunedIndependent,
	}
}

// RestoreTranslation rebuilds a Translation from a snapshot and its
// database. The Source MVDB is nil on the result.
func RestoreTranslation(db *engine.Database, s TranslationSnapshot) (*Translation, error) {
	t := &Translation{
		DB:                db,
		W:                 s.W,
		NVRelations:       append([]string(nil), s.NVRelations...),
		DenialViews:       append([]string(nil), s.DenialViews...),
		PrunedIndependent: s.PrunedIndependent,
		nvSet:             map[string]bool{},
	}
	for _, nv := range s.NVRelations {
		if db.Relation(nv) == nil {
			return nil, fmt.Errorf("core: snapshot references missing NV relation %s", nv)
		}
		t.nvSet[nv] = true
	}
	for _, d := range s.W.Disjuncts {
		for _, a := range d.Atoms {
			if db.Relation(a.Rel) == nil {
				return nil, fmt.Errorf("core: snapshot's W references missing relation %s", a.Rel)
			}
		}
	}
	return t, nil
}

// IsNVVar reports whether a Boolean variable belongs to one of the internal
// NV relations introduced by the translation (as opposed to a real
// probabilistic tuple of the source database).
func (t *Translation) IsNVVar(v int) bool {
	ref, err := t.DB.VarRef(v)
	if err != nil {
		return false
	}
	return t.nvSet[ref.Rel]
}
