package core

import (
	"math"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// TestTranslationAnswerCache: cached and uncached Query agree, the second
// identical call hits, methods do not cross-contaminate, and Disable removes
// the cache.
func TestTranslationAnswerCache(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 1.5, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.5, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 0.7, engine.Int(2), engine.Int(10))
	m := New(db)
	v, _ := ParseView("V(s) :- Adv(s,a)", ConstWeight(1.6))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	want, err := tr.Query(q, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}

	tr.EnableCache(qcache.Options{})
	if !tr.CacheEnabled() {
		t.Fatal("EnableCache did not install")
	}
	for pass := 0; pass < 2; pass++ {
		got, err := tr.Query(q, MethodOBDD)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d rows, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
				t.Fatalf("pass %d row %d: cached %v uncached %v", pass, i, got[i].Prob, want[i].Prob)
			}
		}
	}
	st := tr.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected a miss then a hit: %+v", st)
	}

	// A different method must not read MethodOBDD's entry.
	if _, err := tr.Query(q, MethodDPLL); err != nil {
		t.Fatal(err)
	}
	if got := tr.CacheStats().Misses; got != st.Misses+1 {
		t.Fatalf("MethodDPLL should miss separately: misses %d then %d", st.Misses, got)
	}

	tr.EnableCache(qcache.Options{Disable: true})
	if tr.CacheEnabled() {
		t.Fatal("Disable did not remove the cache")
	}
}
