package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/engine"
)

// deltaMVDB builds a fixture exercising every translation rule the delta
// path must mirror: a table-weighted view with pruned (weight-1), hard
// (weight-0) and ordinary heads; a pure denial view with an all-zero weight
// table; and a deterministic relation.
func deltaMVDB(seed int64) *MVDB {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustCreateRelation("Det", true, "x")
	for s := int64(1); s <= 5; s++ {
		for a := int64(100); a < 100+2+rng.Int63n(3); a++ {
			db.MustInsert("Adv", 0.2+2*rng.Float64(), engine.Int(s), engine.Int(a))
		}
	}
	db.MustInsertDet("Det", engine.Int(1))
	m := New(db)

	v, err := ParseView("V(s) :- Adv(s,a)", nil)
	if err != nil {
		panic(err)
	}
	wt := &WeightTable{Default: 2.5}
	wt.Set([]engine.Value{engine.Int(2)}, 1) // pruned (unconstrained)
	wt.Set([]engine.Value{engine.Int(3)}, 0) // hard constraint
	wt.Set([]engine.Value{engine.Int(4)}, 0.4)
	v.Weights = wt
	if err := m.AddView(v); err != nil {
		panic(err)
	}

	d, err := ParseView("D(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", nil)
	if err != nil {
		panic(err)
	}
	d.Weights = &WeightTable{Default: 0}
	if err := m.AddView(d); err != nil {
		panic(err)
	}
	return m
}

// sameTranslatedDB compares two translated databases tuple for tuple,
// including weights (the NV weight arithmetic is identical on both paths, so
// exact equality is expected for finite weights).
func sameTranslatedDB(a, b *engine.Database) error {
	rels := map[string]bool{}
	for _, n := range a.Relations() {
		rels[n] = true
	}
	for _, n := range b.Relations() {
		rels[n] = true
	}
	for n := range rels {
		ra, rb := a.Relation(n), b.Relation(n)
		if ra == nil || rb == nil {
			return fmt.Errorf("relation %s present in only one database", n)
		}
		if len(ra.Tuples) != len(rb.Tuples) {
			return fmt.Errorf("relation %s: %d vs %d tuples", n, len(ra.Tuples), len(rb.Tuples))
		}
		for _, t := range ra.Tuples {
			i := rb.Lookup(t.Vals)
			if i < 0 {
				return fmt.Errorf("relation %s: tuple %s missing", n, engine.FormatTuple(t.Vals))
			}
			w2 := rb.Tuples[i].Weight
			if t.Weight != w2 && !(math.IsInf(t.Weight, 1) && math.IsInf(w2, 1)) {
				return fmt.Errorf("relation %s %s: weight %v vs %v", n, engine.FormatTuple(t.Vals), t.Weight, w2)
			}
		}
	}
	return nil
}

// TestApplyDeltaProperty: over random chains of structural batches, the
// delta-maintained translated database is tuple-for-tuple identical to a
// full re-translation of the mutated source, and the returned changed list
// names every presence difference from the previous translated database.
func TestApplyDeltaProperty(t *testing.T) {
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	deltas, fallbacks := 0, 0
	for seed := int64(0); seed < int64(rounds); seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		m := deltaMVDB(seed)
		tr, err := m.Translate(TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for batchNo := 0; batchNo < 8; batchNo++ {
			batch := randDeltaBatch(rng, tr.Source.DB)
			if err := tr.Source.ValidateBatch(batch); err != nil {
				t.Fatalf("seed %d batch %d invalid: %v", seed, batchNo, err)
			}
			// Full-translation reference over an independently mutated clone.
			work := &MVDB{DB: tr.Source.DB.Clone(), Views: tr.Source.Views}
			if err := work.Apply(batch); err != nil {
				t.Fatal(err)
			}
			full, err := work.Translate(tr.Opts())
			if err != nil {
				t.Fatal(err)
			}
			prevDB := tr.DB.Clone()
			changed, err := tr.ApplyDelta(batch)
			if errors.Is(err, ErrDeltaFallback) {
				fallbacks++
				tr = full
				continue
			}
			if err != nil {
				t.Fatalf("seed %d batch %d (%v): %v", seed, batchNo, batch, err)
			}
			deltas++
			if err := sameTranslatedDB(tr.DB, full.DB); err != nil {
				t.Fatalf("seed %d batch %d (%v): delta vs full translation: %v", seed, batchNo, batch, err)
			}
			// The changed list must cover the presence diff between the old
			// and new translated databases (it may legitimately include
			// extras, e.g. an insert+delete of the same tuple in one batch).
			have := map[string]bool{}
			for _, c := range changed {
				have[c.Rel+"\x00"+engine.TupleKey(c.Vals)] = true
			}
			for _, diff := range presenceDiff(prevDB, tr.DB) {
				if !have[diff] {
					t.Fatalf("seed %d batch %d: changed list misses %q", seed, batchNo, diff)
				}
			}
		}
	}
	if deltas == 0 {
		t.Fatal("every batch fell back; the delta path went untested")
	}
	t.Logf("delta batches: %d, fallbacks: %d", deltas, fallbacks)
}

func randDeltaBatch(rng *rand.Rand, db *engine.Database) []Mutation {
	exists := map[string]bool{}
	has := func(vals []engine.Value) bool {
		k := engine.TupleKey(vals)
		if v, ok := exists[k]; ok {
			return v
		}
		return db.HasTuple("Adv", vals)
	}
	var batch []Mutation
	for i := 0; i < 1+rng.Intn(4); i++ {
		vals := []engine.Value{
			engine.Int(1 + rng.Int63n(6)),
			engine.Int(100 + rng.Int63n(8)),
		}
		switch op := rng.Intn(3); {
		case op == 0 && has(vals):
			batch = append(batch, Mutation{Op: MutDelete, Rel: "Adv", Vals: vals})
			exists[engine.TupleKey(vals)] = false
		case op != 0 && has(vals):
			batch = append(batch, Mutation{Op: MutReweight, Rel: "Adv", Vals: vals, Weight: 0.1 + 2*rng.Float64()})
		default:
			batch = append(batch, Mutation{Op: MutInsert, Rel: "Adv", Vals: vals, Weight: 0.1 + 2*rng.Float64()})
			exists[engine.TupleKey(vals)] = true
		}
	}
	return batch
}

func presenceDiff(a, b *engine.Database) []string {
	var out []string
	one := func(x, y *engine.Database) {
		for _, n := range x.Relations() {
			ry := y.Relation(n)
			for _, t := range x.Relation(n).Tuples {
				if ry == nil || ry.Lookup(t.Vals) < 0 {
					out = append(out, n+"\x00"+engine.TupleKey(t.Vals))
				}
			}
		}
	}
	one(a, b)
	one(b, a)
	return out
}

// TestApplyDeltaFallbacks: batches that could change W's shape must be
// refused by the read-only preflight — nothing mutated, not silently
// mistranslated.
func TestApplyDeltaFallbacks(t *testing.T) {
	requireCleanFallback := func(t *testing.T, tr *Translation, batch []Mutation) {
		t.Helper()
		before := tr.Source.DB.Clone()
		_, err := tr.ApplyDelta(batch)
		if !errors.Is(err, ErrDeltaFallback) {
			t.Fatalf("want ErrDeltaFallback, got %v", err)
		}
		if err := sameTranslatedDB(before, tr.Source.DB); err != nil {
			t.Fatalf("preflight fallback mutated the source: %v", err)
		}
	}

	t.Run("negated relation mutated", func(t *testing.T) {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "x")
		db.MustCreateRelation("Blocked", true, "x")
		db.MustInsert("R", 2, engine.Int(1))
		m := New(db)
		v, _ := ParseView("V(x) :- R(x), not Blocked(x)", nil)
		v.Weights = &WeightTable{Default: 3}
		if err := m.AddView(v); err != nil {
			t.Fatal(err)
		}
		tr, err := m.Translate(TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireCleanFallback(t, tr, []Mutation{
			{Op: MutInsert, Rel: "Blocked", Vals: []engine.Value{engine.Int(1)}},
		})
	})

	t.Run("view without NV tuples touched", func(t *testing.T) {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "x")
		db.MustInsert("R", 2, engine.Int(1))
		m := New(db)
		v, _ := ParseView("V(x) :- R(x)", nil)
		// Every current head has weight 1 → the view is fully pruned at
		// translate time; a new head would be constrained.
		wt := &WeightTable{Default: 0.5}
		wt.Set([]engine.Value{engine.Int(1)}, 1)
		v.Weights = wt
		if err := m.AddView(v); err != nil {
			t.Fatal(err)
		}
		tr, err := m.Translate(TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireCleanFallback(t, tr, []Mutation{
			{Op: MutInsert, Rel: "R", Vals: []engine.Value{engine.Int(2)}, Weight: 1.5},
		})
	})

	t.Run("denial view with non-zero weights touched", func(t *testing.T) {
		db := engine.NewDatabase()
		db.MustCreateRelation("Adv", false, "s", "a")
		db.MustInsert("Adv", 2, engine.Int(1), engine.Int(100))
		m := New(db)
		v, _ := ParseView("D(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", nil)
		wt := &WeightTable{Default: 0}
		wt.Set([]engine.Value{engine.Int(1), engine.Int(100), engine.Int(101)}, 0.5)
		v.Weights = wt
		if err := m.AddView(v); err != nil {
			t.Fatal(err)
		}
		tr, err := m.Translate(TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireCleanFallback(t, tr, []Mutation{
			{Op: MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(101)}, Weight: 1.5},
		})
	})
}
