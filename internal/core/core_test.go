package core

import (
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
	"mvdb/internal/mln"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// example1 builds the MVDB of Example 1: Tup = {R(a), S(a)} with weights
// w1, w2 and one MarkoView V(x)[w] :- R(x), S(x).
func example1(w1, w2, w float64) *MVDB {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", w1, engine.Int(1))
	db.MustInsert("S", w2, engine.Int(1))
	m := New(db)
	v, err := ParseView("V(x) :- R(x), S(x)", ConstWeight(w))
	if err != nil {
		panic(err)
	}
	if err := m.AddView(v); err != nil {
		panic(err)
	}
	return m
}

func TestExample1ClosedForm(t *testing.T) {
	// Section 3.1 closed form: P(R(a) ∨ S(a)) = (w1+w2+w w1 w2)/Z.
	w1, w2, w := 2.0, 3.0, 0.5
	m := example1(w1, w2, w)
	q := ucq.MustParse("Q() :- R(x)\nQ() :- S(x)")
	want := (w1 + w2 + w*w1*w2) / (1 + w1 + w2 + w*w1*w2)

	exact, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-want) > 1e-12 {
		t.Fatalf("ProbExact = %v want %v", exact, want)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, meth := range []Method{MethodBruteForce, MethodOBDD, MethodLifted} {
		got, err := tr.ProbBoolean(q.UCQ, meth)
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: P = %v want %v", meth, got, want)
		}
	}
}

func TestExample1WeightRegimes(t *testing.T) {
	// w = 1 means independence; w = 0 exclusivity; w > 1 positive
	// correlation (Example 1 discussion).
	q := ucq.MustParse("Q() :- R(x), S(x)")
	for _, w := range []float64{0, 0.25, 1, 4} {
		m := example1(1, 1, w)
		want := w / (3 + w) // worlds 1,1,1,w; conjunction holds in the last
		exact, err := m.ProbExact(q.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-want) > 1e-12 {
			t.Fatalf("w=%v: exact = %v want %v", w, exact, want)
		}
		tr, err := m.Translate(TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.ProbBoolean(q.UCQ, MethodOBDD)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("w=%v: OBDD P = %v want %v", w, got, want)
		}
	}
}

func TestTranslationWeights(t *testing.T) {
	m := example1(2, 3, 4)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NVRelations) != 1 {
		t.Fatalf("NV relations = %v", tr.NVRelations)
	}
	nv := tr.DB.Relation(tr.NVRelations[0])
	if nv == nil || nv.Len() != 1 {
		t.Fatalf("NV relation missing")
	}
	// w0 = (1-4)/4 = -0.75, a negative weight; p0 = -0.75/0.25 = -3.
	if got := nv.Tuples[0].Weight; math.Abs(got+0.75) > 1e-12 {
		t.Errorf("w0 = %v want -0.75", got)
	}
	if got := nv.Tuples[0].Prob(); math.Abs(got+3) > 1e-12 {
		t.Errorf("p0 = %v want -3", got)
	}
}

func TestIndependentViewPruned(t *testing.T) {
	m := example1(1, 1, 1)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PrunedIndependent != 1 || tr.HasConstraints() {
		t.Errorf("pruned=%d constraints=%v", tr.PrunedIndependent, tr.HasConstraints())
	}
	// KeepIndependent path must agree.
	tr2, err := m.Translate(TranslateOptions{KeepIndependent: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- R(x), S(x)")
	p1, err := tr.ProbBoolean(q.UCQ, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tr2.ProbBoolean(q.UCQ, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2) > 1e-9 || math.Abs(p1-0.25) > 1e-9 {
		t.Errorf("p1=%v p2=%v want 0.25", p1, p2)
	}
}

func TestDenialViewOptimization(t *testing.T) {
	// V2-style: a person has at most one advisor.
	build := func() *MVDB {
		db := engine.NewDatabase()
		db.MustCreateRelation("Adv", false, "s", "a")
		db.MustInsert("Adv", 2, engine.Int(1), engine.Int(10))
		db.MustInsert("Adv", 2, engine.Int(1), engine.Int(11))
		db.MustInsert("Adv", 2, engine.Int(2), engine.Int(10))
		m := New(db)
		v, _ := ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", ConstWeight(0))
		if err := m.AddView(v); err != nil {
			panic(err)
		}
		return m
	}
	q := ucq.MustParse("Q() :- Adv(1,a)")

	m := build()
	want, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	trOpt, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trOpt.DenialViews) != 1 || len(trOpt.NVRelations) != 0 {
		t.Errorf("denial optimization not applied: %+v", trOpt.DenialViews)
	}
	trGen, err := build().Translate(TranslateOptions{NoDenialOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(trGen.NVRelations) != 1 {
		t.Errorf("general path should create NV relation")
	}
	for name, tr := range map[string]*Translation{"optimized": trOpt, "general": trGen} {
		got, err := tr.ProbBoolean(q.UCQ, MethodBruteForce)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: P = %v want %v", name, got, want)
		}
		gotO, err := tr.ProbBoolean(q.UCQ, MethodOBDD)
		if err != nil {
			t.Fatalf("%s obdd: %v", name, err)
		}
		if math.Abs(gotO-want) > 1e-9 {
			t.Errorf("%s obdd: P = %v want %v", name, gotO, want)
		}
	}
}

func TestViewValidation(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustInsert("R", 1, engine.Int(1))
	m := New(db)

	if err := m.AddView(&MarkoView{Name: "", Weight: ConstWeight(1)}); err == nil {
		t.Error("empty name accepted")
	}
	v, _ := ParseView("V(x) :- R(x)", ConstWeight(2))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err == nil {
		t.Error("duplicate view accepted")
	}
	v2, _ := ParseView("R(x) :- R(x)", ConstWeight(2))
	if err := m.AddView(v2); err == nil {
		t.Error("view named after relation accepted")
	}
	v3, _ := ParseView("V3(x) :- Nope(x)", ConstWeight(2))
	if err := m.AddView(v3); err == nil {
		t.Error("view over unknown relation accepted")
	}
	v4, _ := ParseView("V4(x) :- R(x,y)", ConstWeight(2))
	if err := m.AddView(v4); err == nil {
		t.Error("arity mismatch accepted")
	}
	v5, _ := ParseView("V5(x) :- R(x)", nil)
	if err := m.AddView(v5); err == nil {
		t.Error("nil weight accepted")
	}
}

func TestInvalidWeights(t *testing.T) {
	m := example1(1, 1, math.Inf(1))
	if _, err := m.Translate(TranslateOptions{}); err == nil {
		t.Error("weight +Inf accepted")
	}
	if _, err := m.GroundMLN(); err == nil {
		t.Error("GroundMLN accepted +Inf view weight")
	}
	m2 := example1(1, 1, -2)
	if _, err := m2.Translate(TranslateOptions{}); err == nil {
		t.Error("negative view weight accepted")
	}
}

func TestQueryOverNVRejected(t *testing.T) {
	m := example1(1, 1, 2)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- NV_V(x)")
	if _, err := tr.ProbBoolean(q.UCQ, MethodBruteForce); err == nil {
		t.Error("query over NV relation accepted")
	}
}

func TestQueryRows(t *testing.T) {
	// Two students, correlated advisors; non-Boolean query.
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 1, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 1, engine.Int(2), engine.Int(10))
	m := New(db)
	v, _ := ParseView("V(s) :- Adv(s,a)", ConstWeight(3))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	rows, err := tr.Query(q, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Cross-check each row against exact MLN inference.
	for _, r := range rows {
		b, _ := q.Bind(r.Head)
		want, err := m.ProbExact(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Prob-want) > 1e-9 {
			t.Errorf("row %v: P = %v want %v", r.Head, r.Prob, want)
		}
	}
}

// TestTheorem1Randomized is the central property test: on random small
// MVDBs, Theorem 1 through every evaluation method must agree with the
// Definition 4 semantics computed by exhaustive world enumeration.
func TestTheorem1Randomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	queries := []string{
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x)",
		"Q() :- S(x,y), T(y)",
		"Q() :- R(x)\nQ() :- T(y)",
		"Q() :- R(1)",
	}
	views := []struct {
		src    string
		weight func(*rand.Rand) float64
	}{
		{"V1(x) :- R(x), S(x,y)", func(r *rand.Rand) float64 { return r.Float64() * 3 }},
		{"V2(x,y) :- S(x,y), T(y)", func(r *rand.Rand) float64 { return r.Float64() * 2 }},
		{"V3(x) :- R(x), T(x)", func(r *rand.Rand) float64 {
			if r.Intn(3) == 0 {
				return 0 // denial
			}
			return 0.2 + r.Float64()*2
		}},
	}
	for trial := 0; trial < 30; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("T", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		n := 2 + rng.Int63n(2)
		for i := int64(1); i <= n; i++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("R", rng.Float64()*3, engine.Int(i))
			}
			if rng.Intn(2) == 0 {
				db.MustInsert("T", rng.Float64()*3, engine.Int(i))
			}
			if rng.Intn(2) == 0 {
				db.MustInsert("S", rng.Float64()*3, engine.Int(i), engine.Int(i+1))
			}
		}
		if db.NumVars() == 0 {
			continue
		}
		m := New(db)
		nviews := 1 + rng.Intn(len(views))
		for vi := 0; vi < nviews; vi++ {
			spec := views[vi]
			w := spec.weight(rng)
			v, err := ParseView(spec.src, ConstWeight(w))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.AddView(v); err != nil {
				t.Fatal(err)
			}
		}
		for _, qsrc := range queries {
			q := ucq.MustParse(qsrc)
			want, err := m.ProbExact(q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			for _, denialOpt := range []bool{false, true} {
				tr, err := m.Translate(TranslateOptions{NoDenialOptimization: denialOpt})
				if err != nil {
					t.Fatal(err)
				}
				for _, meth := range []Method{MethodBruteForce, MethodOBDD, MethodDPLL} {
					got, err := tr.ProbBoolean(q.UCQ, meth)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got-want) > 1e-8 {
						t.Fatalf("trial %d q=%q method=%v denialOpt=%v: got %v want %v",
							trial, qsrc, meth, denialOpt, got, want)
					}
					if got < -1e-9 || got > 1+1e-9 {
						t.Fatalf("P(Q)=%v outside [0,1]", got)
					}
				}
			}
		}
	}
}

func TestInconsistentViews(t *testing.T) {
	// A denial view that forbids every world containing the only tuple is
	// fine; but one forbidding everything (weight 0 on an always-true view)
	// makes P0(¬W)=0... construct: R(a) present with weight ∞ is not
	// allowed for probabilistic tables, so emulate: two exclusive tuples
	// both required. Simplest: V() over empty body is impossible; instead
	// check the error path via a view that always holds.
	db := engine.NewDatabase()
	db.MustCreateRelation("D", true, "x")
	db.MustInsertDet("D", engine.Int(1))
	db.MustCreateRelation("R", false, "x")
	db.MustInsert("R", 1, engine.Int(1))
	m := New(db)
	v, _ := ParseView("V(x) :- D(x)", ConstWeight(0)) // forbids all worlds
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- R(x)")
	if _, err := tr.ProbBoolean(q.UCQ, MethodBruteForce); err == nil {
		t.Error("inconsistent views: expected error")
	}
}

func TestMCSatOnMVDBConverges(t *testing.T) {
	m := example1(2, 3, 0.5)
	q := ucq.MustParse("Q() :- R(x), S(x)")
	want, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ProbMCSat(q.UCQ, mlnOptsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Errorf("MC-SAT = %v exact = %v", got, want)
	}
}

func mlnOptsForTest() mln.MCSatOptions {
	return mln.MCSatOptions{Burn: 500, Samples: 20000, Seed: 8}
}

func TestProbConditional(t *testing.T) {
	// P(S(1) | R(1)) on Example 1 with correlation w.
	w1, w2, w := 2.0, 3.0, 0.5
	m := example1(w1, w2, w)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qS := ucq.MustParse("Q() :- S(x)")
	qR := ucq.MustParse("Q() :- R(x)")
	got, err := tr.ProbConditional(qS.UCQ, qR.UCQ, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	// Worlds: {}:1, {R}:w1, {S}:w2, {RS}:w w1 w2.
	// P(S|R) = w w1 w2 / (w1 + w w1 w2).
	want := (w * w1 * w2) / (w1 + w*w1*w2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P(S|R) = %v want %v", got, want)
	}
	// Conditioning must be able to change the marginal (correlation).
	pS, _ := tr.ProbBoolean(qS.UCQ, MethodOBDD)
	if math.Abs(got-pS) < 1e-6 {
		t.Errorf("conditioning had no effect: %v vs %v", got, pS)
	}
	// Impossible evidence errors.
	qNone := ucq.MustParse("Q() :- R(99)")
	if _, err := tr.ProbConditional(qS.UCQ, qNone.UCQ, MethodBruteForce); err == nil {
		t.Error("conditioning on impossible event accepted")
	}
}

func TestProbConditionalAgainstExact(t *testing.T) {
	// Cross-check P(Q|E) against exact enumeration: P(Q ∧ E)/P(E) via MLN.
	m := example1(1.5, 0.8, 3)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qS := ucq.MustParse("Q() :- S(x)")
	qR := ucq.MustParse("Q() :- R(x)")
	pQE, err := m.ProbExact(ucq.Conjoin(qS.UCQ, qR.UCQ))
	if err != nil {
		t.Fatal(err)
	}
	pE, err := m.ProbExact(qR.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	want := pQE / pE
	got, err := tr.ProbConditional(qS.UCQ, qR.UCQ, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P(Q|E) = %v want %v", got, want)
	}
}

func TestTopK(t *testing.T) {
	answers := []Answer{
		{Head: []engine.Value{engine.Int(1)}, Prob: 0.2},
		{Head: []engine.Value{engine.Int(2)}, Prob: 0.9},
		{Head: []engine.Value{engine.Int(3)}, Prob: 0.5},
		{Head: []engine.Value{engine.Int(4)}, Prob: 0.9},
	}
	top := TopK(answers, 2)
	if len(top) != 2 || top[0].Prob != 0.9 || top[1].Prob != 0.9 {
		t.Errorf("TopK = %+v", top)
	}
	// Deterministic tie-break by head.
	if top[0].Head[0].Int != 2 || top[1].Head[0].Int != 4 {
		t.Errorf("tie break = %+v", top)
	}
	// Input unchanged.
	if answers[0].Prob != 0.2 {
		t.Error("TopK mutated input")
	}
	if got := TopK(answers, 10); len(got) != 4 {
		t.Errorf("TopK over-length = %d", len(got))
	}
}

func TestMVDBMAP(t *testing.T) {
	// Example 1 with strong positive correlation: the most likely world
	// contains both tuples.
	m := example1(2, 3, 8)
	world, err := m.MAPExact()
	if err != nil {
		t.Fatal(err)
	}
	// Weights: {}:1 {R}:2 {S}:3 {RS}:8*6=48 -> MAP = {R(1), S(1)}.
	if len(world.Tuples["R"]) != 1 || len(world.Tuples["S"]) != 1 {
		t.Errorf("MAP world = %+v", world.Tuples)
	}
	if math.Abs(world.Weight-48) > 1e-9 {
		t.Errorf("MAP weight = %v want 48", world.Weight)
	}
	// With a denial view the most likely world keeps only the heavier tuple.
	m2 := example1(2, 3, 0)
	world2, err := m2.MAPExact()
	if err != nil {
		t.Fatal(err)
	}
	if len(world2.Tuples["R"]) != 0 || len(world2.Tuples["S"]) != 1 {
		t.Errorf("MAP world with denial = %+v", world2.Tuples)
	}
	// Approximate search agrees on this tiny instance.
	walk, err := m2.MAPWalk(mln.MAPOptions{Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(walk.Weight-world2.Weight) > 1e-9 {
		t.Errorf("MAPWalk weight = %v exact = %v", walk.Weight, world2.Weight)
	}
}

func TestMethodDPLL(t *testing.T) {
	// DPLL must agree with every other exact method on the Theorem 1 tests.
	m := example1(2, 3, 4)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"Q() :- R(x), S(x)", "Q() :- R(x)\nQ() :- S(x)", "Q() :- R(1)"}
	for _, src := range queries {
		q := ucq.MustParse(src)
		want, err := m.ProbExact(q.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.ProbBoolean(q.UCQ, MethodDPLL)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%q: dpll = %v exact = %v", src, got, want)
		}
	}
	if MethodDPLL.String() != "dpll" {
		t.Errorf("String = %q", MethodDPLL.String())
	}
}

func TestMethodDPLLOnQueryRows(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 1.5, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 0.5, engine.Int(2), engine.Int(10))
	m := New(db)
	v, _ := ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", ConstWeight(0.2))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	dp, err := tr.Query(q, MethodDPLL)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := tr.Query(q, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dp {
		if math.Abs(dp[i].Prob-ob[i].Prob) > 1e-9 {
			t.Errorf("row %v: dpll %v obdd %v", dp[i].Head, dp[i].Prob, ob[i].Prob)
		}
	}
}

func TestViewWithDeterministicNegation(t *testing.T) {
	// Views may negate deterministic atoms (footnote-3 style filters);
	// negating a probabilistic atom is rejected (Section 2.5: MarkoViews
	// are UCQs without negation over the probabilistic tables).
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("Blocked", true, "x")
	db.MustInsert("R", 1, engine.Int(1))
	db.MustInsert("R", 1, engine.Int(2))
	db.MustInsertDet("Blocked", engine.Int(2))
	m := New(db)
	v, _ := ParseView("V(x) :- R(x), not Blocked(x)", ConstWeight(3))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tuples, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0].Head[0].Int != 1 {
		t.Fatalf("view tuples = %+v", tuples)
	}
	// Full pipeline stays exact.
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- R(1)")
	want, err := m.ProbExact(q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ProbBoolean(q.UCQ, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P = %v want %v", got, want)
	}
}

func TestViewWithProbabilisticNegationRejected(t *testing.T) {
	// The Section 2.5 "transitive closure" view 1/w :- R(x,y),R(y,z),
	// not R(x,z) requires negation on a probabilistic table; the paper
	// restricts MarkoViews to avoid it, and so do we.
	db := engine.NewDatabase()
	db.MustCreateRelation("E", false, "x", "y")
	db.MustInsert("E", 1, engine.Int(1), engine.Int(2))
	db.MustInsert("E", 1, engine.Int(2), engine.Int(3))
	m := New(db)
	v, _ := ParseView("V(x,y,z) :- E(x,y), E(y,z), not E(x,z)", ConstWeight(0.5))
	if err := m.AddView(v); err != nil {
		t.Fatal(err) // registration only checks structure
	}
	if _, err := m.Materialize(); err == nil {
		t.Error("negation on probabilistic table accepted at materialization")
	}
}

func TestMethodPlan(t *testing.T) {
	m := example1(2, 3, 0.5)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"Q() :- R(x), S(x)", "Q() :- R(x)\nQ() :- S(x)"}
	for _, src := range queries {
		q := ucq.MustParse(src)
		want, err := m.ProbExact(q.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.ProbBoolean(q.UCQ, MethodPlan)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%q: plan = %v exact = %v", src, got, want)
		}
	}
	if MethodPlan.String() != "safe-plan" {
		t.Errorf("String = %q", MethodPlan.String())
	}
}

func TestIsNVVar(t *testing.T) {
	m := example1(1, 1, 2)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Vars 1,2 are R(1),S(1); var 3 is the NV tuple.
	if tr.IsNVVar(1) || tr.IsNVVar(2) {
		t.Error("source tuple classified as NV")
	}
	if !tr.IsNVVar(3) {
		t.Error("NV tuple not classified")
	}
	if tr.IsNVVar(99) {
		t.Error("out-of-range var classified as NV")
	}
}

func TestDefineProbTable(t *testing.T) {
	// The Figure 1 Studentp definition, verbatim up to the weight closure:
	// Studentp(aid,year)[exp(1-.15(year-year'))] :- FirstPub(aid,year'),
	// year'-1 <= year <= year'+5 — with a Calendar table supplying years.
	db := engine.NewDatabase()
	db.MustCreateRelation("FirstPub", true, "aid", "year")
	db.MustCreateRelation("Calendar", true, "year")
	db.MustInsertDet("FirstPub", engine.Int(1), engine.Int(2000))
	db.MustInsertDet("FirstPub", engine.Int(2), engine.Int(2008))
	for y := int64(1995); y <= 2015; y++ {
		db.MustInsertDet("Calendar", engine.Int(y))
	}
	first := map[int64]int64{1: 2000, 2: 2008}
	q := ucq.MustParse("Student(aid,year) :- FirstPub(aid,yp), Calendar(year), year >= yp - 1, year <= yp + 5")
	n, err := DefineProbTable(db, q, func(head []engine.Value) float64 {
		dy := head[1].Int - first[head[0].Int]
		return math.Exp(1 - 0.15*float64(dy))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 14 { // 7 years per author (yp-1 .. yp+5)
		t.Fatalf("inserted %d tuples", n)
	}
	st := db.Relation("Student")
	if st == nil || st.Deterministic {
		t.Fatal("Student relation wrong")
	}
	// Spot-check a weight: author 1, year 2003 -> dy=3 -> e^{0.55}.
	i := st.Lookup([]engine.Value{engine.Int(1), engine.Int(2003)})
	if i < 0 {
		t.Fatal("tuple missing")
	}
	if got, want := st.Tuples[i].Weight, math.Exp(1-0.45); math.Abs(got-want) > 1e-12 {
		t.Errorf("weight = %v want %v", got, want)
	}
}

func TestDefineProbTableErrors(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("D", true, "a")
	db.MustCreateRelation("P", false, "a")
	db.MustInsertDet("D", engine.Int(1))
	db.MustInsert("P", 1, engine.Int(1))
	q := ucq.MustParse("T(a) :- D(a)")
	if _, err := DefineProbTable(db, q, nil); err == nil {
		t.Error("nil weight accepted")
	}
	qb := ucq.MustParse("T() :- D(a)")
	if _, err := DefineProbTable(db, qb, ConstWeight(1)); err == nil {
		t.Error("headless table accepted")
	}
	qp := ucq.MustParse("T(a) :- P(a)")
	if _, err := DefineProbTable(db, qp, ConstWeight(1)); err == nil {
		t.Error("prob-table source accepted")
	}
	qn := ucq.MustParse("T(a) :- Nope(a)")
	if _, err := DefineProbTable(db, qn, ConstWeight(1)); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := DefineProbTable(db, q, ConstWeight(-1)); err == nil {
		t.Error("negative weight accepted")
	}
	// Name clash with an existing relation.
	qc := ucq.MustParse("D(a) :- D(a)")
	if _, err := DefineProbTable(db, qc, ConstWeight(1)); err == nil {
		t.Error("relation-name clash accepted")
	}
}

func TestProbWAllMethods(t *testing.T) {
	m := example1(2, 3, 0.5)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.ProbW(MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	for _, meth := range []Method{MethodOBDD, MethodLifted, MethodDPLL, MethodPlan} {
		got, err := tr.ProbW(meth)
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: P0(W) = %v want %v", meth, got, want)
		}
	}
	// No constraints: ProbW is 0 for every method.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustInsert("R", 1, engine.Int(1))
	tr2, err := New(db).Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, meth := range []Method{MethodBruteForce, MethodOBDD, MethodLifted, MethodDPLL, MethodPlan} {
		if p, err := tr2.ProbW(meth); err != nil || p != 0 {
			t.Errorf("%v: P0(W) = %v, %v", meth, p, err)
		}
	}
	if _, err := tr.ProbW(Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestCompileStatsExposed(t *testing.T) {
	m := example1(2, 3, 0.5)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.CompileStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ConcatSteps+st.SynthSteps+st.LineageFalls == 0 {
		t.Errorf("stats all zero: %+v", st)
	}
	var agg obdd.CompileStats
	agg.Add(st)
	agg.Add(st)
	if agg.ConcatSteps != 2*st.ConcatSteps {
		t.Errorf("Add broken: %+v", agg)
	}
}

func TestSnapshotRestoreWithinCore(t *testing.T) {
	m := example1(2, 3, 4)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	back, err := RestoreTranslation(tr.DB.Clone(), snap)
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- R(x), S(x)")
	want, err := tr.ProbBoolean(q.UCQ, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.ProbBoolean(q.UCQ, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("restored: %v want %v", got, want)
	}
	// The restored translation still rejects NV queries.
	nv := ucq.MustParse("Q() :- NV_V(x)")
	if _, err := back.ProbBoolean(nv.UCQ, MethodBruteForce); err == nil {
		t.Error("NV query accepted after restore")
	}
	// AttachOBDD round trip through a fresh compile.
	mgr, fW, _, err := tr.CompileW(obdd.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back.AttachOBDD(mgr, fW)
	got, err = back.ProbBoolean(q.UCQ, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("attached OBDD: %v want %v", got, want)
	}
}

func TestQueryAllMethodsAgree(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 1.5, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.5, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 0.7, engine.Int(2), engine.Int(10))
	m := New(db)
	v, _ := ParseView("V(s) :- Adv(s,a)", ConstWeight(1.6))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	ref, err := tr.Query(q, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	// Q ∨ W is unsafe here (Adv self-join through the view), so only the
	// lineage-based methods apply; lifted/plan agreement is covered on
	// Example 1 where Q ∨ W is safe.
	for _, meth := range []Method{MethodOBDD, MethodDPLL} {
		got, err := tr.Query(q, meth)
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%v: %d rows vs %d", meth, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Prob-ref[i].Prob) > 1e-9 {
				t.Errorf("%v row %v: %v vs %v", meth, got[i].Head, got[i].Prob, ref[i].Prob)
			}
		}
	}
}

func TestProbGivenTuples(t *testing.T) {
	// Example 1 with w = 0.25: conditioning on R(1) present must raise the
	// information about S(1) according to the (negative) correlation.
	m := example1(2, 3, 0.25)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qS := ucq.MustParse("Q() :- S(x)")
	// Exact reference via the MLN: P(S | R) = P(S ∧ R)/P(R).
	net, err := m.GroundMLN()
	if err != nil {
		t.Fatal(err)
	}
	pSR, _ := net.MarginalExact(lineage.And{lineage.Var(1), lineage.Var(2)})
	pR, _ := net.MarginalExact(lineage.Var(1))
	want := pSR / pR
	for _, meth := range []Method{MethodBruteForce, MethodDPLL} {
		got, err := tr.ProbGivenTuples(qS.UCQ, Evidence{1: true}, meth)
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: P(S|R) = %v want %v", meth, got, want)
		}
	}
	// Negative evidence: P(S | ¬R) = P(S ∧ ¬R)/P(¬R).
	pSnR, _ := net.MarginalExact(lineage.And{lineage.Not{F: lineage.Var(1)}, lineage.Var(2)})
	pnR, _ := net.MarginalExact(lineage.Not{F: lineage.Var(1)})
	want = pSnR / pnR
	got, err := tr.ProbGivenTuples(qS.UCQ, Evidence{1: false}, MethodDPLL)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P(S|¬R) = %v want %v", got, want)
	}
	// Errors.
	if _, err := tr.ProbGivenTuples(qS.UCQ, Evidence{99: true}, MethodDPLL); err == nil {
		t.Error("out-of-range evidence accepted")
	}
	if _, err := tr.ProbGivenTuples(qS.UCQ, Evidence{3: true}, MethodDPLL); err == nil {
		t.Error("NV evidence accepted")
	}
	if _, err := tr.ProbGivenTuples(qS.UCQ, Evidence{1: true}, MethodOBDD); err == nil {
		t.Error("unsupported method accepted")
	}
}

func TestProbGivenTuplesWithDenial(t *testing.T) {
	// Exclusive advisors: conditioning on one present forces the other out.
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	v1 := db.MustInsert("Adv", 2, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2, engine.Int(1), engine.Int(11))
	m := New(db)
	v, _ := ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", ConstWeight(0))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- Adv(1,11)")
	got, err := tr.ProbGivenTuples(q.UCQ, Evidence{v1: true}, MethodDPLL)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("P(other advisor | this advisor) = %v want 0", got)
	}
	// Evidence contradicting the views errors... asserting both present:
	if _, err := tr.ProbGivenTuples(q.UCQ, Evidence{1: true, 2: true}, MethodDPLL); err == nil {
		t.Error("contradictory evidence accepted")
	}
}

func TestQueryMethodPlan(t *testing.T) {
	// The per-row plan applies when Q ∨ W admits a safe plan. With the view
	// over different relations than the query, W is an independent union
	// term and the parameterized plan exists; the answers must match brute
	// force.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 2, engine.Int(1))
	db.MustInsert("R", 1, engine.Int(2))
	db.MustInsert("S", 3, engine.Int(1))
	db.MustInsert("S", 1, engine.Int(2))
	m := New(db)
	v, _ := ParseView("V(x) :- S(x)", ConstWeight(0.5))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q(x) :- R(x)")
	got, err := tr.Query(q, MethodPlan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Query(q, MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
			t.Errorf("row %v: plan %v brute %v", got[i].Head, got[i].Prob, want[i].Prob)
		}
	}

	// When the view shares the query's relations, the merged Q ∨ W has no
	// safe plan; the method must report that instead of guessing.
	m2 := New(db.Clone())
	v2, _ := ParseView("V(x) :- R(x), S(x)", ConstWeight(0.5))
	if err := m2.AddView(v2); err != nil {
		t.Fatal(err)
	}
	tr2, err := m2.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Query(q, MethodPlan); err == nil {
		t.Error("overlapping view: expected no-plan error")
	}
}
