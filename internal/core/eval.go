package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mvdb/internal/budget"
	"mvdb/internal/engine"
	"mvdb/internal/lift"
	"mvdb/internal/lineage"
	"mvdb/internal/obdd"
	"mvdb/internal/plan"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
	"mvdb/internal/wmc"
)

// bounds bundles the optional cancellation context and resource budget of
// one evaluation. The zero value imposes nothing.
type bounds struct {
	ctx context.Context
	b   budget.Budget
}

func (bo bounds) bounded() bool { return bo.ctx != nil || !bo.b.IsZero() }

func (bo bounds) check() error {
	if !bo.bounded() {
		return nil
	}
	return budget.Check(bo.ctx, bo.b.Deadline)
}

// Method selects how P0 probabilities on the translated INDB are computed.
type Method int

// Evaluation methods.
const (
	// MethodBruteForce enumerates assignments of the combined lineage —
	// exact, exponential, only for small instances and tests.
	MethodBruteForce Method = iota
	// MethodOBDD compiles W once with ConOBDD (cached on the Translation)
	// and synthesizes each query's lineage against it.
	MethodOBDD
	// MethodLifted runs safe-plan lifted inference on W and Q ∨ W; it fails
	// with lift.ErrUnsafe when either query has no safe plan.
	MethodLifted
	// MethodDPLL runs the Davis-Putnam-style weighted model counter on the
	// combined lineage: exact, no compilation, valid for negative
	// probabilities — the MystiQ-style baseline of Section 6.
	MethodDPLL
	// MethodPlan extracts extensional safe plans for W and Q ∨ W and
	// executes them; fails with plan.ErrNoPlan when no safe plan exists.
	MethodPlan
)

func (m Method) String() string {
	switch m {
	case MethodBruteForce:
		return "brute-force"
	case MethodOBDD:
		return "obdd"
	case MethodLifted:
		return "lifted"
	case MethodDPLL:
		return "dpll"
	case MethodPlan:
		return "safe-plan"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Answer is one output tuple with its marginal probability.
type Answer struct {
	Head []engine.Value
	Prob float64
}

type obddState struct {
	mu    sync.Mutex // serializes query-OBDD synthesis on the shared manager
	m     *obdd.Manager
	fW    obdd.NodeID
	pW    float64
	stats obdd.CompileStats

	// roots memoizes synthesized query-OBDD roots on the shared manager,
	// keyed by the canonical lineage hash: two answers (of the same or of
	// different queries) with the same lineage share one synthesis. Guarded
	// by mu like every other write to the shared manager; roots stay valid
	// forever because the node store is append-only and the Translation is
	// immutable after compilation. Bounded by maxRootMemo.
	roots map[qcache.Key]obdd.NodeID
}

// maxRootMemo caps the shared-manager root memo; past it, synthesis still
// runs (hash-consing keeps node growth bounded) but no new roots are
// remembered.
const maxRootMemo = 1 << 16

// ensureOBDD compiles W once, with the separator-first permutation when W
// has a separator, and caches the manager. The Translation must not be
// mutated afterwards.
func (t *Translation) ensureOBDD() (*obddState, error) {
	return t.ensureOBDDBounded(bounds{})
}

// ensureOBDDBounded is ensureOBDD under the given bounds: the compile of W
// honors cancellation and MaxNodes, and a failed compile caches nothing, so
// a later call with a looser budget can still succeed.
func (t *Translation) ensureOBDDBounded(bo bounds) (*obddState, error) {
	if t.obdd != nil {
		return t.obdd, nil
	}
	m, fW, stats, err := t.CompileW(obdd.CompileOptions{Parallelism: t.Parallelism, Ctx: bo.ctx, Budget: bo.b})
	if err != nil {
		return nil, err
	}
	st := &obddState{m: m, fW: fW, stats: stats, roots: map[qcache.Key]obdd.NodeID{}}
	st.pW = m.Prob(fW, t.DB.Probs())
	t.obdd = st
	return st, nil
}

// CompileStats exposes how W was compiled (after ensureOBDD has run).
func (t *Translation) CompileStats() (obdd.CompileStats, error) {
	st, err := t.ensureOBDD()
	if err != nil {
		return obdd.CompileStats{}, err
	}
	return st.stats, nil
}

// WLineage returns the lineage of W on the translated database — the
// quantity plotted in Figure 4.
func (t *Translation) WLineage() (lineage.DNF, error) {
	return ucq.EvalBoolean(t.DB, t.W)
}

// ProbW computes P0(W).
func (t *Translation) ProbW(method Method) (float64, error) {
	if !t.HasConstraints() {
		return 0, nil
	}
	switch method {
	case MethodBruteForce:
		lin, err := t.WLineage()
		if err != nil {
			return 0, err
		}
		return lineage.BruteForceProb(lin, t.DB.Probs())
	case MethodOBDD:
		st, err := t.ensureOBDD()
		if err != nil {
			return 0, err
		}
		return st.pW, nil
	case MethodLifted:
		return lift.Prob(t.DB, t.W)
	case MethodDPLL:
		lin, err := t.WLineage()
		if err != nil {
			return 0, err
		}
		return wmc.Prob(lin, t.DB.Probs()), nil
	case MethodPlan:
		p, err := plan.Extract(t.DB, t.W)
		if err != nil {
			return 0, err
		}
		return p.Prob()
	}
	return 0, fmt.Errorf("core: unknown method %v", method)
}

// ProbBoolean computes P(Q) for a Boolean query over the original schema via
// Theorem 1.
func (t *Translation) ProbBoolean(q ucq.UCQ, method Method) (float64, error) {
	return t.probBoolean(q, method, bounds{})
}

// ProbBooleanContext is ProbBoolean under a cancellation context and resource
// budget: compiling W (MethodOBDD) and synthesizing the query OBDD observe
// ctx, the deadline, and MaxNodes, failing with errors wrapping
// budget.ErrCanceled or budget.ErrBudgetExceeded. For MethodOBDD, MaxNodes
// bounds the total size of the shared manager (W plus synthesized queries).
// The other methods check the bounds at coarser granularity.
func (t *Translation) ProbBooleanContext(ctx context.Context, q ucq.UCQ, method Method, b budget.Budget) (float64, error) {
	return t.probBoolean(q, method, bounds{ctx: ctx, b: b})
}

func (t *Translation) probBoolean(q ucq.UCQ, method Method, bo bounds) (float64, error) {
	if err := t.checkQuery(q); err != nil {
		return 0, err
	}
	if err := bo.check(); err != nil {
		return 0, err
	}
	if method != MethodLifted && method != MethodPlan {
		lin, err := ucq.EvalBoolean(t.DB, q)
		if err != nil {
			return 0, err
		}
		return t.probFromLineage(lin, method, bo)
	}
	// Lifted / safe-plan: evaluate P0(Q ∨ W) and P0(W) as UCQs.
	pW, err := t.ProbW(method)
	if err != nil {
		return 0, err
	}
	qw := ucq.UCQ{Disjuncts: append(append([]ucq.CQ{}, q.Disjuncts...), t.W.Disjuncts...)}
	var pQW float64
	switch method {
	case MethodLifted:
		pQW, err = lift.Prob(t.DB, qw)
	case MethodPlan:
		var p *plan.Plan
		if p, err = plan.Extract(t.DB, qw); err == nil {
			pQW, err = p.Prob()
		}
	default:
		return 0, fmt.Errorf("core: unknown method %v", method)
	}
	if err != nil {
		return 0, err
	}
	return theorem1(pQW, pW)
}

// probFromLineage applies Theorem 1 given the query's lineage on the
// translated database.
func (t *Translation) probFromLineage(linQ lineage.DNF, method Method, bo bounds) (float64, error) {
	switch method {
	case MethodBruteForce:
		if !t.HasConstraints() {
			return lineage.BruteForceProb(linQ, t.DB.Probs())
		}
		linW, err := t.WLineage()
		if err != nil {
			return 0, err
		}
		probs := t.DB.Probs()
		pW, err := lineage.BruteForceProb(linW, probs)
		if err != nil {
			return 0, err
		}
		pQW, err := lineage.BruteForceProb(lineage.Or(linQ, linW), probs)
		if err != nil {
			return 0, err
		}
		return theorem1(pQW, pW)
	case MethodOBDD:
		st, err := t.ensureOBDDBounded(bo)
		if err != nil {
			return 0, err
		}
		// Query OBDDs are synthesized on the shared manager (reusing its
		// hash-consing across answers), so concurrent Query workers serialize
		// here; the other methods run lock-free. Arming the manager is a
		// write, so it happens under the same lock; the bounds apply to this
		// synthesis only and the manager is disarmed before unlocking.
		st.mu.Lock()
		defer st.mu.Unlock()
		if bo.bounded() {
			st.m.SetBudget(bo.ctx, bo.b)
			defer st.m.SetBudget(nil, budget.Budget{})
		}
		// Root memo: answers that share a canonical lineage (within one query
		// or across queries) reuse the synthesized root instead of replaying
		// BuildDNF. Hash-consing means a replay would return the identical
		// NodeID anyway; the memo saves the walk, not just the nodes.
		hi, lo := linQ.Hash()
		rkey := qcache.Key{Hi: hi, Lo: lo}
		var pQW float64
		if err := budget.Catch(func() {
			fQ, memod := st.roots[rkey]
			if !memod {
				fQ = obdd.BuildDNF(st.m, linQ)
				if len(st.roots) < maxRootMemo {
					st.roots[rkey] = fQ
				}
			}
			probs := t.DB.Probs()
			pQW = st.m.Prob(st.m.Or(fQ, st.fW), probs)
		}); err != nil {
			return 0, err
		}
		return theorem1(pQW, st.pW)
	case MethodDPLL:
		if !t.HasConstraints() {
			return wmc.Prob(linQ, t.DB.Probs()), nil
		}
		linW, err := t.WLineage()
		if err != nil {
			return 0, err
		}
		probs := t.DB.Probs()
		s := wmc.NewSolver(probs)
		pW := s.Prob(linW)
		pQW := s.Prob(lineage.Or(linQ, linW))
		return theorem1(pQW, pW)
	}
	return 0, fmt.Errorf("core: method %v cannot evaluate from lineage", method)
}

// theorem1 is Equation 5: P(Q) = (P0(Q∨W) - P0(W)) / (1 - P0(W)).
//
// The subtraction is numerically safe only while P0(¬W) = 1 - P0(W) is well
// above float64 epsilon; past that the global methods lose all precision
// (P0(W) and P0(Q∨W) agree to 16 digits), so they refuse rather than return
// garbage. The MV-index evaluates the equivalent ratio P0(Q∧¬W)/P0(¬W)
// block-locally and has no such limit.
func theorem1(pQW, pW float64) (float64, error) {
	denom := 1 - pW
	if math.Abs(denom) < 1e-300 {
		return 0, fmt.Errorf("core: P0(¬W) = 0 — the MarkoViews are inconsistent (no possible world satisfies them)")
	}
	if math.Abs(denom) < 1e-9 {
		return 0, fmt.Errorf("core: P0(¬W) = %.3g is below the numerical floor of the global methods; use the MV-index (mvindex.Build), which evaluates block-locally", denom)
	}
	return (pQW - pW) / denom, nil
}

// Query evaluates a named query over the MVDB and returns each answer tuple
// with its marginal probability, sorted by head tuple. Tuples whose
// probability is numerically zero are still reported (they are possible
// answers in some world).
//
// The per-answer probabilities are computed by up to Parallelism workers
// (see the field doc); the answer order is always the same as sequential
// evaluation. Before the workers start, W's OBDD (MethodOBDD) and the lazy
// relation indexes are forced once, so the workers only read shared state —
// except MethodOBDD's query synthesis, which serializes on the cached
// manager.
func (t *Translation) Query(q *ucq.Query, method Method) ([]Answer, error) {
	if t.qc != nil {
		return t.cachedQuery(q, method, bounds{})
	}
	return t.queryBounded(q, method, bounds{})
}

// QueryContext is Query under a cancellation context and resource budget.
// Cancellation and the deadline are observed between answers and inside
// MethodOBDD's compile and synthesis steps; MaxNodes bounds the shared
// manager's total size (see ProbBooleanContext). A violation aborts the
// whole query with an error wrapping budget.ErrCanceled or
// budget.ErrBudgetExceeded — no partial answer set is returned.
func (t *Translation) QueryContext(ctx context.Context, q *ucq.Query, method Method, b budget.Budget) ([]Answer, error) {
	if t.qc != nil {
		return t.cachedQuery(q, method, bounds{ctx: ctx, b: b})
	}
	return t.queryBounded(q, method, bounds{ctx: ctx, b: b})
}

func (t *Translation) queryBounded(q *ucq.Query, method Method, bo bounds) ([]Answer, error) {
	if err := t.checkQuery(q.UCQ); err != nil {
		return nil, err
	}
	if err := bo.check(); err != nil {
		return nil, err
	}
	rows, err := ucq.Eval(t.DB, q)
	if err != nil {
		return nil, err
	}
	// MethodPlan extracts one parameterized plan for Q ∨ W and evaluates it
	// per answer — the safe-plan execution model.
	var qw *plan.Template
	var pW float64
	if method == MethodPlan {
		combined := ucq.UCQ{Disjuncts: append(append([]ucq.CQ{}, q.Disjuncts...), padDisjuncts(t.W, q.Head)...)}
		qw, err = plan.ExtractTemplate(t.DB, combined, q.Head)
		if err != nil {
			return nil, err
		}
		if pW, err = t.ProbW(method); err != nil {
			return nil, err
		}
	}
	answer := func(r ucq.AnswerRow) (float64, error) {
		switch method {
		case MethodLifted:
			b, err := q.Bind(r.Head)
			if err != nil {
				return 0, err
			}
			return t.probBoolean(b, method, bo)
		case MethodPlan:
			pQW, err := qw.ProbWith(r.Head)
			if err != nil {
				return 0, err
			}
			return theorem1(pQW, pW)
		default:
			return t.probFromLineage(r.Lineage, method, bo)
		}
	}
	out := make([]Answer, len(rows))
	workers := t.workers()
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers <= 1 {
		for i, r := range rows {
			if err := bo.check(); err != nil {
				return nil, err
			}
			p, err := answer(r)
			if err != nil {
				return nil, err
			}
			out[i] = Answer{Head: r.Head, Prob: p}
		}
		return out, nil
	}
	if method == MethodOBDD {
		// Compile W up front so the workers never race on first-use caching.
		if _, err := t.ensureOBDDBounded(bo); err != nil {
			return nil, err
		}
	}
	var (
		next int64
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(rows) {
					return
				}
				if err := bo.check(); err != nil {
					errs[w] = err
					return
				}
				p, err := answer(rows[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = Answer{Head: rows[i].Head, Prob: p}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// workers resolves the Parallelism knob to a concrete worker count.
func (t *Translation) workers() int {
	switch {
	case t.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case t.Parallelism < 1:
		return 1
	}
	return t.Parallelism
}

// padDisjuncts renames any of W's variables that collide with the query's
// head names, so substituting the head parameters cannot capture them.
func padDisjuncts(w ucq.UCQ, head []string) []ucq.CQ {
	// Rename W's variables so they cannot collide with head names.
	out := make([]ucq.CQ, 0, len(w.Disjuncts))
	for i, d := range w.Disjuncts {
		binding := map[string]bool{}
		for _, h := range head {
			binding[h] = true
		}
		needs := false
		for _, v := range d.Vars() {
			if binding[v] {
				needs = true
				break
			}
		}
		if !needs {
			out = append(out, d)
			continue
		}
		prefix := fmt.Sprintf("w%d·", i)
		rename := func(t ucq.Term) ucq.Term {
			if t.IsConst || !binding[t.Var] {
				return t
			}
			return ucq.V(prefix + t.Var)
		}
		nd := ucq.CQ{Atoms: make([]ucq.Atom, len(d.Atoms)), Preds: make([]ucq.Pred, len(d.Preds))}
		for j, a := range d.Atoms {
			na := ucq.Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]ucq.Term, len(a.Args))}
			for k, tm := range a.Args {
				na.Args[k] = rename(tm)
			}
			nd.Atoms[j] = na
		}
		for j, p := range d.Preds {
			nd.Preds[j] = ucq.Pred{Op: p.Op, L: rename(p.L), R: rename(p.R), Offset: p.Offset}
		}
		out = append(out, nd)
	}
	return out
}

// OBDD returns the manager and the OBDD root of W, compiling and caching it
// on first use. The Translation must not be mutated afterwards; callers may
// extend the manager with query OBDDs sharing the same order.
func (t *Translation) OBDD() (*obdd.Manager, obdd.NodeID, error) {
	st, err := t.ensureOBDD()
	if err != nil {
		return nil, obdd.False, err
	}
	return st.m, st.fW, nil
}

// WPerm returns the attribute permutation used to compile W: separator-first
// when W has a (determinism-aware) separator, identity otherwise.
func (t *Translation) WPerm() obdd.Perm {
	pi := obdd.IdentityPerm(t.DB)
	skip := ucq.SkipDeterministic(func(rel string) bool {
		r := t.DB.Relation(rel)
		return r != nil && r.Deterministic
	}, ucq.SkipGround)
	if sep, ok := t.W.FindSeparatorSkip(skip); ok {
		pi = obdd.SeparatorFirstPerm(t.DB, sep)
	}
	return pi
}

// CompileW compiles W into a fresh manager with the given options — used by
// the Figure 8 construction-time comparison; the cached OBDD path
// (ensureOBDD) is unaffected.
func (t *Translation) CompileW(opts obdd.CompileOptions) (*obdd.Manager, obdd.NodeID, obdd.CompileStats, error) {
	return obdd.Compile(t.DB, t.W, t.WPerm(), opts)
}

// ProbConditional computes P(Q | E) = P(Q ∧ E) / P(E) on the MVDB, both
// probabilities through Theorem 1. It errors when P(E) = 0.
func (t *Translation) ProbConditional(q, e ucq.UCQ, method Method) (float64, error) {
	if err := t.checkQuery(q); err != nil {
		return 0, err
	}
	if err := t.checkQuery(e); err != nil {
		return 0, err
	}
	pE, err := t.ProbBoolean(e, method)
	if err != nil {
		return 0, err
	}
	if pE == 0 {
		return 0, fmt.Errorf("core: conditioning on an impossible event")
	}
	pQE, err := t.ProbBoolean(ucq.Conjoin(q, e), method)
	if err != nil {
		return 0, err
	}
	return pQE / pE, nil
}

// TopK returns the k highest-probability answers (ties broken by head
// tuple), without mutating the input.
func TopK(answers []Answer, k int) []Answer {
	out := append([]Answer(nil), answers...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return engine.TupleKey(out[i].Head) < engine.TupleKey(out[j].Head)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// AttachOBDD installs an externally restored OBDD of W (e.g. from a saved
// MV-index) so evaluation does not recompile it. The manager must use the
// order of WPerm over the same database.
func (t *Translation) AttachOBDD(m *obdd.Manager, fW obdd.NodeID) {
	st := &obddState{m: m, fW: fW, roots: map[qcache.Key]obdd.NodeID{}}
	st.pW = m.Prob(fW, t.DB.Probs())
	t.obdd = st
}

// Evidence fixes the truth value of specific probabilistic tuples (by
// Boolean variable id): true asserts presence, false absence.
type Evidence map[int]bool

// ProbGivenTuples computes P(Q | E) on the MVDB, where E asserts the
// presence or absence of probabilistic tuples. Conditioning a
// tuple-independent product measure on tuple values is exactly overriding
// their probabilities with 1 or 0, so the Theorem 1 ratio is evaluated
// under the conditioned probability vector:
//
//	P(Q | E) = P0'(Q ∧ ¬W) / P0'(¬W)
//
// (the conditioning of [17], Koch & Olteanu, specialised to tuple
// evidence). Evaluation uses the DPLL weighted model counter.
func (t *Translation) ProbGivenTuples(q ucq.UCQ, ev Evidence, method Method) (float64, error) {
	if err := t.checkQuery(q); err != nil {
		return 0, err
	}
	probs := t.DB.Probs()
	for v, present := range ev {
		if v < 1 || v >= len(probs) {
			return 0, fmt.Errorf("core: evidence variable %d out of range", v)
		}
		if t.IsNVVar(v) {
			return 0, fmt.Errorf("core: evidence on internal NV variable %d", v)
		}
		if present {
			probs[v] = 1
		} else {
			probs[v] = 0
		}
	}
	if method != MethodDPLL && method != MethodBruteForce {
		return 0, fmt.Errorf("core: ProbGivenTuples supports MethodDPLL and MethodBruteForce, not %v", method)
	}
	linQ, err := ucq.EvalBoolean(t.DB, q)
	if err != nil {
		return 0, err
	}
	var pNotW, pQNotW float64
	if t.HasConstraints() {
		linW, err := t.WLineage()
		if err != nil {
			return 0, err
		}
		notW := lineage.Not{F: lineage.FromDNF(linW)}
		qAndNotW := lineage.And{lineage.FromDNF(linQ), notW}
		if method == MethodBruteForce {
			if pNotW, err = lineage.BruteForceProbFormula(notW, probs); err != nil {
				return 0, err
			}
			if pQNotW, err = lineage.BruteForceProbFormula(qAndNotW, probs); err != nil {
				return 0, err
			}
		} else {
			s := wmc.NewSolver(probs)
			pW := s.Prob(linW)
			pQW := s.Prob(lineage.Or(linQ, linW))
			pNotW = 1 - pW
			pQNotW = pQW - pW
		}
	} else {
		pNotW = 1
		if method == MethodBruteForce {
			var err error
			if pQNotW, err = lineage.BruteForceProb(linQ, probs); err != nil {
				return 0, err
			}
		} else {
			pQNotW = wmc.Prob(linQ, probs)
		}
	}
	if math.Abs(pNotW) < 1e-12 {
		return 0, fmt.Errorf("core: evidence is inconsistent with the MarkoViews (P0'(¬W) = 0)")
	}
	return pQNotW / pNotW, nil
}
