package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// budgetMVDB builds a chain-structured MVDB large enough for node budgets to
// bite: n students with 1-2 advisor candidates and one weighted view.
func budgetMVDB(n int64, seed int64) *MVDB {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	for s := int64(1); s <= n; s++ {
		db.MustInsert("Adv", 0.5+rng.Float64(), engine.Int(s), engine.Int(100+s))
		if rng.Intn(2) == 0 {
			db.MustInsert("Adv", 0.5+rng.Float64(), engine.Int(s), engine.Int(200+s))
		}
	}
	m := New(db)
	v, err := ParseView("V(s) :- Adv(s,a)", ConstWeight(2.5))
	if err != nil {
		panic(err)
	}
	if err := m.AddView(v); err != nil {
		panic(err)
	}
	return m
}

func TestQueryContextDeadline(t *testing.T) {
	m := budgetMVDB(10, 41)
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	past := budget.Budget{Deadline: time.Now().Add(-time.Second)}
	for _, meth := range []Method{MethodOBDD, MethodDPLL} {
		for _, par := range []int{1, 4} {
			tr, err := m.Translate(TranslateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			tr.Parallelism = par
			_, err = tr.QueryContext(context.Background(), q, meth, past)
			if !errors.Is(err, budget.ErrCanceled) {
				t.Errorf("%v par=%d: err = %v, want ErrCanceled", meth, par, err)
			}
		}
	}
}

func TestQueryContextCancel(t *testing.T) {
	m := budgetMVDB(10, 43)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := ucq.MustParse("Q(s) :- Adv(s,a)")
	if _, err := tr.QueryContext(ctx, q, MethodOBDD, budget.Budget{}); !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("canceled ctx: err = %v, want ErrCanceled", err)
	}
}

// TestQueryContextNodeBudget: a starved MaxNodes aborts compiling W with
// ErrBudgetExceeded, caches nothing, and a later generous call on the same
// Translation succeeds with the same answers as the unbounded path.
func TestQueryContextNodeBudget(t *testing.T) {
	m := budgetMVDB(14, 47)
	q := ucq.MustParse("Q(s) :- Adv(s,a)")

	ref, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(q, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.QueryContext(context.Background(), q, MethodOBDD, budget.Budget{MaxNodes: 4})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("MaxNodes=4: err = %v, want ErrBudgetExceeded", err)
	}
	got, err := tr.QueryContext(context.Background(), q, MethodOBDD, budget.Budget{MaxNodes: 1 << 22})
	if err != nil {
		t.Fatalf("generous budget after starved attempt: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("answers: %d want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("answer %d: P = %v want %v", i, got[i].Prob, want[i].Prob)
		}
	}
	// The shared manager must be disarmed between queries.
	if st := tr.obdd; st == nil || st.m.Budgeted() {
		t.Error("shared manager left armed after a budgeted query")
	}
}

func TestProbBooleanContextDeadline(t *testing.T) {
	m := budgetMVDB(8, 53)
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ucq.MustParse("Q() :- Adv(s,a)")
	past := budget.Budget{Deadline: time.Now().Add(-time.Second)}
	if _, err := tr.ProbBooleanContext(context.Background(), q.UCQ, MethodOBDD, past); !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("expired deadline: err = %v, want ErrCanceled", err)
	}
	// Unbounded evaluation on the same Translation still works.
	if _, err := tr.ProbBoolean(q.UCQ, MethodOBDD); err != nil {
		t.Errorf("unbounded after bounded failure: %v", err)
	}
}
