package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBenchRegressionGate is the ci.sh bench gate. It needs the committed
// baselines and a quiet machine, so it only runs when MVDB_BENCH_GATE=1 is
// set (ci.sh sets it); under plain `go test` it is skipped.
func TestBenchRegressionGate(t *testing.T) {
	if os.Getenv("MVDB_BENCH_GATE") == "" {
		t.Skip("set MVDB_BENCH_GATE=1 to run the bench regression gate (ci.sh does)")
	}
	summary, err := CheckCompileQueryRegression(filepath.Join("..", "..", "BENCH_parallel.json"))
	if summary != "" {
		t.Log(summary)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestGateBudget pins the gate's pass/fail rule without any timing: a run
// fails only when it is beyond the ratio AND beyond the absolute slack.
func TestGateBudget(t *testing.T) {
	cases := []struct {
		fresh, base time.Duration
		want        bool
	}{
		{50 * time.Millisecond, 50 * time.Millisecond, false},   // equal
		{60 * time.Millisecond, 50 * time.Millisecond, false},   // +20% < ratio
		{70 * time.Millisecond, 50 * time.Millisecond, false},   // +40% but within slack
		{700 * time.Millisecond, 500 * time.Millisecond, true},  // +40%, past slack
		{620 * time.Millisecond, 500 * time.Millisecond, false}, // +24% < ratio
		{2 * time.Millisecond, 500 * time.Microsecond, false},   // 4x but micro-scale jitter
		{100 * time.Millisecond, 500 * time.Microsecond, true},  // genuinely broken fast path
		{626 * time.Millisecond, 500 * time.Millisecond, true},  // just past ratio and slack
	}
	for _, c := range cases {
		if got := over(c.fresh, c.base); got != c.want {
			t.Errorf("over(%v, %v) = %v, want %v", c.fresh, c.base, got, c.want)
		}
	}
}

// TestGateBadBaseline: missing or malformed baselines are loud errors, not
// silent passes.
func TestGateBadBaseline(t *testing.T) {
	if _, err := CheckCompileQueryRegression(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing baseline accepted")
	}
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckCompileQueryRegression(p); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("malformed baseline: err = %v", err)
	}
	p2 := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(p2, []byte(`{"rows": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckCompileQueryRegression(p2); err == nil || !strings.Contains(err.Error(), "no rows") {
		t.Errorf("empty baseline: err = %v", err)
	}
}
