package bench

import (
	"fmt"
	"math"
	"testing"

	"mvdb/internal/obdd"
)

// TestDBLPViewEquivalence pins the kernel rewrite to the compiler's spec:
// for each MarkoView and at paper-scale domains, the parallel compile must
// produce an OBDD NodeID-for-NodeID identical to the sequential reference,
// with bitwise-equal probability. Combined with the quick_test.go property
// tests (dense memos vs map references) this is the old-vs-new equivalence
// evidence for the table/cache/memo replacement: the sequential path is the
// unchanged recursion order, so any divergence introduced by the new unique
// table, apply cache, or dense annotations would break structural identity.
func TestDBLPViewEquivalence(t *testing.T) {
	domains := []int{1000, 4000, 8000}
	if testing.Short() {
		domains = []int{1000}
	}
	for _, views := range []string{"1", "2", "3"} {
		for _, n := range domains {
			t.Run(fmt.Sprintf("V%s/domain=%d", views, n), func(t *testing.T) {
				_, _, tr, err := pipeline(n, 1, views)
				if err != nil {
					t.Fatal(err)
				}
				ms, fs, ss, err := tr.CompileW(obdd.CompileOptions{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				mp, fp, sp, err := tr.CompileW(obdd.CompileOptions{Parallelism: 4})
				if err != nil {
					t.Fatal(err)
				}
				if !obdd.StructEqual(ms, fs, mp, fp) {
					t.Fatalf("parallel OBDD differs structurally from sequential")
				}
				if ss != sp {
					t.Errorf("stats differ: sequential %+v, parallel %+v", ss, sp)
				}
				// Bit-pattern comparison: V1's negative view weights drive the
				// probability to NaN at large domains on both legs, and NaN
				// never compares equal to itself.
				probs := tr.DB.Probs()
				a, b := ms.Prob(fs, probs), mp.Prob(fp, probs)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("prob: sequential %v, parallel %v (must be bitwise equal)", a, b)
				}
			})
		}
	}
}
