package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
)

// The regression gate re-measures the sequential compile and query legs of
// the parallel experiment at the committed baseline's largest domain and
// fails when either is more than gateMaxSlowdown times the committed number.
// gateSlack is an absolute floor on top of the ratio: the query leg runs in
// well under a millisecond, where 25% is pure scheduler jitter, so a run only
// fails when it is both 25% and gateSlack slower than the baseline.
const (
	gateMaxSlowdown = 1.25
	gateSlack       = 25 * time.Millisecond
	gateRepeats     = 5
)

// CheckCompileQueryRegression is the ci.sh bench gate: it loads the committed
// BENCH_parallel.json, re-runs the sequential compile and the student-query
// batch at the baseline's largest domain with the identical workload, and
// returns an error if either leg regressed past the budget. The summary is
// returned in both cases so CI logs always show the measured numbers.
func CheckCompileQueryRegression(baselinePath string) (string, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return "", fmt.Errorf("bench gate: %w", err)
	}
	var rep parallelReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return "", fmt.Errorf("bench gate: parsing %s: %w", baselinePath, err)
	}
	if len(rep.Rows) == 0 {
		return "", fmt.Errorf("bench gate: %s holds no rows", baselinePath)
	}
	base := rep.Rows[0]
	for _, r := range rep.Rows[1:] {
		if r.Domain > base.Domain {
			base = r
		}
	}

	d, _, tr, err := pipeline(base.Domain, Defaults().Seed, "2")
	if err != nil {
		return "", err
	}
	// Untimed warmup, mirroring ParallelCompileQuery: first-compile one-off
	// costs (heap growth, pool fills) are not what the gate polices.
	if _, _, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: 1}); err != nil {
		return "", err
	}
	var compile time.Duration
	for rep := 0; rep < gateRepeats; rep++ {
		runtime.GC()
		t0 := time.Now()
		if _, _, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: 1}); err != nil {
			return "", err
		}
		if el := time.Since(t0); rep == 0 || el < compile {
			compile = el
		}
	}

	ix, err := buildIndex(tr)
	if err != nil {
		return "", err
	}
	students := d.Students
	if n := Defaults().Queries; len(students) > n {
		students = students[:n]
	}
	var queries time.Duration
	for rep := 0; rep < gateRepeats; rep++ {
		runtime.GC()
		t0 := time.Now()
		for _, s := range students {
			if _, err := ix.Query(dblp.QueryAdvisorOfStudent(s), mvindex.IntersectOptions{CacheConscious: true, Parallelism: 1}); err != nil {
				return "", err
			}
		}
		if el := time.Since(t0); rep == 0 || el < queries {
			queries = el
		}
	}

	baseCompile := time.Duration(base.SeqCompileSec * float64(time.Second))
	baseQueries := time.Duration(base.SeqQueriesSec * float64(time.Second))
	summary := fmt.Sprintf(
		"bench gate @ domain %d: compile %v (baseline %v), queries %v (baseline %v), budget %.0f%%+%v",
		base.Domain, compile.Round(time.Microsecond), baseCompile.Round(time.Microsecond),
		queries.Round(time.Microsecond), baseQueries.Round(time.Microsecond),
		100*(gateMaxSlowdown-1), gateSlack)
	if over(compile, baseCompile) {
		return summary, fmt.Errorf("bench gate: sequential compile regressed: %v vs baseline %v", compile, baseCompile)
	}
	if over(queries, baseQueries) {
		return summary, fmt.Errorf("bench gate: query batch regressed: %v vs baseline %v", queries, baseQueries)
	}
	return summary, nil
}

// over reports whether a fresh measurement blows the regression budget:
// beyond the ratio AND beyond the absolute slack.
func over(fresh, base time.Duration) bool {
	limit := time.Duration(float64(base) * gateMaxSlowdown)
	return fresh > limit && fresh > base+gateSlack
}
