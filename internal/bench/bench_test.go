package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"mvdb/internal/ucq"
)

func small() Options { return Small() }

func TestFig1Inventory(t *testing.T) {
	tab, err := Fig1Inventory(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"Author", "Student", "Advisor", "V1", "V2", "V3"} {
		if len(tab.Series[rel]) == 0 || tab.Series[rel][0] == 0 {
			t.Errorf("inventory: %s empty (%v)", rel, tab.Series[rel])
		}
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "markoview") {
		t.Error("printed table lacks view rows")
	}
}

func TestFig4Linear(t *testing.T) {
	tab, err := Fig4LineageSize(small())
	if err != nil {
		t.Fatal(err)
	}
	lin := tab.Series["lineage"]
	dom := tab.Series["domain"]
	if len(lin) != 3 {
		t.Fatalf("series = %v", lin)
	}
	// Shape: monotone growth, roughly proportional to the domain.
	for i := 1; i < len(lin); i++ {
		if lin[i] <= lin[i-1] {
			t.Errorf("lineage not growing: %v", lin)
		}
	}
	ratio0 := lin[0] / dom[0]
	ratioN := lin[len(lin)-1] / dom[len(dom)-1]
	if ratioN > 2*ratio0 || ratio0 > 2*ratioN {
		t.Errorf("lineage growth not roughly linear: per-domain ratios %v vs %v", ratio0, ratioN)
	}
}

func TestFig5Shapes(t *testing.T) {
	tab, err := Fig5AdvisorOfStudent(small())
	if err != nil {
		t.Fatal(err)
	}
	mc := tab.Series["mcsat-sampling"]
	ix := tab.Series["mv-index"]
	for i := range ix {
		// The paper's headline: the MV-index is orders of magnitude faster
		// than sampling; require at least 10x here.
		if ix[i]*10 > mc[i] {
			t.Errorf("domain %v: mv-index %.6fs not >>10x faster than mcsat %.6fs",
				tab.Series["domain"][i], ix[i], mc[i])
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	tab, err := Fig6StudentsOfAdvisor(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig7LinearSize(t *testing.T) {
	tab, err := Fig7OBDDSize(small())
	if err != nil {
		t.Fatal(err)
	}
	size := tab.Series["size"]
	width := tab.Series["width"]
	for i := 1; i < len(size); i++ {
		if size[i] < size[i-1] {
			t.Errorf("OBDD size shrank: %v", size)
		}
	}
	// Inversion-free view: constant width regardless of domain.
	for i := 1; i < len(width); i++ {
		if width[i] != width[0] {
			t.Errorf("width not constant: %v", width)
		}
	}
}

func TestFig8SameOBDD(t *testing.T) {
	// Use domains large enough for synthesis's superlinear term to show; at
	// toy sizes per-block constants dominate and timing ratios are noise.
	opts := small()
	opts.Domains = []int{500, 1500}
	tab, err := Fig8Construction(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("synthesis and concatenation built different OBDDs: %v", r)
		}
	}
	// Shape check: synthesis cost grows faster than concatenation cost, so
	// the ratio cudd/mv must grow with the domain. (At toy domains constant
	// per-block overheads can make the absolute times close; the paper's
	// 100x gap appears at domains 1000-10000 — see EXPERIMENTS.md.)
	cudd := tab.Series["cudd"]
	mv := tab.Series["mv"]
	first, last := 0, len(cudd)-1
	if cudd[last]/mv[last] < cudd[first]/mv[first]*0.5 {
		t.Errorf("cudd/mv ratio shrank: %v -> %v (cudd %v, mv %v)",
			cudd[first]/mv[first], cudd[last]/mv[last], cudd, mv)
	}
}

func TestFig9BothExact(t *testing.T) {
	tab, err := Fig9Intersect(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, col := range []string{"mvintersect", "cc-mvintersect"} {
		for _, v := range tab.Series[col] {
			if v <= 0 {
				t.Errorf("%s reported non-positive time %v", col, v)
			}
		}
	}
}

func TestFig10And11(t *testing.T) {
	tab, err := Fig10StudentQueries(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != small().Queries {
		t.Errorf("fig10 rows = %d", len(tab.Rows))
	}
	for _, v := range tab.Series["answers"] {
		if v == 0 {
			t.Error("fig10 query with zero answers")
		}
	}
	tab, err = Fig11AffiliationQueries(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("fig11 empty")
	}
}

func TestMadden(t *testing.T) {
	tab, err := Madden(small())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Series["answers"][0] == 0 {
		t.Error("madden query returned no students")
	}
}

// TestParallelExperiment runs the parallel compile/query experiment on a
// small sweep with 4 workers and checks the "same" column (parallel output
// identical to sequential) plus the JSON report round-trip.
func TestParallelExperiment(t *testing.T) {
	opts := small()
	opts.Domains = []int{200, 400}
	opts.Parallelism = 4
	tab, err := ParallelCompileQuery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("parallel output diverged from sequential: %v", r)
		}
	}
	var buf strings.Builder
	if err := WriteParallelJSON(&buf, tab, opts.Parallelism); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Workers int `json:"workers"`
		Rows    []struct {
			Domain        int     `json:"domain"`
			SeqCompileSec float64 `json:"seq_compile_sec"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("bad JSON report: %v", err)
	}
	// benchWorkers clamps the requested parallelism to GOMAXPROCS: extra
	// workers on a saturated host measure overhead, not speedup.
	wantWorkers := 4
	if m := runtime.GOMAXPROCS(0); wantWorkers > m {
		wantWorkers = m
	}
	if rep.Workers != wantWorkers || len(rep.Rows) != 2 || rep.Rows[0].Domain != 200 || rep.Rows[0].SeqCompileSec <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestCacheExperiment runs the cache experiment on a small sweep and checks
// the correctness column (cached answers identical to uncached) plus the JSON
// report round-trip. Timing columns are load-sensitive and not asserted.
func TestCacheExperiment(t *testing.T) {
	opts := small()
	opts.Domains = []int{200}
	opts.Cache = true
	opts.CacheRequests = 40
	opts.CacheDistinct = 5
	tab, err := CacheServing(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if same := tab.Rows[0][len(tab.Rows[0])-1]; same != "true" {
		t.Errorf("cached answers diverged from uncached: %v", tab.Rows[0])
	}
	var buf strings.Builder
	if err := WriteCacheJSON(&buf, tab, opts); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests int `json:"requests"`
		Rows     []struct {
			Domain      int     `json:"domain"`
			UncachedSec float64 `json:"uncached_sec"`
			HitRate     float64 `json:"answer_hit_rate"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("bad JSON report: %v", err)
	}
	if rep.Requests != 40 || len(rep.Rows) != 1 || rep.Rows[0].Domain != 200 ||
		rep.Rows[0].UncachedSec <= 0 || rep.Rows[0].HitRate <= 0 {
		t.Errorf("report = %+v", rep)
	}

	// Baseline-only ablation: no cached leg, and the JSON writer refuses.
	opts.Cache = false
	tab, err = CacheServing(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCacheJSON(&strings.Builder{}, tab, opts); err == nil {
		t.Error("WriteCacheJSON accepted a baseline-only run")
	}
}

// TestReorderExperiment runs the reorder experiment on a small sweep and
// checks the correctness column (naive and sifted answers identical to the
// tuned Π leg), that sifting never grew the naive index, and the JSON
// report round-trip. Timing columns are load-sensitive and not asserted.
func TestReorderExperiment(t *testing.T) {
	opts := small()
	opts.Domains = []int{300}
	tab, err := ReorderSifting(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // view subsets 1, 2, 3, 123
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("answers diverged across legs: %v", r)
		}
	}
	for i := range tab.Series["nodes-naive"] {
		if tab.Series["nodes-sifted"][i] > tab.Series["nodes-naive"][i] {
			t.Errorf("sifting grew the index: %v -> %v",
				tab.Series["nodes-naive"][i], tab.Series["nodes-sifted"][i])
		}
	}
	var buf strings.Builder
	if err := WriteReorderJSON(&buf, tab); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Repeats int `json:"repeats"`
		Rows    []struct {
			Domain      int     `json:"domain"`
			Views       string  `json:"views"`
			NodesNaive  int     `json:"nodes_naive"`
			NodesPi     int     `json:"nodes_pi"`
			NodesSifted int     `json:"nodes_sifted"`
			Reduction   float64 `json:"reduction"`
			Same        bool    `json:"same"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("bad JSON report: %v", err)
	}
	if rep.Repeats != reorderRepeats || len(rep.Rows) != 4 ||
		rep.Rows[0].Domain != 300 || rep.Rows[0].Views != "1" ||
		rep.Rows[0].NodesNaive <= 0 || rep.Rows[0].NodesPi <= 0 ||
		rep.Rows[0].NodesSifted <= 0 || !rep.Rows[0].Same {
		t.Errorf("report = %+v", rep)
	}
	// The writer refuses tables from other experiments.
	if err := WriteReorderJSON(&strings.Builder{}, &Table{ID: "cache"}); err == nil {
		t.Error("WriteReorderJSON accepted a non-reorder table")
	}
}

// TestZipfWorkload: the request mix is deterministic, covers the hottest
// query most, and stays within bounds.
func TestZipfWorkload(t *testing.T) {
	qs := make([]*ucq.Query, 6)
	for i := range qs {
		qs[i] = ucq.MustParse("Q(a) :- Adv(1,a)")
	}
	w1 := NewZipfWorkload(qs, 200, 1.2, 7)
	w2 := NewZipfWorkload(qs, 200, 1.2, 7)
	if len(w1.Requests) != 200 {
		t.Fatalf("requests = %d", len(w1.Requests))
	}
	for i, k := range w1.Requests {
		if k < 0 || k >= len(qs) {
			t.Fatalf("request %d out of range: %d", i, k)
		}
		if w2.Requests[i] != k {
			t.Fatal("workload not deterministic for equal seeds")
		}
	}
	max := 0
	for i, h := range w1.Hits {
		if h > w1.Hits[max] {
			max = i
		}
	}
	if max != 0 {
		t.Errorf("rank 0 is not the hottest query: hits %v", w1.Hits)
	}
	if w1.Distinct() < 2 {
		t.Errorf("degenerate mix: %v", w1.Hits)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "parallel", "cache", "update", "reorder", "madden"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestAblationEntryShortcut(t *testing.T) {
	tab, err := AblationEntryShortcut(small())
	if err != nil {
		t.Fatal(err)
	}
	with := tab.Series["with"]
	without := tab.Series["without"]
	// The shortcut must win at the largest domain (the whole point of the
	// reachability precomputation).
	last := len(with) - 1
	if with[last] >= without[last] {
		t.Errorf("entry shortcut not faster: %v vs %v", with[last], without[last])
	}
}

func TestMethodsCompare(t *testing.T) {
	tab, err := MethodsCompare(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The runner itself asserts that all methods agree on the probability.
}

func TestMarginalsExperiment(t *testing.T) {
	tab, err := Marginals(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, v := range tab.Series["avgdelta"] {
		if v <= 0 {
			t.Errorf("views had no marginal effect: %v", tab.Series["avgdelta"])
		}
	}
	var buf bytes.Buffer
	if err := tab.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aid domain") {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestExactness(t *testing.T) {
	tab, err := Exactness(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tab.Series["maxerr"] {
		if e > 1e-9 {
			t.Errorf("max error %v exceeds float tolerance", e)
		}
	}
}
