package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// reorderRepeats is the number of timed repetitions per query leg; the
// minimum is reported, which is robust against GC noise at these sizes.
const reorderRepeats = 3

// ReorderSifting measures what dynamic variable reordering buys on the DBLP
// views. For each domain and view subset it runs three legs over the SAME
// translation (variable ids are only meaningful within one translation, so
// all orders are derived in-process):
//
//   - pi: the tuned static separator-first order Π (the default build);
//   - naive: a block-local naive order — the variables inside each chain
//     block window are shuffled with a seeded RNG, modelling an untuned
//     within-block order while preserving the chain factorization so the
//     compile stays tractable;
//   - sifted: per-block Rudell sifting to convergence, started from the
//     naive index.
//
// The headline number is the sifted-vs-naive node reduction: what the
// dynamic reorderer recovers when the static order is poor. The pi columns
// show how close sifting lands to (and typically beyond) the hand-tuned
// order. Every row cross-checks all three legs' answers to 1e-12 — a
// latency win on a wrong index would be meaningless.
func ReorderSifting(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "reorder",
		Title: "dynamic variable reordering (Rudell sifting, per-block windows)",
		Columns: []string{
			"aid1 domain", "views", "nodes-naive", "nodes-pi", "nodes-sifted",
			"reduction", "sift(ms)", "rounds",
			"query-naive(ms)", "query-pi(ms)", "query-sifted(ms)", "same",
		},
	}
	for _, n := range opts.Domains {
		for _, views := range []string{"1", "2", "3", "123"} {
			d, _, tr, err := pipeline(n, opts.Seed, views)
			if err != nil {
				return nil, err
			}
			tr.Parallelism = opts.Parallelism
			queries := reorderQueries(d, opts.Queries)

			// Leg 1: the tuned static order Π.
			ixPi, err := buildIndex(tr)
			if err != nil {
				return nil, err
			}
			nodesPi := ixPi.Size()
			piAns, piMs, err := timeQueries(ixPi, queries)
			if err != nil {
				return nil, err
			}

			// Leg 2: naive block-local order on the same translation.
			naive := naiveOrder(ixPi.Manager().Order(), ixPi.BlockWindows(),
				int64(opts.Seed))
			m2, f2, _, err := tr.CompileW(obdd.CompileOptions{
				Order:       naive,
				Parallelism: opts.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			tr.AttachOBDD(m2, f2)
			ix, err := mvindex.Build(tr)
			if err != nil {
				return nil, err
			}
			nodesNaive := ix.Size()
			naiveAns, naiveMs, err := timeQueries(ix, queries)
			if err != nil {
				return nil, err
			}

			// Leg 3: sift the naive index to convergence.
			st, err := ix.Sift(obdd.ReorderOptions{
				Mode:      obdd.ReorderConverge,
				MaxGrowth: opts.ReorderMaxGrowth,
				MaxRounds: opts.ReorderRounds,
			})
			if err != nil {
				return nil, err
			}
			nodesSifted := ix.Size()
			siftedAns, siftedMs, err := timeQueries(ix, queries)
			if err != nil {
				return nil, err
			}
			same := answersMatchLists(naiveAns, piAns, 1e-12) &&
				answersMatchLists(siftedAns, piAns, 1e-12)

			reduction := 0.0
			if nodesNaive > 0 {
				reduction = 1 - float64(nodesSifted)/float64(nodesNaive)
			}
			siftMs := float64(st.Duration.Microseconds()) / 1000
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), views,
				fmt.Sprint(nodesNaive), fmt.Sprint(nodesPi), fmt.Sprint(nodesSifted),
				fmt.Sprintf("%.1f%%", 100*reduction),
				fmt.Sprintf("%.1f", siftMs), fmt.Sprint(st.Rounds),
				fmt.Sprintf("%.3f", naiveMs), fmt.Sprintf("%.3f", piMs),
				fmt.Sprintf("%.3f", siftedMs),
				fmt.Sprint(same),
			})
			t.addSeries("domain", float64(n))
			t.addSeries("views", float64(viewsKey(views)))
			t.addSeries("nodes-naive", float64(nodesNaive))
			t.addSeries("nodes-pi", float64(nodesPi))
			t.addSeries("nodes-sifted", float64(nodesSifted))
			t.addSeries("reduction", reduction)
			t.addSeries("sift-ms", siftMs)
			t.addSeries("sift-rounds", float64(st.Rounds))
			t.addSeries("query-naive-ms", naiveMs)
			t.addSeries("query-pi-ms", piMs)
			t.addSeries("query-sifted-ms", siftedMs)
			t.addSeries("same", b2f(same))
		}
	}
	return t, nil
}

// naiveOrder derives the naive static leg's order from the tuned order:
// each chain-block window's variables are shuffled with a deterministic
// RNG. Variables never cross window boundaries, so the chain factorization
// (and with it compile tractability) is preserved; within a block the order
// carries none of Π's tuning. Note the result is only meaningful as
// CompileOptions.Order for the translation that produced `order` — variable
// ids are not stable across fresh translations.
func naiveOrder(order []int, wins [][2]int, seed int64) []int {
	naive := append([]int(nil), order...)
	rng := rand.New(rand.NewSource(seed))
	for _, w := range wins {
		seg := naive[w[0]:w[1]]
		rng.Shuffle(len(seg), func(i, j int) { seg[i], seg[j] = seg[j], seg[i] })
	}
	return naive
}

// viewsKey encodes a view subset as a number for the Series map ("123" →
// 123).
func viewsKey(views string) int {
	k := 0
	for _, c := range views {
		k = 10*k + int(c-'0')
	}
	return k
}

// reorderQueries is the mixed Figure 5/11 workload: advisors of a student
// spread over the domain plus affiliations of an author. Both relations
// exist in every view subset (the views only add constraints).
func reorderQueries(d *dblp.Dataset, k int) []*ucq.Query {
	if k < 2 {
		k = 2
	}
	var qs []*ucq.Query
	for i := 0; i < k && i < len(d.Students); i++ {
		s := d.Students[(i*len(d.Students))/k]
		qs = append(qs, dblp.QueryAdvisorOfStudent(s))
	}
	for i := 0; i < k/2 && i < len(d.Students); i++ {
		s := d.Students[(i*2*len(d.Students)+1)/k%len(d.Students)]
		qs = append(qs, dblp.QueryAffiliationOfAuthor(s))
	}
	return qs
}

// timeQueries runs the workload reorderRepeats times and returns the flat
// answer list (for equivalence checks) and the best per-query latency in
// milliseconds.
func timeQueries(ix *mvindex.Index, qs []*ucq.Query) ([]coreAnswerList, float64, error) {
	var answers []coreAnswerList
	var best time.Duration
	for rep := 0; rep < reorderRepeats; rep++ {
		runtime.GC()
		t0 := time.Now()
		var cur []coreAnswerList
		for _, q := range qs {
			a, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
			if err != nil {
				return nil, 0, err
			}
			cur = append(cur, a)
		}
		el := time.Since(t0)
		if rep == 0 || el < best {
			best = el
		}
		answers = cur
	}
	perQuery := float64(best.Microseconds()) / 1000 / float64(len(qs))
	return answers, perQuery, nil
}

// coreAnswerList is one query's answer list.
type coreAnswerList = []core.Answer

// answersMatchLists compares per-query answer lists pairwise.
func answersMatchLists(a, b []coreAnswerList, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !answersMatch(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// reorderReport is the JSON shape of BENCH_reorder.json.
type reorderReport struct {
	Repeats int                `json:"repeats"`
	Rows    []reorderReportRow `json:"rows"`
}

type reorderReportRow struct {
	Domain        int     `json:"domain"`
	Views         string  `json:"views"`
	NodesNaive    int     `json:"nodes_naive"`
	NodesPi       int     `json:"nodes_pi"`
	NodesSifted   int     `json:"nodes_sifted"`
	Reduction     float64 `json:"reduction"`
	SiftMs        float64 `json:"sift_ms"`
	SiftRounds    int     `json:"sift_rounds"`
	QueryNaiveMs  float64 `json:"query_naive_ms"`
	QueryPiMs     float64 `json:"query_pi_ms"`
	QuerySiftedMs float64 `json:"query_sifted_ms"`
	Same          bool    `json:"same"`
}

// WriteReorderJSON renders the reorder experiment's table as the
// BENCH_reorder.json report.
func WriteReorderJSON(w io.Writer, t *Table) error {
	if t.ID != "reorder" {
		return fmt.Errorf("bench: WriteReorderJSON wants the reorder table, got %q", t.ID)
	}
	rep := reorderReport{Repeats: reorderRepeats}
	for i := range t.Series["domain"] {
		rep.Rows = append(rep.Rows, reorderReportRow{
			Domain:        int(t.Series["domain"][i]),
			Views:         fmt.Sprint(int(t.Series["views"][i])),
			NodesNaive:    int(t.Series["nodes-naive"][i]),
			NodesPi:       int(t.Series["nodes-pi"][i]),
			NodesSifted:   int(t.Series["nodes-sifted"][i]),
			Reduction:     t.Series["reduction"][i],
			SiftMs:        t.Series["sift-ms"][i],
			SiftRounds:    int(t.Series["sift-rounds"][i]),
			QueryNaiveMs:  t.Series["query-naive-ms"][i],
			QueryPiMs:     t.Series["query-pi-ms"][i],
			QuerySiftedMs: t.Series["query-sifted-ms"][i],
			Same:          t.Series["same"][i] == 1,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
