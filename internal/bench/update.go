package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
)

// updateRounds is the number of timed small-batch updates per domain; with
// the warmup batch excluded, p50 is robust and p99 is effectively the max.
const updateRounds = 8

// UpdateMaintenance measures the live-update write path: small mutation
// batches (an insert, a reweight, a delete — touching at most three
// separator blocks) applied to a DBLP-scale index with the incremental
// maintenance path (ApplyMutations: re-translate, recompile only dirty
// blocks, splice) versus the from-scratch baseline a non-incremental system
// pays per batch (full re-translate + full OBDD compile + index build). The
// final incremental index is verified against the from-scratch rebuild on
// the mutated students' queries to 1e-12 (the speedup column is meaningless
// if the two indexes drift).
func UpdateMaintenance(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "update",
		Title: "incremental maintenance vs full recompile (small batches)",
		Columns: []string{
			"aid1 domain", "batch", "rounds",
			"incr-p50(ms)", "incr-p99(ms)", "full(ms)", "speedup",
			"reused/blocks", "same",
		},
	}
	for _, n := range opts.Domains {
		d, _, tr, err := pipeline(n, opts.Seed, "12")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		if len(d.Students) < updateRounds+1 {
			return nil, fmt.Errorf("bench: domain %d has only %d students", n, len(d.Students))
		}
		// Fresh advisor ids far outside the author domain: inserts never
		// collide with generated tuples, and each round mutates a distinct
		// student so a batch dirties a bounded set of separator blocks.
		adv := func(i int) int64 { return int64(1_000_000 + i) }
		batchFor := func(i int) []core.Mutation {
			b := []core.Mutation{{
				Op: core.MutInsert, Rel: "Advisor",
				Vals:   []engine.Value{engine.Int(d.Students[i+1]), engine.Int(adv(i))},
				Weight: 1.5,
			}}
			if i >= 1 {
				b = append(b, core.Mutation{
					Op: core.MutReweight, Rel: "Advisor",
					Vals:   []engine.Value{engine.Int(d.Students[i]), engine.Int(adv(i - 1))},
					Weight: 0.8,
				})
			}
			if i >= 2 {
				b = append(b, core.Mutation{
					Op: core.MutDelete, Rel: "Advisor",
					Vals: []engine.Value{engine.Int(d.Students[i-1]), engine.Int(adv(i - 2))},
				})
			}
			return b
		}

		// Warmup structural batch: the first one after Build compiles in
		// full to create the block record the incremental path diffs
		// against. Charging it to the incremental leg would misstate the
		// steady-state latency the experiment is about.
		if _, err := ix.ApplyMutations([]core.Mutation{{
			Op: core.MutInsert, Rel: "Advisor",
			Vals:   []engine.Value{engine.Int(d.Students[0]), engine.Int(999_999)},
			Weight: 1.2,
		}}); err != nil {
			return nil, err
		}

		var samples []time.Duration
		var blocks, reused, batchSize int
		for i := 0; i < updateRounds; i++ {
			b := batchFor(i)
			if len(b) > batchSize {
				batchSize = len(b)
			}
			runtime.GC()
			t0 := time.Now()
			st, err := ix.ApplyMutations(b)
			if err != nil {
				return nil, err
			}
			samples = append(samples, time.Since(t0))
			if st.Full {
				return nil, fmt.Errorf("bench: domain %d round %d fell back to a full recompile", n, i)
			}
			blocks += st.Blocks
			reused += st.Reused
		}

		// Full-rebuild baseline on the same final state, best of two runs.
		src := ix.Source()
		var full time.Duration
		var ixFull *mvindex.Index
		for rep := 0; rep < 2; rep++ {
			work := &core.MVDB{DB: src.DB.Clone(), Views: src.Views}
			runtime.GC()
			t0 := time.Now()
			trF, err := work.Translate(core.TranslateOptions{})
			if err != nil {
				return nil, err
			}
			trF.Parallelism = tr.Parallelism
			ixF, err := buildIndex(trF)
			if err != nil {
				return nil, err
			}
			if d := time.Since(t0); rep == 0 || d < full {
				full = d
			}
			ixFull = ixF
		}

		same := true
		for i := 0; i < updateRounds && same; i++ {
			q := dblp.QueryAdvisorOfStudent(d.Students[i+1])
			a, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
			if err != nil {
				return nil, err
			}
			b, err := ixFull.Query(q, mvindex.IntersectOptions{CacheConscious: true})
			if err != nil {
				return nil, err
			}
			same = answersMatch(a, b, 1e-12)
		}

		p50, p99 := percentile(samples, 0.5), percentile(samples, 0.99)
		speedup := full.Seconds() / p50.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(batchSize), fmt.Sprint(updateRounds),
			millis(p50), millis(p99), millis(full), fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d/%d", reused, blocks),
			fmt.Sprint(same),
		})
		t.addSeries("domain", float64(n))
		t.addSeries("incr-p50-ms", float64(p50.Microseconds())/1000)
		t.addSeries("incr-p99-ms", float64(p99.Microseconds())/1000)
		t.addSeries("full-ms", float64(full.Microseconds())/1000)
		t.addSeries("speedup", speedup)
		t.addSeries("same", b2f(same))
	}
	return t, nil
}

func millis(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func percentile(samples []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func answersMatch(a, b []core.Answer, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(h []engine.Value) string { return engine.TupleKey(h) }
	probs := make(map[string]float64, len(a))
	for _, r := range a {
		probs[key(r.Head)] = r.Prob
	}
	for _, r := range b {
		p, ok := probs[key(r.Head)]
		if !ok || math.Abs(p-r.Prob) > tol {
			return false
		}
	}
	return true
}

// updateReport is the JSON shape of BENCH_update.json.
type updateReport struct {
	Rounds    int               `json:"rounds"`
	BatchSize int               `json:"batch_size"`
	Rows      []updateReportRow `json:"rows"`
}

type updateReportRow struct {
	Domain    int     `json:"domain"`
	IncrP50Ms float64 `json:"incr_p50_ms"`
	IncrP99Ms float64 `json:"incr_p99_ms"`
	FullMs    float64 `json:"full_ms"`
	Speedup   float64 `json:"speedup"`
	Same      bool    `json:"same"`
}

// WriteUpdateJSON renders the update experiment's table as the
// BENCH_update.json report.
func WriteUpdateJSON(w io.Writer, t *Table) error {
	if t.ID != "update" {
		return fmt.Errorf("bench: WriteUpdateJSON wants the update table, got %q", t.ID)
	}
	rep := updateReport{Rounds: updateRounds, BatchSize: 3}
	for i := range t.Series["domain"] {
		rep.Rows = append(rep.Rows, updateReportRow{
			Domain:    int(t.Series["domain"][i]),
			IncrP50Ms: t.Series["incr-p50-ms"][i],
			IncrP99Ms: t.Series["incr-p99-ms"][i],
			FullMs:    t.Series["full-ms"][i],
			Speedup:   t.Series["speedup"][i],
			Same:      t.Series["same"][i] == 1,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
