package bench

import (
	"fmt"
	"sort"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/lineage"
	"mvdb/internal/mln"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

// Fig1Inventory reproduces the Figure 1 dataset inventory: per-table tuple
// counts for the deterministic tables, derived views, probabilistic tables
// and MarkoViews.
func Fig1Inventory(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, m, _, err := pipeline(opts.FullAuthors, opts.Seed, "123")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig1",
		Title:   fmt.Sprintf("dataset inventory (synthetic DBLP, %d authors)", opts.FullAuthors),
		Columns: []string{"table", "kind", "tuples"},
	}
	for _, st := range d.DB.Stats() {
		kind := "probabilistic"
		if st.Deterministic {
			kind = "deterministic"
		}
		t.Rows = append(t.Rows, []string{st.Relation, kind, fmt.Sprint(st.Tuples)})
		t.addSeries(st.Relation, float64(st.Tuples))
	}
	tuples, err := m.Materialize()
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, vt := range tuples {
		counts[vt.View]++
	}
	for _, v := range []string{"V1", "V2", "V3"} {
		t.Rows = append(t.Rows, []string{v, "markoview", fmt.Sprint(counts[v])})
		t.addSeries(v, float64(counts[v]))
	}
	return t, nil
}

// Fig4LineageSize reproduces Figure 4: the lineage size of W (V1+V2, the
// MLN-comparison configuration) as the aid domain grows.
func Fig4LineageSize(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig4",
		Title:   "lineage size of the MarkoViews vs aid domain",
		Columns: []string{"aid domain", "lineage size"},
	}
	for _, n := range opts.Domains {
		_, _, tr, err := pipeline(n, opts.Seed, "12")
		if err != nil {
			return nil, err
		}
		lin, err := tr.WLineage()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(lin.Size())})
		t.addSeries("domain", float64(n))
		t.addSeries("lineage", float64(lin.Size()))
	}
	return t, nil
}

// fig56 runs the Figure 5/6 comparison for one query family: MC-SAT total
// (grounding + sampling), MC-SAT sampling only, augmented OBDD built at
// query time, and the precompiled MV-index.
func fig56(opts Options, id, title string, pick func(*dblp.Dataset) *ucq.Query) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"aid domain", "mcsat-total(s)", "mcsat-sampling(s)", "augmented-obdd(s)", "mv-index(s)"},
	}
	for _, n := range opts.Domains {
		d, m, tr, err := pipeline(n, opts.Seed, "12")
		if err != nil {
			return nil, err
		}
		q := pick(d)
		boolQ := ucq.UCQ{Disjuncts: q.Disjuncts} // head vars become existential

		// Alchemy stand-in: ground the MLN, then MC-SAT.
		t0 := time.Now()
		net, err := m.GroundMLN()
		if err != nil {
			return nil, err
		}
		linQ, err := ucq.EvalBoolean(m.DB, boolQ)
		if err != nil {
			return nil, err
		}
		tGround := time.Since(t0)
		t0 = time.Now()
		if _, err := net.MarginalMCSat(lineage.FromDNF(linQ), mln.MCSatOptions{
			Burn: opts.MCSatBurn, Samples: opts.MCSatSamples, Seed: opts.Seed,
		}); err != nil {
			return nil, err
		}
		tSampling := time.Since(t0)
		tTotal := tGround + tSampling

		// Augmented OBDD built at query time: compile W, then evaluate.
		t0 = time.Now()
		m2, fW, _, err := tr.CompileW(obdd.CompileOptions{})
		if err != nil {
			return nil, err
		}
		probs := tr.DB.Probs()
		pW := m2.Prob(fW, probs)
		fQ := obdd.BuildDNF(m2, linQ)
		pQW := m2.Prob(m2.Or(fQ, fW), probs)
		_ = (pQW - pW) / (1 - pW)
		tAug := time.Since(t0)

		// MV-index: precompiled offline, query online.
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		if _, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true}); err != nil {
			return nil, err
		}
		tIx := time.Since(t0)

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), seconds(tTotal), seconds(tSampling), seconds(tAug), seconds(tIx),
		})
		t.addSeries("domain", float64(n))
		t.addSeries("mcsat-total", tTotal.Seconds())
		t.addSeries("mcsat-sampling", tSampling.Seconds())
		t.addSeries("augmented-obdd", tAug.Seconds())
		t.addSeries("mv-index", tIx.Seconds())
	}
	return t, nil
}

// Fig5AdvisorOfStudent reproduces Figure 5: "find the advisor of student X".
func Fig5AdvisorOfStudent(opts Options) (*Table, error) {
	return fig56(opts, "fig5", "Alchemy vs MarkoViews: advisor of a student",
		func(d *dblp.Dataset) *ucq.Query {
			return dblp.QueryAdvisorOfStudent(d.Students[len(d.Students)/2])
		})
}

// Fig6StudentsOfAdvisor reproduces Figure 6: "find all students of advisor Y".
func Fig6StudentsOfAdvisor(opts Options) (*Table, error) {
	return fig56(opts, "fig6", "Alchemy vs MarkoViews: all students of an advisor",
		func(d *dblp.Dataset) *ucq.Query {
			s := d.Students[len(d.Students)/2]
			return dblp.QueryStudentsOfAdvisorID(d.StudentAdvisor[s])
		})
}

// Fig7OBDDSize reproduces Figure 7: the OBDD size of view V2 grows linearly
// with the aid1 domain.
func Fig7OBDDSize(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig7",
		Title:   "OBDD size of V2 vs aid1 domain",
		Columns: []string{"aid1 domain", "obdd size", "width"},
	}
	for _, n := range opts.Domains {
		_, _, tr, err := pipeline(n, opts.Seed, "2")
		if err != nil {
			return nil, err
		}
		m2, fW, _, err := tr.CompileW(obdd.CompileOptions{})
		if err != nil {
			return nil, err
		}
		size, width := m2.Size(fW), m2.Width(fW)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(size), fmt.Sprint(width)})
		t.addSeries("domain", float64(n))
		t.addSeries("size", float64(size))
		t.addSeries("width", float64(width))
	}
	return t, nil
}

// Fig8Construction reproduces Figure 8: ConOBDD's concatenation vs
// CUDD-style synthesis; both construct the same OBDD, synthesis pays a
// superlinear price.
func Fig8Construction(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig8",
		Title:   "OBDD construction: synthesis (CUDD-style) vs concatenation (MV), sequential and parallel",
		Columns: []string{"aid1 domain", "cudd-construction(s)", "mv-construction(s)", "mv-par-construction(s)", "workers", "same obdd"},
	}
	workers := benchWorkers(opts.Parallelism)
	for _, n := range opts.Domains {
		_, _, tr, err := pipeline(n, opts.Seed, "2")
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		mSyn, fSyn, _, err := tr.CompileW(obdd.CompileOptions{FromLineage: true})
		if err != nil {
			return nil, err
		}
		tSyn := time.Since(t0)
		t0 = time.Now()
		mCon, fCon, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		tCon := time.Since(t0)
		t0 = time.Now()
		mPar, fPar, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: workers})
		if err != nil {
			return nil, err
		}
		tPar := time.Since(t0)
		same := mSyn.Size(fSyn) == mCon.Size(fCon) && mCon.Size(fCon) == mPar.Size(fPar)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), seconds(tSyn), seconds(tCon), seconds(tPar), fmt.Sprint(workers), fmt.Sprint(same)})
		t.addSeries("domain", float64(n))
		t.addSeries("cudd", tSyn.Seconds())
		t.addSeries("mv", tCon.Seconds())
		t.addSeries("mv-par", tPar.Seconds())
	}
	return t, nil
}

// Fig9Intersect reproduces Figure 9: worst-case query (20 tuples spanning
// the whole index), MVIntersect vs CC-MVIntersect.
func Fig9Intersect(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig9",
		Title:   "querying time, worst-case 20-tuple query: MVIntersect vs CC-MVIntersect",
		Columns: []string{"aid1 domain", "mvintersect(s)", "cc-mvintersect(s)", "index size"},
	}
	for _, n := range opts.Domains {
		_, _, tr, err := pipeline(n, opts.Seed, "2")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		lin := spanningLineage(tr, 20)
		// Warm both paths once (builds the query OBDD into the shared
		// manager), then time repeated intersections.
		const reps = 20
		ix.IntersectLineage(lin, mvindex.IntersectOptions{})
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			ix.IntersectLineage(lin, mvindex.IntersectOptions{})
		}
		tPlain := time.Since(t0) / reps
		ix.IntersectLineage(lin, mvindex.IntersectOptions{CacheConscious: true})
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			ix.IntersectLineage(lin, mvindex.IntersectOptions{CacheConscious: true})
		}
		tCC := time.Since(t0) / reps
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), seconds(tPlain), seconds(tCC), fmt.Sprint(ix.Size())})
		t.addSeries("domain", float64(n))
		t.addSeries("mvintersect", tPlain.Seconds())
		t.addSeries("cc-mvintersect", tCC.Seconds())
		t.addSeries("size", float64(ix.Size()))
	}
	return t, nil
}

// spanningLineage builds the paper's worst-case query lineage: k tuple
// variables spread evenly across the index order, forcing a traversal of
// the entire MV-index.
func spanningLineage(tr *core.Translation, k int) lineage.DNF {
	m, fW, err := tr.OBDD()
	if err != nil {
		return nil
	}
	support := m.Support(fW)
	sort.Slice(support, func(i, j int) bool { return m.Level(support[i]) < m.Level(support[j]) })
	if len(support) == 0 {
		return nil
	}
	if k > len(support) {
		k = len(support)
	}
	var d lineage.DNF
	for i := 0; i < k; i++ {
		v := support[i*(len(support)-1)/max(1, k-1)]
		d = append(d, []int{v})
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// perQuery runs n queries through the CC-MVIntersect index and reports each
// query's latency — the Figure 10/11 bar charts.
func perQuery(opts Options, id, title string, queries []*ucq.Query, ix *mvindex.Index) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"query", "time(s)", "answers"},
	}
	for i, q := range queries {
		t0 := time.Now()
		rows, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("q%d", i+1), seconds(el), fmt.Sprint(len(rows))})
		t.addSeries("time", el.Seconds())
		t.addSeries("answers", float64(len(rows)))
	}
	return t, nil
}

// fullIndex builds the full-scale dataset and its MV-index once.
func fullIndex(opts Options) (*dblp.Dataset, *mvindex.Index, error) {
	d, _, tr, err := pipeline(opts.FullAuthors, opts.Seed, "123")
	if err != nil {
		return nil, nil, err
	}
	ix, err := buildIndex(tr)
	if err != nil {
		return nil, nil, err
	}
	return d, ix, nil
}

// Fig10StudentQueries reproduces Figure 10: ten "students of advisor X"
// queries on the full dataset.
func Fig10StudentQueries(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, ix, err := fullIndex(opts)
	if err != nil {
		return nil, err
	}
	advisors := advisorsWithStudents(d, opts.Queries)
	var queries []*ucq.Query
	for _, a := range advisors {
		queries = append(queries, dblp.QueryStudentsOfAdvisorID(a))
	}
	return perQuery(opts, "fig10", "querying students of an advisor (full dataset)", queries, ix)
}

// Fig11AffiliationQueries reproduces Figure 11: ten "affiliation of author
// Y" queries on the full dataset.
func Fig11AffiliationQueries(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, ix, err := fullIndex(opts)
	if err != nil {
		return nil, err
	}
	aff := d.DB.Relation("Affiliation")
	var queries []*ucq.Query
	seen := map[int64]bool{}
	for _, t := range aff.Tuples {
		aid := t.Vals[0].Int
		if !seen[aid] {
			seen[aid] = true
			queries = append(queries, dblp.QueryAffiliationOfAuthor(aid))
			if len(queries) == opts.Queries {
				break
			}
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: no Affiliation tuples at %d authors", opts.FullAuthors)
	}
	return perQuery(opts, "fig11", "querying affiliations of an author (full dataset)", queries, ix)
}

// Madden reproduces the running example of Figure 2: all students advised by
// a "%Madden%"-named advisor, on the full dataset.
func Madden(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	d, ix, err := fullIndex(opts)
	if err != nil {
		return nil, err
	}
	q := dblp.QueryStudentsOfAdvisor("%Madden%")
	t0 := time.Now()
	rows, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
	if err != nil {
		return nil, err
	}
	el := time.Since(t0)
	t := &Table{
		ID:      "madden",
		Title:   "running example: students advised by %Madden%",
		Columns: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows, []string{"madden-named advisors", fmt.Sprint(len(d.MaddenAdvisors))})
	t.Rows = append(t.Rows, []string{"answers", fmt.Sprint(len(rows))})
	t.Rows = append(t.Rows, []string{"time(s)", seconds(el)})
	t.addSeries("advisors", float64(len(d.MaddenAdvisors)))
	t.addSeries("answers", float64(len(rows)))
	t.addSeries("time", el.Seconds())
	return t, nil
}

func advisorsWithStudents(d *dblp.Dataset, n int) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, s := range d.Students {
		a := d.StudentAdvisor[s]
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// All runs every experiment in paper order.
func All(opts Options) ([]*Table, error) {
	runners := []func(Options) (*Table, error){
		Fig1Inventory, Fig4LineageSize, Fig5AdvisorOfStudent, Fig6StudentsOfAdvisor,
		Fig7OBDDSize, Fig8Construction, Fig9Intersect,
		Fig10StudentQueries, Fig11AffiliationQueries, Madden,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r(opts)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID returns the runner for an experiment id.
func ByID(id string) (func(Options) (*Table, error), bool) {
	m := map[string]func(Options) (*Table, error){
		"fig1":         Fig1Inventory,
		"fig4":         Fig4LineageSize,
		"fig5":         Fig5AdvisorOfStudent,
		"fig6":         Fig6StudentsOfAdvisor,
		"fig7":         Fig7OBDDSize,
		"fig8":         Fig8Construction,
		"fig9":         Fig9Intersect,
		"fig10":        Fig10StudentQueries,
		"fig11":        Fig11AffiliationQueries,
		"parallel":     ParallelCompileQuery,
		"cache":        CacheServing,
		"update":       UpdateMaintenance,
		"reorder":      ReorderSifting,
		"madden":       Madden,
		"ablate-entry": AblationEntryShortcut,
		"methods":      MethodsCompare,
		"marginals":    Marginals,
		"exactness":    Exactness,
	}
	r, ok := m[id]
	return r, ok
}
