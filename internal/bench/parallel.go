package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
)

// benchWorkers resolves a Parallelism option to a worker count, mirroring
// obdd.CompileOptions semantics, then clamps to GOMAXPROCS: workers beyond
// the CPUs actually available cannot speed anything up — they only add
// scratch-manager and import overhead — so timing them would report that
// overhead as a (bogus) parallel slowdown.
func benchWorkers(p int) int {
	w := p
	if p == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if m := runtime.GOMAXPROCS(0); w > m {
		w = m
	}
	return w
}

// ParallelCompileQuery measures the tentpole speedups: W compiled with 1
// worker vs N workers (same V2 sweep as fig8, where the separator yields one
// block per aid1 value), and a batch of student queries answered with a
// sequential vs parallel per-answer loop. Both parallel paths are verified
// to give identical output (same OBDD size; bitwise-equal probabilities) —
// the speedup column is meaningless if the answers drift. On a single-core
// host the ratios hover around 1; the ≥2x compile speedup appears at large
// domains on multi-core hardware.
func ParallelCompileQuery(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	workers := benchWorkers(opts.Parallelism)
	t := &Table{
		ID:    "parallel",
		Title: fmt.Sprintf("parallel compile + concurrent query (workers=%d, GOMAXPROCS=%d)", workers, runtime.GOMAXPROCS(0)),
		Columns: []string{
			"aid1 domain", "workers",
			"seq-compile(s)", "par-compile(s)", "compile-speedup",
			"seq-queries(s)", "par-queries(s)", "query-speedup",
			"same",
		},
	}
	for _, n := range opts.Domains {
		d, _, tr, err := pipeline(n, opts.Seed, "2")
		if err != nil {
			return nil, err
		}
		// Untimed warmup: the first compile at a new size pays one-off costs
		// (heap growth, page faults, pool fills) that would otherwise be
		// charged entirely to the sequential leg and skew the ratio.
		if _, _, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: 1}); err != nil {
			return nil, err
		}
		// Each leg is the minimum over several runs, and the two legs are
		// interleaved: single timings on a shared host swing by 2-3x, the
		// minimum is the standard estimator for a code path's actual cost,
		// and alternating the legs spreads any load drift over both equally.
		// The forced GC keeps collection work out of the timed region: each
		// compile allocates enough to trigger a cycle roughly every other
		// run, which otherwise lands on whichever leg is unlucky and makes
		// the ratio bimodal.
		oneCompile := func(par int) (*obdd.Manager, obdd.NodeID, time.Duration, error) {
			runtime.GC()
			t0 := time.Now()
			m, f, _, err := tr.CompileW(obdd.CompileOptions{Parallelism: par})
			return m, f, time.Since(t0), err
		}
		var mSeq, mPar *obdd.Manager
		var fSeq, fPar obdd.NodeID
		var tSeq, tPar time.Duration
		for rep := 0; rep < 5; rep++ {
			m, f, d, err := oneCompile(1)
			if err != nil {
				return nil, err
			}
			if rep == 0 || d < tSeq {
				mSeq, fSeq, tSeq = m, f, d
			}
			m, f, d, err = oneCompile(workers)
			if err != nil {
				return nil, err
			}
			if rep == 0 || d < tPar {
				mPar, fPar, tPar = m, f, d
			}
		}
		same := mSeq.Size(fSeq) == mPar.Size(fPar)

		// Batch query timing on one shared index: the same student queries
		// answered with the per-answer loop at 1 worker and at N workers.
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		students := d.Students
		if len(students) > opts.Queries {
			students = students[:opts.Queries]
		}
		batch := func(par int) (time.Duration, []float64, error) {
			var probs []float64
			t0 := time.Now()
			for _, s := range students {
				rows, err := ix.Query(dblp.QueryAdvisorOfStudent(s), mvindex.IntersectOptions{CacheConscious: true, Parallelism: par})
				if err != nil {
					return 0, nil, err
				}
				for _, r := range rows {
					probs = append(probs, r.Prob)
				}
			}
			return time.Since(t0), probs, nil
		}
		tQSeq, pSeq, err := batch(1)
		if err != nil {
			return nil, err
		}
		tQPar, pPar, err := batch(workers)
		if err != nil {
			return nil, err
		}
		if len(pSeq) != len(pPar) {
			same = false
		} else {
			for i := range pSeq {
				if pSeq[i] != pPar[i] {
					same = false
					break
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(workers),
			seconds(tSeq), seconds(tPar), ratio(tSeq, tPar),
			seconds(tQSeq), seconds(tQPar), ratio(tQSeq, tQPar),
			fmt.Sprint(same),
		})
		t.addSeries("domain", float64(n))
		t.addSeries("seq-compile", tSeq.Seconds())
		t.addSeries("par-compile", tPar.Seconds())
		t.addSeries("seq-queries", tQSeq.Seconds())
		t.addSeries("par-queries", tQPar.Seconds())
	}
	return t, nil
}

func ratio(seq, par time.Duration) string {
	if par <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", seq.Seconds()/par.Seconds())
}

// parallelReport is the JSON shape of BENCH_parallel.json.
type parallelReport struct {
	Workers    int                 `json:"workers"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Rows       []parallelReportRow `json:"rows"`
}

type parallelReportRow struct {
	Domain         int     `json:"domain"`
	SeqCompileSec  float64 `json:"seq_compile_sec"`
	ParCompileSec  float64 `json:"par_compile_sec"`
	CompileSpeedup float64 `json:"compile_speedup"`
	SeqQueriesSec  float64 `json:"seq_queries_sec"`
	ParQueriesSec  float64 `json:"par_queries_sec"`
	QuerySpeedup   float64 `json:"query_speedup"`
}

// WriteParallelJSON renders the parallel experiment's table as the
// BENCH_parallel.json report consumed by CI and the README's numbers.
func WriteParallelJSON(w io.Writer, t *Table, parallelism int) error {
	if t.ID != "parallel" {
		return fmt.Errorf("bench: WriteParallelJSON wants the parallel table, got %q", t.ID)
	}
	rep := parallelReport{Workers: benchWorkers(parallelism), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for i := range t.Series["domain"] {
		sc, pc := t.Series["seq-compile"][i], t.Series["par-compile"][i]
		sq, pq := t.Series["seq-queries"][i], t.Series["par-queries"][i]
		row := parallelReportRow{
			Domain:        int(t.Series["domain"][i]),
			SeqCompileSec: sc,
			ParCompileSec: pc,
			SeqQueriesSec: sq,
			ParQueriesSec: pq,
		}
		if pc > 0 {
			row.CompileSpeedup = sc / pc
		}
		if pq > 0 {
			row.QuerySpeedup = sq / pq
		}
		rep.Rows = append(rep.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
