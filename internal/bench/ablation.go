package bench

import (
	"errors"
	"fmt"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/lift"
	"mvdb/internal/mvindex"
	"mvdb/internal/ucq"
)

// AblationEntryShortcut quantifies the contribution of the MV-index's
// reachability entry shortcut and probUnder cutoff (Section 4.3): the same
// single-block query is answered with the shortcut on and off, for both
// intersection layouts.
func AblationEntryShortcut(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "ablate-entry",
		Title:   "ablation: reachability entry shortcut on vs off (single-block query)",
		Columns: []string{"aid domain", "with-shortcut(s)", "no-shortcut(s)", "speedup"},
	}
	for _, n := range opts.Domains {
		d, _, tr, err := pipeline(n, opts.Seed, "123")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		s := d.Students[len(d.Students)/2]
		q := dblp.QueryAdvisorOfStudent(s)
		const reps = 10
		measure := func(o mvindex.IntersectOptions) (time.Duration, error) {
			if _, err := ix.Query(q, o); err != nil {
				return 0, err
			}
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := ix.Query(q, o); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / reps, nil
		}
		on, err := measure(mvindex.IntersectOptions{CacheConscious: true})
		if err != nil {
			return nil, err
		}
		off, err := measure(mvindex.IntersectOptions{CacheConscious: true, NoEntryShortcut: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), seconds(on), seconds(off), fmt.Sprintf("%.1fx", off.Seconds()/on.Seconds()),
		})
		t.addSeries("domain", float64(n))
		t.addSeries("with", on.Seconds())
		t.addSeries("without", off.Seconds())
	}
	return t, nil
}

// MethodsCompare runs the same Boolean query through every exact evaluation
// method on the translated database — the engineering trade-off behind the
// paper's choice of OBDD compilation: lifted plans are fastest when they
// exist, the MV-index is fast and general, DPLL is general but
// per-query-exponential in the worst case.
func MethodsCompare(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "methods",
		Title:   "exact methods on the same query: mv-index vs obdd vs dpll vs lifted",
		Columns: []string{"aid domain", "mv-index(s)", "obdd-cached(s)", "dpll(s)", "lifted"},
	}
	for _, n := range opts.Domains {
		d, _, tr, err := pipeline(n, opts.Seed, "12")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		s := d.Students[len(d.Students)/2]
		q := dblp.QueryAdvisorOfStudent(s)
		b := ucq.UCQ{Disjuncts: q.Disjuncts} // Boolean: head variable becomes existential

		t0 := time.Now()
		pIx, err := ix.ProbBoolean(b, mvindex.IntersectOptions{CacheConscious: true})
		if err != nil {
			return nil, err
		}
		dIx := time.Since(t0)

		t0 = time.Now()
		pOb, err := tr.ProbBoolean(b, core.MethodOBDD)
		if err != nil {
			return nil, err
		}
		dOb := time.Since(t0)

		t0 = time.Now()
		pDp, err := tr.ProbBoolean(b, core.MethodDPLL)
		if err != nil {
			return nil, err
		}
		dDp := time.Since(t0)

		lifted := "unsafe"
		t0 = time.Now()
		if pLf, err := tr.ProbBoolean(b, core.MethodLifted); err == nil {
			lifted = fmt.Sprintf("%.6fs", time.Since(t0).Seconds())
			if diff(pLf, pIx) > 1e-9 {
				return nil, fmt.Errorf("bench: lifted %v disagrees with index %v", pLf, pIx)
			}
		} else if !errors.Is(err, lift.ErrUnsafe) {
			return nil, err
		}
		if diff(pIx, pOb) > 1e-9 || diff(pIx, pDp) > 1e-9 {
			return nil, fmt.Errorf("bench: methods disagree: index %v obdd %v dpll %v", pIx, pOb, pDp)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), seconds(dIx), seconds(dOb), seconds(dDp), lifted})
		t.addSeries("domain", float64(n))
		t.addSeries("mv-index", dIx.Seconds())
		t.addSeries("obdd", dOb.Seconds())
		t.addSeries("dpll", dDp.Seconds())
	}
	return t, nil
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Marginals measures the paper's motivating workload — reading off the
// corrected marginal of every probabilistic tuple (the inferred advisor /
// affiliation relations) — using the one-pass augmented-OBDD formula of
// Section 4.1.
func Marginals(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "marginals",
		Title:   "all-tuple corrected marginals (one pass over the MV-index)",
		Columns: []string{"aid domain", "tuples", "time(s)", "avg |Δ| on constrained", "max boost"},
	}
	for _, n := range opts.Domains {
		_, _, tr, err := pipeline(n, opts.Seed, "123")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		marg, err := ix.AllTupleMarginals()
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		probs := tr.DB.Probs()
		sumDelta, constrained, maxBoost := 0.0, 0, 0.0
		for v := 1; v < len(marg); v++ {
			if tr.IsNVVar(v) {
				continue // internal bookkeeping tuples, not facts
			}
			d := marg[v] - probs[v]
			if d != 0 {
				constrained++
				if d < 0 {
					sumDelta -= d
				} else {
					sumDelta += d
				}
				if d > maxBoost {
					maxBoost = d
				}
			}
		}
		avg := 0.0
		if constrained > 0 {
			avg = sumDelta / float64(constrained)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(marg) - 1), seconds(el),
			fmt.Sprintf("%.4f", avg), fmt.Sprintf("%.4f", maxBoost),
		})
		t.addSeries("domain", float64(n))
		t.addSeries("time", el.Seconds())
		t.addSeries("avgdelta", avg)
	}
	return t, nil
}

// Exactness cross-checks the MV-index against exhaustive Definition 4
// enumeration on micro datasets and reports the maximum absolute error —
// the "all probability computations are exact" claim of Section 5.4 made
// measurable. Errors are floating-point only (~1e-15).
func Exactness(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "exactness",
		Title:   "MV-index vs exhaustive enumeration (micro datasets)",
		Columns: []string{"seed", "tuple vars", "queries", "max |error|"},
	}
	for seed := int64(1); seed <= 5; seed++ {
		d, err := dblp.Generate(dblp.Config{NumAuthors: 4, AdvisorEvery: 2, Seed: seed, SecondAdvisorPct: 100})
		if err != nil {
			return nil, err
		}
		if d.DB.NumVars() > 20 {
			continue
		}
		m, err := d.MVDB()
		if err != nil {
			return nil, err
		}
		tr, err := m.Translate(core.TranslateOptions{})
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		maxErr, queries := 0.0, 0
		for _, s := range d.Students {
			q := dblp.QueryAdvisorOfStudent(s)
			rows, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				b, err := q.Bind(r.Head)
				if err != nil {
					return nil, err
				}
				want, err := m.ProbExact(b)
				if err != nil {
					return nil, err
				}
				queries++
				if e := diff(r.Prob, want); e > maxErr {
					maxErr = e
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed), fmt.Sprint(d.DB.NumVars()), fmt.Sprint(queries), fmt.Sprintf("%.2e", maxErr),
		})
		t.addSeries("maxerr", maxErr)
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("bench: no micro dataset small enough for enumeration")
	}
	return t, nil
}
