package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// ZipfWorkload is a repeated-query request mix: Requests draws from Queries
// with Zipf-distributed popularity (rank 0 hottest), the shape of real
// serving traffic where a few queries dominate. Hits counts, per distinct
// query, how many requests selected it.
type ZipfWorkload struct {
	Queries  []*ucq.Query
	Requests []int // indexes into Queries, in arrival order
	Hits     []int
}

// NewZipfWorkload draws a deterministic request sequence of length requests
// over the given distinct queries with Zipf skew s (s > 1; ~1.2 matches
// measured query-log popularity curves).
func NewZipfWorkload(queries []*ucq.Query, requests int, s float64, seed int64) *ZipfWorkload {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(queries)-1))
	w := &ZipfWorkload{Queries: queries, Hits: make([]int, len(queries))}
	for i := 0; i < requests; i++ {
		k := int(z.Uint64())
		w.Requests = append(w.Requests, k)
		w.Hits[k]++
	}
	return w
}

// Distinct reports how many distinct queries the request sequence touched.
func (w *ZipfWorkload) Distinct() int {
	n := 0
	for _, h := range w.Hits {
		if h > 0 {
			n++
		}
	}
	return n
}

// CacheServing measures the cross-query cache on a repeated Zipf workload:
// the same request sequence served with the cache off and on, per-request
// latencies split into cold (first occurrence of a query — a miss) and warm
// (repeat — an answer-cache hit), and a probability cross-check between the
// two legs (the cache must never change an answer, only its latency). With
// Options.Cache false the cached leg is skipped — the baseline-only ablation
// mvbench's -cache=false selects.
func CacheServing(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID: "cache",
		Title: fmt.Sprintf("cross-query cache on a Zipf request mix (requests=%d, distinct=%d, skew=1.2)",
			opts.CacheRequests, opts.CacheDistinct),
		Columns: []string{
			"aid1 domain", "requests", "distinct",
			"uncached(s)", "cached(s)", "speedup",
			"cold-miss(ms)", "warm-hit(ms)", "warm-speedup",
			"hit-rate", "same",
		},
	}
	for _, n := range opts.Domains {
		d, _, tr, err := pipeline(n, opts.Seed, "2")
		if err != nil {
			return nil, err
		}
		ix, err := buildIndex(tr)
		if err != nil {
			return nil, err
		}
		distinct := opts.CacheDistinct
		if distinct > len(d.Students) {
			distinct = len(d.Students)
		}
		queries := make([]*ucq.Query, distinct)
		for i := 0; i < distinct; i++ {
			// Alternate the fig5 and fig10 workloads, spread over the author
			// lists, so the mix has both cheap point lookups and the heavier
			// students-of-advisor scans — like real mixed serving traffic.
			if i%2 == 0 && len(d.Advisors) > 0 {
				k := (i / 2) * len(d.Advisors) / ((distinct + 1) / 2)
				queries[i] = dblp.QueryStudentsOfAdvisorID(d.Advisors[k])
			} else {
				queries[i] = dblp.QueryAdvisorOfStudent(d.Students[i*len(d.Students)/distinct])
			}
		}
		w := NewZipfWorkload(queries, opts.CacheRequests, 1.2, opts.Seed)

		// Untimed warmup over the distinct queries with caching suppressed:
		// fills the relation indexes and pools so the uncached leg is not
		// charged for one-off costs the cached leg would then dodge.
		for _, q := range w.Queries {
			if _, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true, DisableCache: true}); err != nil {
				return nil, err
			}
		}

		serve := func(disable bool) (time.Duration, []float64, []time.Duration, error) {
			var total time.Duration
			var probs []float64
			lat := make([]time.Duration, len(w.Requests))
			for i, k := range w.Requests {
				t0 := time.Now()
				rows, err := ix.Query(w.Queries[k], mvindex.IntersectOptions{CacheConscious: true, DisableCache: disable})
				el := time.Since(t0)
				if err != nil {
					return 0, nil, nil, err
				}
				total += el
				lat[i] = el
				for _, r := range rows {
					probs = append(probs, r.Prob)
				}
			}
			return total, probs, lat, nil
		}

		tOff, pOff, _, err := serve(true)
		if err != nil {
			return nil, err
		}

		row := []string{fmt.Sprint(n), fmt.Sprint(len(w.Requests)), fmt.Sprint(w.Distinct()),
			seconds(tOff), "-", "-", "-", "-", "-", "-", "-"}
		t.addSeries("domain", float64(n))
		t.addSeries("uncached", tOff.Seconds())

		if opts.Cache {
			ix.EnableCache(qcache.Options{})
			tOn, pOn, lat, err := serve(false)
			if err != nil {
				return nil, err
			}
			same := len(pOff) == len(pOn)
			if same {
				for i := range pOff {
					if math.Abs(pOff[i]-pOn[i]) > 1e-12 {
						same = false
						break
					}
				}
			}
			// Sequential replay: the first request for each distinct query is
			// the cold miss, every later one is a warm answer-cache hit.
			var cold, warm time.Duration
			var nCold, nWarm int
			seen := make([]bool, len(w.Queries))
			for i, k := range w.Requests {
				if seen[k] {
					warm += lat[i]
					nWarm++
				} else {
					seen[k] = true
					cold += lat[i]
					nCold++
				}
			}
			coldAvg := cold.Seconds() / float64(nCold) * 1e3
			warmAvg := coldAvg
			if nWarm > 0 {
				warmAvg = warm.Seconds() / float64(nWarm) * 1e3
			}
			st := ix.CacheStats().Answers
			hitRate := 0.0
			if st.Hits+st.Misses > 0 {
				hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			row[4] = seconds(tOn)
			row[5] = ratio(tOff, tOn)
			row[6] = fmt.Sprintf("%.4f", coldAvg)
			row[7] = fmt.Sprintf("%.4f", warmAvg)
			if warmAvg > 0 {
				row[8] = fmt.Sprintf("%.1fx", coldAvg/warmAvg)
			}
			row[9] = fmt.Sprintf("%.3f", hitRate)
			row[10] = fmt.Sprint(same)
			t.addSeries("cached", tOn.Seconds())
			t.addSeries("cold-miss-ms", coldAvg)
			t.addSeries("warm-hit-ms", warmAvg)
			t.addSeries("hit-rate", hitRate)
			ix.EnableCache(qcache.Options{Disable: true})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// cacheReport is the JSON shape of BENCH_cache.json.
type cacheReport struct {
	Requests int              `json:"requests"`
	Distinct int              `json:"distinct"`
	Rows     []cacheReportRow `json:"rows"`
}

type cacheReportRow struct {
	Domain       int     `json:"domain"`
	UncachedSec  float64 `json:"uncached_sec"`
	CachedSec    float64 `json:"cached_sec"`
	Speedup      float64 `json:"speedup"`
	ColdMissMs   float64 `json:"cold_miss_ms"`
	WarmHitMs    float64 `json:"warm_hit_ms"`
	WarmSpeedup  float64 `json:"warm_speedup"`
	AnswerHitPct float64 `json:"answer_hit_rate"`
}

// WriteCacheJSON renders the cache experiment's table as the BENCH_cache.json
// report consumed by CI and the README's numbers. It requires the cached leg
// (Options.Cache true).
func WriteCacheJSON(w io.Writer, t *Table, opts Options) error {
	if t.ID != "cache" {
		return fmt.Errorf("bench: WriteCacheJSON wants the cache table, got %q", t.ID)
	}
	if len(t.Series["cached"]) == 0 {
		return fmt.Errorf("bench: cache experiment ran without the cached leg (-cache=false); no report")
	}
	opts = opts.withDefaults()
	rep := cacheReport{Requests: opts.CacheRequests, Distinct: opts.CacheDistinct}
	for i := range t.Series["domain"] {
		off, on := t.Series["uncached"][i], t.Series["cached"][i]
		cold, warm := t.Series["cold-miss-ms"][i], t.Series["warm-hit-ms"][i]
		row := cacheReportRow{
			Domain:       int(t.Series["domain"][i]),
			UncachedSec:  off,
			CachedSec:    on,
			ColdMissMs:   cold,
			WarmHitMs:    warm,
			AnswerHitPct: t.Series["hit-rate"][i],
		}
		if on > 0 {
			row.Speedup = off / on
		}
		if warm > 0 {
			row.WarmSpeedup = cold / warm
		}
		rep.Rows = append(rep.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
