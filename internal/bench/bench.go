// Package bench contains one runner per table and figure of the paper's
// evaluation (Section 5). Each runner regenerates the same rows or series
// the paper reports, on the synthetic DBLP dataset; cmd/mvbench prints them
// and the root-level Go benchmarks wrap them.
//
// Absolute times differ from the paper's 2008-era hardware; the shapes the
// runners (and EXPERIMENTS.md) verify are: lineage grows linearly (Fig. 4),
// the MV-index answers in roughly constant time while MLN sampling grows
// (Figs. 5-6), OBDD size is linear in the domain (Fig. 7), concatenation
// beats synthesis by orders of magnitude at identical output (Fig. 8),
// CC-MVIntersect beats MVIntersect by a constant factor (Fig. 9), and all
// full-dataset queries answer in milliseconds (Figs. 10-11).
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/mvindex"
)

// Options configures the experiment sweeps.
type Options struct {
	// Domains is the aid-domain sweep of Figures 4-9 (paper: 1000..10000).
	Domains []int
	// FullAuthors is the "entire dataset" size of Figures 10-11 and the
	// running example (the paper used the full 1M-author DBLP; see DESIGN.md
	// for the scale substitution).
	FullAuthors int
	// Seed drives the deterministic generator.
	Seed int64
	// MCSatBurn and MCSatSamples bound the Alchemy-style sampler of
	// Figures 5-6.
	MCSatBurn, MCSatSamples int
	// Queries is the number of per-query measurements in Figures 10-11.
	Queries int
	// Parallelism is the worker count for the parallel compile/query
	// experiment and the fig8 mv-par column: 0 uses GOMAXPROCS, 1 is the
	// sequential reference.
	Parallelism int
	// Cache enables the cached leg of the cache experiment; false runs the
	// baseline-only ablation.
	Cache bool
	// CacheRequests and CacheDistinct shape the cache experiment's Zipf mix:
	// CacheRequests total requests over CacheDistinct distinct queries.
	CacheRequests, CacheDistinct int
	// ReorderMaxGrowth and ReorderRounds tune the sifting pass of the
	// reorder experiment (0 = obdd defaults).
	ReorderMaxGrowth float64
	ReorderRounds    int
}

// Defaults returns the sweep the paper ran: domains 1000..10000 and a large
// "full" dataset.
func Defaults() Options {
	var domains []int
	for d := 1000; d <= 10000; d += 1000 {
		domains = append(domains, d)
	}
	return Options{
		Domains:       domains,
		FullAuthors:   20000,
		Seed:          1,
		MCSatBurn:     50,
		MCSatSamples:  150,
		Queries:       10,
		Cache:         true,
		CacheRequests: 300,
		CacheDistinct: 24,
	}
}

// Small returns a fast configuration for tests and Go benchmarks.
func Small() Options {
	return Options{
		Domains:       []int{200, 400, 600},
		FullAuthors:   1500,
		Seed:          1,
		MCSatBurn:     10,
		MCSatSamples:  30,
		Queries:       5,
		Cache:         true,
		CacheRequests: 80,
		CacheDistinct: 8,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if len(o.Domains) == 0 {
		o.Domains = d.Domains
	}
	if o.FullAuthors == 0 {
		o.FullAuthors = d.FullAuthors
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.MCSatBurn == 0 {
		o.MCSatBurn = d.MCSatBurn
	}
	if o.MCSatSamples == 0 {
		o.MCSatSamples = d.MCSatSamples
	}
	if o.Queries == 0 {
		o.Queries = d.Queries
	}
	if o.CacheRequests == 0 {
		o.CacheRequests = d.CacheRequests
	}
	if o.CacheDistinct == 0 {
		o.CacheDistinct = d.CacheDistinct
	}
	return o
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string

	// Series holds the numeric columns keyed by column name, for
	// programmatic shape checks.
	Series map[string][]float64
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// FprintCSV renders the table as CSV (header + rows).
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (t *Table) addSeries(col string, v float64) {
	if t.Series == nil {
		t.Series = map[string][]float64{}
	}
	t.Series[col] = append(t.Series[col], v)
}

func seconds(d time.Duration) string { return fmt.Sprintf("%.6f", d.Seconds()) }

// pipeline builds dataset → MVDB → translation for a domain size and view
// subset ("12" = V1+V2, "123" = all, "2" = V2 only).
func pipeline(n int, seed int64, views string) (*dblp.Dataset, *core.MVDB, *core.Translation, error) {
	d, err := dblp.Generate(dblp.Config{NumAuthors: n, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	var sel []*core.MarkoView
	for _, c := range views {
		switch c {
		case '1':
			sel = append(sel, d.V1)
		case '2':
			sel = append(sel, d.V2)
		case '3':
			sel = append(sel, d.V3)
		}
	}
	m, err := d.MVDB(sel...)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return d, m, tr, nil
}

// buildIndex compiles the MV-index (forcing W's OBDD first).
func buildIndex(tr *core.Translation) (*mvindex.Index, error) {
	return mvindex.Build(tr)
}
