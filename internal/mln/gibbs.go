package mln

import (
	"fmt"
	"math"
	"math/rand"

	"mvdb/internal/lineage"
)

// GibbsOptions configures the Gibbs sampler.
type GibbsOptions struct {
	Burn    int   // discarded initial sweeps
	Samples int   // retained sweeps
	Seed    int64 // RNG seed (deterministic runs)
}

// DefaultGibbs is a reasonable default configuration.
var DefaultGibbs = GibbsOptions{Burn: 200, Samples: 2000, Seed: 1}

// MarginalGibbs estimates P(q) by Gibbs sampling. Each sweep resamples every
// variable from its full conditional. Hard constraints are respected by
// rejecting flips into zero-weight worlds; the initial state is found with
// the SampleSAT routine over the hard constraints.
func (n *Network) MarginalGibbs(q lineage.Formula, opt GibbsOptions) (float64, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	state, err := n.initialState(rng)
	if err != nil {
		return 0, err
	}
	touching := n.varFeatureIndex()
	assign := func(v int) bool { return state[v] }

	hits, total := 0, 0
	sweeps := opt.Burn + opt.Samples
	for it := 0; it < sweeps; it++ {
		for v := 1; v <= n.NumVars; v++ {
			// Weight ratio of the two states differing at v, over the
			// features touching v only.
			wTrue, wFalse := 1.0, 1.0
			old := state[v]
			for _, fi := range touching[v] {
				f := n.Features[fi]
				state[v] = true
				satT := f.F.Eval(assign)
				state[v] = false
				satF := f.F.Eval(assign)
				wTrue *= featureFactor(f.Weight, satT)
				wFalse *= featureFactor(f.Weight, satF)
			}
			state[v] = old
			switch {
			case wTrue == 0 && wFalse == 0:
				// Both sides violate a hard constraint locally: keep state.
			case wTrue+wFalse == 0:
				state[v] = old
			default:
				state[v] = rng.Float64()*(wTrue+wFalse) < wTrue
			}
		}
		if it >= opt.Burn {
			total++
			if q.Eval(assign) {
				hits++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("mln: no Gibbs samples collected")
	}
	return float64(hits) / float64(total), nil
}

// featureFactor is the multiplicative contribution of one feature.
func featureFactor(w float64, sat bool) float64 {
	switch {
	case math.IsInf(w, 1):
		if sat {
			return 1
		}
		return 0
	case w == 0:
		if sat {
			return 0
		}
		return 1
	case sat:
		return w
	}
	return 1
}

// varFeatureIndex maps each variable to the features touching it.
func (n *Network) varFeatureIndex() [][]int {
	idx := make([][]int, n.NumVars+1)
	for fi := range n.Features {
		for _, v := range n.vars[fi] {
			idx[v] = append(idx[v], fi)
		}
	}
	return idx
}

// initialState finds an assignment satisfying all hard constraints.
func (n *Network) initialState(rng *rand.Rand) ([]bool, error) {
	var hard []Feature
	for _, f := range n.normalized() {
		if math.IsInf(f.Weight, 1) {
			hard = append(hard, f)
		}
	}
	state := make([]bool, n.NumVars+1)
	for v := 1; v <= n.NumVars; v++ {
		state[v] = rng.Intn(2) == 0
	}
	if len(hard) == 0 {
		return state, nil
	}
	if ok := sampleSAT(hard, state, rng, 20*(n.NumVars+len(hard))+1000); !ok {
		return nil, fmt.Errorf("mln: could not find a state satisfying the %d hard constraints", len(hard))
	}
	return state, nil
}
