package mln

import (
	"fmt"
	"math"
	"math/rand"
)

// MAPExact returns a most likely world (argmax of Φ) by exhaustive
// enumeration, together with its weight. NumVars must not exceed 30. The
// paper only evaluates marginal inference but notes the techniques
// "easily generalize to solve the MAP inference problem as well"
// (Section 2.3); this is the exact reference implementation.
func (n *Network) MAPExact() ([]bool, float64, error) {
	if n.NumVars > 30 {
		return nil, 0, fmt.Errorf("mln: exact MAP over %d variables", n.NumVars)
	}
	bestMask, bestW := -1, -1.0
	for mask := 0; mask < 1<<uint(n.NumVars); mask++ {
		w := n.WorldWeight(func(v int) bool { return mask&(1<<uint(v-1)) != 0 })
		if w > bestW {
			bestW, bestMask = w, mask
		}
	}
	if bestMask < 0 || bestW == 0 {
		return nil, 0, fmt.Errorf("mln: no world with positive weight (inconsistent hard constraints)")
	}
	state := make([]bool, n.NumVars+1)
	for v := 1; v <= n.NumVars; v++ {
		state[v] = bestMask&(1<<uint(v-1)) != 0
	}
	return state, bestW, nil
}

// MAPOptions configures the approximate MAP search.
type MAPOptions struct {
	Restarts int     // independent restarts (default 5)
	Flips    int     // flips per restart (default 50 per variable)
	Noise    float64 // probability of a random (non-greedy) flip (default 0.2)
	Seed     int64
}

// MAPWalk approximates the MAP world with a MaxWalkSAT-style local search
// over log-weights: greedy flips that increase the world weight, mixed with
// noise flips, restarted several times; hard constraints are enforced by
// starting from a SampleSAT state and rejecting violating flips.
func (n *Network) MAPWalk(opt MAPOptions) ([]bool, float64, error) {
	if opt.Restarts <= 0 {
		opt.Restarts = 5
	}
	if opt.Flips <= 0 {
		opt.Flips = 50 * (n.NumVars + 1)
	}
	if opt.Noise == 0 {
		opt.Noise = 0.2
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	touching := n.varFeatureIndex()

	var best []bool
	bestLogW := math.Inf(-1)
	for restart := 0; restart < opt.Restarts; restart++ {
		state, err := n.initialState(rng)
		if err != nil {
			return nil, 0, err
		}
		assign := func(v int) bool { return state[v] }
		logW := n.logWeight(assign)
		if logW > bestLogW {
			bestLogW = logW
			best = append([]bool(nil), state...)
		}
		for flip := 0; flip < opt.Flips; flip++ {
			v := 1 + rng.Intn(n.NumVars)
			delta, feasible := n.flipDelta(state, v, touching)
			if !feasible {
				continue
			}
			if delta > 0 || rng.Float64() < opt.Noise {
				state[v] = !state[v]
				logW += delta
				// Track the best state seen anywhere on the walk, not the
				// (possibly noise-degraded) final state.
				if logW > bestLogW {
					bestLogW = logW
					best = append([]bool(nil), state...)
				}
			}
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("mln: MAP search found no feasible world")
	}
	return best, math.Exp(bestLogW), nil
}

// logWeight computes log Φ of the current state (-Inf when a hard
// constraint is violated).
func (n *Network) logWeight(assign func(v int) bool) float64 {
	logW := 0.0
	for _, f := range n.Features {
		sat := f.F.Eval(assign)
		switch {
		case math.IsInf(f.Weight, 1):
			if !sat {
				return math.Inf(-1)
			}
		case f.Weight == 0:
			if sat {
				return math.Inf(-1)
			}
		case sat:
			logW += math.Log(f.Weight)
		}
	}
	return logW
}

// flipDelta returns the change in log Φ from flipping v, and whether the
// flip keeps all hard constraints satisfied.
func (n *Network) flipDelta(state []bool, v int, touching [][]int) (float64, bool) {
	assign := func(x int) bool { return state[x] }
	delta := 0.0
	state[v] = !state[v]
	feasible := true
	for _, fi := range touching[v] {
		f := n.Features[fi]
		after := f.F.Eval(assign)
		state[v] = !state[v]
		before := f.F.Eval(assign)
		state[v] = !state[v]
		if after == before {
			continue
		}
		switch {
		case math.IsInf(f.Weight, 1):
			if !after {
				feasible = false
			}
		case f.Weight == 0:
			if after {
				feasible = false
			}
		case after:
			delta += math.Log(f.Weight)
		default:
			delta -= math.Log(f.Weight)
		}
	}
	state[v] = !state[v]
	return delta, feasible
}
