package mln

import (
	"fmt"
	"math"
	"math/rand"
)

// LearnOptions configures generative weight learning.
type LearnOptions struct {
	Iterations   int     // gradient steps (default 200)
	LearningRate float64 // step size on log-weights (default 0.5)
	MinLogW      float64 // clamp for log-weights (default ±8)
}

// LearnWeights fits the soft feature weights to observed worlds by
// gradient ascent on the exact log-likelihood. The gradient of the average
// log-likelihood with respect to θ_k = log w_k is the classic
//
//	∂ℓ/∂θ_k = n̄_k(data) − E_w[n_k]
//
// (observed minus expected feature counts). Expectations are computed by
// exhaustive enumeration, so this is for small networks — it is the
// learning counterpart the paper delegates to MLN machinery ("its weights
// can be learned as in MLNs", Section 1). Hard features (weight 0 or +Inf)
// are kept fixed. It returns a new Network with the learned weights.
func (n *Network) LearnWeights(data [][]bool, opts LearnOptions) (*Network, error) {
	if n.NumVars > 20 {
		return nil, fmt.Errorf("mln: exact learning over %d variables", n.NumVars)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("mln: no training worlds")
	}
	for i, w := range data {
		if len(w) != n.NumVars+1 {
			return nil, fmt.Errorf("mln: training world %d has length %d, want %d", i, len(w), n.NumVars+1)
		}
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 200
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.5
	}
	if opts.MinLogW <= 0 {
		opts.MinLogW = 8
	}

	// Observed average feature counts.
	observed := make([]float64, len(n.Features))
	for _, world := range data {
		assign := func(v int) bool { return world[v] }
		for k, f := range n.Features {
			if isHard(f.Weight) {
				continue
			}
			if f.F.Eval(assign) {
				observed[k]++
			}
		}
	}
	for k := range observed {
		observed[k] /= float64(len(data))
	}

	// Gradient ascent on log-weights.
	theta := make([]float64, len(n.Features))
	cur := make([]Feature, len(n.Features))
	copy(cur, n.Features)
	for k, f := range n.Features {
		if !isHard(f.Weight) {
			theta[k] = 0 // start at w = 1 (indifference)
			cur[k].Weight = 1
		}
	}
	work := &Network{NumVars: n.NumVars, Features: cur, vars: n.vars}
	for it := 0; it < opts.Iterations; it++ {
		expected, err := work.expectations()
		if err != nil {
			return nil, err
		}
		for k, f := range n.Features {
			if isHard(f.Weight) {
				continue
			}
			theta[k] += opts.LearningRate * (observed[k] - expected[k])
			if theta[k] > opts.MinLogW {
				theta[k] = opts.MinLogW
			}
			if theta[k] < -opts.MinLogW {
				theta[k] = -opts.MinLogW
			}
			cur[k].Weight = math.Exp(theta[k])
		}
	}
	out := make([]Feature, len(cur))
	copy(out, cur)
	return New(n.NumVars, out)
}

func isHard(w float64) bool { return w == 0 || math.IsInf(w, 1) }

// expectations computes E[n_k] for every feature in a single enumeration
// pass over all worlds.
func (n *Network) expectations() ([]float64, error) {
	z := 0.0
	exp := make([]float64, len(n.Features))
	sat := make([]bool, len(n.Features))
	for mask := 0; mask < 1<<uint(n.NumVars); mask++ {
		assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
		w := 1.0
		for k, f := range n.Features {
			sat[k] = f.F.Eval(assign)
			w *= featureFactor(f.Weight, sat[k])
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		z += w
		for k := range n.Features {
			if sat[k] {
				exp[k] += w
			}
		}
	}
	if z == 0 {
		return nil, fmt.Errorf("mln: partition function is zero")
	}
	for k := range exp {
		exp[k] /= z
	}
	return exp, nil
}

// SampleWorlds draws independent worlds from the exact distribution
// (enumeration-based inverse CDF), for testing and for generating training
// data.
func (n *Network) SampleWorlds(count int, seed int64) ([][]bool, error) {
	if n.NumVars > 20 {
		return nil, fmt.Errorf("mln: exact sampling over %d variables", n.NumVars)
	}
	total := 1 << uint(n.NumVars)
	weights := make([]float64, total)
	z := 0.0
	for mask := 0; mask < total; mask++ {
		w := n.WorldWeight(func(v int) bool { return mask&(1<<uint(v-1)) != 0 })
		weights[mask] = w
		z += w
	}
	if z == 0 {
		return nil, fmt.Errorf("mln: partition function is zero")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bool, count)
	for i := range out {
		r := rng.Float64() * z
		acc := 0.0
		mask := total - 1
		for m, w := range weights {
			acc += w
			if acc >= r {
				mask = m
				break
			}
		}
		world := make([]bool, n.NumVars+1)
		for v := 1; v <= n.NumVars; v++ {
			world[v] = mask&(1<<uint(v-1)) != 0
		}
		out[i] = world
	}
	return out, nil
}
