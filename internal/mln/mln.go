// Package mln implements Markov Logic Networks over ground Boolean features
// (Section 2.3 of the paper): a set of weighted Boolean formulas over tuple
// variables. The weight of a world is the product of the weights of the
// features it satisfies; probabilities are weights normalized by the
// partition function Z.
//
// Three inference methods are provided: exact enumeration (ground truth for
// small networks), Gibbs sampling, and MC-SAT (slice sampling with a
// SampleSAT inner loop) — the algorithm family used by Alchemy, the system
// the paper compares against in Section 5.1.
//
// Weight conventions (multiplicative, as in the paper):
//   - w > 1: worlds satisfying the feature are favoured;
//   - w = 1: indifferent;
//   - 0 < w < 1: disfavoured;
//   - w = 0: hard constraint — the feature must be FALSE;
//   - w = +Inf: hard constraint — the feature must be TRUE.
package mln

import (
	"fmt"
	"math"

	"mvdb/internal/lineage"
)

// Feature is a weighted ground formula.
type Feature struct {
	F      lineage.Formula
	Weight float64
}

// Network is a ground Markov Logic Network over variables 1..NumVars.
type Network struct {
	NumVars  int
	Features []Feature

	vars [][]int // per-feature sorted support, computed lazily
}

// New builds a network, validating weights (negative weights are invalid in
// an MLN; note this is about feature weights, not the translated tuple
// probabilities, which may well be negative).
func New(numVars int, features []Feature) (*Network, error) {
	for i, f := range features {
		if f.Weight < 0 || math.IsNaN(f.Weight) {
			return nil, fmt.Errorf("mln: feature %d has invalid weight %v", i, f.Weight)
		}
		if f.F == nil {
			return nil, fmt.Errorf("mln: feature %d has nil formula", i)
		}
	}
	n := &Network{NumVars: numVars, Features: features}
	n.vars = make([][]int, len(features))
	for i, f := range features {
		n.vars[i] = lineage.FormulaVars(f.F)
		for _, v := range n.vars[i] {
			if v < 1 || v > numVars {
				return nil, fmt.Errorf("mln: feature %d uses variable %d outside 1..%d", i, v, numVars)
			}
		}
	}
	return n, nil
}

// FeatureVars returns the support of feature i.
func (n *Network) FeatureVars(i int) []int { return n.vars[i] }

// WorldWeight computes Φ(I) for the world given by the assignment. Hard
// constraints zero out violating worlds.
func (n *Network) WorldWeight(assign func(v int) bool) float64 {
	w := 1.0
	for _, f := range n.Features {
		sat := f.F.Eval(assign)
		switch {
		case math.IsInf(f.Weight, 1):
			if !sat {
				return 0
			}
		case f.Weight == 0:
			if sat {
				return 0
			}
		case sat:
			w *= f.Weight
		}
	}
	return w
}

// Partition computes Z by enumerating all 2^NumVars worlds. Networks over
// more than 30 variables are refused with an error rather than enumerated.
func (n *Network) Partition() (float64, error) {
	z, _, err := n.enumerate(nil)
	return z, err
}

// MarginalExact computes P(q) = Φ(q)/Z by enumeration (ground truth).
func (n *Network) MarginalExact(q lineage.Formula) (float64, error) {
	z, phiQ, err := n.enumerate(q)
	if err != nil {
		return 0, err
	}
	if z == 0 {
		return 0, fmt.Errorf("mln: partition function is zero (inconsistent hard constraints)")
	}
	return phiQ / z, nil
}

func (n *Network) enumerate(q lineage.Formula) (z, phiQ float64, err error) {
	if n.NumVars > 30 {
		return 0, 0, fmt.Errorf("mln: exact enumeration over %d variables (max 30)", n.NumVars)
	}
	for mask := 0; mask < 1<<uint(n.NumVars); mask++ {
		assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
		w := n.WorldWeight(assign)
		z += w
		if q != nil && w != 0 && q.Eval(assign) {
			phiQ += w
		}
	}
	return z, phiQ, nil
}

// normalized returns the features with weights folded into the ≥1 range:
// a feature (F, w) with 0 < w < 1 is equivalent to (¬F, 1/w) up to a global
// constant, which cancels in probabilities. Hard constraints map to
// must-hold constraints: (F, ∞) stays, (F, 0) becomes (¬F, ∞).
func (n *Network) normalized() []Feature {
	out := make([]Feature, 0, len(n.Features))
	for _, f := range n.Features {
		switch {
		case f.Weight == 0:
			out = append(out, Feature{F: lineage.Not{F: f.F}, Weight: math.Inf(1)})
		case f.Weight < 1:
			out = append(out, Feature{F: lineage.Not{F: f.F}, Weight: 1 / f.Weight})
		default:
			out = append(out, f)
		}
	}
	return out
}
