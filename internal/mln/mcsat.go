package mln

import (
	"fmt"
	"math"
	"math/rand"

	"mvdb/internal/lineage"
)

// MCSatOptions configures the MC-SAT sampler (Poon & Domingos 2006), the
// algorithm Alchemy runs for marginal inference.
type MCSatOptions struct {
	Burn     int     // discarded initial samples
	Samples  int     // retained samples
	Seed     int64   // RNG seed
	MaxFlips int     // SampleSAT flip budget per iteration (0: automatic)
	Noise    float64 // WalkSAT noise probability (0: default 0.5)
}

// DefaultMCSat is a reasonable default configuration.
var DefaultMCSat = MCSatOptions{Burn: 100, Samples: 1000, Seed: 1}

// MarginalMCSat estimates P(q) with MC-SAT: at every iteration each feature
// currently satisfied is, with probability 1 - 1/w, added to the constraint
// set M (after normalizing weights into the ≥ 1 range), and the next state is
// drawn near-uniformly from the assignments satisfying M via SampleSAT.
func (n *Network) MarginalMCSat(q lineage.Formula, opt MCSatOptions) (float64, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.MaxFlips == 0 {
		opt.MaxFlips = 20*(n.NumVars+len(n.Features)) + 1000
	}
	if opt.Noise == 0 {
		opt.Noise = 0.5
	}
	norm := n.normalized()
	var hard []Feature
	for _, f := range norm {
		if math.IsInf(f.Weight, 1) {
			hard = append(hard, f)
		}
	}
	state, err := n.initialState(rng)
	if err != nil {
		return 0, err
	}
	assign := func(v int) bool { return state[v] }

	hits, total := 0, 0
	iters := opt.Burn + opt.Samples
	m := make([]Feature, 0, len(norm))
	for it := 0; it < iters; it++ {
		// Select the constraint set M.
		m = m[:0]
		m = append(m, hard...)
		for _, f := range norm {
			if math.IsInf(f.Weight, 1) {
				continue
			}
			if f.F.Eval(assign) && rng.Float64() < 1-1/f.Weight {
				m = append(m, f)
			}
		}
		// Sample a new state satisfying M, starting from a perturbed copy of
		// the current state (SampleSAT).
		next := make([]bool, len(state))
		copy(next, state)
		for v := 1; v <= n.NumVars; v++ {
			if rng.Float64() < 0.1 {
				next[v] = rng.Intn(2) == 0
			}
		}
		if sampleSATNoise(m, next, rng, opt.MaxFlips, opt.Noise) {
			uniformize(m, next, rng)
			copy(state, next)
		}
		// If SampleSAT failed, keep the previous state (it satisfies M by
		// construction, since M only contains formulas satisfied by it).
		if it >= opt.Burn {
			total++
			if q.Eval(assign) {
				hits++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("mln: no MC-SAT samples collected")
	}
	return float64(hits) / float64(total), nil
}

// sampleSAT drives the state to satisfy all constraints with default noise.
func sampleSAT(constraints []Feature, state []bool, rng *rand.Rand, maxFlips int) bool {
	return sampleSATNoise(constraints, state, rng, maxFlips, 0.5)
}

// uniformize performs a Metropolis random walk over the solution space of
// the constraints: repeatedly flip a random variable and keep the flip only
// if all constraints remain satisfied. This counteracts SampleSAT's bias
// toward solutions near its starting state, pushing the per-iteration sample
// closer to the uniform distribution MC-SAT requires.
func uniformize(constraints []Feature, state []bool, rng *rand.Rand) {
	if len(state) <= 1 {
		return
	}
	assign := func(v int) bool { return state[v] }
	touching := map[int][]int{}
	for i, c := range constraints {
		for _, v := range lineage.FormulaVars(c.F) {
			touching[v] = append(touching[v], i)
		}
	}
	steps := 4 * (len(state) - 1)
	for s := 0; s < steps; s++ {
		v := 1 + rng.Intn(len(state)-1)
		state[v] = !state[v]
		ok := true
		for _, ci := range touching[v] {
			if !constraints[ci].F.Eval(assign) {
				ok = false
				break
			}
		}
		if !ok {
			state[v] = !state[v]
		}
	}
}

// sampleSATNoise is a WalkSAT-style local search over arbitrary Boolean
// formulas: pick an unsatisfied constraint, then flip either a random
// variable from its support (with probability noise) or the support variable
// whose flip leaves the fewest constraints unsatisfied.
func sampleSATNoise(constraints []Feature, state []bool, rng *rand.Rand, maxFlips int, noise float64) bool {
	if len(constraints) == 0 {
		return true
	}
	assign := func(v int) bool { return state[v] }
	supports := make([][]int, len(constraints))
	touching := map[int][]int{} // variable -> constraints containing it
	for i, c := range constraints {
		supports[i] = lineage.FormulaVars(c.F)
		for _, v := range supports[i] {
			touching[v] = append(touching[v], i)
		}
	}
	// Incrementally maintained set of unsatisfied constraints: a flip only
	// affects the constraints touching the flipped variable.
	isUnsat := make([]bool, len(constraints))
	var unsatList []int
	unsatPos := make([]int, len(constraints))
	markUnsat := func(ci int) {
		if !isUnsat[ci] {
			isUnsat[ci] = true
			unsatPos[ci] = len(unsatList)
			unsatList = append(unsatList, ci)
		}
	}
	markSat := func(ci int) {
		if isUnsat[ci] {
			isUnsat[ci] = false
			last := unsatList[len(unsatList)-1]
			pos := unsatPos[ci]
			unsatList[pos] = last
			unsatPos[last] = pos
			unsatList = unsatList[:len(unsatList)-1]
		}
	}
	for i, c := range constraints {
		if !c.F.Eval(assign) {
			markUnsat(i)
		}
	}
	doFlip := func(v int) {
		state[v] = !state[v]
		for _, ci := range touching[v] {
			if constraints[ci].F.Eval(assign) {
				markSat(ci)
			} else {
				markUnsat(ci)
			}
		}
	}
	// cost of flipping v, counted over the constraints touching v only: the
	// change in their unsatisfied count (other constraints are unaffected).
	flipCost := func(v int) int {
		before := 0
		for _, ci := range touching[v] {
			if isUnsat[ci] {
				before++
			}
		}
		state[v] = !state[v]
		after := 0
		for _, ci := range touching[v] {
			if !constraints[ci].F.Eval(assign) {
				after++
			}
		}
		state[v] = !state[v]
		return after - before
	}
	for flip := 0; flip < maxFlips; flip++ {
		if len(unsatList) == 0 {
			return true
		}
		ci := unsatList[rng.Intn(len(unsatList))]
		sup := supports[ci]
		if len(sup) == 0 {
			return false // constant-false constraint: unsatisfiable
		}
		var pick int
		if rng.Float64() < noise {
			pick = sup[rng.Intn(len(sup))]
		} else {
			best, bestCost := sup[0], math.MaxInt32
			for _, v := range sup {
				if cost := flipCost(v); cost < bestCost {
					best, bestCost = v, cost
				}
			}
			pick = best
		}
		doFlip(pick)
	}
	return len(unsatList) == 0
}
