package mln

import (
	"math"
	"testing"

	"mvdb/internal/lineage"
)

func TestLearnRecoversMarginals(t *testing.T) {
	// Source network: two tuples with a negative correlation (Example 1 of
	// the paper with w = 0.25).
	src, err := New(2, []Feature{
		{F: lineage.Var(1), Weight: 2},
		{F: lineage.Var(2), Weight: 3},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := src.SampleWorlds(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := src.LearnWeights(data, LearnOptions{Iterations: 300, LearningRate: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Compare model marginals, which are identifiable.
	for _, q := range []lineage.Formula{
		lineage.Var(1),
		lineage.Var(2),
		lineage.And{lineage.Var(1), lineage.Var(2)},
	} {
		want, _ := src.MarginalExact(q)
		got, _ := learned.MarginalExact(q)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("marginal of %v: learned %v source %v", q, got, want)
		}
	}
}

func TestLearnKeepsHardFeatures(t *testing.T) {
	src, _ := New(2, []Feature{
		{F: lineage.Var(1), Weight: 2},
		{F: lineage.Var(2), Weight: 2},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0}, // hard
	})
	data, err := src.SampleWorlds(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := src.LearnWeights(data, LearnOptions{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if learned.Features[2].Weight != 0 {
		t.Errorf("hard feature weight changed to %v", learned.Features[2].Weight)
	}
	p, _ := learned.MarginalExact(lineage.And{lineage.Var(1), lineage.Var(2)})
	if p != 0 {
		t.Errorf("hard constraint violated after learning: %v", p)
	}
}

func TestLearnErrors(t *testing.T) {
	n, _ := New(1, []Feature{{F: lineage.Var(1), Weight: 1}})
	if _, err := n.LearnWeights(nil, LearnOptions{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := n.LearnWeights([][]bool{{true}}, LearnOptions{}); err == nil {
		t.Error("wrong world length accepted")
	}
}

func TestSampleWorldsDistribution(t *testing.T) {
	n, _ := New(2, []Feature{
		{F: lineage.Var(1), Weight: 3},
		{F: lineage.Var(2), Weight: 1},
	})
	worlds, err := n.SampleWorlds(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := 0, 0
	for _, w := range worlds {
		if w[1] {
			c1++
		}
		if w[2] {
			c2++
		}
	}
	p1 := float64(c1) / float64(len(worlds))
	p2 := float64(c2) / float64(len(worlds))
	if math.Abs(p1-0.75) > 0.02 || math.Abs(p2-0.5) > 0.02 {
		t.Errorf("empirical marginals %v, %v", p1, p2)
	}
}
