package mln

import (
	"math"
	"math/rand"
	"testing"

	"mvdb/internal/lineage"
)

func TestWorldWeightExample1(t *testing.T) {
	// Example 1 of the paper: R(a)=x1 (w1), S(a)=x2 (w2), view (x1∧x2, w).
	w1, w2, w := 2.0, 3.0, 0.5
	n, err := New(2, []Feature{
		{F: lineage.Var(1), Weight: w1},
		{F: lineage.Var(2), Weight: w2},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worlds: {} -> 1, {x1} -> w1, {x2} -> w2, {x1,x2} -> w*w1*w2.
	wants := map[int]float64{0: 1, 1: w1, 2: w2, 3: w * w1 * w2}
	for mask, want := range wants {
		got := n.WorldWeight(func(v int) bool { return mask&(1<<uint(v-1)) != 0 })
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Φ(%b) = %v want %v", mask, got, want)
		}
	}
	if z, err := n.Partition(); err != nil {
		t.Fatal(err)
	} else if math.Abs(z-(1+w1+w2+w*w1*w2)) > 1e-12 {
		t.Errorf("Z = %v", z)
	}
	// P(x1 ∨ x2) = (w1 + w2 + w w1 w2) / Z (Section 3.1).
	q := lineage.Or_{lineage.Var(1), lineage.Var(2)}
	want := (w1 + w2 + w*w1*w2) / (1 + w1 + w2 + w*w1*w2)
	got, err := n.MarginalExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v want %v", got, want)
	}
}

func TestHardConstraints(t *testing.T) {
	// Feature (x1 ∧ x2, 0): the two tuples are exclusive.
	n, err := New(2, []Feature{
		{F: lineage.Var(1), Weight: 1},
		{F: lineage.Var(2), Weight: 1},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worlds {}, {x1}, {x2} have weight 1; {x1,x2} has weight 0.
	if z, err := n.Partition(); err != nil {
		t.Fatal(err)
	} else if math.Abs(z-3) > 1e-12 {
		t.Errorf("Z = %v", z)
	}
	p, err := n.MarginalExact(lineage.And{lineage.Var(1), lineage.Var(2)})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("P(x1∧x2) = %v want 0", p)
	}
	// Must-hold constraint.
	n2, _ := New(1, []Feature{{F: lineage.Var(1), Weight: math.Inf(1)}})
	p, err = n2.MarginalExact(lineage.Var(1))
	if err != nil || p != 1 {
		t.Errorf("P = %v, %v; want 1", p, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, []Feature{{F: lineage.Var(1), Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(1, []Feature{{F: nil, Weight: 1}}); err == nil {
		t.Error("nil formula accepted")
	}
	if _, err := New(1, []Feature{{F: lineage.Var(5), Weight: 1}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := New(1, []Feature{{F: lineage.Var(1), Weight: math.NaN()}}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestInconsistentHardConstraints(t *testing.T) {
	n, _ := New(1, []Feature{
		{F: lineage.Var(1), Weight: math.Inf(1)},
		{F: lineage.Var(1), Weight: 0},
	})
	if _, err := n.MarginalExact(lineage.Var(1)); err == nil {
		t.Error("inconsistent constraints: expected error")
	}
}

// randomNetwork builds a small random MLN with soft features only.
func randomNetwork(rng *rand.Rand, nv int) *Network {
	nf := 2 + rng.Intn(4)
	feats := make([]Feature, nf)
	for i := range feats {
		k := 1 + rng.Intn(3)
		lits := make([]lineage.Formula, k)
		for j := range lits {
			v := lineage.Var(1 + rng.Intn(nv))
			if rng.Intn(3) == 0 {
				lits[j] = lineage.Not{F: v}
			} else {
				lits[j] = v
			}
		}
		feats[i] = Feature{F: lineage.And(lits), Weight: 0.25 + rng.Float64()*4}
	}
	n, err := New(nv, feats)
	if err != nil {
		panic(err)
	}
	return n
}

func TestGibbsConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		nv := 3 + rng.Intn(3)
		n := randomNetwork(rng, nv)
		q := lineage.Var(1 + rng.Intn(nv))
		want, err := n.MarginalExact(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.MarginalGibbs(q, GibbsOptions{Burn: 500, Samples: 20000, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05 {
			t.Errorf("trial %d: Gibbs = %v exact = %v", trial, got, want)
		}
	}
}

func TestMCSatConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 5; trial++ {
		nv := 3 + rng.Intn(3)
		n := randomNetwork(rng, nv)
		q := lineage.Var(1 + rng.Intn(nv))
		want, err := n.MarginalExact(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.MarginalMCSat(q, MCSatOptions{Burn: 500, Samples: 20000, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.07 {
			t.Errorf("trial %d: MC-SAT = %v exact = %v", trial, got, want)
		}
	}
}

func TestMCSatWithHardConstraints(t *testing.T) {
	// x1 and x2 exclusive, both favoured: P(x1) should match exact.
	n, _ := New(2, []Feature{
		{F: lineage.Var(1), Weight: 3},
		{F: lineage.Var(2), Weight: 3},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0},
	})
	want, _ := n.MarginalExact(lineage.Var(1))
	got, err := n.MarginalMCSat(lineage.Var(1), MCSatOptions{Burn: 500, Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Errorf("MC-SAT = %v exact = %v", got, want)
	}
	gotG, err := n.MarginalGibbs(lineage.Var(1), GibbsOptions{Burn: 500, Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotG-want) > 0.05 {
		t.Errorf("Gibbs = %v exact = %v", gotG, want)
	}
}

func TestNormalizedWeights(t *testing.T) {
	n, _ := New(1, []Feature{{F: lineage.Var(1), Weight: 0.25}})
	norm := n.normalized()
	if len(norm) != 1 || norm[0].Weight != 4 {
		t.Fatalf("normalized = %+v", norm)
	}
	// ¬x1 with weight 4 must give the same distribution as x1 with 0.25:
	// P(x1) = 0.25/(1+0.25) = 0.2.
	want, _ := n.MarginalExact(lineage.Var(1))
	n2, _ := New(1, []Feature{norm[0]})
	got, _ := n2.MarginalExact(lineage.Var(1))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("normalization changed the distribution: %v vs %v", got, want)
	}
}

func TestSampleSATUnsatisfiable(t *testing.T) {
	n, _ := New(1, []Feature{
		{F: lineage.Var(1), Weight: math.Inf(1)},
		{F: lineage.Not{F: lineage.Var(1)}, Weight: math.Inf(1)},
	})
	if _, err := n.MarginalMCSat(lineage.Var(1), MCSatOptions{Burn: 1, Samples: 10, Seed: 1, MaxFlips: 200}); err == nil {
		t.Error("unsatisfiable hard constraints: expected error")
	}
}

func TestTupleIndependentSpecialCase(t *testing.T) {
	// Section 2.3 "Tuple-Independent Databases Revisited": an MLN with only
	// single-tuple features is a tuple-independent database with
	// p_i = w_i / (1 + w_i).
	n, _ := New(2, []Feature{
		{F: lineage.Var(1), Weight: 3},
		{F: lineage.Var(2), Weight: 1},
	})
	p1, _ := n.MarginalExact(lineage.Var(1))
	p2, _ := n.MarginalExact(lineage.Var(2))
	if math.Abs(p1-0.75) > 1e-12 || math.Abs(p2-0.5) > 1e-12 {
		t.Errorf("p1=%v p2=%v", p1, p2)
	}
	// And independence: P(x1 ∧ x2) = p1 p2.
	p12, _ := n.MarginalExact(lineage.And{lineage.Var(1), lineage.Var(2)})
	if math.Abs(p12-0.75*0.5) > 1e-12 {
		t.Errorf("p12=%v", p12)
	}
}

func TestMAPExact(t *testing.T) {
	// x1 strongly favoured, x2 disfavoured, exclusivity constraint.
	n, _ := New(2, []Feature{
		{F: lineage.Var(1), Weight: 5},
		{F: lineage.Var(2), Weight: 0.1},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0},
	})
	state, w, err := MAPExact2(n)
	if err != nil {
		t.Fatal(err)
	}
	if !state[1] || state[2] {
		t.Errorf("MAP state = %v", state)
	}
	if math.Abs(w-5) > 1e-12 {
		t.Errorf("MAP weight = %v want 5", w)
	}
}

// MAPExact2 adapts to the (state, weight, err) signature for tests.
func MAPExact2(n *Network) ([]bool, float64, error) { return n.MAPExact() }

func TestMAPWalkMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 4+rng.Intn(3))
		_, wantW, err := n.MAPExact()
		if err != nil {
			t.Fatal(err)
		}
		_, gotW, err := n.MAPWalk(MAPOptions{Seed: int64(trial), Restarts: 10})
		if err != nil {
			t.Fatal(err)
		}
		// MaxWalkSAT is approximate; require it to find a world within 1% of
		// the optimum weight on these tiny networks.
		if gotW < wantW*0.99 {
			t.Errorf("trial %d: MAPWalk weight %v < exact %v", trial, gotW, wantW)
		}
	}
}

func TestMAPWalkRespectsHardConstraints(t *testing.T) {
	n, _ := New(3, []Feature{
		{F: lineage.Var(1), Weight: 10},
		{F: lineage.Var(2), Weight: 10},
		{F: lineage.And{lineage.Var(1), lineage.Var(2)}, Weight: 0},
		{F: lineage.Var(3), Weight: math.Inf(1)},
	})
	state, w, err := n.MAPWalk(MAPOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if state[1] && state[2] {
		t.Error("hard exclusivity violated")
	}
	if !state[3] {
		t.Error("must-hold constraint violated")
	}
	if w <= 0 {
		t.Errorf("weight = %v", w)
	}
}

func TestMAPExactInconsistent(t *testing.T) {
	n, _ := New(1, []Feature{
		{F: lineage.Var(1), Weight: math.Inf(1)},
		{F: lineage.Var(1), Weight: 0},
	})
	if _, _, err := n.MAPExact(); err == nil {
		t.Error("inconsistent constraints: expected error")
	}
}

func BenchmarkMCSat(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := randomNetwork(rng, 6)
	q := lineage.Var(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.MarginalMCSat(q, MCSatOptions{Burn: 50, Samples: 500, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGibbs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := randomNetwork(rng, 6)
	q := lineage.Var(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.MarginalGibbs(q, GibbsOptions{Burn: 50, Samples: 500, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := randomNetwork(rng, 12)
	q := lineage.Var(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.MarginalExact(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEnumerationTooLargeRefused: networks beyond the 30-variable
// enumeration limit return an error instead of panicking.
func TestEnumerationTooLargeRefused(t *testing.T) {
	n, err := New(31, []Feature{{F: lineage.Var(31), Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Partition(); err == nil {
		t.Error("Partition over 31 variables: want error, got nil")
	}
	if _, err := n.MarginalExact(lineage.Var(1)); err == nil {
		t.Error("MarginalExact over 31 variables: want error, got nil")
	}
}
