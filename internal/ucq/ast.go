// Package ucq defines Unions of Conjunctive Queries — the query language of
// the paper — together with a datalog-style parser, structural analyses
// (root variables, separator variables, inversion-freeness, hierarchy) and
// an evaluator that computes lineage over an engine.Database.
package ucq

import (
	"fmt"
	"sort"
	"strings"

	"mvdb/internal/engine"
)

// Term is a variable or a constant appearing in an atom or predicate.
type Term struct {
	Var     string // non-empty iff the term is a variable
	Const   engine.Value
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v engine.Value) Term { return Term{Const: v, IsConst: true} }

// CInt returns an integer constant term.
func CInt(i int64) Term { return C(engine.Int(i)) }

// CStr returns a string constant term.
func CStr(s string) Term { return C(engine.Str(s)) }

func (t Term) String() string {
	if t.IsConst {
		return t.Const.String()
	}
	return t.Var
}

// PredOp is a comparison operator.
type PredOp int

// Comparison operators; Like matches SQL LIKE with % and _.
const (
	OpLT PredOp = iota
	OpLE
	OpEQ
	OpNE
	OpGE
	OpGT
	OpLike
)

func (op PredOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpGE:
		return ">="
	case OpGT:
		return ">"
	case OpLike:
		return "like"
	}
	return "?"
}

// Eval applies the operator to two bound values.
func (op PredOp) Eval(l, r engine.Value) bool {
	switch op {
	case OpLike:
		return l.IsStr && r.IsStr && engine.Like(l.Str, r.Str)
	case OpEQ:
		return l.Equal(r)
	case OpNE:
		return !l.Equal(r)
	}
	c := l.Compare(r)
	switch op {
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGE:
		return c >= 0
	case OpGT:
		return c > 0
	}
	return false
}

// Pred is a comparison between two terms, e.g. year > 2004 or n like
// '%X%'. Offset shifts the right-hand side: "year <= yearp + 5" is
// Pred{OpLE, year, yearp, 5} — enough arithmetic to express the Figure 1
// probabilistic-table definitions (year' - 1 <= year <= year' + 5).
type Pred struct {
	Op     PredOp
	L, R   Term
	Offset int64
}

func (p Pred) String() string {
	switch {
	case p.Offset > 0:
		return fmt.Sprintf("%s %s %s + %d", p.L, p.Op, p.R, p.Offset)
	case p.Offset < 0:
		return fmt.Sprintf("%s %s %s - %d", p.L, p.Op, p.R, -p.Offset)
	}
	return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R)
}

// EvalBound evaluates the predicate under bound values, applying the
// offset. Offsets only apply to integers; a non-zero offset against a
// string is false.
func (p Pred) EvalBound(l, r engine.Value) bool {
	if p.Offset != 0 {
		if l.IsStr || r.IsStr {
			return false
		}
		r = engine.Int(r.Int + p.Offset)
	}
	return p.Op.Eval(l, r)
}

// Atom is a relational atom R(t1,...,tk), possibly negated. Negation is only
// allowed on deterministic relations (enforced by the evaluator), matching
// the paper's restriction.
type Atom struct {
	Rel     string
	Args    []Term
	Negated bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	s := a.Rel + "(" + strings.Join(parts, ",") + ")"
	if a.Negated {
		return "not " + s
	}
	return s
}

// CQ is a conjunctive query body: positive/negated atoms plus comparison
// predicates. All variables are existentially quantified unless exported by
// the enclosing Query's head.
type CQ struct {
	Atoms []Atom
	Preds []Pred
}

// UCQ is a union (disjunction) of conjunctive queries.
type UCQ struct {
	Disjuncts []CQ
}

// Query is a named UCQ with head variables.
type Query struct {
	Name string
	Head []string
	UCQ
}

func (c CQ) String() string {
	parts := make([]string, 0, len(c.Atoms)+len(c.Preds))
	for _, a := range c.Atoms {
		parts = append(parts, a.String())
	}
	for _, p := range c.Preds {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, ", ")
}

func (u UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, " ∨ ")
}

func (q *Query) String() string {
	var b strings.Builder
	for i, d := range q.Disjuncts {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s(%s) :- %s", q.Name, strings.Join(q.Head, ","), d)
	}
	return b.String()
}

// Vars returns the sorted set of variables in the CQ (atoms and predicates).
func (c CQ) Vars() []string {
	set := map[string]bool{}
	for _, a := range c.Atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				set[t.Var] = true
			}
		}
	}
	for _, p := range c.Preds {
		if !p.L.IsConst {
			set[p.L.Var] = true
		}
		if !p.R.IsConst {
			set[p.R.Var] = true
		}
	}
	return sortedKeys(set)
}

// HasVars reports whether the CQ mentions any variable — equivalent to
// len(c.Vars()) > 0 without building the set (this sits on the compiler's
// per-block path).
func (c CQ) HasVars() bool {
	for _, a := range c.Atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				return true
			}
		}
	}
	for _, p := range c.Preds {
		if !p.L.IsConst || !p.R.IsConst {
			return true
		}
	}
	return false
}

// PositiveVars returns the sorted variables occurring in positive atoms.
func (c CQ) PositiveVars() []string {
	set := map[string]bool{}
	for _, a := range c.Atoms {
		if a.Negated {
			continue
		}
		for _, t := range a.Args {
			if !t.IsConst {
				set[t.Var] = true
			}
		}
	}
	return sortedKeys(set)
}

// Relations returns the sorted set of relation names in the UCQ.
func (u UCQ) Relations() []string {
	set := map[string]bool{}
	for _, d := range u.Disjuncts {
		for _, a := range d.Atoms {
			set[a.Rel] = true
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Subst returns a copy of the CQ with variables replaced by constants
// according to the binding.
func (c CQ) Subst(binding map[string]engine.Value) CQ {
	out := CQ{Atoms: make([]Atom, len(c.Atoms)), Preds: make([]Pred, len(c.Preds))}
	substTerm := func(t Term) Term {
		if !t.IsConst {
			if v, ok := binding[t.Var]; ok {
				return C(v)
			}
		}
		return t
	}
	for i, a := range c.Atoms {
		na := Atom{Rel: a.Rel, Args: make([]Term, len(a.Args)), Negated: a.Negated}
		for j, t := range a.Args {
			na.Args[j] = substTerm(t)
		}
		out.Atoms[i] = na
	}
	for i, p := range c.Preds {
		out.Preds[i] = Pred{Op: p.Op, L: substTerm(p.L), R: substTerm(p.R), Offset: p.Offset}
	}
	return out
}

// Subst1 is Subst for a single-variable binding, without the map (the
// compiler substitutes one separator value per block, many thousands of
// times per compile).
func (c CQ) Subst1(name string, v engine.Value) CQ {
	subst := func(t Term) Term {
		if !t.IsConst && t.Var == name {
			return C(v)
		}
		return t
	}
	// One flat backing array serves every atom's argument list: Subst1 runs
	// once per disjunct per separator value, so the per-atom slices of the
	// generic Subst showed up hard in compile profiles.
	total := 0
	for _, a := range c.Atoms {
		total += len(a.Args)
	}
	args := make([]Term, total)
	out := CQ{Atoms: make([]Atom, len(c.Atoms))}
	off := 0
	for i, a := range c.Atoms {
		na := args[off : off+len(a.Args) : off+len(a.Args)]
		off += len(a.Args)
		for j, t := range a.Args {
			na[j] = subst(t)
		}
		out.Atoms[i] = Atom{Rel: a.Rel, Args: na, Negated: a.Negated}
	}
	if len(c.Preds) > 0 {
		out.Preds = make([]Pred, len(c.Preds))
		for i, p := range c.Preds {
			out.Preds[i] = Pred{Op: p.Op, L: subst(p.L), R: subst(p.R), Offset: p.Offset}
		}
	}
	return out
}

// Subst substitutes a binding in every disjunct.
func (u UCQ) Subst(binding map[string]engine.Value) UCQ {
	out := UCQ{Disjuncts: make([]CQ, len(u.Disjuncts))}
	for i, d := range u.Disjuncts {
		out.Disjuncts[i] = d.Subst(binding)
	}
	return out
}

// Bind turns a named query into a Boolean UCQ by substituting the head
// variables with the given values.
func (q *Query) Bind(vals []engine.Value) (UCQ, error) {
	if len(vals) != len(q.Head) {
		return UCQ{}, fmt.Errorf("ucq: query %s has %d head variables, got %d values", q.Name, len(q.Head), len(vals))
	}
	binding := map[string]engine.Value{}
	for i, h := range q.Head {
		binding[h] = vals[i]
	}
	return q.UCQ.Subst(binding), nil
}

// Validate performs static safety checks: head variables and predicate
// variables must occur in a positive atom of every disjunct; negated-atom
// variables likewise (safe negation).
func (q *Query) Validate() error {
	for di, d := range q.Disjuncts {
		pos := map[string]bool{}
		for _, v := range d.PositiveVars() {
			pos[v] = true
		}
		for _, h := range q.Head {
			if !pos[h] {
				return fmt.Errorf("ucq: head variable %s not bound by a positive atom in disjunct %d", h, di)
			}
		}
		for _, p := range d.Preds {
			for _, t := range []Term{p.L, p.R} {
				if !t.IsConst && !pos[t.Var] {
					return fmt.Errorf("ucq: predicate variable %s not bound by a positive atom in disjunct %d", t.Var, di)
				}
			}
		}
		for _, a := range d.Atoms {
			if !a.Negated {
				continue
			}
			for _, t := range a.Args {
				if !t.IsConst && !pos[t.Var] {
					return fmt.Errorf("ucq: variable %s of negated atom %s not bound by a positive atom", t.Var, a.Rel)
				}
			}
		}
		if len(d.Atoms) == 0 {
			return fmt.Errorf("ucq: disjunct %d has no atoms", di)
		}
	}
	if len(q.Disjuncts) == 0 {
		return fmt.Errorf("ucq: query %s has no disjuncts", q.Name)
	}
	return nil
}

// Conjoin returns the conjunction of two UCQs as a UCQ: the cross product
// of their disjuncts, with variables renamed apart so each merged conjunct
// is a plain CQ. Used for conditional queries P(Q | E) = P(Q ∧ E)/P(E).
func Conjoin(a, b UCQ) UCQ {
	rename := func(d CQ, prefix string) CQ {
		r := func(t Term) Term {
			if t.IsConst {
				return t
			}
			return V(prefix + t.Var)
		}
		out := CQ{Atoms: make([]Atom, len(d.Atoms)), Preds: make([]Pred, len(d.Preds))}
		for i, at := range d.Atoms {
			na := Atom{Rel: at.Rel, Negated: at.Negated, Args: make([]Term, len(at.Args))}
			for j, t := range at.Args {
				na.Args[j] = r(t)
			}
			out.Atoms[i] = na
		}
		for i, p := range d.Preds {
			out.Preds[i] = Pred{Op: p.Op, L: r(p.L), R: r(p.R), Offset: p.Offset}
		}
		return out
	}
	var out UCQ
	for i, da := range a.Disjuncts {
		for j, db := range b.Disjuncts {
			ra := rename(da, fmt.Sprintf("l%d·", i))
			rb := rename(db, fmt.Sprintf("r%d·", j))
			out.Disjuncts = append(out.Disjuncts, CQ{
				Atoms: append(append([]Atom{}, ra.Atoms...), rb.Atoms...),
				Preds: append(append([]Pred{}, ra.Preds...), rb.Preds...),
			})
		}
	}
	return out
}
