package ucq

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// This file implements canonical query fingerprints: a 128-bit hash that is
// invariant under variable renaming, atom reordering within a conjunct,
// predicate reordering, disjunct reordering (and duplication), and the
// query's name — and that separates queries differing in any other way
// (relations, constants, join structure, head positions), up to 128-bit hash
// collisions.
//
// The scheme is sound by construction: a query is canonicalized by choosing
// one concrete renaming of its variables to v0, v1, ... and serializing the
// renamed, sorted query; two queries share a serialization only if each is
// isomorphic to the query the serialization spells out, hence to each other.
// Completeness (isomorphic queries always share a serialization) is achieved
// with color refinement over the variables plus a bounded
// individualize-and-refine search that picks the lexicographically least
// serialization; on pathologically symmetric conjuncts the search is capped
// (canonSearchCap leaves) and falls back to the first complete naming, which
// can only cost cache hits, never correctness.

// Fingerprint is a 128-bit canonical query hash (see the file comment). The
// zero Fingerprint is never produced by Fingerprint computations and can be
// used as a sentinel.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether the fingerprint is the zero sentinel.
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f.Hi, f.Lo)
}

// canonSearchCap bounds the number of complete variable namings the
// canonical search may explore per conjunct. 5040 = 7! keeps conjuncts with
// up to seven mutually symmetric variables exactly canonical.
const canonSearchCap = 5040

// headRel is the reserved pseudo-relation that pins head-variable positions
// during canonicalization. It cannot clash with parsed or user relations
// (names never contain NUL).
const headRel = "\x00head"

// FingerprintUCQ returns the canonical fingerprint of a Boolean UCQ.
func FingerprintUCQ(u UCQ) Fingerprint {
	return fingerprintStrings(canonDisjunctStrings(u, nil))
}

// FingerprintQuery returns the canonical fingerprint of a named query. The
// query's name never enters the hash; its head arity and the positions at
// which head variables occur do.
func FingerprintQuery(q *Query) Fingerprint {
	ss := canonDisjunctStrings(q.UCQ, q.Head)
	ss = append(ss, fmt.Sprintf("\x00H%d", len(q.Head)))
	return fingerprintStrings(ss)
}

// CanonicalUCQ returns a canonical copy of the UCQ: variables renamed to
// v0, v1, ... per disjunct, atoms and predicates sorted, duplicate disjuncts
// dropped, and disjuncts ordered by their canonical serialization. Two UCQs
// equal up to renaming and reordering canonicalize to deeply equal values.
func CanonicalUCQ(u UCQ) UCQ {
	type cd struct {
		s string
		d CQ
	}
	cds := make([]cd, 0, len(u.Disjuncts))
	for _, d := range u.Disjuncts {
		nd, s := canonicalCQ(d, nil)
		cds = append(cds, cd{s, nd})
	}
	sort.Slice(cds, func(i, j int) bool { return cds[i].s < cds[j].s })
	out := UCQ{Disjuncts: make([]CQ, 0, len(cds))}
	prev := ""
	for i, c := range cds {
		if i > 0 && c.s == prev {
			continue
		}
		prev = c.s
		out.Disjuncts = append(out.Disjuncts, c.d)
	}
	return out
}

// canonDisjunctStrings canonicalizes every disjunct (with the head variables
// pinned through a pseudo-atom when head is non-nil), sorts and dedups the
// serializations.
func canonDisjunctStrings(u UCQ, head []string) []string {
	ss := make([]string, 0, len(u.Disjuncts))
	for _, d := range u.Disjuncts {
		_, s := canonicalCQ(d, head)
		ss = append(ss, s)
	}
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func fingerprintStrings(ss []string) Fingerprint {
	h := fnv.New128a()
	for _, s := range ss {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	var sum [16]byte
	h.Sum(sum[:0])
	fp := Fingerprint{
		Hi: binary.BigEndian.Uint64(sum[:8]),
		Lo: binary.BigEndian.Uint64(sum[8:]),
	}
	if fp.IsZero() {
		fp.Lo = 1 // keep the zero value free as a sentinel
	}
	return fp
}

// canonicalCQ canonicalizes one conjunct and returns the renamed copy plus
// its serialization. When head is non-nil a pseudo-atom headRel(head...) is
// conjoined first, so head-variable positions survive renaming; the
// pseudo-atom stays in the serialization (it carries the head structure) but
// is stripped from the returned CQ.
func canonicalCQ(c CQ, head []string) (CQ, string) {
	work := c
	if len(head) > 0 {
		args := make([]Term, len(head))
		for i, h := range head {
			args[i] = V(h)
		}
		work = CQ{
			Atoms: append([]Atom{{Rel: headRel, Args: args}}, c.Atoms...),
			Preds: c.Preds,
		}
	}
	naming := canonicalNaming(work)
	renamed := renameCQ(work, naming)
	s := serializeCQ(renamed)
	if len(head) > 0 {
		renamed.Atoms = renamed.Atoms[1:] // headRel sorts first (NUL prefix)
	}
	return renamed, s
}

// canonicalNaming computes a variable renaming (old name → canonical index)
// that is invariant under consistent renaming of the conjunct's variables.
func canonicalNaming(c CQ) map[string]int {
	vars := c.Vars()
	if len(vars) == 0 {
		return nil
	}
	colors := refineColors(c, vars)

	// Group variables into color classes; singleton classes need no search.
	index := make(map[string]int, len(vars))
	type cand struct {
		name  string
		color uint64
	}
	cands := make([]cand, len(vars))
	for i, v := range vars {
		cands[i] = cand{v, colors[v]}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].color != cands[j].color {
			return cands[i].color < cands[j].color
		}
		return cands[i].name < cands[j].name
	})
	ambiguous := false
	for i := range cands {
		index[cands[i].name] = i
		if i > 0 && cands[i].color == cands[i-1].color {
			ambiguous = true
		}
	}
	if !ambiguous {
		return index
	}

	// Tied colors: search the orderings of each tie class for the naming
	// whose serialization is lexicographically least. Classes are small in
	// practice (symmetric self-joins), so this is a handful of candidates.
	best := ""
	bestNaming := map[string]int{}
	leaves := 0
	var assign func(pos int, naming map[string]int, remaining []cand)
	assign = func(pos int, naming map[string]int, remaining []cand) {
		if leaves >= canonSearchCap && best != "" {
			return
		}
		if len(remaining) == 0 {
			leaves++
			s := serializeCQ(renameCQ(c, naming))
			if best == "" || s < best {
				best = s
				bestNaming = make(map[string]int, len(naming))
				for k, v := range naming {
					bestNaming[k] = v
				}
			}
			return
		}
		// All candidates sharing the minimal color are interchangeable a
		// priori; branch on each.
		minColor := remaining[0].color
		for i, cd := range remaining {
			if cd.color != minColor {
				break
			}
			naming[cd.name] = pos
			rest := make([]cand, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			assign(pos+1, naming, rest)
			delete(naming, cd.name)
		}
	}
	assign(0, map[string]int{}, cands)
	return bestNaming
}

// refineColors runs color refinement: each variable starts with a hash of
// its (relation, position, negation, constant-pattern) occurrences and is
// repeatedly re-hashed with the colors of the variables it co-occurs with,
// until the partition stabilizes or len(vars) rounds have run.
func refineColors(c CQ, vars []string) map[string]uint64 {
	colors := make(map[string]uint64, len(vars))
	for _, v := range vars {
		occ := make([]uint64, 0, 4)
		for _, a := range c.Atoms {
			al := atomLabel(a)
			for pos, t := range a.Args {
				if !t.IsConst && t.Var == v {
					occ = append(occ, mix(al, uint64(pos)))
				}
			}
		}
		for _, p := range c.Preds {
			pl := predLabel(p)
			if !p.L.IsConst && p.L.Var == v {
				occ = append(occ, mix(pl, 0))
			}
			if !p.R.IsConst && p.R.Var == v {
				occ = append(occ, mix(pl, 1))
			}
		}
		colors[v] = hashMultiset(occ)
	}
	rounds := len(vars)
	if rounds > 8 {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		next := make(map[string]uint64, len(vars))
		for _, v := range vars {
			occ := make([]uint64, 0, 8)
			for _, a := range c.Atoms {
				hit := false
				for _, t := range a.Args {
					if !t.IsConst && t.Var == v {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				// The atom's signature under the current coloring: label plus
				// the positional colors of all its variable arguments, with
				// v's own positions marked.
				sig := atomLabel(a)
				for pos, t := range a.Args {
					if t.IsConst {
						continue
					}
					mark := uint64(1)
					if t.Var == v {
						mark = 2
					}
					sig = mix(sig, mix(uint64(pos), mix(colors[t.Var], mark)))
				}
				occ = append(occ, sig)
			}
			for _, p := range c.Preds {
				lv, rv := !p.L.IsConst && p.L.Var == v, !p.R.IsConst && p.R.Var == v
				if !lv && !rv {
					continue
				}
				sig := predLabel(p)
				if !p.L.IsConst {
					sig = mix(sig, mix(0, colors[p.L.Var]))
				}
				if !p.R.IsConst {
					sig = mix(sig, mix(1, colors[p.R.Var]))
				}
				if lv {
					sig = mix(sig, 7)
				}
				if rv {
					sig = mix(sig, 11)
				}
				occ = append(occ, sig)
			}
			next[v] = mix(colors[v], hashMultiset(occ))
		}
		if samePartition(vars, colors, next) {
			break
		}
		colors = next
	}
	return colors
}

// samePartition reports whether two colorings induce the same partition of
// the variables (refinement has stabilized).
func samePartition(vars []string, a, b map[string]uint64) bool {
	classA := map[uint64]int{}
	classB := map[uint64]int{}
	for _, v := range vars {
		if _, ok := classA[a[v]]; !ok {
			classA[a[v]] = len(classA)
		}
		if _, ok := classB[b[v]]; !ok {
			classB[b[v]] = len(classB)
		}
	}
	if len(classA) != len(classB) {
		return false
	}
	for _, v := range vars {
		if classA[a[v]] != classB[b[v]] {
			return false
		}
	}
	return true
}

// atomLabel hashes everything about an atom except its variable names:
// relation, negation, and the constant pattern.
func atomLabel(a Atom) uint64 {
	h := fnv.New64a()
	h.Write([]byte(a.Rel))
	if a.Negated {
		h.Write([]byte{'!'})
	}
	for _, t := range a.Args {
		if t.IsConst {
			h.Write([]byte{'c'})
			h.Write([]byte(t.Const.Key()))
		} else {
			h.Write([]byte{'_'})
		}
	}
	return h.Sum64()
}

// predLabel hashes a predicate modulo variable names.
func predLabel(p Pred) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "p%d;%d;", int(p.Op), p.Offset)
	for _, t := range []Term{p.L, p.R} {
		if t.IsConst {
			h.Write([]byte{'c'})
			h.Write([]byte(t.Const.Key()))
		} else {
			h.Write([]byte{'_'})
		}
	}
	return h.Sum64()
}

func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// hashMultiset hashes a multiset of 64-bit values order-independently by
// sorting then chaining.
func hashMultiset(xs []uint64) uint64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	h := uint64(1469598103934665603)
	for _, x := range xs {
		h = mix(h, x)
	}
	return h
}

// renameCQ applies a variable naming (old name → index) to a copy of the
// conjunct, producing variables named v0, v1, ...
func renameCQ(c CQ, naming map[string]int) CQ {
	name := func(t Term) Term {
		if t.IsConst {
			return t
		}
		return V("v" + itoa(naming[t.Var]))
	}
	out := CQ{Atoms: make([]Atom, len(c.Atoms))}
	for i, a := range c.Atoms {
		na := Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]Term, len(a.Args))}
		for j, t := range a.Args {
			na.Args[j] = name(t)
		}
		out.Atoms[i] = na
	}
	if len(c.Preds) > 0 {
		out.Preds = make([]Pred, len(c.Preds))
		for i, p := range c.Preds {
			out.Preds[i] = Pred{Op: p.Op, L: name(p.L), R: name(p.R), Offset: p.Offset}
		}
	}
	sortCQ(&out)
	return out
}

// sortCQ orders atoms and predicates by their serialization, making the
// conjunct's spelling independent of input order.
func sortCQ(c *CQ) {
	sort.Slice(c.Atoms, func(i, j int) bool {
		return atomString(c.Atoms[i]) < atomString(c.Atoms[j])
	})
	sort.Slice(c.Preds, func(i, j int) bool {
		return predString(c.Preds[i]) < predString(c.Preds[j])
	})
}

// serializeCQ spells a renamed, sorted conjunct unambiguously.
func serializeCQ(c CQ) string {
	var b strings.Builder
	for _, a := range c.Atoms {
		b.WriteString(atomString(a))
		b.WriteByte('\x01')
	}
	b.WriteByte('\x02')
	for _, p := range c.Preds {
		b.WriteString(predString(p))
		b.WriteByte('\x01')
	}
	return b.String()
}

func atomString(a Atom) string {
	var b strings.Builder
	if a.Negated {
		b.WriteByte('!')
	}
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		writeTerm(&b, t)
	}
	b.WriteByte(')')
	return b.String()
}

func predString(p Pred) string {
	var b strings.Builder
	writeTerm(&b, p.L)
	b.WriteString(p.Op.String())
	writeTerm(&b, p.R)
	if p.Offset != 0 {
		fmt.Fprintf(&b, "%+d", p.Offset)
	}
	return b.String()
}

func writeTerm(b *strings.Builder, t Term) {
	if t.IsConst {
		b.WriteByte('#')
		b.WriteString(t.Const.Key())
		return
	}
	b.WriteString(t.Var)
}

func itoa(n int) string { return strconv.Itoa(n) }
