package ucq

import (
	"fmt"
	"sort"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
)

// AnswerRow is one output tuple of a query together with its lineage over
// the probabilistic tuples of the database.
type AnswerRow struct {
	Head    []engine.Value
	Lineage lineage.DNF
}

// Eval evaluates a named query and returns one row per distinct head tuple
// that is an answer in at least one possible world, with its lineage DNF.
// Rows are sorted by head tuple.
func Eval(db *engine.Database, q *Query) ([]AnswerRow, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	acc := newAccumulator()
	for _, d := range q.Disjuncts {
		if err := evalCQ(db, d, q.Head, acc); err != nil {
			return nil, err
		}
	}
	return acc.rows(), nil
}

// EvalBoolean evaluates a Boolean UCQ (no head variables) and returns its
// lineage. The lineage is false when no disjunct has a match.
func EvalBoolean(db *engine.Database, u UCQ) (lineage.DNF, error) {
	acc := newAccumulator()
	for _, d := range u.Disjuncts {
		if err := evalCQ(db, d, nil, acc); err != nil {
			return nil, err
		}
	}
	rs := acc.rows()
	if len(rs) == 0 {
		return lineage.False(), nil
	}
	return rs[0].Lineage, nil
}

// accumulator groups derivations by head tuple and deduplicates terms.
type accumulator struct {
	byHead map[string]*answerAcc
	order  []string
}

type answerAcc struct {
	head  []engine.Value
	seen  map[string]bool
	terms lineage.DNF
}

func newAccumulator() *accumulator {
	return &accumulator{byHead: map[string]*answerAcc{}}
}

func (acc *accumulator) add(head []engine.Value, term []int) {
	k := engine.TupleKey(head)
	a, ok := acc.byHead[k]
	if !ok {
		a = &answerAcc{head: append([]engine.Value(nil), head...), seen: map[string]bool{}}
		acc.byHead[k] = a
		acc.order = append(acc.order, k)
	}
	t := lineage.Term(term...)
	tk := fmt.Sprint(t)
	if !a.seen[tk] {
		a.seen[tk] = true
		a.terms = append(a.terms, t)
	}
}

func (acc *accumulator) rows() []AnswerRow {
	out := make([]AnswerRow, 0, len(acc.order))
	for _, k := range acc.order {
		a := acc.byHead[k]
		out = append(out, AnswerRow{Head: a.head, Lineage: a.terms})
	}
	sort.Slice(out, func(i, j int) bool {
		return engine.TupleKey(out[i].Head) < engine.TupleKey(out[j].Head)
	})
	return out
}

// evalCQ enumerates all satisfying assignments of one conjunctive query and
// feeds (head, derivation term) pairs into the accumulator.
func evalCQ(db *engine.Database, cq CQ, head []string, acc *accumulator) error {
	var positive, negated []Atom
	for _, a := range cq.Atoms {
		r := db.Relation(a.Rel)
		if r == nil {
			return fmt.Errorf("ucq: unknown relation %s", a.Rel)
		}
		if len(a.Args) != r.Arity() {
			return fmt.Errorf("ucq: relation %s has arity %d, atom has %d arguments", a.Rel, r.Arity(), len(a.Args))
		}
		if a.Negated {
			if !r.Deterministic {
				return fmt.Errorf("ucq: negation on probabilistic relation %s is not allowed", a.Rel)
			}
			negated = append(negated, a)
		} else {
			positive = append(positive, a)
		}
	}
	if len(positive) == 0 {
		return fmt.Errorf("ucq: conjunct has no positive atoms")
	}

	st := &evalState{
		db:       db,
		positive: positive,
		negated:  negated,
		preds:    cq.Preds,
		head:     head,
		binding:  map[string]engine.Value{},
		done:     make([]bool, len(positive)),
		acc:      acc,
	}
	return st.run(0)
}

type evalState struct {
	db       *engine.Database
	positive []Atom
	negated  []Atom
	preds    []Pred
	head     []string
	binding  map[string]engine.Value
	done     []bool
	term     []int // probabilistic tuple vars on the current path
	acc      *accumulator

	predDone []bool
	negDone  []bool
}

func (st *evalState) run(processed int) error {
	if st.predDone == nil {
		st.predDone = make([]bool, len(st.preds))
		st.negDone = make([]bool, len(st.negated))
	}
	// Evaluate any predicate or negated atom whose variables are all bound.
	var checkedPreds, checkedNegs []int
	defer func() {
		for _, i := range checkedPreds {
			st.predDone[i] = false
		}
		for _, i := range checkedNegs {
			st.negDone[i] = false
		}
	}()
	for i, p := range st.preds {
		if st.predDone[i] {
			continue
		}
		l, okL := st.resolve(p.L)
		r, okR := st.resolve(p.R)
		if okL && okR {
			if !p.EvalBound(l, r) {
				return nil
			}
			st.predDone[i] = true
			checkedPreds = append(checkedPreds, i)
		}
	}
	for i, a := range st.negated {
		if st.negDone[i] {
			continue
		}
		vals := make([]engine.Value, len(a.Args))
		allBound := true
		for j, t := range a.Args {
			v, ok := st.resolve(t)
			if !ok {
				allBound = false
				break
			}
			vals[j] = v
		}
		if allBound {
			if st.db.Relation(a.Rel).Lookup(vals) >= 0 {
				return nil // negated atom violated
			}
			st.negDone[i] = true
			checkedNegs = append(checkedNegs, i)
		}
	}

	if processed == len(st.positive) {
		// All atoms matched; predicates and negations must all be resolved.
		for i := range st.preds {
			if !st.predDone[i] {
				return fmt.Errorf("ucq: predicate %s has unbound variables", st.preds[i])
			}
		}
		for i := range st.negated {
			if !st.negDone[i] {
				return fmt.Errorf("ucq: negated atom %s has unbound variables", st.negated[i])
			}
		}
		headVals := make([]engine.Value, len(st.head))
		for i, h := range st.head {
			v, ok := st.binding[h]
			if !ok {
				return fmt.Errorf("ucq: head variable %s unbound", h)
			}
			headVals[i] = v
		}
		st.acc.add(headVals, st.term)
		return nil
	}

	// Choose the next atom greedily by its actual candidate count under the
	// current binding: the size of the index bucket on its first bound
	// column, or the full relation size when nothing is bound yet. This is
	// exact selectivity, not an estimate — one map lookup per atom — and it
	// both prunes dead branches immediately (zero candidates) and avoids
	// joining through a large intermediate (e.g. Pub by year instead of
	// Wrote by author in the V1 materialization).
	best, bestCost := -1, 0
	for i, a := range st.positive {
		if st.done[i] {
			continue
		}
		rel := st.db.Relation(a.Rel)
		cost := rel.Len()
		for pos, t := range a.Args {
			if v, ok := st.resolve(t); ok {
				cost = len(rel.MatchingIndexes(pos, v))
				break
			}
		}
		if best == -1 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	a := st.positive[best]
	rel := st.db.Relation(a.Rel)
	st.done[best] = true
	defer func() { st.done[best] = false }()

	candidates := st.candidates(rel, a)
	for _, ti := range candidates {
		tup := rel.Tuples[ti]
		newVars := st.tryBind(a, tup.Vals)
		if newVars == nil {
			continue
		}
		pushedVar := false
		if tup.Var != 0 {
			st.term = append(st.term, tup.Var)
			pushedVar = true
		}
		err := st.run(processed + 1)
		if pushedVar {
			st.term = st.term[:len(st.term)-1]
		}
		for _, v := range newVars {
			delete(st.binding, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// resolve returns the value of a term under the current binding.
func (st *evalState) resolve(t Term) (engine.Value, bool) {
	if t.IsConst {
		return t.Const, true
	}
	v, ok := st.binding[t.Var]
	return v, ok
}

// candidates returns indexes of tuples possibly matching the atom, using a
// hash index on the first bound position when available, and otherwise
// pushing constant range predicates (year > 2004, y <= yp + 5 with yp
// bound) down to a sorted-index range scan.
func (st *evalState) candidates(rel *engine.Relation, a Atom) []int {
	for i, t := range a.Args {
		if v, ok := st.resolve(t); ok {
			return rel.MatchingIndexes(i, v)
		}
	}
	for i, t := range a.Args {
		if t.IsConst {
			continue
		}
		if eq, lo, loIncl, hi, hiIncl, ok := st.boundsFor(t.Var); ok {
			if eq != nil {
				return rel.MatchingIndexes(i, *eq)
			}
			return rel.RangeScan(i, lo, loIncl, hi, hiIncl)
		}
	}
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// boundsFor derives constant bounds on a variable from the conjunct's
// comparison predicates whose other side is (or resolves to) an integer.
// It returns either an equality value or a half/fully bounded interval.
func (st *evalState) boundsFor(v string) (eq *engine.Value, lo *engine.Value, loIncl bool, hi *engine.Value, hiIncl bool, ok bool) {
	setLo := func(x int64, incl bool) {
		nv := engine.Int(x)
		if lo == nil || nv.Compare(*lo) > 0 || (nv.Compare(*lo) == 0 && !incl) {
			lo, loIncl = &nv, incl
		}
		ok = true
	}
	setHi := func(x int64, incl bool) {
		nv := engine.Int(x)
		if hi == nil || nv.Compare(*hi) < 0 || (nv.Compare(*hi) == 0 && !incl) {
			hi, hiIncl = &nv, incl
		}
		ok = true
	}
	for _, p := range st.preds {
		if p.Op == OpLike || p.Op == OpNE {
			continue
		}
		// v on the left: v op (c + offset).
		if !p.L.IsConst && p.L.Var == v {
			if c, bound := st.resolve(p.R); bound && !c.IsStr {
				x := c.Int + p.Offset
				switch p.Op {
				case OpEQ:
					nv := engine.Int(x)
					return &nv, nil, false, nil, false, true
				case OpLT:
					setHi(x, false)
				case OpLE:
					setHi(x, true)
				case OpGT:
					setLo(x, false)
				case OpGE:
					setLo(x, true)
				}
			}
			continue
		}
		// v on the right: c op (v + offset)  ⇔  v op' (c - offset).
		if !p.R.IsConst && p.R.Var == v {
			if c, bound := st.resolve(p.L); bound && !c.IsStr {
				x := c.Int - p.Offset
				switch p.Op {
				case OpEQ:
					nv := engine.Int(x)
					return &nv, nil, false, nil, false, true
				case OpLT: // c < v + off  ⇔  v > c - off
					setLo(x, false)
				case OpLE:
					setLo(x, true)
				case OpGT:
					setHi(x, false)
				case OpGE:
					setHi(x, true)
				}
			}
		}
	}
	return eq, lo, loIncl, hi, hiIncl, ok
}

// tryBind unifies the atom's arguments with the tuple values, extending the
// binding. It returns the list of newly bound variables, or nil if the
// tuple does not match.
func (st *evalState) tryBind(a Atom, vals []engine.Value) []string {
	newVars := []string{}
	for i, t := range a.Args {
		if v, ok := st.resolve(t); ok {
			if !v.Equal(vals[i]) {
				for _, nv := range newVars {
					delete(st.binding, nv)
				}
				return nil
			}
			continue
		}
		st.binding[t.Var] = vals[i]
		newVars = append(newVars, t.Var)
	}
	return newVars
}
