package ucq

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
)

// AnswerRow is one output tuple of a query together with its lineage over
// the probabilistic tuples of the database.
type AnswerRow struct {
	Head    []engine.Value
	Lineage lineage.DNF
}

// Eval evaluates a named query and returns one row per distinct head tuple
// that is an answer in at least one possible world, with its lineage DNF.
// Rows are sorted by head tuple.
func Eval(db *engine.Database, q *Query) ([]AnswerRow, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	acc := newAccumulator()
	for _, d := range q.Disjuncts {
		if err := evalCQ(db, d, q.Head, acc); err != nil {
			return nil, err
		}
	}
	return acc.rows(), nil
}

// EvalBoolean evaluates a Boolean UCQ (no head variables) and returns its
// lineage. The lineage is false when no disjunct has a match.
func EvalBoolean(db *engine.Database, u UCQ) (lineage.DNF, error) {
	acc := newAccumulator()
	for _, d := range u.Disjuncts {
		if err := evalCQ(db, d, nil, acc); err != nil {
			return nil, err
		}
	}
	if acc.boolA == nil {
		return lineage.False(), nil
	}
	return acc.boolA.terms, nil
}

// accumulator groups derivations by head tuple and deduplicates terms.
type accumulator struct {
	byHead  map[string]*answerAcc
	order   []string
	boolA   *answerAcc // fast path for Boolean queries (empty heads)
	keyBuf  []byte     // scratch for term dedup keys, reused across add calls
	headBuf []byte     // scratch for head keys, ditto
}

type answerAcc struct {
	head  []engine.Value
	seen  map[string]bool
	terms lineage.DNF
}

func newAccumulator() *accumulator {
	return &accumulator{byHead: map[string]*answerAcc{}}
}

func (acc *accumulator) add(head []engine.Value, term []int) {
	var a *answerAcc
	if len(head) == 0 {
		// Boolean queries — the compiler's residual lineages take this path
		// once per derivation; skip the head-key machinery entirely.
		if acc.boolA == nil {
			acc.boolA = &answerAcc{seen: map[string]bool{}}
			acc.byHead[""] = acc.boolA
			acc.order = append(acc.order, "")
		}
		a = acc.boolA
	} else {
		hb := engine.AppendTupleKey(acc.headBuf[:0], head)
		acc.headBuf = hb
		var ok bool
		if a, ok = acc.byHead[string(hb)]; !ok {
			k := string(hb)
			a = &answerAcc{head: append([]engine.Value(nil), head...), seen: map[string]bool{}}
			acc.byHead[k] = a
			acc.order = append(acc.order, k)
		}
	}
	t := lineage.Term(term...)
	// Dedup key: the sorted variable ids, comma-separated. Building it into
	// a reused buffer keeps the non-insert case allocation-free (the compiler
	// replays many duplicate derivations per separator value).
	buf := acc.keyBuf[:0]
	for _, v := range t {
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ',')
	}
	acc.keyBuf = buf
	if !a.seen[string(buf)] {
		a.seen[string(buf)] = true
		a.terms = append(a.terms, t)
	}
}

func (acc *accumulator) rows() []AnswerRow {
	out := make([]AnswerRow, 0, len(acc.order))
	for _, k := range acc.order {
		a := acc.byHead[k]
		out = append(out, AnswerRow{Head: a.head, Lineage: a.terms})
	}
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool {
			return lessTuple(out[i].Head, out[j].Head)
		})
	}
	return out
}

// lessTuple orders head tuples value-wise (integers numerically, before
// strings) without materializing string keys.
func lessTuple(a, b []engine.Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// evalCQ enumerates all satisfying assignments of one conjunctive query and
// feeds (head, derivation term) pairs into the accumulator.
func evalCQ(db *engine.Database, cq CQ, head []string, acc *accumulator) error {
	st := getEvalState()
	defer putEvalState(st)
	st.positive, st.negated = st.positive[:0], st.negated[:0]
	for _, a := range cq.Atoms {
		r := db.Relation(a.Rel)
		if r == nil {
			return fmt.Errorf("ucq: unknown relation %s", a.Rel)
		}
		if len(a.Args) != r.Arity() {
			return fmt.Errorf("ucq: relation %s has arity %d, atom has %d arguments", a.Rel, r.Arity(), len(a.Args))
		}
		if a.Negated {
			if !r.Deterministic {
				return fmt.Errorf("ucq: negation on probabilistic relation %s is not allowed", a.Rel)
			}
			st.negated = append(st.negated, a)
		} else {
			st.positive = append(st.positive, a)
		}
	}
	if len(st.positive) == 0 {
		return fmt.Errorf("ucq: conjunct has no positive atoms")
	}

	st.db, st.preds, st.head, st.acc = db, cq.Preds, head, acc
	st.done = boolScratch(st.done, len(st.positive))
	st.predDone = boolScratch(st.predDone, len(cq.Preds))
	st.negDone = boolScratch(st.negDone, len(st.negated))
	return st.run(0)
}

// boolScratch resizes a reusable bool slice to n cleared entries.
func boolScratch(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// evalStatePool recycles evaluator states: the OBDD compiler evaluates one
// residual lineage per unresolvable conjunct, so states churn at high rate
// during compilation.
var evalStatePool = sync.Pool{
	New: func() any { return &evalState{binding: map[string]engine.Value{}} },
}

func getEvalState() *evalState { return evalStatePool.Get().(*evalState) }

func putEvalState(st *evalState) {
	st.db, st.preds, st.head, st.acc = nil, nil, nil, nil
	clear(st.binding) // empty after a clean unwind; cheap either way
	st.positive = st.positive[:0]
	st.negated = st.negated[:0]
	st.term = st.term[:0]
	st.varStack = st.varStack[:0]
	st.checkedPreds = st.checkedPreds[:0]
	st.checkedNegs = st.checkedNegs[:0]
	evalStatePool.Put(st)
}

type evalState struct {
	db       *engine.Database
	positive []Atom
	negated  []Atom
	preds    []Pred
	head     []string
	binding  map[string]engine.Value
	done     []bool
	term     []int // probabilistic tuple vars on the current path
	acc      *accumulator

	predDone []bool
	negDone  []bool
	varStack []string // names bound on the current path, shared by all frames

	// Shared undo stacks and scratch buffers: run recurses once per joined
	// atom, and per-frame slices plus deferred closures were a measurable
	// slice of compile-time allocations.
	checkedPreds []int
	checkedNegs  []int
	negVals      []engine.Value
	headVals     []engine.Value
}

// run evaluates bound predicates and negated atoms, recurses via step, and
// restores the per-frame predDone/negDone marks on the way out.
func (st *evalState) run(processed int) error {
	pm, nm := len(st.checkedPreds), len(st.checkedNegs)
	err := st.step(processed)
	for _, i := range st.checkedPreds[pm:] {
		st.predDone[i] = false
	}
	st.checkedPreds = st.checkedPreds[:pm]
	for _, i := range st.checkedNegs[nm:] {
		st.negDone[i] = false
	}
	st.checkedNegs = st.checkedNegs[:nm]
	return err
}

func (st *evalState) step(processed int) error {
	// Evaluate any predicate or negated atom whose variables are all bound.
	for i, p := range st.preds {
		if st.predDone[i] {
			continue
		}
		l, okL := st.resolve(p.L)
		r, okR := st.resolve(p.R)
		if okL && okR {
			if !p.EvalBound(l, r) {
				return nil
			}
			st.predDone[i] = true
			st.checkedPreds = append(st.checkedPreds, i)
		}
	}
	for i, a := range st.negated {
		if st.negDone[i] {
			continue
		}
		if cap(st.negVals) < len(a.Args) {
			st.negVals = make([]engine.Value, len(a.Args))
		}
		vals := st.negVals[:len(a.Args)]
		allBound := true
		for j, t := range a.Args {
			v, ok := st.resolve(t)
			if !ok {
				allBound = false
				break
			}
			vals[j] = v
		}
		if allBound {
			if st.db.Relation(a.Rel).Lookup(vals) >= 0 {
				return nil // negated atom violated
			}
			st.negDone[i] = true
			st.checkedNegs = append(st.checkedNegs, i)
		}
	}

	if processed == len(st.positive) {
		// All atoms matched; predicates and negations must all be resolved.
		for i := range st.preds {
			if !st.predDone[i] {
				return fmt.Errorf("ucq: predicate %s has unbound variables", st.preds[i])
			}
		}
		for i := range st.negated {
			if !st.negDone[i] {
				return fmt.Errorf("ucq: negated atom %s has unbound variables", st.negated[i])
			}
		}
		if cap(st.headVals) < len(st.head) {
			st.headVals = make([]engine.Value, len(st.head))
		}
		headVals := st.headVals[:len(st.head)]
		for i, h := range st.head {
			v, ok := st.binding[h]
			if !ok {
				return fmt.Errorf("ucq: head variable %s unbound", h)
			}
			headVals[i] = v
		}
		st.acc.add(headVals, st.term)
		return nil
	}

	// Choose the next atom greedily by its actual candidate count under the
	// current binding: the size of the index bucket on its first bound
	// column, or the full relation size when nothing is bound yet. This is
	// exact selectivity, not an estimate — one map lookup per atom — and it
	// both prunes dead branches immediately (zero candidates) and avoids
	// joining through a large intermediate (e.g. Pub by year instead of
	// Wrote by author in the V1 materialization).
	best, bestCost := -1, 0
	for i, a := range st.positive {
		if st.done[i] {
			continue
		}
		rel := st.db.Relation(a.Rel)
		cost := rel.Len()
		for pos, t := range a.Args {
			if v, ok := st.resolve(t); ok {
				cost = len(rel.MatchingIndexes(pos, v))
				break
			}
		}
		if best == -1 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	a := st.positive[best]
	rel := st.db.Relation(a.Rel)
	st.done[best] = true

	var err error
	candidates := st.candidates(rel, a)
	for _, ti := range candidates {
		tup := rel.Tuples[ti]
		mark, ok := st.tryBind(a, tup.Vals)
		if !ok {
			continue
		}
		pushedVar := false
		if tup.Var != 0 {
			st.term = append(st.term, tup.Var)
			pushedVar = true
		}
		err = st.run(processed + 1)
		if pushedVar {
			st.term = st.term[:len(st.term)-1]
		}
		for _, v := range st.varStack[mark:] {
			delete(st.binding, v)
		}
		st.varStack = st.varStack[:mark]
		if err != nil {
			break
		}
	}
	st.done[best] = false
	return err
}

// resolve returns the value of a term under the current binding.
func (st *evalState) resolve(t Term) (engine.Value, bool) {
	if t.IsConst {
		return t.Const, true
	}
	v, ok := st.binding[t.Var]
	return v, ok
}

// candidates returns indexes of tuples possibly matching the atom, using a
// hash index on the first bound position when available, and otherwise
// pushing constant range predicates (year > 2004, y <= yp + 5 with yp
// bound) down to a sorted-index range scan.
func (st *evalState) candidates(rel *engine.Relation, a Atom) []int {
	for i, t := range a.Args {
		if v, ok := st.resolve(t); ok {
			return rel.MatchingIndexes(i, v)
		}
	}
	for i, t := range a.Args {
		if t.IsConst {
			continue
		}
		if eq, lo, loIncl, hi, hiIncl, ok := st.boundsFor(t.Var); ok {
			if eq != nil {
				return rel.MatchingIndexes(i, *eq)
			}
			return rel.RangeScan(i, lo, loIncl, hi, hiIncl)
		}
	}
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// boundsFor derives constant bounds on a variable from the conjunct's
// comparison predicates whose other side is (or resolves to) an integer.
// It returns either an equality value or a half/fully bounded interval.
func (st *evalState) boundsFor(v string) (eq *engine.Value, lo *engine.Value, loIncl bool, hi *engine.Value, hiIncl bool, ok bool) {
	setLo := func(x int64, incl bool) {
		nv := engine.Int(x)
		if lo == nil || nv.Compare(*lo) > 0 || (nv.Compare(*lo) == 0 && !incl) {
			lo, loIncl = &nv, incl
		}
		ok = true
	}
	setHi := func(x int64, incl bool) {
		nv := engine.Int(x)
		if hi == nil || nv.Compare(*hi) < 0 || (nv.Compare(*hi) == 0 && !incl) {
			hi, hiIncl = &nv, incl
		}
		ok = true
	}
	for _, p := range st.preds {
		if p.Op == OpLike || p.Op == OpNE {
			continue
		}
		// v on the left: v op (c + offset).
		if !p.L.IsConst && p.L.Var == v {
			if c, bound := st.resolve(p.R); bound && !c.IsStr {
				x := c.Int + p.Offset
				switch p.Op {
				case OpEQ:
					nv := engine.Int(x)
					return &nv, nil, false, nil, false, true
				case OpLT:
					setHi(x, false)
				case OpLE:
					setHi(x, true)
				case OpGT:
					setLo(x, false)
				case OpGE:
					setLo(x, true)
				}
			}
			continue
		}
		// v on the right: c op (v + offset)  ⇔  v op' (c - offset).
		if !p.R.IsConst && p.R.Var == v {
			if c, bound := st.resolve(p.L); bound && !c.IsStr {
				x := c.Int - p.Offset
				switch p.Op {
				case OpEQ:
					nv := engine.Int(x)
					return &nv, nil, false, nil, false, true
				case OpLT: // c < v + off  ⇔  v > c - off
					setLo(x, false)
				case OpLE:
					setLo(x, true)
				case OpGT:
					setHi(x, false)
				case OpGE:
					setHi(x, true)
				}
			}
		}
	}
	return eq, lo, loIncl, hi, hiIncl, ok
}

// tryBind unifies the atom's arguments with the tuple values, extending the
// binding and pushing newly bound variable names onto the shared varStack.
// It returns the stack mark to pop back to after the recursive call and
// whether the tuple matched; on a mismatch the bindings are already undone.
func (st *evalState) tryBind(a Atom, vals []engine.Value) (int, bool) {
	mark := len(st.varStack)
	for i, t := range a.Args {
		if v, ok := st.resolve(t); ok {
			if !v.Equal(vals[i]) {
				for _, nv := range st.varStack[mark:] {
					delete(st.binding, nv)
				}
				st.varStack = st.varStack[:mark]
				return 0, false
			}
			continue
		}
		st.binding[t.Var] = vals[i]
		st.varStack = append(st.varStack, t.Var)
	}
	return mark, true
}
