package ucq

import (
	"testing"

	"mvdb/internal/engine"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("Q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 1 || q.Head[0] != "x" {
		t.Fatalf("head = %v", q.Head)
	}
	if len(q.Disjuncts) != 1 || len(q.Disjuncts[0].Atoms) != 2 {
		t.Fatalf("disjuncts = %+v", q.Disjuncts)
	}
	a := q.Disjuncts[0].Atoms[0]
	if a.Rel != "R" || a.Args[0].Var != "x" || a.Args[1].Var != "y" {
		t.Errorf("atom = %+v", a)
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q, err := Parse("Q() :- R(x), S(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 0 {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestParseConstantsAndPreds(t *testing.T) {
	q, err := Parse(`Q(a) :- Pub(p, a, year), year > 2004, a like '%Madden%', Pub(p, a, 2010)`)
	if err != nil {
		t.Fatal(err)
	}
	d := q.Disjuncts[0]
	if len(d.Atoms) != 2 || len(d.Preds) != 2 {
		t.Fatalf("parsed %+v", d)
	}
	if d.Preds[0].Op != OpGT || d.Preds[0].R.Const.Int != 2004 {
		t.Errorf("pred0 = %+v", d.Preds[0])
	}
	if d.Preds[1].Op != OpLike || d.Preds[1].R.Const.Str != "%Madden%" {
		t.Errorf("pred1 = %+v", d.Preds[1])
	}
	if !d.Atoms[1].Args[2].IsConst || d.Atoms[1].Args[2].Const.Int != 2010 {
		t.Errorf("const arg = %+v", d.Atoms[1].Args[2])
	}
}

func TestParseUnion(t *testing.T) {
	src := `
# students or postdocs
Q(x) :- Student(x,y)
Q(x) :- Postdoc(x)
`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(q.Disjuncts))
	}
}

func TestParseNegation(t *testing.T) {
	q, err := Parse("Q(x) :- R(x,y), not D(x)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Disjuncts[0].Atoms[1].Negated {
		t.Error("negation lost")
	}
}

func TestParseOperators(t *testing.T) {
	q, err := Parse("Q() :- R(x,y), x < y, x <= y, x = y, x <> y, x != y, x >= y, x > y")
	if err != nil {
		t.Fatal(err)
	}
	ops := []PredOp{OpLT, OpLE, OpEQ, OpNE, OpNE, OpGE, OpGT}
	for i, p := range q.Disjuncts[0].Preds {
		if p.Op != ops[i] {
			t.Errorf("pred %d op = %v want %v", i, p.Op, ops[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x)",                           // no body
		"Q(x) :- ",                       // empty body
		"Q(x) :- R(x), x like y",         // like with variable pattern
		"Q(x) :- R(x), not x < 3",        // not before predicate
		"Q(x) :- S(y)",                   // head var unbound
		"Q(x) :- R(x), y > 1",            // pred var unbound
		"Q(x) :- R(x), not D(z)",         // negated var unbound
		"Q(x) :- R(x,",                   // unterminated
		"Q(x) :- R(x), 'open",            // unterminated string
		"Q(x) :- R()",                    // empty atom
		"Q(x) :- R(x) extra(",            // trailing garbage
		"Q(x) :- R(x)\nQ(x,y) :- S(x,y)", // inconsistent heads
		"Q(x) : R(x)",                    // bad arrow
		"Q(x) :- R(x), x ! y",            // bad operator
		"Q(x) :- R(-)",                   // lone minus
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseProgramMultipleQueries(t *testing.T) {
	qs, err := ParseProgram(`
A(x) :- R(x)
B(y) :- S(y)
A(x) :- T(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Name != "A" || qs[1].Name != "B" {
		t.Fatalf("queries = %+v", qs)
	}
	if len(qs[0].Disjuncts) != 2 {
		t.Errorf("A disjuncts = %d", len(qs[0].Disjuncts))
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := "Q(x) :- R(x,y), S(y,'lit'), y > 3"
	q := MustParse(src)
	again, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if again.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), again.String())
	}
}

func TestNegativeIntConstant(t *testing.T) {
	q, err := Parse("Q() :- R(x), x > -5")
	if err != nil {
		t.Fatal(err)
	}
	if p := q.Disjuncts[0].Preds[0]; p.R.Const.Int != -5 {
		t.Errorf("const = %+v", p.R)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("garbage(")
}

func TestParseOffsetPredicates(t *testing.T) {
	q, err := Parse("Q(y) :- FirstPub(a,yp), Cal(y), y >= yp - 1, y <= yp + 5")
	if err != nil {
		t.Fatal(err)
	}
	preds := q.Disjuncts[0].Preds
	if preds[0].Offset != -1 || preds[1].Offset != 5 {
		t.Errorf("offsets = %d, %d", preds[0].Offset, preds[1].Offset)
	}
	// Round trip.
	again, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if again.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), again.String())
	}
	// Negative literal still parses where a sign is expected.
	q, err = Parse("Q() :- R(x), x > -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Disjuncts[0].Preds[0].R.Const.Int != -5 || q.Disjuncts[0].Preds[0].Offset != 0 {
		t.Errorf("pred = %+v", q.Disjuncts[0].Preds[0])
	}
	// Offset on like is rejected.
	if _, err = Parse("Q() :- R(x), x like 'a' + 1"); err == nil {
		t.Error("like offset accepted")
	}
	// Dangling sign.
	if _, err = Parse("Q() :- R(x), x > x +"); err == nil {
		t.Error("dangling + accepted")
	}
}

func TestEvalBoundOffsets(t *testing.T) {
	p := Pred{Op: OpLE, L: V("y"), R: V("yp"), Offset: 5}
	if !p.EvalBound(engine.Int(2004), engine.Int(2000)) {
		t.Error("2004 <= 2000+5 should hold")
	}
	if p.EvalBound(engine.Int(2006), engine.Int(2000)) {
		t.Error("2006 <= 2000+5 should fail")
	}
	// Strings with offsets are false.
	if p.EvalBound(engine.Str("a"), engine.Str("b")) {
		t.Error("string offset comparison accepted")
	}
	// Zero offset falls through to the plain comparison.
	p = Pred{Op: OpLT, L: V("a"), R: V("b")}
	if !p.EvalBound(engine.Str("a"), engine.Str("b")) {
		t.Error("plain string compare broken")
	}
}
