package ucq

import (
	"math"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
)

// fig3DB builds the database of Figure 3: R{a1,a2}, S{(a1,b1),(a1,b2),
// (a2,b3),(a2,b4)} with variables X1,X2,Y1..Y4 in insertion order.
func fig3DB() *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustInsert("R", 1, engine.Int(1))                 // X1 = var 1
	db.MustInsert("R", 1, engine.Int(2))                 // X2 = var 2
	db.MustInsert("S", 1, engine.Int(1), engine.Int(11)) // Y1 = var 3
	db.MustInsert("S", 1, engine.Int(1), engine.Int(12)) // Y2 = var 4
	db.MustInsert("S", 1, engine.Int(2), engine.Int(13)) // Y3 = var 5
	db.MustInsert("S", 1, engine.Int(2), engine.Int(14)) // Y4 = var 6
	return db
}

func TestEvalBooleanFig3(t *testing.T) {
	db := fig3DB()
	q := MustParse("Q() :- R(x), S(x,y)")
	got, err := EvalBoolean(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	want := lineage.DNF{{1, 3}, {1, 4}, {2, 5}, {2, 6}}
	if got.Normalize().String() != want.Normalize().String() {
		t.Errorf("lineage = %v want %v", got.Normalize(), want.Normalize())
	}
}

func TestEvalWithHead(t *testing.T) {
	db := fig3DB()
	q := MustParse("Q(x) :- R(x), S(x,y)")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if !rows[0].Head[0].Equal(engine.Int(1)) || !rows[1].Head[0].Equal(engine.Int(2)) {
		t.Errorf("heads = %v, %v", rows[0].Head, rows[1].Head)
	}
	if rows[0].Lineage.Normalize().String() != (lineage.DNF{{1, 3}, {1, 4}}).Normalize().String() {
		t.Errorf("lineage(1) = %v", rows[0].Lineage)
	}
}

func TestEvalPredicates(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("P", false, "a", "year")
	v1 := db.MustInsert("P", 1, engine.Int(1), engine.Int(2000))
	db.MustInsert("P", 1, engine.Int(2), engine.Int(2010))
	q := MustParse("Q(a) :- P(a,y), y < 2005")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Head[0].Equal(engine.Int(1)) {
		t.Fatalf("rows = %+v", rows)
	}
	if len(rows[0].Lineage) != 1 || rows[0].Lineage[0][0] != v1 {
		t.Errorf("lineage = %v", rows[0].Lineage)
	}
}

func TestEvalLike(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Author", true, "aid", "name")
	db.MustInsertDet("Author", engine.Int(1), engine.Str("Sam Madden"))
	db.MustInsertDet("Author", engine.Int(2), engine.Str("Dan Suciu"))
	db.MustCreateRelation("Adv", false, "s", "a")
	v := db.MustInsert("Adv", 1, engine.Int(10), engine.Int(1))
	db.MustInsert("Adv", 1, engine.Int(11), engine.Int(2))
	q := MustParse("Q(s) :- Adv(s,a), Author(a,n), n like '%Madden%'")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Head[0].Equal(engine.Int(10)) {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Lineage[0][0] != v {
		t.Errorf("lineage = %v", rows[0].Lineage)
	}
}

func TestEvalNegation(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("D", true, "a")
	db.MustInsert("R", 1, engine.Int(1))
	db.MustInsert("R", 1, engine.Int(2))
	db.MustInsertDet("D", engine.Int(2))
	q := MustParse("Q(x) :- R(x), not D(x)")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Head[0].Equal(engine.Int(1)) {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestEvalNegationOnProbabilisticRejected(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("P", false, "a")
	db.MustInsert("R", 1, engine.Int(1))
	q := MustParse("Q(x) :- R(x), not P(x)")
	if _, err := Eval(db, q); err == nil {
		t.Error("negation on probabilistic relation accepted")
	}
}

func TestEvalUnknownRelation(t *testing.T) {
	db := engine.NewDatabase()
	q := MustParse("Q(x) :- Nope(x)")
	if _, err := Eval(db, q); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestEvalArityMismatch(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a", "b")
	db.MustInsert("R", 1, engine.Int(1), engine.Int(2))
	q := MustParse("Q(x) :- R(x)")
	if _, err := Eval(db, q); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("E", false, "a", "b")
	db.MustInsert("E", 1, engine.Int(1), engine.Int(1))
	db.MustInsert("E", 1, engine.Int(1), engine.Int(2))
	q := MustParse("Q(x) :- E(x,x)")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Head[0].Equal(engine.Int(1)) {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestEvalSelfJoin(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	v1 := db.MustInsert("Adv", 1, engine.Int(1), engine.Int(10))
	v2 := db.MustInsert("Adv", 1, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 1, engine.Int(2), engine.Int(10))
	// V2 of the paper: a person with two advisors.
	q := MustParse("Q(x) :- Adv(x,a), Adv(x,b), a <> b")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Head[0].Equal(engine.Int(1)) {
		t.Fatalf("rows = %+v", rows)
	}
	want := lineage.DNF{{v1, v2}}
	if rows[0].Lineage.Normalize().String() != want.Normalize().String() {
		t.Errorf("lineage = %v want %v", rows[0].Lineage.Normalize(), want)
	}
}

func TestEvalUnionLineage(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("T", false, "a")
	v1 := db.MustInsert("R", 1, engine.Int(1))
	v2 := db.MustInsert("T", 1, engine.Int(1))
	q := MustParse("Q(x) :- R(x)\nQ(x) :- T(x)")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	want := lineage.DNF{{v1}, {v2}}
	if rows[0].Lineage.Normalize().String() != want.Normalize().String() {
		t.Errorf("lineage = %v", rows[0].Lineage)
	}
}

func TestEvalDeterministicOnlyLineage(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("D", true, "a")
	db.MustInsertDet("D", engine.Int(1))
	q := MustParse("Q() :- D(x)")
	lin, err := EvalBoolean(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	if !lin.IsTrue() {
		t.Errorf("lineage over deterministic data = %v, want true", lin)
	}
}

func TestEvalEmptyResult(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	q := MustParse("Q() :- R(x)")
	lin, err := EvalBoolean(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	if !lin.IsFalse() {
		t.Errorf("lineage = %v, want false", lin)
	}
}

func TestBindValues(t *testing.T) {
	q := MustParse("Q(x,y) :- R(x,y,z)")
	b, err := q.Bind([]engine.Value{engine.Int(1), engine.Str("a")})
	if err != nil {
		t.Fatal(err)
	}
	atom := b.Disjuncts[0].Atoms[0]
	if !atom.Args[0].IsConst || atom.Args[0].Const.Int != 1 {
		t.Errorf("bound atom = %+v", atom)
	}
	if !atom.Args[1].IsConst || atom.Args[1].Const.Str != "a" {
		t.Errorf("bound atom = %+v", atom)
	}
	if atom.Args[2].IsConst {
		t.Errorf("z should stay a variable: %+v", atom)
	}
	if _, err = q.Bind([]engine.Value{engine.Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
}

// TestEvalLineageProbability cross-checks the evaluator against a manual
// computation: P(Q) for Q()-R(x),S(x,y) on Figure 3 with all probs 1/2.
func TestEvalLineageProbability(t *testing.T) {
	db := fig3DB()
	q := MustParse("Q() :- R(x), S(x,y)")
	lin, err := EvalBoolean(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got := bfProb(lin, db.Probs())
	// P = 1 - (1 - p(X1)(1-(1-p)(1-p)))^2 ... compute directly:
	pBlock := 0.5 * (1 - 0.25) // X_i and at least one Y
	want := 1 - (1-pBlock)*(1-pBlock)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v want %v", got, want)
	}
}

func TestRangePushdown(t *testing.T) {
	// A query whose only selective part is a range predicate; results must
	// match the unoptimized semantics.
	db := engine.NewDatabase()
	db.MustCreateRelation("Pub", true, "pid", "year")
	for i := int64(1); i <= 200; i++ {
		db.MustInsertDet("Pub", engine.Int(i), engine.Int(1990+(i%30)))
	}
	db.MustCreateRelation("R", false, "pid")
	for i := int64(1); i <= 200; i += 3 {
		db.MustInsert("R", 1, engine.Int(i))
	}
	q := MustParse("Q(p) :- Pub(p,y), R(p), y > 2004, y <= 2008")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: filter manually.
	want := 0
	pub := db.Relation("Pub")
	for _, tup := range pub.Tuples {
		y := tup.Vals[1].Int
		if y > 2004 && y <= 2008 && tup.Vals[0].Int%3 == 1 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("rows = %d want %d", len(rows), want)
	}
}

func TestRangePushdownWithOffsets(t *testing.T) {
	// year >= yp - 1 with yp bound: the Figure 1 Studentp window.
	db := engine.NewDatabase()
	db.MustCreateRelation("First", true, "aid", "yp")
	db.MustCreateRelation("Cal", true, "year")
	db.MustInsertDet("First", engine.Int(1), engine.Int(2000))
	for y := int64(1990); y <= 2010; y++ {
		db.MustInsertDet("Cal", engine.Int(y))
	}
	q := MustParse("Q(y) :- First(1,yp), Cal(y), y >= yp - 1, y <= yp + 5")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 1999..2005
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Head[0].Int != 1999 || rows[6].Head[0].Int != 2005 {
		t.Errorf("range = %v..%v", rows[0].Head[0].Int, rows[6].Head[0].Int)
	}
}

func TestEqualityPushdown(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Cal", true, "year")
	for y := int64(1990); y <= 2010; y++ {
		db.MustInsertDet("Cal", engine.Int(y))
	}
	q := MustParse("Q(y) :- Cal(y), y = 2003")
	rows, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Head[0].Int != 2003 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestBoundsForEdgeCases(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Cal", true, "year")
	for y := int64(2000); y <= 2010; y++ {
		db.MustInsertDet("Cal", engine.Int(y))
	}
	// Conflicting bounds -> empty result, no error.
	q := MustParse("Q(y) :- Cal(y), y > 2008, y < 2003")
	rows, err := Eval(db, q)
	if err != nil || len(rows) != 0 {
		t.Errorf("conflicting bounds: %d rows, %v", len(rows), err)
	}
	// NE predicates are not pushed but still filter.
	q = MustParse("Q(y) :- Cal(y), y <> 2005, y >= 2004, y <= 2006")
	rows, err = Eval(db, q)
	if err != nil || len(rows) != 2 {
		t.Errorf("NE filter: %d rows, %v", len(rows), err)
	}
	// String comparisons are not pushed through integer bounds.
	db.MustCreateRelation("Names", true, "n")
	db.MustInsertDet("Names", engine.Str("bob"))
	db.MustInsertDet("Names", engine.Str("eve"))
	q = MustParse("Q(n) :- Names(n), n > 'carol'")
	rows, err = Eval(db, q)
	if err != nil || len(rows) != 1 || rows[0].Head[0].Str != "eve" {
		t.Errorf("string compare: %+v, %v", rows, err)
	}
}

// bfProb wraps the error-returning brute-force evaluator for test fixtures
// known to stay within the 30-variable limit.
func bfProb(d lineage.DNF, probs []float64) float64 {
	p, err := lineage.BruteForceProb(d, probs)
	if err != nil {
		panic(err)
	}
	return p
}
