package ucq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a query in datalog notation. The input may contain several
// rules; rules sharing the same head name are unioned into one UCQ:
//
//	Q(aid) :- Student(aid,y), Advisor(aid,a), Author(a,n), n like '%Madden%'
//	Q(aid) :- Emeritus(aid)
//
// The body is a comma-separated list of atoms R(t1,...,tk), negated atoms
// "not R(...)", and comparison predicates using <, <=, =, <>, !=, >=, >, and
// "like". Constants are integers or quoted strings; identifiers starting
// with a lowercase letter are variables, relation names may be any
// identifier. Blank lines and lines starting with # or -- are ignored.
func Parse(src string) (*Query, error) {
	qs, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(qs) != 1 {
		return nil, fmt.Errorf("ucq: expected a single query, got %d", len(qs))
	}
	return qs[0], nil
}

// ParseProgram parses a set of rules into queries, grouping rules by head
// name, preserving first-appearance order.
func ParseProgram(src string) ([]*Query, error) {
	byName := map[string]*Query{}
	var order []string
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		name, head, body, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		q, ok := byName[name]
		if !ok {
			q = &Query{Name: name, Head: head}
			byName[name] = q
			order = append(order, name)
		} else if !equalStrings(q.Head, head) {
			return nil, fmt.Errorf("line %d: rule for %s has head (%s), earlier rule had (%s)",
				ln+1, name, strings.Join(head, ","), strings.Join(q.Head, ","))
		}
		q.Disjuncts = append(q.Disjuncts, body)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("ucq: no rules in input")
	}
	out := make([]*Query, 0, len(order))
	for _, n := range order {
		q := byName[n]
		if err := q.Validate(); err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseRule(line string) (name string, head []string, body CQ, err error) {
	lx := &lexer{src: line}
	if err = lx.tokenize(); err != nil {
		return
	}
	p := &parser{toks: lx.toks}
	return p.rule()
}

type tokKind int

const (
	tIdent tokKind = iota
	tInt
	tStr
	tLParen
	tRParen
	tComma
	tOp        // < <= = <> != >= >
	tPlusMinus // + or - in predicate offsets
	tArrow     // :-
	tEOF
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func (lx *lexer) tokenize() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t':
			lx.pos++
		case c == '(':
			lx.emit(tLParen, "(")
		case c == ')':
			lx.emit(tRParen, ")")
		case c == ',':
			lx.emit(tComma, ",")
		case c == ':':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
				lx.toks = append(lx.toks, token{tArrow, ":-"})
				lx.pos += 2
			} else {
				return fmt.Errorf("unexpected ':' at %d", lx.pos)
			}
		case c == '<':
			switch {
			case lx.peek(1) == '=':
				lx.emit2(tOp, "<=")
			case lx.peek(1) == '>':
				lx.emit2(tOp, "<>")
			default:
				lx.emit(tOp, "<")
			}
		case c == '>':
			if lx.peek(1) == '=' {
				lx.emit2(tOp, ">=")
			} else {
				lx.emit(tOp, ">")
			}
		case c == '!':
			if lx.peek(1) == '=' {
				lx.emit2(tOp, "<>")
			} else {
				return fmt.Errorf("unexpected '!' at %d", lx.pos)
			}
		case c == '=':
			lx.emit(tOp, "=")
		case c == '\'' || c == '"':
			end := lx.pos + 1
			for end < len(lx.src) && lx.src[end] != c {
				if lx.src[end] == '\\' && end+1 < len(lx.src) {
					end++ // skip the escaped character
				}
				end++
			}
			if end >= len(lx.src) {
				return fmt.Errorf("unterminated string at %d", lx.pos)
			}
			text, err := unquote(lx.src[lx.pos:end+1], c)
			if err != nil {
				return fmt.Errorf("bad string literal at %d: %v", lx.pos, err)
			}
			lx.toks = append(lx.toks, token{tStr, text})
			lx.pos = end + 1
		case c == '+':
			lx.emit(tPlusMinus, "+")
		case c == '-' || (c >= '0' && c <= '9'):
			// A '-' after a value-like token is the offset operator
			// ("yearp - 1"); otherwise it starts a negative literal.
			if c == '-' && lx.afterValue() {
				lx.emit(tPlusMinus, "-")
				continue
			}
			end := lx.pos + 1
			for end < len(lx.src) && lx.src[end] >= '0' && lx.src[end] <= '9' {
				end++
			}
			if lx.src[lx.pos:end] == "-" {
				return fmt.Errorf("unexpected '-' at %d", lx.pos)
			}
			lx.toks = append(lx.toks, token{tInt, lx.src[lx.pos:end]})
			lx.pos = end
		case isIdentStart(rune(c)):
			end := lx.pos + 1
			for end < len(lx.src) && isIdentPart(rune(lx.src[end])) {
				end++
			}
			lx.toks = append(lx.toks, token{tIdent, lx.src[lx.pos:end]})
			lx.pos = end
		default:
			return fmt.Errorf("unexpected character %q at %d", c, lx.pos)
		}
	}
	lx.toks = append(lx.toks, token{tEOF, ""})
	return nil
}

// afterValue reports whether the previous token can end a term (so a
// following '-' is the offset operator rather than a sign).
func (lx *lexer) afterValue() bool {
	if len(lx.toks) == 0 {
		return false
	}
	switch lx.toks[len(lx.toks)-1].kind {
	case tIdent, tInt, tStr, tRParen:
		return true
	}
	return false
}

func (lx *lexer) peek(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) emit(k tokKind, s string) { lx.toks = append(lx.toks, token{k, s}); lx.pos++ }
func (lx *lexer) emit2(k tokKind, s string) {
	lx.toks = append(lx.toks, token{k, s})
	lx.pos += 2
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("expected %s, got %q", what, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) rule() (name string, head []string, body CQ, err error) {
	nameTok, err := p.expect(tIdent, "query name")
	if err != nil {
		return
	}
	name = nameTok.text
	if _, err = p.expect(tLParen, "("); err != nil {
		return
	}
	for p.cur().kind != tRParen {
		v, e := p.expect(tIdent, "head variable")
		if e != nil {
			err = e
			return
		}
		head = append(head, v.text)
		if p.cur().kind == tComma {
			p.next()
		}
	}
	p.next() // )
	if _, err = p.expect(tArrow, ":-"); err != nil {
		return
	}
	for {
		if err = p.bodyItem(&body); err != nil {
			return
		}
		if p.cur().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != tEOF {
		err = fmt.Errorf("trailing input %q", p.cur().text)
	}
	return
}

func (p *parser) bodyItem(body *CQ) error {
	negated := false
	if p.cur().kind == tIdent && p.cur().text == "not" && p.toks[p.pos+1].kind == tIdent {
		negated = true
		p.next()
	}
	// Lookahead: ident followed by "(" is an atom; otherwise a predicate.
	if p.cur().kind == tIdent && p.toks[p.pos+1].kind == tLParen {
		atom, err := p.atom(negated)
		if err != nil {
			return err
		}
		body.Atoms = append(body.Atoms, atom)
		return nil
	}
	if negated {
		return fmt.Errorf("'not' must be followed by an atom")
	}
	pred, err := p.pred()
	if err != nil {
		return err
	}
	body.Preds = append(body.Preds, pred)
	return nil
}

func (p *parser) atom(negated bool) (Atom, error) {
	rel := p.next().text
	p.next() // (
	a := Atom{Rel: rel, Negated: negated}
	for p.cur().kind != tRParen {
		t, err := p.term()
		if err != nil {
			return a, err
		}
		a.Args = append(a.Args, t)
		if p.cur().kind == tComma {
			p.next()
		} else if p.cur().kind != tRParen {
			return a, fmt.Errorf("expected , or ) in atom %s", rel)
		}
	}
	p.next() // )
	if len(a.Args) == 0 {
		return a, fmt.Errorf("atom %s has no arguments", rel)
	}
	return a, nil
}

func (p *parser) term() (Term, error) {
	switch t := p.cur(); t.kind {
	case tIdent:
		p.next()
		return V(t.text), nil
	case tInt:
		p.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, err
		}
		return CInt(i), nil
	case tStr:
		p.next()
		return CStr(t.text), nil
	default:
		return Term{}, fmt.Errorf("expected term, got %q", t.text)
	}
}

func (p *parser) pred() (Pred, error) {
	l, err := p.term()
	if err != nil {
		return Pred{}, err
	}
	var op PredOp
	switch t := p.cur(); {
	case t.kind == tOp:
		p.next()
		switch t.text {
		case "<":
			op = OpLT
		case "<=":
			op = OpLE
		case "=":
			op = OpEQ
		case "<>":
			op = OpNE
		case ">=":
			op = OpGE
		case ">":
			op = OpGT
		}
	case t.kind == tIdent && t.text == "like":
		p.next()
		op = OpLike
	default:
		return Pred{}, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	r, err := p.term()
	if err != nil {
		return Pred{}, err
	}
	if op == OpLike {
		if !r.IsConst || !r.Const.IsStr {
			return Pred{}, fmt.Errorf("like pattern must be a string constant")
		}
	}
	var offset int64
	if p.cur().kind == tPlusMinus {
		signTok := p.next()
		numTok, err := p.expect(tInt, "offset integer")
		if err != nil {
			return Pred{}, err
		}
		n, err := strconv.ParseInt(numTok.text, 10, 64)
		if err != nil {
			return Pred{}, err
		}
		if signTok.text == "-" {
			n = -n
		}
		if op == OpLike {
			return Pred{}, fmt.Errorf("like does not take an offset")
		}
		offset = n
	}
	return Pred{Op: op, L: l, R: r, Offset: offset}, nil
}

// MustParse is Parse but panics on error; for statically known queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// unquote decodes a quoted string literal. Double-quoted literals follow Go
// syntax (strconv.Unquote, so rendered constants round-trip); single-quoted
// literals support the escapes \\ \' \" \n \t.
func unquote(lit string, quote byte) (string, error) {
	if quote == '"' {
		return strconv.Unquote(lit)
	}
	body := lit[1 : len(lit)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i] {
		case '\\':
			b.WriteByte('\\')
		case '\'':
			b.WriteByte('\'')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
