package ucq

import (
	"sort"

	"mvdb/internal/engine"
)

// RootVars returns the variables of a CQ that occur in every positive atom
// (Section 4.2: "a root variable appears in all atoms of Q"). Negated atoms
// and predicates are ignored: they never contribute Boolean variables to the
// lineage.
// Atoms without any variables (ground atoms) are also ignored: they denote a
// single tuple, contribute one Boolean variable to the lineage, and never
// break the constant-width property that root variables are used to
// establish.
func (c CQ) RootVars() []string { return c.rootVarsSkip(SkipGround) }

// rootVarsSkip returns the variables occurring in every atom the filter
// keeps; no roots if every atom is skipped. Candidates are seeded from the
// first kept atom and filtered against the rest — atoms hold a handful of
// terms, so linear scans over a small slice beat per-atom maps.
func (c CQ) rootVarsSkip(skip AtomSkip) []string {
	var cand []string
	seeded := false
	for _, a := range c.Atoms {
		if skip(a) {
			continue
		}
		if !seeded {
			seeded = true
			for _, t := range a.Args {
				if !t.IsConst && !containsStr(cand, t.Var) {
					cand = append(cand, t.Var)
				}
			}
			if len(cand) == 0 {
				return nil
			}
			continue
		}
		kept := cand[:0]
		for _, v := range cand {
			if atomHasVar(a, v) {
				kept = append(kept, v)
			}
		}
		cand = kept
		if len(cand) == 0 {
			return nil
		}
	}
	if !seeded {
		return nil
	}
	sort.Strings(cand) // match the historical Vars()-sorted order
	return cand
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func atomHasVar(a Atom, v string) bool {
	for _, t := range a.Args {
		if !t.IsConst && t.Var == v {
			return true
		}
	}
	return false
}

// Separator describes a separator variable choice for a UCQ: one root
// variable per disjunct, such that any two atoms with the same relation
// symbol carry the separator at the same attribute position (Section 4.2).
type Separator struct {
	PerDisjunct []string       // chosen root variable in each disjunct
	RelPos      map[string]int // the separator's position in each relation
}

// AtomSkip decides which atoms root-variable and separator analysis may
// ignore. Skipped atoms contribute no Boolean variables (negated atoms,
// ground atoms, atoms over deterministic relations), so the separator need
// not occur in them for the per-value blocks to be tuple-independent.
type AtomSkip func(Atom) bool

// SkipGround ignores negated atoms and atoms without variables — the
// default for OBDD concatenation analysis on a purely probabilistic schema.
func SkipGround(a Atom) bool { return a.Negated || !atomHasVars(a) }

// SkipNegated ignores only negated atoms — the strict notion needed by the
// independent-project rule of lifted inference.
func SkipNegated(a Atom) bool { return a.Negated }

// SkipDeterministic combines a determinism oracle with the given base skip:
// atoms over deterministic relations never contribute Boolean variables.
func SkipDeterministic(isDet func(rel string) bool, base AtomSkip) AtomSkip {
	return func(a Atom) bool { return base(a) || isDet(a.Rel) }
}

// FindSeparator searches for a separator of the UCQ. It enumerates
// combinations of root variables across disjuncts (these sets are tiny in
// practice) and checks position consistency per relation symbol.
func (u UCQ) FindSeparator() (Separator, bool) {
	return u.FindSeparatorSkip(SkipGround)
}

// FindSeparatorSkip is FindSeparator with a custom atom filter.
func (u UCQ) FindSeparatorSkip(skip AtomSkip) (Separator, bool) {
	if len(u.Disjuncts) == 0 {
		return Separator{}, false
	}
	roots := make([][]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		roots[i] = d.rootVarsSkip(skip)
		if len(roots[i]) == 0 {
			return Separator{}, false
		}
	}
	choice := make([]string, len(u.Disjuncts))
	var try func(i int) (Separator, bool)
	try = func(i int) (Separator, bool) {
		if i == len(u.Disjuncts) {
			if relPos, ok := consistentPositionsSkip(u, choice, skip); ok {
				return Separator{PerDisjunct: append([]string(nil), choice...), RelPos: relPos}, true
			}
			return Separator{}, false
		}
		for _, r := range roots[i] {
			choice[i] = r
			if s, ok := try(i + 1); ok {
				return s, true
			}
		}
		return Separator{}, false
	}
	return try(0)
}

// consistentPositionsSkip checks whether, with the given root-variable
// choice, each relation symbol sees the root variable at one common position
// in all of its kept atoms across all disjuncts; it returns that position
// per relation.
func consistentPositionsSkip(u UCQ, choice []string, skip AtomSkip) (map[string]int, bool) {
	// candidate position sets per relation
	cand := map[string]map[int]bool{}
	for di, d := range u.Disjuncts {
		z := choice[di]
		for _, a := range d.Atoms {
			if skip(a) {
				continue
			}
			positions := map[int]bool{}
			for i, t := range a.Args {
				if !t.IsConst && t.Var == z {
					positions[i] = true
				}
			}
			if len(positions) == 0 {
				return nil, false // root var missing from an atom (cannot happen for true roots)
			}
			if prev, ok := cand[a.Rel]; ok {
				for p := range prev {
					if !positions[p] {
						delete(prev, p)
					}
				}
				if len(prev) == 0 {
					return nil, false
				}
			} else {
				cand[a.Rel] = positions
			}
		}
	}
	out := map[string]int{}
	for rel, ps := range cand {
		best := -1
		for p := range ps {
			if best == -1 || p < best {
				best = p
			}
		}
		out[rel] = best
	}
	return out, true
}

// connectedComponents splits a CQ's positive atoms into groups connected by
// shared variables. Negated atoms and predicates are attached to the
// component containing their variables (or to the first component if they
// have none). Each returned CQ is an independent conjunct.
func (c CQ) connectedComponents() []CQ {
	n := len(c.Atoms)
	if n == 0 {
		return nil
	}
	if n == 1 {
		// One atom: a single component carrying every predicate — skip the
		// union-find and grouping maps (the compiler's residual conjuncts hit
		// this constantly).
		return []CQ{c}
	}
	var parentBuf [16]int
	parent := parentBuf[:]
	if n > len(parentBuf) {
		parent = make([]int, n)
	}
	parent = parent[:n]
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// atomFor returns the first atom carrying the variable, or -1 — the same
	// mapping the old var->atom map encoded, but n is tiny here (residual
	// conjuncts after separator substitution), so a scan costs nothing and
	// the map allocation dominated this function's profile.
	atomFor := func(v string) int {
		for i, a := range c.Atoms {
			for _, t := range a.Args {
				if !t.IsConst && t.Var == v {
					return i
				}
			}
		}
		return -1
	}
	for i := 1; i < n; i++ {
		for _, t := range c.Atoms[i].Args {
			if t.IsConst {
				continue
			}
			if j := atomFor(t.Var); j >= 0 && j < i {
				parent[find(i)] = find(j)
			}
		}
	}
	// Predicates connect their variables' components.
	for _, p := range c.Preds {
		if !p.L.IsConst && !p.R.IsConst {
			if a, b := atomFor(p.L.Var), atomFor(p.R.Var); a >= 0 && b >= 0 {
				parent[find(a)] = find(b)
			}
		}
	}
	// Single component — the overwhelmingly common outcome — needs no group
	// bookkeeping at all.
	root := find(0)
	single := true
	for i := 1; i < n; i++ {
		if find(i) != root {
			single = false
			break
		}
	}
	if single {
		return []CQ{c}
	}
	var rootsBuf [16]int
	roots := rootsBuf[:0]
	idx := func(r int) int {
		for k, x := range roots {
			if x == r {
				return k
			}
		}
		return -1
	}
	out := make([]CQ, 0, 2)
	for i, a := range c.Atoms {
		r := find(i)
		k := idx(r)
		if k < 0 {
			roots = append(roots, r)
			out = append(out, CQ{})
			k = len(out) - 1
		}
		out[k].Atoms = append(out[k].Atoms, a)
	}
	for _, p := range c.Preds {
		target := -1
		if !p.L.IsConst {
			if a := atomFor(p.L.Var); a >= 0 {
				target = idx(find(a))
			}
		}
		if target == -1 && !p.R.IsConst {
			if a := atomFor(p.R.Var); a >= 0 {
				target = idx(find(a))
			}
		}
		if target == -1 {
			target = 0
		}
		out[target].Preds = append(out[target].Preds, p)
	}
	return out
}

// Components returns the independent conjuncts of the CQ (exported wrapper).
func (c CQ) Components() []CQ { return c.connectedComponents() }

// unionGroups splits the UCQ's disjuncts into groups that share no relation
// symbols; distinct groups are independent disjunctions.
func (u UCQ) unionGroups() []UCQ {
	n := len(u.Disjuncts)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []UCQ{u}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	relDisj := map[string]int{}
	for i, d := range u.Disjuncts {
		for _, a := range d.Atoms {
			if a.Negated {
				continue
			}
			if j, ok := relDisj[a.Rel]; ok {
				parent[find(i)] = find(j)
			} else {
				relDisj[a.Rel] = i
			}
		}
	}
	groups := map[int]*UCQ{}
	var order []int
	for i, d := range u.Disjuncts {
		r := find(i)
		g, ok := groups[r]
		if !ok {
			g = &UCQ{}
			groups[r] = g
			order = append(order, r)
		}
		g.Disjuncts = append(g.Disjuncts, d)
	}
	out := make([]UCQ, 0, len(order))
	for _, r := range order {
		out = append(out, *groups[r])
	}
	return out
}

// UnionGroups returns the relation-disjoint groups of disjuncts.
func (u UCQ) UnionGroups() []UCQ { return u.unionGroups() }

// IsInversionFree reports whether the UCQ is inversion-free in the
// operational sense of Section 4.2: every existential variable can be
// eliminated through a separator after decomposing independent unions and
// independent conjuncts. Inversion-free queries compile to OBDDs of
// constant width (Proposition 2).
func (u UCQ) IsInversionFree() bool {
	return inversionFree(u, 0)
}

func inversionFree(u UCQ, depth int) bool {
	if depth > 64 {
		return false
	}
	// Drop disjuncts that are already ground: they contribute a fixed
	// conjunction of Boolean variables, which never breaks constant width.
	var live UCQ
	for _, d := range u.Disjuncts {
		if len(d.Vars()) > 0 {
			live.Disjuncts = append(live.Disjuncts, d)
		}
	}
	if len(live.Disjuncts) == 0 {
		return true
	}
	u = live
	// Independent unions.
	if groups := u.unionGroups(); len(groups) > 1 {
		for _, g := range groups {
			if !inversionFree(g, depth+1) {
				return false
			}
		}
		return true
	}
	// Single CQ: independent components.
	if len(u.Disjuncts) == 1 {
		comps := u.Disjuncts[0].connectedComponents()
		if len(comps) > 1 {
			for _, c := range comps {
				if !inversionFree(UCQ{Disjuncts: []CQ{c}}, depth+1) {
					return false
				}
			}
			return true
		}
	}
	// Separator required.
	sep, ok := u.FindSeparator()
	if !ok {
		return false
	}
	// Substitute the separator by a fresh constant and recurse (data-free:
	// one representative constant suffices for the structural check).
	marker := engine.Str("\x00sep")
	next := UCQ{}
	for di, d := range u.Disjuncts {
		next.Disjuncts = append(next.Disjuncts, d.Subst(map[string]engine.Value{sep.PerDisjunct[di]: marker}))
	}
	return inversionFree(next, depth+1)
}

// IsHierarchical reports whether a CQ (without self-joins this coincides
// with safety) is hierarchical: for any two existential variables x, y, the
// sets of atoms containing them are nested or disjoint.
func (c CQ) IsHierarchical(head []string) bool {
	headSet := map[string]bool{}
	for _, h := range head {
		headSet[h] = true
	}
	atomsOf := map[string]map[int]bool{}
	for i, a := range c.Atoms {
		if a.Negated {
			continue
		}
		for _, t := range a.Args {
			if t.IsConst || headSet[t.Var] {
				continue
			}
			if atomsOf[t.Var] == nil {
				atomsOf[t.Var] = map[int]bool{}
			}
			atomsOf[t.Var][i] = true
		}
	}
	vars := make([]string, 0, len(atomsOf))
	for v := range atomsOf {
		vars = append(vars, v)
	}
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			a, b := atomsOf[vars[i]], atomsOf[vars[j]]
			inter, aOnly, bOnly := 0, 0, 0
			for k := range a {
				if b[k] {
					inter++
				} else {
					aOnly++
				}
			}
			for k := range b {
				if !a[k] {
					bOnly++
				}
			}
			if inter > 0 && aOnly > 0 && bOnly > 0 {
				return false
			}
		}
	}
	return true
}

func atomHasVars(a Atom) bool {
	for _, t := range a.Args {
		if !t.IsConst {
			return true
		}
	}
	return false
}

// RootVarsStrict returns the variables occurring in every positive atom,
// ground atoms included (so a conjunct containing a ground positive atom has
// no strict root variables). Lifted inference needs this strict notion: the
// independent-project rule is only sound when the separator really occurs in
// every atom that can contribute Boolean variables.
func (c CQ) RootVarsStrict() []string { return c.rootVarsSkip(SkipNegated) }

// FindSeparatorStrict is FindSeparator restricted to strict root variables
// (see RootVarsStrict); the returned separator occurs in every positive atom
// of every disjunct, which makes the independent-project rule sound.
func (u UCQ) FindSeparatorStrict() (Separator, bool) {
	return u.FindSeparatorSkip(SkipNegated)
}

// CollapseEquivalentAtoms removes positive atoms that are duplicates of
// another atom up to renaming of variables local to the atom (variables that
// occur nowhere else in the conjunct and not in protected). For example,
// ∃y1 S(a,y1) ∧ ∃y2 S(a,y2) collapses to ∃y S(a,y). This is a sound
// logical simplification used before independence checks.
func (c CQ) CollapseEquivalentAtoms(protected []string) CQ {
	// Count variable occurrences across atoms, predicates and protected set.
	occurs := map[string]int{}
	for _, a := range c.Atoms {
		seen := map[string]bool{}
		for _, t := range a.Args {
			if !t.IsConst && !seen[t.Var] {
				seen[t.Var] = true
				occurs[t.Var]++
			}
		}
	}
	for _, p := range c.Preds {
		if !p.L.IsConst {
			occurs[p.L.Var] += 2
		}
		if !p.R.IsConst {
			occurs[p.R.Var] += 2
		}
	}
	for _, v := range protected {
		occurs[v] += 2
	}
	keyOf := func(a Atom) string {
		local := map[string]int{}
		key := a.Rel
		if a.Negated {
			key = "!" + key
		}
		for _, t := range a.Args {
			switch {
			case t.IsConst:
				key += "|c" + t.Const.Key()
			case occurs[t.Var] > 1:
				key += "|g" + t.Var
			default:
				id, ok := local[t.Var]
				if !ok {
					id = len(local)
					local[t.Var] = id
				}
				key += "|l" + string(rune('0'+id))
			}
		}
		return key
	}
	seen := map[string]bool{}
	out := CQ{Preds: c.Preds}
	for _, a := range c.Atoms {
		k := keyOf(a)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Atoms = append(out.Atoms, a)
	}
	return out
}
