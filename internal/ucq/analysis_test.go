package ucq

import (
	"testing"
)

func TestRootVars(t *testing.T) {
	q := MustParse("Q() :- R(x), S(x,y)")
	roots := q.Disjuncts[0].RootVars()
	if len(roots) != 1 || roots[0] != "x" {
		t.Errorf("roots = %v", roots)
	}
	q = MustParse("Q() :- R(x), S(y,x), T(x,y)")
	roots = q.Disjuncts[0].RootVars()
	if len(roots) != 1 || roots[0] != "x" {
		t.Errorf("roots = %v", roots)
	}
	q = MustParse("Q() :- R(x), S(y)")
	if roots = q.Disjuncts[0].RootVars(); len(roots) != 0 {
		t.Errorf("roots = %v", roots)
	}
}

func TestFindSeparatorSimple(t *testing.T) {
	q := MustParse("Q() :- R(x), S(x,y)")
	sep, ok := q.FindSeparator()
	if !ok || sep.PerDisjunct[0] != "x" {
		t.Fatalf("sep = %+v ok=%v", sep, ok)
	}
	if sep.RelPos["R"] != 0 || sep.RelPos["S"] != 0 {
		t.Errorf("positions = %v", sep.RelPos)
	}
}

func TestFindSeparatorUnion(t *testing.T) {
	// Example from Section 4.2: R(x1),S(x1,y1) ∨ T(x2),S(x2,y2).
	q := MustParse("Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)")
	sep, ok := q.FindSeparator()
	if !ok {
		t.Fatal("no separator found")
	}
	if sep.PerDisjunct[0] != "x1" || sep.PerDisjunct[1] != "x2" {
		t.Errorf("sep = %+v", sep)
	}
}

func TestFindSeparatorNone(t *testing.T) {
	// R(x1),S(x1,y1) ∨ S(x2,y2),T(y2): S sees the root at position 0 in one
	// disjunct and position 1 in the other — no separator (Section 4.2).
	q := MustParse("Q() :- R(x1), S(x1,y1)\nQ() :- S(x2,y2), T(y2)")
	if _, ok := q.FindSeparator(); ok {
		t.Error("separator found for inversion query")
	}
	// H0 = R(x),S(x,y),T(y): no root variable at all.
	q = MustParse("Q() :- R(x), S(x,y), T(y)")
	if _, ok := q.FindSeparator(); ok {
		t.Error("separator found for H0")
	}
}

func TestIsInversionFree(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Q() :- R(x), S(x,y)", true},
		{"Q() :- R(x), S(x,y), T(x)", true},
		{"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)", true},
		{"Q() :- R(x), S(x,y), T(y)", false},                      // H0, #P-hard
		{"Q() :- R(x1), S(x1,y1)\nQ() :- S(x2,y2), T(y2)", false}, // inversion
		{"Q() :- R(x), S(y)", true},                               // independent components
		{"Q() :- Adv(x,a), Adv(x,b)", true},                       // self-join with separator x
		{"Q() :- R(x)\nQ() :- T(y)", true},                        // independent union
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := q.IsInversionFree(); got != c.want {
			t.Errorf("IsInversionFree(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

func TestIsHierarchical(t *testing.T) {
	cases := []struct {
		src  string
		head []string
		want bool
	}{
		{"Q() :- R(x), S(x,y)", nil, true},
		{"Q() :- R(x), S(x,y), T(y)", nil, false}, // H0
		{"Q(x) :- R(x), S(x,y), T2(x,y,z)", []string{"x"}, true},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := q.Disjuncts[0].IsHierarchical(c.head); got != c.want {
			t.Errorf("IsHierarchical(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

func TestComponents(t *testing.T) {
	q := MustParse("Q() :- R(x), S(y,z), T(z), R(w), w > 3")
	comps := q.Disjuncts[0].Components()
	if len(comps) != 3 {
		t.Fatalf("components = %+v", comps)
	}
	// The predicate w > 3 must land in the component containing R(w).
	found := false
	for _, c := range comps {
		if len(c.Preds) == 1 {
			if len(c.Atoms) != 1 || c.Atoms[0].Args[0].Var != "w" {
				t.Errorf("predicate attached to wrong component: %+v", c)
			}
			found = true
		}
	}
	if !found {
		t.Error("predicate lost")
	}
}

func TestComponentsPredicateJoins(t *testing.T) {
	// x < y joins the two atoms into one component.
	q := MustParse("Q() :- R(x), T(y), x < y")
	comps := q.Disjuncts[0].Components()
	if len(comps) != 1 {
		t.Fatalf("components = %+v", comps)
	}
}

func TestUnionGroups(t *testing.T) {
	q := MustParse("Q() :- R(x)\nQ() :- T(y)\nQ() :- R(z), W(z)")
	groups := q.UnionGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	// R-disjuncts grouped together.
	var rGroup *UCQ
	for i := range groups {
		for _, d := range groups[i].Disjuncts {
			for _, a := range d.Atoms {
				if a.Rel == "R" {
					rGroup = &groups[i]
				}
			}
		}
	}
	if rGroup == nil || len(rGroup.Disjuncts) != 2 {
		t.Errorf("R group = %+v", rGroup)
	}
}

func TestSeparatorSelfJoinPosition(t *testing.T) {
	// Adv(x,a),Adv(x,b): x is a separator only because it sits at position 0
	// in both atoms.
	q := MustParse("Q() :- Adv(x,a), Adv(x,b), a <> b")
	sep, ok := q.FindSeparator()
	if !ok || sep.PerDisjunct[0] != "x" || sep.RelPos["Adv"] != 0 {
		t.Errorf("sep = %+v ok = %v", sep, ok)
	}
	// Adv(x,a),Adv(a,x): positions conflict — not a separator.
	q = MustParse("Q() :- Adv(x,a), Adv(a,x)")
	if _, ok = q.FindSeparator(); ok {
		t.Error("conflicting positions accepted as separator")
	}
}

func TestRootVarsStrict(t *testing.T) {
	q := MustParse("Q() :- R(x), S(x,y)")
	if got := q.Disjuncts[0].RootVarsStrict(); len(got) != 1 || got[0] != "x" {
		t.Errorf("strict roots = %v", got)
	}
	// A ground atom kills strict roots but not lenient ones.
	q = MustParse("Q() :- R(1), S(2,y)")
	if got := q.Disjuncts[0].RootVarsStrict(); len(got) != 0 {
		t.Errorf("strict roots with ground atom = %v", got)
	}
	if got := q.Disjuncts[0].RootVars(); len(got) != 1 || got[0] != "y" {
		t.Errorf("lenient roots = %v", got)
	}
}

func TestFindSeparatorStrict(t *testing.T) {
	q := MustParse("Q() :- R(x), S(x,y)")
	if _, ok := q.FindSeparatorStrict(); !ok {
		t.Error("strict separator missing for R(x),S(x,y)")
	}
	q = MustParse("Q() :- R(1), S(1,y)")
	if _, ok := q.FindSeparatorStrict(); ok {
		t.Error("strict separator found despite ground atom")
	}
	if _, ok := q.FindSeparator(); !ok {
		t.Error("lenient separator should still exist")
	}
}

func TestCollapseEquivalentAtoms(t *testing.T) {
	q := MustParse("Q() :- S(1,y1), S(1,y2)")
	c := q.Disjuncts[0].CollapseEquivalentAtoms(nil)
	if len(c.Atoms) != 1 {
		t.Errorf("collapse: %v", c)
	}
	// Shared variable blocks the collapse.
	q = MustParse("Q() :- S(x,y1), S(x,y2), R(y1)")
	c = q.Disjuncts[0].CollapseEquivalentAtoms(nil)
	if len(c.Atoms) != 3 {
		t.Errorf("collapse should not fire: %v", c)
	}
	// S(y,y) and S(a,b) with local vars are NOT equivalent.
	q = MustParse("Q() :- S(y,y), S(a,b)")
	c = q.Disjuncts[0].CollapseEquivalentAtoms(nil)
	if len(c.Atoms) != 2 {
		t.Errorf("distinct patterns collapsed: %v", c)
	}
	// But two diagonal atoms are.
	q = MustParse("Q() :- S(y,y), S(z,z)")
	c = q.Disjuncts[0].CollapseEquivalentAtoms(nil)
	if len(c.Atoms) != 1 {
		t.Errorf("diagonal atoms not collapsed: %v", c)
	}
	// Protected variables are global.
	q2 := MustParse("Q(y1) :- S(1,y1), S(1,y2)")
	c = q2.Disjuncts[0].CollapseEquivalentAtoms(q2.Head)
	if len(c.Atoms) != 2 {
		t.Errorf("protected var collapsed: %v", c)
	}
	// Predicate variables are global.
	q = MustParse("Q() :- S(1,y1), S(1,y2), y1 > 3")
	c = q.Disjuncts[0].CollapseEquivalentAtoms(nil)
	if len(c.Atoms) != 2 {
		t.Errorf("predicate var collapsed: %v", c)
	}
}

func TestConjoin(t *testing.T) {
	a := MustParse("Q() :- R(x)\nQ() :- T(x)").UCQ
	b := MustParse("Q() :- S(x,y)").UCQ
	c := Conjoin(a, b)
	if len(c.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(c.Disjuncts))
	}
	for _, d := range c.Disjuncts {
		if len(d.Atoms) != 2 {
			t.Errorf("merged conjunct = %v", d)
		}
	}
	// Variables renamed apart: x from both sides must not collide.
	vars := c.Disjuncts[0].Vars()
	if len(vars) != 3 {
		t.Errorf("vars = %v (renaming failed?)", vars)
	}
}
