package ucq

import (
	"math/rand"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/lineage"
)

func cqOf(t *testing.T, src string) CQ {
	t.Helper()
	return MustParse(src).Disjuncts[0]
}

func TestHomomorphism(t *testing.T) {
	cases := []struct {
		from, to string
		want     bool
	}{
		// R(x),S(x,y) maps into R(a),S(a,b).
		{"Q() :- R(x), S(x,y)", "Q() :- R(a), S(a,b)", true},
		// S(x,y) maps into S(a,a) (collapse).
		{"Q() :- S(x,y)", "Q() :- S(a,a)", true},
		// S(x,x) does NOT map into S(a,b) with a≠b as variables... it does:
		// x -> a requires S(a,a) in target; S(a,b) alone does not contain it.
		{"Q() :- S(x,x)", "Q() :- S(a,b)", false},
		// Constants must be preserved.
		{"Q() :- R(1)", "Q() :- R(1)", true},
		{"Q() :- R(1)", "Q() :- R(2)", false},
		{"Q() :- R(x)", "Q() :- R(2)", true},
		// Different relation: no.
		{"Q() :- R(x)", "Q() :- T(y)", false},
		// Longer into shorter with reuse.
		{"Q() :- S(x,y), S(y,z)", "Q() :- S(a,a)", true},
		{"Q() :- S(x,y), S(y,z)", "Q() :- S(a,b), S(b,c)", true},
		{"Q() :- S(x,y), S(y,z)", "Q() :- S(a,b), S(c,d)", false},
	}
	for _, c := range cases {
		from, to := cqOf(t, c.from), cqOf(t, c.to)
		if _, got := from.HomomorphismTo(to); got != c.want {
			t.Errorf("hom %q -> %q = %v want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestHomomorphismPredicates(t *testing.T) {
	// Predicates must be preserved verbatim (conservative).
	from := cqOf(t, "Q() :- S(x,y), x < y")
	to := cqOf(t, "Q() :- S(a,b), a < b")
	if _, ok := from.HomomorphismTo(to); !ok {
		t.Error("identical predicate shape rejected")
	}
	to2 := cqOf(t, "Q() :- S(a,b)")
	if _, ok := from.HomomorphismTo(to2); ok {
		t.Error("dropped predicate accepted")
	}
	// Predicate satisfied by constants after mapping.
	from3 := cqOf(t, "Q() :- S(x,y), x < 5")
	to3 := cqOf(t, "Q() :- S(1,b)")
	if _, ok := from3.HomomorphismTo(to3); !ok {
		t.Error("constant-true predicate rejected")
	}
	to4 := cqOf(t, "Q() :- S(9,b)")
	if _, ok := from3.HomomorphismTo(to4); ok {
		t.Error("constant-false predicate accepted")
	}
}

func TestMinimize(t *testing.T) {
	// S(x,y) ∧ S(x,z): z-atom is redundant (collapse z -> y).
	c := cqOf(t, "Q() :- S(x,y), S(x,z)")
	m := c.Minimize(nil)
	if len(m.Atoms) != 1 {
		t.Errorf("Minimize = %v", m)
	}
	// The triangle-free core: S(x,y),S(y,z),S(z,x) is already a core.
	c = cqOf(t, "Q() :- S(x,y), S(y,z), S(z,x)")
	if m = c.Minimize(nil); len(m.Atoms) != 3 {
		t.Errorf("core shrank: %v", m)
	}
	// Path of length 2 collapses onto a self-loop only when one exists.
	c = cqOf(t, "Q() :- S(x,x), S(x,y)")
	if m = c.Minimize(nil); len(m.Atoms) != 1 {
		t.Errorf("self-loop not a core: %v", m)
	}
	// Protected (head) variables must not be collapsed away.
	c = cqOf(t, "Q(y) :- S(x,y), S(x,z)")
	if m = c.Minimize([]string{"y"}); len(m.Atoms) != 1 {
		// S(x,z) can still fold into S(x,y) since z is existential.
		t.Errorf("Minimize with head = %v", m)
	}
	c = cqOf(t, "Q(y,z) :- S(x,y), S(x,z)")
	if m = c.Minimize([]string{"y", "z"}); len(m.Atoms) != 2 {
		t.Errorf("protected vars collapsed: %v", m)
	}
}

func TestRemoveRedundantDisjuncts(t *testing.T) {
	// R(x),S(x,y) is subsumed by S(x,y) (any match of the longer one is a
	// match of the shorter): the union equals S(x,y).
	q := MustParse("Q() :- S(x,y)\nQ() :- R(x), S(x,y)")
	r := q.RemoveRedundantDisjuncts(nil)
	if len(r.Disjuncts) != 1 || len(r.Disjuncts[0].Atoms) != 1 {
		t.Errorf("RemoveRedundantDisjuncts = %v", r)
	}
	// Equivalent duplicates: keep exactly one.
	q = MustParse("Q() :- R(x)\nQ() :- R(y)")
	r = q.RemoveRedundantDisjuncts(nil)
	if len(r.Disjuncts) != 1 {
		t.Errorf("duplicates kept: %v", r)
	}
	// Incomparable disjuncts survive.
	q = MustParse("Q() :- R(x)\nQ() :- T(y)")
	r = q.RemoveRedundantDisjuncts(nil)
	if len(r.Disjuncts) != 2 {
		t.Errorf("incomparable dropped: %v", r)
	}
}

// TestRedundancySemantics: removing redundant disjuncts never changes the
// lineage semantics, verified on random databases.
func TestRedundancySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	queries := []string{
		"Q() :- S(x,y)\nQ() :- R(x), S(x,y)",
		"Q() :- R(x)\nQ() :- R(y)\nQ() :- R(z), T(z)",
		"Q() :- S(x,y), S(x,z)\nQ() :- S(a,b)",
	}
	for trial := 0; trial < 20; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("T", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		for i := int64(1); i <= 3; i++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("R", 1, engine.Int(i))
			}
			if rng.Intn(2) == 0 {
				db.MustInsert("T", 1, engine.Int(i))
			}
			for j := int64(1); j <= 2; j++ {
				if rng.Intn(2) == 0 {
					db.MustInsert("S", 1, engine.Int(i), engine.Int(j))
				}
			}
		}
		for _, src := range queries {
			q := MustParse(src)
			reduced := q.RemoveRedundantDisjuncts(nil)
			a, err := EvalBoolean(db, q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			b, err := EvalBoolean(db, reduced)
			if err != nil {
				t.Fatal(err)
			}
			if lineage.DNF(a).Normalize().String() != lineage.DNF(b).Normalize().String() {
				t.Fatalf("trial %d %q: lineage changed:\n%v\nvs\n%v", trial, src,
					a.Normalize(), b.Normalize())
			}
		}
	}
}

// TestQuickHomomorphismSoundness: whenever HomomorphismTo(c, d) reports a
// homomorphism, containment d ⊆ c must hold on random databases — every
// database where d has a match, c has one too.
func TestQuickHomomorphismSoundness(t *testing.T) {
	shapes := []string{
		"Q() :- S(x,y)",
		"Q() :- S(x,x)",
		"Q() :- S(x,y), S(y,z)",
		"Q() :- S(x,y), S(y,x)",
		"Q() :- R(x), S(x,y)",
		"Q() :- R(x), S(x,y), S(y,z)",
		"Q() :- S(1,y)",
		"Q() :- R(x), S(x,y), x < y",
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		n := int64(1 + rng.Intn(3))
		for i := int64(1); i <= n; i++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("R", 1, engine.Int(i))
			}
			for j := int64(1); j <= n; j++ {
				if rng.Intn(2) == 0 {
					db.MustInsert("S", 1, engine.Int(i), engine.Int(j))
				}
			}
		}
		for _, cs := range shapes {
			for _, ds := range shapes {
				c, d := cqOf(t, cs), cqOf(t, ds)
				if _, ok := c.HomomorphismTo(d); !ok {
					continue
				}
				lc, err := EvalBoolean(db, UCQ{Disjuncts: []CQ{c}})
				if err != nil {
					t.Fatal(err)
				}
				ld, err := EvalBoolean(db, UCQ{Disjuncts: []CQ{d}})
				if err != nil {
					t.Fatal(err)
				}
				if !ld.IsFalse() && lc.IsFalse() {
					t.Fatalf("hom %q -> %q but d matched and c did not", cs, ds)
				}
			}
		}
	}
}

func TestContainsUCQAndEquivalence(t *testing.T) {
	parse := func(src string) UCQ { return MustParse(src).UCQ }
	// Subsumption: S(x,y) contains R(x),S(x,y).
	a := parse("Q() :- S(x,y)")
	b := parse("Q() :- R(x), S(x,y)")
	if !ContainsUCQ(a, b) {
		t.Error("S(x,y) should contain R,S")
	}
	if ContainsUCQ(b, a) {
		t.Error("R,S should not contain S alone")
	}
	// Union equivalence up to disjunct order and duplicates.
	u1 := parse("Q() :- R(x)\nQ() :- T(y)")
	u2 := parse("Q() :- T(a)\nQ() :- R(b)\nQ() :- R(c)")
	if !EquivalentBool(u1, u2) {
		t.Error("reordered/duplicated unions should be equivalent")
	}
	// Minimization preserves equivalence.
	c := parse("Q() :- S(x,y), S(x,z)")
	min := UCQ{Disjuncts: []CQ{c.Disjuncts[0].Minimize(nil)}}
	if !EquivalentBool(c, min) {
		t.Error("minimized CQ not equivalent to original")
	}
	// Different relations are not equivalent.
	if EquivalentBool(parse("Q() :- R(x)"), parse("Q() :- T(x)")) {
		t.Error("R and T equivalent?")
	}
	// Semantics spot check on random DBs: equivalence implies equal lineage.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		db := engine.NewDatabase()
		db.MustCreateRelation("R", false, "a")
		db.MustCreateRelation("T", false, "a")
		db.MustCreateRelation("S", false, "a", "b")
		for i := int64(1); i <= 3; i++ {
			if rng.Intn(2) == 0 {
				db.MustInsert("R", 1, engine.Int(i))
			}
			if rng.Intn(2) == 0 {
				db.MustInsert("T", 1, engine.Int(i))
			}
		}
		l1, _ := EvalBoolean(db, u1)
		l2, _ := EvalBoolean(db, u2)
		if lineage.DNF(l1).Normalize().String() != lineage.DNF(l2).Normalize().String() {
			t.Fatalf("equivalent unions disagree on lineage")
		}
	}
}
