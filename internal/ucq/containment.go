package ucq

import "mvdb/internal/engine"

// HomomorphismTo searches for a homomorphism from c to d: a mapping of c's
// variables to d's terms that is the identity on constants and maps every
// atom of c onto some atom of d (same relation, same polarity). By the
// Chandra-Merlin theorem, for Boolean CQs without predicates a homomorphism
// c → d exists iff d ⊆ c (every model of d satisfies c).
//
// Comparison predicates are handled conservatively: a homomorphism is only
// accepted if every predicate of c maps to a syntactically identical
// predicate of d (or to a trivially true constant comparison). This keeps
// the relation sound — a reported homomorphism always implies containment —
// at the price of completeness.
func (c CQ) HomomorphismTo(d CQ) (map[string]Term, bool) {
	h := map[string]Term{}
	if c.homSearch(d, 0, h) && c.predsPreserved(d, h) {
		return h, true
	}
	return nil, false
}

func (c CQ) homSearch(d CQ, atom int, h map[string]Term) bool {
	if atom == len(c.Atoms) {
		return true
	}
	a := c.Atoms[atom]
	for _, b := range d.Atoms {
		if b.Rel != a.Rel || b.Negated != a.Negated || len(b.Args) != len(a.Args) {
			continue
		}
		// Try mapping a onto b.
		var bound []string
		ok := true
		for i := range a.Args {
			ta, tb := a.Args[i], b.Args[i]
			if ta.IsConst {
				if !tb.IsConst || !ta.Const.Equal(tb.Const) {
					ok = false
					break
				}
				continue
			}
			if prev, exists := h[ta.Var]; exists {
				if !termEqual(prev, tb) {
					ok = false
					break
				}
				continue
			}
			h[ta.Var] = tb
			bound = append(bound, ta.Var)
		}
		if ok && c.homSearch(d, atom+1, h) {
			return true
		}
		for _, v := range bound {
			delete(h, v)
		}
	}
	return false
}

func termEqual(a, b Term) bool {
	if a.IsConst != b.IsConst {
		return false
	}
	if a.IsConst {
		return a.Const.Equal(b.Const)
	}
	return a.Var == b.Var
}

// predsPreserved checks that each predicate of c, after applying h, appears
// verbatim in d or is a true constant comparison.
func (c CQ) predsPreserved(d CQ, h map[string]Term) bool {
	apply := func(t Term) Term {
		if t.IsConst {
			return t
		}
		if m, ok := h[t.Var]; ok {
			return m
		}
		return t
	}
	for _, p := range c.Preds {
		mp := Pred{Op: p.Op, L: apply(p.L), R: apply(p.R), Offset: p.Offset}
		if mp.L.IsConst && mp.R.IsConst && mp.EvalBound(mp.L.Const, mp.R.Const) {
			continue
		}
		found := false
		for _, q := range d.Preds {
			if q.Op == mp.Op && q.Offset == mp.Offset && termEqual(q.L, mp.L) && termEqual(q.R, mp.R) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ContainsBool reports whether the Boolean query c contains the Boolean
// query d (d ⊆ c: every database satisfying d satisfies c), decided by
// homomorphism (sound; complete for predicate-free CQs).
func (c CQ) ContainsBool(d CQ) bool {
	_, ok := c.HomomorphismTo(d)
	return ok
}

// Minimize computes a core of the Boolean CQ: it repeatedly drops an atom
// if the full conjunct still maps homomorphically into the reduced one
// (which makes them equivalent). Head variables of a non-Boolean query must
// be passed as protected so they are never collapsed.
func (c CQ) Minimize(protected []string) CQ {
	cur := c
	// Freeze protected variables by treating them as constants during the
	// equivalence check: a marker constant per protected variable.
	freeze := map[string]engine.Value{}
	for i, v := range protected {
		freeze[v] = engine.Str("\x00frozen" + string(rune('0'+i%10)) + v)
	}
	for {
		improved := false
		for i := range cur.Atoms {
			if len(cur.Atoms) == 1 {
				break
			}
			reduced := CQ{Preds: cur.Preds}
			reduced.Atoms = append(reduced.Atoms, cur.Atoms[:i]...)
			reduced.Atoms = append(reduced.Atoms, cur.Atoms[i+1:]...)
			if !bindsAllPredVars(reduced) {
				continue // dropping this atom would unbind a predicate variable
			}
			// cur ⊇ reduced always (dropping atoms weakens); equivalence
			// needs reduced ⊆ cur, i.e. a homomorphism cur → reduced, with
			// protected variables pinned.
			fc := cur.Subst(freeze)
			fr := reduced.Subst(freeze)
			if _, ok := fc.HomomorphismTo(fr); ok {
				cur = reduced
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// bindsAllPredVars reports whether every predicate variable occurs in some
// positive atom (a requirement for the conjunct to be evaluable).
func bindsAllPredVars(c CQ) bool {
	pos := map[string]bool{}
	for _, v := range c.PositiveVars() {
		pos[v] = true
	}
	for _, p := range c.Preds {
		if !p.L.IsConst && !pos[p.L.Var] {
			return false
		}
		if !p.R.IsConst && !pos[p.R.Var] {
			return false
		}
	}
	return true
}

// RemoveRedundantDisjuncts drops disjuncts subsumed by another disjunct: if
// dᵢ ⊆ dⱼ (there is a homomorphism dⱼ → dᵢ), then dᵢ is redundant in the
// union. Each surviving disjunct is also minimized. Protected variables
// (head variables) are pinned.
func (u UCQ) RemoveRedundantDisjuncts(protected []string) UCQ {
	freeze := map[string]engine.Value{}
	for i, v := range protected {
		freeze[v] = engine.Str("\x00frozen" + string(rune('0'+i%10)) + v)
	}
	kept := make([]CQ, 0, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		redundant := false
		for j, e := range u.Disjuncts {
			if i == j {
				continue
			}
			// d ⊆ e via homomorphism e -> d; to break ties between
			// equivalent disjuncts keep the earlier one.
			fe := e.Subst(freeze)
			fd := d.Subst(freeze)
			if _, ok := fe.HomomorphismTo(fd); ok {
				if _, back := fd.HomomorphismTo(fe); back && j > i {
					continue // equivalent; the later one will be dropped
				}
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, d.Minimize(protected))
		}
	}
	return UCQ{Disjuncts: kept}
}

// ContainsUCQ reports whether the Boolean UCQ c contains d (d ⊆ c): every
// disjunct of d must be contained in some disjunct of c (sound and complete
// for predicate-free UCQs by Sagiv-Yannakakis; conservative with
// predicates, like HomomorphismTo).
func ContainsUCQ(c, d UCQ) bool {
	for _, dd := range d.Disjuncts {
		found := false
		for _, cc := range c.Disjuncts {
			if _, ok := cc.HomomorphismTo(dd); ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// EquivalentBool reports whether two Boolean UCQs are logically equivalent
// (mutual containment, same caveats as ContainsUCQ).
func EquivalentBool(a, b UCQ) bool {
	return ContainsUCQ(a, b) && ContainsUCQ(b, a)
}
