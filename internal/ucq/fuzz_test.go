package ucq

import (
	"testing"

	"mvdb/internal/engine"
)

// FuzzParse ensures the parser never panics and that anything it accepts
// round-trips through String back to an equivalent parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Q(x) :- R(x,y), S(y)",
		"Q() :- R(x), S(x,y), T(y)",
		"Q(aid) :- Student(aid,year), Advisor(aid,a), Author(a,n), n like '%Madden%'",
		"Q(x) :- R(x), x > 3, x <= 7, x <> 5",
		"Q(x) :- R(x)\nQ(x) :- T(x)",
		"Q(x) :- R(x), not D(x)",
		"V1(aid1,aid2) :- Advisor(aid1,aid2), Student(aid1,year)",
		"Q(x) :- R('str with spaces', x)",
		"# comment\nQ(x) :- R(x)",
		"Q(x) :- R(-42, x)",
		"Q(",
		") :- (",
		"Q(x) :- R(x), 'unterminated",
		"Q(x) :- R(x) garbage",
		"∀(x) :- R(x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, q.String(), err)
		}
		if again.String() != q.String() {
			t.Fatalf("render not a fixed point: %q vs %q", q.String(), again.String())
		}
	})
}

// FuzzSubstitution: binding head variables never panics and removes those
// variables from the query.
func FuzzSubstitution(f *testing.F) {
	f.Add("Q(x,y) :- R(x,y,z), S(z,x)", int64(3), "v")
	f.Add("Q(a) :- R(a,b)", int64(-1), "")
	f.Fuzz(func(t *testing.T, src string, iv int64, sv string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Head) != 2 {
			return
		}
		b, err := q.Bind([]engine.Value{engine.Int(iv), engine.Str(sv)})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range b.Disjuncts {
			for _, v := range d.Vars() {
				if v == q.Head[0] || v == q.Head[1] {
					t.Fatalf("head variable %q survived binding", v)
				}
			}
		}
	})
}
