package ucq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomCQ builds a random conjunct over relations R0..R3 (arities 1..3) and
// variables x0..x5, with occasional constants, negation, and predicates.
func randomCQ(rng *rand.Rand) CQ {
	arity := []int{1, 2, 3, 2}
	var c CQ
	nAtoms := 1 + rng.Intn(4)
	for i := 0; i < nAtoms; i++ {
		rel := rng.Intn(len(arity))
		a := Atom{Rel: fmt.Sprintf("R%d", rel), Negated: rng.Intn(8) == 0}
		for j := 0; j < arity[rel]; j++ {
			if rng.Intn(6) == 0 {
				a.Args = append(a.Args, CInt(int64(rng.Intn(3))))
			} else {
				a.Args = append(a.Args, V(fmt.Sprintf("x%d", rng.Intn(6))))
			}
		}
		c.Atoms = append(c.Atoms, a)
	}
	vars := c.Vars()
	if len(vars) > 0 && rng.Intn(3) == 0 {
		c.Preds = append(c.Preds, Pred{
			Op: PredOp(rng.Intn(6)),
			L:  V(vars[rng.Intn(len(vars))]),
			R:  V(vars[rng.Intn(len(vars))]),
		})
	}
	return c
}

func randomUCQ(rng *rand.Rand) UCQ {
	u := UCQ{}
	for i := 0; i < 1+rng.Intn(3); i++ {
		u.Disjuncts = append(u.Disjuncts, randomCQ(rng))
	}
	return u
}

// scramble renames every variable injectively and shuffles atom, predicate,
// and disjunct order — a random member of the query's isomorphism class.
func scramble(u UCQ, head []string, rng *rand.Rand) (UCQ, []string) {
	perm := rng.Perm(16)
	rename := func(t Term) Term {
		if t.IsConst {
			return t
		}
		var i int
		fmt.Sscanf(t.Var, "x%d", &i)
		return V(fmt.Sprintf("z%d", perm[i]))
	}
	out := UCQ{Disjuncts: make([]CQ, len(u.Disjuncts))}
	for i, d := range u.Disjuncts {
		nd := CQ{Atoms: make([]Atom, len(d.Atoms))}
		for j, a := range d.Atoms {
			na := Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]Term, len(a.Args))}
			for k, t := range a.Args {
				na.Args[k] = rename(t)
			}
			nd.Atoms[j] = na
		}
		for _, p := range d.Preds {
			nd.Preds = append(nd.Preds, Pred{Op: p.Op, L: rename(p.L), R: rename(p.R), Offset: p.Offset})
		}
		rng.Shuffle(len(nd.Atoms), func(a, b int) { nd.Atoms[a], nd.Atoms[b] = nd.Atoms[b], nd.Atoms[a] })
		rng.Shuffle(len(nd.Preds), func(a, b int) { nd.Preds[a], nd.Preds[b] = nd.Preds[b], nd.Preds[a] })
		out.Disjuncts[i] = nd
	}
	rng.Shuffle(len(out.Disjuncts), func(a, b int) {
		out.Disjuncts[a], out.Disjuncts[b] = out.Disjuncts[b], out.Disjuncts[a]
	})
	nh := make([]string, len(head))
	for i, h := range head {
		nh[i] = rename(V(h)).Var
	}
	return out, nh
}

// TestFingerprintRenameInvariance: every scrambled isomorph of a random UCQ
// must share the original's fingerprint — the soundness half of the cache key
// (missing it would only cost hits, but here it must hold by construction).
func TestFingerprintRenameInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		u := randomUCQ(rng)
		fp := FingerprintUCQ(u)
		if fp.IsZero() {
			t.Fatalf("zero fingerprint for %v", u)
		}
		for rep := 0; rep < 4; rep++ {
			s, _ := scramble(u, nil, rng)
			if got := FingerprintUCQ(s); got != fp {
				t.Fatalf("trial %d: fingerprint changed under rename/shuffle\noriginal:  %v → %v\nscrambled: %v → %v",
					trial, u, fp, s, got)
			}
		}
	}
}

// TestFingerprintQueryInvariance: the same property for named queries — and
// the query's name must not enter the hash, while its head does.
func TestFingerprintQueryInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		u := randomUCQ(rng)
		vars := u.Disjuncts[0].Vars()
		if len(vars) == 0 {
			continue
		}
		head := vars[:1]
		q := &Query{Name: "Q", Head: head, UCQ: u}
		fp := FingerprintQuery(q)
		su, sh := scramble(u, head, rng)
		sq := &Query{Name: "Renamed", Head: sh, UCQ: su}
		if got := FingerprintQuery(sq); got != fp {
			t.Fatalf("trial %d: query fingerprint changed under rename/shuffle\n%v vs %v", trial, q, sq)
		}
	}
}

// TestFingerprintSeparates: structural perturbations must change the
// fingerprint — a collision here would serve one query's cached answers to a
// different query.
func TestFingerprintSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seen := map[Fingerprint]string{}
	for trial := 0; trial < 400; trial++ {
		u := randomUCQ(rng)
		cu := CanonicalUCQ(u)
		key := cu.String() // canonical spelling identifies the isomorphism class
		fp := FingerprintUCQ(u)
		if prev, ok := seen[fp]; ok && prev != key {
			t.Fatalf("fingerprint collision between %q and %q", prev, key)
		}
		seen[fp] = key
	}

	base := UCQ{Disjuncts: []CQ{{Atoms: []Atom{
		{Rel: "R0", Args: []Term{V("x"), V("y")}},
		{Rel: "R1", Args: []Term{V("y"), V("z")}},
	}}}}
	fp := FingerprintUCQ(base)
	perturbations := []UCQ{
		// different relation
		{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R2", Args: []Term{V("x"), V("y")}},
			{Rel: "R1", Args: []Term{V("y"), V("z")}},
		}}}},
		// broken join (z joins instead of y)
		{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R0", Args: []Term{V("x"), V("y")}},
			{Rel: "R1", Args: []Term{V("z"), V("z")}},
		}}}},
		// constant instead of variable
		{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R0", Args: []Term{V("x"), CInt(1)}},
			{Rel: "R1", Args: []Term{V("y"), V("z")}},
		}}}},
		// negation
		{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R0", Args: []Term{V("x"), V("y")}, Negated: true},
			{Rel: "R1", Args: []Term{V("y"), V("z")}},
		}}}},
		// extra atom
		{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R0", Args: []Term{V("x"), V("y")}},
			{Rel: "R1", Args: []Term{V("y"), V("z")}},
			{Rel: "R0", Args: []Term{V("z"), V("x")}},
		}}}},
	}
	for i, p := range perturbations {
		if FingerprintUCQ(p) == fp {
			t.Errorf("perturbation %d kept the fingerprint: %v", i, p)
		}
	}
}

// TestFingerprintHeadPositions: queries that differ only in which join
// variable is exported must not collide, and head order matters.
func TestFingerprintHeadPositions(t *testing.T) {
	u := UCQ{Disjuncts: []CQ{{Atoms: []Atom{
		{Rel: "R0", Args: []Term{V("x"), V("y")}},
	}}}}
	qx := &Query{Name: "Q", Head: []string{"x"}, UCQ: u}
	qy := &Query{Name: "Q", Head: []string{"y"}, UCQ: u}
	if FingerprintQuery(qx) == FingerprintQuery(qy) {
		t.Fatal("head position x vs y collided")
	}
	qxy := &Query{Name: "Q", Head: []string{"x", "y"}, UCQ: u}
	qyx := &Query{Name: "Q", Head: []string{"y", "x"}, UCQ: u}
	if FingerprintQuery(qxy) == FingerprintQuery(qyx) {
		t.Fatal("head order collided")
	}
	if FingerprintQuery(qx) == FingerprintUCQ(u) {
		t.Fatal("named query collided with its Boolean body")
	}
}

// TestCanonicalUCQIdempotent: canonicalization is a fixpoint and lands every
// isomorph on the same concrete value.
func TestCanonicalUCQIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		u := randomUCQ(rng)
		c1 := CanonicalUCQ(u)
		c2 := CanonicalUCQ(c1)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("not idempotent:\n%v\n%v", c1, c2)
		}
		s, _ := scramble(u, nil, rng)
		if cs := CanonicalUCQ(s); !reflect.DeepEqual(c1, cs) {
			t.Fatalf("isomorphs canonicalized differently:\n%v\n%v", c1, cs)
		}
	}
}

// TestFingerprintSymmetricSelfJoin exercises the individualize-and-refine
// search: fully symmetric self-joins where color refinement alone cannot
// split the variables.
func TestFingerprintSymmetricSelfJoin(t *testing.T) {
	// Triangle R(x,y),R(y,z),R(z,x): a cyclic automorphism group.
	tri := func(a, b, c string) UCQ {
		return UCQ{Disjuncts: []CQ{{Atoms: []Atom{
			{Rel: "R", Args: []Term{V(a), V(b)}},
			{Rel: "R", Args: []Term{V(b), V(c)}},
			{Rel: "R", Args: []Term{V(c), V(a)}},
		}}}}
	}
	fp := FingerprintUCQ(tri("x", "y", "z"))
	for _, names := range [][3]string{{"u", "v", "w"}, {"c", "a", "b"}, {"z", "x", "y"}} {
		if got := FingerprintUCQ(tri(names[0], names[1], names[2])); got != fp {
			t.Fatalf("triangle rename %v changed the fingerprint", names)
		}
	}
	// A path R(x,y),R(y,z),R(z,w) must not collide with the triangle.
	path := UCQ{Disjuncts: []CQ{{Atoms: []Atom{
		{Rel: "R", Args: []Term{V("x"), V("y")}},
		{Rel: "R", Args: []Term{V("y"), V("z")}},
		{Rel: "R", Args: []Term{V("z"), V("w")}},
	}}}}
	if FingerprintUCQ(path) == fp {
		t.Fatal("path collided with triangle")
	}
}

// TestFingerprintDisjunctDedup: duplicated disjuncts do not change the
// fingerprint (Q ∨ Q ≡ Q).
func TestFingerprintDisjunctDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		u := randomUCQ(rng)
		dup := UCQ{Disjuncts: append(append([]CQ{}, u.Disjuncts...), u.Disjuncts[0])}
		if FingerprintUCQ(dup) != FingerprintUCQ(u) {
			t.Fatalf("duplicate disjunct changed the fingerprint: %v", u)
		}
	}
}

// FuzzFingerprintRenameInvariance drives the invariance property from a fuzz
// seed: whatever random query the seed produces, all its scrambles agree.
func FuzzFingerprintRenameInvariance(f *testing.F) {
	for _, s := range []int64{1, 2, 42, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		u := randomUCQ(rng)
		fp := FingerprintUCQ(u)
		for i := 0; i < 3; i++ {
			s, _ := scramble(u, nil, rng)
			if FingerprintUCQ(s) != fp {
				t.Fatalf("seed %d: fingerprint not rename-invariant for %v", seed, u)
			}
		}
		if !reflect.DeepEqual(CanonicalUCQ(u), CanonicalUCQ(CanonicalUCQ(u))) {
			t.Fatalf("seed %d: CanonicalUCQ not idempotent", seed)
		}
	})
}
