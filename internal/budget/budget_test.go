package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Error("zero budget not IsZero")
	}
	for _, b := range []Budget{
		{MaxNodes: 1},
		{MaxPairs: 1},
		{Deadline: time.Now()},
	} {
		if b.IsZero() {
			t.Errorf("%+v reported IsZero", b)
		}
	}
}

func TestWithTimeout(t *testing.T) {
	b := Budget{}.WithTimeout(time.Hour)
	if b.Deadline.IsZero() {
		t.Fatal("WithTimeout did not set a deadline")
	}
	earlier := time.Now().Add(time.Minute)
	b2 := Budget{Deadline: earlier}.WithTimeout(time.Hour)
	if !b2.Deadline.Equal(earlier) {
		t.Errorf("later timeout overrode earlier deadline: %v", b2.Deadline)
	}
	if !(Budget{}.WithTimeout(0)).Deadline.IsZero() {
		t.Error("WithTimeout(0) set a deadline")
	}
}

func TestErrorClasses(t *testing.T) {
	if err := Exceeded("obdd node", 100); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Exceeded not ErrBudgetExceeded: %v", err)
	}
	if err := Canceled(context.DeadlineExceeded); !errors.Is(err, ErrCanceled) {
		t.Errorf("Canceled not ErrCanceled: %v", err)
	}
	if errors.Is(Exceeded("x", 1), ErrCanceled) || errors.Is(Canceled(nil), ErrBudgetExceeded) {
		t.Error("error classes overlap")
	}
}

func TestCheck(t *testing.T) {
	if err := Check(nil, time.Time{}); err != nil {
		t.Errorf("unlimited check failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := Check(ctx, time.Time{}); err != nil {
		t.Errorf("live context: %v", err)
	}
	cancel()
	if err := Check(ctx, time.Time{}); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context: %v", err)
	}
	if err := Check(nil, time.Now().Add(-time.Second)); !errors.Is(err, ErrCanceled) {
		t.Errorf("passed deadline: %v", err)
	}
	if err := Check(nil, time.Now().Add(time.Hour)); err != nil {
		t.Errorf("future deadline: %v", err)
	}
}

func TestPanicCatch(t *testing.T) {
	want := Exceeded("pairs", 5)
	err := Catch(func() { Panic(want) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Catch returned %v", err)
	}
	if err := Catch(func() {}); err != nil {
		t.Errorf("clean run returned %v", err)
	}
	// Foreign panics pass through untouched.
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("foreign panic altered: %v", r)
		}
	}()
	_ = Catch(func() { panic("boom") })
}
