// Package budget defines the resource envelope of one evaluation — the
// deadline, node, and pair-visit bounds that make query answering an
// interruptible, resource-bounded computation instead of an open-ended one.
// OBDD compilation and MV-index intersection are deep recursions whose cost
// is data-dependent and, in the worst case, exponential (Section 4 of the
// paper frames MVDB query answering as potentially expensive compilation);
// a serving system must be able to give up cleanly.
//
// Two abort channels exist:
//
//   - Cooperative returns: loops that already return errors (per-block
//     compilation, per-answer query evaluation) check Check and propagate.
//   - Panic/Catch: hot recursions that return bare values (Apply synthesis,
//     MkNode hash-consing, the MVIntersect recursions) abort through
//     Panic(err), which the package-boundary entry points convert back into
//     an error with Catch. The panic payload is an unexported type, so an
//     unrelated panic is never swallowed.
//
// Violations are reported as typed errors: ErrBudgetExceeded for node/pair
// limits, ErrCanceled for context cancellation and deadline expiry. Callers
// classify with errors.Is — the HTTP layer maps ErrCanceled to 408 and
// ErrBudgetExceeded to 503.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Budget bounds one compilation or query evaluation. The zero value means
// unlimited.
type Budget struct {
	// MaxNodes bounds the number of OBDD nodes allocated by the evaluation,
	// summed across the owning manager and every scratch manager derived
	// from it (0 = unlimited).
	MaxNodes int
	// MaxPairs bounds the memoized (query node, index node) pairs visited by
	// one MV-index intersection (0 = unlimited).
	MaxPairs int
	// Deadline is an absolute wall-clock cutoff (zero = none). It is checked
	// at the same periodic points as context cancellation, so it works even
	// for callers that do not thread a context.
	Deadline time.Time
}

// IsZero reports whether the budget imposes no limits.
func (b Budget) IsZero() bool {
	return b.MaxNodes == 0 && b.MaxPairs == 0 && b.Deadline.IsZero()
}

// WithTimeout returns a copy of b whose deadline is at most d from now. A
// non-positive d leaves b unchanged; an existing earlier deadline wins.
func (b Budget) WithTimeout(d time.Duration) Budget {
	if d <= 0 {
		return b
	}
	dl := time.Now().Add(d)
	if b.Deadline.IsZero() || dl.Before(b.Deadline) {
		b.Deadline = dl
	}
	return b
}

// Typed failure classes. Concrete errors wrap one of these, so callers use
// errors.Is to classify.
var (
	// ErrBudgetExceeded marks node- or pair-budget violations: the query is
	// too expensive for the configured limits.
	ErrBudgetExceeded = errors.New("resource budget exceeded")
	// ErrCanceled marks cancellation and deadline expiry: the caller (or its
	// deadline) gave up before the evaluation finished.
	ErrCanceled = errors.New("evaluation canceled")
)

// Exceeded builds an ErrBudgetExceeded error naming the exhausted resource.
func Exceeded(resource string, limit int) error {
	return fmt.Errorf("%s budget (limit %d): %w", resource, limit, ErrBudgetExceeded)
}

// Canceled wraps the cause of a cancellation in ErrCanceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%v: %w", cause, ErrCanceled)
}

// Check returns a non-nil ErrCanceled-wrapped error when ctx is done or the
// deadline has passed. Both arguments are optional (nil / zero).
func Check(ctx context.Context, deadline time.Time) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Canceled(err)
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return Canceled(context.DeadlineExceeded)
	}
	return nil
}

// violation is the panic payload of Panic; unexported so Catch can never
// swallow a panic it does not own.
type violation struct{ err error }

// Panic aborts the current evaluation with err. It must only be raised under
// a Catch frame (every budget-armed entry point installs one).
func Panic(err error) {
	panic(violation{err})
}

// Catch runs fn, converting a Panic raised below it into the carried error.
// Any other panic is re-raised untouched.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(violation)
			if !ok {
				panic(r)
			}
			err = v.err
		}
	}()
	fn()
	return nil
}
