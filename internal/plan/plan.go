// Package plan extracts executable extensional plans for safe UCQs over
// tuple-independent databases — the "safe plans" of Dalvi & Suciu that the
// paper cites as the classic efficient evaluation technique [7]. Where
// package lift re-analyzes the query at every recursion step, Extract runs
// the analysis once and emits an operator tree (independent union,
// independent join, independent project, inclusion-exclusion, ground
// lookups) that can be executed repeatedly, inspected, and pretty-printed.
//
// All operators are polynomial identities of the product measure, so plans
// remain exact under the negative probabilities of the MarkoView
// translation.
package plan

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// ErrNoPlan is returned when the query admits no safe plan.
var ErrNoPlan = errors.New("plan: query has no safe plan")

const maxIEDisjuncts = 16

// Plan is an extracted extensional plan for one Boolean UCQ.
type Plan struct {
	Query ucq.UCQ
	Root  Node
	db    *engine.Database
}

// Node is one operator of the plan tree.
type Node interface {
	prob(x *exec, env map[string]engine.Value) (float64, error)
	format(b *strings.Builder, indent string)
}

// Extract analyzes the query once and produces a plan, or ErrNoPlan.
func Extract(db *engine.Database, u ucq.UCQ) (*Plan, error) {
	e := &extractor{db: db}
	root, err := e.ucq(u)
	if err != nil {
		return nil, err
	}
	return &Plan{Query: u, Root: root, db: db}, nil
}

// Prob executes the plan.
func (p *Plan) Prob() (float64, error) {
	return p.Root.prob(&exec{db: p.db}, map[string]engine.Value{})
}

// String renders the operator tree.
func (p *Plan) String() string {
	var b strings.Builder
	p.Root.format(&b, "")
	return strings.TrimRight(b.String(), "\n")
}

type exec struct {
	db *engine.Database
}

type extractor struct {
	db *engine.Database
}

func (e *extractor) isDet(rel string) bool {
	r := e.db.Relation(rel)
	return r != nil && r.Deterministic
}

func (e *extractor) skip() ucq.AtomSkip {
	return ucq.SkipDeterministic(e.isDet, ucq.SkipNegated)
}

// ucq mirrors lift's rule order, emitting nodes instead of numbers.
func (e *extractor) ucq(u ucq.UCQ) (Node, error) {
	var live []ucq.CQ
	for _, d := range u.Disjuncts {
		if sd, ok := simplify(d); ok {
			live = append(live, sd)
		}
	}
	if len(live) == 0 {
		return constNode(0), nil
	}
	u = ucq.UCQ{Disjuncts: live}.RemoveRedundantDisjuncts(nil)

	if groups := u.UnionGroups(); len(groups) > 1 {
		children := make([]Node, 0, len(groups))
		for _, g := range groups {
			c, err := e.ucq(g)
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		}
		return &indUnion{children: children}, nil
	}
	if len(u.Disjuncts) == 1 {
		return e.cq(u.Disjuncts[0])
	}
	if sep, ok := u.FindSeparatorSkip(e.skip()); ok {
		return e.project(u, sep)
	}
	if len(u.Disjuncts) > maxIEDisjuncts {
		return nil, fmt.Errorf("plan: inclusion-exclusion over %d disjuncts: %w", len(u.Disjuncts), ErrNoPlan)
	}
	node := &ieSum{}
	n := len(u.Disjuncts)
	for mask := 1; mask < 1<<uint(n); mask++ {
		merged := mergeCQs(u.Disjuncts, mask)
		child, err := e.cq(merged)
		if err != nil {
			return nil, err
		}
		sign := 1
		if popcount(mask)%2 == 0 {
			sign = -1
		}
		node.signs = append(node.signs, sign)
		node.children = append(node.children, child)
	}
	return node, nil
}

func (e *extractor) cq(d ucq.CQ) (Node, error) {
	d, ok := simplify(d)
	if !ok {
		return constNode(0), nil
	}
	d = d.CollapseEquivalentAtoms(nil).Minimize(nil)
	if len(freeVars(d)) == 0 {
		return &groundCQ{cq: d}, nil
	}
	if e.allDet(d) {
		return &detExists{cq: d}, nil
	}
	comps := d.Components()
	if len(comps) > 1 && relationDisjoint(comps) {
		children := make([]Node, 0, len(comps))
		for _, c := range comps {
			child, err := e.cq(c)
			if err != nil {
				return nil, err
			}
			children = append(children, child)
		}
		return &indJoin{children: children}, nil
	}
	uu := ucq.UCQ{Disjuncts: []ucq.CQ{d}}
	if sep, ok := uu.FindSeparatorSkip(e.skip()); ok {
		return e.project(uu, sep)
	}
	return nil, fmt.Errorf("plan: no rule applies to %s: %w", d, ErrNoPlan)
}

// project emits an independent-project node. The separator is replaced by a
// runtime marker constant in the child, so the child plan is extracted once
// and re-evaluated per domain value.
func (e *extractor) project(u ucq.UCQ, sep ucq.Separator) (Node, error) {
	name := freshRuntimeVar(u)
	node := &indProject{varName: name}
	sub := ucq.UCQ{}
	for di, d := range u.Disjuncts {
		bound := d.Subst(map[string]engine.Value{sep.PerDisjunct[di]: marker(name)})
		sub.Disjuncts = append(sub.Disjuncts, bound)
		// Domain probe: one probabilistic atom of this disjunct carrying
		// the separator; the runtime narrows its tuples by any marker-bound
		// column before projecting the separator column.
		probeDone := false
		for _, a := range d.Atoms {
			if e.skip()(a) {
				continue
			}
			pos := sep.RelPos[a.Rel]
			if pos < 0 || pos >= len(a.Args) || a.Args[pos].IsConst || a.Args[pos].Var != sep.PerDisjunct[di] {
				continue
			}
			node.probes = append(node.probes, probe{atom: bound.Atoms[atomIndex(d, a)], sepPos: pos})
			probeDone = true
			break
		}
		if !probeDone {
			return nil, fmt.Errorf("plan: internal: separator %s has no probe atom", sep.PerDisjunct[di])
		}
	}
	child, err := e.ucq(sub)
	if err != nil {
		return nil, err
	}
	node.child = child
	return node, nil
}

func atomIndex(d ucq.CQ, a ucq.Atom) int {
	for i := range d.Atoms {
		if d.Atoms[i].String() == a.String() {
			return i
		}
	}
	return 0
}

func (e *extractor) allDet(d ucq.CQ) bool {
	for _, a := range d.Atoms {
		if !e.isDet(a.Rel) {
			return false
		}
	}
	return true
}

// --- runtime markers -------------------------------------------------------

const markerPrefix = "\x00plan:"

func marker(name string) engine.Value { return engine.Str(markerPrefix + name) }

func isMarker(v engine.Value) (string, bool) {
	if v.IsStr && strings.HasPrefix(v.Str, markerPrefix) {
		return v.Str[len(markerPrefix):], true
	}
	return "", false
}

// bindMarkers replaces marker constants with their runtime values.
func bindMarkers(d ucq.CQ, env map[string]engine.Value) ucq.CQ {
	sub := func(t ucq.Term) ucq.Term {
		if t.IsConst {
			if name, ok := isMarker(t.Const); ok {
				if v, bound := env[name]; bound {
					return ucq.C(v)
				}
			}
		}
		return t
	}
	out := ucq.CQ{Atoms: make([]ucq.Atom, len(d.Atoms)), Preds: make([]ucq.Pred, len(d.Preds))}
	for i, a := range d.Atoms {
		na := ucq.Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]ucq.Term, len(a.Args))}
		for j, t := range a.Args {
			na.Args[j] = sub(t)
		}
		out.Atoms[i] = na
	}
	for i, p := range d.Preds {
		out.Preds[i] = ucq.Pred{Op: p.Op, L: sub(p.L), R: sub(p.R), Offset: p.Offset}
	}
	return out
}

// freeVars returns variables of d (markers are constants, so a fully
// marker-bound conjunct counts as ground).
func freeVars(d ucq.CQ) []string { return d.Vars() }

func freshRuntimeVar(u ucq.UCQ) string {
	used := map[string]bool{}
	noteTerm := func(t ucq.Term) {
		if !t.IsConst {
			used[t.Var] = true
			return
		}
		// Markers from enclosing projects are constants by now; their names
		// must stay unique or nested bindings would clobber each other.
		if name, ok := isMarker(t.Const); ok {
			used[name] = true
		}
	}
	for _, d := range u.Disjuncts {
		for _, a := range d.Atoms {
			for _, t := range a.Args {
				noteTerm(t)
			}
		}
		for _, p := range d.Preds {
			noteTerm(p.L)
			noteTerm(p.R)
		}
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("z%d", i)
		if !used[name] {
			return name
		}
	}
}

// --- helpers shared with lift ----------------------------------------------

func simplify(d ucq.CQ) (ucq.CQ, bool) {
	out := ucq.CQ{Atoms: d.Atoms}
	for _, p := range d.Preds {
		if p.L.IsConst && p.R.IsConst {
			lm, lok := isMarker(p.L.Const)
			rm, rok := isMarker(p.R.Const)
			_ = lm
			_ = rm
			if !lok && !rok {
				if !p.EvalBound(p.L.Const, p.R.Const) {
					return ucq.CQ{}, false
				}
				continue
			}
		}
		out.Preds = append(out.Preds, p)
	}
	return out, true
}

func relationDisjoint(comps []ucq.CQ) bool {
	seen := map[string]int{}
	for i, c := range comps {
		for _, a := range c.Atoms {
			if j, ok := seen[a.Rel]; ok && j != i {
				return false
			}
			seen[a.Rel] = i
		}
	}
	return true
}

func mergeCQs(ds []ucq.CQ, mask int) ucq.CQ {
	var out ucq.CQ
	for i, d := range ds {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		prefix := fmt.Sprintf("m%d·", i)
		rename := func(t ucq.Term) ucq.Term {
			if t.IsConst {
				return t
			}
			return ucq.V(prefix + t.Var)
		}
		for _, a := range d.Atoms {
			na := ucq.Atom{Rel: a.Rel, Negated: a.Negated, Args: make([]ucq.Term, len(a.Args))}
			for j, t := range a.Args {
				na.Args[j] = rename(t)
			}
			out.Atoms = append(out.Atoms, na)
		}
		for _, p := range d.Preds {
			out.Preds = append(out.Preds, ucq.Pred{Op: p.Op, L: rename(p.L), R: rename(p.R), Offset: p.Offset})
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// --- operators --------------------------------------------------------------

type constLeaf struct{ p float64 }

func constNode(p float64) Node { return &constLeaf{p: p} }

func (c *constLeaf) prob(*exec, map[string]engine.Value) (float64, error) { return c.p, nil }
func (c *constLeaf) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sconst %g\n", in, c.p)
}

type indUnion struct{ children []Node }

func (n *indUnion) prob(x *exec, env map[string]engine.Value) (float64, error) {
	prod := 1.0
	for _, c := range n.children {
		p, err := c.prob(x, env)
		if err != nil {
			return 0, err
		}
		prod *= 1 - p
	}
	return 1 - prod, nil
}

func (n *indUnion) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sindependent-union\n", in)
	for _, c := range n.children {
		c.format(b, in+"  ")
	}
}

type indJoin struct{ children []Node }

func (n *indJoin) prob(x *exec, env map[string]engine.Value) (float64, error) {
	prod := 1.0
	for _, c := range n.children {
		p, err := c.prob(x, env)
		if err != nil {
			return 0, err
		}
		prod *= p
	}
	return prod, nil
}

func (n *indJoin) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sindependent-join\n", in)
	for _, c := range n.children {
		c.format(b, in+"  ")
	}
}

type ieSum struct {
	signs    []int
	children []Node
}

func (n *ieSum) prob(x *exec, env map[string]engine.Value) (float64, error) {
	total := 0.0
	for i, c := range n.children {
		p, err := c.prob(x, env)
		if err != nil {
			return 0, err
		}
		total += float64(n.signs[i]) * p
	}
	return total, nil
}

func (n *ieSum) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sinclusion-exclusion (%d terms)\n", in, len(n.children))
	for i, c := range n.children {
		fmt.Fprintf(b, "%s  [%+d]\n", in, n.signs[i])
		c.format(b, in+"    ")
	}
}

// probe locates the separator domain of one disjunct.
type probe struct {
	atom   ucq.Atom
	sepPos int
}

type indProject struct {
	varName string
	probes  []probe
	child   Node
}

func (n *indProject) prob(x *exec, env map[string]engine.Value) (float64, error) {
	domain, err := n.domain(x, env)
	if err != nil {
		return 0, err
	}
	prod := 1.0
	for _, v := range domain {
		env[n.varName] = v
		p, err := n.child.prob(x, env)
		if err != nil {
			delete(env, n.varName)
			return 0, err
		}
		prod *= 1 - p
	}
	delete(env, n.varName)
	return 1 - prod, nil
}

// domain collects the distinct separator values of every probe, narrowing
// each probe by its first marker-bound column (the group-by pushdown of a
// relational safe plan).
func (n *indProject) domain(x *exec, env map[string]engine.Value) ([]engine.Value, error) {
	seen := map[string]engine.Value{}
	for _, pr := range n.probes {
		rel := x.db.Relation(pr.atom.Rel)
		if rel == nil {
			return nil, fmt.Errorf("plan: unknown relation %s", pr.atom.Rel)
		}
		bound := bindMarkers(ucq.CQ{Atoms: []ucq.Atom{pr.atom}}, env).Atoms[0]
		var candidates []int
		narrowed := false
		for i, t := range bound.Args {
			if i == pr.sepPos || !t.IsConst {
				continue
			}
			if _, stillMarker := isMarker(t.Const); stillMarker {
				continue
			}
			candidates = rel.MatchingIndexes(i, t.Const)
			narrowed = true
			break
		}
		if !narrowed {
			candidates = make([]int, rel.Len())
			for i := range candidates {
				candidates[i] = i
			}
		}
		for _, ti := range candidates {
			v := rel.Tuples[ti].Vals[pr.sepPos]
			seen[v.Key()] = v
		}
	}
	out := make([]engine.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

func (n *indProject) format(b *strings.Builder, in string) {
	rels := make([]string, len(n.probes))
	for i, p := range n.probes {
		rels[i] = fmt.Sprintf("%s[%d]", p.atom.Rel, p.sepPos)
	}
	fmt.Fprintf(b, "%sindependent-project %s over %s\n", in, n.varName, strings.Join(rels, " ∪ "))
	n.child.format(b, in+"  ")
}

// groundCQ is a conjunct whose every term is a constant or runtime marker.
type groundCQ struct{ cq ucq.CQ }

func (n *groundCQ) prob(x *exec, env map[string]engine.Value) (float64, error) {
	d := bindMarkers(n.cq, env)
	seen := map[int]bool{}
	prod := 1.0
	for _, p := range d.Preds {
		if !p.L.IsConst || !p.R.IsConst {
			return 0, fmt.Errorf("plan: unbound predicate %s", p)
		}
		if !p.EvalBound(p.L.Const, p.R.Const) {
			return 0, nil
		}
	}
	for _, a := range d.Atoms {
		rel := x.db.Relation(a.Rel)
		if rel == nil {
			return 0, fmt.Errorf("plan: unknown relation %s", a.Rel)
		}
		vals := make([]engine.Value, len(a.Args))
		for i, t := range a.Args {
			if !t.IsConst {
				return 0, fmt.Errorf("plan: unbound variable %s in ground conjunct", t.Var)
			}
			vals[i] = t.Const
		}
		ti := rel.Lookup(vals)
		if a.Negated {
			if ti >= 0 {
				return 0, nil
			}
			continue
		}
		if ti < 0 {
			return 0, nil
		}
		t := rel.Tuples[ti]
		if t.Var == 0 || seen[t.Var] {
			continue
		}
		seen[t.Var] = true
		prod *= engine.WeightToProb(t.Weight)
	}
	return prod, nil
}

func (n *groundCQ) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sground %s\n", in, cleanString(n.cq.String()))
}

// detExists is an existence check over deterministic relations only.
type detExists struct{ cq ucq.CQ }

func (n *detExists) prob(x *exec, env map[string]engine.Value) (float64, error) {
	d := bindMarkers(n.cq, env)
	lin, err := ucq.EvalBoolean(x.db, ucq.UCQ{Disjuncts: []ucq.CQ{d}})
	if err != nil {
		return 0, err
	}
	if lin.IsTrue() {
		return 1, nil
	}
	return 0, nil
}

func (n *detExists) format(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sexists(det) %s\n", in, cleanString(n.cq.String()))
}

// cleanString renders runtime markers readably: both the raw prefix and
// its Go-quoted escape form (Value.String quotes string constants).
func cleanString(s string) string {
	s = strings.ReplaceAll(s, markerPrefix, "$")
	return strings.ReplaceAll(s, `\x00plan:`, "$")
}

// Template is a plan for a Boolean UCQ with runtime parameters: extracted
// once, executed for any concrete parameter values.
type Template struct {
	Params []string
	inner  *Plan
}

// ExtractTemplate extracts a plan for a UCQ whose listed variables are
// runtime parameters (they become constants at execution time). Disjuncts
// that do not mention a parameter are unaffected.
func ExtractTemplate(db *engine.Database, u ucq.UCQ, params []string) (*Template, error) {
	binding := map[string]engine.Value{}
	for _, h := range params {
		binding[h] = marker(h)
	}
	p, err := Extract(db, u.Subst(binding))
	if err != nil {
		return nil, err
	}
	return &Template{Params: append([]string(nil), params...), inner: p}, nil
}

// ProbWith evaluates the template for concrete parameter values.
func (tp *Template) ProbWith(vals []engine.Value) (float64, error) {
	if len(vals) != len(tp.Params) {
		return 0, fmt.Errorf("plan: template has %d parameters, got %d values", len(tp.Params), len(vals))
	}
	env := map[string]engine.Value{}
	for i, h := range tp.Params {
		env[h] = vals[i]
	}
	return tp.inner.Root.prob(&exec{db: tp.inner.db}, env)
}

// String renders the template (parameters appear as $name).
func (tp *Template) String() string { return tp.inner.String() }

// QueryPlan is a plan template for a query with head variables: extracted
// once, executed per answer tuple.
type QueryPlan struct {
	Query *ucq.Query
	tmpl  *Template
}

// ExtractQuery extracts a single plan for a non-Boolean query by treating
// the head variables as runtime parameters; AnswerProb then evaluates it
// for any concrete answer tuple without re-analyzing the query.
func ExtractQuery(db *engine.Database, q *ucq.Query) (*QueryPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	tmpl, err := ExtractTemplate(db, q.UCQ, q.Head)
	if err != nil {
		return nil, err
	}
	return &QueryPlan{Query: q, tmpl: tmpl}, nil
}

// AnswerProb evaluates the plan for one answer tuple.
func (qp *QueryPlan) AnswerProb(head []engine.Value) (float64, error) {
	if len(head) != len(qp.Query.Head) {
		return 0, fmt.Errorf("plan: query %s has %d head variables, got %d values",
			qp.Query.Name, len(qp.Query.Head), len(head))
	}
	return qp.tmpl.ProbWith(head)
}

// String renders the plan template (head variables appear as $name).
func (qp *QueryPlan) String() string { return qp.tmpl.String() }

// Answers enumerates the query's answer tuples (via the engine) and
// evaluates the plan for each, returning heads with probabilities.
func (qp *QueryPlan) Answers(db *engine.Database) ([]Answer, error) {
	rows, err := ucq.Eval(db, qp.Query)
	if err != nil {
		return nil, err
	}
	out := make([]Answer, 0, len(rows))
	for _, r := range rows {
		p, err := qp.AnswerProb(r.Head)
		if err != nil {
			return nil, err
		}
		out = append(out, Answer{Head: r.Head, Prob: p})
	}
	return out, nil
}

// Answer is one answer tuple with its probability.
type Answer struct {
	Head []engine.Value
	Prob float64
}
