package plan

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/lift"
	"mvdb/internal/lineage"
	"mvdb/internal/ucq"
)

func randDB(rng *rand.Rand, negative bool) *engine.Database {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("T", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustCreateRelation("D", true, "a")
	w := func() float64 {
		if negative && rng.Intn(3) == 0 {
			return -rng.Float64() * 0.4
		}
		return rng.Float64() * 2
	}
	n := 2 + rng.Int63n(2)
	for i := int64(1); i <= n; i++ {
		if rng.Intn(2) == 0 {
			db.MustInsert("R", w(), engine.Int(i))
		}
		if rng.Intn(2) == 0 {
			db.MustInsert("T", w(), engine.Int(i))
		}
		if rng.Intn(2) == 0 {
			db.MustInsertDet("D", engine.Int(i))
		}
		for j := int64(0); j < rng.Int63n(3); j++ {
			db.MustInsert("S", w(), engine.Int(i), engine.Int(10*i+j))
		}
	}
	return db
}

var safeShapes = []string{
	"Q() :- R(x)",
	"Q() :- R(x), S(x,y)",
	"Q() :- R(x), S(x,y), T(x)",
	"Q() :- R(x), T(y)",
	"Q() :- R(x)\nQ() :- T(y)",
	"Q() :- R(x1), S(x1,y1)\nQ() :- T(x2), S(x2,y2)",
	"Q() :- R(x), S(x,y), y > 15",
	"Q() :- R(1)",
	"Q() :- R(1), S(1,y)",
	"Q() :- R(x), D(x)",
	"Q() :- R(x), S(x,y)\nQ() :- R(x2), T(x2)",
}

func TestPlanAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, trial%2 == 0)
		for _, src := range safeShapes {
			q := ucq.MustParse(src)
			p, err := Extract(db, q.UCQ)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			got, err := p.Prob()
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			lin, err := ucq.EvalBoolean(db, q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			want := bfProb(lin, db.Probs())
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %q: plan = %v brute = %v\nplan:\n%s", trial, src, got, want, p)
			}
		}
	}
}

func TestPlanMatchesLift(t *testing.T) {
	// Plans and the re-analyzing lifted evaluator must agree everywhere
	// both succeed.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		db := randDB(rng, false)
		for _, src := range safeShapes {
			q := ucq.MustParse(src)
			p, err := Extract(db, q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Prob()
			if err != nil {
				t.Fatal(err)
			}
			want, err := lift.Prob(db, q.UCQ)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%q: plan %v lift %v", src, got, want)
			}
		}
	}
}

func TestPlanUnsafe(t *testing.T) {
	db := randDB(rand.New(rand.NewSource(1)), false)
	q := ucq.MustParse("Q() :- R(x), S(x,y), T(y)") // H0
	if _, err := Extract(db, q.UCQ); !errors.Is(err, ErrNoPlan) {
		t.Errorf("H0: err = %v, want ErrNoPlan", err)
	}
}

func TestPlanReusableAcrossData(t *testing.T) {
	// A plan is extracted once and re-executed after the data changes.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	v := db.MustInsert("R", 1, engine.Int(1))
	db.MustInsert("S", 1, engine.Int(1), engine.Int(2))
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	p, err := Extract(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := p.Prob()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-0.25) > 1e-12 {
		t.Errorf("P = %v want 0.25", p1)
	}
	db.SetWeight(v, 3) // p(R) = 0.75
	p2, err := p.Prob()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-0.375) > 1e-12 {
		t.Errorf("after reweight P = %v want 0.375", p2)
	}
}

func TestPlanString(t *testing.T) {
	db := randDB(rand.New(rand.NewSource(2)), false)
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	p, err := Extract(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"independent-project", "ground"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "\x00") {
		t.Errorf("raw marker leaked into rendering:\n%s", s)
	}
}

func TestPlanNestedProjects(t *testing.T) {
	// R(x),S(x,y): project x, then inside each block project y — nested
	// runtime bindings must not clobber each other.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(9))
	for i := int64(1); i <= 4; i++ {
		db.MustInsert("R", rng.Float64()*2, engine.Int(i))
		for j := int64(1); j <= 3; j++ {
			db.MustInsert("S", rng.Float64()*2, engine.Int(i), engine.Int(100*i+j))
		}
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	p, err := Extract(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Prob()
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := ucq.EvalBoolean(db, q.UCQ)
	want := bfProb(lin, db.Probs())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("plan = %v brute = %v\n%s", got, want, p)
	}
}

func TestPlanDomainNarrowing(t *testing.T) {
	// The inner project's domain must be narrowed by the outer binding: on
	// a database with many S tuples per R value the plan stays fast (this
	// is a structural check — the probe uses the index — not a timing one).
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	for i := int64(1); i <= 50; i++ {
		db.MustInsert("R", 1, engine.Int(i))
		for j := int64(1); j <= 5; j++ {
			db.MustInsert("S", 1, engine.Int(i), engine.Int(1000*i+j))
		}
	}
	q := ucq.MustParse("Q() :- R(x), S(x,y)")
	p, err := Extract(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Prob()
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: 1 - (1 - 0.5(1-0.5^5))^50.
	block := 0.5 * (1 - math.Pow(0.5, 5))
	want := 1 - math.Pow(1-block, 50)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("plan = %v closed form = %v", got, want)
	}
}

func TestExtractQueryPerAnswer(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	rng := rand.New(rand.NewSource(11))
	for i := int64(1); i <= 6; i++ {
		db.MustInsert("R", rng.Float64()*2, engine.Int(i))
		for j := int64(1); j <= 2; j++ {
			db.MustInsert("S", rng.Float64()*2, engine.Int(i), engine.Int(10*i+j))
		}
	}
	q := ucq.MustParse("Q(x) :- R(x), S(x,y)")
	qp, err := ExtractQuery(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qp.String(), "$x") {
		t.Errorf("head parameter missing from plan:\n%s", qp)
	}
	answers, err := qp.Answers(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 6 {
		t.Fatalf("answers = %d", len(answers))
	}
	// Cross-check each answer against lifted inference on the bound query.
	for _, a := range answers {
		b, err := q.Bind(a.Head)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lift.Prob(db, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Prob-want) > 1e-9 {
			t.Errorf("answer %v: plan %v lift %v", a.Head, a.Prob, want)
		}
	}
	// Arity check.
	if _, err := qp.AnswerProb(nil); err == nil {
		t.Error("wrong head arity accepted")
	}
}

func TestExtractQueryParameterizedH0(t *testing.T) {
	// Boolean H0 is #P-hard, but with any of its variables exported as a
	// head parameter the residual query is hierarchical, so the per-answer
	// plan exists — the classic reason non-Boolean "unsafe" queries are
	// often still tractable per answer.
	db := engine.NewDatabase()
	db.MustCreateRelation("R", false, "a")
	db.MustCreateRelation("S", false, "a", "b")
	db.MustCreateRelation("T", false, "b")
	rng := rand.New(rand.NewSource(29))
	for i := int64(1); i <= 3; i++ {
		db.MustInsert("R", rng.Float64(), engine.Int(i))
		db.MustInsert("T", rng.Float64(), engine.Int(10+i))
		for j := int64(1); j <= 3; j++ {
			db.MustInsert("S", rng.Float64(), engine.Int(i), engine.Int(10+j))
		}
	}
	// Boolean H0: no plan.
	if _, err := Extract(db, ucq.MustParse("Q() :- R(x), S(x,y), T(y)").UCQ); !errors.Is(err, ErrNoPlan) {
		t.Errorf("Boolean H0: err = %v", err)
	}
	// Both parameterizations are per-answer safe and exact.
	for _, src := range []string{
		"Q(x) :- R(x), S(x,y), T(y)",
		"Q(y) :- R(x), S(x,y), T(y)",
	} {
		q := ucq.MustParse(src)
		qp, err := ExtractQuery(db, q)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		answers, err := qp.Answers(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 0 {
			t.Fatalf("%q: no answers", src)
		}
		for _, a := range answers {
			b, err := q.Bind(a.Head)
			if err != nil {
				t.Fatal(err)
			}
			lin, err := ucq.EvalBoolean(db, b)
			if err != nil {
				t.Fatal(err)
			}
			want := bfProb(lin, db.Probs())
			if math.Abs(a.Prob-want) > 1e-9 {
				t.Errorf("%q answer %v: plan %v brute %v", src, a.Head, a.Prob, want)
			}
		}
	}
}

// bfProb wraps the error-returning brute-force evaluator for test fixtures
// known to stay within the 30-variable limit.
func bfProb(d lineage.DNF, probs []float64) float64 {
	p, err := lineage.BruteForceProb(d, probs)
	if err != nil {
		panic(err)
	}
	return p
}
