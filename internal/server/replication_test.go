package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/replica"
)

func vals(vs ...int) []engine.Value {
	out := make([]engine.Value, len(vs))
	for i, v := range vs {
		out[i] = engine.Int(int64(v))
	}
	return out
}

// replPrimaryServer builds a live primary with replication enabled, served
// over real HTTP (the follower's fetch loop dials it).
func replPrimaryServer(t *testing.T, dir string, rcfg ReplicationConfig) (*Server, *Live, *httptest.Server) {
	t.Helper()
	s, l := liveServer(t, LiveConfig{WALDir: dir, SnapshotPath: filepath.Join(dir, "index.snap"), GroupCommit: 0})
	if err := s.EnableReplicationPrimary(l, rcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, l, ts
}

// replFollowerServer bootstraps a follower of primaryURL and serves it.
func replFollowerServer(t *testing.T, cfg FollowerConfig) (*Server, *FollowerState, *httptest.Server) {
	t.Helper()
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	ix, f, err := OpenFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix)
	s.EnableFollower(f)
	ts := httptest.NewServer(s)
	// Stop the fetch loop before the primary's httptest cleanup: an open
	// stream would pin its Close. FollowerState.Close is idempotent.
	t.Cleanup(func() { f.Close() })
	t.Cleanup(ts.Close)
	return s, f, ts
}

func waitReplication(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func followerApplied(s *Server) uint64 {
	rs := s.repl
	rs.applyMu.Lock()
	defer rs.applyMu.Unlock()
	return rs.appliedSeq
}

// updateBodies is a deterministic mutation script with its core.Mutation
// mirror, so tests can compare against a from-scratch rebuild.
var replSteps = []struct {
	body string
	muts []core.Mutation
}{
	{`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, 12], "weight": 3}]}`,
		[]core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: vals(1, 12), Weight: 3}}},
	{`{"mutations": [{"op": "delete", "rel": "Adv", "vals": [1, 11]},
	                 {"op": "reweight", "rel": "Adv", "vals": [1, 10], "weight": 0.5}]}`,
		[]core.Mutation{
			{Op: core.MutDelete, Rel: "Adv", Vals: vals(1, 11)},
			{Op: core.MutReweight, Rel: "Adv", Vals: vals(1, 10), Weight: 0.5}}},
	{`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [3, 10], "weight": 1.25}]}`,
		[]core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: vals(3, 10), Weight: 1.25}}},
	{`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, 13], "weight": 0.75}]}`,
		[]core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: vals(1, 13), Weight: 0.75}}},
}

// TestReplicationConverges: a follower bootstraps from the primary's
// snapshot, tails its WAL, and answers queries identically (1e-12) to a
// from-scratch rebuild over the same mutations.
func TestReplicationConverges(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 50 * time.Millisecond,
	})
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica"),
		PrimaryURL: pts.URL,
	})

	var applied []core.Mutation
	for i, step := range replSteps {
		rec, _ := do(t, ps, "POST", "/update", step.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("step %d: code %d body %s", i, rec.Code, rec.Body)
		}
		applied = append(applied, step.muts...)
	}
	want := uint64(len(replSteps))
	waitReplication(t, "follower catch-up", func() bool { return followerApplied(fs) == want })

	got := queryProb(t, fs, boolQ)
	exp := scratchProb(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("follower answer %v, from-scratch %v", got, exp)
	}
	// Role and lag surface in /stats on both sides.
	if _, out := do(t, ps, "GET", "/stats", ""); out["role"] != "primary" || out["term"].(float64) != 1 {
		t.Fatalf("primary stats: role=%v term=%v", out["role"], out["term"])
	}
	// The fetch loop's own counters update just after Apply returns, so give
	// them a beat.
	waitReplication(t, "follower stats settle", func() bool {
		_, out := do(t, fs, "GET", "/stats", "")
		if out["role"] != "follower" {
			t.Fatalf("follower stats role %v", out["role"])
		}
		repl := out["replication"].(map[string]any)
		return repl["applied_seq"].(float64) == float64(want) && repl["primary_term"].(float64) == 1
	})
}

// TestFollowerRefusesWrites: writes on a follower answer 503 not-primary.
func TestFollowerRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	_, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{})
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica"),
		PrimaryURL: pts.URL,
	})
	rec, out := do(t, fs, "POST", "/update", replSteps[0].body)
	if rec.Code != http.StatusServiceUnavailable || out["reason"] != "not-primary" {
		t.Fatalf("code %d reason %v", rec.Code, out["reason"])
	}
	if rec, _ := do(t, fs, "POST", "/reweight", `{"rel": "Adv", "vals": [1, 10], "weight": 1}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("reweight on follower: code %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("write refusal must carry Retry-After")
	}
}

// TestFollowerStaleness503: a follower cut off from its primary stops
// serving once past its staleness bound, with 503 + Retry-After, rather than
// returning silently stale probabilities.
func TestFollowerStaleness503(t *testing.T) {
	dir := t.TempDir()
	_, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:          filepath.Join(dir, "replica"),
		PrimaryURL:   pts.URL,
		MaxStaleness: 150 * time.Millisecond,
	})
	// Fresh: within the bound, reads flow.
	if got, exp := queryProb(t, fs, boolQ), scratchProb(t, nil, boolQ); math.Abs(got-exp) > 1e-12 {
		t.Fatalf("fresh follower answer %v want %v", got, exp)
	}
	// Kill the primary; heartbeats stop; the bound trips.
	pts.CloseClientConnections()
	pts.Close()
	waitReplication(t, "staleness trip", func() bool {
		rec, _ := do(t, fs, "POST", "/query", fmt.Sprintf(`{"query": %q}`, boolQ))
		return rec.Code == http.StatusServiceUnavailable
	})
	rec, out := do(t, fs, "POST", "/query", fmt.Sprintf(`{"query": %q}`, boolQ))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale follower served: code %d", rec.Code)
	}
	if out["reason"] != "stale" || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("stale refusal: reason=%v retry-after=%q", out["reason"], rec.Header().Get("Retry-After"))
	}
}

// TestPromoteFailover: kill the primary mid-stream, promote the follower,
// and check the new primary's answers are 1e-12-identical to a from-scratch
// rebuild — and that it serves its own followers.
func TestPromoteFailover(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	fs, _, fts := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica"),
		PrimaryURL: pts.URL,
	})

	var applied []core.Mutation
	for _, step := range replSteps[:2] {
		if rec, _ := do(t, ps, "POST", "/update", step.body); rec.Code != http.StatusOK {
			t.Fatalf("update: %d", rec.Code)
		}
		applied = append(applied, step.muts...)
	}
	waitReplication(t, "pre-failover catch-up", func() bool { return followerApplied(fs) == 2 })

	// Primary dies mid-stream.
	pts.CloseClientConnections()
	pts.Close()

	rec, out := do(t, fs, "POST", "/replication/promote", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: code %d body %s", rec.Code, rec.Body)
	}
	if out["term"].(float64) != 2 || out["applied_seq"].(float64) != 2 {
		t.Fatalf("promote response %v", out)
	}
	// The promoted node accepts writes and continues the WAL line.
	for _, step := range replSteps[2:] {
		rec, out := do(t, fs, "POST", "/update", step.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("post-failover update: %d %s", rec.Code, rec.Body)
		}
		if seq := out["seq"].(float64); seq <= 2 {
			t.Fatalf("post-failover seq %v did not continue the line", seq)
		}
		applied = append(applied, step.muts...)
	}
	got := queryProb(t, fs, boolQ)
	exp := scratchProb(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("promoted answer %v, from-scratch %v", got, exp)
	}
	// Promoting again is a 409, not a double promotion.
	if rec, _ := do(t, fs, "POST", "/replication/promote", ""); rec.Code != http.StatusConflict {
		t.Fatalf("second promote: code %d", rec.Code)
	}
	_ = ps

	// A fresh follower of the promoted node converges to the same answers.
	cs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica2"),
		PrimaryURL: fts.URL,
	})
	waitReplication(t, "chained follower catch-up", func() bool { return followerApplied(cs) == 4 })
	if got := queryProb(t, cs, boolQ); math.Abs(got-exp) > 1e-12 {
		t.Fatalf("chained follower answer %v, want %v", got, exp)
	}
}

// TestPromoteBootstrapOnlySeqLine: a follower whose bootstrap snapshot
// covered every frame (none shipped since) holds an empty local log.
// Promotion must re-anchor that log at the snapshot position so the first
// post-promote write gets a fresh sequence number — and a crash-restart of
// the promoted node must recover that write instead of filtering it out as
// snapshot-covered.
func TestPromoteBootstrapOnlySeqLine(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	// One batch BEFORE the follower exists: the bootstrap snapshot covers it,
	// so nothing is ever shipped over the stream.
	if rec, _ := do(t, ps, "POST", "/update", replSteps[0].body); rec.Code != http.StatusOK {
		t.Fatalf("update: %d", rec.Code)
	}
	fdir := filepath.Join(dir, "replica")
	fs, _, _ := replFollowerServer(t, FollowerConfig{Dir: fdir, PrimaryURL: pts.URL})
	waitReplication(t, "bootstrap", func() bool { return followerApplied(fs) == 1 })

	pts.CloseClientConnections()
	pts.Close()
	if rec, _ := do(t, fs, "POST", "/replication/promote", ""); rec.Code != http.StatusOK {
		t.Fatalf("promote: %d", rec.Code)
	}
	rec, out := do(t, fs, "POST", "/update", replSteps[3].body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-promote update: %d %s", rec.Code, rec.Body)
	}
	if seq := out["seq"].(float64); seq != 2 {
		t.Fatalf("post-promote write got seq %v, want 2 (the snapshot covers 1)", seq)
	}
	applied := append(append([]core.Mutation{}, replSteps[0].muts...), replSteps[3].muts...)
	exp := scratchProb(t, applied, boolQ)

	// Crash the promoted node (close the log with no final snapshot) and
	// recover its directory as a plain live node: snapshot at seq 1 + WAL
	// replay must yield the acknowledged post-promote write.
	if err := fs.repl.flog.Close(); err != nil {
		t.Fatal(err)
	}
	ix, l2, err := OpenLive(LiveConfig{WALDir: fdir, SnapshotPath: filepath.Join(fdir, "index.snap")},
		func() (*mvindex.Index, error) { return nil, fmt.Errorf("recovery must come from the snapshot") })
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(ix)
	s2.EnableLive(l2)
	t.Cleanup(func() { l2.Close() })
	if got := queryProb(t, s2, boolQ); math.Abs(got-exp) > 1e-12 {
		t.Fatalf("recovered promoted node answer %v, want %v", got, exp)
	}
}

// TestFencingDemotesStalePrimary: promotion fences the surviving old
// primary — it stops acking writes the moment it learns of the higher term.
func TestFencingDemotesStalePrimary(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica"),
		PrimaryURL: pts.URL,
	})
	if rec, _ := do(t, ps, "POST", "/update", replSteps[0].body); rec.Code != http.StatusOK {
		t.Fatalf("update: %d", rec.Code)
	}
	waitReplication(t, "catch-up", func() bool { return followerApplied(fs) == 1 })

	// Promote while the old primary is still alive (a network partition from
	// the operator's point of view, not a dead node).
	if rec, _ := do(t, fs, "POST", "/replication/promote", ""); rec.Code != http.StatusOK {
		t.Fatalf("promote: %d", rec.Code)
	}
	// The promotion notifies the old primary; it must demote itself.
	waitReplication(t, "old primary demotion", func() bool {
		_, out := do(t, ps, "GET", "/stats", "")
		return out["role"] == "demoted"
	})
	rec, out := do(t, ps, "POST", "/update", replSteps[2].body)
	if rec.Code != http.StatusServiceUnavailable || out["reason"] != "not-primary" {
		t.Fatalf("demoted primary acked a write: code %d reason %v", rec.Code, out["reason"])
	}
	// Its persisted term moved up too: a restart cannot resurrect the old line.
	if term, err := replica.LoadTerm(filepath.Join(dir, "primary")); err != nil || term != 2 {
		t.Fatalf("persisted term %d, %v; want 2", term, err)
	}
}

// TestFollowerLocalRecovery: a follower restart recovers from its local
// snapshot and WAL without refetching, resumes the stream at its cursor, and
// keeps converging.
func TestFollowerLocalRecovery(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	rdir := filepath.Join(dir, "replica")
	fs, f, _ := replFollowerServer(t, FollowerConfig{Dir: rdir, PrimaryURL: pts.URL})

	var applied []core.Mutation
	for _, step := range replSteps[:2] {
		do(t, ps, "POST", "/update", step.body)
		applied = append(applied, step.muts...)
	}
	waitReplication(t, "catch-up", func() bool { return followerApplied(fs) == 2 })
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// More writes while the follower is down.
	for _, step := range replSteps[2:] {
		do(t, ps, "POST", "/update", step.body)
		applied = append(applied, step.muts...)
	}

	// Restart: local state has seq 2, the stream supplies 3 and 4.
	fs2, f2, _ := replFollowerServer(t, FollowerConfig{Dir: rdir, PrimaryURL: pts.URL})
	if f2.AppliedSeq() != 2 {
		t.Fatalf("recovered at seq %d, want 2", f2.AppliedSeq())
	}
	waitReplication(t, "post-restart catch-up", func() bool { return followerApplied(fs2) == 4 })
	got := queryProb(t, fs2, boolQ)
	exp := scratchProb(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("recovered follower answer %v, from-scratch %v", got, exp)
	}
}

// TestFollowerRebootstrapsPastHorizon: when the primary's WAL was truncated
// past the follower's cursor (410), the follower refetches a snapshot
// mid-flight and keeps going.
func TestFollowerRebootstrapsPastHorizon(t *testing.T) {
	dir := t.TempDir()
	ps, pl, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	rdir := filepath.Join(dir, "replica")
	fs, f, _ := replFollowerServer(t, FollowerConfig{Dir: rdir, PrimaryURL: pts.URL})
	do(t, ps, "POST", "/update", replSteps[0].body)
	waitReplication(t, "catch-up", func() bool { return followerApplied(fs) == 1 })
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var applied []core.Mutation
	applied = append(applied, replSteps[0].muts...)
	for _, step := range replSteps[1:] {
		do(t, ps, "POST", "/update", step.body)
		applied = append(applied, step.muts...)
	}
	// Snapshot + truncate: the primary's log now starts above the follower's
	// cursor.
	if err := pl.Snapshot(); err != nil {
		t.Fatal(err)
	}

	fs2, _, _ := replFollowerServer(t, FollowerConfig{Dir: rdir, PrimaryURL: pts.URL})
	waitReplication(t, "rebootstrap", func() bool { return followerApplied(fs2) == 4 })
	rs := fs2.repl
	rs.roleMu.Lock()
	boots := rs.follower.Stats().Bootstraps
	rs.roleMu.Unlock()
	if boots == 0 {
		t.Fatal("follower never re-bootstrapped despite the horizon move")
	}
	got := queryProb(t, fs2, boolQ)
	exp := scratchProb(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("rebootstrapped answer %v, from-scratch %v", got, exp)
	}
}

// TestReplicationFaultHammer drives the stream through dropped, duplicated,
// truncated and stalled frames while queries race the apply path, then
// demands exact convergence. Run it under -race (ci.sh does).
func TestReplicationFaultHammer(t *testing.T) {
	dir := t.TempDir()
	var shipped atomic.Uint64
	hooks := replica.Hooks{ShipFrame: func(seq uint64, frame []byte) [][]byte {
		// Deterministic per-call (not per-seq) schedule, so a replayed frame
		// eventually gets through.
		switch n := shipped.Add(1); {
		case n%7 == 3:
			return nil // dropped: the follower sees a gap and reconnects
		case n%7 == 5:
			return [][]byte{frame, frame} // duplicated delivery
		case n%11 == 8:
			return [][]byte{frame[:len(frame)-2]} // truncated: CRC tear
		case n%13 == 12:
			time.Sleep(120 * time.Millisecond) // stall past the watchdog
			return [][]byte{frame}
		default:
			return [][]byte{frame}
		}
	}}
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		Hooks:             hooks,
	})
	// Watchdog tighter than the injected stall, so stalls actually trip it;
	// fast reconnects so the fault storm cannot outpace convergence.
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:              filepath.Join(dir, "replica"),
		PrimaryURL:       pts.URL,
		HeartbeatTimeout: 60 * time.Millisecond,
		MinBackoff:       5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
	})

	// Writers: a deterministic insert/delete churn plus reweights.
	const writers, rounds = 3, 8
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a := 100 + w*rounds + r
				body := fmt.Sprintf(`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, %d], "weight": 1.5}]}`, a)
				rec, out := do(t, ps, "POST", "/update", body)
				if rec.Code != http.StatusOK {
					t.Errorf("writer %d round %d: code %d body %s", w, r, rec.Code, rec.Body)
					return
				}
				if s := uint64(out["seq"].(float64)); s > seq.Load() {
					seq.Store(s)
				}
			}
		}(w)
	}
	// Readers race the apply path on the follower the whole time.
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
					do(t, fs, "POST", "/query", fmt.Sprintf(`{"query": %q}`, boolQ))
				}
			}
		}()
	}
	wg.Wait()
	total := seq.Load()
	waitReplication(t, "hammer convergence", func() bool { return followerApplied(fs) == total })
	close(stopReads)
	rwg.Wait()

	// The follower survived every fault and converged exactly: answers match
	// a from-scratch rebuild over the same mutation set.
	var applied []core.Mutation
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			applied = append(applied, core.Mutation{
				Op: core.MutInsert, Rel: "Adv", Vals: vals(1, 100+w*rounds+r), Weight: 1.5,
			})
		}
	}
	got := queryProb(t, fs, boolQ)
	exp := scratchProbAnyOrder(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("hammered follower answer %v, from-scratch %v", got, exp)
	}
	// And the faults actually fired.
	rs := fs.repl
	rs.roleMu.Lock()
	st := rs.follower.Stats()
	rs.roleMu.Unlock()
	if st.Retries == 0 || st.Duplicates == 0 {
		t.Fatalf("fault schedule never fired: %+v", st)
	}
}

// TestFollowerApplyRetrySurvivesPersistedFrame: a transient failure between
// the local WAL append and the index apply leaves the frame persisted but
// unapplied, and the reconnect refetches the same sequence number. The retry
// must apply the frame (exactly once), not livelock forever on the WAL's
// monotonicity check.
func TestFollowerApplyRetrySurvivesPersistedFrame(t *testing.T) {
	dir := t.TempDir()
	_, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:        filepath.Join(dir, "replica"),
		PrimaryURL: pts.URL,
	})
	rs := fs.repl
	rec, err := core.EncodeMutations(replSteps[0].muts)
	if err != nil {
		t.Fatal(err)
	}
	// The aborted first attempt: frame 1 persisted to the local WAL, but
	// appliedSeq never advanced.
	if err := rs.flog.AppendSeq(1, rec); err != nil {
		t.Fatal(err)
	}
	if err := rs.flog.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := followerApplied(fs); got != 0 {
		t.Fatalf("precondition: appliedSeq %d, want 0", got)
	}
	// The refetched frame arrives again; before the idempotent-append fix this
	// failed with "wal: non-monotone sequence" on every retry.
	if err := rs.applyFrame(fs)(1, rec); err != nil {
		t.Fatalf("retrying a persisted frame: %v", err)
	}
	if got := followerApplied(fs); got != 1 {
		t.Fatalf("appliedSeq %d after retry, want 1", got)
	}
	got := queryProb(t, fs, boolQ)
	exp := scratchProb(t, replSteps[0].muts, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("retried follower answer %v, from-scratch %v (double apply?)", got, exp)
	}
}

// TestPromoteStopsFollowerSnapshotter: promotion hands snapshotting to the
// write path. The follower-side snapshot loop must stop — left running it
// would label post-promotion snapshots with the frozen appliedSeq and race
// the Live snapshotter on the same WAL dir.
func TestPromoteStopsFollowerSnapshotter(t *testing.T) {
	dir := t.TempDir()
	ps, _, pts := replPrimaryServer(t, filepath.Join(dir, "primary"), ReplicationConfig{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	fdir := filepath.Join(dir, "replica")
	fs, _, _ := replFollowerServer(t, FollowerConfig{
		Dir:              fdir,
		PrimaryURL:       pts.URL,
		SnapshotInterval: 20 * time.Millisecond,
	})
	if rec, _ := do(t, ps, "POST", "/update", replSteps[0].body); rec.Code != http.StatusOK {
		t.Fatalf("update: %d", rec.Code)
	}
	waitReplication(t, "catch-up", func() bool { return followerApplied(fs) == 1 })
	// Let the follower snapshotter run at least once while it legitimately owns
	// the snapshot file.
	time.Sleep(60 * time.Millisecond)

	pts.CloseClientConnections()
	pts.Close()
	if rec, _ := do(t, fs, "POST", "/replication/promote", ""); rec.Code != http.StatusOK {
		t.Fatalf("promote: %d", rec.Code)
	}
	rs := fs.repl
	rs.roleMu.Lock()
	stopped := rs.snapStop == nil && rs.snapDone == nil
	rs.roleMu.Unlock()
	if !stopped {
		t.Fatal("follower snapshot loop still wired after promotion")
	}
	// Post-promotion writes, a Live-owned snapshot, then crash-recovery: the
	// snapshot's covered sequence must agree with its contents.
	var applied []core.Mutation
	applied = append(applied, replSteps[0].muts...)
	for _, step := range replSteps[1:] {
		if rec, _ := do(t, fs, "POST", "/update", step.body); rec.Code != http.StatusOK {
			t.Fatalf("post-promote update: %d", rec.Code)
		}
		applied = append(applied, step.muts...)
	}
	l := fs.live.Load()
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, seq, err := mvindex.LoadFileSeq(filepath.Join(fdir, "index.snap")); err != nil || seq != 4 {
		t.Fatalf("post-promotion snapshot covers seq %d, %v; want 4", seq, err)
	}
	if err := fs.repl.flog.Close(); err != nil {
		t.Fatal(err)
	}
	ix, l2, err := OpenLive(LiveConfig{WALDir: fdir, SnapshotPath: filepath.Join(fdir, "index.snap")},
		func() (*mvindex.Index, error) { return nil, fmt.Errorf("recovery must come from the snapshot") })
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(ix)
	s2.EnableLive(l2)
	t.Cleanup(func() { l2.Close() })
	got := queryProb(t, s2, boolQ)
	exp := scratchProb(t, applied, boolQ)
	if math.Abs(got-exp) > 1e-12 {
		t.Fatalf("recovered promoted node answer %v, from-scratch %v", got, exp)
	}
}

// scratchProbAnyOrder rebuilds from mutations whose relative order across
// writers is unknown but irrelevant (disjoint inserts commute).
func scratchProbAnyOrder(t *testing.T, muts []core.Mutation, query string) float64 {
	t.Helper()
	return scratchProb(t, muts, query)
}
