package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/mvindex"
	"mvdb/internal/replica"
	"mvdb/internal/wal"
)

// Replication wiring. A primary ships its WAL through internal/replica's
// snapshot and stream endpoints; a follower bootstraps from the snapshot,
// persists every shipped frame in its own WAL under the primary's sequence
// numbers, applies it through the incremental mvindex.ApplyMutations path
// (which falls back to a full recompile on core.ErrDeltaFallback and bumps
// the cross-query cache epoch on every commit), and serves reads only while
// within its staleness bound. Promotion turns the follower's local log into
// the write path of a new primary under a bumped, persisted fencing term.

// ReplicationConfig tunes the primary side of replication.
type ReplicationConfig struct {
	// HeartbeatInterval paces stream heartbeats; 0 means the replica
	// package default.
	HeartbeatInterval time.Duration
	// Hooks inject stream faults for chaos testing.
	Hooks replica.Hooks
}

// FollowerConfig configures a replica node.
type FollowerConfig struct {
	// Dir holds the follower's local state: its WAL (frames received from
	// the primary, under the primary's numbering), its index snapshot and
	// its fencing term. Required.
	Dir string
	// PrimaryURL is the primary's base URL, e.g. http://10.0.0.1:8080.
	// Required.
	PrimaryURL string
	// SnapshotPath defaults to Dir/index.snap.
	SnapshotPath string
	// MaxStaleness bounds how stale served reads may be: when the follower
	// has not observed itself caught up with the primary's durable position
	// for longer than this, evaluation endpoints answer 503 + Retry-After
	// instead of silently stale probabilities. 0 disables the gate.
	MaxStaleness time.Duration
	// SnapshotInterval is the period of local index snapshots (which also
	// truncate the local WAL); 0 snapshots only at bootstrap, promotion and
	// Close.
	SnapshotInterval time.Duration
	// GroupCommit is the local WAL's group-commit window.
	GroupCommit time.Duration
	// HeartbeatTimeout is the stream stall detector; 0 means the replica
	// package default.
	HeartbeatTimeout time.Duration
	// MinBackoff and MaxBackoff bound the reconnect backoff; 0 means the
	// replica package defaults.
	MinBackoff, MaxBackoff time.Duration
	// BootstrapTimeout bounds one snapshot fetch; 0 means 2 minutes.
	BootstrapTimeout time.Duration
	// Client issues the HTTP requests; nil means http.DefaultClient.
	Client *http.Client
}

func (c FollowerConfig) snapPath() string {
	if c.SnapshotPath != "" {
		return c.SnapshotPath
	}
	return c.Dir + "/index.snap"
}

func (c FollowerConfig) bootstrapTimeout() time.Duration {
	if c.BootstrapTimeout > 0 {
		return c.BootstrapTimeout
	}
	return 2 * time.Minute
}

// replState is the server's replication machinery, for either role.
type replState struct {
	dir      string
	snapPath string

	pcfg ReplicationConfig
	fcfg FollowerConfig

	// roleMu guards role transitions (promotion, demotion) and the
	// primary/follower pointers below.
	roleMu   sync.Mutex
	primary  *replica.Primary
	follower *replica.Follower
	promoted bool

	// Follower-side state. applyMu serializes frame application and local
	// snapshots; appliedSeq is the local WAL position applied to the index.
	flog       *wal.Log
	applyMu    sync.Mutex
	appliedSeq uint64

	snapStop, snapDone chan struct{}
}

// FollowerState is the recovered (or bootstrapped) state of a replica node,
// produced by OpenFollower and attached with Server.EnableFollower.
type FollowerState struct {
	cfg        FollowerConfig
	log        *wal.Log
	term       uint64
	appliedSeq uint64
	srv        *Server // set by EnableFollower
	closed     atomic.Bool
}

// AppliedSeq returns the WAL sequence number recovered into the index.
func (f *FollowerState) AppliedSeq() uint64 { return f.appliedSeq }

// OpenFollower recovers or bootstraps a replica node's state: the local
// snapshot plus local WAL tail when present (a restart), otherwise a checksum-
// verified snapshot fetched from the primary (first start), persisted locally
// before use. The returned index is attached with NewWith + EnableFollower.
func OpenFollower(cfg FollowerConfig) (*mvindex.Index, *FollowerState, error) {
	if cfg.Dir == "" || cfg.PrimaryURL == "" {
		return nil, nil, fmt.Errorf("server: FollowerConfig.Dir and PrimaryURL are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	term, err := replica.LoadTerm(cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: loading fencing term: %w", err)
	}

	var (
		ix      *mvindex.Index
		lastSeq uint64
	)
	if _, err := os.Stat(cfg.snapPath()); err == nil {
		ix, lastSeq, err = mvindex.LoadFileSeq(cfg.snapPath())
		if err != nil {
			return nil, nil, fmt.Errorf("server: loading local snapshot %s: %w", cfg.snapPath(), err)
		}
	} else {
		// First start: bootstrap from the primary.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.bootstrapTimeout())
		snap, ferr := replica.FetchSnapshot(ctx, cfg.Client, cfg.PrimaryURL, term)
		cancel()
		if ferr != nil {
			return nil, nil, fmt.Errorf("server: bootstrapping from %s: %w", cfg.PrimaryURL, ferr)
		}
		ix, lastSeq, err = mvindex.ReadSeq(bytes.NewReader(snap.Data))
		if err != nil {
			return nil, nil, fmt.Errorf("server: decoding bootstrap snapshot: %w", err)
		}
		if lastSeq != snap.Seq {
			return nil, nil, fmt.Errorf("server: bootstrap snapshot seq %d disagrees with header %d", lastSeq, snap.Seq)
		}
		if snap.Term > term {
			term = snap.Term
			if err := replica.SaveTerm(cfg.Dir, term); err != nil {
				return nil, nil, err
			}
		}
		// Persist before serving: a crash right after bootstrap must recover
		// locally, not refetch a now-different snapshot mid-line.
		if err := ix.SaveFileSeq(cfg.snapPath(), lastSeq); err != nil {
			return nil, nil, fmt.Errorf("server: persisting bootstrap snapshot: %w", err)
		}
	}

	// Replay the local WAL tail (frames received before the last shutdown or
	// crash), exactly like primary recovery.
	var pending []core.Mutation
	replayed := lastSeq
	err = wal.Replay(cfg.Dir, lastSeq, func(seq uint64, rec []byte) error {
		batch, err := core.DecodeMutations(rec)
		if err != nil {
			return fmt.Errorf("frame %d: %w", seq, err)
		}
		pending = append(pending, batch...)
		replayed = seq
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("server: replaying local WAL: %w", err)
	}
	if len(pending) > 0 {
		if _, err := ix.ApplyMutations(pending); err != nil {
			return nil, nil, fmt.Errorf("server: applying replayed local WAL tail: %w", err)
		}
	}

	log, err := wal.Open(cfg.Dir, wal.Options{GroupCommit: cfg.GroupCommit})
	if err != nil {
		return nil, nil, err
	}
	return ix, &FollowerState{cfg: cfg, log: log, term: term, appliedSeq: replayed}, nil
}

// EnableFollower attaches replica state to the server and starts tailing the
// primary. The server serves reads (subject to the staleness bound) and
// answers 503 not-primary on writes until promoted.
func (s *Server) EnableFollower(f *FollowerState) {
	f.srv = s
	rs := &replState{
		dir:        f.cfg.Dir,
		snapPath:   f.cfg.snapPath(),
		fcfg:       f.cfg,
		flog:       f.log,
		appliedSeq: f.appliedSeq,
	}
	s.repl = rs
	s.term.Store(f.term)
	s.role.Store(int32(roleFollower))
	rs.follower = replica.StartFollower(replica.FollowerConfig{
		Primary:          f.cfg.PrimaryURL,
		Client:           f.cfg.Client,
		Term:             s.term.Load,
		After:            f.appliedSeq,
		Apply:            rs.applyFrame(s),
		Bootstrap:        rs.rebootstrap(s),
		HeartbeatTimeout: f.cfg.HeartbeatTimeout,
		MinBackoff:       f.cfg.MinBackoff,
		MaxBackoff:       f.cfg.MaxBackoff,
		Logf:             s.logf,
	})
	if f.cfg.SnapshotInterval > 0 {
		rs.snapStop = make(chan struct{})
		rs.snapDone = make(chan struct{})
		go rs.snapshotLoop(s, f.cfg.SnapshotInterval)
	}
}

// EnableReplicationPrimary turns a live (write-path) server into a
// replication primary: it loads or initializes the fencing term persisted
// beside the WAL and starts answering the replication endpoints. Call after
// EnableLive, before serving.
func (s *Server) EnableReplicationPrimary(l *Live, rcfg ReplicationConfig) error {
	term, err := replica.LoadTerm(l.cfg.WALDir)
	if err != nil {
		return fmt.Errorf("server: loading fencing term: %w", err)
	}
	if term == 0 {
		term = 1
		if err := replica.SaveTerm(l.cfg.WALDir, term); err != nil {
			return err
		}
	}
	s.term.Store(term)
	s.role.Store(int32(rolePrimary))
	rs := &replState{dir: l.cfg.WALDir, snapPath: l.cfg.SnapshotPath, pcfg: rcfg}
	s.repl = rs
	rs.installPrimary(s, l)
	return nil
}

// installPrimary wires the log-shipping side over a write path.
func (rs *replState) installPrimary(s *Server, l *Live) {
	rs.roleMu.Lock()
	defer rs.roleMu.Unlock()
	rs.primary = &replica.Primary{
		Dir:               l.cfg.WALDir,
		Log:               l.log,
		Term:              s.term.Load,
		Horizon:           l.snapSeq.Load,
		Active:            s.shippingActive,
		Snapshot:          l.encodeReplicationSnapshot,
		OnStaleTerm:       s.demote,
		HeartbeatInterval: rs.pcfg.HeartbeatInterval,
		Hooks:             rs.pcfg.Hooks,
		Logf:              s.logf,
	}
}

// shippingActive gates the log-shipping endpoints: streams end when the node
// is demoted, and also when it drains — otherwise a connected follower's
// long-poll would pin graceful shutdown until the drain deadline.
func (s *Server) shippingActive() bool {
	return role(s.role.Load()) == rolePrimary && !s.draining.Load()
}

// applyFrame is the follower's apply path: decode, persist to the local WAL
// under the primary's sequence number, fsync, then apply through the
// incremental maintenance path. WAL-before-apply mirrors the primary: a
// crash between the two replays the frame on restart.
func (rs *replState) applyFrame(s *Server) func(uint64, []byte) error {
	return func(seq uint64, rec []byte) error {
		batch, err := core.DecodeMutations(rec)
		if err != nil {
			return fmt.Errorf("decoding frame %d: %w", seq, err)
		}
		rs.applyMu.Lock()
		defer rs.applyMu.Unlock()
		// A refetched frame can already sit at the tail of the local log: a
		// transient Sync or apply failure aborts the tail after AppendSeq took
		// the frame, and the reconnect re-ships the same sequence number.
		// Re-appending would trip the monotonicity check on every retry and
		// livelock the follower, so skip straight to Sync + apply. (The bytes
		// are identical — same primary frame — so the persisted copy stands.)
		if last := rs.flog.NextSeq() - 1; seq != last {
			if err := rs.flog.AppendSeq(seq, rec); err != nil {
				return err
			}
		}
		if err := rs.flog.Sync(); err != nil {
			return err
		}
		s.mu.Lock()
		_, err = s.ix.ApplyMutations(batch)
		s.mu.Unlock()
		if err != nil {
			// The primary applied this batch, so a failure here means the
			// replica diverged (or hit a resource limit). Refusing to
			// advance keeps the staleness gate honest: the node goes stale
			// and stops serving rather than serving wrong answers.
			return fmt.Errorf("applying frame %d: %w", seq, err)
		}
		rs.appliedSeq = seq
		return nil
	}
}

// rebootstrap refetches a snapshot after the primary answered 410 (our
// cursor predates its log horizon) and swaps it in as the serving index. The
// timeout derives from the fetch loop's context so Follower.Stop — and thus
// promotion, which runs under roleMu — cancels an in-flight fetch instead of
// blocking on it for up to the bootstrap timeout.
func (rs *replState) rebootstrap(s *Server) func(context.Context) (uint64, error) {
	return func(ctx context.Context) (uint64, error) {
		ctx, cancel := context.WithTimeout(ctx, rs.fcfg.bootstrapTimeout())
		defer cancel()
		snap, err := replica.FetchSnapshot(ctx, rs.fcfg.Client, rs.fcfg.PrimaryURL, s.term.Load())
		if err != nil {
			return 0, err
		}
		ix, seq, err := mvindex.ReadSeq(bytes.NewReader(snap.Data))
		if err != nil {
			return 0, fmt.Errorf("decoding snapshot: %w", err)
		}
		// The serving index is swapped wholesale, so the fresh one needs its
		// own cross-query cache (cache epochs do not carry across indexes).
		ix.EnableCache(s.cfg.Cache)
		rs.applyMu.Lock()
		defer rs.applyMu.Unlock()
		s.mu.Lock()
		s.ix = ix
		s.mu.Unlock()
		rs.appliedSeq = seq
		if snap.Term > s.term.Load() {
			s.term.Store(snap.Term)
			if err := replica.SaveTerm(rs.dir, snap.Term); err != nil {
				s.logf("server: persisting term after rebootstrap: %v", err)
			}
		}
		if err := ix.SaveFileSeq(rs.snapPath, seq); err != nil {
			s.logf("server: persisting rebootstrap snapshot: %v", err)
		}
		return seq, nil
	}
}

// localSnapshot persists the follower's index and truncates its local WAL,
// bounding recovery replay — the follower-side mirror of Live.Snapshot.
func (rs *replState) localSnapshot(s *Server) error {
	rs.applyMu.Lock()
	defer rs.applyMu.Unlock()
	seq := rs.appliedSeq
	gen, err := rs.flog.Rotate()
	if err != nil {
		return err
	}
	s.mu.RLock()
	err = s.ix.SaveFileSeq(rs.snapPath, seq)
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return rs.flog.RemoveBelow(gen)
}

// stopSnapshotLoop ends the follower snapshot loop, waiting for a mid-flight
// snapshot to finish. Called with roleMu held (which serializes promotion and
// Close, so the channels close exactly once); idempotent.
func (rs *replState) stopSnapshotLoop() {
	if rs.snapStop == nil {
		return
	}
	close(rs.snapStop)
	<-rs.snapDone
	rs.snapStop, rs.snapDone = nil, nil
}

func (rs *replState) snapshotLoop(s *Server, every time.Duration) {
	defer close(rs.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-rs.snapStop:
			return
		case <-t.C:
			if err := rs.localSnapshot(s); err != nil {
				s.logf("server: follower snapshot: %v", err)
			}
		}
	}
}

// Close stops the follower machinery: the fetch loop, the snapshot loop, a
// final local snapshot, and the local WAL. If the node was promoted, the
// write path (Live) owns the log now — Close closes that instead.
// Idempotent.
func (f *FollowerState) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	s := f.srv
	if s == nil || s.repl == nil {
		return f.log.Close()
	}
	rs := s.repl
	rs.roleMu.Lock()
	fol, promoted := rs.follower, rs.promoted
	if fol != nil {
		fol.Stop()
	}
	rs.stopSnapshotLoop()
	rs.roleMu.Unlock()
	if promoted {
		if l := s.live.Load(); l != nil {
			return l.Close()
		}
		return nil
	}
	var err error
	if serr := rs.localSnapshot(s); serr != nil {
		err = serr
	}
	if cerr := f.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// demote fences this node: somebody out there holds a higher term, so stop
// acking writes immediately. Reads keep serving (they are honest as of the
// demotion point); rejoining the topology is an operator decision.
func (s *Server) demote(seen uint64) {
	rs := s.repl
	if rs == nil {
		return
	}
	rs.roleMu.Lock()
	defer rs.roleMu.Unlock()
	if role(s.role.Load()) != rolePrimary {
		return
	}
	s.logf("server: fenced by term %d (own term %d); demoting — writes now answer 503", seen, s.term.Load())
	s.role.Store(int32(roleDemoted))
	s.term.Store(seen)
	// Persist the observed term so a restart cannot resurrect this node as a
	// primary of the superseded line.
	if err := replica.SaveTerm(rs.dir, seen); err != nil {
		s.logf("server: persisting term after demotion: %v", err)
	}
}

// handlePromote turns this follower into the primary: the fetch loop stops,
// the fencing term bumps past every term seen and persists, the local WAL
// becomes the write path, a snapshot pins the new stream horizon, and the
// old primary is told (best effort) that it has been superseded.
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	rs := s.repl
	if rs == nil {
		s.httpError(w, http.StatusConflict, "", "replication is not enabled on this node")
		return
	}
	rs.roleMu.Lock()
	defer rs.roleMu.Unlock()
	switch role(s.role.Load()) {
	case roleFollower:
	case rolePrimary:
		s.httpError(w, http.StatusConflict, "", "already the primary (term %d)", s.term.Load())
		return
	default:
		s.httpError(w, http.StatusConflict, "",
			"only a follower can be promoted; this node is a %s", role(s.role.Load()))
		return
	}
	fol := rs.follower
	fol.Stop()
	// Stop the follower-side snapshotter before the write path starts. Left
	// running, it would race Live's snapshotter on the same WAL dir and
	// snapshot file, and — since applyFrame no longer advances appliedSeq —
	// label snapshots mutated by post-promotion writes with a frozen sequence
	// number, so a later recovery would replay frames the snapshot already
	// contains. Live owns snapshotting from here on.
	rs.stopSnapshotLoop()
	newTerm := max(s.term.Load(), fol.PrimaryTerm()) + 1
	if err := replica.SaveTerm(rs.dir, newTerm); err != nil {
		// Without a durable term the fence is void; refuse the promotion
		// (the node stays a — now stale — follower, which is safe).
		s.logf("server: CRITICAL: promotion aborted, cannot persist term: %v", err)
		s.httpError(w, http.StatusInternalServerError, "", "persisting fencing term: %v", err)
		return
	}
	s.term.Store(newTerm)

	rs.applyMu.Lock()
	applied := rs.appliedSeq
	rs.applyMu.Unlock()
	// A follower whose bootstrap snapshot covered everything (no frames
	// shipped since) holds an empty log; without the skip the new primary's
	// first Append would re-issue a sequence number the snapshot already
	// covers, and a post-restart replay would silently drop that frame.
	rs.flog.SkipTo(applied)
	l := newLiveFromLog(LiveConfig{
		WALDir:           rs.dir,
		SnapshotPath:     rs.snapPath,
		SnapshotInterval: rs.fcfg.SnapshotInterval,
		GroupCommit:      rs.fcfg.GroupCommit,
	}, rs.flog, applied)
	s.EnableLive(l)
	rs.primary = &replica.Primary{
		Dir:               rs.dir,
		Log:               rs.flog,
		Term:              s.term.Load,
		Horizon:           l.snapSeq.Load,
		Active:            s.shippingActive,
		Snapshot:          l.encodeReplicationSnapshot,
		OnStaleTerm:       s.demote,
		HeartbeatInterval: rs.pcfg.HeartbeatInterval,
		Logf:              s.logf,
	}
	rs.promoted = true
	s.role.Store(int32(rolePrimary))
	// Pin the stream horizon for our own future followers. Failure is not
	// fatal: the WAL alone still recovers every applied frame.
	if err := l.Snapshot(); err != nil {
		s.logf("server: snapshot after promotion: %v", err)
	}
	// Best effort: fence the old primary right now rather than on its next
	// follower contact.
	go func(url string, term uint64) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := replica.NotifyStaleTerm(ctx, rs.fcfg.Client, url, term); err != nil {
			s.logf("server: notifying old primary %s of term %d: %v", url, term, err)
		}
	}(rs.fcfg.PrimaryURL, newTerm)

	s.logf("server: promoted to primary at term %d (applied seq %d)", newTerm, applied)
	s.writeJSON(w, map[string]any{"role": "primary", "term": newTerm, "applied_seq": applied})
}

// replPrimary returns the log-shipping side, nil when this node is not
// (currently) a primary.
func (s *Server) replPrimary() *replica.Primary {
	rs := s.repl
	if rs == nil {
		return nil
	}
	rs.roleMu.Lock()
	defer rs.roleMu.Unlock()
	return rs.primary
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	p := s.replPrimary()
	if p == nil {
		s.httpError(w, http.StatusServiceUnavailable, "not-primary", "this node does not ship a replication log")
		return
	}
	p.ServeSnapshot(w, r)
}

func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	p := s.replPrimary()
	if p == nil {
		s.httpError(w, http.StatusServiceUnavailable, "not-primary", "this node does not ship a replication log")
		return
	}
	p.ServeStream(w, r)
}

// freshEnough is the staleness contract of follower reads: when the node has
// not observed itself caught up with the primary within the configured
// bound, evaluation endpoints answer 503 + Retry-After instead of silently
// stale probabilities. Non-followers always pass.
func (s *Server) freshEnough(w http.ResponseWriter) bool {
	if role(s.role.Load()) != roleFollower {
		return true
	}
	rs := s.repl
	if rs == nil || rs.fcfg.MaxStaleness <= 0 {
		return true
	}
	rs.roleMu.Lock()
	fol := rs.follower
	rs.roleMu.Unlock()
	if fol == nil {
		return true
	}
	if stale := fol.Staleness(); stale > rs.fcfg.MaxStaleness {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusServiceUnavailable, "stale",
			"replica is %.1fs behind the primary, beyond the %.1fs staleness bound; retry later or read the primary",
			stale.Seconds(), rs.fcfg.MaxStaleness.Seconds())
		return false
	}
	return true
}

// stats contributes the replication section of GET /stats.
func (rs *replState) stats(s *Server) map[string]any {
	rs.roleMu.Lock()
	fol, p, promoted := rs.follower, rs.primary, rs.promoted
	rs.roleMu.Unlock()
	out := map[string]any{"promoted": promoted}
	if p != nil {
		out["horizon"] = p.Horizon()
	}
	if fol != nil {
		st := fol.Stats()
		out["primary_url"] = rs.fcfg.PrimaryURL
		out["applied_seq"] = st.Applied
		out["primary_synced"] = st.PrimarySynced
		out["primary_term"] = st.PrimaryTerm
		out["lag_frames"] = st.PrimarySynced - st.Applied
		out["staleness_sec"] = fol.Staleness().Seconds()
		out["max_staleness_sec"] = rs.fcfg.MaxStaleness.Seconds()
		out["connected"] = st.Connected
		out["frames_applied"] = st.FramesApplied
		out["duplicates"] = st.Duplicates
		out["gaps"] = st.Gaps
		out["retries"] = st.Retries
		out["bootstraps"] = st.Bootstraps
	}
	return out
}
