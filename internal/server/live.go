package server

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/wal"
)

// Live-update subsystem: the server's write path. Mutation batches are
// validated against the current source MVDB, appended to a write-ahead log,
// applied to the index incrementally (mvindex.ApplyMutations), and
// acknowledged only after the WAL frame is fsynced — so an acknowledged
// mutation survives any crash. A background snapshotter periodically
// persists the index (with the covered WAL sequence number) and truncates
// the log; recovery loads the latest snapshot and replays the WAL tail.

// LiveConfig configures the write path.
type LiveConfig struct {
	// WALDir holds the write-ahead log segments. Required.
	WALDir string
	// SnapshotPath is where the periodic snapshotter (and recovery) keep the
	// index snapshot. Empty disables snapshots — recovery then replays the
	// whole log against a freshly built index.
	SnapshotPath string
	// SnapshotInterval is the period of the background snapshotter; 0
	// disables it (snapshots then happen only on Close).
	SnapshotInterval time.Duration
	// GroupCommit is the WAL group-commit window (see wal.Options).
	GroupCommit time.Duration
	// MaxPendingUpdates caps update requests waiting for the writer lock,
	// separately from the reader admission semaphore; excess requests are
	// shed with 503. 0 means 16.
	MaxPendingUpdates int
	// Hooks inject WAL faults for crash testing.
	Hooks wal.Hooks
}

func (c LiveConfig) maxPending() int {
	if c.MaxPendingUpdates > 0 {
		return c.MaxPendingUpdates
	}
	return 16
}

// Live owns the write path: the WAL, the writer lock, the snapshotter and
// the mutation counters.
type Live struct {
	cfg LiveConfig
	log *wal.Log
	srv *Server

	// updateMu serializes the write path (validate → append → apply). It is
	// held in lock order before the server's index lock; the fsync happens
	// after release so concurrent committers coalesce.
	updateMu sync.Mutex
	sem      chan struct{} // pending-writer admission

	appliedSeq uint64 // WAL sequence applied to the index (under updateMu)
	snapSeq    atomic.Uint64
	snapTime   atomic.Int64 // unix nanos of the last snapshot; 0 = never

	batches, mutations        atomic.Uint64
	inserts, deletes          atomic.Uint64
	reweights                 atomic.Uint64
	weightOnlyBatches         atomic.Uint64
	blocksReused, blocksRecom atomic.Uint64

	stop     chan struct{}
	snapDone chan struct{}
}

// OpenLive recovers the live state: the latest snapshot (when present and
// loadable) or a freshly built index, plus a replay of the WAL tail — every
// logged batch with a sequence number above the snapshot's. Replayed batches
// are concatenated and applied as one ApplyMutations call (one re-translate
// and one incremental recompile instead of one per batch; the WAL's
// sequential semantics are preserved because batches validate and apply in
// order). The returned Live must be attached with Server.EnableLive.
func OpenLive(cfg LiveConfig, build func() (*mvindex.Index, error)) (*mvindex.Index, *Live, error) {
	if cfg.WALDir == "" {
		return nil, nil, fmt.Errorf("server: LiveConfig.WALDir is required")
	}
	var (
		ix      *mvindex.Index
		lastSeq uint64
	)
	if cfg.SnapshotPath != "" {
		if _, err := os.Stat(cfg.SnapshotPath); err == nil {
			var lerr error
			ix, lastSeq, lerr = mvindex.LoadFileSeq(cfg.SnapshotPath)
			if lerr != nil {
				return nil, nil, fmt.Errorf("server: loading snapshot %s: %w", cfg.SnapshotPath, lerr)
			}
		}
	}
	if ix == nil {
		var err error
		ix, err = build()
		if err != nil {
			return nil, nil, err
		}
		lastSeq = 0
	}

	// Replay the tail into one concatenated batch before opening the log for
	// writing (Replay is read-only and tolerates the torn tail).
	var pending []core.Mutation
	var replayed uint64
	err := wal.Replay(cfg.WALDir, lastSeq, func(seq uint64, rec []byte) error {
		batch, err := core.DecodeMutations(rec)
		if err != nil {
			return fmt.Errorf("frame %d: %w", seq, err)
		}
		pending = append(pending, batch...)
		replayed = seq
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("server: replaying WAL: %w", err)
	}
	if len(pending) > 0 {
		if _, err := ix.ApplyMutations(pending); err != nil {
			return nil, nil, fmt.Errorf("server: applying replayed WAL tail: %w", err)
		}
	}

	log, err := wal.Open(cfg.WALDir, wal.Options{GroupCommit: cfg.GroupCommit, Hooks: cfg.Hooks})
	if err != nil {
		return nil, nil, err
	}
	l := &Live{
		cfg:  cfg,
		log:  log,
		sem:  make(chan struct{}, cfg.maxPending()),
		stop: make(chan struct{}),
	}
	if replayed > lastSeq {
		lastSeq = replayed
	}
	// A snapshot that covered the whole (since-truncated) log reopens the WAL
	// with no frames; re-anchor so the next Append cannot re-issue a covered
	// sequence number, which a later replay would filter out.
	log.SkipTo(lastSeq)
	l.appliedSeq = lastSeq
	l.snapSeq.Store(lastSeq)
	return ix, l, nil
}

// EnableLive attaches the write path to the server: the (always-routed)
// /update and /reweight endpoints start acking, the write-path stats appear,
// and (when configured) the background snapshotter runs. Called once before
// serving on a standalone or primary node — or at promotion time on a
// follower, which is why the endpoints are routed up front and gate on the
// attached write path instead of being registered here.
func (s *Server) EnableLive(l *Live) {
	l.srv = s
	s.live.Store(l)
	if l.cfg.SnapshotInterval > 0 {
		l.snapDone = make(chan struct{})
		go l.snapshotLoop()
	}
}

// newLiveFromLog builds a write path around an already-open WAL — the
// promotion path: a follower's local log (holding every frame it applied
// under the primary's numbering) becomes the log it appends its own writes
// to, so the sequence numbers continue the primary's line.
func newLiveFromLog(cfg LiveConfig, log *wal.Log, appliedSeq uint64) *Live {
	l := &Live{
		cfg:  cfg,
		log:  log,
		sem:  make(chan struct{}, cfg.maxPending()),
		stop: make(chan struct{}),
	}
	l.appliedSeq = appliedSeq
	l.snapSeq.Store(appliedSeq)
	return l
}

// AppliedSeq returns the WAL sequence number applied to the index.
func (l *Live) AppliedSeq() uint64 {
	l.updateMu.Lock()
	defer l.updateMu.Unlock()
	return l.appliedSeq
}

// encodeReplicationSnapshot cuts a bootstrap snapshot at a durable boundary:
// it syncs the log first (under the writer lock, so the applied position
// cannot move), then encodes the index with that position. Without the sync,
// a bootstrapped follower could carry frames that vanish in a primary crash
// — state no recovered primary would ever have.
func (l *Live) encodeReplicationSnapshot() (uint64, []byte, error) {
	l.updateMu.Lock()
	defer l.updateMu.Unlock()
	if err := l.log.Sync(); err != nil {
		return 0, nil, err
	}
	seq := l.appliedSeq
	s := l.srv
	s.mu.RLock()
	var buf bytes.Buffer
	err := s.ix.SaveSeq(&buf, seq)
	s.mu.RUnlock()
	if err != nil {
		return 0, nil, err
	}
	return seq, buf.Bytes(), nil
}

// Close stops the snapshotter, takes a final snapshot (when configured) and
// durably closes the WAL. Call during drain, after HTTP shutdown.
func (l *Live) Close() error {
	close(l.stop)
	if l.snapDone != nil {
		<-l.snapDone
	}
	var err error
	if l.cfg.SnapshotPath != "" {
		err = l.Snapshot()
	}
	if cerr := l.log.Close(); err == nil {
		err = cerr
	}
	return err
}

func (l *Live) snapshotLoop() {
	defer close(l.snapDone)
	t := time.NewTicker(l.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if err := l.Snapshot(); err != nil {
				l.srv.logf("server: snapshot: %v", err)
			}
		}
	}
}

// Snapshot persists the index with the WAL sequence number it covers and
// truncates the covered log prefix. Writers stall for the duration (they
// need updateMu); readers keep going until the brief index read lock of the
// encode phase. The ordering — rotate (which fsyncs), then write the
// snapshot, then remove old segments — guarantees no acknowledged frame is
// lost: a crash before the rename keeps the old snapshot plus the full log;
// after it, the new snapshot covers everything the removed segments held.
func (l *Live) Snapshot() error {
	if l.cfg.SnapshotPath == "" {
		return fmt.Errorf("server: no snapshot path configured")
	}
	l.updateMu.Lock()
	seq := l.appliedSeq
	gen, err := l.log.Rotate()
	if err != nil {
		l.updateMu.Unlock()
		return err
	}
	l.srv.mu.RLock()
	ix := l.srv.ix
	err = ix.SaveFileSeq(l.cfg.SnapshotPath, seq)
	l.srv.mu.RUnlock()
	l.updateMu.Unlock()
	if err != nil {
		return err
	}
	l.snapSeq.Store(seq)
	l.snapTime.Store(time.Now().UnixNano())
	return l.log.RemoveBelow(gen)
}

// mutationJSON is the wire form of one mutation.
type mutationJSON struct {
	Op     string  `json:"op"`
	Rel    string  `json:"rel"`
	Vals   []any   `json:"vals"`
	Weight float64 `json:"weight,omitempty"`
}

type updateRequest struct {
	Mutations []mutationJSON `json:"mutations"`
}

type reweightRequest struct {
	Rel    string  `json:"rel"`
	Vals   []any   `json:"vals"`
	Weight float64 `json:"weight"`
}

// jsonValue converts a decoded JSON scalar into an engine value: strings map
// to Str, integral numbers to Int.
func jsonValue(v any) (engine.Value, error) {
	switch x := v.(type) {
	case string:
		return engine.Str(x), nil
	case float64:
		if x != math.Trunc(x) || math.IsInf(x, 0) {
			return engine.Value{}, fmt.Errorf("non-integer value %v", x)
		}
		return engine.Int(int64(x)), nil
	default:
		return engine.Value{}, fmt.Errorf("unsupported value %v (%T)", v, v)
	}
}

func toMutations(in []mutationJSON) ([]core.Mutation, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("empty mutation list")
	}
	out := make([]core.Mutation, len(in))
	for i, mj := range in {
		vals := make([]engine.Value, len(mj.Vals))
		for j, v := range mj.Vals {
			ev, err := jsonValue(v)
			if err != nil {
				return nil, fmt.Errorf("mutation %d: %w", i, err)
			}
			vals[j] = ev
		}
		out[i] = core.Mutation{Op: core.MutationOp(mj.Op), Rel: mj.Rel, Vals: vals, Weight: mj.Weight}
	}
	return out, nil
}

func (l *Live) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if !l.srv.decodeJSON(w, r, &req) {
		return
	}
	batch, err := toMutations(req.Mutations)
	if err != nil {
		l.srv.httpError(w, http.StatusBadRequest, "", "bad mutations: %v", err)
		return
	}
	l.applyBatch(w, batch)
}

// handleReweight is sugar for an update batch of one reweight mutation: it
// goes through the same validate → WAL → apply → fsync path, so a
// reweight survives crashes like any other mutation.
func (l *Live) handleReweight(w http.ResponseWriter, r *http.Request) {
	var req reweightRequest
	if !l.srv.decodeJSON(w, r, &req) {
		return
	}
	vals := make([]engine.Value, len(req.Vals))
	for i, v := range req.Vals {
		ev, err := jsonValue(v)
		if err != nil {
			l.srv.httpError(w, http.StatusBadRequest, "", "bad vals: %v", err)
			return
		}
		vals[i] = ev
	}
	l.applyBatch(w, []core.Mutation{{Op: core.MutReweight, Rel: req.Rel, Vals: vals, Weight: req.Weight}})
}

// applyBatch runs the write path for one validated-shape batch: admission,
// semantic validation under the writer lock, WAL append, incremental index
// maintenance, and the durability fsync before the acknowledgment.
func (l *Live) applyBatch(w http.ResponseWriter, batch []core.Mutation) {
	s := l.srv
	if s.draining.Load() {
		s.httpError(w, http.StatusConflict, "draining", "server is draining; not accepting updates")
		return
	}
	select {
	case l.sem <- struct{}{}:
		defer func() { <-l.sem }()
	default:
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusServiceUnavailable, "overload",
			"too many pending updates (max %d); retry later", l.cfg.maxPending())
		return
	}
	t0 := time.Now()

	l.updateMu.Lock()
	// Validate against the current source before the WAL append, so the log
	// only ever holds batches that apply cleanly on recovery.
	s.mu.RLock()
	ix := s.ix
	src := ix.Source()
	var verr error
	if src == nil {
		verr = fmt.Errorf("index has no source MVDB; updates are disabled")
	} else {
		verr = src.ValidateBatch(batch)
	}
	s.mu.RUnlock()
	if verr != nil {
		l.updateMu.Unlock()
		s.httpError(w, http.StatusBadRequest, "", "invalid batch: %v", verr)
		return
	}
	rec, err := core.EncodeMutations(batch)
	var seq uint64
	if err == nil {
		seq, err = l.log.Append(rec)
	}
	if err != nil {
		l.updateMu.Unlock()
		s.httpError(w, http.StatusInternalServerError, "wal", "logging batch: %v", err)
		return
	}

	s.mu.Lock()
	st, err := ix.ApplyMutations(batch)
	s.mu.Unlock()
	if err != nil {
		// The batch validated but failed to apply (e.g. a compile failure).
		// It is already in the WAL; recovery would hit the same error, so
		// this is loud.
		l.updateMu.Unlock()
		s.logf("server: CRITICAL: logged batch failed to apply: %v", err)
		s.httpError(w, http.StatusInternalServerError, "", "applying batch: %v", err)
		return
	}
	l.appliedSeq = seq
	l.updateMu.Unlock()

	// Durability point: acknowledge only after the frame is on disk. The
	// writer lock is released first so concurrent committers share the
	// fsync (group commit).
	if err := l.log.Sync(); err != nil {
		s.httpError(w, http.StatusInternalServerError, "wal", "syncing batch: %v", err)
		return
	}

	l.batches.Add(1)
	l.mutations.Add(uint64(len(batch)))
	for _, mu := range batch {
		switch mu.Op {
		case core.MutInsert:
			l.inserts.Add(1)
		case core.MutDelete:
			l.deletes.Add(1)
		case core.MutReweight:
			l.reweights.Add(1)
		}
	}
	if st.WeightOnly {
		l.weightOnlyBatches.Add(1)
	}
	l.blocksReused.Add(uint64(st.Reused))
	l.blocksRecom.Add(uint64(st.Recompiled))

	s.writeJSON(w, map[string]any{
		"seq":         seq,
		"applied":     st.Applied,
		"weight_only": st.WeightOnly,
		"full":        st.Full,
		"blocks":      st.Blocks,
		"reused":      st.Reused,
		"recompiled":  st.Recompiled,
		"millis":      float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// liveStats contributes the write-path section of GET /stats.
func (l *Live) stats() map[string]any {
	ws := l.log.Stats()
	var snapAge any
	if t := l.snapTime.Load(); t > 0 {
		snapAge = time.Since(time.Unix(0, t)).Seconds()
	}
	return map[string]any{
		"wal": map[string]any{
			"frames":     ws.Frames,
			"bytes":      ws.Bytes,
			"segments":   ws.Segments,
			"generation": ws.Generation,
			"synced_seq": ws.SyncedSeq,
		},
		"snapshot_seq":          l.snapSeq.Load(),
		"last_snapshot_age_sec": snapAge,
		"applied": map[string]any{
			"batches":             l.batches.Load(),
			"mutations":           l.mutations.Load(),
			"inserts":             l.inserts.Load(),
			"deletes":             l.deletes.Load(),
			"reweights":           l.reweights.Load(),
			"weight_only_batches": l.weightOnlyBatches.Load(),
			"blocks_reused":       l.blocksReused.Load(),
			"blocks_recompiled":   l.blocksRecom.Load(),
		},
	}
}
